# relaxlattice — reproduction of Herlihy & Wing, PODC 1987.
GO ?= go

.PHONY: all build test race fuzz bench bench-json vet fmt lint lint-v2 experiments verify examples clean

all: build vet lint test

build:
	$(GO) build ./...

# Tier-1 includes go vet: it is cheap, and the custom passes assume a
# vet-clean tree (shadowed variables and misuses vet already catches
# are out of relaxlint's scope by design).
test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/automaton/ ./internal/experiments/ ./internal/txn/ ./internal/cluster/ ./internal/commit/ ./internal/sim/ ./internal/resilience/ ./internal/relaxcheck/ ./internal/integration/ ./cmd/...

# Short native-fuzzing smoke: each target gets a bounded budget on top
# of its checked-in seed corpus (testdata/fuzz). CI runs this; longer
# local sessions just raise -fuzztime.
fuzz:
	$(GO) test -fuzz=FuzzEngineMatchesNaive -fuzztime=20s ./internal/automaton/
	$(GO) test -fuzz=FuzzTaxiLatticeMonotonicity -fuzztime=20s ./internal/lattice/
	$(GO) test -fuzz=FuzzStepCheckerMatchesOffline -fuzztime=20s ./internal/relaxcheck/

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot (ns/op + allocs) for PR
# before/after comparisons, with the deterministic obs metrics snapshot
# of a full experiment sweep embedded alongside the timings.
bench-json:
	$(GO) run ./cmd/relaxctl run -parallel -metrics .bench-metrics.json all >/dev/null
	$(GO) test -bench=. -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson -metrics .bench-metrics.json -o BENCH_PR3.json
	rm -f .bench-metrics.json

vet:
	$(GO) vet ./...

# Custom static analysis: model-layer determinism (syntactic and
# flow-sensitive taint), lock discipline and acquisition ordering,
# error discipline, spec purity, and static quorum-claim certification
# (see internal/lint and DESIGN.md §8, §12).
lint:
	$(GO) run ./cmd/relaxlint ./...

# The full lint suite the CI lint-v2 job runs: JSON findings, the
# speccheck proof artifact, and the fixture-inversion check.
lint-v2:
	$(GO) run ./cmd/relaxlint -json ./... > relaxlint.json
	$(GO) run ./cmd/relaxlint -proof speccheck.json ./...
	@if $(GO) run ./cmd/relaxlint -dir internal/lint/testdata/src ./... >/dev/null; then \
		echo "relaxlint reported no findings on the violation fixtures"; exit 1; \
	else true; fi

fmt:
	gofmt -w .

# Regenerate every paper artifact (the body of EXPERIMENTS.md). The
# parallel runner's output is byte-identical to the serial one.
experiments:
	$(GO) run ./cmd/relaxctl run -parallel all

# Bounded model checking of Theorem 4 and the companion claims.
verify:
	$(GO) run ./cmd/relaxctl verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxidispatch
	$(GO) run ./examples/bankatm
	$(GO) run ./examples/printspool
	$(GO) run ./examples/gridstore

clean:
	$(GO) clean ./...
