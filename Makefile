# relaxlattice — reproduction of Herlihy & Wing, PODC 1987.
GO ?= go

.PHONY: all build test race fuzz bench bench-json bench-conc bench-trace bench-relaxd longhaul vet fmt lint lint-v2 experiments verify examples clean

all: build vet lint test

build:
	$(GO) build ./...

# Tier-1 includes go vet: it is cheap, and the custom passes assume a
# vet-clean tree (shadowed variables and misuses vet already catches
# are out of relaxlint's scope by design).
test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/automaton/ ./internal/experiments/ ./internal/txn/ ./internal/cluster/ ./internal/commit/ ./internal/sim/ ./internal/resilience/ ./internal/relaxcheck/ ./internal/integration/ ./internal/conc/ ./internal/relaxd/ ./cmd/...

# Short native-fuzzing smoke: each target gets a bounded budget on top
# of its checked-in seed corpus (testdata/fuzz). CI runs this; longer
# local sessions just raise -fuzztime.
fuzz:
	$(GO) test -fuzz=FuzzEngineMatchesNaive -fuzztime=20s ./internal/automaton/
	$(GO) test -fuzz=FuzzTaxiLatticeMonotonicity -fuzztime=20s ./internal/lattice/
	$(GO) test -fuzz=FuzzStepCheckerMatchesOffline -fuzztime=20s ./internal/relaxcheck/
	$(GO) test -fuzz=FuzzCheckpointResume -fuzztime=20s ./internal/relaxcheck/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=20s ./internal/relaxd/
	$(GO) test -fuzz=FuzzWALOpen -fuzztime=20s ./internal/relaxd/
	$(GO) test -fuzz=FuzzSegmentedWALOpen -fuzztime=20s ./internal/relaxd/

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot (ns/op + allocs) for PR
# before/after comparisons, with the deterministic obs metrics snapshot
# of a full experiment sweep embedded alongside the timings. The output
# file is BENCH_OUT= (default BENCH_PR3.json); committed BENCH_PR*.json
# snapshots are historical evidence, so overwriting an existing one
# requires FORCE=1.
BENCH_OUT ?= BENCH_PR3.json
bench-json:
	@if [ -e "$(BENCH_OUT)" ] && [ "$(FORCE)" != "1" ]; then \
		case "$(BENCH_OUT)" in BENCH_PR*.json) \
			echo "bench-json: refusing to overwrite committed snapshot $(BENCH_OUT); rerun with FORCE=1"; \
			exit 1;; \
		esac; \
	fi
	$(GO) run ./cmd/relaxctl run -parallel -metrics .bench-metrics.json all >/dev/null
	$(GO) test -bench=. -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson -metrics .bench-metrics.json -o "$(BENCH_OUT)"
	rm -f .bench-metrics.json

# The lock-free-structure throughput sweep (internal/conc): scalability
# curves plus the deep-backlog priority regime, converted to JSON with
# speedups over the strict baselines. The E10 experiment benchmark runs
# alongside so the allocation delta against BENCH_PR3.json lands in the
# same snapshot. Honors the same BENCH_OUT/FORCE discipline as
# bench-json, defaulting to BENCH_PR7.json.
bench-conc: BENCH_OUT = BENCH_PR7.json
bench-conc:
	@if [ -e "$(BENCH_OUT)" ] && [ "$(FORCE)" != "1" ]; then \
		case "$(BENCH_OUT)" in BENCH_PR*.json) \
			echo "bench-conc: refusing to overwrite committed snapshot $(BENCH_OUT); rerun with FORCE=1"; \
			exit 1;; \
		esac; \
	fi
	( $(GO) test -run='^$$' -bench='BenchmarkConc' -benchtime=300ms -timeout=20m ./internal/conc/ \
	  && $(GO) test -run='^$$' -bench='Benchmark_E10' -benchmem . ) \
		| $(GO) run ./cmd/benchjson -prev BENCH_PR3.json -o "$(BENCH_OUT)"

# The tracing/audit snapshot: span-emit, critical-path-analyze, and
# checkpoint/resume benchmarks, plus the per-rung critical-path summary
# of a pinned traced soak (relaxsoak -spans → benchjson -trace),
# diffed against BENCH_PR7.json. Honors the same BENCH_OUT/FORCE
# discipline, defaulting to BENCH_PR8.json.
bench-trace: BENCH_OUT = BENCH_PR8.json
bench-trace:
	@if [ -e "$(BENCH_OUT)" ] && [ "$(FORCE)" != "1" ]; then \
		case "$(BENCH_OUT)" in BENCH_PR*.json) \
			echo "bench-trace: refusing to overwrite committed snapshot $(BENCH_OUT); rerun with FORCE=1"; \
			exit 1;; \
		esac; \
	fi
	$(GO) run ./cmd/relaxsoak -mode cluster -workload uniform -clients 10 -ops 400 -seed 3 -calm -spans .bench-spans.jsonl >/dev/null
	( $(GO) test -run='^$$' -bench='BenchmarkSpanEmit|BenchmarkAnalyze' -benchmem ./internal/obs/trace/ \
	  && $(GO) test -run='^$$' -bench='BenchmarkCheckpointRoundtrip|BenchmarkAuditObserve' -benchmem ./internal/relaxcheck/ ) \
		| $(GO) run ./cmd/benchjson -trace .bench-spans.jsonl -prev BENCH_PR7.json -o "$(BENCH_OUT)"
	rm -f .bench-spans.jsonl

# The relaxd scaling snapshot: single-record commit vs the pipelined
# group-commit path (appends/sec), plus cold recovery over a segmented
# store (recovery-ms), diffed against BENCH_PR8.json. Honors the same
# BENCH_OUT/FORCE discipline, defaulting to BENCH_PR10.json. The
# pipelined appends/sec number is expected to carry ≥2× the
# single-commit one — that delta is the PR's headline evidence.
bench-relaxd: BENCH_OUT = BENCH_PR10.json
bench-relaxd:
	@if [ -e "$(BENCH_OUT)" ] && [ "$(FORCE)" != "1" ]; then \
		case "$(BENCH_OUT)" in BENCH_PR*.json) \
			echo "bench-relaxd: refusing to overwrite committed snapshot $(BENCH_OUT); rerun with FORCE=1"; \
			exit 1;; \
		esac; \
	fi
	$(GO) test -run='^$$' -bench='BenchmarkAppendSingleCommit|BenchmarkAppendPipelined|BenchmarkRecovery' \
		-benchmem -benchtime=1s ./internal/relaxd/ \
		| $(GO) run ./cmd/benchjson -prev BENCH_PR8.json -o "$(BENCH_OUT)"

# The kill-9 soak battery CI's relaxd-longhaul job runs: a real
# networked service under continuous hard kills and wipe-and-rejoins,
# raced, inside a wall-clock budget. The budget is generous because
# step-1 GetLog ships the whole site log, so raced op cost grows with
# history length. Artifacts (exported history) land in .longhaul/ for
# upload on failure.
longhaul:
	mkdir -p .longhaul
	timeout 1200 $(GO) run -race ./cmd/relaxsoak -mode longhaul -sites 5 -clients 16 \
		-ops 5000 -kill-every 80ms -wipe-every 3 -seed 42 -history .longhaul/history.txt
	$(GO) run ./cmd/relaxsoak -mode audit -lattice taxi -history .longhaul/history.txt

vet:
	$(GO) vet ./...

# Custom static analysis: model-layer determinism (syntactic and
# flow-sensitive taint), lock discipline and acquisition ordering,
# error discipline, spec purity, and static quorum-claim certification
# (see internal/lint and DESIGN.md §8, §12).
lint:
	$(GO) run ./cmd/relaxlint ./...

# The full lint suite the CI lint-v2 job runs: JSON findings, the
# speccheck proof artifact, and the fixture-inversion check.
lint-v2:
	$(GO) run ./cmd/relaxlint -json ./... > relaxlint.json
	$(GO) run ./cmd/relaxlint -proof speccheck.json ./...
	@if $(GO) run ./cmd/relaxlint -dir internal/lint/testdata/src ./... >/dev/null; then \
		echo "relaxlint reported no findings on the violation fixtures"; exit 1; \
	else true; fi

fmt:
	gofmt -w .

# Regenerate every paper artifact (the body of EXPERIMENTS.md). The
# parallel runner's output is byte-identical to the serial one.
experiments:
	$(GO) run ./cmd/relaxctl run -parallel all

# Bounded model checking of Theorem 4 and the companion claims.
verify:
	$(GO) run ./cmd/relaxctl verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxidispatch
	$(GO) run ./examples/bankatm
	$(GO) run ./examples/printspool
	$(GO) run ./examples/gridstore

clean:
	$(GO) clean ./...
