# relaxlattice — reproduction of Herlihy & Wing, PODC 1987.
GO ?= go

.PHONY: all build test race fuzz bench bench-json vet fmt lint experiments verify examples clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/automaton/ ./internal/experiments/ ./internal/txn/ ./internal/cluster/ ./internal/commit/ ./internal/sim/ ./internal/resilience/ ./internal/relaxcheck/ ./internal/integration/ ./cmd/...

# Short native-fuzzing smoke: each target gets a bounded budget on top
# of its checked-in seed corpus (testdata/fuzz). CI runs this; longer
# local sessions just raise -fuzztime.
fuzz:
	$(GO) test -fuzz=FuzzEngineMatchesNaive -fuzztime=20s ./internal/automaton/
	$(GO) test -fuzz=FuzzTaxiLatticeMonotonicity -fuzztime=20s ./internal/lattice/
	$(GO) test -fuzz=FuzzStepCheckerMatchesOffline -fuzztime=20s ./internal/relaxcheck/

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot (ns/op + allocs) for PR
# before/after comparisons, with the deterministic obs metrics snapshot
# of a full experiment sweep embedded alongside the timings.
bench-json:
	$(GO) run ./cmd/relaxctl run -parallel -metrics .bench-metrics.json all >/dev/null
	$(GO) test -bench=. -benchmem -run='^$$' . | $(GO) run ./cmd/benchjson -metrics .bench-metrics.json -o BENCH_PR3.json
	rm -f .bench-metrics.json

vet:
	$(GO) vet ./...

# Custom static analysis: model-layer determinism, lock discipline,
# error discipline, spec purity (see internal/lint).
lint:
	$(GO) run ./cmd/relaxlint ./...

fmt:
	gofmt -w .

# Regenerate every paper artifact (the body of EXPERIMENTS.md). The
# parallel runner's output is byte-identical to the serial one.
experiments:
	$(GO) run ./cmd/relaxctl run -parallel all

# Bounded model checking of Theorem 4 and the companion claims.
verify:
	$(GO) run ./cmd/relaxctl verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxidispatch
	$(GO) run ./examples/bankatm
	$(GO) run ./examples/printspool
	$(GO) run ./examples/gridstore

clean:
	$(GO) clean ./...
