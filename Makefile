# relaxlattice — reproduction of Herlihy & Wing, PODC 1987.
GO ?= go

.PHONY: all build test race bench vet fmt lint experiments verify examples clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/txn/ ./internal/cluster/ ./internal/commit/ ./internal/sim/ ./internal/integration/ ./cmd/...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

# Custom static analysis: model-layer determinism, lock discipline,
# error discipline, spec purity (see internal/lint).
lint:
	$(GO) run ./cmd/relaxlint ./...

fmt:
	gofmt -w .

# Regenerate every paper artifact (the body of EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/relaxctl run all

# Bounded model checking of Theorem 4 and the companion claims.
verify:
	$(GO) run ./cmd/relaxctl verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taxidispatch
	$(GO) run ./examples/bankatm
	$(GO) run ./examples/printspool
	$(GO) run ./examples/gridstore

clean:
	$(GO) clean ./...
