// Benchmarks regenerating every paper artifact (one per experiment;
// see DESIGN.md's per-experiment index), plus micro-benchmarks of the
// machinery they exercise. Run with:
//
//	go test -bench=. -benchmem
package relaxlattice_test

import (
	"io"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/commit"
	"relaxlattice/internal/core"
	"relaxlattice/internal/experiments"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/txn"
	"relaxlattice/internal/value"
)

// benchConfig keeps experiment benchmarks representative but bounded.
// MaxLen 6 was the experiment default before the memoized powerset
// engine (automaton/engine.go) raised it to 8, so these numbers stay
// comparable across that change.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Trials = 20000
	cfg.Bound = core.Bound{MaxElem: 2, MaxLen: 6}
	return cfg
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func Benchmark_E01_BagAxioms(b *testing.B)             { benchExperiment(b, "E01") }
func Benchmark_E02_FifoQueue(b *testing.B)             { benchExperiment(b, "E02") }
func Benchmark_E03_PriorityQueue(b *testing.B)         { benchExperiment(b, "E03") }
func Benchmark_E04_TheoremFour(b *testing.B)           { benchExperiment(b, "E04") }
func Benchmark_E05_OutOfOrder(b *testing.B)            { benchExperiment(b, "E05") }
func Benchmark_E06_Degenerate(b *testing.B)            { benchExperiment(b, "E06") }
func Benchmark_E07_OneCopySerializable(b *testing.B)   { benchExperiment(b, "E07") }
func Benchmark_E08_ProbMissTopN(b *testing.B)          { benchExperiment(b, "E08") }
func Benchmark_E09_Availability(b *testing.B)          { benchExperiment(b, "E09") }
func Benchmark_E10_BankAccount(b *testing.B)           { benchExperiment(b, "E10") }
func Benchmark_E11_SemiqueueLattice(b *testing.B)      { benchExperiment(b, "E11") }
func Benchmark_E12_StutteringQueue(b *testing.B)       { benchExperiment(b, "E12") }
func Benchmark_E13_EtaAblation(b *testing.B)           { benchExperiment(b, "E13") }
func Benchmark_E14_ConcurrencyThroughput(b *testing.B) { benchExperiment(b, "E14") }
func Benchmark_E15_SummaryChart(b *testing.B)          { benchExperiment(b, "E15") }
func Benchmark_E16_LatticeLaws(b *testing.B)           { benchExperiment(b, "E16") }
func Benchmark_X01_FIFOFamily(b *testing.B)            { benchExperiment(b, "X01") }
func Benchmark_X02_LatticeOccupancy(b *testing.B)      { benchExperiment(b, "X02") }
func Benchmark_X03_QuorumStructures(b *testing.B)      { benchExperiment(b, "X03") }
func Benchmark_X04_QuorumLatency(b *testing.B)         { benchExperiment(b, "X04") }

// --- micro-benchmarks of the underlying machinery ---

func BenchmarkLogMerge(b *testing.B) {
	clock := quorum.NewClock(1)
	var a, c quorum.Log
	for i := 0; i < 64; i++ {
		e := quorum.Entry{TS: clock.Tick(), Op: history.Enq(i)}
		if i%2 == 0 {
			a = a.Append(e)
		} else {
			c = c.Append(e)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := quorum.Merge(a, c)
		if merged.Len() != 64 {
			b.Fatal("merge lost entries")
		}
	}
}

func BenchmarkQCAJustified(b *testing.B) {
	qca := quorum.NewQCA("bench", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold())
	h := history.History{
		history.Enq(3), history.Enq(1), history.DeqOk(3),
		history.Enq(2), history.DeqOk(2), history.Enq(1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !qca.Justified(h, history.DeqOk(2)) {
			b.Fatal("should be justified")
		}
	}
}

func BenchmarkLanguageEnumerationPQ(b *testing.B) {
	alphabet := history.QueueAlphabet(2)
	pq := specs.PriorityQueue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := automaton.CountLanguage(pq, alphabet, 6)
		if counts[0] != 1 {
			b.Fatal("bad counts")
		}
	}
}

func BenchmarkCompareFIFOvsSemiqueue(b *testing.B) {
	alphabet := history.QueueAlphabet(2)
	for i := 0; i < b.N; i++ {
		res := automaton.Compare(specs.FIFOQueue(), specs.Semiqueue(1), alphabet, 5)
		if !res.Equal {
			b.Fatal("should be equal")
		}
	}
}

// BenchmarkNaiveCompareTheoremFour is the per-history BFS oracle on the
// Theorem 4 comparison — the contrast benchmark for
// BenchmarkEngineCompareTheoremFour.
func BenchmarkNaiveCompareTheoremFour(b *testing.B) {
	alphabet := history.QueueAlphabet(2)
	qca := quorum.NewQCA("bench", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold()).Compiled()
	mpq := specs.MultiPriorityQueue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := automaton.NaiveCompare(qca, mpq, alphabet, 6)
		if !res.Equal {
			b.Fatal("should be equal")
		}
	}
}

// BenchmarkEngineCompareTheoremFour is the same comparison on the
// memoized powerset engine.
func BenchmarkEngineCompareTheoremFour(b *testing.B) {
	alphabet := history.QueueAlphabet(2)
	qca := quorum.NewQCA("bench", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold()).Compiled()
	mpq := specs.MultiPriorityQueue()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := automaton.Compare(qca, mpq, alphabet, 6)
		if !res.Equal {
			b.Fatal("should be equal")
		}
	}
}

// BenchmarkCompiledQCALanguage counts the compiled QCA's language —
// the view-family automaton (quorum/viewauto.go) driving every
// language-equivalence experiment.
func BenchmarkCompiledQCALanguage(b *testing.B) {
	alphabet := history.QueueAlphabet(2)
	qca := quorum.NewQCA("bench", specs.PriorityQueue(), quorum.Q1().Union(quorum.Q2()), quorum.PQFold()).Compiled()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := automaton.CountLanguage(qca, alphabet, 8)
		if counts[0] != 1 {
			b.Fatal("bad counts")
		}
	}
}

func BenchmarkSerialDependencyCheck(b *testing.B) {
	alphabet := history.QueueAlphabet(2)
	rel := quorum.Q1().Union(quorum.Q2())
	for i := 0; i < b.N; i++ {
		ok, _ := quorum.IsSerialDependency(specs.PriorityQueue(), rel, alphabet, 3)
		if !ok {
			b.Fatal("should hold")
		}
	}
}

func BenchmarkOnlineHybridAtomic(b *testing.B) {
	s := txn.Schedule{
		txn.Step(1, history.Enq(1)), txn.Step(1, history.Enq(2)), txn.Commit(1),
		txn.Step(2, history.DeqOk(1)),
		txn.Step(3, history.DeqOk(2)),
	}
	semi := specs.Semiqueue(2)
	for i := 0; i < b.N; i++ {
		if !txn.OnlineHybridAtomic(s, semi) {
			b.Fatal("should hold")
		}
	}
}

func BenchmarkTxnQueueOptimistic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := txn.NewQueue(txn.Optimistic)
		feeder := q.Begin()
		for j := 1; j <= 16; j++ {
			_ = q.Enq(feeder, value.Elem(j))
		}
		_ = q.Commit(feeder)
		for j := 0; j < 16; j++ {
			t := q.Begin()
			if _, err := q.Deq(t); err != nil {
				b.Fatal(err)
			}
			_ = q.Commit(t)
		}
	}
}

func BenchmarkBagIns(b *testing.B) {
	bag := value.EmptyBag()
	for i := 0; i < 32; i++ {
		bag = bag.Ins(value.Elem(i % 8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bag.Ins(value.Elem(i % 8))
	}
}

func BenchmarkVotingAvailability(b *testing.B) {
	v := quorum.TaxiAssignments(7)["Q1Q2"]
	for i := 0; i < b.N; i++ {
		if v.Availability(history.NameDeq, 0.9) <= 0 {
			b.Fatal("bad availability")
		}
	}
}

func BenchmarkMonitorFeed(b *testing.B) {
	lat := core.TaxiSimpleLattice()
	ops := []history.Op{
		history.Enq(3), history.DeqOk(3), history.Enq(1), history.DeqOk(1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := lattice.NewMonitor(lat)
		for _, op := range ops {
			if !m.Feed(op) {
				b.Fatal("monitor died")
			}
		}
	}
}

func BenchmarkTwoPhaseCommit(b *testing.B) {
	votes := []commit.Vote{commit.VoteYes, commit.VoteYes, commit.VoteYes, commit.VoteYes, commit.VoteYes}
	for i := 0; i < b.N; i++ {
		p := commit.New(5)
		out := p.Run(votes, commit.Faults{})
		if out.Coordinator != commit.DecisionCommit {
			b.Fatal("did not commit")
		}
	}
}

func BenchmarkStoreTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := txn.NewStore()
		fund := s.Begin()
		_ = s.Credit(fund, "a", 1000)
		_ = s.Commit(fund)
		for j := 0; j < 32; j++ {
			t := s.Begin()
			if _, err := s.Debit(t, "a", 1); err != nil {
				b.Fatal(err)
			}
			if err := s.Credit(t, "b", 1); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWeakestAccepting(b *testing.B) {
	lat := core.TaxiSimpleLattice()
	h := history.History{
		history.Enq(3), history.DeqOk(3), history.DeqOk(3), history.Enq(1), history.DeqOk(1),
	}
	for i := 0; i < b.N; i++ {
		if _, ok := lat.WeakestAccepting(h); !ok {
			b.Fatal("should be accepted somewhere")
		}
	}
}
