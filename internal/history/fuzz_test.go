package history

import "testing"

// FuzzParseOp checks that ParseOp never panics and that anything it
// accepts round-trips through String.
func FuzzParseOp(f *testing.F) {
	for _, seed := range []string{
		"Enq(1)/Ok()", "Deq()/Ok(2)", "Debit(3)/Over()", "X(1,2)/T(3,4)",
		"", "(", "a/b", "Enq(1)/", "Enq(x)/Ok()", "Enq(1)Ok()",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		op, err := ParseOp(s)
		if err != nil {
			return
		}
		back, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", op.String(), err)
		}
		if !back.Equal(op) {
			t.Fatalf("round trip changed op: %v vs %v", op, back)
		}
	})
}

// FuzzParseHistory likewise for whole histories.
func FuzzParseHistory(f *testing.F) {
	f.Add("Enq(1)/Ok() Deq()/Ok(1)")
	f.Add("Λ")
	f.Add("Enq(1)/Ok() · Enq(2)/Ok()")
	f.Fuzz(func(t *testing.T, s string) {
		h, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(h.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", h.String(), err)
		}
		if !back.Equal(h) {
			t.Fatalf("round trip changed history")
		}
	})
}
