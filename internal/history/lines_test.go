package history

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadLinesRoundTrip(t *testing.T) {
	h := History{Enq(3), Enq(1), DeqOk(3), Credit(10), DebitOk(5)}
	var b bytes.Buffer
	if err := WriteLines(&b, h); err != nil {
		t.Fatalf("WriteLines: %v", err)
	}
	got, err := ReadLines(&b)
	if err != nil {
		t.Fatalf("ReadLines: %v", err)
	}
	if !got.Equal(h) {
		t.Fatalf("round trip: got %v, want %v", got, h)
	}
}

// TestReadLinesToleratesTornFinalLine pins the torn-tail contract: a
// writer killed mid-line leaves a partial final line, which ReadLines
// drops, returning the complete prefix. Damage anywhere *before* the
// end of the input is corruption and still fails.
func TestReadLinesToleratesTornFinalLine(t *testing.T) {
	full := "Enq(3)/Ok()\nEnq(1)/Ok()\nDeq()/Ok(3)\n"
	want := History{Enq(3), Enq(1)}

	// Every truncation point inside the final line yields the two-op
	// prefix — except where the truncated tail is itself a complete op
	// (only the newline lost), which parses and is kept.
	prefixLen := len("Enq(3)/Ok()\nEnq(1)/Ok()\n")
	for cut := prefixLen + 1; cut < len(full); cut++ {
		got, err := ReadLines(strings.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		expect := want
		if tail, perr := ParseOp(full[prefixLen:cut]); perr == nil {
			expect = append(want.Append(), tail)
		}
		if !got.Equal(expect) {
			t.Fatalf("cut at %d: got %v, want %v", cut, got, expect)
		}
	}

	// A malformed line mid-file is not a torn tail: anything after it —
	// even a blank line — proves the writer kept going.
	if _, err := ReadLines(strings.NewReader("Enq(3)/Ok()\nEnq(1\nDeq()/Ok(3)\n")); err == nil {
		t.Fatal("malformed mid-file line accepted")
	}
	if _, err := ReadLines(strings.NewReader("Enq(3)/Ok()\nEnq(1\n\n")); err == nil {
		t.Fatal("malformed line followed by blank accepted")
	}

	// A torn final line that happens to be a prefix of a valid op is
	// still dropped, not misparsed.
	got, err := ReadLines(strings.NewReader("Enq(3)/Ok()\nEnq(1)"))
	if err != nil {
		t.Fatalf("parseable-looking torn tail: %v", err)
	}
	if !got.Equal(History{Enq(3)}) {
		t.Fatalf("parseable-looking torn tail: got %v, want [Enq(3)/Ok()]", got)
	}
}
