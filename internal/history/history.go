// Package history models computations as finite sequences of operation
// executions, following Section 2 of Herlihy & Wing, "Specifying Graceful
// Degradation in Distributed Systems" (PODC 1987).
//
// An operation execution is written op(args*)/term(res*): the operation
// name and argument values form the invocation, and the termination
// condition and result values form the response. "Ok" denotes normal
// termination. A history is a finite sequence of such executions.
package history

import (
	"fmt"
	"strconv"
	"strings"
)

// Term is a termination condition name.
type Term string

// Standard termination conditions used throughout the library.
const (
	// Ok is normal termination.
	Ok Term = "Ok"
	// Over is the bank-account overdraft exception (Section 3.4).
	Over Term = "Over"
)

// Op is one operation execution: an invocation paired with a response.
// The zero value is not meaningful; construct with MakeOp or the typed
// helpers in the packages that define each data type.
type Op struct {
	// Name is the operation name, e.g. "Enq".
	Name string
	// Args are the invocation's argument values.
	Args []int
	// Term is the termination condition name, e.g. Ok.
	Term Term
	// Res are the response's result values.
	Res []int
}

// MakeOp builds an operation execution. The args and res slices are
// copied so the Op does not alias caller memory.
func MakeOp(name string, args []int, term Term, res []int) Op {
	return Op{
		Name: name,
		Args: append([]int(nil), args...),
		Term: term,
		Res:  append([]int(nil), res...),
	}
}

// Invocation is an operation name plus argument values, without a
// response. Quorum intersection relations (Section 3.1) relate
// invocations to operations.
type Invocation struct {
	Name string
	Args []int
}

// Inv returns op's invocation.
func (op Op) Inv() Invocation {
	return Invocation{Name: op.Name, Args: append([]int(nil), op.Args...)}
}

// WithResponse completes an invocation with the given response.
func (inv Invocation) WithResponse(term Term, res []int) Op {
	return MakeOp(inv.Name, inv.Args, term, res)
}

// String renders the invocation as "Name(a1,a2)".
func (inv Invocation) String() string {
	return inv.Name + "(" + joinInts(inv.Args) + ")"
}

// Equal reports whether two operation executions are identical.
func (op Op) Equal(other Op) bool {
	return op.Name == other.Name &&
		op.Term == other.Term &&
		intsEqual(op.Args, other.Args) &&
		intsEqual(op.Res, other.Res)
}

// String renders the execution as "Name(args)/Term(res)", the paper's
// notation, e.g. "Enq(3)/Ok()".
func (op Op) String() string {
	return op.Name + "(" + joinInts(op.Args) + ")/" + string(op.Term) + "(" + joinInts(op.Res) + ")"
}

// History is a finite sequence of operation executions. The methods
// treat History values as immutable: Append copies.
type History []Op

// Empty is the empty history Λ.
var Empty = History{}

// Append returns H·p without mutating h. The returned history never
// shares backing storage with h, so callers may retain both.
func (h History) Append(ops ...Op) History {
	out := make(History, 0, len(h)+len(ops))
	out = append(out, h...)
	out = append(out, ops...)
	return out
}

// Equal reports whether two histories are the same sequence.
func (h History) Equal(other History) bool {
	if len(h) != len(other) {
		return false
	}
	for i := range h {
		if !h[i].Equal(other[i]) {
			return false
		}
	}
	return true
}

// Key is a canonical encoding of the history, usable as a map key.
func (h History) Key() string {
	var b strings.Builder
	for i, op := range h {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(op.String())
	}
	return b.String()
}

// String renders the history in the paper's notation, ops separated by
// " · " (concatenation).
func (h History) String() string {
	if len(h) == 0 {
		return "Λ"
	}
	parts := make([]string, len(h))
	for i, op := range h {
		parts[i] = op.String()
	}
	return strings.Join(parts, " · ")
}

// Prefix returns the first n operations of h (n clamped to len(h)).
func (h History) Prefix(n int) History {
	if n > len(h) {
		n = len(h)
	}
	if n < 0 {
		n = 0
	}
	return h[:n:n]
}

// Last returns the final operation. It panics on the empty history.
func (h History) Last() Op {
	if len(h) == 0 {
		panic("history: Last of empty history")
	}
	return h[len(h)-1]
}

// Filter returns the subhistory of operations satisfying keep, in order.
func (h History) Filter(keep func(Op) bool) History {
	var out History
	for _, op := range h {
		if keep(op) {
			out = append(out, op)
		}
	}
	return out
}

// Select returns the subhistory at the given (sorted, unique) indexes.
func (h History) Select(indexes []int) History {
	out := make(History, 0, len(indexes))
	for _, i := range indexes {
		out = append(out, h[i])
	}
	return out
}

// Count returns the number of operations with the given name.
func (h History) Count(name string) int {
	n := 0
	for _, op := range h {
		if op.Name == name {
			n++
		}
	}
	return n
}

// IsSubhistoryOf reports whether h is a (not necessarily contiguous)
// subsequence of g.
func (h History) IsSubhistoryOf(g History) bool {
	j := 0
	for _, op := range g {
		if j < len(h) && h[j].Equal(op) {
			j++
		}
	}
	return j == len(h)
}

// Parse parses the output of History.String (or Key), accepting either
// " · " or single-space separators. It is the inverse of String for
// histories produced by this package.
func Parse(s string) (History, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "Λ" {
		return Empty, nil
	}
	fields := strings.Split(strings.ReplaceAll(s, " · ", " "), " ")
	h := make(History, 0, len(fields))
	for _, f := range fields {
		op, err := ParseOp(f)
		if err != nil {
			return nil, fmt.Errorf("history: parse %q: %w", f, err)
		}
		h = append(h, op)
	}
	return h, nil
}

// ParseOp parses one "Name(args)/Term(res)" token.
func ParseOp(s string) (Op, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Op{}, fmt.Errorf("missing '/' in %q", s)
	}
	name, args, err := parseCall(s[:slash])
	if err != nil {
		return Op{}, err
	}
	term, res, err := parseCall(s[slash+1:])
	if err != nil {
		return Op{}, err
	}
	return Op{Name: name, Args: args, Term: Term(term), Res: res}, nil
}

func parseCall(s string) (string, []int, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed call %q", s)
	}
	name := s[:open]
	inner := s[open+1 : len(s)-1]
	if inner == "" {
		return name, nil, nil
	}
	parts := strings.Split(inner, ",")
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return "", nil, fmt.Errorf("bad integer %q in %q", p, s)
		}
		vals[i] = v
	}
	return name, vals, nil
}

func joinInts(xs []int) string {
	if len(xs) == 0 {
		return ""
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
