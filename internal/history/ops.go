package history

// Constructors for the operation executions of the data types studied in
// the paper: queues (Enq/Deq) and bank accounts (Credit/Debit). Keeping
// these in one place makes specs, tests, and experiments read like the
// paper's notation.

// Operation and event names shared across the library.
const (
	NameEnq    = "Enq"
	NameDeq    = "Deq"
	NameCredit = "Credit"
	NameDebit  = "Debit"
	NameCommit = "Commit"
	NameAbort  = "Abort"
)

// Enq returns Enq(e)/Ok().
func Enq(e int) Op {
	return Op{Name: NameEnq, Args: []int{e}, Term: Ok}
}

// DeqOk returns Deq()/Ok(e).
func DeqOk(e int) Op {
	return Op{Name: NameDeq, Term: Ok, Res: []int{e}}
}

// DeqInv returns the invocation Deq().
func DeqInv() Invocation {
	return Invocation{Name: NameDeq}
}

// EnqInv returns the invocation Enq(e).
func EnqInv(e int) Invocation {
	return Invocation{Name: NameEnq, Args: []int{e}}
}

// Credit returns Credit(n)/Ok().
func Credit(n int) Op {
	return Op{Name: NameCredit, Args: []int{n}, Term: Ok}
}

// DebitOk returns Debit(n)/Ok().
func DebitOk(n int) Op {
	return Op{Name: NameDebit, Args: []int{n}, Term: Ok}
}

// DebitOver returns Debit(n)/Over(), the overdraft exception.
func DebitOver(n int) Op {
	return Op{Name: NameDebit, Args: []int{n}, Term: Over}
}

// QueueAlphabet returns every Enq and Deq execution over the element
// domain {1..maxElem}: Enq(e)/Ok() and Deq()/Ok(e) for each e. This is
// the input alphabet used by bounded language checks for the queue
// family of specifications.
func QueueAlphabet(maxElem int) []Op {
	ops := make([]Op, 0, 2*maxElem)
	for e := 1; e <= maxElem; e++ {
		ops = append(ops, Enq(e))
	}
	for e := 1; e <= maxElem; e++ {
		ops = append(ops, DeqOk(e))
	}
	return ops
}

// AccountAlphabet returns Credit and Debit executions (both outcomes)
// over amounts {1..maxAmount}.
func AccountAlphabet(maxAmount int) []Op {
	ops := make([]Op, 0, 3*maxAmount)
	for n := 1; n <= maxAmount; n++ {
		ops = append(ops, Credit(n))
	}
	for n := 1; n <= maxAmount; n++ {
		ops = append(ops, DebitOk(n), DebitOver(n))
	}
	return ops
}
