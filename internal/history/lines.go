package history

import (
	"bufio"
	"fmt"
	"io"
)

// WriteLines serializes a history as text, one operation execution per
// line in the paper's "Name(args)/Term(res)" notation — the audited
// history artifact a soak run exports so a later audit-sidecar run can
// replay (and resume) the exact same check. The encoding is the
// inverse of ReadLines and byte-deterministic.
func WriteLines(w io.Writer, h History) error {
	bw := bufio.NewWriter(w)
	for _, op := range h {
		if _, err := bw.WriteString(op.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLines parses the output of WriteLines. Blank lines are ignored;
// anything else must be a well-formed operation execution — except the
// final line of the input, where a parse failure is tolerated as a
// torn tail and the partial line is dropped. A writer killed mid-line
// (the routine crash case for exported histories: WriteLines emits one
// op per '\n'-terminated line, so a torn write leaves a partial final
// line and nothing after it) therefore still yields the complete
// prefix; a malformed line anywhere *before* the end of the input is
// real corruption and still fails.
func ReadLines(r io.Reader) (History, error) {
	var h History
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	var tornErr error
	for sc.Scan() {
		line++
		// Anything after a bad line — even a blank — means the bad
		// line was not a torn tail.
		if tornErr != nil {
			return nil, tornErr
		}
		s := sc.Text()
		if s == "" {
			continue
		}
		op, err := ParseOp(s)
		if err != nil {
			tornErr = fmt.Errorf("history: line %d: %w", line, err)
			continue
		}
		h = append(h, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}
