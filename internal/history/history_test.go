package history

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Enq(3), "Enq(3)/Ok()"},
		{DeqOk(7), "Deq()/Ok(7)"},
		{Credit(10), "Credit(10)/Ok()"},
		{DebitOk(4), "Debit(4)/Ok()"},
		{DebitOver(9), "Debit(9)/Over()"},
		{MakeOp("Op", []int{1, 2}, Ok, []int{3, 4}), "Op(1,2)/Ok(3,4)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	ops := []Op{
		Enq(1), DeqOk(2), Credit(5), DebitOver(3),
		MakeOp("X", []int{-1, 0, 42}, "Weird", []int{7}),
	}
	for _, op := range ops {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if !got.Equal(op) {
			t.Errorf("round trip: got %v, want %v", got, op)
		}
	}
}

func TestParseOpErrors(t *testing.T) {
	for _, s := range []string{"", "Enq(3)", "Enq3)/Ok()", "Enq(3)/Ok(", "Enq(x)/Ok()"} {
		if _, err := ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q): expected error", s)
		}
	}
}

func TestHistoryStringAndParse(t *testing.T) {
	h := History{Enq(1), Enq(2), DeqOk(1)}
	want := "Enq(1)/Ok() · Enq(2)/Ok() · Deq()/Ok(1)"
	if got := h.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	back, err := Parse(h.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !back.Equal(h) {
		t.Errorf("Parse round trip: got %v", back)
	}
	if Empty.String() != "Λ" {
		t.Errorf("empty history renders as %q", Empty.String())
	}
	emptyBack, err := Parse("Λ")
	if err != nil || len(emptyBack) != 0 {
		t.Errorf("Parse(Λ) = %v, %v", emptyBack, err)
	}
}

func TestAppendDoesNotAlias(t *testing.T) {
	h := History{Enq(1)}
	a := h.Append(Enq(2))
	b := h.Append(Enq(3))
	if !a.Equal(History{Enq(1), Enq(2)}) {
		t.Errorf("a = %v", a)
	}
	if !b.Equal(History{Enq(1), Enq(3)}) {
		t.Errorf("b corrupted by sibling append: %v", b)
	}
}

func TestFilterSelectCount(t *testing.T) {
	h := History{Enq(1), DeqOk(1), Enq(2), DeqOk(2)}
	deqs := h.Filter(func(op Op) bool { return op.Name == NameDeq })
	if !deqs.Equal(History{DeqOk(1), DeqOk(2)}) {
		t.Errorf("Filter = %v", deqs)
	}
	if h.Count(NameEnq) != 2 || h.Count(NameDeq) != 2 || h.Count("Nope") != 0 {
		t.Errorf("Count wrong: %d %d", h.Count(NameEnq), h.Count(NameDeq))
	}
	sel := h.Select([]int{0, 3})
	if !sel.Equal(History{Enq(1), DeqOk(2)}) {
		t.Errorf("Select = %v", sel)
	}
}

func TestIsSubhistoryOf(t *testing.T) {
	g := History{Enq(1), Enq(2), DeqOk(1), Enq(3)}
	tests := []struct {
		h    History
		want bool
	}{
		{History{}, true},
		{History{Enq(1)}, true},
		{History{Enq(2), Enq(3)}, true},
		{History{Enq(1), Enq(2), DeqOk(1), Enq(3)}, true},
		{History{DeqOk(1), Enq(2)}, false}, // order reversed
		{History{Enq(4)}, false},
	}
	for _, tt := range tests {
		if got := tt.h.IsSubhistoryOf(g); got != tt.want {
			t.Errorf("%v subhistory of %v = %v, want %v", tt.h, g, got, tt.want)
		}
	}
}

func TestPrefix(t *testing.T) {
	h := History{Enq(1), Enq(2), Enq(3)}
	if got := h.Prefix(2); !got.Equal(History{Enq(1), Enq(2)}) {
		t.Errorf("Prefix(2) = %v", got)
	}
	if got := h.Prefix(99); !got.Equal(h) {
		t.Errorf("Prefix(99) = %v", got)
	}
	if got := h.Prefix(-1); len(got) != 0 {
		t.Errorf("Prefix(-1) = %v", got)
	}
	// Prefix must not share writable tail with h.
	p := h.Prefix(1)
	_ = p.Append(Enq(9))
	if !h.Equal(History{Enq(1), Enq(2), Enq(3)}) {
		t.Errorf("h mutated via prefix append: %v", h)
	}
}

func TestLastPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	Empty.Last()
}

func TestInvocation(t *testing.T) {
	op := DeqOk(5)
	inv := op.Inv()
	if inv.String() != "Deq()" {
		t.Errorf("Inv = %q", inv.String())
	}
	if got := inv.WithResponse(Ok, []int{5}); !got.Equal(op) {
		t.Errorf("WithResponse = %v", got)
	}
	if EnqInv(2).String() != "Enq(2)" {
		t.Errorf("EnqInv = %q", EnqInv(2).String())
	}
}

func TestQueueAlphabet(t *testing.T) {
	a := QueueAlphabet(3)
	if len(a) != 6 {
		t.Fatalf("len = %d, want 6", len(a))
	}
	seen := map[string]bool{}
	for _, op := range a {
		seen[op.String()] = true
	}
	for _, want := range []string{"Enq(1)/Ok()", "Enq(3)/Ok()", "Deq()/Ok(2)"} {
		if !seen[want] {
			t.Errorf("alphabet missing %s", want)
		}
	}
}

func TestAccountAlphabet(t *testing.T) {
	a := AccountAlphabet(2)
	if len(a) != 6 {
		t.Fatalf("len = %d, want 6", len(a))
	}
	if a[0].Name != NameCredit {
		t.Errorf("first op %v", a[0])
	}
}

// Property: String/ParseOp round-trips for arbitrary ops with small
// non-negative values (negative values round-trip too; tested above).
func TestOpRoundTripQuick(t *testing.T) {
	f := func(nameSeed uint8, args, res []uint8) bool {
		names := []string{"Enq", "Deq", "Credit", "Debit", "Read", "Write"}
		op := Op{Name: names[int(nameSeed)%len(names)], Term: Ok}
		for _, a := range args {
			op.Args = append(op.Args, int(a))
		}
		for _, r := range res {
			op.Res = append(op.Res, int(r))
		}
		back, err := ParseOp(op.String())
		return err == nil && back.Equal(op)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective on distinct histories drawn from a small
// alphabet (distinct sequences have distinct keys).
func TestHistoryKeyInjectiveQuick(t *testing.T) {
	alphabet := QueueAlphabet(3)
	decode := func(idx []uint8) History {
		var h History
		for _, i := range idx {
			h = append(h, alphabet[int(i)%len(alphabet)])
		}
		return h
	}
	f := func(a, b []uint8) bool {
		ha, hb := decode(a), decode(b)
		if ha.Equal(hb) {
			return ha.Key() == hb.Key()
		}
		return ha.Key() != hb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
