package integration

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

// The determinism facts Theorem 4's proof leans on hold for the paper's
// automata: "for all H in L(MPQ), δ*(H) is a singleton set" — and the
// same for the other deterministic specifications.
func TestProofDeterminismFacts(t *testing.T) {
	alphabet := history.QueueAlphabet(2)
	for _, a := range []automaton.Automaton{
		specs.PriorityQueue(), specs.MultiPriorityQueue(), specs.FIFOQueue(),
		specs.OutOfOrderQueue(), specs.DegeneratePriorityQueue(),
		specs.BagAutomaton(),
	} {
		ok, witness := automaton.IsDeterministic(a, alphabet, 5)
		if !ok {
			t.Errorf("%s nondeterministic at %v", a.Name(), witness)
		}
	}
	// The stuttering queue is genuinely nondeterministic (stutter vs
	// advance).
	ok, _ := automaton.IsDeterministic(specs.StutteringQueue(2), alphabet, 4)
	if ok {
		t.Errorf("Stuttering_2 reported deterministic")
	}
	// MFQueue's slot-level served marks make it nondeterministic only
	// when duplicate element values occur (re-serving slot 0 of [1*,1]
	// versus serving slot 1 yield distinct states); with distinct
	// elements it is deterministic.
	ok, witness := automaton.IsDeterministic(specs.MultiFIFOQueue(), alphabet, 4)
	if ok {
		t.Errorf("MFQueue with duplicates reported deterministic")
	} else if witness.Count(history.NameEnq) < 2 {
		t.Errorf("MFQueue nondeterminism witness without duplicate enqueues: %v", witness)
	}
}

// Soak: a long fault-ridden degraded run with the online Monitor
// cross-checked against the offline audit at sampled points, and the
// final history re-justified by the QCA machinery.
func TestSoakClusterMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	lat := core.TaxiSimpleLattice()
	for seed := int64(0); seed < 3; seed++ {
		g := sim.NewRNG(seed)
		c := cluster.New(cluster.Config{
			Sites:   5,
			Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
			Base:    specs.PriorityQueue(),
			Eval:    quorum.PQEval,
			Respond: cluster.PQResponder,
		})
		var engine sim.Engine
		faults := cluster.NewFaultProcess(c, &engine, g.Split(), cluster.FaultConfig{
			MTTF: 12, MTTR: 4, MTBP: 30, PartitionDwell: 8,
		})
		faults.Start()
		m := lattice.NewMonitor(lat)
		fed := 0
		at := 0.0
		for i := 0; i < 400; i++ {
			at += g.Exp(0.5)
			i := i
			engine.At(at, func() {
				cl := c.Client(g.Intn(5))
				cl.Degrade = true
				var op history.Op
				var err error
				if i%5 < 3 {
					op, err = cl.Execute(history.EnqInv(1 + g.Intn(9)))
				} else {
					op, err = cl.Execute(history.DeqInv())
				}
				if err != nil {
					return
				}
				fed++
				if !m.Feed(op) {
					t.Errorf("seed %d: monitor died at op %d (%v)", seed, fed, op)
				}
				// Periodic cross-check against the offline audit.
				if fed%50 == 0 {
					want, ok := lat.WeakestAccepting(c.Observed())
					if !ok {
						t.Fatalf("seed %d: offline audit rejected observed history", seed)
					}
					got := m.Current()
					if len(got) != len(want) {
						t.Fatalf("seed %d at %d ops: monitor %v vs offline %v", seed, fed, got, want)
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("seed %d: monitor %v vs offline %v", seed, got, want)
						}
					}
				}
			})
		}
		engine.Run(at + 100)
		if fed < 200 {
			t.Fatalf("seed %d: only %d ops completed (%s)", seed, fed, faults)
		}
		obs := c.Observed()
		// Everything the degraded cluster did is justified by the
		// fully-relaxed QCA — i.e., by SOME choice of views.
		qca := quorum.NewQCA("QCA(PQ,∅,η)", specs.PriorityQueue(), quorum.NewRelation(), quorum.PQFold())
		// QCA acceptance enumerates views; for long histories use the
		// degenerate equivalence instead (E06): L(QCA(PQ,∅,η)) = L(DegenPQ).
		if !automaton.Accepts(specs.DegeneratePriorityQueue(), obs) {
			t.Fatalf("seed %d: observed history outside the lattice bottom", seed)
		}
		_ = qca
	}
}
