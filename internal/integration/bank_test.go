package integration

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/value"
)

func bankCluster(creditFinal, debitQuorum int) *cluster.Cluster {
	votes := quorum.NewVoting([]int{1, 1, 1, 1, 1}, map[string]quorum.OpQuorums{
		history.NameCredit: {Initial: 1, Final: creditFinal},
		history.NameDebit:  {Initial: debitQuorum, Final: debitQuorum},
	})
	return cluster.New(cluster.Config{
		Sites:   5,
		Quorums: votes,
		Base:    specs.BankAccount(),
		Eval:    quorum.AccountEval,
		Respond: cluster.AccountResponder,
	})
}

// randomBankWorkload runs credits and debits from random sites under
// random crash/partition churn.
func randomBankWorkload(g *sim.RNG, c *cluster.Cluster, ops int, degrade bool) {
	for i := 0; i < ops; i++ {
		switch g.Intn(7) {
		case 0:
			c.Crash(g.Intn(5))
		case 1:
			c.Restore(g.Intn(5))
			c.Gossip()
		case 2:
			cut := 1 + g.Intn(4)
			perm := g.Perm(5)
			c.Partition(perm[:cut], perm[cut:])
		case 3:
			c.Heal()
			c.Gossip()
		}
		cl := c.Client(g.Intn(5))
		if g.Bool(0.55) {
			// Section 3.4: credits may complete at whatever sites are
			// reachable (their final quorums grow later)...
			cl.Degrade = degrade
			_, _ = cl.Execute(history.Invocation{Name: history.NameCredit, Args: []int{1 + g.Intn(4)}})
		} else {
			// ...but debits always access a majority (A2 is never
			// relaxed), failing outright when none is reachable.
			_, _ = cl.Execute(history.Invocation{Name: history.NameDebit, Args: []int{1 + g.Intn(4)}})
		}
	}
}

// With both A1 and A2 realized (credit finals and debit quorums are
// majorities), a non-degrading bank cluster is one-copy serializable
// under arbitrary faults: every observed history lies in L(Account).
func TestBankClusterFullConstraintsSerializable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := sim.NewRNG(seed)
		c := bankCluster(3, 3)
		randomBankWorkload(g, c, 70, false)
		obs := c.Observed()
		if !automaton.Accepts(specs.BankAccount(), obs) {
			t.Fatalf("seed %d: full-constraint bank left L(Account): %v", seed, obs)
		}
	}
}

// With lazy credits (A1 relaxed by a final credit quorum of one) the
// cluster may bounce spuriously but stays within L(SpuriousAccount):
// the balance invariant survives because A2 still holds.
func TestBankClusterLazyCreditsSpurious(t *testing.T) {
	sawDegradation := false
	lat := core.AccountLattice()
	for seed := int64(50); seed < 62; seed++ {
		g := sim.NewRNG(seed)
		c := bankCluster(1, 3)
		randomBankWorkload(g, c, 70, true)
		obs := c.Observed()
		if !automaton.Accepts(specs.SpuriousAccount(), obs) {
			t.Fatalf("seed %d: lazy-credit bank left L(SpuriousAccount): %v", seed, obs)
		}
		if !automaton.Accepts(specs.BankAccount(), obs) {
			sawDegradation = true
		}
		// The true balance never goes negative.
		states := quorum.AccountEval(c.MergedLog().History())
		if states[0].(value.Account).Balance < 0 {
			t.Fatalf("seed %d: overdraft with A2 held", seed)
		}
		// The lattice audit agrees.
		if sets, ok := lat.WeakestAccepting(obs); !ok || len(sets) == 0 {
			t.Fatalf("seed %d: history outside the account lattice", seed)
		}
	}
	if !sawDegradation {
		t.Errorf("no seed exercised a spurious bounce; weaken the workload")
	}
}
