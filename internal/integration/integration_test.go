// Package integration cross-checks the substrates against the formal
// machinery end-to-end: operational runs (cluster protocols, the
// transactional queue runtimes) must always land exactly where the
// relaxation lattices predict, over randomized workloads, fault
// schedules, and interleavings.
package integration

import (
	"errors"
	"fmt"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/txn"
	"relaxlattice/internal/value"
)

// Operational one-copy serializability: a cluster whose clients never
// degrade produces priority-queue histories under ANY schedule of
// crashes, partitions, and repairs — operations fail when quorums are
// missing, but completed operations are always one-copy serializable.
func TestClusterNonDegradingAlwaysSerializable(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := sim.NewRNG(seed)
		c := cluster.New(cluster.Config{
			Sites:   5,
			Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
			Base:    specs.PriorityQueue(),
			Eval:    quorum.PQEval,
			Respond: cluster.PQResponder,
		})
		for i := 0; i < 80; i++ {
			switch g.Intn(6) {
			case 0:
				c.Crash(g.Intn(5))
			case 1:
				c.Restore(g.Intn(5))
				c.Gossip()
			case 2:
				cut := 1 + g.Intn(4)
				perm := g.Perm(5)
				c.Partition(perm[:cut], perm[cut:])
			case 3:
				c.Heal()
				c.Gossip()
			}
			cl := c.Client(g.Intn(5))
			if g.Bool(0.6) {
				_, _ = cl.Execute(history.EnqInv(1 + g.Intn(9)))
			} else {
				_, _ = cl.Execute(history.DeqInv())
			}
		}
		obs := c.Observed()
		if !automaton.Accepts(specs.PriorityQueue(), obs) {
			t.Fatalf("seed %d: non-degrading cluster left L(PQ): %v", seed, obs)
		}
	}
}

// Degrading clients may slide down the lattice but never below its
// bottom: every completed Deq returns something that was enqueued.
func TestClusterDegradingStaysInLattice(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	for seed := int64(100); seed < 106; seed++ {
		g := sim.NewRNG(seed)
		c := cluster.New(cluster.Config{
			Sites:   5,
			Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
			Base:    specs.PriorityQueue(),
			Eval:    quorum.PQEval,
			Respond: cluster.PQResponder,
		})
		for i := 0; i < 60; i++ {
			switch g.Intn(6) {
			case 0:
				c.Crash(g.Intn(5))
			case 1:
				c.Restore(g.Intn(5))
			case 2:
				cut := 1 + g.Intn(4)
				perm := g.Perm(5)
				c.Partition(perm[:cut], perm[cut:])
			case 3:
				c.Heal()
				c.Gossip()
			}
			cl := c.Client(g.Intn(5))
			cl.Degrade = true
			if g.Bool(0.6) {
				_, _ = cl.Execute(history.EnqInv(1 + g.Intn(9)))
			} else {
				_, _ = cl.Execute(history.DeqInv())
			}
		}
		obs := c.Observed()
		sets, ok := lat.WeakestAccepting(obs)
		if !ok {
			t.Fatalf("seed %d: observed history outside the lattice: %v", seed, obs)
		}
		if len(sets) == 0 {
			t.Fatalf("seed %d: no accepting element", seed)
		}
	}
}

// randomTxnWorkload drives a queue runtime with a random interleaving
// of begins, enqueues, dequeues, commits, and aborts, returning the
// schedule and the concurrency high-water mark.
func randomTxnWorkload(g *sim.RNG, strategy txn.Strategy, steps int) (txn.Schedule, int) {
	q := txn.NewQueue(strategy)
	var active []txn.ID
	next := 1
	for i := 0; i < steps; i++ {
		switch {
		case len(active) == 0 || (len(active) < 4 && g.Bool(0.3)):
			active = append(active, q.Begin())
		case g.Bool(0.25):
			// Finish a random active transaction.
			k := g.Intn(len(active))
			tx := active[k]
			active = append(active[:k], active[k+1:]...)
			if g.Bool(0.25) {
				_ = q.AbortTxn(tx)
			} else {
				_ = q.Commit(tx)
			}
		default:
			tx := active[g.Intn(len(active))]
			if g.Bool(0.5) {
				_ = q.Enq(tx, value.Elem(next))
				next++
			} else {
				_, _ = q.Deq(tx) // ErrBlocked/ErrEmpty tolerated
			}
		}
	}
	for _, tx := range active {
		_ = q.Commit(tx)
	}
	return q.Schedule(), q.MaxConcurrentDequeuers()
}

// deqOrderWitness returns a serialization order for the committed
// transactions of s: pure dequeuers (no enqueues) in order of their
// first Deq, everyone else at its commit point. Pure dequeuers must
// serialize in dequeue order — a stutterer serializes before the
// remover it raced even if it commits later — while transactions that
// also enqueue must serialize at commit, where their items join the
// queue. An item a transaction holds can only move toward the front
// between its dequeue and its commit (items ahead get consumed; new
// items join behind), so deferring mixed transactions to commit stays
// within the same lattice element.
func deqOrderWitness(s txn.Schedule) []txn.ID {
	status := s.StatusOf()
	hasEnq := map[txn.ID]bool{}
	for _, st := range s {
		if st.Op.Name == history.NameEnq {
			hasEnq[st.Txn] = true
		}
	}
	pos := map[txn.ID]int{}
	for i, st := range s {
		if status[st.Txn] != txn.StatusCommitted {
			continue
		}
		switch {
		case st.Op.Name == history.NameDeq && !hasEnq[st.Txn]:
			// Pure dequeuer: last Deq (a blocking transaction may
			// dequeue several times, and a later enqueuer's item can
			// feed its later dequeues; dequeue intervals of distinct
			// transactions never overlap, so this preserves stutter
			// order for the single-Deq strategies).
			pos[st.Txn] = i
		case st.IsCommit():
			if _, seen := pos[st.Txn]; !seen {
				pos[st.Txn] = i
			}
		}
	}
	order := make([]txn.ID, 0, len(pos))
	for t := range pos {
		order = append(order, t)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && pos[order[j]] < pos[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Differential property: every random run of each strategy is
// serializable (via the dequeue-order witness) against the behavior
// its lattice predicts at the observed concurrency level.
func TestRandomTxnWorkloadsMatchLattice(t *testing.T) {
	predictions := map[txn.Strategy]func(k int) automaton.Automaton{
		txn.Blocking:    func(int) automaton.Automaton { return specs.FIFOQueue() },
		txn.Optimistic:  func(k int) automaton.Automaton { return specs.Semiqueue(max1(k)) },
		txn.Pessimistic: func(k int) automaton.Automaton { return specs.StutteringQueue(max1(k)) },
	}
	for strategy, predict := range predictions {
		checked := 0
		for seed := int64(0); seed < 100; seed++ {
			g := sim.NewRNG(seed)
			steps := 40
			if strategy == txn.Pessimistic {
				steps = 28 // keep committed-transaction counts permutable
			}
			s, k := randomTxnWorkload(g, strategy, steps)
			if !s.WellFormed() {
				t.Fatalf("%v seed %d: ill-formed schedule %v", strategy, seed, s)
			}
			a := predict(k)
			if strategy == txn.Pessimistic {
				// Pessimistic stutter groups serialize in an order no
				// single positional witness captures (stutterers before
				// the remover, groups in item order, enqueuers
				// interleaved); check Definition 6 directly by
				// permutation search where feasible.
				if len(s.Perm().Txns()) > 7 {
					continue
				}
				checked++
				if !txn.Atomic(s, a) {
					t.Errorf("%v seed %d (k=%d): schedule not atomic for %s:\n%v",
						strategy, seed, k, a.Name(), s)
				}
				if k >= 1 && !txn.Atomic(s, specs.SSQueue(max1(k), max1(k))) {
					t.Errorf("%v seed %d: outside SSqueue_%d_%d", strategy, seed, k, k)
				}
				continue
			}
			checked++
			witness := deqOrderWitness(s)
			if !txn.SerializableInOrder(s.Perm(), a, witness) {
				t.Errorf("%v seed %d (k=%d): schedule not serializable for %s:\n%v",
					strategy, seed, k, a.Name(), s)
			}
			// Everything is also within the combined SSqueue_kk bound.
			if k >= 1 && !txn.SerializableInOrder(s.Perm(), specs.SSQueue(max1(k), max1(k)), witness) {
				t.Errorf("%v seed %d: outside SSqueue_%d_%d", strategy, seed, k, k)
			}
			// The blocking strategy serializes dequeuers, so it is also
			// hybrid atomic (commit order).
			if strategy == txn.Blocking && !txn.HybridAtomic(s, a) {
				t.Errorf("blocking seed %d: not hybrid atomic", seed)
			}
		}
		if checked < 40 {
			t.Errorf("%v: only %d seeds checked", strategy, checked)
		}
	}
}

func max1(k int) int {
	if k < 1 {
		return 1
	}
	return k
}

// Random-history differential check extending Theorem 4 beyond the
// exhaustive bound: sample histories accepted by either side at length
// up to 10 and require agreement.
func TestTheorem4OnSampledLongHistories(t *testing.T) {
	qca := quorum.NewQCA("QCA(PQ,Q1,η)", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold())
	mpq := specs.MultiPriorityQueue()
	alphabet := history.QueueAlphabet(3)
	g := sim.NewRNG(1987)
	const walks = 120
	for w := 0; w < walks; w++ {
		// Random walk through L(MPQ), checking QCA agreement at every
		// step; also probe one random rejected extension per step.
		h := history.Empty
		for step := 0; step < 10; step++ {
			// Collect MPQ-accepted extensions.
			var accepted []history.Op
			for _, op := range alphabet {
				if automaton.Accepts(mpq, h.Append(op)) {
					accepted = append(accepted, op)
				} else if automaton.Accepts(qca, h.Append(op)) {
					t.Fatalf("QCA accepts %v · %v, MPQ rejects", h, op)
				}
			}
			if len(accepted) == 0 {
				break
			}
			op := accepted[g.Intn(len(accepted))]
			h = h.Append(op)
			if !automaton.Accepts(qca, h) {
				t.Fatalf("MPQ accepts %v, QCA rejects", h)
			}
		}
	}
}

// End-to-end: a degraded cluster execution audited by the lattice, then
// replayed against the QCA automaton itself — the formal object accepts
// exactly what the operational system produced.
func TestObservedHistoryAcceptedByQCA(t *testing.T) {
	c := cluster.New(cluster.Config{
		Sites:   5,
		Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Eval:    quorum.PQEval,
		Respond: cluster.PQResponder,
	})
	dispatcher := c.Client(0)
	if _, err := dispatcher.Execute(history.EnqInv(7)); err != nil {
		t.Fatalf("Enq: %v", err)
	}
	c.Partition([]int{0, 1}, []int{2, 3, 4})
	left, right := c.Client(0), c.Client(2)
	left.Degrade, right.Degrade = true, true
	if _, err := left.Execute(history.DeqInv()); err != nil {
		t.Fatalf("left Deq: %v", err)
	}
	if _, err := right.Execute(history.DeqInv()); err != nil {
		t.Fatalf("right Deq: %v", err)
	}
	obs := c.Observed()
	// The duplicate service is justified by QCA(PQ, Q1, η) — the formal
	// counterpart of "the partition broke exactly Q2".
	qca := quorum.NewQCA("QCA(PQ,Q1,η)", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold())
	if !automaton.Accepts(qca, obs) {
		t.Fatalf("QCA(PQ,Q1,η) rejects the partitioned execution: %v", obs)
	}
	// And the witness view explains it: the second Deq's justifying
	// view omits the first Deq.
	w, ok := qca.Witness(obs.Prefix(len(obs)-1), obs.Last())
	if !ok {
		t.Fatalf("no witness")
	}
	for _, op := range w {
		if op.Name == history.NameDeq {
			t.Errorf("witness should omit the concurrent Deq: %v", w)
		}
	}
}

// The concurrent (goroutine) queue under randomized hold times also
// lands inside the combined lattice bound.
func TestConcurrentQueueRandomizedLattice(t *testing.T) {
	for _, strategy := range []txn.Strategy{txn.Optimistic, txn.Pessimistic} {
		cq := txn.NewConcurrentQueue(strategy)
		for j := 1; j <= 10; j++ {
			tx := cq.Begin()
			if err := cq.Enq(tx, value.Elem(j)); err != nil {
				t.Fatal(err)
			}
			if err := cq.Commit(tx); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan error, 3)
		for p := 0; p < 3; p++ {
			go func() {
				for i := 0; i < 3; i++ {
					tx := cq.Begin()
					if _, err := cq.Deq(tx); err != nil {
						if errors.Is(err, txn.ErrEmpty) {
							_ = cq.AbortTxn(tx)
							continue
						}
						done <- err
						return
					}
					if err := cq.Commit(tx); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for p := 0; p < 3; p++ {
			if err := <-done; err != nil {
				t.Fatalf("%v worker: %v", strategy, err)
			}
		}
		s, k := cq.Snapshot()
		if !txn.HybridAtomic(s, specs.SSQueue(max1(k), max1(k))) {
			t.Errorf("%v concurrent run (k=%d) outside SSqueue bound:\n%v", strategy, k, s)
		}
	}
}

// Availability measured on the live cluster matches the assignment's
// analytic prediction.
func TestClusterAvailabilityMatchesAnalytic(t *testing.T) {
	voting := quorum.TaxiAssignments(5)["Q1Q2"]
	pUp := 0.7
	g := sim.NewRNG(3)
	var r sim.Ratio
	const trials = 3000
	for i := 0; i < trials; i++ {
		c := cluster.New(cluster.Config{
			Sites:   5,
			Quorums: voting,
			Base:    specs.PriorityQueue(),
			Eval:    quorum.PQEval,
			Respond: cluster.PQResponder,
		})
		seedQueue(t, c)
		up := -1
		for s := 0; s < 5; s++ {
			if g.Bool(pUp) {
				if up < 0 {
					up = s
				}
			} else {
				c.Crash(s)
			}
		}
		if up < 0 {
			r.Observe(false)
			continue
		}
		_, err := c.Client(up).Execute(history.DeqInv())
		r.Observe(err == nil)
	}
	want := voting.Availability(history.NameDeq, pUp)
	if diff := r.Value() - want; diff > 0.03 || diff < -0.03 {
		t.Errorf("measured availability %v, analytic %v", r.Value(), want)
	}
}

func seedQueue(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	cl := c.Client(0)
	if _, err := cl.Execute(history.EnqInv(5)); err != nil {
		t.Fatalf("seed Enq: %v", err)
	}
}

// Sanity: the experiment registry and the lattice tooling agree on the
// paper's headline numbers when run at a larger bound than the unit
// tests use.
func TestTheorem4AtLargerBound(t *testing.T) {
	if testing.Short() {
		t.Skip("long bound")
	}
	r := core.CheckTheorem4(core.Bound{MaxElem: 3, MaxLen: 6})
	if !r.Holds() {
		t.Fatalf("Theorem 4 fails at 3 elements: onlyQCA=%v onlyMPQ=%v",
			r.Compare.OnlyA, r.Compare.OnlyB)
	}
	var total uint64
	for _, n := range r.Compare.CountA {
		total += n
	}
	if total < 2000 {
		t.Errorf("suspiciously small language: %d", total)
	}
	_ = fmt.Sprintf("%v", r)
}
