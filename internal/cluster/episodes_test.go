package cluster

import (
	"bytes"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// TestDegradationEpisodeJournal drives a deterministic fault schedule
// through an observed cluster and pins the full journal byte-for-byte:
// the client's (constraint set, behavior) pair changes exactly at the
// faults, and each transition yields one cluster.episode event. The
// logical clock is the cluster's own mu-protected counter, so these
// bytes are stable across runs — the same guarantee `relaxctl run
// -trace` rests on.
func TestDegradationEpisodeJournal(t *testing.T) {
	rec := obs.NewRecorder()
	reg := obs.NewRegistry()
	c := New(Config{
		Sites:   5,
		Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Eval:    quorum.PQEval,
		Respond: PQResponder,
		Metrics: reg,
		Trace:   rec,
	})
	cl := c.Client(0)
	cl.Degrade = true

	exec := func(inv history.Invocation) {
		t.Helper()
		if _, err := cl.Execute(inv); err != nil {
			t.Fatalf("%v: %v", inv, err)
		}
	}

	exec(history.EnqInv(2)) // healthy: preferred-quorum episode opens
	exec(history.EnqInv(5)) // same pair: no event
	c.Partition([]int{0, 1})
	exec(history.EnqInv(1)) // degraded: all-reachable episode
	c.Heal()
	exec(history.DeqInv()) // healed: preferred-quorum again
	c.Crash(2)
	c.Crash(3)
	c.Crash(4)
	exec(history.DeqInv()) // majority lost: degraded again
	c.Restore(2)
	c.Restore(3)
	c.Restore(4)
	exec(history.DeqInv()) // restored: preferred-quorum

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1,"name":"cluster.episode","client":"1","home":"0","constraints":"Deq,Enq","behavior":"preferred-quorum","op":"Enq","reachable":"5"}
{"t":2,"name":"cluster.partition","groups":"{0,1}"}
{"t":3,"name":"cluster.episode","client":"1","home":"0","constraints":"∅","behavior":"all-reachable","op":"Enq","reachable":"2"}
{"t":4,"name":"cluster.heal"}
{"t":5,"name":"cluster.episode","client":"1","home":"0","constraints":"Deq,Enq","behavior":"preferred-quorum","op":"Deq","reachable":"5"}
{"t":6,"name":"cluster.crash","site":"2"}
{"t":7,"name":"cluster.crash","site":"3"}
{"t":8,"name":"cluster.crash","site":"4"}
{"t":9,"name":"cluster.episode","client":"1","home":"0","constraints":"∅","behavior":"all-reachable","op":"Deq","reachable":"2"}
{"t":10,"name":"cluster.restore","site":"2"}
{"t":11,"name":"cluster.restore","site":"3"}
{"t":12,"name":"cluster.restore","site":"4"}
{"t":13,"name":"cluster.episode","client":"1","home":"0","constraints":"Deq,Enq","behavior":"preferred-quorum","op":"Deq","reachable":"5"}
`
	if buf.String() != want {
		t.Errorf("episode journal:\n%swant:\n%s", buf.String(), want)
	}

	// The commutative side of the same story.
	snap := reg.Snapshot()
	for name, wantN := range map[string]uint64{
		"cluster.execute.attempt.Enq":  3,
		"cluster.execute.attempt.Deq":  3,
		"cluster.execute.ok.Enq":       3,
		"cluster.execute.ok.Deq":       3,
		"cluster.execute.degraded.Enq": 1,
		"cluster.execute.degraded.Deq": 1,
		"cluster.fault.partition":      1,
		"cluster.fault.heal":           1,
		"cluster.fault.crash":          3,
		"cluster.fault.restore":        3,
	} {
		if got, _ := snap.Counter(name); got != wantN {
			t.Errorf("counter %s = %d, want %d", name, got, wantN)
		}
	}
}
