package cluster

import (
	"errors"
	"strings"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/resilience"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

// adaptiveHarness is a 5-site taxi cluster with metrics, tracing, and
// an adaptive client on the canonical ladder.
func adaptiveHarness(t *testing.T, opts resilience.Options) (*Cluster, *AdaptiveClient, *sim.Engine, *obs.Registry, *obs.Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	c := New(Config{
		Sites:   5,
		Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Eval:    quorum.PQEval,
		Respond: PQResponder,
		Metrics: reg,
		Trace:   rec,
	})
	engine := &sim.Engine{}
	a := c.Adaptive(0, TaxiLadder(5), opts, engine, sim.NewRNG(7))
	return c, a, engine, reg, rec
}

func submitAndRun(t *testing.T, a *AdaptiveClient, engine *sim.Engine, inv history.Invocation, horizon float64) (history.Op, resilience.Outcome) {
	t.Helper()
	var op history.Op
	var out resilience.Outcome
	called := false
	a.Submit(inv, func(o history.Op, res resilience.Outcome) {
		op, out, called = o, res, true
	})
	engine.Run(horizon)
	if !called {
		t.Fatalf("submission of %s did not complete by t=%v", inv, horizon)
	}
	return op, out
}

func TestAdaptiveDescendsUnderFaultsAndRecovers(t *testing.T) {
	opts := resilience.Options{
		Policy: resilience.Policy{MaxAttempts: 8, BaseBackoff: 1, Multiplier: 1},
		Controller: resilience.ControllerConfig{
			DescendAfter: 1, AscendAfter: 1, Hedge: 2, ProbeEvery: 5,
		},
	}
	c, a, engine, reg, rec := adaptiveHarness(t, opts)

	// Healthy: executes at the top rung, no retries.
	op, out := submitAndRun(t, a, engine, history.EnqInv(9), 1)
	if out.Err != nil || out.Attempts != 1 || a.Current().Name != "Q1Q2" {
		t.Fatalf("healthy submit: op=%v out=%+v level=%s", op, out, a.Current().Name)
	}

	// Crash three sites: two up. Q1Q2 loses both quorums; Q1 still
	// lacks Enq's final quorum (4 of 5); "none" serves anything.
	c.Crash(2)
	c.Crash(3)
	c.Crash(4)
	_, out = submitAndRun(t, a, engine, history.EnqInv(4), 100)
	if out.Err != nil {
		t.Fatalf("degraded submit failed: %+v", out)
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (one failure per rung above none)", out.Attempts)
	}
	if a.Current().Name != "none" || a.Floor().Name != "none" {
		t.Errorf("level=%s floor=%s, want none/none", a.Current().Name, a.Floor().Name)
	}
	if !a.Controller().Degraded() {
		t.Error("controller not degraded after descents")
	}

	// Faults heal; the periodic probe loop climbs back to the top
	// (Hedge=2 lets it leapfrog Q1 when Q1Q2 answers).
	c.Restore(2)
	c.Restore(3)
	c.Restore(4)
	engine.Run(200)
	if a.Current().Name != "Q1Q2" {
		t.Fatalf("level after heal = %s, want Q1Q2", a.Current().Name)
	}
	if a.Floor().Name != "none" {
		t.Errorf("floor after heal = %s, want none (floor is sticky)", a.Floor().Name)
	}
	if d, asc := a.Controller().Descents(), a.Controller().Ascents(); d != 2 || asc < 1 {
		t.Errorf("descents=%d ascents=%d", d, asc)
	}

	// And the recovered client serves at the preferred rung again.
	if _, out = submitAndRun(t, a, engine, history.DeqInv(), 300); out.Err != nil || out.Attempts != 1 {
		t.Errorf("post-heal Deq: %+v", out)
	}

	// Metrics: retries, descents, ascents, and probes all surfaced.
	snap := reg.Snapshot()
	for _, name := range []string{
		"cluster.adaptive.retry", "cluster.adaptive.descend",
		"cluster.adaptive.ascend", "cluster.adaptive.probe.ok",
	} {
		if v, ok := snap.Counter(name); !ok || v == 0 {
			t.Errorf("metric %s = %d (present=%v), want > 0", name, v, ok)
		}
	}

	// The journal carries the controller's lattice moves as episodes.
	var behaviors []string
	for _, e := range rec.Events() {
		if e.Name != "cluster.episode" {
			continue
		}
		if b, ok := e.Attr("behavior"); ok && strings.HasPrefix(b, "adaptive-") {
			behaviors = append(behaviors, b)
		}
	}
	want := []string{"adaptive-descend:Q1", "adaptive-descend:none", "adaptive-ascend:Q1Q2"}
	if len(behaviors) < len(want) {
		t.Fatalf("adaptive episodes %v, want at least %v", behaviors, want)
	}
	for i, w := range want {
		if behaviors[i] != w {
			t.Errorf("episode %d = %s, want %s", i, behaviors[i], w)
		}
	}
}

func TestAdaptiveDoesNotRetryNoResponse(t *testing.T) {
	opts := resilience.DefaultOptions()
	_, a, engine, _, _ := adaptiveHarness(t, opts)
	// Deq on an empty queue is a semantic rejection, not unavailability:
	// one attempt, no descent.
	_, out := submitAndRun(t, a, engine, history.DeqInv(), 100)
	if !errors.Is(out.Err, ErrNoResponse) || out.Attempts != 1 || out.Reason != resilience.ReasonNonRetryable {
		t.Fatalf("outcome %+v", out)
	}
	if a.Controller().Degraded() {
		t.Error("semantic rejection degraded the client")
	}
}

func TestAdaptiveSubmitBudgetExhaustion(t *testing.T) {
	opts := resilience.Options{
		Policy: resilience.Policy{MaxAttempts: 50, Budget: 10, BaseBackoff: 2, Multiplier: 1},
		Controller: resilience.ControllerConfig{
			// Effectively never descend: the budget, not the ladder,
			// ends this submission.
			DescendAfter: 1000,
		},
	}
	c, a, engine, _, _ := adaptiveHarness(t, opts)
	for s := 0; s < 5; s++ {
		c.Crash(s)
	}
	_, out := submitAndRun(t, a, engine, history.EnqInv(1), 1000)
	if !errors.Is(out.Err, ErrUnavailable) || out.Reason != resilience.ReasonBudget {
		t.Fatalf("outcome %+v, want budget-bounded unavailability", out)
	}
	if out.Elapsed > 10 {
		t.Errorf("spent %v, budget was 10", out.Elapsed)
	}
}

func TestAdaptivePanicsOnBadLadder(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	engine := &sim.Engine{}
	rng := sim.NewRNG(1)
	for _, tc := range []struct {
		name   string
		levels []Level
	}{
		{"empty ladder", nil},
		{"wrong site count", []Level{{Name: "small", Quorums: quorum.Majority(3, history.NameEnq)}}},
		{"nil assignment", []Level{{Name: "nil"}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			c.Adaptive(0, tc.levels, resilience.DefaultOptions(), engine, rng)
		}()
	}
}

// Executing under an explicit rung (ExecuteUnder) gates availability by
// the rung, never by the cluster's preferred assignment, and stamps
// episodes with the rung's label.
func TestExecuteUnderGatesByLevel(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	c := New(Config{
		Sites:   5,
		Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Eval:    quorum.PQEval,
		Respond: PQResponder,
		Metrics: reg,
		Trace:   rec,
	})
	cl := c.Client(0)
	weak := quorum.TaxiAssignments(5)["none"]
	if _, err := cl.ExecuteUnder(history.EnqInv(3), weak, "none"); err != nil {
		t.Fatalf("ExecuteUnder healthy: %v", err)
	}
	// Down to one site: the preferred assignment is hopeless, the weak
	// rung still serves. Degrade stays false — the rung is the gate.
	c.Crash(1)
	c.Crash(2)
	c.Crash(3)
	c.Crash(4)
	if _, err := cl.Execute(history.DeqInv()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("preferred Execute on 1 site: %v", err)
	}
	op, err := cl.ExecuteUnder(history.DeqInv(), weak, "none")
	if err != nil || op.Res[0] != 3 {
		t.Fatalf("weak-rung Deq: op=%v err=%v", op, err)
	}
	// The level label reaches the journal.
	found := false
	for _, e := range rec.Events() {
		if b, ok := e.Attr("behavior"); ok && b == "level:none" {
			found = true
		}
	}
	if !found {
		t.Error("no level:none episode recorded")
	}
	// A rung over the wrong number of sites is rejected up front.
	defer func() {
		if recover() == nil {
			t.Error("mismatched gate did not panic")
		}
	}()
	_, _ = cl.ExecuteUnder(history.DeqInv(), quorum.Majority(3, history.NameDeq), "bad")
}
