package cluster

import (
	"bytes"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/resilience"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

// Metamorphic relations over the adaptive cluster: the fault-free
// variant of any seeded scenario is the MTTF→∞/MTBP→∞ limit, and in
// that limit a client must stay at the top of the ladder with every
// submission served on its first attempt; and the whole scenario —
// workload, faults, retries, probes — must replay byte-identically
// from its seed (metrics snapshot and episode journal alike).

// adaptiveScenario runs one seeded workload and returns its outcome.
type scenarioResult struct {
	completed, failed, retries int
	floor, level               string
	metrics                    []byte
	journal                    []byte
}

func runScenario(t *testing.T, seed int64, faults FaultConfig) scenarioResult {
	t.Helper()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	c := New(Config{
		Sites:   5,
		Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Eval:    quorum.PQEval,
		Respond: PQResponder,
		Metrics: reg,
		Trace:   rec,
	})
	g := sim.NewRNG(seed)
	var engine sim.Engine
	a := c.Adaptive(0, TaxiLadder(5), resilience.Options{
		Policy:     resilience.Policy{MaxAttempts: 6, Budget: 30, BaseBackoff: 0.5, MaxBackoff: 4, Multiplier: 2, Jitter: 0.2},
		Controller: resilience.ControllerConfig{DescendAfter: 2, AscendAfter: 4, Hedge: 2, ProbeEvery: 8},
	}, &engine, g.Split())
	fp := NewFaultProcess(c, &engine, g.Split(), faults)
	fp.Start()
	engine.At(100, fp.Stop)

	var res scenarioResult
	at := 0.0
	for i := 0; i < 80; i++ {
		at += g.Exp(1.2)
		inv := history.DeqInv()
		if i%3 != 2 {
			inv = history.EnqInv(1 + g.Intn(9))
		}
		engine.At(at, func() {
			a.Submit(inv, func(_ history.Op, out resilience.Outcome) {
				if out.Err == nil {
					res.completed++
				} else {
					res.failed++
				}
				res.retries += out.Attempts - 1
			})
		})
	}
	engine.Run(250)
	res.floor = a.Floor().Name
	res.level = a.Current().Name
	var mbuf, jbuf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&mbuf); err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	if err := rec.WriteJSONL(&jbuf); err != nil {
		t.Fatalf("journal: %v", err)
	}
	res.metrics = mbuf.Bytes()
	res.journal = jbuf.Bytes()
	return res
}

// ladderRank maps rung names to their depth for "never lower" checks.
var ladderRank = map[string]int{"Q1Q2": 0, "Q1": 1, "none": 2}

func TestMetamorphicFewerFaultsNeverLower(t *testing.T) {
	harsh := FaultConfig{MTTF: 12, MTTR: 8, MTBP: 30, PartitionDwell: 12}
	for seed := int64(1); seed <= 5; seed++ {
		calm := runScenario(t, seed, FaultConfig{})
		faulty := runScenario(t, seed, harsh)
		// The fault-free limit: nothing fails, nothing retries, and the
		// client never leaves the top of the ladder.
		if calm.failed != 0 || calm.retries != 0 {
			t.Errorf("seed %d: calm run failed=%d retries=%d", seed, calm.failed, calm.retries)
		}
		if calm.floor != "Q1Q2" || calm.level != "Q1Q2" {
			t.Errorf("seed %d: calm run floor=%s level=%s, want Q1Q2", seed, calm.floor, calm.level)
		}
		if calm.completed != 80 {
			t.Errorf("seed %d: calm run completed %d of 80", seed, calm.completed)
		}
		// Removing faults never lands the client lower in the lattice.
		if ladderRank[calm.floor] > ladderRank[faulty.floor] {
			t.Errorf("seed %d: calm floor %s below faulty floor %s", seed, calm.floor, faulty.floor)
		}
		// And never completes less of the workload.
		if calm.completed < faulty.completed {
			t.Errorf("seed %d: calm completed %d < faulty %d", seed, calm.completed, faulty.completed)
		}
	}
}

func TestMetamorphicScenarioReplaysByteIdentical(t *testing.T) {
	faults := FaultConfig{MTTF: 12, MTTR: 8, MTBP: 30, PartitionDwell: 12}
	for seed := int64(1); seed <= 3; seed++ {
		a := runScenario(t, seed, faults)
		b := runScenario(t, seed, faults)
		if !bytes.Equal(a.metrics, b.metrics) {
			t.Errorf("seed %d: metrics snapshots differ between identical runs", seed)
		}
		if !bytes.Equal(a.journal, b.journal) {
			t.Errorf("seed %d: episode journals differ between identical runs", seed)
		}
		if a.completed != b.completed || a.failed != b.failed || a.retries != b.retries || a.floor != b.floor {
			t.Errorf("seed %d: outcomes differ: %+v vs %+v", seed, a, b)
		}
		// The degraded runs actually exercise the resilience metrics:
		// at least one seed must retry and descend.
		if seed == 1 && a.retries == 0 {
			t.Error("harsh scenario produced no retries; relation is vacuous")
		}
	}
}
