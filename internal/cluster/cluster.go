// Package cluster simulates a replicated object managed by quorum
// consensus (Section 3.1): a set of sites holding timestamped logs, a
// partitionable network, site crashes and recoveries, and clients that
// execute operations with the three-step protocol — merge logs from an
// initial quorum into a view, choose a response consistent with the
// view, and record the new entry at a final quorum.
//
// A client in graceful-degradation mode falls back to whatever sites it
// can reach when the preferred quorum is unavailable; the histories it
// then produces land lower in the relaxation lattice, and the lattice
// machinery (lattice.Relaxation.WeakestAccepting) identifies exactly
// how far they degraded.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/value"
)

// ErrUnavailable is returned when a client cannot assemble the quorums
// its operation requires (and degradation is not enabled).
var ErrUnavailable = errors.New("cluster: quorum unavailable")

// ErrNoResponse is returned when no response to the invocation is
// consistent with the view (e.g. dequeuing from an apparently empty
// queue).
var ErrNoResponse = errors.New("cluster: no response consistent with view")

// Responder chooses the response to an invocation given the view's
// value, completing step 2 of the protocol. ok=false means no response
// is consistent with the view.
type Responder func(s value.Value, inv history.Invocation) (history.Op, bool)

// Config configures a simulated cluster.
type Config struct {
	// Sites is the number of replica sites.
	Sites int
	// Quorums assigns quorums to operations (weighted voting, explicit
	// quorum structures, or any other Assignment).
	Quorums quorum.Assignment
	// Base is the simple object automaton A whose pre/postconditions
	// responses must satisfy.
	Base *automaton.Spec
	// Eval is the evaluation function η used to interpret views; nil
	// defaults to δ* of Base. Prefer Fold where available.
	Eval quorum.Eval
	// Fold is η in incremental (fold) form. When set it takes precedence
	// over Eval and lets the cluster evaluate views directly from their
	// log entries, without materializing a history per operation.
	Fold *quorum.FoldEval
	// Respond chooses responses from views.
	Respond Responder
	// Metrics, when set, receives quorum attempt/failure counters,
	// fault-injection counters, and reachability histograms. All updates
	// are commutative, so snapshots are deterministic regardless of
	// client scheduling.
	Metrics *obs.Registry
	// Trace, when set, receives degradation-episode events: one event
	// each time the cluster's (mode, constraint set) pair changes, i.e.
	// each time the system moves in the relaxation lattice.
	Trace *obs.Recorder
	// Clock supplies logical time for trace events. Nil defaults to a
	// cluster-owned Lamport clock that witnesses every log timestamp and
	// ticks once per recorded transition.
	Clock obs.Clock
	// Audit, when set, receives every completed operation on the
	// observation path (and, if it implements ClaimObserver, every
	// adaptive degradation claim) — the attachment point for online
	// relaxation checking. See the Audit interface for the contract.
	Audit Audit
	// Spans, when set, receives causal spans from the protocol: one
	// span per executed operation with step-1/2/3 children (view
	// assembly, response choice, final-quorum record), happens-before
	// links from each step-1 view to the spans that last wrote the site
	// logs it merged, and — for adaptive clients — submit, attempt,
	// backoff, descend, probe, and ascend spans nested under the
	// operation that triggered them. The tracer's clock should share a
	// domain with Clock; nil disables span tracing entirely.
	Spans *trace.Tracer
}

// Cluster is the simulated replicated object.
type Cluster struct {
	mu       sync.Mutex
	cfg      Config           // immutable after New
	eval     quorum.Eval      // immutable after New
	fold     *quorum.FoldEval // immutable after New; nil when Eval is used
	logs     []quorum.Log     // guarded by mu
	up       []bool           // guarded by mu
	comp     []int            // guarded by mu; network component per site; equal = mutually reachable
	observed history.History  // guarded by mu
	nextID   int              // guarded by mu
	ltime    obs.Logical      // default trace clock; ticked only under mu
	// lastWrite is, per site, the step-3 span that last recorded an
	// entry on that site's log — the happens-before link targets of the
	// next step-1 view that merges the log. All zeros when Spans is nil.
	lastWrite []trace.SpanID // guarded by mu

	// View-evaluation cache (fold mode only): η of recently evaluated
	// views. A client's next view usually extends a previous one by a
	// single entry (new entries carry fresh maximal timestamps, so
	// appends never reorder), and then η of the new view is one fold
	// step from the cached states instead of a full O(|view|) replay —
	// the difference between O(n²) and O(n) total work on a 10k-op soak.
	// Multiple slots track the divergent log lineages a partition
	// creates (one per network component); replacement is round-robin,
	// so cache behavior — like everything else under mu — is
	// deterministic.
	viewCache [viewCacheSlots]viewEntry // guarded by mu
	viewNext  int                       // guarded by mu; round-robin victim
}

// viewCacheSlots bounds the view-evaluation cache: comfortably more
// lineages than a minority partition of a small cluster can create.
const viewCacheSlots = 8

// viewEntry is one cached (view, η(view)) pair; states == nil marks a
// free slot.
type viewEntry struct {
	log    quorum.Log
	states []value.Value
}

// New builds a cluster with all sites up and fully connected. It
// panics on invalid configuration (programming errors).
func New(cfg Config) *Cluster {
	if cfg.Sites <= 0 {
		panic(fmt.Sprintf("cluster: %d sites", cfg.Sites))
	}
	if cfg.Quorums == nil || cfg.Base == nil || cfg.Respond == nil {
		panic("cluster: Quorums, Base, and Respond are required")
	}
	if cfg.Quorums.Sites() != cfg.Sites {
		panic(fmt.Sprintf("cluster: assignment over %d sites, cluster has %d", cfg.Quorums.Sites(), cfg.Sites))
	}
	fold := cfg.Fold
	eval := cfg.Eval
	if fold == nil && eval == nil {
		fold = quorum.DeltaFold(cfg.Base)
	}
	c := &Cluster{
		cfg:       cfg,
		eval:      eval,
		fold:      fold,
		logs:      make([]quorum.Log, cfg.Sites),
		up:        make([]bool, cfg.Sites),
		comp:      make([]int, cfg.Sites),
		lastWrite: make([]trace.SpanID, cfg.Sites),
	}
	for i := range c.up {
		c.up[i] = true
	}
	return c
}

// Crash takes a site down; its log survives for later recovery.
func (c *Cluster) Crash(site int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.up[site] = false
	c.recordFault("crash", obs.KV{K: "site", V: strconv.Itoa(site)})
}

// Restore brings a crashed site back with its log intact.
func (c *Cluster) Restore(site int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.up[site] = true
	c.recordFault("restore", obs.KV{K: "site", V: strconv.Itoa(site)})
}

// Partition splits the network into the given groups of sites; sites
// not listed form one extra component. Clients are attached to sites
// and can reach exactly the sites in their component.
func (c *Cluster) Partition(groups ...[]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.comp {
		c.comp[i] = 0
	}
	for g, group := range groups {
		for _, s := range group {
			c.comp[s] = g + 1
		}
	}
	parts := make([]string, len(groups))
	for i, group := range groups {
		elems := make([]string, len(group))
		for j, s := range group {
			elems[j] = strconv.Itoa(s)
		}
		parts[i] = "{" + strings.Join(elems, ",") + "}"
	}
	c.recordFault("partition", obs.KV{K: "groups", V: strings.Join(parts, " ")})
}

// Heal reconnects the whole network.
func (c *Cluster) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.comp {
		c.comp[i] = 0
	}
	c.recordFault("heal")
}

// UpSites returns how many sites are currently up.
func (c *Cluster) UpSites() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, u := range c.up {
		if u {
			n++
		}
	}
	return n
}

// reachableFrom returns the up sites in the same network component as
// home (including home itself if up). Caller holds mu.
//
//lint:ignore lock-guard caller holds mu (every call site is under Lock)
func (c *Cluster) reachableFrom(home int) []int {
	var out []int
	for i := range c.logs {
		if c.up[i] && c.comp[i] == c.comp[home] {
			out = append(out, i)
		}
	}
	return out
}

// Gossip pushes every site's log to every site reachable from it —
// the asynchronous background propagation of Sections 3 and 3.4.
func (c *Cluster) Gossip() {
	c.mu.Lock()
	defer c.mu.Unlock()
	merged := make([]quorum.Log, len(c.logs))
	for i := range c.logs {
		if !c.up[i] {
			merged[i] = c.logs[i]
			continue
		}
		logs := []quorum.Log{c.logs[i]}
		for j := range c.logs {
			if j != i && c.up[j] && c.comp[j] == c.comp[i] {
				logs = append(logs, c.logs[j])
			}
		}
		merged[i] = quorum.Merge(logs...)
	}
	c.logs = merged
	c.cfg.Metrics.Counter("cluster.gossip").Add(1)
}

// PropagateFrom pushes one site's log to its reachable peers.
func (c *Cluster) PropagateFrom(site int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.up[site] {
		return
	}
	for j := range c.logs {
		if j != site && c.up[j] && c.comp[j] == c.comp[site] {
			c.logs[j] = quorum.Merge(c.logs[j], c.logs[site])
		}
	}
}

// Observed returns the global history of completed operations in
// real-time completion order — the history whose lattice position the
// degradation audit inspects.
func (c *Cluster) Observed() history.History {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observed.Append() // copy
}

// MergedLog returns the union of all resident logs (the object's "true"
// current state, were every update propagated).
func (c *Cluster) MergedLog() quorum.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	return quorum.Merge(c.logs...)
}

// SiteLog returns a copy of one site's resident log.
func (c *Cluster) SiteLog(site int) quorum.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logs[site]
}

// LoadSiteLog replaces one site's resident log — the oracle hook for
// seeding a deterministic cluster from recovered durable state
// (internal/relaxd): load each restarted replica's log, and the model
// cluster continues executing from exactly the state the real service
// landed on, so the checker can certify the recovery point and
// everything after it. The view-evaluation cache is dropped: cached
// lineages may no longer be prefixes of any resident log.
func (c *Cluster) LoadSiteLog(site int, l quorum.Log) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logs[site] = quorum.Merge(l) // Merge of one shares the immutable log
	c.viewCache = [viewCacheSlots]viewEntry{}
	c.viewNext = 0
}

// Client is a protocol participant attached (by locality) to a home
// site. Each client owns a Lamport clock with a globally unique site
// identifier.
type Client struct {
	c     *Cluster
	clock *quorum.Clock
	home  int
	id    int // globally unique client identifier (for trace events)
	// lastEpisode is the client's current (behavior, constraint set)
	// pair; read and written only under the cluster's mu.
	lastEpisode string
	// Degrade enables graceful degradation: when the preferred quorum
	// is unavailable the client proceeds with every reachable site
	// (Section 3.3, "permitting the dispatchers and drivers to enqueue
	// and dequeue requests from all available sites").
	Degrade bool
}

// Client creates a client homed at the given site. Client clock
// identifiers start above the site identifiers so timestamps are
// globally unique.
func (c *Cluster) Client(home int) *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if home < 0 || home >= len(c.logs) {
		panic(fmt.Sprintf("cluster: home site %d out of range", home))
	}
	c.nextID++
	return &Client{
		c:     c,
		clock: quorum.NewClock(len(c.logs) + c.nextID),
		home:  home,
		id:    c.nextID,
	}
}

// Execute runs the three-step quorum-consensus protocol for one
// invocation. On success it returns the completed operation execution.
func (cl *Client) Execute(inv history.Invocation) (history.Op, error) {
	return cl.c.execute(cl, inv, cl.c.cfg.Quorums, "", nil)
}

// ExecuteUnder runs the protocol gated by an alternative quorum
// assignment — one rung of a degradation ladder. The gate decides
// availability (and, failing it, the operation is rejected with
// ErrUnavailable regardless of cl.Degrade); the protocol itself still
// uses every reachable site, so any superset of a gate quorum serves
// as that quorum. Episodes record behavior "level:<label>", while the
// constraint set is still rendered against the cluster's configured
// assignment, keeping episode streams from adaptive and plain clients
// comparable.
func (cl *Client) ExecuteUnder(inv history.Invocation, gate quorum.Assignment, label string) (history.Op, error) {
	if gate.Sites() != len(cl.c.logs) {
		panic(fmt.Sprintf("cluster: gate assignment over %d sites, cluster has %d", gate.Sites(), len(cl.c.logs)))
	}
	return cl.c.execute(cl, inv, gate, label, nil)
}

// ExecuteUnderSpan is ExecuteUnder with an explicit parent span: the
// operation's span tree nests under parent in the causal trace. A nil
// parent roots the operation span at the configured tracer.
func (cl *Client) ExecuteUnderSpan(inv history.Invocation, gate quorum.Assignment, label string, parent *trace.SpanRef) (history.Op, error) {
	if gate.Sites() != len(cl.c.logs) {
		panic(fmt.Sprintf("cluster: gate assignment over %d sites, cluster has %d", gate.Sites(), len(cl.c.logs)))
	}
	return cl.c.execute(cl, inv, gate, label, parent)
}

// beginOpSpan opens the operation span (nil when spans are off). The
// "rung" attribute carries the ladder label, or "base" on the plain
// path — the key the critical-path analyzer aggregates by.
func (c *Cluster) beginOpSpan(cl *Client, inv history.Invocation, label string, parent *trace.SpanRef) *trace.SpanRef {
	if c.cfg.Spans == nil {
		return nil
	}
	rung := label
	if rung == "" {
		rung = "base"
	}
	attrs := []obs.KV{
		{K: "op", V: inv.Name},
		{K: "client", V: strconv.Itoa(cl.id)},
		{K: "home", V: strconv.Itoa(cl.home)},
		{K: "rung", V: rung},
	}
	if parent != nil {
		return parent.Child("cluster.op", attrs...)
	}
	return c.cfg.Spans.Begin("cluster.op", attrs...)
}

// execute is the shared protocol body. A non-empty label marks a
// ladder-gated execution (behavior "level:<label>", no degraded
// fallback); an empty label is the plain path, byte-compatible with
// the original Execute.
func (c *Cluster) execute(cl *Client, inv history.Invocation, gate quorum.Assignment, label string, parent *trace.SpanRef) (history.Op, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	span := c.beginOpSpan(cl, inv, label, parent)
	reachable := c.reachableFrom(cl.home)
	if !c.up[cl.home] {
		reachable = nil // a client whose site is down reaches nothing
	}
	metrics := c.cfg.Metrics
	metrics.Counter("cluster.execute.attempt." + inv.Name).Add(1)
	metrics.Histogram("cluster.reachable", reachableBounds).Observe(int64(len(reachable)))
	quorumOK := hasQuorum(gate, inv.Name, reachable, len(c.logs))
	if !quorumOK && (label != "" || !cl.Degrade) {
		metrics.Counter("cluster.execute.unavailable." + inv.Name).Add(1)
		c.observeEpisode(cl, inv.Name, reachable, behaviorReject)
		span.End(obs.KV{K: "outcome", V: "unavailable"})
		return history.Op{}, fmt.Errorf("%w: op %s reaches %d site(s)", ErrUnavailable, inv.Name, len(reachable))
	}
	if len(reachable) == 0 {
		metrics.Counter("cluster.execute.unavailable." + inv.Name).Add(1)
		c.observeEpisode(cl, inv.Name, reachable, behaviorReject)
		span.End(obs.KV{K: "outcome", V: "unavailable"})
		return history.Op{}, fmt.Errorf("%w: op %s reaches no sites", ErrUnavailable, inv.Name)
	}
	behavior := behaviorQuorum
	if label != "" {
		behavior = behaviorLevel + label
	} else if !quorumOK {
		behavior = behaviorDegraded
		metrics.Counter("cluster.execute.degraded." + inv.Name).Add(1)
	}
	c.observeEpisode(cl, inv.Name, reachable, behavior)
	span.Annotate(obs.KV{K: "behavior", V: behavior})

	// Step 1: merge the logs from an initial quorum into a view. (All
	// reachable sites participate; any superset of an initial quorum is
	// an initial quorum.) The step span links to the step-3 span that
	// last wrote each merged site log — the cross-operation
	// happens-before edges of the causal DAG.
	s1 := span.Child("cluster.step1.view")
	logs := make([]quorum.Log, 0, len(reachable))
	for _, s := range reachable {
		logs = append(logs, c.logs[s])
		s1.Link(c.lastWrite[s])
	}
	view := quorum.Merge(logs...)
	states := c.evalView(view)
	if len(states) == 0 {
		s1.End(obs.KV{K: "sites", V: strconv.Itoa(len(reachable))})
		span.End(obs.KV{K: "outcome", V: "uninterpretable"})
		return history.Op{}, fmt.Errorf("cluster: view not interpretable by η")
	}
	s := states[0]
	s1.End(obs.KV{K: "sites", V: strconv.Itoa(len(reachable))})

	// Step 2: choose a response consistent with the view.
	s2 := span.Child("cluster.step2.respond")
	op, ok := c.cfg.Respond(s, inv)
	if !ok {
		metrics.Counter("cluster.execute.noresponse." + inv.Name).Add(1)
		s2.End(obs.KV{K: "outcome", V: "no-response"})
		span.End(obs.KV{K: "outcome", V: "no-response"})
		return history.Op{}, fmt.Errorf("%w: %s on view %s", ErrNoResponse, inv, s)
	}
	if !c.cfg.Base.PreHolds(s, op) {
		metrics.Counter("cluster.execute.noresponse." + inv.Name).Add(1)
		s2.End(obs.KV{K: "outcome", V: "no-response"})
		span.End(obs.KV{K: "outcome", V: "no-response"})
		return history.Op{}, fmt.Errorf("%w: precondition of %s fails on view %s", ErrNoResponse, op, s)
	}
	s2.End(obs.KV{K: "outcome", V: "ok"})

	// Step 3: append the entry and send the updated view to a final
	// quorum (here: every reachable site).
	s3 := span.Child("cluster.step3.record")
	if maxTS, any := view.MaxTS(); any {
		cl.clock.Witness(maxTS)
	}
	entry := quorum.Entry{TS: cl.clock.Tick(), Op: op}
	updated := view.Append(entry)
	for _, site := range reachable {
		c.logs[site] = quorum.Merge(c.logs[site], updated)
		c.lastWrite[site] = s3.ID()
	}
	s3.End(obs.KV{K: "sites", V: strconv.Itoa(len(reachable))})
	// Grown in place: Observed copies on read, and only Execute (under
	// mu) appends, so amortized growth never aliases a caller's snapshot.
	c.observed = append(c.observed, op)
	metrics.Counter("cluster.execute.ok." + inv.Name).Add(1)
	if c.cfg.Audit != nil {
		c.cfg.Audit.ObserveOp(op)
	}
	span.End(obs.KV{K: "outcome", V: "ok"})
	return op, nil
}

// evalView interprets a view through η. Caller holds mu.
//
//lint:ignore lock-guard caller holds mu (every call site is under Lock)
func (c *Cluster) evalView(view quorum.Log) []value.Value {
	if c.fold == nil {
		return c.eval(view.History())
	}
	// Fold from the cached view with the longest prefix of this one
	// (lowest slot wins ties, keeping the scan deterministic).
	best := -1
	for i, e := range c.viewCache {
		if e.states == nil || !view.HasPrefix(e.log) {
			continue
		}
		if best < 0 || e.log.Len() > c.viewCache[best].log.Len() {
			best = i
		}
	}
	var states []value.Value
	if best >= 0 {
		states = c.fold.EvalLogFrom(c.viewCache[best].states, view, c.viewCache[best].log.Len())
	} else {
		states = c.fold.EvalLog(view)
	}
	if len(states) > 0 {
		// Advance the matched lineage in place; a miss claims the next
		// round-robin victim so each partition component keeps a slot.
		slot := best
		if slot < 0 {
			slot = c.viewNext
			c.viewNext = (c.viewNext + 1) % viewCacheSlots
		}
		c.viewCache[slot] = viewEntry{log: view, states: states}
	}
	return states
}

func hasQuorum(v quorum.Assignment, op string, reachable []int, sites int) bool {
	alive := make([]bool, sites)
	for _, s := range reachable {
		alive[s] = true
	}
	return v.HasQuorum(op, alive)
}

// Probe reports whether a client homed at home could currently
// assemble every quorum of gate — a read-only availability probe.
// Nothing is executed, logged, or recorded: probing is how adaptive
// clients test a stronger rung of the degradation ladder without
// risking an observable failure.
func (c *Cluster) Probe(home int, gate quorum.Assignment) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.up[home] {
		return false
	}
	alive := make([]bool, len(c.logs))
	for _, s := range c.reachableFrom(home) {
		alive[s] = true
	}
	return quorum.FullyAvailable(gate, alive)
}

// View assembles, without executing anything, the merged view a client
// homed at home would read in step 1 of the protocol, along with the
// reachable sites it would be built from. A client on a crashed site
// sees an empty view and no sites.
func (c *Cluster) View(home int) (quorum.Log, []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.up[home] {
		return quorum.Log{}, nil
	}
	reachable := c.reachableFrom(home)
	logs := make([]quorum.Log, 0, len(reachable))
	for _, s := range reachable {
		logs = append(logs, c.logs[s])
	}
	return quorum.Merge(logs...), reachable
}
