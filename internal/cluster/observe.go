package cluster

import (
	"sort"
	"strconv"
	"strings"

	"relaxlattice/internal/obs"
	"relaxlattice/internal/quorum"
)

// This file is the cluster's degradation-episode reporter: the piece
// that makes the relaxation lattice observable at runtime. Every
// client tracks the (behavior, constraint set) pair it last ran under;
// whenever an Execute sees a different pair — a site crashed out of
// the quorum, a partition healed, degradation kicked in — one
// "cluster.episode" event is recorded. The constraint set C is the set
// of operations whose quorums are currently reachable (evaluated over
// Assignment.Ops), and the behavior is φ(C): preferred-quorum service,
// the all-reachable fallback of Section 3.3, or outright rejection.
//
// All observation here happens under c.mu, at deterministic points of
// a deterministic protocol, so at a fixed fault schedule the journal
// is byte-stable.

// Behavior labels for episode events.
const (
	behaviorQuorum   = "preferred-quorum"  // quorum available, normal protocol
	behaviorDegraded = "all-reachable"     // degraded: proceed with every reachable site
	behaviorReject   = "reject"            // no quorum and degradation disabled
	behaviorLevel    = "level:"            // prefix: executed under a degradation-ladder rung
	behaviorDescend  = "adaptive-descend:" // prefix: controller moved down to this rung
	behaviorAscend   = "adaptive-ascend:"  // prefix: controller probed back up to this rung
)

// reachableBounds buckets the per-execute reachable-site counts.
var reachableBounds = []int64{0, 1, 2, 3, 4, 6, 8, 16, 32}

// attemptBounds buckets per-submission retry attempts.
var attemptBounds = []int64{1, 2, 3, 4, 6, 8, 12, 16}

// now returns the next logical timestamp for a trace event. Caller
// holds mu (the default clock is a plain logical counter ticked only
// here, and per-client episode state is mu-protected too).
func (c *Cluster) now() int64 {
	if c.cfg.Clock != nil {
		return c.cfg.Clock.Now()
	}
	return c.ltime.Tick()
}

// constraintSet renders the currently satisfiable constraint set C:
// the sorted operation names whose quorums the reachable sites can
// assemble. An empty set renders as "∅".
//
//lint:ignore lock-guard caller holds mu (every call site is under Lock)
func (c *Cluster) constraintSet(reachable []int) string {
	alive := make([]bool, len(c.logs))
	for _, s := range reachable {
		alive[s] = true
	}
	avail := quorum.AvailableOps(c.cfg.Quorums, alive)
	sort.Strings(avail)
	if len(avail) == 0 {
		return "∅"
	}
	return strings.Join(avail, ",")
}

// observeEpisode records a degradation-episode transition if the
// client's (behavior, constraint set) pair changed. Caller holds mu.
func (c *Cluster) observeEpisode(cl *Client, opName string, reachable []int, behavior string) {
	if c.cfg.Trace == nil {
		return
	}
	cset := c.constraintSet(reachable)
	key := behavior + "|" + cset
	if cl.lastEpisode == key {
		return
	}
	cl.lastEpisode = key
	c.cfg.Trace.Record(c.now(), "cluster.episode",
		obs.KV{K: "client", V: strconv.Itoa(cl.id)},
		obs.KV{K: "home", V: strconv.Itoa(cl.home)},
		obs.KV{K: "constraints", V: cset},
		obs.KV{K: "behavior", V: behavior},
		obs.KV{K: "op", V: opName},
		obs.KV{K: "reachable", V: strconv.Itoa(len(reachable))},
	)
}

// recordAdaptiveTransition records a controller level change as a
// cluster.episode event with the same attribute schema as protocol
// episodes, so one journal carries both the lattice moves the protocol
// observed and the moves the adaptive controller chose. Transitions
// are always recorded (no deduplication): each one is a deliberate
// move in the relaxation lattice.
func (c *Cluster) recordAdaptiveTransition(cl *Client, opName, behavior string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Trace == nil {
		return
	}
	reachable := c.reachableFrom(cl.home)
	if !c.up[cl.home] {
		reachable = nil
	}
	c.cfg.Trace.Record(c.now(), "cluster.episode",
		obs.KV{K: "client", V: strconv.Itoa(cl.id)},
		obs.KV{K: "home", V: strconv.Itoa(cl.home)},
		obs.KV{K: "constraints", V: c.constraintSet(reachable)},
		obs.KV{K: "behavior", V: behavior},
		obs.KV{K: "op", V: opName},
		obs.KV{K: "reachable", V: strconv.Itoa(len(reachable))},
	)
}

// recordFault records one fault/topology event and bumps its counter.
// Caller holds mu.
func (c *Cluster) recordFault(name string, attrs ...obs.KV) {
	c.cfg.Metrics.Counter("cluster.fault." + name).Add(1)
	if c.cfg.Trace != nil {
		c.cfg.Trace.Record(c.now(), "cluster."+name, attrs...)
	}
}
