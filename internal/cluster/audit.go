package cluster

import "relaxlattice/internal/history"

// Audit observes the cluster's observation path: every completed
// operation execution, in the real-time completion order of
// Observed(). An online relaxation checker (internal/relaxcheck)
// implements this to track, live, where the observed history sits in
// the relaxation lattice — failing a soak run the moment a prefix
// escapes the claimed level, instead of discovering it in a post-hoc
// WeakestAccepting audit.
//
// ObserveOp is called under the cluster's mutex at a deterministic
// point of the protocol, so an audit sees exactly the Observed()
// history, one operation at a time, with no gaps or reorderings. An
// implementation must be fast, must not block, and must not call back
// into the cluster (deadlock).
type Audit interface {
	ObserveOp(op history.Op)
}

// ClaimObserver is an optional extension of Audit: an audit that also
// implements it is told about every degradation-ladder move an
// adaptive client makes, as a claim "my history from here on is
// explained by this lattice level". The checker cross-checks each
// claim against the observed history's actual lattice position — the
// online form of the claimed-floor soundness audit in X05.
//
// ObserveClaim is called outside the cluster mutex, synchronously from
// the controller transition (descend or ascend), before the episode
// event for the move is recorded.
type ClaimObserver interface {
	ObserveClaim(client int, level string)
}

// observeClaim forwards an adaptive client's ladder move to the
// configured audit, when it wants claims.
func (c *Cluster) observeClaim(cl *Client, level string) {
	if co, ok := c.cfg.Audit.(ClaimObserver); ok {
		co.ObserveClaim(cl.id, level)
	}
}
