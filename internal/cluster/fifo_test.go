package cluster

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

func fifoCluster(t *testing.T, n int, assignment string) *Cluster {
	t.Helper()
	return New(Config{
		Sites:   n,
		Quorums: quorum.TaxiAssignments(n)[assignment],
		Base:    specs.FIFOQueue(),
		Eval:    quorum.FIFOEval,
		Respond: FIFOResponder,
	})
}

func TestHealthyFIFOCluster(t *testing.T) {
	c := fifoCluster(t, 5, "Q1Q2")
	producer := c.Client(0)
	consumer := c.Client(2)
	for _, e := range []int{7, 3, 9} {
		if _, err := producer.Execute(history.EnqInv(e)); err != nil {
			t.Fatalf("Enq: %v", err)
		}
	}
	var got []int
	for i := 0; i < 3; i++ {
		op, err := consumer.Execute(history.DeqInv())
		if err != nil {
			t.Fatalf("Deq: %v", err)
		}
		got = append(got, op.Res[0])
	}
	want := []int{7, 3, 9} // arrival order, not priority order
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
	if !automaton.Accepts(specs.FIFOQueue(), c.Observed()) {
		t.Errorf("observed history not FIFO: %v", c.Observed())
	}
}

// A partition makes both sides re-serve the oldest request: the
// observed history leaves FIFO but stays inside MFQueue — the
// operational counterpart of the FIFO Theorem-4 analog.
func TestFIFOPartitionDuplicatesInOrder(t *testing.T) {
	c := fifoCluster(t, 5, "Q1Q2")
	producer := c.Client(0)
	if _, err := producer.Execute(history.EnqInv(7)); err != nil {
		t.Fatalf("Enq: %v", err)
	}
	c.Partition([]int{0, 1}, []int{2, 3, 4})
	left, right := c.Client(0), c.Client(2)
	left.Degrade, right.Degrade = true, true
	op1, err1 := left.Execute(history.DeqInv())
	op2, err2 := right.Execute(history.DeqInv())
	if err1 != nil || err2 != nil {
		t.Fatalf("degraded Deqs: %v %v", err1, err2)
	}
	if op1.Res[0] != 7 || op2.Res[0] != 7 {
		t.Fatalf("both sides should serve request 7: %v %v", op1, op2)
	}
	obs := c.Observed()
	if automaton.Accepts(specs.FIFOQueue(), obs) {
		t.Errorf("duplicate service accepted by FIFO: %v", obs)
	}
	if !automaton.Accepts(specs.MultiFIFOQueue(), obs) {
		t.Errorf("observed history should be an MFQueue history: %v", obs)
	}
}
