package cluster

import (
	"fmt"

	"relaxlattice/internal/sim"
)

// FaultConfig parameterizes a background fault process over a cluster:
// independent per-site crash/repair cycles and whole-network
// partition/heal cycles, with exponentially distributed dwell times —
// the crash and communication-failure events of the environment
// automaton (Section 2.3), generated stochastically.
type FaultConfig struct {
	// MTTF is the mean time between a site coming up and its next
	// crash. Zero disables crashes.
	MTTF float64
	// MTTR is the mean repair time for a crashed site.
	MTTR float64
	// MTBP is the mean time between partitions. Zero disables
	// partitions.
	MTBP float64
	// PartitionDwell is the mean time a partition lasts before healing
	// (followed by a gossip round).
	PartitionDwell float64
}

// FaultProcess drives a cluster's failures on a discrete-event engine.
type FaultProcess struct {
	cfg     FaultConfig
	cluster *Cluster
	engine  *sim.Engine
	rng     *sim.RNG
	// Counters for reporting.
	Crashes, Repairs, Partitions, Heals int
}

// NewFaultProcess attaches a fault process to a cluster and engine. It
// panics on non-positive repair/dwell times when the corresponding
// fault class is enabled.
func NewFaultProcess(c *Cluster, engine *sim.Engine, rng *sim.RNG, cfg FaultConfig) *FaultProcess {
	if cfg.MTTF > 0 && cfg.MTTR <= 0 {
		panic(fmt.Sprintf("cluster: crashes enabled with MTTR %v", cfg.MTTR))
	}
	if cfg.MTBP > 0 && cfg.PartitionDwell <= 0 {
		panic(fmt.Sprintf("cluster: partitions enabled with dwell %v", cfg.PartitionDwell))
	}
	return &FaultProcess{cfg: cfg, cluster: c, engine: engine, rng: rng}
}

// Start schedules the initial fault events. Call once before running
// the engine.
func (f *FaultProcess) Start() {
	if f.cfg.MTTF > 0 {
		for site := 0; site < f.cluster.cfg.Sites; site++ {
			f.scheduleCrash(site)
		}
	}
	if f.cfg.MTBP > 0 {
		f.schedulePartition()
	}
}

func (f *FaultProcess) scheduleCrash(site int) {
	f.engine.After(f.rng.Exp(f.cfg.MTTF), func() {
		f.cluster.Crash(site)
		f.Crashes++
		f.engine.After(f.rng.Exp(f.cfg.MTTR), func() {
			f.cluster.Restore(site)
			f.Repairs++
			// A recovering site catches up by gossip.
			f.cluster.Gossip()
			f.scheduleCrash(site)
		})
	})
}

func (f *FaultProcess) schedulePartition() {
	f.engine.After(f.rng.Exp(f.cfg.MTBP), func() {
		n := f.cluster.cfg.Sites
		cut := 1 + f.rng.Intn(n-1)
		perm := f.rng.Perm(n)
		f.cluster.Partition(perm[:cut], perm[cut:])
		f.Partitions++
		f.engine.After(f.rng.Exp(f.cfg.PartitionDwell), func() {
			f.cluster.Heal()
			f.cluster.Gossip()
			f.Heals++
			f.schedulePartition()
		})
	})
}

// String summarizes the injected faults.
func (f *FaultProcess) String() string {
	return fmt.Sprintf("faults(crashes=%d repairs=%d partitions=%d heals=%d)",
		f.Crashes, f.Repairs, f.Partitions, f.Heals)
}
