package cluster

import (
	"fmt"

	"relaxlattice/internal/sim"
)

// FaultConfig parameterizes a background fault process over a cluster:
// independent per-site crash/repair cycles and whole-network
// partition/heal cycles, with exponentially distributed dwell times —
// the crash and communication-failure events of the environment
// automaton (Section 2.3), generated stochastically.
//
// All durations are means of exponential distributions, expressed in
// the dimensionless simulated-time units of the driving sim.Engine
// (the same units as workload inter-arrival times and retry backoffs —
// never wall-clock time). Negative values are configuration errors and
// NewFaultProcess panics on them; zero disables the fault class.
type FaultConfig struct {
	// MTTF is the mean time between a site coming up and its next
	// crash, in simulated time units. Zero disables crashes; negative
	// values panic.
	MTTF float64
	// MTTR is the mean repair time for a crashed site, in simulated
	// time units. Must be positive when MTTF > 0; negative values
	// panic.
	MTTR float64
	// MTBP is the mean time between partitions, in simulated time
	// units. Zero disables partitions; negative values panic.
	MTBP float64
	// PartitionDwell is the mean time a partition lasts before healing
	// (followed by a gossip round), in simulated time units. Must be
	// positive when MTBP > 0; negative values panic.
	PartitionDwell float64
}

// FaultProcess drives a cluster's failures on a discrete-event engine.
type FaultProcess struct {
	cfg     FaultConfig
	cluster *Cluster
	engine  *sim.Engine
	rng     *sim.RNG
	stopped bool
	// Counters for reporting.
	Crashes, Repairs, Partitions, Heals int
}

// NewFaultProcess attaches a fault process to a cluster and engine. It
// panics on negative means, and on non-positive repair/dwell times
// when the corresponding fault class is enabled: a negative mean fed
// to an exponential sampler silently degenerates to an immediate (or
// nonsensical) event, so it is rejected up front as a configuration
// error rather than producing a quietly wrong experiment.
func NewFaultProcess(c *Cluster, engine *sim.Engine, rng *sim.RNG, cfg FaultConfig) *FaultProcess {
	if cfg.MTTF < 0 || cfg.MTTR < 0 || cfg.MTBP < 0 || cfg.PartitionDwell < 0 {
		panic(fmt.Sprintf("cluster: negative fault mean in %+v", cfg))
	}
	if cfg.MTTF > 0 && cfg.MTTR <= 0 {
		panic(fmt.Sprintf("cluster: crashes enabled with MTTR %v", cfg.MTTR))
	}
	if cfg.MTBP > 0 && cfg.PartitionDwell <= 0 {
		panic(fmt.Sprintf("cluster: partitions enabled with dwell %v", cfg.PartitionDwell))
	}
	return &FaultProcess{cfg: cfg, cluster: c, engine: engine, rng: rng}
}

// Start schedules the initial fault events. Call once before running
// the engine.
func (f *FaultProcess) Start() {
	if f.cfg.MTTF > 0 {
		for site := 0; site < f.cluster.cfg.Sites; site++ {
			f.scheduleCrash(site)
		}
	}
	if f.cfg.MTBP > 0 {
		f.schedulePartition()
	}
}

// Stop freezes fault injection from the current simulation time on:
// pending crash and partition events become no-ops, while in-flight
// repairs and heals still run, so the cluster converges to a fully
// healed state shortly after. Recovery-phase experiments call this at
// the end of the fault regime and then watch adaptive clients climb
// back up the ladder.
func (f *FaultProcess) Stop() { f.stopped = true }

func (f *FaultProcess) scheduleCrash(site int) {
	f.engine.After(f.rng.Exp(f.cfg.MTTF), func() {
		if f.stopped {
			return
		}
		f.cluster.Crash(site)
		f.Crashes++
		f.engine.After(f.rng.Exp(f.cfg.MTTR), func() {
			f.cluster.Restore(site)
			f.Repairs++
			// A recovering site catches up by gossip.
			f.cluster.Gossip()
			if !f.stopped {
				f.scheduleCrash(site)
			}
		})
	})
}

func (f *FaultProcess) schedulePartition() {
	f.engine.After(f.rng.Exp(f.cfg.MTBP), func() {
		if f.stopped {
			return
		}
		n := f.cluster.cfg.Sites
		cut := 1 + f.rng.Intn(n-1)
		perm := f.rng.Perm(n)
		f.cluster.Partition(perm[:cut], perm[cut:])
		f.Partitions++
		f.engine.After(f.rng.Exp(f.cfg.PartitionDwell), func() {
			f.cluster.Heal()
			f.cluster.Gossip()
			f.Heals++
			if !f.stopped {
				f.schedulePartition()
			}
		})
	})
}

// String summarizes the injected faults.
func (f *FaultProcess) String() string {
	return fmt.Sprintf("faults(crashes=%d repairs=%d partitions=%d heals=%d)",
		f.Crashes, f.Repairs, f.Partitions, f.Heals)
}
