package cluster

import (
	"errors"
	"strings"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

func TestFaultProcessInjectsAndRecovers(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	var engine sim.Engine
	g := sim.NewRNG(42)
	f := NewFaultProcess(c, &engine, g, FaultConfig{
		MTTF: 10, MTTR: 3,
		MTBP: 25, PartitionDwell: 5,
	})
	f.Start()
	engine.Run(200)
	if f.Crashes == 0 || f.Repairs == 0 {
		t.Errorf("no crash/repair cycles: %s", f)
	}
	if f.Partitions == 0 || f.Heals == 0 {
		t.Errorf("no partition/heal cycles: %s", f)
	}
	// Crash/repair counts stay within one of each other (each site's
	// cycle alternates).
	if f.Crashes-f.Repairs < 0 || f.Crashes-f.Repairs > 5 {
		t.Errorf("unbalanced cycles: %s", f)
	}
	if !strings.Contains(f.String(), "crashes=") {
		t.Errorf("String = %q", f.String())
	}
}

// Under continuous faults, a degrading client keeps operating and the
// observed history never leaves the bottom of the taxi lattice.
func TestFaultsWithDegradingWorkload(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	var engine sim.Engine
	g := sim.NewRNG(7)
	f := NewFaultProcess(c, &engine, g, FaultConfig{MTTF: 8, MTTR: 4, MTBP: 20, PartitionDwell: 6})
	f.Start()

	completed, unavailable := 0, 0
	at := 0.0
	for i := 0; i < 120; i++ {
		at += g.Exp(1.0)
		i := i
		engine.At(at, func() {
			cl := c.Client(g.Intn(5))
			cl.Degrade = true
			var err error
			if i%2 == 0 {
				_, err = cl.Execute(history.EnqInv(1 + g.Intn(9)))
			} else {
				_, err = cl.Execute(history.DeqInv())
			}
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrUnavailable), errors.Is(err, ErrNoResponse):
				unavailable++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
	engine.Run(at + 50)
	if completed < 60 {
		t.Fatalf("too few completions: %d (unavailable %d, %s)", completed, unavailable, f)
	}
	obs := c.Observed()
	// Whatever happened, the degenerate priority queue accepts it: every
	// returned element was at some point enqueued.
	if !automaton.Accepts(specs.DegeneratePriorityQueue(), obs) {
		t.Errorf("observed history outside the lattice bottom: %v", obs)
	}
}

func TestFaultConfigPanics(t *testing.T) {
	c := taxiCluster(t, 3, "none")
	var engine sim.Engine
	g := sim.NewRNG(1)
	for name, cfg := range map[string]FaultConfig{
		"mttr":  {MTTF: 5},
		"dwell": {MTBP: 5},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewFaultProcess(c, &engine, g, cfg)
		}()
	}
}

// The cluster also works with explicit (grid) quorum assignments via
// the Assignment interface.
func TestClusterWithGridAssignment(t *testing.T) {
	grid := quorum.Grid(2, 3, history.NameEnq, history.NameDeq)
	c := New(Config{
		Sites:   6,
		Quorums: grid,
		Base:    specs.PriorityQueue(),
		Eval:    quorum.PQEval,
		Respond: PQResponder,
	})
	cl := c.Client(0)
	if _, err := cl.Execute(history.EnqInv(4)); err != nil {
		t.Fatalf("Enq: %v", err)
	}
	op, err := cl.Execute(history.DeqInv())
	if err != nil || op.Res[0] != 4 {
		t.Fatalf("Deq = %v, %v", op, err)
	}
	// Crash a full row (sites 0..2): no row quorum remains → rows are
	// initial quorums, so the op must report unavailable... unless the
	// other row survives. Crash sites 0,1,2 = row 0; row 1 = sites 3,4,5
	// still forms quorums with its columns? A column needs one site per
	// row, so columns are dead: Deq unavailable.
	c.Crash(3)
	c.Crash(4)
	c.Crash(5)
	cl2 := c.Client(0)
	if _, err := cl2.Execute(history.DeqInv()); !errors.Is(err, ErrUnavailable) {
		t.Errorf("expected ErrUnavailable with a dead row, got %v", err)
	}
}

func TestFaultProcessRejectsNegativeMeans(t *testing.T) {
	c := taxiCluster(t, 3, "Q1Q2")
	var engine sim.Engine
	g := sim.NewRNG(1)
	for _, cfg := range []FaultConfig{
		{MTTF: -1, MTTR: 1},
		{MTTF: 10, MTTR: -1},
		{MTBP: -5, PartitionDwell: 1},
		{MTBP: 10, PartitionDwell: -0.5},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			NewFaultProcess(c, &engine, g, cfg)
		}()
	}
	// Zero means are fine: both fault classes simply disabled.
	f := NewFaultProcess(c, &engine, g, FaultConfig{})
	f.Start()
	if engine.Pending() != 0 {
		t.Errorf("disabled fault process scheduled %d events", engine.Pending())
	}
}

// Stop freezes injection but lets in-flight repairs complete, so the
// cluster converges back to full health.
func TestFaultProcessStopHeals(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	var engine sim.Engine
	g := sim.NewRNG(3)
	f := NewFaultProcess(c, &engine, g, FaultConfig{MTTF: 5, MTTR: 10, MTBP: 15, PartitionDwell: 20})
	f.Start()
	engine.Run(50)
	if f.Crashes == 0 {
		t.Fatal("no faults injected before Stop")
	}
	f.Stop()
	crashes, partitions := f.Crashes, f.Partitions
	// Long after the longest dwell, every repair has run and nothing
	// new was injected.
	engine.Run(10_000)
	if f.Crashes != crashes || f.Partitions != partitions {
		t.Errorf("faults injected after Stop: %s (had crashes=%d partitions=%d)", f, crashes, partitions)
	}
	if f.Repairs != f.Crashes || f.Heals != f.Partitions {
		t.Errorf("in-flight recoveries did not complete: %s", f)
	}
	if c.UpSites() != 5 {
		t.Errorf("%d sites up after Stop+drain, want 5", c.UpSites())
	}
	if engine.Pending() != 0 {
		t.Errorf("%d events still pending after drain", engine.Pending())
	}
}
