package cluster

import (
	"errors"
	"fmt"
	"strconv"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/resilience"
	"relaxlattice/internal/sim"
)

// Level is one rung of a degradation ladder: a named quorum assignment
// that gates execution. Ladders are ordered strongest first, and each
// rung's name should match a lattice element so post-hoc audits
// (lattice.Relaxation.WeakestAccepting) can confirm that histories
// produced at a rung land at the claimed level.
type Level struct {
	Name    string
	Quorums quorum.Assignment
}

// TaxiLadder returns the canonical degradation ladder of the taxi
// example over n sites, strongest to weakest: Q1Q2 (full FIFO) → Q1
// (enqueue order respected, dequeues may race) → none (any available
// site serves anything). It is a chain through the taxi relaxation
// lattice, skipping the incomparable Q2 element.
func TaxiLadder(n int) []Level {
	a := quorum.TaxiAssignments(n)
	return []Level{
		{Name: "Q1Q2", Quorums: a["Q1Q2"]},
		{Name: "Q1", Quorums: a["Q1"]},
		{Name: "none", Quorums: a["none"]},
	}
}

// AdaptiveClient wraps a protocol client with a retry policy and a
// degradation controller. Submissions execute under the controller's
// current ladder rung; repeated unavailability pushes the client down
// the ladder (each move recorded as a cluster.episode), sustained
// success probes back up, and an optional periodic probe loop on the
// simulation engine re-tests stronger rungs while degraded.
type AdaptiveClient struct {
	cl     *Client
	engine *sim.Engine
	rng    *sim.RNG
	policy resilience.Policy
	ctrl   *resilience.Controller
	levels []Level
}

// Adaptive creates an adaptive client homed at the given site. The
// ladder must be non-empty and every rung must cover the cluster's
// sites (panics otherwise — configuration errors). opts.Controller's
// Levels field is overridden by len(levels). When ProbeEvery > 0 a
// recurring probe event is scheduled on the engine immediately; the
// engine's run horizon bounds it.
func (c *Cluster) Adaptive(home int, levels []Level, opts resilience.Options, engine *sim.Engine, rng *sim.RNG) *AdaptiveClient {
	if len(levels) == 0 {
		panic("cluster: adaptive client needs a non-empty ladder")
	}
	for i, l := range levels {
		if l.Quorums == nil || l.Quorums.Sites() != c.cfg.Sites {
			panic(fmt.Sprintf("cluster: ladder rung %d (%q) does not cover %d sites", i, l.Name, c.cfg.Sites))
		}
	}
	if engine == nil || rng == nil {
		panic("cluster: adaptive client needs an engine and an RNG")
	}
	cfg := opts.Controller
	cfg.Levels = len(levels)
	a := &AdaptiveClient{
		cl:     c.Client(home),
		engine: engine,
		rng:    rng,
		policy: opts.Policy,
		levels: append([]Level(nil), levels...),
	}
	// Every controller transition — descend on a failure streak, ascend
	// on a probe hit — is a claim that subsequent history is explained
	// by the target rung's lattice level; forward each to the audit's
	// claim observer (chaining any watcher the caller installed).
	user := cfg.Watcher
	cfg.Watcher = func(tr resilience.Transition) {
		c.observeClaim(a.cl, a.levels[tr.To].Name)
		if user != nil {
			user(tr)
		}
	}
	a.ctrl = resilience.NewController(cfg)
	if cfg.ProbeEvery > 0 {
		engine.Every(
			func() float64 { return a.rng.Jitter(cfg.ProbeEvery, a.policy.Jitter) },
			func() bool {
				if a.ctrl.Degraded() {
					a.probe("probe", nil)
				}
				return true
			})
	}
	return a
}

// Controller exposes the degradation controller (level, floor,
// transition log) for reporting and audits.
func (a *AdaptiveClient) Controller() *resilience.Controller { return a.ctrl }

// Current returns the ladder rung the client executes under right now.
func (a *AdaptiveClient) Current() Level { return a.levels[a.ctrl.Level()] }

// Floor returns the weakest rung the client has ever occupied — the
// degradation level the post-hoc lattice audit must confirm.
func (a *AdaptiveClient) Floor() Level { return a.levels[a.ctrl.Floor()] }

// Submit runs one invocation under the adaptive policy: execute at the
// current rung, retry with backoff on unavailability (descending the
// ladder as failure streaks accumulate), and report the terminal
// outcome to done. Retries are scheduled on the engine, so the
// submission completes only as the simulation runs; done receives the
// completed operation (zero on failure) and the retry outcome.
// ErrNoResponse is not retryable: it is a semantic rejection by the
// object, not an availability failure.
func (a *AdaptiveClient) Submit(inv history.Invocation, done func(history.Op, resilience.Outcome)) {
	c := a.cl.c
	var op history.Op
	// The submission's root span covers the whole retry loop; each
	// attempt nests under it, with the backoff gap between consecutive
	// attempts emitted in hindsight as its own child, so the analyzer
	// attributes waiting separately from protocol work. All refs are
	// nil (and no-op) when span tracing is off.
	root := c.cfg.Spans.Begin("cluster.submit",
		obs.KV{K: "op", V: inv.Name},
		obs.KV{K: "client", V: strconv.Itoa(a.cl.id)},
		obs.KV{K: "home", V: strconv.Itoa(a.cl.home)},
		// The rung at submission time: attempts override it for their
		// subtrees when the controller has since moved, so root
		// self-time (scheduling, backoff gaps) stays attributed to the
		// rung the client was on when it queued the op.
		obs.KV{K: "rung", V: a.levels[a.ctrl.Level()].Name},
	)
	var lastEnd int64
	resilience.Do(a.engine, a.rng, a.policy,
		func(err error) bool { return errors.Is(err, ErrUnavailable) },
		func(n int) error {
			if n > 1 {
				c.cfg.Metrics.Counter("cluster.adaptive.retry").Add(1)
			}
			lvl := a.levels[a.ctrl.Level()]
			att := root.Child("cluster.attempt",
				obs.KV{K: "n", V: strconv.Itoa(n)},
				obs.KV{K: "rung", V: lvl.Name},
			)
			if n > 1 {
				root.EmitChild("cluster.backoff", lastEnd, att.Start(),
					obs.KV{K: "before", V: strconv.Itoa(n)})
			}
			var err error
			op, err = a.cl.ExecuteUnderSpan(inv, lvl.Quorums, lvl.Name, att)
			if err == nil {
				if a.ctrl.OnSuccess() {
					a.probe(inv.Name, att)
				}
				lastEnd = att.End(obs.KV{K: "outcome", V: "ok"})
				return nil
			}
			if errors.Is(err, ErrUnavailable) {
				if to, down := a.ctrl.OnFailure(); down {
					c.cfg.Metrics.Counter("cluster.adaptive.descend").Add(1)
					c.recordAdaptiveTransition(a.cl, inv.Name, behaviorDescend+a.levels[to].Name)
					d := att.Child("cluster.descend", obs.KV{K: "to", V: a.levels[to].Name})
					d.End()
				}
			}
			lastEnd = att.End(obs.KV{K: "outcome", V: "fail"})
			return err
		},
		func(out resilience.Outcome) {
			c.cfg.Metrics.Histogram("cluster.adaptive.attempts", attemptBounds).Observe(int64(out.Attempts))
			outcome := "ok"
			if out.Err != nil {
				outcome = out.Reason
			}
			root.End(
				obs.KV{K: "attempts", V: strconv.Itoa(out.Attempts)},
				obs.KV{K: "outcome", V: outcome},
			)
			if done != nil {
				done(op, out)
			}
		})
}

// probe asks the controller to re-test stronger rungs, using read-only
// cluster probes as the availability oracle, and records an ascent
// episode when the controller moves up. Its span nests under the
// attempt that triggered it (parent), or roots a new tree for the
// periodic probe loop (nil parent).
func (a *AdaptiveClient) probe(opName string, parent *trace.SpanRef) {
	c := a.cl.c
	sp := parent.Child("cluster.probe", obs.KV{K: "client", V: strconv.Itoa(a.cl.id)})
	if sp == nil {
		sp = c.cfg.Spans.Begin("cluster.probe",
			obs.KV{K: "client", V: strconv.Itoa(a.cl.id)},
			obs.KV{K: "rung", V: a.levels[a.ctrl.Level()].Name})
	}
	to, up := a.ctrl.Probe(func(lvl int) bool {
		ok := c.Probe(a.cl.home, a.levels[lvl].Quorums)
		if ok {
			c.cfg.Metrics.Counter("cluster.adaptive.probe.ok").Add(1)
		} else {
			c.cfg.Metrics.Counter("cluster.adaptive.probe.fail").Add(1)
		}
		return ok
	})
	if up {
		c.cfg.Metrics.Counter("cluster.adaptive.ascend").Add(1)
		c.recordAdaptiveTransition(a.cl, opName, behaviorAscend+a.levels[to].Name)
		asc := sp.Child("cluster.ascend", obs.KV{K: "to", V: a.levels[to].Name})
		asc.End()
		sp.End(obs.KV{K: "outcome", V: "ascend"})
		return
	}
	sp.End(obs.KV{K: "outcome", V: "hold"})
}
