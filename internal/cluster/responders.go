package cluster

import (
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// PQResponder responds to priority-queue invocations: Enq echoes Ok,
// and Deq returns the best (highest-priority) element of the view — the
// behavior the evaluation function η of Section 3.3 prescribes ("each
// driver will dequeue the highest-priority request that appears not to
// have been served").
func PQResponder(s value.Value, inv history.Invocation) (history.Op, bool) {
	switch inv.Name {
	case history.NameEnq:
		return inv.WithResponse(history.Ok, nil), true
	case history.NameDeq:
		bag, ok := s.(value.Bag)
		if !ok {
			return history.Op{}, false
		}
		best, nonEmpty := bag.Best()
		if !nonEmpty {
			return history.Op{}, false
		}
		return inv.WithResponse(history.Ok, []int{int(best)}), true
	default:
		return history.Op{}, false
	}
}

// FIFOResponder responds to FIFO-queue invocations: Enq echoes Ok, and
// Deq returns the oldest element of the view — "dequeue the oldest
// apparently unserved request" under η_fifo.
func FIFOResponder(s value.Value, inv history.Invocation) (history.Op, bool) {
	switch inv.Name {
	case history.NameEnq:
		return inv.WithResponse(history.Ok, nil), true
	case history.NameDeq:
		q, ok := s.(value.Seq)
		if !ok {
			return history.Op{}, false
		}
		first, nonEmpty := q.First()
		if !nonEmpty {
			return history.Op{}, false
		}
		return inv.WithResponse(history.Ok, []int{int(first)}), true
	default:
		return history.Op{}, false
	}
}

// AccountResponder responds to bank-account invocations: Credit echoes
// Ok, and Debit succeeds exactly when the view's balance covers the
// amount, bouncing with Over otherwise (Section 3.4). A debit based on
// a stale view may therefore bounce spuriously — precisely the degraded
// behavior the account's relaxation lattice tolerates.
func AccountResponder(s value.Value, inv history.Invocation) (history.Op, bool) {
	acct, ok := s.(value.Account)
	if !ok {
		return history.Op{}, false
	}
	switch inv.Name {
	case history.NameCredit:
		return inv.WithResponse(history.Ok, nil), true
	case history.NameDebit:
		if len(inv.Args) != 1 {
			return history.Op{}, false
		}
		if inv.Args[0] <= acct.Balance {
			return inv.WithResponse(history.Ok, nil), true
		}
		return inv.WithResponse(history.Over, nil), true
	default:
		return history.Op{}, false
	}
}
