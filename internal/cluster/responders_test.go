package cluster

import (
	"errors"
	"fmt"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/value"
)

// Table-driven edge cases for the responders: wrong carrier types,
// unknown operations, empty views, and malformed invocations must all
// decline (ok=false) rather than fabricate a response — a declined
// response is what surfaces to clients as ErrNoResponse.
func TestRespondersEdgeCases(t *testing.T) {
	credit := history.Invocation{Name: history.NameCredit}
	debit := func(args ...int) history.Invocation {
		return history.Invocation{Name: history.NameDebit, Args: args}
	}
	tests := []struct {
		name    string
		respond Responder
		state   value.Value
		inv     history.Invocation
		wantOK  bool
		wantOp  history.Op
	}{
		{"pq/enq", PQResponder, value.BagOf(), history.EnqInv(3), true, history.Enq(3)},
		{"pq/deq-best", PQResponder, value.BagOf(2, 9, 5), history.DeqInv(), true, history.DeqOk(9)},
		{"pq/deq-empty", PQResponder, value.EmptyBag(), history.DeqInv(), false, history.Op{}},
		{"pq/wrong-carrier", PQResponder, value.SeqOf(1), history.DeqInv(), false, history.Op{}},
		{"pq/unknown-op", PQResponder, value.BagOf(1), credit, false, history.Op{}},

		{"fifo/enq", FIFOResponder, value.EmptySeq(), history.EnqInv(7), true, history.Enq(7)},
		{"fifo/deq-oldest", FIFOResponder, value.SeqOf(3, 1, 2), history.DeqInv(), true, history.DeqOk(3)},
		{"fifo/deq-empty", FIFOResponder, value.EmptySeq(), history.DeqInv(), false, history.Op{}},
		{"fifo/wrong-carrier", FIFOResponder, value.BagOf(1), history.DeqInv(), false, history.Op{}},
		{"fifo/unknown-op", FIFOResponder, value.SeqOf(1), debit(1), false, history.Op{}},

		{"acct/credit", AccountResponder, value.NewAccount(0),
			history.Invocation{Name: history.NameCredit, Args: []int{5}}, true,
			history.Invocation{Name: history.NameCredit, Args: []int{5}}.WithResponse(history.Ok, nil)},
		{"acct/debit-covered", AccountResponder, value.NewAccount(10), debit(10), true,
			debit(10).WithResponse(history.Ok, nil)},
		{"acct/debit-overdraft", AccountResponder, value.NewAccount(9), debit(10), true,
			debit(10).WithResponse(history.Over, nil)},
		{"acct/debit-no-args", AccountResponder, value.NewAccount(9), debit(), false, history.Op{}},
		{"acct/debit-extra-args", AccountResponder, value.NewAccount(9), debit(1, 2), false, history.Op{}},
		{"acct/wrong-carrier", AccountResponder, value.BagOf(1), debit(1), false, history.Op{}},
		{"acct/unknown-op", AccountResponder, value.NewAccount(9), history.DeqInv(), false, history.Op{}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			op, ok := tc.respond(tc.state, tc.inv)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if fmt.Sprint(op) != fmt.Sprint(tc.wantOp) {
				t.Fatalf("op = %v, want %v", op, tc.wantOp)
			}
		})
	}
}

// View-assembly edges: what a client reads in step 1 of the protocol
// under fresh, fully crashed, and single-survivor clusters.
func TestViewAssemblyEdges(t *testing.T) {
	t.Run("fresh cluster has an empty view of every site", func(t *testing.T) {
		c := taxiCluster(t, 5, "Q1Q2")
		view, sites := c.View(0)
		if view.Len() != 0 {
			t.Errorf("fresh view has %d entries, want 0", view.Len())
		}
		if len(sites) != 5 {
			t.Errorf("fresh view built from %d sites, want all 5", len(sites))
		}
	})

	t.Run("crashed home sees nothing", func(t *testing.T) {
		c := taxiCluster(t, 5, "Q1Q2")
		c.Crash(0)
		view, sites := c.View(0)
		if view.Len() != 0 || sites != nil {
			t.Errorf("crashed home: view len %d, sites %v; want empty and nil", view.Len(), sites)
		}
		if c.Probe(0, quorum.TaxiAssignments(5)["none"]) {
			t.Error("crashed home probes available even under the trivial assignment")
		}
	})

	t.Run("all sites crashed", func(t *testing.T) {
		c := taxiCluster(t, 5, "Q1Q2")
		for s := 0; s < 5; s++ {
			c.Crash(s)
		}
		if _, err := c.Client(0).Execute(history.EnqInv(1)); !errors.Is(err, ErrUnavailable) {
			t.Errorf("err = %v, want ErrUnavailable", err)
		}
		view, sites := c.View(2)
		if view.Len() != 0 || sites != nil {
			t.Errorf("dead cluster: view len %d, sites %v", view.Len(), sites)
		}
	})

	t.Run("single survivor satisfies the trivial assignment", func(t *testing.T) {
		c := taxiCluster(t, 5, "none")
		for s := 1; s < 5; s++ {
			c.Crash(s)
		}
		if !c.Probe(0, quorum.TaxiAssignments(5)["none"]) {
			t.Fatal("lone survivor should satisfy single-site quorums")
		}
		if _, err := c.Client(0).Execute(history.EnqInv(4)); err != nil {
			t.Fatalf("Enq on lone survivor: %v", err)
		}
		op, err := c.Client(0).Execute(history.DeqInv())
		if err != nil || len(op.Res) != 1 || op.Res[0] != 4 {
			t.Fatalf("Deq on lone survivor = %v, %v; want Deq/Ok(4)", op, err)
		}
		_, sites := c.View(0)
		if len(sites) != 1 || sites[0] != 0 {
			t.Errorf("lone survivor view built from %v, want [0]", sites)
		}
	})

	t.Run("degraded deq on an empty queue is ErrNoResponse, not ErrUnavailable", func(t *testing.T) {
		c := taxiCluster(t, 5, "Q1Q2")
		// Break every quorum but keep the home site up, then degrade.
		for s := 1; s < 5; s++ {
			c.Crash(s)
		}
		cl := c.Client(0)
		cl.Degrade = true
		if _, err := cl.Execute(history.DeqInv()); !errors.Is(err, ErrNoResponse) {
			t.Errorf("degraded Deq on empty queue: err = %v, want ErrNoResponse", err)
		}
		// An Enq still lands degraded, after which the Deq serves it.
		if _, err := cl.Execute(history.EnqInv(8)); err != nil {
			t.Fatalf("degraded Enq: %v", err)
		}
		op, err := cl.Execute(history.DeqInv())
		if err != nil || len(op.Res) != 1 || op.Res[0] != 8 {
			t.Fatalf("degraded Deq = %v, %v; want Deq/Ok(8)", op, err)
		}
	})
}
