package cluster

import (
	"errors"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/value"
)

func taxiCluster(t *testing.T, n int, assignment string) *Cluster {
	t.Helper()
	return New(Config{
		Sites:   n,
		Quorums: quorum.TaxiAssignments(n)[assignment],
		Base:    specs.PriorityQueue(),
		Eval:    quorum.PQEval,
		Respond: PQResponder,
	})
}

func TestHealthyClusterIsPriorityQueue(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	dispatcher := c.Client(0)
	driver := c.Client(3)
	for _, e := range []int{2, 5, 1} {
		if _, err := dispatcher.Execute(history.EnqInv(e)); err != nil {
			t.Fatalf("Enq(%d): %v", e, err)
		}
	}
	var got []int
	for i := 0; i < 3; i++ {
		op, err := driver.Execute(history.DeqInv())
		if err != nil {
			t.Fatalf("Deq: %v", err)
		}
		got = append(got, op.Res[0])
	}
	want := []int{5, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
	// The observed history is a legal priority-queue history.
	if !automaton.Accepts(specs.PriorityQueue(), c.Observed()) {
		t.Errorf("observed history not a PQ history: %v", c.Observed())
	}
}

func TestUnavailableWithoutQuorum(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	cl := c.Client(0)
	if _, err := cl.Execute(history.EnqInv(1)); err != nil {
		t.Fatalf("Enq: %v", err)
	}
	// Crash three of five sites: Deq (majority) can no longer proceed.
	c.Crash(2)
	c.Crash(3)
	c.Crash(4)
	if c.UpSites() != 2 {
		t.Fatalf("UpSites = %d", c.UpSites())
	}
	_, err := cl.Execute(history.DeqInv())
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// A degrading client proceeds against the two reachable sites.
	cl.Degrade = true
	op, err := cl.Execute(history.DeqInv())
	if err != nil {
		t.Fatalf("degraded Deq: %v", err)
	}
	if op.Res[0] != 1 {
		t.Errorf("degraded Deq returned %v", op)
	}
}

func TestPartitionCausesDuplicateService(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	dispatcher := c.Client(0)
	if _, err := dispatcher.Execute(history.EnqInv(7)); err != nil {
		t.Fatalf("Enq: %v", err)
	}
	// Partition into {0,1} and {2,3,4}: the request is replicated on
	// sites 0..4 (final Enq quorum grew to all reachable), so both
	// sides can see it; neither side's Deq sees the other's.
	c.Partition([]int{0, 1}, []int{2, 3, 4})
	left := c.Client(0)
	left.Degrade = true
	right := c.Client(2)
	right.Degrade = true

	op1, err := left.Execute(history.DeqInv())
	if err != nil {
		t.Fatalf("left Deq: %v", err)
	}
	op2, err := right.Execute(history.DeqInv())
	if err != nil {
		t.Fatalf("right Deq: %v", err)
	}
	if op1.Res[0] != 7 || op2.Res[0] != 7 {
		t.Fatalf("both sides should service request 7: %v %v", op1, op2)
	}
	// The observed history is NOT a priority-queue history (request
	// serviced twice) but IS a multi-priority-queue history — exactly
	// the degradation Theorem 4 predicts for relaxing Q2.
	obs := c.Observed()
	if automaton.Accepts(specs.PriorityQueue(), obs) {
		t.Errorf("duplicate service accepted by PQ: %v", obs)
	}
	if !automaton.Accepts(specs.MultiPriorityQueue(), obs) {
		t.Errorf("observed history should be an MPQ history: %v", obs)
	}
}

func TestHealingRestoresPreferredBehavior(t *testing.T) {
	c := taxiCluster(t, 3, "Q1Q2")
	cl := c.Client(0)
	c.Partition([]int{0}, []int{1, 2})
	cl.Degrade = true
	if _, err := cl.Execute(history.EnqInv(4)); err != nil {
		t.Fatalf("partitioned Enq: %v", err)
	}
	c.Heal()
	c.Gossip()
	// After healing and propagation, a majority client sees the entry.
	driver := c.Client(1)
	op, err := driver.Execute(history.DeqInv())
	if err != nil {
		t.Fatalf("Deq after heal: %v", err)
	}
	if op.Res[0] != 4 {
		t.Errorf("Deq = %v", op)
	}
}

func TestCrashedHomeSiteReachesNothing(t *testing.T) {
	c := taxiCluster(t, 3, "none")
	cl := c.Client(1)
	cl.Degrade = true
	c.Crash(1)
	_, err := cl.Execute(history.EnqInv(1))
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
}

func TestDeqOnEmptyViewFails(t *testing.T) {
	c := taxiCluster(t, 3, "Q1Q2")
	cl := c.Client(0)
	_, err := cl.Execute(history.DeqInv())
	if !errors.Is(err, ErrNoResponse) {
		t.Errorf("err = %v, want ErrNoResponse", err)
	}
}

func TestPropagateFromAndSiteLog(t *testing.T) {
	c := taxiCluster(t, 3, "none")
	cl := c.Client(0)
	c.Partition([]int{0}, []int{1, 2})
	cl.Degrade = true
	if _, err := cl.Execute(history.EnqInv(9)); err != nil {
		t.Fatalf("Enq: %v", err)
	}
	if c.SiteLog(1).Len() != 0 {
		t.Fatalf("entry leaked across partition")
	}
	c.Heal()
	c.PropagateFrom(0)
	if c.SiteLog(1).Len() != 1 || c.SiteLog(2).Len() != 1 {
		t.Errorf("propagation failed: %d %d", c.SiteLog(1).Len(), c.SiteLog(2).Len())
	}
	if c.MergedLog().Len() != 1 {
		t.Errorf("merged log = %d", c.MergedLog().Len())
	}
	// Propagating from a crashed site is a no-op.
	c.Crash(0)
	c.PropagateFrom(0)
	c.Restore(0)
}

func TestBankCluster(t *testing.T) {
	votes := quorum.NewVoting([]int{1, 1, 1}, map[string]quorum.OpQuorums{
		history.NameCredit: {Initial: 1, Final: 1}, // credits propagate lazily
		history.NameDebit:  {Initial: 2, Final: 2}, // A2: majorities
	})
	c := New(Config{
		Sites:   3,
		Quorums: votes,
		Base:    specs.BankAccount(),
		Eval:    quorum.AccountEval,
		Respond: AccountResponder,
	})
	atm := c.Client(0)
	if _, err := atm.Execute(history.Invocation{Name: history.NameCredit, Args: []int{10}}); err != nil {
		t.Fatalf("Credit: %v", err)
	}
	op, err := atm.Execute(history.Invocation{Name: history.NameDebit, Args: []int{4}})
	if err != nil || op.Term != history.Ok {
		t.Fatalf("Debit: %v %v", op, err)
	}
	// Over-debit bounces.
	op, err = atm.Execute(history.Invocation{Name: history.NameDebit, Args: []int{100}})
	if err != nil || op.Term != history.Over {
		t.Fatalf("over-debit: %v %v", op, err)
	}
	// Global balance: 10 - 4 = 6.
	states := quorum.AccountEval(c.MergedLog().History())
	if states[0].(value.Account).Balance != 6 {
		t.Errorf("balance = %v", states[0])
	}
}

// A premature debit (before credit propagation) bounces spuriously but
// the account never overdraws — the Section 3.4 scenario.
func TestBankPrematureDebit(t *testing.T) {
	votes := quorum.NewVoting([]int{1, 1, 1}, map[string]quorum.OpQuorums{
		history.NameCredit: {Initial: 1, Final: 1},
		history.NameDebit:  {Initial: 2, Final: 2},
	})
	c := New(Config{
		Sites: 3, Quorums: votes, Base: specs.BankAccount(),
		Eval: quorum.AccountEval, Respond: AccountResponder,
	})
	// Credit lands only at site 0 (final quorum 1, partitioned away).
	c.Partition([]int{0}, []int{1, 2})
	creditor := c.Client(0)
	creditor.Degrade = true
	if _, err := creditor.Execute(history.Invocation{Name: history.NameCredit, Args: []int{10}}); err != nil {
		t.Fatalf("Credit: %v", err)
	}
	// A debit from the other side misses the credit: spurious bounce.
	debtor := c.Client(1)
	op, err := debtor.Execute(history.Invocation{Name: history.NameDebit, Args: []int{5}})
	if err != nil || op.Term != history.Over {
		t.Fatalf("premature debit should bounce: %v %v", op, err)
	}
	// After propagation the same debit succeeds.
	c.Heal()
	c.Gossip()
	op, err = debtor.Execute(history.Invocation{Name: history.NameDebit, Args: []int{5}})
	if err != nil || op.Term != history.Ok {
		t.Fatalf("post-propagation debit: %v %v", op, err)
	}
	// The observed history is a SpuriousAccount history (never
	// overdrawn) though not a preferred Account history.
	obs := c.Observed()
	if automaton.Accepts(specs.BankAccount(), obs) {
		t.Errorf("spurious bounce accepted by preferred account: %v", obs)
	}
	if !automaton.Accepts(specs.SpuriousAccount(), obs) {
		t.Errorf("observed history should be a SpuriousAccount history: %v", obs)
	}
}

func TestConfigPanics(t *testing.T) {
	votes := quorum.Majority(3, history.NameEnq, history.NameDeq)
	base := specs.PriorityQueue()
	for name, cfg := range map[string]Config{
		"sites":    {Sites: 0, Quorums: votes, Base: base, Respond: PQResponder},
		"nil":      {Sites: 3},
		"mismatch": {Sites: 5, Quorums: votes, Base: base, Respond: PQResponder},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(cfg)
		}()
	}
	c := New(Config{Sites: 3, Quorums: votes, Base: base, Respond: PQResponder})
	defer func() {
		if recover() == nil {
			t.Errorf("client: expected panic")
		}
	}()
	c.Client(9)
}
