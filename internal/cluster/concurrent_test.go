package cluster

import (
	"errors"
	"sync"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/specs"
)

// The cluster is safe for concurrent clients: parallel dispatchers and
// drivers, plus a fault-injecting goroutine, never corrupt state, and
// the observed history stays one-copy serializable (clients do not
// degrade, so operations without quorum simply fail).
func TestConcurrentClientsSerializable(t *testing.T) {
	c := taxiCluster(t, 5, "Q1Q2")
	var wg sync.WaitGroup
	errCh := make(chan error, 32)

	// Fault injector: crashes and restores sites.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			site := i % 5
			c.Crash(site)
			c.Restore(site)
			c.Gossip()
		}
	}()

	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := c.Client(w % 5)
			for i := 0; i < 25; i++ {
				var err error
				if (w+i)%2 == 0 {
					_, err = cl.Execute(history.EnqInv(1 + (w+i)%9))
				} else {
					_, err = cl.Execute(history.DeqInv())
				}
				if err != nil && !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrNoResponse) {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("client error: %v", err)
	}
	obs := c.Observed()
	if len(obs) == 0 {
		t.Fatalf("no operations completed")
	}
	if !automaton.Accepts(specs.PriorityQueue(), obs) {
		t.Fatalf("concurrent non-degrading clients broke one-copy serializability:\n%v", obs)
	}
}
