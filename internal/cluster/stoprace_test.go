package cluster

import (
	"testing"

	"relaxlattice/internal/sim"
)

// TestFaultProcessStopRaces pins every same-tick interleaving of Stop()
// against a scheduled crash or repair event. The engine fires events at
// equal times FIFO by insertion sequence, so which side of the tie Stop
// lands on is controlled by *when* it was scheduled — and both sides
// must converge to the same safe end state: Repairs == Crashes, every
// site up, no injection after Stop, and an eventually empty queue.
//
// A twin RNG with the process's seed predicts the schedule: Start draws
// one Exp(MTTF) per site in site order, and the earliest crash draws
// its Exp(MTTR) as the next sample (the seed is chosen so the repair
// lands before any second crash, keeping the draw order unambiguous).
func TestFaultProcessStopRaces(t *testing.T) {
	const (
		seed  = 2
		mttf  = 100.0
		mttr  = 5.0
		sites = 3
	)
	tw := sim.NewRNG(seed)
	crash := []float64{tw.Exp(mttf), tw.Exp(mttf), tw.Exp(mttf)}
	first, second := crash[0], crash[1]
	if second < first {
		first, second = second, first
	}
	if crash[2] < first {
		first, second = crash[2], first
	} else if crash[2] < second {
		second = crash[2]
	}
	repair := first + tw.Exp(mttr)
	if repair >= second {
		t.Fatalf("seed %d: second crash %g inside the first repair window (repair %g)", seed, second, repair)
	}

	cases := []struct {
		name string
		// setup arms Stop relative to Start; insertion order decides
		// the same-tick FIFO winner.
		setup func(e *sim.Engine, f *FaultProcess)
		// tick is the contested simulation time.
		tick        float64
		wantCrashes int
		// wantPending counts queued events just after the contested
		// tick (surviving crash no-ops, in-flight repairs, reschedules).
		wantPending int
	}{
		{
			// Stop inserted before Start: lower sequence, fires first,
			// and the crash sharing its tick must be a no-op.
			name: "stop-before-crash",
			setup: func(e *sim.Engine, f *FaultProcess) {
				e.At(first, f.Stop)
				f.Start()
			},
			tick:        first,
			wantCrashes: 0,
			wantPending: 2, // the two other sites' crash no-ops
		},
		{
			// Stop inserted after Start: the crash fires first, then
			// Stop — the crash still counts and its repair still runs.
			name: "stop-after-crash",
			setup: func(e *sim.Engine, f *FaultProcess) {
				f.Start()
				e.At(first, f.Stop)
			},
			tick:        first,
			wantCrashes: 1,
			wantPending: 3, // two crash no-ops + the in-flight repair
		},
		{
			// Stop fires just before the repair at the same tick: the
			// repair must still restore the site (and not reschedule).
			name: "stop-before-repair",
			setup: func(e *sim.Engine, f *FaultProcess) {
				e.At(repair, f.Stop)
				f.Start()
			},
			tick:        repair,
			wantCrashes: 1,
			wantPending: 2, // only the two other sites' crash no-ops
		},
		{
			// Stop fires just after the repair: the repair reschedules
			// the site's next crash, which must later no-op.
			name: "stop-after-repair",
			setup: func(e *sim.Engine, f *FaultProcess) {
				f.Start()
				// The repair closure is inserted at the crash tick, so
				// scheduling Stop from a midpoint event gives it the
				// higher sequence number at the repair tick.
				e.At((first+repair)/2, func() { e.At(repair, f.Stop) })
			},
			tick:        repair,
			wantCrashes: 1,
			wantPending: 3, // two crash no-ops + the rescheduled crash
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := taxiCluster(t, sites, "Q1Q2")
			var engine sim.Engine
			f := NewFaultProcess(c, &engine, sim.NewRNG(seed), FaultConfig{MTTF: mttf, MTTR: mttr})
			tc.setup(&engine, f)

			engine.Run(tc.tick) // includes everything at the contested tick
			if f.Crashes != tc.wantCrashes {
				t.Fatalf("crashes at tick = %d, want %d (%s)", f.Crashes, tc.wantCrashes, f)
			}
			if engine.Pending() != tc.wantPending {
				t.Fatalf("pending after tick = %d, want %d (%s)", engine.Pending(), tc.wantPending, f)
			}

			// Drain: every surviving event is a no-op, the cluster ends
			// fully healed, and injection stays frozen.
			engine.Run(1e9)
			if f.Crashes != tc.wantCrashes || f.Repairs != tc.wantCrashes {
				t.Fatalf("after drain: %s, want crashes=repairs=%d", f, tc.wantCrashes)
			}
			if c.UpSites() != sites {
				t.Fatalf("%d sites up after drain, want %d", c.UpSites(), sites)
			}
			if engine.Pending() != 0 {
				t.Fatalf("%d events pending after drain", engine.Pending())
			}
		})
	}
}
