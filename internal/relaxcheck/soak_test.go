package relaxcheck

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
)

// soakScale reads the tier-2 scale knobs: RELAXSOAK_OPS and
// RELAXSOAK_CLIENTS raise the in-test soak size (CI's soak job runs
// the full 10k × 200 certification; the default keeps plain `go test`
// fast).
func soakScale() (ops, clients int) {
	ops, clients = 2000, 60
	if s := os.Getenv("RELAXSOAK_OPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			ops = n
		}
	}
	if s := os.Getenv("RELAXSOAK_CLIENTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			clients = n
		}
	}
	return ops, clients
}

// soakFaults is the moderate background fault regime the soak tests
// run the cluster under.
func soakFaults() cluster.FaultConfig {
	return cluster.FaultConfig{MTTF: 60, MTTR: 8, MTBP: 150, PartitionDwell: 12}
}

// verifySamplesOffline cross-checks every sampled online verdict
// against the offline WeakestAccepting of the same prefix.
func verifySamplesOffline(t *testing.T, lat *lattice.Relaxation, r *SoakReport) {
	t.Helper()
	if len(r.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for _, s := range r.Samples {
		want, _ := lat.WeakestAccepting(r.Observed[:s.Step])
		if !sameSets(s.Sets, want) {
			t.Fatalf("step %d: online %v, offline %v", s.Step, s.Sets, want)
		}
	}
	// And the final verdict over the whole audited history.
	want, _ := lat.WeakestAccepting(r.Observed)
	if !sameSets(r.Sets, want) {
		t.Fatalf("final: online %v, offline %v", r.Sets, want)
	}
}

// TestSoakCluster drives every workload kind through the cluster
// harness: zero violations, every submission resolved, and the online
// verdict equal to the offline replay on sampled prefixes and on the
// full observed history.
func TestSoakCluster(t *testing.T) {
	ops, clients := soakScale()
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := ClusterSoakConfig{
				Workload:    Workload{Kind: kind, Clients: clients, Ops: ops},
				Seed:        1987,
				SampleEvery: ops / 4,
			}
			if kind != FaultCorrelated {
				cfg.Faults = soakFaults()
			}
			report, err := RunClusterSoak(cfg)
			if err != nil {
				t.Fatalf("soak failed: %v", err)
			}
			if report.Completed+report.Failed != report.Ops {
				t.Fatalf("unresolved submissions: %+v", report)
			}
			if report.Steps != len(report.Observed) {
				t.Fatalf("audited %d ops, observed %d", report.Steps, len(report.Observed))
			}
			verifySamplesOffline(t, core.TaxiSimpleLattice(), report)
		})
	}
}

// TestSoakTxn is the transactional-runtime counterpart, for both
// dequeue-collision strategies (Semiqueue and Stuttering lattices).
func TestSoakTxn(t *testing.T) {
	ops, clients := soakScale()
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			report, err := RunTxnSoak(TxnSoakConfig{
				Workload:    Workload{Kind: kind, Clients: clients, Ops: ops},
				Seed:        1987,
				SampleEvery: ops / 4,
			})
			if err != nil {
				t.Fatalf("soak failed: %v", err)
			}
			verifySamplesOffline(t, core.SemiqueueLattice(3), report)
		})
	}
}

// obsBytes renders a registry snapshot and a journal to bytes.
func obsBytes(t *testing.T, reg *obs.Registry, rec *obs.Recorder) ([]byte, []byte) {
	t.Helper()
	var m, j bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&m); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	return m.Bytes(), j.Bytes()
}

// TestSoakReplayByteIdentical replays the same seed twice — fresh
// registry and journal each time — and demands byte-identical metrics
// (including the relaxcheck.* series) and episode journal.
func TestSoakReplayByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte) {
		reg, rec := obs.NewRegistry(), obs.NewRecorder()
		_, err := RunClusterSoak(ClusterSoakConfig{
			Workload: Workload{Kind: Bursty, Clients: 40, Ops: 1500},
			Seed:     7,
			Faults:   soakFaults(),
			Metrics:  reg,
			Trace:    rec,
		})
		if err != nil {
			t.Fatalf("soak failed: %v", err)
		}
		return obsBytes(t, reg, rec)
	}
	m1, j1 := run()
	m2, j2 := run()
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics snapshots differ across same-seed replays")
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("episode journals differ across same-seed replays")
	}
	if !bytes.Contains(m1, []byte("relaxcheck.step")) {
		t.Fatal("snapshot missing relaxcheck.step")
	}
	if !bytes.Contains(j1, []byte("cluster.episode")) {
		t.Fatal("journal missing degradation episodes")
	}
}

// TestSoakOnlineCheckerRefutesNaiveRungClaims pins a finding the
// online checker produced that the offline X05 audit never caught at
// its scale: the nominal per-rung claim table (TaxiRungLevels) is
// unsound for mixed executions. Once adaptive clients straddle
// different ladder rungs, their voting assignments stop intersecting
// each other's quorums — a rung-Q1 dequeue can miss a rung-Q1Q2
// enqueue — so the merged history escapes φ({Q1}) even though every
// client honored its own rung. The checker must fail such a run at the
// exact offending operation.
func TestSoakOnlineCheckerRefutesNaiveRungClaims(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	report, err := RunClusterSoak(ClusterSoakConfig{
		Workload: Workload{Kind: Bursty, Clients: 40, Ops: 1500},
		Seed:     7,
		Faults:   soakFaults(),
		Claims:   TaxiRungLevels(lat.Universe),
	})
	if err == nil {
		t.Fatal("naive per-rung claims survived a mixed-assignment soak")
	}
	v := report.Violation
	if v == nil || v.Kind != KindClaim {
		t.Fatalf("violation = %+v", v)
	}
	if v.Step == 0 || v.Op.Name == "" {
		t.Fatalf("violation not pinned to an operation: %+v", v)
	}
	// The same run under the honest joint-guarantee table is clean.
	if _, err := RunClusterSoak(ClusterSoakConfig{
		Workload: Workload{Kind: Bursty, Clients: 40, Ops: 1500},
		Seed:     7,
		Faults:   soakFaults(),
	}); err != nil {
		t.Fatalf("joint-guarantee claims violated: %v", err)
	}
}

// TestSoakTxnReplayByteIdentical is the txn-side determinism check.
func TestSoakTxnReplayByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte) {
		reg, rec := obs.NewRegistry(), obs.NewRecorder()
		_, err := RunTxnSoak(TxnSoakConfig{
			Workload: Workload{Kind: Skewed, Clients: 40, Ops: 1500},
			Seed:     7,
			Metrics:  reg,
			Trace:    rec,
		})
		if err != nil {
			t.Fatalf("soak failed: %v", err)
		}
		return obsBytes(t, reg, rec)
	}
	m1, j1 := run()
	m2, j2 := run()
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics snapshots differ across same-seed replays")
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("journals differ across same-seed replays")
	}
}
