// Package relaxcheck is the online relaxation-level checker: a live
// audit that consumes a system's observed operations one at a time and
// tracks, incrementally, exactly where the history sits in a
// relaxation lattice — the online form of the offline
// lattice.Relaxation.WeakestAccepting audit, sound on every prefix
// (DESIGN.md §11).
//
// A Checker implements the audit hooks of both runtimes
// (cluster.Config.Audit and txn.Queue.AttachAudit) and additionally
// cross-checks degradation *claims*: each adaptive descent or ascent
// registers the target rung's constraint set, and the checker fails
// the run the moment the observed history escapes the weakest claimed
// level — not in a post-hoc audit, but at the exact operation that
// violated it.
package relaxcheck

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
)

// Violation kinds.
const (
	// KindExhausted: no lattice element accepts the observed prefix —
	// the history escaped the entire relaxation lattice.
	KindExhausted = "exhausted"
	// KindClaim: the weakest claimed degradation level no longer
	// accepts the observed prefix — the system degraded further than
	// any adaptive controller admitted.
	KindClaim = "claim"
)

// Violation pins the first point at which a run left its claimed
// lattice position.
type Violation struct {
	// Kind is KindExhausted or KindClaim.
	Kind string
	// Step is the 1-based index of the offending operation in the
	// observed history (for claim violations raised by a claim event,
	// the number of operations observed so far).
	Step int
	// Op is the offending operation (zero for violations raised by a
	// claim event rather than an operation).
	Op history.Op
	// Claim renders the violated claim set (empty for KindExhausted).
	Claim string
	// Level is the lattice position immediately before the violation.
	Level []lattice.Set
}

// Error renders the violation as one line.
func (v *Violation) Error() string {
	if v.Kind == KindClaim {
		return fmt.Sprintf("relaxcheck: step %d: %v escapes claimed level %s", v.Step, v.Op, v.Claim)
	}
	return fmt.Sprintf("relaxcheck: step %d: %v rejected by every lattice element", v.Step, v.Op)
}

// Sample is the checker's verdict at one sampled prefix length, for
// differential comparison against the offline WeakestAccepting.
type Sample struct {
	Step int
	Sets []lattice.Set
}

// Options configures a Checker. Every field is optional.
type Options struct {
	// Metrics receives relaxcheck.step / relaxcheck.violation counters
	// and the relaxcheck.frontier.max gauge.
	Metrics *obs.Registry
	// Trace receives relaxcheck.level events (one per change of the
	// maximal viable sets), relaxcheck.claim events, and the
	// relaxcheck.violation event.
	Trace *obs.Recorder
	// Clock supplies logical time for trace events; nil defaults to
	// the number of operations observed.
	Clock obs.Clock
	// Claims maps degradation-level names (ladder rung names) to the
	// constraint sets they claim. ObserveClaim panics on a name not in
	// the map — an unmapped rung is a configuration error.
	Claims map[string]lattice.Set
	// MemoCap, when positive, enables per-element transition
	// memoization (see lattice.NewStepChecker).
	MemoCap int
	// SampleEvery, when positive, records the checker's verdict every
	// SampleEvery operations (see Samples).
	SampleEvery int
	// Window, when positive, bounds the retained samples to the most
	// recent Window entries — the bounded-memory mode for audits that
	// run forever. It bounds observability, not soundness: verdicts
	// are unaffected.
	Window int
	// FrontierCap, when positive, abandons any lattice element whose
	// frontier outgrows FrontierCap states (bounded-memory windowed
	// checking). Soundness contract: while any element is abandoned
	// the checker reports NO violations — an abandoned element could
	// still accept the history, so both exhaustion and claim verdicts
	// become unknowable. The checker never reports a false violation;
	// under a cap it may miss real ones (see DESIGN.md §14).
	FrontierCap int
	// OnViolation, when set, is called once, synchronously, at the
	// first violation. It must not call back into the checker.
	OnViolation func(Violation)
}

// Checker is the live audit. It serializes all observations behind its
// own mutex, so it can be attached to runtimes that call it under
// their own locks (the contract of cluster.Audit: observation must not
// call back into the cluster).
type Checker struct {
	mu        sync.Mutex
	sc        *lattice.StepChecker
	opts      Options
	ltime     obs.Logical
	steps     int
	prevAlive int
	lastLevel string
	minClaim  lattice.Set
	claimName string
	haveClaim bool
	violation *Violation
	samples   []Sample
}

// New builds a checker over a relaxation lattice, starting at the
// empty history.
func New(lat *lattice.Relaxation, opts Options) *Checker {
	sc := lattice.NewStepChecker(lat, opts.MemoCap)
	if opts.FrontierCap > 0 {
		sc.SetFrontierCap(opts.FrontierCap)
	}
	c := &Checker{sc: sc, opts: opts, prevAlive: sc.Alive()}
	c.lastLevel = formatSets(lat.Universe, sc.Current())
	return c
}

// ObserveOp consumes one observed operation — the cluster.Audit /
// txn.Audit hook. It advances every viable lattice element and raises
// a violation when the extended prefix escapes the lattice or the
// weakest claimed level.
func (c *Checker) ObserveOp(op history.Op) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.steps++
	before := c.sc.Current()
	alive := c.sc.Step(op)
	c.opts.Metrics.Counter("relaxcheck.step").Add(1)
	c.opts.Metrics.Gauge("relaxcheck.frontier.max").Max(int64(c.sc.MaxFrontier()))
	switch {
	// Both violation kinds are suppressed while any element is
	// abandoned: an abandoned element could still accept the history
	// (and could cover the claim), so the verdict is unknowable and
	// raising it would be unsound (Options.FrontierCap).
	case c.sc.Abandoned() > 0:
	case !alive:
		c.violate(Violation{Kind: KindExhausted, Step: c.steps, Op: op, Level: before})
	case c.haveClaim && !c.covered(c.minClaim):
		c.violate(Violation{Kind: KindClaim, Step: c.steps, Op: op,
			Claim: c.formatClaim(), Level: before})
	}
	if c.sc.Alive() != c.prevAlive {
		c.prevAlive = c.sc.Alive()
		c.recordLevel()
	}
	if c.opts.SampleEvery > 0 && c.steps%c.opts.SampleEvery == 0 {
		c.samples = append(c.samples, Sample{Step: c.steps, Sets: c.sc.Current()})
		if c.opts.Window > 0 && len(c.samples) > c.opts.Window {
			c.samples = c.samples[:copy(c.samples, c.samples[len(c.samples)-c.opts.Window:])]
		}
	}
}

// ObserveClaim registers a degradation claim — the
// cluster.ClaimObserver hook, called on every adaptive descent or
// ascent. The claim is the *floor* assertion of X05 in online form:
// the intersection of all claimed sets must keep accepting the
// observed history from here on. It panics on a level name missing
// from Options.Claims.
func (c *Checker) ObserveClaim(client int, level string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.opts.Claims[level]
	if !ok {
		panic(fmt.Sprintf("relaxcheck: claim %q not in Options.Claims", level))
	}
	next := set
	if c.haveClaim {
		next = c.minClaim.Intersect(set)
	}
	if !c.haveClaim || next != c.minClaim {
		c.minClaim = next
		c.claimName = level
	}
	c.haveClaim = true
	if c.opts.Trace != nil {
		c.opts.Trace.Record(c.now(), "relaxcheck.claim",
			obs.KV{K: "client", V: strconv.Itoa(client)},
			obs.KV{K: "level", V: level},
			obs.KV{K: "floor", V: c.formatClaim()})
	}
	if c.sc.Abandoned() == 0 && !c.covered(c.minClaim) {
		c.violate(Violation{Kind: KindClaim, Step: c.steps,
			Claim: c.formatClaim(), Level: c.sc.Current()})
	}
}

// covered reports whether the claim set lies at or below the current
// lattice position: claim ⊆ s for some maximal viable s. For claims
// inside φ's domain this is exactly viability (acceptance is antitone
// in the constraint set); the subset form also handles claims outside
// the domain, matching the offline X05 audit.
func (c *Checker) covered(claim lattice.Set) bool {
	for _, s := range c.sc.Current() {
		if claim.SubsetOf(s) {
			return true
		}
	}
	return false
}

// violate records the first violation (sticky) and keeps counting
// later ones in metrics.
func (c *Checker) violate(v Violation) {
	c.opts.Metrics.Counter("relaxcheck.violation").Add(1)
	if c.violation != nil {
		return
	}
	c.violation = &v
	if c.opts.Trace != nil {
		c.opts.Trace.Record(c.now(), "relaxcheck.violation",
			obs.KV{K: "kind", V: v.Kind},
			obs.KV{K: "step", V: strconv.Itoa(v.Step)},
			obs.KV{K: "op", V: v.Op.String()},
			obs.KV{K: "claim", V: v.Claim})
	}
	if c.opts.OnViolation != nil {
		c.opts.OnViolation(v)
	}
}

// recordLevel journals a change of the maximal viable sets.
func (c *Checker) recordLevel() {
	level := formatSets(c.sc.Lattice().Universe, c.sc.Current())
	if level == c.lastLevel {
		return
	}
	c.lastLevel = level
	if c.opts.Trace != nil {
		c.opts.Trace.Record(c.now(), "relaxcheck.level",
			obs.KV{K: "step", V: strconv.Itoa(c.steps)},
			obs.KV{K: "level", V: level})
	}
}

func (c *Checker) now() int64 {
	if c.opts.Clock != nil {
		return c.opts.Clock.Now()
	}
	return int64(c.steps)
}

func (c *Checker) formatClaim() string {
	u := c.sc.Lattice().Universe
	if c.claimName != "" {
		return c.claimName + "=" + u.Format(c.minClaim)
	}
	return u.Format(c.minClaim)
}

// Steps returns the number of operations observed.
func (c *Checker) Steps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.steps
}

// Violation returns the first violation, or nil for a clean run.
func (c *Checker) Violation() *Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violation
}

// Current returns the maximal viable constraint sets — equal on every
// prefix to WeakestAccepting of that prefix.
func (c *Checker) Current() []lattice.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sc.Current()
}

// Level renders Current against the lattice's universe.
func (c *Checker) Level() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return formatSets(c.sc.Lattice().Universe, c.sc.Current())
}

// Degraded reports whether the preferred behavior has been lost.
func (c *Checker) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sc.Degraded()
}

// Abandoned returns how many lattice elements the frontier cap has
// dropped (0 without Options.FrontierCap). While nonzero, the checker
// suppresses violations — see Options.FrontierCap.
func (c *Checker) Abandoned() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sc.Abandoned()
}

// MaxFrontier returns the largest per-element automaton frontier seen.
func (c *Checker) MaxFrontier() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sc.MaxFrontier()
}

// Samples returns the sampled verdicts (Options.SampleEvery).
func (c *Checker) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.samples...)
}

// FloorClaim returns the weakest claim registered so far ("" when no
// claim was ever made) rendered with its constraint set.
func (c *Checker) FloorClaim() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.haveClaim {
		return ""
	}
	return c.formatClaim()
}

// formatSets renders maximal sets as a stable single token.
func formatSets(u *lattice.Universe, sets []lattice.Set) string {
	if len(sets) == 0 {
		return "⊥"
	}
	names := make([]string, len(sets))
	for i, s := range sets {
		names[i] = u.Format(s)
	}
	return strings.Join(names, "|")
}
