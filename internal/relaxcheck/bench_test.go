package relaxcheck

import (
	"bytes"
	"testing"
)

// BenchmarkCheckpointRoundtrip measures the audit sidecar's
// checkpoint/resume cycle on a warm checker: serialize the full
// frontier snapshot, then restore it. This is the cost paid once per
// -checkpoint-every interval, so ns/op here bounds how aggressively a
// soak can checkpoint.
func BenchmarkCheckpointRoundtrip(b *testing.B) {
	lat, opts := spoolOpts()
	c := New(lat, opts)
	for _, ev := range genEvents(7, 256) {
		applyEvent(c, ev)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := c.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Resume(lat, opts, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditObserve measures the steady-state per-op cost of the
// online checker the audit sidecar replays through.
func BenchmarkAuditObserve(b *testing.B) {
	lat, opts := spoolOpts()
	c := New(lat, opts)
	events := genEvents(7, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		applyEvent(c, events[i%len(events)])
	}
}
