package relaxcheck

import (
	"bytes"
	"testing"

	"relaxlattice/internal/obs/trace"
)

// runSpanSoak runs the pinned small soak with span tracing on and
// returns the stream bytes.
func runSpanSoak(t *testing.T) []byte {
	t.Helper()
	tr := trace.NewTracer("soak/cluster", nil)
	cfg := ClusterSoakConfig{
		Workload: Workload{Kind: Bursty, Clients: 8, Ops: 120},
		Seed:     11,
		Sites:    5,
		Spans:    tr,
	}
	if _, err := RunClusterSoak(cfg); err != nil {
		t.Fatalf("soak: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestClusterSoakSpansDeterministicAndLinked(t *testing.T) {
	b1 := runSpanSoak(t)
	b2 := runSpanSoak(t)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("span streams differ across identical runs")
	}
	spans, err := trace.ReadJSONL(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	links := 0
	for _, sp := range spans {
		counts[sp.Name]++
		if sp.Name == "cluster.step1.view" {
			links += len(sp.Links)
		}
	}
	for _, name := range []string{"cluster.submit", "cluster.attempt", "cluster.op",
		"cluster.step1.view", "cluster.step2.respond", "cluster.step3.record"} {
		if counts[name] == 0 {
			t.Fatalf("no %s spans in stream (counts: %v)", name, counts)
		}
	}
	if links == 0 {
		t.Fatalf("no happens-before links from step-1 views to prior writes")
	}
	// The analyzer attributes every nonzero root and per-rung time.
	an := trace.Analyze(spans)
	if an.Roots == 0 || an.Critical == 0 {
		t.Fatalf("analysis degenerate: %+v", an)
	}
	if len(an.ByRung) == 0 {
		t.Fatalf("no per-rung attribution")
	}
}

func TestTxnSoakSpans(t *testing.T) {
	run := func() ([]byte, int) {
		tr := trace.NewTracer("soak/txn", nil)
		cfg := TxnSoakConfig{
			Workload: Workload{Kind: Uniform, Clients: 6, Ops: 90},
			Seed:     5,
			Spans:    tr,
		}
		rep, err := RunTxnSoak(cfg)
		if err != nil {
			t.Fatalf("txn soak: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep.Completed
	}
	b1, done1 := run()
	b2, done2 := run()
	if !bytes.Equal(b1, b2) || done1 != done2 {
		t.Fatalf("txn span streams differ across identical runs")
	}
	spans, err := trace.ReadJSONL(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	var txns, ops int
	for _, sp := range spans {
		switch sp.Name {
		case "txn":
			txns++
		case "txn.enq", "txn.deq":
			ops++
		}
	}
	if txns == 0 || ops == 0 {
		t.Fatalf("txn stream missing spans: %d txns, %d ops", txns, ops)
	}
}
