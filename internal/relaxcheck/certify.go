package relaxcheck

import (
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
)

// Certify replays a complete history through a fresh online checker —
// the one-shot form of the audit, used to certify recovered state:
// after a crash-restart, the durable logs' history must still land
// inside the level the service claims. rung, when non-empty, is
// registered as a standing claim (from Options.Claims, which defaults
// to TaxiClaims over lat's universe) before the first operation, so
// the whole history is held to that rung's constraint set; an empty
// rung checks only that the history stays inside the lattice at all.
// It returns the first violation, or nil when the history certifies.
func Certify(lat *lattice.Relaxation, claims map[string]lattice.Set, rung string, h history.History) *Violation {
	if claims == nil {
		claims = TaxiClaims(lat.Universe)
	}
	c := New(lat, Options{Claims: claims})
	if rung != "" {
		c.ObserveClaim(-1, rung)
	}
	for _, op := range h {
		c.ObserveOp(op)
	}
	return c.Violation()
}
