package relaxcheck

import (
	"encoding/json"
	"fmt"
	"io"

	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
)

// This file implements the audit sidecar's checkpoint/restore
// (DESIGN.md §14). A checkpoint is a complete, deterministic JSON
// serialization of a Checker: the per-element frontier state-set
// classes (canonical value Keys, via lattice.StepChecker.Snapshot)
// plus the claim floor, violation, and sampling state. Restoring a
// checkpoint and feeding the remaining operations yields exactly the
// verdicts — Current, Level, Violation, Samples — of the run that was
// never interrupted, at every prefix; soundness rests on acceptance
// factoring through frontier state sets. Checkpoint bytes are a pure
// function of checker state: equal states serialize identically, so
// checkpoints themselves are differential-testable artifacts.

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

type checkpointFile struct {
	Version   int              `json:"version"`
	Lattice   string           `json:"lattice"`
	Steps     int              `json:"steps"`
	PrevAlive int              `json:"prev_alive"`
	LastLevel string           `json:"last_level"`
	HaveClaim bool             `json:"have_claim"`
	MinClaim  uint64           `json:"min_claim"`
	ClaimName string           `json:"claim_name"`
	Violation *violationRecord `json:"violation,omitempty"`
	Samples   []sampleRecord   `json:"samples,omitempty"`
	Checker   lattice.Snapshot `json:"checker"`
}

type violationRecord struct {
	Kind  string   `json:"kind"`
	Step  int      `json:"step"`
	Op    string   `json:"op,omitempty"`
	Claim string   `json:"claim,omitempty"`
	Level []uint64 `json:"level,omitempty"`
}

type sampleRecord struct {
	Step int      `json:"step"`
	Sets []uint64 `json:"sets,omitempty"`
}

func setsToMasks(sets []lattice.Set) []uint64 {
	if sets == nil {
		return nil
	}
	out := make([]uint64, len(sets))
	for i, s := range sets {
		out[i] = uint64(s)
	}
	return out
}

func masksToSets(masks []uint64) []lattice.Set {
	if masks == nil {
		return nil
	}
	out := make([]lattice.Set, len(masks))
	for i, m := range masks {
		out[i] = lattice.Set(m)
	}
	return out
}

// Checkpoint writes the checker's complete state as deterministic JSON
// (one trailing newline). It may be called at any point, including
// after a violation; concurrent observers are excluded for the
// duration, so the checkpoint is a consistent cut.
func (c *Checker) Checkpoint(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := checkpointFile{
		Version:   checkpointVersion,
		Lattice:   c.sc.Lattice().Name,
		Steps:     c.steps,
		PrevAlive: c.prevAlive,
		LastLevel: c.lastLevel,
		HaveClaim: c.haveClaim,
		MinClaim:  uint64(c.minClaim),
		ClaimName: c.claimName,
		Checker:   c.sc.Snapshot(),
	}
	if c.violation != nil {
		v := violationRecord{
			Kind:  c.violation.Kind,
			Step:  c.violation.Step,
			Claim: c.violation.Claim,
			Level: setsToMasks(c.violation.Level),
		}
		if c.violation.Op.Name != "" {
			v.Op = c.violation.Op.String()
		}
		f.Violation = &v
	}
	for _, s := range c.samples {
		f.Samples = append(f.Samples, sampleRecord{Step: s.Step, Sets: setsToMasks(s.Sets)})
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("relaxcheck: checkpoint: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Resume reconstructs a checker from a checkpoint taken against the
// same relaxation lattice, ready to consume the operations that follow
// the checkpointed prefix. opts replaces the original options (sinks
// like Metrics/Trace/OnViolation are process-local and never
// serialized); MemoCap and FrontierCap take effect on the restored
// frontiers. The restored checker is observably identical to the one
// that wrote the checkpoint: every subsequent ObserveOp/ObserveClaim
// produces the same verdicts an uninterrupted run would have.
func Resume(lat *lattice.Relaxation, opts Options, r io.Reader) (*Checker, error) {
	var f checkpointFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("relaxcheck: resume: %w", err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("relaxcheck: resume: checkpoint version %d, want %d",
			f.Version, checkpointVersion)
	}
	if f.Lattice != lat.Name {
		return nil, fmt.Errorf("relaxcheck: resume: checkpoint is for lattice %q, not %q",
			f.Lattice, lat.Name)
	}
	sc, err := lattice.RestoreStepChecker(lat, f.Checker, opts.MemoCap)
	if err != nil {
		return nil, fmt.Errorf("relaxcheck: resume: %w", err)
	}
	if opts.FrontierCap > 0 {
		sc.SetFrontierCap(opts.FrontierCap)
	}
	c := &Checker{
		sc:        sc,
		opts:      opts,
		steps:     f.Steps,
		prevAlive: f.PrevAlive,
		lastLevel: f.LastLevel,
		haveClaim: f.HaveClaim,
		minClaim:  lattice.Set(f.MinClaim),
		claimName: f.ClaimName,
	}
	if f.Violation != nil {
		v := &Violation{
			Kind:  f.Violation.Kind,
			Step:  f.Violation.Step,
			Claim: f.Violation.Claim,
			Level: masksToSets(f.Violation.Level),
		}
		if f.Violation.Op != "" {
			op, err := history.ParseOp(f.Violation.Op)
			if err != nil {
				return nil, fmt.Errorf("relaxcheck: resume: violation op: %w", err)
			}
			v.Op = op
		}
		c.violation = v
	}
	for _, s := range f.Samples {
		c.samples = append(c.samples, Sample{Step: s.Step, Sets: masksToSets(s.Sets)})
	}
	return c, nil
}
