package relaxcheck

import (
	"fmt"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/resilience"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

// ClusterSoakConfig parameterizes one deterministic cluster soak run:
// hundreds of adaptive clients submitting a seeded workload on
// simulated time against the replicated taxi priority queue, with the
// online checker attached to the observation path as a live audit.
type ClusterSoakConfig struct {
	// Workload shapes the arrival plan. Clients/Ops are required.
	Workload Workload
	// Seed drives every random choice (plan, retry jitter, faults).
	Seed int64
	// Sites is the cluster size (default 5).
	Sites int
	// Faults, when non-zero, runs a stochastic background fault
	// process in addition to any faults the workload plans.
	Faults cluster.FaultConfig
	// Resilience tunes the adaptive clients; zero-value fields take
	// resilience.DefaultOptions.
	Resilience *resilience.Options
	// Metrics and Trace, when set, receive the cluster's and the
	// checker's series and events.
	Metrics *obs.Registry
	Trace   *obs.Recorder
	// SampleEvery, when positive, records the checker's verdict every
	// SampleEvery observed operations (for differential audits).
	SampleEvery int
	// MemoCap enables checker transition memoization (off by default:
	// bag-valued taxi states have long keys).
	MemoCap int
	// Claims overrides the rung→constraint-set claim table (default
	// TaxiClaims). Tests use TaxiRungLevels here to demonstrate that
	// the checker refutes the nominal per-rung claims under mixing.
	Claims map[string]lattice.Set
	// Spans, when set, receives the run's causal span stream. The soak
	// re-clocks the tracer onto simulated microseconds (a SimClock over
	// the engine), so spans measure where sim-time went; protocol steps
	// at one instant still get distinct strictly ordered boundaries.
	Spans *trace.Tracer
	// OnViolation, when set, fires once at the checker's first
	// violation (the flight-recorder dump hook). It must not call back
	// into the checker or the cluster.
	OnViolation func(Violation)
}

// SoakReport summarizes a soak run.
type SoakReport struct {
	// Ops is the number of planned submissions; Completed + Failed
	// account for every one (Failed counts unavailability after
	// retries and semantic rejections like dequeuing an empty queue).
	Ops, Completed, Failed int
	// Steps is the number of operations the checker observed.
	Steps int
	// Violation is the first checker violation (nil on a clean run).
	Violation *Violation
	// Level renders the final lattice position; Sets is the same as
	// constraint sets.
	Level string
	Sets  []lattice.Set
	// FloorClaim is the weakest degradation level any client claimed
	// ("" when every client stayed at the top).
	FloorClaim string
	// MaxFrontier is the checker's largest automaton frontier.
	MaxFrontier int
	// Samples are the checker's sampled verdicts (SampleEvery).
	Samples []Sample
	// Observed is the audited history, for offline cross-checks.
	Observed history.History
}

// TaxiClaims maps the TaxiLadder rung names onto what a *joint*
// execution actually guarantees while the weakest client sits at that
// rung — the claim table the harness cross-checks adaptive descents
// and ascents against.
//
// Only the top rung claims anything: while every client runs the Q1Q2
// assignment, quorum intersection enforces both constraints and the
// observed history must stay at the lattice top. The moment any client
// descends, clients mix voting assignments, and assignments from
// different rungs do not intersect each other's quorums — for n sites,
// Q1Q2's final Enq quorum (n−⌈n/2⌉) plus Q1's initial Deq quorum
// (⌊n/2⌋) covers only n sites, so a rung-Q1 dequeue can miss a
// rung-Q1Q2 enqueue entirely and the merged history escapes even
// φ({Q1}). Uncoordinated reassignment forfeits every constraint during
// the mix, so the non-top rungs honestly claim ∅. TaxiRungLevels keeps
// the per-rung nominal map; TestSoakOnlineCheckerRefutesNaiveRungClaims
// pins the refutation the online checker produced.
func TaxiClaims(u *lattice.Universe) map[string]lattice.Set {
	return map[string]lattice.Set{
		"Q1Q2": u.All(),
		"Q1":   0,
		"none": 0,
	}
}

// TaxiRungLevels maps each TaxiLadder rung onto the lattice element its
// assignment realizes when *every* client runs that assignment — the
// nominal per-rung levels of X05's post-hoc audit. Nominal is the
// operative word: these claims are unsound for mixed executions (see
// TaxiClaims), which is precisely what the online checker detects.
func TaxiRungLevels(u *lattice.Universe) map[string]lattice.Set {
	return map[string]lattice.Set{
		"Q1Q2": u.All(),
		// The static certifier refutes this entry (a rung-Q1 Deq initial
		// quorum can miss a rung-Q1Q2 Enq final quorum entirely), agreeing
		// with the online checker's runtime refutation in X06 — the table
		// exists precisely as the unsound nominal foil, so the finding is
		// expected and suppressed rather than repaired.
		//lint:ignore speccheck nominal per-rung table kept as the documented-unsound foil X06 and TestSoakOnlineCheckerRefutesNaiveRungClaims pin
		"Q1":   u.Named(core.ConstraintQ1),
		"none": 0,
	}
}

// RunClusterSoak executes one soak run. It returns the report and a
// non-nil error when the run violated its lattice claims (the report
// is valid either way).
func RunClusterSoak(cfg ClusterSoakConfig) (*SoakReport, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 5
	}
	w := cfg.Workload
	w.Sites = cfg.Sites
	w = w.Defaulted()
	opts := resilience.DefaultOptions()
	if cfg.Resilience != nil {
		opts = *cfg.Resilience
	}

	lat := core.TaxiSimpleLattice()
	claims := cfg.Claims
	if claims == nil {
		claims = TaxiClaims(lat.Universe)
	}
	checker := New(lat, Options{
		Metrics:     cfg.Metrics,
		Trace:       cfg.Trace,
		Claims:      claims,
		MemoCap:     cfg.MemoCap,
		SampleEvery: cfg.SampleEvery,
		OnViolation: cfg.OnViolation,
	})
	ladder := cluster.TaxiLadder(cfg.Sites)
	// The run starts with every client on the top rung; registering that
	// claim up front makes the pre-descent phase checked (not vacuous):
	// any degradation observed while the floor is still the top fails
	// the run at the offending op.
	checker.ObserveClaim(-1, ladder[0].Name)
	var engine sim.Engine
	cfg.Spans.SetClock(trace.NewSimClock(func() int64 { return int64(engine.Now() * 1e6) }))
	c := cluster.New(cluster.Config{
		Sites:   cfg.Sites,
		Quorums: quorum.TaxiAssignments(cfg.Sites)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
		Audit:   checker,
		Spans:   cfg.Spans,
	})

	g := sim.NewRNG(cfg.Seed)
	plan := w.Plan(g.Split())
	horizon := w.Horizon * 1.5

	clients := make([]*cluster.AdaptiveClient, w.Clients)
	for i := range clients {
		clients[i] = c.Adaptive(i%cfg.Sites, ladder, opts, &engine, g.Split())
	}
	applyFaults(c, &engine, plan.Faults)
	if cfg.Faults != (cluster.FaultConfig{}) {
		fp := cluster.NewFaultProcess(c, &engine, g.Split(), cfg.Faults)
		fp.Start()
		engine.At(w.Horizon, fp.Stop) // repairs still complete before the horizon
	}

	report := &SoakReport{Ops: len(plan.Arrivals)}
	for _, a := range plan.Arrivals {
		a := a
		engine.At(a.At, func() {
			clients[a.Client].Submit(a.Inv, func(_ history.Op, out resilience.Outcome) {
				if out.Err == nil {
					report.Completed++
				} else {
					report.Failed++
				}
			})
		})
	}
	engine.Run(horizon)

	report.Steps = checker.Steps()
	report.Violation = checker.Violation()
	report.Level = checker.Level()
	report.Sets = checker.Current()
	report.FloorClaim = checker.FloorClaim()
	report.MaxFrontier = checker.MaxFrontier()
	report.Samples = checker.Samples()
	report.Observed = c.Observed()
	if report.Violation != nil {
		return report, report.Violation
	}
	if report.Completed+report.Failed != report.Ops {
		return report, fmt.Errorf("relaxcheck: %d of %d submissions unresolved at horizon %g",
			report.Ops-report.Completed-report.Failed, report.Ops, horizon)
	}
	return report, nil
}

// applyFaults schedules a plan's explicit fault events on the engine.
func applyFaults(c *cluster.Cluster, engine *sim.Engine, faults []FaultEvent) {
	for _, f := range faults {
		f := f
		var fn func()
		switch f.Kind {
		case "crash":
			fn = func() { c.Crash(f.Site) }
		case "restore":
			fn = func() { c.Restore(f.Site); c.Gossip() }
		case "partition":
			fn = func() { c.Partition(f.Groups...) }
		case "heal":
			fn = func() { c.Heal(); c.Gossip() }
		default:
			panic(fmt.Sprintf("relaxcheck: unknown fault event %q", f.Kind))
		}
		engine.At(f.At, fn)
	}
}
