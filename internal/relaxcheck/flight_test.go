package relaxcheck

import (
	"bytes"
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
)

// TestFlightRecorderDumpOnViolation wires the degradation flight
// recorder the way cmd/relaxsoak does — span mirror plus journal
// observer, dumped by OnViolation — against the pinned refutation run
// (naive per-rung claims under a mixed-assignment soak). The dump must
// carry the violation header and a bounded window of the spans and
// episodes leading up to it, and must be byte-identical across runs.
func TestFlightRecorderDumpOnViolation(t *testing.T) {
	run := func() []byte {
		lat := core.TaxiSimpleLattice()
		tr := trace.NewTracer("soak/cluster", nil)
		rec := obs.NewRecorder()
		fr := trace.NewFlightRecorder(64, 64)
		tr.SetMirror(fr)
		rec.SetObserver(fr.ObserveEvent)
		var dump bytes.Buffer
		_, err := RunClusterSoak(ClusterSoakConfig{
			Workload: Workload{Kind: Bursty, Clients: 40, Ops: 1500},
			Seed:     7,
			Faults:   soakFaults(),
			Trace:    rec,
			Spans:    tr,
			Claims:   TaxiRungLevels(lat.Universe),
			OnViolation: func(v Violation) {
				if err := fr.WriteDump(&dump,
					obs.KV{K: "kind", V: v.Kind},
					obs.KV{K: "op", V: v.Op.String()}); err != nil {
					t.Errorf("flight dump: %v", err)
				}
			},
		})
		if err == nil {
			t.Fatal("pinned refutation run did not violate")
		}
		return dump.Bytes()
	}
	d1 := run()
	if len(d1) == 0 {
		t.Fatal("no flight dump written at the violation")
	}
	if !bytes.Contains(d1, []byte(`"flight":"header"`)) ||
		!bytes.Contains(d1, []byte(`"kind":"claim"`)) {
		t.Fatalf("dump missing violation header:\n%.200s", d1)
	}
	if !bytes.Contains(d1, []byte(`"flight":"span"`)) {
		t.Fatal("dump carries no spans")
	}
	if !bytes.Contains(d1, []byte(`"flight":"event"`)) {
		t.Fatal("dump carries no journal events")
	}
	// The ring is bounded: far fewer spans kept than the run emitted.
	if !bytes.Contains(d1, []byte(`"spans_kept":64`)) {
		t.Fatalf("ring did not fill to its cap:\n%.200s", d1)
	}
	if d2 := run(); !bytes.Equal(d1, d2) {
		t.Fatal("flight dumps differ across identical runs")
	}
}
