package relaxcheck

import (
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/sim"
)

// finalVerdict feeds h through a fresh checker and returns its final
// verdict (nil sets mean the lattice is exhausted).
func finalVerdict(lat *lattice.Relaxation, h history.History) ([]lattice.Set, string) {
	c := New(lat, Options{})
	for _, op := range h {
		c.ObserveOp(op)
	}
	return c.Current(), c.Level()
}

// enqEnqPairs returns the indices i where h[i] and h[i+1] are both
// enqueues — the adjacent pairs that commute under every taxi behavior
// (all four share bag-valued states, and enqueues only add to the bag,
// so swapping two adjacent enqueues reaches the same bag through states
// that differ only between the pair).
func enqEnqPairs(h history.History) []int {
	var pos []int
	for i := 0; i+1 < len(h); i++ {
		if h[i].Name == history.NameEnq && h[i+1].Name == history.NameEnq {
			pos = append(pos, i)
		}
	}
	return pos
}

func swapped(h history.History, i int) history.History {
	out := make(history.History, len(h))
	copy(out, h)
	out[i], out[i+1] = out[i+1], out[i]
	return out
}

// TestMetamorphicEnqCommute is the metamorphic property over random
// histories: swapping any adjacent pair of enqueues never changes the
// reported level. (Scoped to the bag-based taxi lattice — for the
// sequence-valued spooler lattices even Enq-Enq order is observable.)
func TestMetamorphicEnqCommute(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	rng := sim.NewRNG(23)
	alphabet := history.QueueAlphabet(4)
	trials := 0
	for trials < 200 {
		n := 2 + rng.Intn(10)
		h := make(history.History, 0, n)
		for i := 0; i < n; i++ {
			h = append(h, alphabet[rng.Intn(len(alphabet))])
		}
		pairs := enqEnqPairs(h)
		if len(pairs) == 0 {
			continue
		}
		trials++
		baseSets, baseLevel := finalVerdict(lat, h)
		for _, i := range pairs {
			gotSets, gotLevel := finalVerdict(lat, swapped(h, i))
			if !sameSets(gotSets, baseSets) || gotLevel != baseLevel {
				t.Fatalf("swap at %d changed verdict: %v (%s) vs %v (%s)\nhistory %v",
					i, gotSets, gotLevel, baseSets, baseLevel, h)
			}
		}
	}
}

// TestMetamorphicSoakEnqCommute applies the same property to a real
// soak run's audited history: re-checking the observed history with any
// adjacent enqueue pair swapped reports the same final level the live
// run did.
func TestMetamorphicSoakEnqCommute(t *testing.T) {
	report, err := RunClusterSoak(ClusterSoakConfig{
		Workload: Workload{Kind: Uniform, Clients: 20, Ops: 300},
		Seed:     42,
		Faults:   soakFaults(),
	})
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	lat := core.TaxiSimpleLattice()
	pairs := enqEnqPairs(report.Observed)
	if len(pairs) == 0 {
		t.Fatal("observed history has no adjacent enqueue pairs")
	}
	for _, i := range pairs {
		gotSets, gotLevel := finalVerdict(lat, swapped(report.Observed, i))
		if !sameSets(gotSets, report.Sets) || gotLevel != report.Level {
			t.Fatalf("swap at %d changed verdict: %v (%s) vs run's %v (%s)",
				i, gotSets, gotLevel, report.Sets, report.Level)
		}
	}
}
