package relaxcheck

import (
	"strings"
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
)

func TestCheckerExhaustedViolation(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	var seen *Violation
	c := New(core.TaxiSimpleLattice(), Options{
		Metrics:     reg,
		Trace:       rec,
		OnViolation: func(v Violation) { seen = &v },
	})
	// Phantom dequeue: no taxi lattice element accepts it.
	c.ObserveOp(history.DeqOk(9))
	v := c.Violation()
	if v == nil || v.Kind != KindExhausted || v.Step != 1 {
		t.Fatalf("violation = %+v", v)
	}
	if seen == nil || seen.Kind != KindExhausted {
		t.Fatalf("OnViolation saw %+v", seen)
	}
	if !strings.Contains(v.Error(), "rejected by every lattice element") {
		t.Fatalf("Error() = %q", v.Error())
	}
	if n, _ := reg.Snapshot().Counter("relaxcheck.violation"); n != 1 {
		t.Fatalf("violation counter = %d", n)
	}
	// The violation is sticky: a later op neither replaces it nor fires
	// the callback again, but still counts in metrics.
	seen = nil
	c.ObserveOp(history.Enq(1))
	if seen != nil {
		t.Fatal("OnViolation fired twice")
	}
	if got := c.Violation(); got.Step != 1 {
		t.Fatalf("first violation replaced: %+v", got)
	}
	if n, _ := reg.Snapshot().Counter("relaxcheck.violation"); n != 2 {
		t.Fatalf("violation counter after second = %d", n)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Name == "relaxcheck.violation" {
			found = true
			if kind, _ := e.Attr("kind"); kind != KindExhausted {
				t.Fatalf("journaled kind = %q", kind)
			}
		}
	}
	if !found {
		t.Fatal("no relaxcheck.violation event journaled")
	}
}

func TestCheckerClaimViolationOnClaim(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	// Duplicate delivery: drops the level below the top.
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	if c.Violation() != nil {
		t.Fatalf("violation before any claim: %+v", c.Violation())
	}
	// Claiming the top now is a lie — the history already escaped it.
	c.ObserveClaim(0, "Q1Q2")
	v := c.Violation()
	if v == nil || v.Kind != KindClaim {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), "escapes claimed level") {
		t.Fatalf("Error() = %q", v.Error())
	}
}

func TestCheckerClaimViolationOnOp(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	c.ObserveClaim(3, "Q1Q2") // claims the top while it still holds
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	if c.Violation() != nil {
		t.Fatalf("premature violation: %+v", c.Violation())
	}
	c.ObserveOp(history.DeqOk(2)) // duplicate delivery escapes the top
	v := c.Violation()
	if v == nil || v.Kind != KindClaim || v.Step != 3 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCheckerClaimFloorIsIntersection(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	c.ObserveClaim(0, "Q1Q2")
	c.ObserveClaim(1, "Q1")
	c.ObserveClaim(0, "Q1Q2") // an ascent does not raise the floor back
	if f := c.FloorClaim(); !strings.HasPrefix(f, "Q1=") {
		t.Fatalf("FloorClaim = %q", f)
	}
	// Duplicate delivery violates Q1 ⊆ level? No: duplicates kill Q2
	// sets; {Q1} stays viable, so the Q1 floor holds.
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	if c.Violation() != nil {
		t.Fatalf("Q1 floor violated by a Q1-legal history: %+v", c.Violation())
	}
	// A phantom op kills the entire lattice — exhausted beats claim.
	c.ObserveOp(history.DeqOk(9))
	if v := c.Violation(); v == nil || v.Kind != KindExhausted {
		t.Fatalf("violation = %+v", v)
	}
}

// TestCheckerInterleavedMultiClientClaims drives claims from three
// clients interleaved with operations: the floor is the running
// intersection across *all* clients, one client re-asserting a strong
// rung cannot raise it back while another client's weaker claim
// stands, and each registration is journaled with its client id.
func TestCheckerInterleavedMultiClientClaims(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	rec := obs.NewRecorder()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe), Trace: rec})

	c.ObserveClaim(0, "Q1Q2")
	c.ObserveOp(history.Enq(1))
	c.ObserveOp(history.DeqOk(1))
	if f := c.FloorClaim(); !strings.HasPrefix(f, "Q1Q2=") {
		t.Fatalf("FloorClaim after top claim = %q", f)
	}

	// A second client descends mid-stream: the floor drops to the
	// intersection even though client 0's claim is still standing.
	c.ObserveClaim(1, "Q1")
	if f := c.FloorClaim(); !strings.HasPrefix(f, "Q1=") {
		t.Fatalf("FloorClaim after interleaved descent = %q", f)
	}

	// Client 0 re-asserts the top between operations: the floor is an
	// intersection, so one client ascending cannot outvote the weaker
	// standing claim.
	c.ObserveOp(history.Enq(2))
	c.ObserveClaim(0, "Q1Q2")
	if f := c.FloorClaim(); !strings.HasPrefix(f, "Q1=") {
		t.Fatalf("FloorClaim after one-client ascent = %q", f)
	}

	// Duplicate delivery escapes the top rung but satisfies Q1: legal
	// under the multi-client floor.
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	if c.Violation() != nil {
		t.Fatalf("Q1 floor violated by a Q1-legal history: %+v", c.Violation())
	}

	// A third client dropping to the bottom rung empties the floor:
	// everything is covered from here on.
	c.ObserveClaim(2, "none")
	if f := c.FloorClaim(); !strings.HasPrefix(f, "none=") {
		t.Fatalf("FloorClaim after bottom claim = %q", f)
	}
	c.ObserveOp(history.DeqOk(1))
	if c.Violation() != nil {
		t.Fatalf("empty floor still violated: %+v", c.Violation())
	}

	// Every registration journaled, in order, with its client id.
	var clients []string
	for _, e := range rec.Events() {
		if e.Name == "relaxcheck.claim" {
			id, _ := e.Attr("client")
			clients = append(clients, id)
		}
	}
	if got, want := strings.Join(clients, ","), "0,1,0,2"; got != want {
		t.Fatalf("journaled claim clients = %q, want %q", got, want)
	}
}

// TestCheckerStickyClaimViolationOrdering pins the converse ordering
// of TestCheckerExhaustedViolation: when a claim violation lands
// first, a later lattice exhaustion neither replaces it nor re-fires
// the callback — the first verdict is the one the run is judged by —
// while the metrics keep counting every subsequent violation.
func TestCheckerStickyClaimViolationOrdering(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	reg := obs.NewRegistry()
	fired := 0
	c := New(lat, Options{
		Claims:      TaxiRungLevels(lat.Universe),
		Metrics:     reg,
		OnViolation: func(Violation) { fired++ },
	})
	// Escape the top rung first (duplicate delivery), then claim it.
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveClaim(0, "Q1Q2")
	v := c.Violation()
	if v == nil || v.Kind != KindClaim || v.Step != 3 {
		t.Fatalf("claim violation = %+v", v)
	}

	// A phantom op exhausts the whole lattice — a strictly worse
	// verdict, but the first violation is sticky.
	c.ObserveOp(history.DeqOk(9))
	if got := c.Violation(); got.Kind != KindClaim || got.Step != 3 {
		t.Fatalf("first violation replaced by later exhaustion: %+v", got)
	}

	// Another client repeating the broken claim counts in metrics but
	// changes nothing else.
	c.ObserveClaim(1, "Q1Q2")
	if got := c.Violation(); got.Kind != KindClaim || got.Step != 3 {
		t.Fatalf("first violation replaced by repeated claim: %+v", got)
	}
	if n, _ := reg.Snapshot().Counter("relaxcheck.violation"); n != 3 {
		t.Fatalf("violation counter = %d, want 3 (claim, exhaustion, repeated claim)", n)
	}
	if fired != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", fired)
	}
}

func TestCheckerUnknownClaimPanics(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown claim level did not panic")
		}
	}()
	c.ObserveClaim(0, "Q9")
}

func TestCheckerMetricsAndSamples(t *testing.T) {
	reg := obs.NewRegistry()
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Metrics: reg, SampleEvery: 2})
	h := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(1)}
	for _, op := range h {
		c.ObserveOp(op)
	}
	if n, _ := reg.Snapshot().Counter("relaxcheck.step"); n != 4 {
		t.Fatalf("step counter = %d", n)
	}
	if g, ok := reg.Snapshot().Gauge("relaxcheck.frontier.max"); !ok || g < 1 {
		t.Fatalf("frontier.max gauge = %d (ok=%v)", g, ok)
	}
	samples := c.Samples()
	if len(samples) != 2 || samples[0].Step != 2 || samples[1].Step != 4 {
		t.Fatalf("samples = %+v", samples)
	}
	if c.Steps() != 4 {
		t.Fatalf("Steps = %d", c.Steps())
	}
	if c.Degraded() {
		t.Fatal("PQ-legal history degraded")
	}
	if c.Level() == "" || c.Level() == "⊥" {
		t.Fatalf("Level = %q", c.Level())
	}
}

func TestCheckerLevelJournal(t *testing.T) {
	rec := obs.NewRecorder()
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Trace: rec})
	// PQ-legal prefix: no level change events.
	c.ObserveOp(history.Enq(1))
	c.ObserveOp(history.DeqOk(1))
	for _, e := range rec.Events() {
		if e.Name == "relaxcheck.level" {
			t.Fatalf("level event on an undegraded run: %+v", e)
		}
	}
	// Duplicate delivery: the level drops, and exactly one event records it.
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	levels := 0
	for _, e := range rec.Events() {
		if e.Name == "relaxcheck.level" {
			levels++
		}
	}
	if levels != 1 {
		t.Fatalf("%d level events, want 1", levels)
	}
}
