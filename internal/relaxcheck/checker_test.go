package relaxcheck

import (
	"strings"
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
)

func TestCheckerExhaustedViolation(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	var seen *Violation
	c := New(core.TaxiSimpleLattice(), Options{
		Metrics:     reg,
		Trace:       rec,
		OnViolation: func(v Violation) { seen = &v },
	})
	// Phantom dequeue: no taxi lattice element accepts it.
	c.ObserveOp(history.DeqOk(9))
	v := c.Violation()
	if v == nil || v.Kind != KindExhausted || v.Step != 1 {
		t.Fatalf("violation = %+v", v)
	}
	if seen == nil || seen.Kind != KindExhausted {
		t.Fatalf("OnViolation saw %+v", seen)
	}
	if !strings.Contains(v.Error(), "rejected by every lattice element") {
		t.Fatalf("Error() = %q", v.Error())
	}
	if n, _ := reg.Snapshot().Counter("relaxcheck.violation"); n != 1 {
		t.Fatalf("violation counter = %d", n)
	}
	// The violation is sticky: a later op neither replaces it nor fires
	// the callback again, but still counts in metrics.
	seen = nil
	c.ObserveOp(history.Enq(1))
	if seen != nil {
		t.Fatal("OnViolation fired twice")
	}
	if got := c.Violation(); got.Step != 1 {
		t.Fatalf("first violation replaced: %+v", got)
	}
	if n, _ := reg.Snapshot().Counter("relaxcheck.violation"); n != 2 {
		t.Fatalf("violation counter after second = %d", n)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Name == "relaxcheck.violation" {
			found = true
			if kind, _ := e.Attr("kind"); kind != KindExhausted {
				t.Fatalf("journaled kind = %q", kind)
			}
		}
	}
	if !found {
		t.Fatal("no relaxcheck.violation event journaled")
	}
}

func TestCheckerClaimViolationOnClaim(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	// Duplicate delivery: drops the level below the top.
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	if c.Violation() != nil {
		t.Fatalf("violation before any claim: %+v", c.Violation())
	}
	// Claiming the top now is a lie — the history already escaped it.
	c.ObserveClaim(0, "Q1Q2")
	v := c.Violation()
	if v == nil || v.Kind != KindClaim {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), "escapes claimed level") {
		t.Fatalf("Error() = %q", v.Error())
	}
}

func TestCheckerClaimViolationOnOp(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	c.ObserveClaim(3, "Q1Q2") // claims the top while it still holds
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	if c.Violation() != nil {
		t.Fatalf("premature violation: %+v", c.Violation())
	}
	c.ObserveOp(history.DeqOk(2)) // duplicate delivery escapes the top
	v := c.Violation()
	if v == nil || v.Kind != KindClaim || v.Step != 3 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCheckerClaimFloorIsIntersection(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	c.ObserveClaim(0, "Q1Q2")
	c.ObserveClaim(1, "Q1")
	c.ObserveClaim(0, "Q1Q2") // an ascent does not raise the floor back
	if f := c.FloorClaim(); !strings.HasPrefix(f, "Q1=") {
		t.Fatalf("FloorClaim = %q", f)
	}
	// Duplicate delivery violates Q1 ⊆ level? No: duplicates kill Q2
	// sets; {Q1} stays viable, so the Q1 floor holds.
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	if c.Violation() != nil {
		t.Fatalf("Q1 floor violated by a Q1-legal history: %+v", c.Violation())
	}
	// A phantom op kills the entire lattice — exhausted beats claim.
	c.ObserveOp(history.DeqOk(9))
	if v := c.Violation(); v == nil || v.Kind != KindExhausted {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCheckerUnknownClaimPanics(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Claims: TaxiRungLevels(lat.Universe)})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown claim level did not panic")
		}
	}()
	c.ObserveClaim(0, "Q9")
}

func TestCheckerMetricsAndSamples(t *testing.T) {
	reg := obs.NewRegistry()
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Metrics: reg, SampleEvery: 2})
	h := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(1)}
	for _, op := range h {
		c.ObserveOp(op)
	}
	if n, _ := reg.Snapshot().Counter("relaxcheck.step"); n != 4 {
		t.Fatalf("step counter = %d", n)
	}
	if g, ok := reg.Snapshot().Gauge("relaxcheck.frontier.max"); !ok || g < 1 {
		t.Fatalf("frontier.max gauge = %d (ok=%v)", g, ok)
	}
	samples := c.Samples()
	if len(samples) != 2 || samples[0].Step != 2 || samples[1].Step != 4 {
		t.Fatalf("samples = %+v", samples)
	}
	if c.Steps() != 4 {
		t.Fatalf("Steps = %d", c.Steps())
	}
	if c.Degraded() {
		t.Fatal("PQ-legal history degraded")
	}
	if c.Level() == "" || c.Level() == "⊥" {
		t.Fatalf("Level = %q", c.Level())
	}
}

func TestCheckerLevelJournal(t *testing.T) {
	rec := obs.NewRecorder()
	lat := core.TaxiSimpleLattice()
	c := New(lat, Options{Trace: rec})
	// PQ-legal prefix: no level change events.
	c.ObserveOp(history.Enq(1))
	c.ObserveOp(history.DeqOk(1))
	for _, e := range rec.Events() {
		if e.Name == "relaxcheck.level" {
			t.Fatalf("level event on an undegraded run: %+v", e)
		}
	}
	// Duplicate delivery: the level drops, and exactly one event records it.
	c.ObserveOp(history.Enq(2))
	c.ObserveOp(history.DeqOk(2))
	c.ObserveOp(history.DeqOk(2))
	levels := 0
	for _, e := range rec.Events() {
		if e.Name == "relaxcheck.level" {
			levels++
		}
	}
	if levels != 1 {
		t.Fatalf("%d level events, want 1", levels)
	}
}
