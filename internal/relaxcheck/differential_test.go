package relaxcheck

import (
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/sim"
)

// maxDiffLen bounds prefix lengths in the differential battery —
// matching the offline experiments' MaxLen scale, where full
// WeakestAccepting replays stay cheap.
const maxDiffLen = 8

func sameSets(a, b []lattice.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertOnlineMatchesOffline feeds h through a fresh checker and
// asserts, after every single operation, that the online verdict and
// level equal the offline WeakestAccepting of that prefix.
func assertOnlineMatchesOffline(t *testing.T, lat *lattice.Relaxation, h history.History, memoCap int) {
	t.Helper()
	c := New(lat, Options{MemoCap: memoCap})
	for i, op := range h {
		c.ObserveOp(op)
		prefix := h[:i+1]
		want, ok := lat.WeakestAccepting(prefix)
		if got := c.Current(); !sameSets(got, want) {
			t.Fatalf("%s prefix %v: online %v, offline %v", lat.Name, prefix, got, want)
		}
		if gotDead := c.Violation() != nil && c.Violation().Kind == KindExhausted; gotDead == ok {
			t.Fatalf("%s prefix %v: online exhausted=%v, offline ok=%v", lat.Name, prefix, gotDead, ok)
		}
		if !ok {
			return // both agree the lattice is exhausted; it stays so
		}
	}
}

// lattices under differential test: the taxi lattice (bag-valued
// states, 2 constraints) and both spooler lattices (sequence-valued
// states, 3 constraints).
func diffLattices() []*lattice.Relaxation {
	return []*lattice.Relaxation{
		core.TaxiSimpleLattice(),
		core.SemiqueueLattice(3),
		core.StutteringLattice(3),
	}
}

func TestDifferentialTable(t *testing.T) {
	table := []history.History{
		{},
		{history.Enq(1)},
		{history.Enq(1), history.DeqOk(1)},
		{history.Enq(3), history.Enq(1), history.DeqOk(1), history.DeqOk(3)},
		{history.Enq(2), history.DeqOk(2), history.DeqOk(2)},
		{history.DeqOk(5)},
		{history.Enq(1), history.Enq(2), history.Enq(3), history.DeqOk(3), history.DeqOk(2), history.DeqOk(1)},
		{history.Enq(1), history.Enq(1), history.DeqOk(1), history.DeqOk(1)},
	}
	for _, h := range table {
		for _, lat := range diffLattices() {
			assertOnlineMatchesOffline(t, lat, h, 0)
			assertOnlineMatchesOffline(t, lat, h, 256)
		}
	}
}

// TestDifferentialSeededWorkloads replays the soak generators' own
// arrival streams (every kind, bounded length) through the online and
// offline checkers — the workloads the harness certifies are exactly
// the ones the differential battery covers.
func TestDifferentialSeededWorkloads(t *testing.T) {
	for _, kind := range Kinds() {
		for seed := int64(1); seed <= 8; seed++ {
			w := Workload{Kind: kind, Clients: 4, Ops: maxDiffLen, MaxElem: 3, Sites: 3}
			plan := w.Plan(sim.NewRNG(seed))
			h := make(history.History, 0, len(plan.Arrivals))
			for _, a := range plan.Arrivals {
				// Complete each invocation the simplest legal-looking way;
				// the differential property must hold on *any* history,
				// legal or not.
				if a.Inv.Name == history.NameDeq {
					h = append(h, history.DeqOk(1+int(seed)%3))
				} else {
					h = append(h, history.Enq(a.Inv.Args[0]))
				}
			}
			for _, lat := range diffLattices() {
				assertOnlineMatchesOffline(t, lat, h, 0)
			}
		}
	}
}

// TestDifferentialRandomHistories is the pure property-based sweep:
// uniformly random (not necessarily legal) queue histories.
func TestDifferentialRandomHistories(t *testing.T) {
	rng := sim.NewRNG(7)
	alphabet := history.QueueAlphabet(3)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(maxDiffLen)
		h := make(history.History, 0, n)
		for i := 0; i < n; i++ {
			h = append(h, alphabet[rng.Intn(len(alphabet))])
		}
		for _, lat := range diffLattices() {
			assertOnlineMatchesOffline(t, lat, h, 0)
		}
	}
}
