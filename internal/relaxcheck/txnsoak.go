package relaxcheck

import (
	"errors"
	"fmt"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/txn"
	"relaxlattice/internal/value"
)

// TxnSoakConfig parameterizes one deterministic soak run against the
// transactional queue runtime (the Section 4.2 print spooler): seeded
// producer and dequeuer transactions on simulated time, with the
// online checker attached to the committed serialized history and the
// observed dequeuer concurrency registered as the claimed C_k level.
type TxnSoakConfig struct {
	// Workload shapes the arrival plan (Clients/Ops required; element
	// values are ignored — the spool enqueues distinct items so the
	// lattice frontier stays singleton).
	Workload Workload
	// Seed drives the plan and dequeuer dwell times.
	Seed int64
	// Strategy is the dequeue-collision strategy (default Optimistic —
	// the Semiqueue side of the lattice).
	Strategy txn.Strategy
	// Dequeuers bounds the concurrently active dequeuing transactions
	// and sizes the spool constraint universe {C₁..C_n} (default 3).
	Dequeuers int
	// Metrics, Trace, SampleEvery, MemoCap: as in ClusterSoakConfig.
	Metrics     *obs.Registry
	Trace       *obs.Recorder
	SampleEvery int
	MemoCap     int
	// Spans, when set, receives one causal span per transaction on the
	// schedule-index time axis (the serialization-relevant clock of the
	// txn layer).
	Spans *trace.Tracer
	// OnViolation, when set, fires once at the checker's first
	// violation (the flight-recorder dump hook).
	OnViolation func(Violation)
}

// SpoolClaims maps each C_k level name onto its constraint set
// {C_k..C_n}: at most k concurrent dequeuers means every weaker
// concurrency bound holds too.
func SpoolClaims(u *lattice.Universe) map[string]lattice.Set {
	claims := map[string]lattice.Set{}
	for k := 1; k <= u.Len(); k++ {
		var s lattice.Set
		for j := k; j <= u.Len(); j++ {
			s = s.Union(u.Named(core.ConstraintCk(j)))
		}
		claims[core.ConstraintCk(k)] = s
	}
	return claims
}

// RunTxnSoak executes one spooler soak run. The checker audits the
// committed serialized history (hybrid atomicity: commit order is
// serialization order) against the strategy's spool lattice, and each
// rise of the dequeuer-concurrency high-water mark k is registered as
// the claim C_k the rest of the run must stay within.
func RunTxnSoak(cfg TxnSoakConfig) (*SoakReport, error) {
	if cfg.Strategy == 0 {
		cfg.Strategy = txn.Optimistic
	}
	if cfg.Dequeuers <= 0 {
		cfg.Dequeuers = 3
	}
	var lat *lattice.Relaxation
	switch cfg.Strategy {
	case txn.Pessimistic:
		lat = core.StutteringLattice(cfg.Dequeuers)
	default:
		lat = core.SemiqueueLattice(cfg.Dequeuers)
	}
	checker := New(lat, Options{
		Metrics:     cfg.Metrics,
		Trace:       cfg.Trace,
		Claims:      SpoolClaims(lat.Universe),
		MemoCap:     cfg.MemoCap,
		SampleEvery: cfg.SampleEvery,
		OnViolation: cfg.OnViolation,
	})

	cfg.Workload = cfg.Workload.Defaulted()
	if cfg.Workload.Sites <= 0 {
		// FaultCorrelated plans need a site count to shape fault windows;
		// the txn runtime has no topology, so only the time-clustered
		// arrival shape matters and plan.Faults goes unused.
		cfg.Workload.Sites = 5
	}
	q := txn.NewQueue(cfg.Strategy)
	q.Observe(cfg.Metrics, cfg.Trace)
	q.AttachAudit(checker)
	cfg.Spans.SetClock(obs.ClockFunc(func() int64 { return int64(q.ScheduleLen()) }))
	q.TraceSpans(cfg.Spans)

	g := sim.NewRNG(cfg.Seed)
	var engine sim.Engine
	plan := cfg.Workload.Plan(g.Split())
	dwell := g.Split() // dequeuer hold times

	report := &SoakReport{Ops: len(plan.Arrivals)}
	nextElem := 0
	active := 0      // dequeuing transactions currently open
	claimedHigh := 0 // highest C_k claimed so far
	meanDwell := cfg.Workload.Horizon / float64(cfg.Workload.Ops) * float64(cfg.Dequeuers)

	for _, a := range plan.Arrivals {
		a := a
		engine.At(a.At, func() {
			if a.Inv.Name != history.NameDeq {
				// Producer transaction: enqueue one distinct item and
				// commit immediately.
				nextElem++
				t := q.Begin()
				must(q.Enq(t, value.Elem(nextElem)))
				must(q.Commit(t))
				report.Completed++
				return
			}
			if active >= cfg.Dequeuers {
				// The dequeuer pool is saturated; admitting another
				// would overflow the constraint universe.
				report.Failed++
				return
			}
			t := q.Begin()
			e, err := q.Deq(t)
			if err != nil {
				// Empty queue (or a blocked head under Blocking):
				// nothing to spool; the transaction gives up.
				must(q.AbortTxn(t))
				report.Failed++
				return
			}
			_ = e
			active++
			if k := q.MaxConcurrentDequeuers(); k > claimedHigh {
				claimedHigh = k
				checker.ObserveClaim(0, core.ConstraintCk(k))
			}
			// Hold the item for a while (the printing), then commit.
			engine.After(dwell.Exp(meanDwell), func() {
				must(q.Commit(t))
				active--
				report.Completed++
			})
		})
	}
	engine.Run(cfg.Workload.Horizon * 2)

	report.Steps = checker.Steps()
	report.Violation = checker.Violation()
	report.Level = checker.Level()
	report.Sets = checker.Current()
	report.FloorClaim = checker.FloorClaim()
	report.MaxFrontier = checker.MaxFrontier()
	report.Samples = checker.Samples()
	report.Observed = committedHistory(q)
	if report.Violation != nil {
		return report, report.Violation
	}
	if report.Completed+report.Failed != report.Ops {
		return report, fmt.Errorf("relaxcheck: %d of %d transactions unresolved at horizon",
			report.Ops-report.Completed-report.Failed, report.Ops)
	}
	return report, nil
}

// committedHistory rebuilds the committed serialized history the audit
// observed — the per-transaction projections of the permanent schedule
// concatenated in commit order (hybrid atomicity).
func committedHistory(q *txn.Queue) history.History {
	s := q.Schedule().Perm()
	var h history.History
	for _, t := range s.Committed() {
		h = append(h, s.Proj(t)...)
	}
	return h
}

// must panics on a runtime error in the deterministic driver — any
// error here is a harness bug, not a property violation.
func must(err error) {
	if err != nil {
		panic(errors.Join(errors.New("relaxcheck: soak driver"), err))
	}
}
