package relaxcheck

import (
	"testing"

	"relaxlattice/internal/history"
)

// decodeHistory maps fuzzer bytes onto a bounded queue history: each
// byte selects one operation of the alphabet. The length cap keeps the
// offline WeakestAccepting replays (exponential in principle) cheap.
func decodeHistory(data []byte) history.History {
	alphabet := history.QueueAlphabet(3)
	if len(data) > maxDiffLen {
		data = data[:maxDiffLen]
	}
	h := make(history.History, 0, len(data))
	for _, b := range data {
		h = append(h, alphabet[int(b)%len(alphabet)])
	}
	return h
}

// FuzzStepCheckerMatchesOffline is the fuzz face of the differential
// battery: on fuzzer-chosen histories — legal or not — the online
// checker's per-prefix verdict must equal the offline WeakestAccepting
// replay for every lattice under test, with and without transition
// memoization.
func FuzzStepCheckerMatchesOffline(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3})
	f.Add([]byte{0, 1, 4, 3})
	f.Add([]byte{1, 1, 5, 5})
	f.Add([]byte{4, 0, 2, 3, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		for _, lat := range diffLattices() {
			assertOnlineMatchesOffline(t, lat, h, 0)
			assertOnlineMatchesOffline(t, lat, h, 64)
		}
	})
}
