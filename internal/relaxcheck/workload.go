package relaxcheck

import (
	"fmt"
	"sort"

	"relaxlattice/internal/history"
	"relaxlattice/internal/sim"
)

// Kind selects a workload shape for the soak harness.
type Kind int

const (
	// Uniform spreads arrivals evenly (Poisson) over the horizon with a
	// fixed enqueue/dequeue mix — the steady-state baseline.
	Uniform Kind = iota
	// Bursty packs arrivals into tight bursts separated by idle gaps,
	// stressing quorum contention and retry pileups.
	Bursty
	// Skewed is the adversarial enqueue/dequeue skew: an enqueue-heavy
	// fill phase followed by a dequeue-heavy drain phase, driving the
	// object through empty-view rejections and maximal reordering
	// opportunities.
	Skewed
	// FaultCorrelated plans explicit fault windows (crashes and
	// partitions with deterministic repair) and concentrates arrivals
	// inside them, so most operations run exactly while the system is
	// degraded.
	FaultCorrelated
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	case Skewed:
		return "skewed"
	case FaultCorrelated:
		return "fault-correlated"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every workload kind, in declaration order.
func Kinds() []Kind { return []Kind{Uniform, Bursty, Skewed, FaultCorrelated} }

// ParseKind resolves a kind by name.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("relaxcheck: unknown workload %q", s)
}

// Workload parameterizes a seeded workload plan.
type Workload struct {
	// Kind is the arrival shape.
	Kind Kind
	// Clients is the number of concurrent clients arrivals are spread
	// over.
	Clients int
	// Ops is the number of operations to plan.
	Ops int
	// MaxElem bounds enqueue arguments (drawn from 1..MaxElem).
	MaxElem int
	// Horizon is the simulated-time span arrivals cover.
	Horizon float64
	// DeqRatio is the dequeue fraction for Uniform/Bursty/
	// FaultCorrelated (Skewed uses its own phase mix). Zero defaults
	// to 0.45 — slightly enqueue-biased so the object rarely runs dry.
	DeqRatio float64
	// Sites is the number of cluster sites fault events range over
	// (FaultCorrelated only).
	Sites int
}

// Arrival is one planned client submission.
type Arrival struct {
	At     float64
	Client int
	Inv    history.Invocation
}

// FaultEvent is one planned topology event (FaultCorrelated only).
type FaultEvent struct {
	At     float64
	Kind   string  // "crash" | "restore" | "partition" | "heal"
	Site   int     // crash/restore
	Groups [][]int // partition
}

// Plan is a fully deterministic soak script: arrivals in time order
// plus explicit fault events. Replaying a plan on the simulation
// engine reproduces a run byte-for-byte.
type Plan struct {
	Arrivals []Arrival
	Faults   []FaultEvent
}

// Defaulted returns the workload with every optional field filled: at
// least 20 arrivals per simulated time unit, a slightly enqueue-biased
// mix, single-digit elements. Harnesses call this before sizing
// horizons off the workload.
func (w Workload) Defaulted() Workload {
	if w.Clients <= 0 || w.Ops <= 0 {
		panic(fmt.Sprintf("relaxcheck: workload needs clients and ops (got %d, %d)", w.Clients, w.Ops))
	}
	if w.MaxElem <= 0 {
		w.MaxElem = 9
	}
	if w.Horizon <= 0 {
		w.Horizon = float64(w.Ops) / 20
	}
	if w.DeqRatio <= 0 {
		w.DeqRatio = 0.45
	}
	return w
}

// Plan expands the workload into a deterministic script using only the
// given RNG. Equal (Workload, seed) pairs yield equal plans.
func (w Workload) Plan(rng *sim.RNG) Plan {
	w = w.Defaulted()
	var p Plan
	switch w.Kind {
	case Uniform:
		p.Arrivals = w.uniformArrivals(rng)
	case Bursty:
		p.Arrivals = w.burstyArrivals(rng)
	case Skewed:
		p.Arrivals = w.skewedArrivals(rng)
	case FaultCorrelated:
		p = w.faultCorrelated(rng)
	default:
		panic(fmt.Sprintf("relaxcheck: unknown workload kind %d", int(w.Kind)))
	}
	sortArrivals(p.Arrivals)
	return p
}

// inv draws one invocation with the given dequeue probability.
func (w Workload) inv(rng *sim.RNG, deqRatio float64) history.Invocation {
	if rng.Float64() < deqRatio {
		return history.DeqInv()
	}
	return history.EnqInv(1 + rng.Intn(w.MaxElem))
}

func (w Workload) uniformArrivals(rng *sim.RNG) []Arrival {
	mean := w.Horizon / float64(w.Ops)
	at := 0.0
	out := make([]Arrival, 0, w.Ops)
	for i := 0; i < w.Ops; i++ {
		at += rng.Exp(mean)
		out = append(out, Arrival{At: at, Client: rng.Intn(w.Clients), Inv: w.inv(rng, w.DeqRatio)})
	}
	return out
}

func (w Workload) burstyArrivals(rng *sim.RNG) []Arrival {
	// Bursts of ~Clients/2 back-to-back submissions; gaps sized so the
	// plan still spans roughly the horizon.
	burst := w.Clients/2 + 1
	bursts := w.Ops/burst + 1
	gap := w.Horizon / float64(bursts)
	at := 0.0
	out := make([]Arrival, 0, w.Ops)
	for len(out) < w.Ops {
		at += rng.Exp(gap)
		t := at
		for i := 0; i < burst && len(out) < w.Ops; i++ {
			t += rng.Exp(gap / float64(10*burst))
			out = append(out, Arrival{At: t, Client: rng.Intn(w.Clients), Inv: w.inv(rng, w.DeqRatio)})
		}
	}
	return out
}

func (w Workload) skewedArrivals(rng *sim.RNG) []Arrival {
	// Fill phase: 55% of ops, 90% enqueues. Drain phase: 90% dequeues.
	mean := w.Horizon / float64(w.Ops)
	fill := w.Ops * 55 / 100
	at := 0.0
	out := make([]Arrival, 0, w.Ops)
	for i := 0; i < w.Ops; i++ {
		at += rng.Exp(mean)
		ratio := 0.1
		if i >= fill {
			ratio = 0.9
		}
		out = append(out, Arrival{At: at, Client: rng.Intn(w.Clients), Inv: w.inv(rng, ratio)})
	}
	return out
}

func (w Workload) faultCorrelated(rng *sim.RNG) Plan {
	if w.Sites <= 0 {
		panic("relaxcheck: fault-correlated workload needs Sites")
	}
	// Plan fault windows covering ~40% of the horizon: alternating
	// crash windows (a minority of sites down, then restored) and
	// partition windows (minority split off, then healed).
	type window struct{ start, end float64 }
	var windows []window
	var faults []FaultEvent
	at := rng.Exp(w.Horizon / 12)
	for i := 0; at < w.Horizon; i++ {
		dwell := rng.Exp(w.Horizon / 15)
		if dwell < 1 {
			dwell = 1
		}
		end := at + dwell
		if i%2 == 0 {
			site := rng.Intn(w.Sites)
			faults = append(faults,
				FaultEvent{At: at, Kind: "crash", Site: site},
				FaultEvent{At: end, Kind: "restore", Site: site})
		} else {
			cut := 1 + rng.Intn((w.Sites-1)/2)
			group := rng.Perm(w.Sites)[:cut]
			sort.Ints(group)
			rest := make([]int, 0, w.Sites-cut)
			inGroup := make([]bool, w.Sites)
			for _, s := range group {
				inGroup[s] = true
			}
			for s := 0; s < w.Sites; s++ {
				if !inGroup[s] {
					rest = append(rest, s)
				}
			}
			faults = append(faults,
				FaultEvent{At: at, Kind: "partition", Groups: [][]int{rest, group}},
				FaultEvent{At: end, Kind: "heal"})
		}
		windows = append(windows, window{at, end})
		at = end + rng.Exp(w.Horizon/8)
	}
	// 70% of arrivals land inside a fault window.
	out := make([]Arrival, 0, w.Ops)
	for i := 0; i < w.Ops; i++ {
		var t float64
		if len(windows) > 0 && rng.Float64() < 0.7 {
			win := windows[rng.Intn(len(windows))]
			t = win.start + rng.Float64()*(win.end-win.start)
		} else {
			t = rng.Float64() * w.Horizon
		}
		out = append(out, Arrival{At: t, Client: rng.Intn(w.Clients), Inv: w.inv(rng, w.DeqRatio)})
	}
	return Plan{Arrivals: out, Faults: faults}
}

// sortArrivals orders arrivals by time; the stable sort breaks ties by
// plan order, so equal seeds yield byte-identical schedules.
func sortArrivals(arr []Arrival) {
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].At < arr[j].At })
}
