package relaxcheck

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/value"
)

// auditEvent is one input to the checker: exactly one of op (an
// observed operation) or claim (a degradation claim) is set.
type auditEvent struct {
	op    history.Op
	claim string
}

// genEvents derives a deterministic audit-event stream from a seed:
// a spooler-style enqueue/dequeue mix with out-of-order dequeues (to
// move the level), interleaved C_k claims (to move the claim floor),
// and a rare dequeue of a never-enqueued element (to exhaust the
// lattice). Every behavior the checker can exhibit is reachable.
func genEvents(seed int64, n int) []auditEvent {
	g := sim.NewRNG(seed)
	var pending []int
	next := 1
	evs := make([]auditEvent, 0, n)
	for len(evs) < n {
		switch {
		case g.Bool(0.12):
			evs = append(evs, auditEvent{claim: core.ConstraintCk(1 + g.Intn(3))})
		case g.Bool(0.02):
			evs = append(evs, auditEvent{op: history.DeqOk(9999)}) // poison: in no element's language
		case len(pending) == 0 || g.Bool(0.55):
			pending = append(pending, next)
			evs = append(evs, auditEvent{op: history.Enq(next)})
			next++
		default:
			idx := 0
			if len(pending) > 1 && g.Bool(0.4) {
				idx = g.Intn(len(pending))
			}
			e := pending[idx]
			pending = append(pending[:idx], pending[idx+1:]...)
			evs = append(evs, auditEvent{op: history.DeqOk(e)})
		}
	}
	return evs
}

func applyEvent(c *Checker, ev auditEvent) {
	if ev.claim != "" {
		c.ObserveClaim(0, ev.claim)
	} else {
		c.ObserveOp(ev.op)
	}
}

// verdictKey flattens everything observable about the checker into one
// comparable string.
func verdictKey(c *Checker) string {
	v := c.Violation()
	vk := "-"
	if v != nil {
		vk = fmt.Sprintf("%s|%d|%s|%s|%v", v.Kind, v.Step, v.Op, v.Claim, v.Level)
	}
	var samples []string
	for _, s := range c.Samples() {
		samples = append(samples, fmt.Sprintf("%d:%v", s.Step, s.Sets))
	}
	return fmt.Sprintf("steps=%d level=%s cur=%v viol=%s floor=%s samples=%s",
		c.Steps(), c.Level(), c.Current(), vk, c.FloorClaim(), strings.Join(samples, ","))
}

func spoolOpts() (*lattice.Relaxation, Options) {
	lat := core.SemiqueueLattice(3)
	return lat, Options{Claims: SpoolClaims(lat.Universe), SampleEvery: 5}
}

// TestCheckpointResumeEveryPrefix is the acceptance criterion for the
// audit sidecar: for EVERY prefix length k, checkpointing after k
// events and resuming yields a checker whose observable verdicts —
// Current, Level, Violation, FloorClaim, Samples — match the
// uninterrupted run at every subsequent step. It also pins the
// checkpoint bytes as a pure function of state: re-checkpointing the
// resumed checker reproduces the original bytes.
func TestCheckpointResumeEveryPrefix(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		events := genEvents(seed, 48)
		lat, opts := spoolOpts()

		// Reference: uninterrupted run, verdict recorded after every event.
		ref := New(lat, opts)
		verdicts := make([]string, len(events)+1)
		verdicts[0] = verdictKey(ref)
		for i, ev := range events {
			applyEvent(ref, ev)
			verdicts[i+1] = verdictKey(ref)
		}

		for k := 0; k <= len(events); k++ {
			a := New(lat, opts)
			for _, ev := range events[:k] {
				applyEvent(a, ev)
			}
			var ck bytes.Buffer
			if err := a.Checkpoint(&ck); err != nil {
				t.Fatalf("seed %d cut %d: checkpoint: %v", seed, k, err)
			}
			b, err := Resume(lat, opts, bytes.NewReader(ck.Bytes()))
			if err != nil {
				t.Fatalf("seed %d cut %d: resume: %v", seed, k, err)
			}
			if got := verdictKey(b); got != verdicts[k] {
				t.Fatalf("seed %d cut %d: resumed verdict\n %s\nwant\n %s", seed, k, got, verdicts[k])
			}
			var ck2 bytes.Buffer
			if err := b.Checkpoint(&ck2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ck.Bytes(), ck2.Bytes()) {
				t.Fatalf("seed %d cut %d: re-checkpoint of resumed checker differs", seed, k)
			}
			for i, ev := range events[k:] {
				applyEvent(b, ev)
				if got := verdictKey(b); got != verdicts[k+1+i] {
					t.Fatalf("seed %d cut %d step %d: resumed run diverged\n %s\nwant\n %s",
						seed, k, k+1+i, got, verdicts[k+1+i])
				}
			}
		}
	}
}

// TestCheckpointResumeRejectsMismatch pins the guard rails: wrong
// lattice, wrong version, garbage input.
func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	lat, opts := spoolOpts()
	c := New(lat, opts)
	c.ObserveOp(history.Enq(1))
	var ck bytes.Buffer
	if err := c.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	other := core.SemiqueueLattice(2)
	if _, err := Resume(other, opts, bytes.NewReader(ck.Bytes())); err == nil {
		t.Fatal("resume against a different lattice succeeded")
	}
	bad := bytes.Replace(ck.Bytes(), []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if _, err := Resume(lat, opts, bytes.NewReader(bad)); err == nil {
		t.Fatal("resume of future checkpoint version succeeded")
	}
	if _, err := Resume(lat, opts, strings.NewReader("not json")); err == nil {
		t.Fatal("resume of garbage succeeded")
	}
}

// growAuto is a deliberately nondeterministic test automaton: each
// "Grow" op doubles the frontier's options (states are account
// balances; both n and n+2^k successors survive), and "Die" rejects.
// It exists to exercise frontier-cap abandonment, which the spooler
// lattices (singleton frontiers on distinct elements) never trigger.
type growAuto struct{}

func (growAuto) Name() string      { return "Grow" }
func (growAuto) Init() value.Value { return value.Account{Balance: 0} }
func (g growAuto) Step(s value.Value, op history.Op) []value.Value {
	n := s.(value.Account).Balance
	switch op.Name {
	case "Grow":
		return []value.Value{value.Account{Balance: n}, value.Account{Balance: n + 1000}}
	case "Die":
		return nil
	}
	return []value.Value{s}
}

func growLattice() *lattice.Relaxation {
	u := lattice.NewUniverse(lattice.Constraint{Name: "G", Desc: "growth bound"})
	return &lattice.Relaxation{
		Name:     "GrowLattice",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			if s != u.All() {
				return nil, false // φ defined only at ⊤: a one-element domain
			}
			return growAuto{}, true
		},
	}
}

// TestFrontierCapSuppressesViolations: with FrontierCap set, an
// element whose frontier outgrows the cap is abandoned — and from then
// on the checker must stay silent (no exhaustion verdict even on an op
// every tracked element rejects), because the abandoned element's
// verdict is unknown. This is the soundness contract of windowed
// checking: no false violations, at the cost of missed ones.
func TestFrontierCapSuppressesViolations(t *testing.T) {
	lat := growLattice()
	grow := history.MakeOp("Grow", nil, history.Ok, nil)
	die := history.MakeOp("Die", nil, history.Ok, nil)

	c := New(lat, Options{FrontierCap: 2})
	c.ObserveOp(grow) // frontier 2 — at the cap, still tracked
	if c.Abandoned() != 0 {
		t.Fatalf("abandoned at cap: %d", c.Abandoned())
	}
	c.ObserveOp(grow) // frontier 4 > cap — abandoned
	if c.Abandoned() != 1 {
		t.Fatalf("abandoned = %d, want 1", c.Abandoned())
	}
	if cur := c.Current(); len(cur) != 0 {
		t.Fatalf("abandoned element still in Current: %v", cur)
	}
	c.ObserveOp(die)
	if v := c.Violation(); v != nil {
		t.Fatalf("violation raised with an abandoned element: %v", v)
	}

	// Uncapped control: the same stream raises a real exhaustion at
	// the Die op.
	c2 := New(lat, Options{})
	c2.ObserveOp(grow)
	c2.ObserveOp(grow)
	c2.ObserveOp(die)
	v := c2.Violation()
	if v == nil || v.Kind != KindExhausted || v.Step != 3 {
		t.Fatalf("uncapped control violation = %v, want exhausted at step 3", v)
	}

	// Abandonment round-trips through a checkpoint.
	var ck bytes.Buffer
	if err := c.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ck.String(), lattice.StatusAbandoned) {
		t.Fatalf("checkpoint does not record abandonment:\n%s", ck.String())
	}
	r, err := Resume(lat, Options{FrontierCap: 2}, bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Abandoned() != 1 || r.Violation() != nil {
		t.Fatalf("resumed: abandoned=%d violation=%v", r.Abandoned(), r.Violation())
	}
	r.ObserveOp(die)
	if r.Violation() != nil {
		t.Fatal("resumed checker raised a violation past an abandoned element")
	}
}

// TestSampleWindowBounds: Options.Window keeps only the most recent
// samples, and the bound survives checkpoint/resume.
func TestSampleWindowBounds(t *testing.T) {
	lat, opts := spoolOpts()
	opts.SampleEvery = 1
	opts.Window = 4
	c := New(lat, opts)
	for i := 1; i <= 10; i++ {
		c.ObserveOp(history.Enq(i))
	}
	s := c.Samples()
	if len(s) != 4 {
		t.Fatalf("kept %d samples, want 4", len(s))
	}
	if s[0].Step != 7 || s[3].Step != 10 {
		t.Fatalf("window kept steps %d..%d, want 7..10", s[0].Step, s[3].Step)
	}
	var ck bytes.Buffer
	if err := c.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(lat, opts, bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.ObserveOp(history.Enq(11))
	s = r.Samples()
	if len(s) != 4 || s[3].Step != 11 || s[0].Step != 8 {
		t.Fatalf("resumed window = %+v, want steps 8..11", s)
	}
}

// FuzzCheckpointResume fuzzes the differential property directly:
// for an arbitrary seed and cut point, the checkpointed-then-resumed
// run must match the uninterrupted run at every subsequent step.
func FuzzCheckpointResume(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(7), uint16(10))
	f.Add(int64(23), uint16(39))
	f.Add(int64(-4), uint16(200))
	f.Fuzz(func(t *testing.T, seed int64, cut uint16) {
		const n = 40
		events := genEvents(seed, n)
		k := int(cut) % (n + 1)
		lat, opts := spoolOpts()

		ref := New(lat, opts)
		a := New(lat, opts)
		for _, ev := range events[:k] {
			applyEvent(ref, ev)
			applyEvent(a, ev)
		}
		var ck bytes.Buffer
		if err := a.Checkpoint(&ck); err != nil {
			t.Fatal(err)
		}
		b, err := Resume(lat, opts, bytes.NewReader(ck.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := verdictKey(b), verdictKey(ref); got != want {
			t.Fatalf("cut %d: resume verdict %q, want %q", k, got, want)
		}
		for i, ev := range events[k:] {
			applyEvent(ref, ev)
			applyEvent(b, ev)
			if got, want := verdictKey(b), verdictKey(ref); got != want {
				t.Fatalf("cut %d step %d: %q, want %q", k, k+1+i, got, want)
			}
		}
	})
}
