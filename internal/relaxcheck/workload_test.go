package relaxcheck

import (
	"reflect"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/sim"
)

func TestWorkloadPlanDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		w := Workload{Kind: kind, Clients: 10, Ops: 200, Sites: 5}
		p1 := w.Plan(sim.NewRNG(99))
		p2 := w.Plan(sim.NewRNG(99))
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("%s: same seed, different plans", kind)
		}
		p3 := w.Plan(sim.NewRNG(100))
		if reflect.DeepEqual(p1, p3) {
			t.Fatalf("%s: different seeds, identical plans", kind)
		}
	}
}

func TestWorkloadPlanShape(t *testing.T) {
	for _, kind := range Kinds() {
		w := Workload{Kind: kind, Clients: 7, Ops: 150, Sites: 4}
		p := w.Plan(sim.NewRNG(5))
		if len(p.Arrivals) != w.Ops {
			t.Fatalf("%s: %d arrivals, want %d", kind, len(p.Arrivals), w.Ops)
		}
		for i, a := range p.Arrivals {
			if i > 0 && a.At < p.Arrivals[i-1].At {
				t.Fatalf("%s: arrivals out of order at %d", kind, i)
			}
			if a.Client < 0 || a.Client >= w.Clients {
				t.Fatalf("%s: client %d out of range", kind, a.Client)
			}
			switch a.Inv.Name {
			case history.NameEnq:
				if len(a.Inv.Args) != 1 || a.Inv.Args[0] < 1 {
					t.Fatalf("%s: bad enqueue %v", kind, a.Inv)
				}
			case history.NameDeq:
			default:
				t.Fatalf("%s: unexpected invocation %v", kind, a.Inv)
			}
		}
		if kind == FaultCorrelated {
			if len(p.Faults) == 0 {
				t.Fatal("fault-correlated plan has no faults")
			}
			for _, f := range p.Faults {
				switch f.Kind {
				case "crash", "restore":
					if f.Site < 0 || f.Site >= w.Sites {
						t.Fatalf("fault site %d out of range", f.Site)
					}
				case "partition":
					if len(f.Groups) != 2 {
						t.Fatalf("partition groups = %v", f.Groups)
					}
				case "heal":
				default:
					t.Fatalf("unknown fault kind %q", f.Kind)
				}
			}
		} else if len(p.Faults) != 0 {
			t.Fatalf("%s: unexpected fault events %v", kind, p.Faults)
		}
	}
}

func TestWorkloadSkewPhases(t *testing.T) {
	w := Workload{Kind: Skewed, Clients: 5, Ops: 400}
	p := w.Plan(sim.NewRNG(11))
	// The fill half must be enqueue-heavy and the drain half
	// dequeue-heavy (55/90 splits leave wide margins at 400 ops).
	half := len(p.Arrivals) / 2
	deqs := func(arr []Arrival) int {
		n := 0
		for _, a := range arr {
			if a.Inv.Name == history.NameDeq {
				n++
			}
		}
		return n
	}
	front, back := deqs(p.Arrivals[:half]), deqs(p.Arrivals[half:])
	if front >= half/2 {
		t.Fatalf("fill phase has %d/%d dequeues", front, half)
	}
	if back <= (len(p.Arrivals)-half)/2 {
		t.Fatalf("drain phase has only %d/%d dequeues", back, len(p.Arrivals)-half)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, kind := range Kinds() {
		got, err := ParseKind(kind.String())
		if err != nil || got != kind {
			t.Fatalf("round trip %v: got %v, err %v", kind, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("unknown kind parsed")
	}
}

func TestWorkloadDefaultedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero workload did not panic")
		}
	}()
	Workload{}.Defaulted()
}
