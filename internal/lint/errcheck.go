package lint

import (
	"go/ast"
	"go/types"
)

// checkErrDiscipline applies the err-drop rule: an error result
// discarded with a blank identifier hides exactly the degraded-mode
// failures this codebase exists to study. _test.go files are never
// loaded, so the rule only covers production code. Implicit discards
// (calling an error-returning function as a bare statement, e.g.
// fmt.Println) are left to the caller's judgement — the rule targets
// the explicit "I know there is an error and I am throwing it away"
// form, which must either be handled or justified with
// //lint:ignore err-drop <reason>.
func checkErrDiscipline(p *Package, report reportFunc) {
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	isErr := func(t types.Type) bool {
		return t != nil && types.Implements(t, errIface)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 {
				call, ok := as.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[call]
				if !ok || tv.Type == nil {
					return true
				}
				if tuple, ok := tv.Type.(*types.Tuple); ok {
					for i, lhs := range as.Lhs {
						if isBlank(lhs) && i < tuple.Len() && isErr(tuple.At(i).Type()) {
							report(lhs.Pos(), "err-drop",
								"error result discarded; handle it or annotate //lint:ignore err-drop <reason>")
						}
					}
					return true
				}
				if len(as.Lhs) == 1 && isBlank(as.Lhs[0]) && isErr(tv.Type) {
					report(as.Lhs[0].Pos(), "err-drop",
						"error result discarded; handle it or annotate //lint:ignore err-drop <reason>")
				}
				return true
			}
			for i, lhs := range as.Lhs {
				if !isBlank(lhs) || i >= len(as.Rhs) {
					continue
				}
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
					if tv, ok := p.Info.Types[call]; ok && isErr(tv.Type) {
						report(lhs.Pos(), "err-drop",
							"error result discarded; handle it or annotate //lint:ignore err-drop <reason>")
					}
				}
			}
			return true
		})
	}
}

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}
