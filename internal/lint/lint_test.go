package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRoot is the self-contained mini-module of deliberately
// violating packages (and one clean one) under testdata.
var fixtureRoot = filepath.Join("testdata", "src")

// golden is the exact finding set over the fixture tree: every rule
// family fires, suppressed sites stay silent, and the clean package
// contributes nothing.
var golden = []string{
	"errs/errs.go:16:2: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	"errs/errs.go:17:5: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	"errs/errs.go:18:5: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	`errs/errs.go:46:2: [bad-ignore] malformed suppression: want "//lint:ignore <rule> <reason>"`,
	"errs/errs.go:47:2: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	"internal/automaton/clock.go:13:7: [det-time] time.Now reads the wall clock; model-layer code must take time as an input",
	"internal/automaton/clock.go:14:23: [det-time] time.Since reads the wall clock; model-layer code must take time as an input",
	"internal/automaton/clock.go:19:9: [det-rand] rand.Intn draws from the global RNG; model-layer code must use an injected generator",
	"internal/automaton/clock.go:33:2: [det-maporder] map iteration order escapes the loop (append/send/return) with no subsequent sort",
	"internal/automaton/clock.go:51:2: [det-maporder] map iteration order escapes the loop (append/send/return) with no subsequent sort",
	"internal/automaton/instrumented.go:27:9: [det-time] time.Now captured as a function value still reads the wall clock; inject an obs.Clock instead",
	"internal/automaton/instrumented.go:34:9: [det-rand] rand.Int captured as a function value draws from the global RNG; inject a generator instead",
	"internal/obs/obs.go:53:2: [det-maporder] map iteration order escapes the loop (append/send/return) with no subsequent sort",
	"internal/specs/impure.go:13:2: [spec-purity] spec package function writes package-level variable hits; specs must be pure",
	"internal/specs/impure.go:14:2: [spec-purity] spec package function writes package-level variable registry; specs must be pure",
	"locks/locks.go:21:19: [lock-guard] method Peek touches field(s) n of Counter guarded by mu without acquiring it",
	"locks/locks.go:27:2: [lock-balance] c.mu locked but never released in this function; use defer c.mu.Unlock()",
	"locks/locks.go:33:2: [lock-balance] c.mu may still be held on an early return; use defer c.mu.Unlock()",
}

func runFixtures(t *testing.T, patterns ...string) []Diagnostic {
	t.Helper()
	diags, err := Run(fixtureRoot, DefaultConfig(), patterns)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

// TestGoldenFixtures pins the exact diagnostic set for all four rule
// families at once. Any behavioral change to a rule must update this
// list deliberately.
func TestGoldenFixtures(t *testing.T) {
	diags := runFixtures(t, "./...")
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = d.String()
	}
	if len(got) != len(golden) {
		t.Errorf("got %d findings, want %d\ngot:\n  %s", len(got), len(golden), strings.Join(got, "\n  "))
	}
	for i := 0; i < len(got) && i < len(golden); i++ {
		if got[i] != golden[i] {
			t.Errorf("finding %d:\n  got  %s\n  want %s", i, got[i], golden[i])
		}
	}
}

// TestEveryRuleFamilyRepresented guards the golden list itself: if a
// fixture stops compiling or a rule silently dies, the family count
// here fails before anyone trusts a green golden test.
func TestEveryRuleFamilyRepresented(t *testing.T) {
	families := map[string]int{}
	for _, d := range runFixtures(t, "./...") {
		families[d.Rule]++
	}
	for _, rule := range []string{
		"det-time", "det-rand", "det-maporder",
		"lock-balance", "lock-guard",
		"err-drop", "spec-purity", "bad-ignore",
	} {
		if families[rule] == 0 {
			t.Errorf("rule %s produced no fixture findings", rule)
		}
	}
}

// TestSuppressionsHold asserts the //lint:ignore sites stay silent:
// each names a function that violates its rule but carries a
// well-formed suppression.
func TestSuppressionsHold(t *testing.T) {
	suppressed := map[string]string{
		"SuppressedStamp": "det-time",
		"Tracked":         "spec-purity",
		"unsafePeek":      "lock-guard",
		"Best":            "err-drop",
	}
	for _, d := range runFixtures(t, "./...") {
		for fn := range suppressed {
			if strings.Contains(d.Message, fn) {
				t.Errorf("suppressed site %s still reported: %s", fn, d)
			}
		}
	}
	// The suppressed det-time call in SuppressedStamp is at
	// clock.go:88; no finding may appear past the last golden line of
	// that file (line 51).
	for _, d := range runFixtures(t, "./...") {
		if d.File == "internal/automaton/clock.go" && d.Line > 51 {
			t.Errorf("unexpected finding after the suppressed region: %s", d)
		}
	}
}

// TestCleanPackageIsClean asserts the negative fixture contributes no
// findings at all.
func TestCleanPackageIsClean(t *testing.T) {
	for _, d := range runFixtures(t, "./...") {
		if strings.HasPrefix(d.File, "clean/") {
			t.Errorf("clean fixture flagged: %s", d)
		}
	}
}

// TestPatternFiltering asserts ./dir/... selects only that package.
func TestPatternFiltering(t *testing.T) {
	diags := runFixtures(t, "./locks/...")
	if len(diags) != 3 {
		t.Fatalf("got %d findings for ./locks/..., want 3", len(diags))
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "locks/") {
			t.Errorf("pattern ./locks/... matched %s", d.File)
		}
	}
}

// TestRepairedTreeIsClean is the smoke test required by the issue:
// relaxlint over the repository itself (the module two levels up)
// exits with zero findings after the repairs of this PR.
func TestRepairedTreeIsClean(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."), DefaultConfig(), []string{"./..."})
	if err != nil {
		t.Fatalf("Run on repository root: %v", err)
	}
	if len(diags) != 0 {
		lines := make([]string, len(diags))
		for i, d := range diags {
			lines[i] = d.String()
		}
		t.Errorf("repository tree has %d findings:\n  %s", len(diags), strings.Join(lines, "\n  "))
	}
}

// TestNoMatchIsError asserts a pattern selecting zero packages fails
// loudly instead of passing vacuously (a typo'd CI invocation must
// not look green).
func TestNoMatchIsError(t *testing.T) {
	_, err := Run(fixtureRoot, DefaultConfig(), []string{"./nosuchpkg/..."})
	if err == nil || !strings.Contains(err.Error(), "no packages match") {
		t.Errorf("Run with a no-match pattern: err = %v, want 'no packages match'", err)
	}
}

// TestMatchPattern covers the CLI pattern grammar.
func TestMatchPattern(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/txn", []string{"./..."}, true},
		{".", []string{"./..."}, true},
		{".", []string{"."}, true},
		{"internal/txn", []string{"./internal/..."}, true},
		{"internal/txn", []string{"internal/txn"}, true},
		{"internal/txn", []string{"./internal/txn/"}, true},
		{"internal/txnx", []string{"./internal/txn/..."}, false},
		{"internal/txn/sub", []string{"./internal/txn/..."}, true},
		{"cmd/relaxlint", []string{"./internal/..."}, false},
	}
	for _, c := range cases {
		if got := matchPattern(c.rel, c.patterns); got != c.want {
			t.Errorf("matchPattern(%q, %v) = %v, want %v", c.rel, c.patterns, got, c.want)
		}
	}
}
