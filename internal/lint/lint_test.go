package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixtureRoot is the self-contained mini-module of deliberately
// violating packages (and one clean one) under testdata.
var fixtureRoot = filepath.Join("testdata", "src")

// Loading a module with the source importer typechecks its entire
// dependency closure, which dominates this package's test time — so
// the fixture tree and the repository root are each loaded exactly
// once and shared across tests (RunPackages does not mutate them).
var (
	loadOnce = map[string]*sync.Once{
		fixtureRoot:               new(sync.Once),
		filepath.Join("..", ".."): new(sync.Once),
	}
	loadPkgs = map[string][]*Package{}
	loadErr  = map[string]error{}
	loadMu   sync.Mutex
)

func loadCached(t *testing.T, root string) []*Package {
	t.Helper()
	loadMu.Lock()
	once := loadOnce[root]
	loadMu.Unlock()
	once.Do(func() {
		pkgs, err := Load(root)
		loadMu.Lock()
		loadPkgs[root], loadErr[root] = pkgs, err
		loadMu.Unlock()
	})
	loadMu.Lock()
	defer loadMu.Unlock()
	if loadErr[root] != nil {
		t.Fatalf("Load(%s): %v", root, loadErr[root])
	}
	return loadPkgs[root]
}

func fixturePackages(t *testing.T) []*Package { return loadCached(t, fixtureRoot) }

func repoPackages(t *testing.T) []*Package {
	return loadCached(t, filepath.Join("..", ".."))
}

// golden is the exact finding set over the fixture tree: every rule
// family fires, suppressed sites stay silent, and the clean package
// contributes nothing.
var golden = []string{
	"errs/errs.go:16:2: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	"errs/errs.go:17:5: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	"errs/errs.go:18:5: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	`errs/errs.go:46:2: [bad-ignore] malformed suppression: want "//lint:ignore <pass> <reason>"`,
	"errs/errs.go:47:2: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	`errs/errs.go:53:2: [bad-ignore] unknown pass "err-dropp" in suppression; known passes: det-maporder, det-rand, det-taint, det-time, err-drop, lock-balance, lock-guard, lock-order, spec-purity, speccheck`,
	"errs/errs.go:54:2: [err-drop] error result discarded; handle it or annotate //lint:ignore err-drop <reason>",
	"errs/errs.go:60:2: [unused-ignore] //lint:ignore err-drop suppresses no finding; delete the directive or fix the pass name",
	"errs/errs.go:68:2: [unused-ignore] //lint:ignore spec-purity suppresses no finding; delete the directive or fix the pass name",
	"internal/automaton/clock.go:13:7: [det-time] time.Now reads the wall clock; model-layer code must take time as an input",
	"internal/automaton/clock.go:14:23: [det-time] time.Since reads the wall clock; model-layer code must take time as an input",
	"internal/automaton/clock.go:19:9: [det-rand] rand.Intn draws from the global RNG; model-layer code must use an injected generator",
	"internal/automaton/clock.go:33:2: [det-maporder] map iteration order escapes the loop (append/send/return) with no subsequent sort",
	"internal/automaton/clock.go:51:2: [det-maporder] map iteration order escapes the loop (append/send/return) with no subsequent sort",
	"internal/automaton/instrumented.go:27:9: [det-time] time.Now captured as a function value still reads the wall clock; inject an obs.Clock instead",
	"internal/automaton/instrumented.go:34:9: [det-rand] rand.Int captured as a function value draws from the global RNG; inject a generator instead",
	"internal/automaton/launder.go:19:2: [det-taint] value derived from the wall clock stored in field startNanos; model-layer state must be deterministic",
	"internal/automaton/launder.go:19:17: [det-taint] call to Stamp returns a value derived from the wall clock; model-layer code must take such inputs explicitly",
	"internal/automaton/launder.go:24:7: [det-taint] call to StampVia returns a value derived from the wall clock; model-layer code must take such inputs explicitly",
	"internal/automaton/launder.go:25:2: [det-taint] value derived from the wall clock stored in field startNanos; model-layer state must be deterministic",
	"internal/automaton/launder.go:31:2: [det-taint] value derived from the global RNG stored in field startNanos; model-layer state must be deterministic",
	"internal/automaton/launder.go:31:23: [det-taint] call to Jitter returns a value derived from the global RNG; model-layer code must take such inputs explicitly",
	"internal/conc/conc.go:59:2: [lock-balance] s.mu locked but never released in this function; use defer s.mu.Unlock()",
	"internal/obs/obs.go:53:2: [det-maporder] map iteration order escapes the loop (append/send/return) with no subsequent sort",
	"internal/obs/trace/trace.go:39:33: [det-time] time.Now reads the wall clock; model-layer code must take time as an input",
	"internal/obs/trace/trace.go:55:2: [det-maporder] map iteration order escapes the loop (append/send/return) with no subsequent sort",
	"internal/specs/impure.go:13:2: [spec-purity] spec package function writes package-level variable hits; specs must be pure",
	"internal/specs/impure.go:14:2: [spec-purity] spec package function writes package-level variable registry; specs must be pure",
	"lockorder/lockorder.go:21:2: [lock-order] lock acquisition cycle lockorder.muA -> lockorder.muB -> lockorder.muA (potential deadlock); impose a single acquisition order",
	"lockorder/lockorder.go:46:2: [lock-order] lock acquisition cycle lockorder.muC -> lockorder.muC (potential deadlock); impose a single acquisition order",
	"lockorder/lockorder.go:66:2: [lock-order] lock acquisition cycle lockorder.muD -> lockorder.muE -> lockorder.muD (potential deadlock); impose a single acquisition order",
	"lockorder/lockorder.go:91:2: [lock-order] lock acquisition cycle lockorder.Guarded.mu -> lockorder.muF -> lockorder.Guarded.mu (potential deadlock); impose a single acquisition order",
	"locks/branches.go:41:3: [lock-balance] p.mu may still be held on an early return; use defer p.mu.Unlock()",
	"locks/branches.go:66:2: [lock-balance] r.rw locked but never released in this function; use defer r.rw.Unlock()",
	"locks/locks.go:21:19: [lock-guard] method Peek touches field(s) n of Counter guarded by mu without acquiring it",
	"locks/locks.go:27:2: [lock-balance] c.mu locked but never released in this function; use defer c.mu.Unlock()",
	"locks/locks.go:33:2: [lock-balance] c.mu may still be held on an early return; use defer c.mu.Unlock()",
	`quorumspec/quorumspec.go:154:3: [speccheck] TaxiRungLevels["Q1"] claims {Q1}, refuted at n=5: a Deq initial quorum at rung "Q1" (weight 2) and a Enq final quorum at rung "Q1Q2" (weight 3) need not intersect (2+3 <= 5), forfeiting Q1 in mixed-rung executions`,
}

func runFixtures(t *testing.T, patterns ...string) []Diagnostic {
	t.Helper()
	diags, err := RunPackages(fixturePackages(t), DefaultConfig(), patterns)
	if err != nil {
		t.Fatalf("RunPackages: %v", err)
	}
	return diags
}

// TestGoldenFixtures pins the exact diagnostic set for all rule
// families at once. Any behavioral change to a rule must update this
// list deliberately.
func TestGoldenFixtures(t *testing.T) {
	diags := runFixtures(t, "./...")
	got := make([]string, len(diags))
	for i, d := range diags {
		got[i] = d.String()
	}
	if len(got) != len(golden) {
		t.Errorf("got %d findings, want %d\ngot:\n  %s", len(got), len(golden), strings.Join(got, "\n  "))
	}
	for i := 0; i < len(got) && i < len(golden); i++ {
		if got[i] != golden[i] {
			t.Errorf("finding %d:\n  got  %s\n  want %s", i, got[i], golden[i])
		}
	}
}

// TestEveryRuleFamilyRepresented guards the golden list itself: if a
// fixture stops compiling or a rule silently dies, the family count
// here fails before anyone trusts a green golden test.
func TestEveryRuleFamilyRepresented(t *testing.T) {
	families := map[string]int{}
	for _, d := range runFixtures(t, "./...") {
		families[d.Rule]++
	}
	for _, rule := range []string{
		"det-time", "det-rand", "det-maporder", "det-taint",
		"lock-balance", "lock-guard", "lock-order",
		"err-drop", "spec-purity", "speccheck",
		"bad-ignore", "unused-ignore",
	} {
		if families[rule] == 0 {
			t.Errorf("rule %s produced no fixture findings", rule)
		}
	}
}

// TestTaintCatchesSyntacticMiss pins the tentpole claim: the
// laundering fixture contains no time.* or rand.* selector, so the
// syntactic determinism passes are structurally unable to flag it —
// and det-taint flags every laundered flow in it anyway.
func TestTaintCatchesSyntacticMiss(t *testing.T) {
	const launder = "internal/automaton/launder.go"
	taint := 0
	for _, d := range runFixtures(t, "./...") {
		if d.File != launder {
			continue
		}
		switch d.Rule {
		case "det-time", "det-rand":
			t.Errorf("syntactic pass unexpectedly fired on the laundering fixture: %s", d)
		case "det-taint":
			taint++
		}
	}
	if taint < 3 {
		t.Errorf("det-taint found %d findings in %s, want at least 3 (call, store, and two-level launder)", taint, launder)
	}
}

// TestConcLayerClassification pins the scoping decision for the
// runtime concurrency layer: internal/conc is NOT a model-layer path,
// so its fixture — which reads the wall clock, draws from the global
// RNG, and stores both in fields — produces no determinism findings of
// any family, while the path-unscoped lock rules still fire on it.
// The mirror-image fixture internal/automaton proves the same sources
// would be flagged inside ModelPaths, so a silent conc fixture means
// "exempt", not "rule broken".
func TestConcLayerClassification(t *testing.T) {
	if pathMatches("fixture/internal/conc", DefaultConfig().ModelPaths) {
		t.Fatal("internal/conc matched ModelPaths; the concurrency layer must stay exempt from determinism rules")
	}
	lockFindings := 0
	for _, d := range runFixtures(t, "./...") {
		if !strings.HasPrefix(d.File, "internal/conc/") {
			continue
		}
		switch d.Rule {
		case "det-time", "det-rand", "det-taint", "det-maporder":
			t.Errorf("determinism rule fired on the concurrency layer: %s", d)
		case "lock-balance", "lock-guard", "lock-order":
			lockFindings++
		}
	}
	if lockFindings == 0 {
		t.Error("no lock-family finding on internal/conc; lock discipline must apply to every layer")
	}
}

// TestRelaxdLayerClassification pins the scoping decision for the
// networked runtime: internal/relaxd does real I/O on real clocks
// (socket deadlines, fsync batching), so it must stay outside
// ModelPaths — its behavior is held to the deterministic cluster by
// the differential tests, not by determinism lint. The path-unscoped
// families (lock discipline, error discipline) still apply.
func TestRelaxdLayerClassification(t *testing.T) {
	for _, path := range []string{"internal/relaxd", "fixture/internal/relaxd"} {
		if pathMatches(path, DefaultConfig().ModelPaths) {
			t.Fatalf("%s matched ModelPaths; the networked runtime must stay exempt from determinism rules", path)
		}
	}
	if !pathMatches("internal/relaxcheck", DefaultConfig().ModelPaths) {
		t.Fatal("internal/relaxcheck no longer matches ModelPaths; the checker is model-layer")
	}
}

// TestLockBalanceBranchCases asserts the branch fixtures resolve the
// way locks.go documents: conditional defers and nested guards that
// release on every path are clean, the leaking variants are not.
func TestLockBalanceBranchCases(t *testing.T) {
	wantLines := map[int]bool{41: true, 66: true} // NestedLeak, ReadLeak
	gotLines := map[int]bool{}
	for _, d := range runFixtures(t, "./...") {
		if d.File != "locks/branches.go" {
			continue
		}
		if d.Rule != "lock-balance" {
			t.Errorf("unexpected %s finding in branches.go: %s", d.Rule, d)
		}
		gotLines[d.Line] = true
	}
	for line := range wantLines {
		if !gotLines[line] {
			t.Errorf("expected a lock-balance finding at branches.go:%d", line)
		}
	}
	for line := range gotLines {
		if !wantLines[line] {
			t.Errorf("clean branch case flagged at branches.go:%d (ConditionalDefer, NestedGuard, and Read must stay silent)", line)
		}
	}
}

// TestSuppressionsHold asserts the //lint:ignore sites stay silent:
// each names a function that violates its rule but carries a
// well-formed suppression.
func TestSuppressionsHold(t *testing.T) {
	suppressed := map[string]string{
		"SuppressedStamp": "det-time",
		"SuppressedMark":  "det-taint",
		"Tracked":         "spec-purity",
		"unsafePeek":      "lock-guard",
		"bump":            "lock-guard",
		"Best":            "err-drop",
	}
	for _, d := range runFixtures(t, "./...") {
		for fn := range suppressed {
			if strings.Contains(d.Message, fn) {
				t.Errorf("suppressed site %s still reported: %s", fn, d)
			}
		}
	}
	// The suppressed det-time call in SuppressedStamp is at
	// clock.go:88; no finding may appear past the last golden line of
	// that file (line 51).
	for _, d := range runFixtures(t, "./...") {
		if d.File == "internal/automaton/clock.go" && d.Line > 51 {
			t.Errorf("unexpected finding after the suppressed region: %s", d)
		}
		// The laundered call in SuppressedMark sits past launder.go:40.
		if d.File == "internal/automaton/launder.go" && d.Line > 40 {
			t.Errorf("suppressed laundering still reported: %s", d)
		}
	}
}

// TestCleanPackageIsClean asserts the negative fixture contributes no
// findings at all.
func TestCleanPackageIsClean(t *testing.T) {
	for _, d := range runFixtures(t, "./...") {
		if strings.HasPrefix(d.File, "clean/") {
			t.Errorf("clean fixture flagged: %s", d)
		}
	}
}

// TestPatternFiltering asserts ./dir/... selects only that package —
// including for the module-wide passes, whose summaries span every
// package but whose findings must not.
func TestPatternFiltering(t *testing.T) {
	diags := runFixtures(t, "./locks/...")
	if len(diags) != 5 {
		t.Fatalf("got %d findings for ./locks/..., want 5", len(diags))
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "locks/") {
			t.Errorf("pattern ./locks/... matched %s", d.File)
		}
	}
}

// TestRepairedTreeIsClean is the smoke test required by the issue:
// relaxlint over the repository itself (the module two levels up)
// exits with zero findings after the repairs of this PR — including
// the justified speccheck suppression on TaxiRungLevels, which must
// also count as used (no unused-ignore in the output).
func TestRepairedTreeIsClean(t *testing.T) {
	diags, err := RunPackages(repoPackages(t), DefaultConfig(), []string{"./..."})
	if err != nil {
		t.Fatalf("RunPackages on repository root: %v", err)
	}
	if len(diags) != 0 {
		lines := make([]string, len(diags))
		for i, d := range diags {
			lines[i] = d.String()
		}
		t.Errorf("repository tree has %d findings:\n  %s", len(diags), strings.Join(lines, "\n  "))
	}
}

// TestJSONOutputIsStable asserts the -json encoding is deterministic
// and carries the documented schema fields.
func TestJSONOutputIsStable(t *testing.T) {
	diags := runFixtures(t, "./...")
	a, err := json.Marshal(diags)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, err := json.Marshal(runFixtures(t, "./..."))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two identical runs marshaled differently")
	}
	var decoded []map[string]any
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, key := range []string{"file", "line", "col", "rule", "message"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("JSON finding lacks documented field %q", key)
		}
	}
}

// TestBaselineRoundTrip covers the CI ratchet: a baseline written from
// the current findings suppresses exactly those findings, and a new
// finding (absent from the baseline) still surfaces.
func TestBaselineRoundTrip(t *testing.T) {
	diags := runFixtures(t, "./...")
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if left := FilterBaseline(diags, base); len(left) != 0 {
		t.Errorf("full baseline left %d findings, want 0: %v", len(left), left)
	}
	// Remove one baseline entry: one finding with its key resurfaces
	// (matching is by file/rule/message budget, not position, so any
	// of the identical err-drop findings may be the one surfaced).
	left := FilterBaseline(diags, base[1:])
	if len(left) != 1 || left[0].File != diags[0].File || left[0].Rule != diags[0].Rule || left[0].Message != diags[0].Message {
		t.Errorf("partial baseline left %v, want one finding matching the removed entry", left)
	}
	// Line drift must not defeat the baseline: shift every line.
	shifted := make([]Diagnostic, len(diags))
	copy(shifted, diags)
	for i := range shifted {
		shifted[i].Line += 7
	}
	if left := FilterBaseline(shifted, base); len(left) != 0 {
		t.Errorf("line-shifted findings escaped the baseline: %v", left)
	}
}

// TestNoMatchIsError asserts a pattern selecting zero packages fails
// loudly instead of passing vacuously (a typo'd CI invocation must
// not look green).
func TestNoMatchIsError(t *testing.T) {
	_, err := RunPackages(fixturePackages(t), DefaultConfig(), []string{"./nosuchpkg/..."})
	if err == nil || !strings.Contains(err.Error(), "no packages match") {
		t.Errorf("Run with a no-match pattern: err = %v, want 'no packages match'", err)
	}
}

// TestMatchPattern covers the CLI pattern grammar.
func TestMatchPattern(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/txn", []string{"./..."}, true},
		{".", []string{"./..."}, true},
		{".", []string{"."}, true},
		{"internal/txn", []string{"./internal/..."}, true},
		{"internal/txn", []string{"internal/txn"}, true},
		{"internal/txn", []string{"./internal/txn/"}, true},
		{"internal/txnx", []string{"./internal/txn/..."}, false},
		{"internal/txn/sub", []string{"./internal/txn/..."}, true},
		{"cmd/relaxlint", []string{"./internal/..."}, false},
	}
	for _, c := range cases {
		if got := matchPattern(c.rel, c.patterns); got != c.want {
			t.Errorf("matchPattern(%q, %v) = %v, want %v", c.rel, c.patterns, got, c.want)
		}
	}
}
