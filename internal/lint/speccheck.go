package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements speccheck: a static certifier for the paper's
// quorum-intersection side conditions. The relaxation lattice's claim
// that constraint set C yields behavior φ(C) rests on Section 3.1's
// condition that every initial quorum of inv must intersect every
// final quorum of op, for each pair (inv, op) in C's intersection
// relation — with weighted voting, Initial(inv) + Final(op) > total.
// PR 5 learned at runtime (X06, step 462 of a pinned soak) that the
// condition can silently fail in *mixed-rung* executions: quorums
// drawn from different ladder rungs need not intersect even when each
// rung alone realizes its constraints. speccheck proves or refutes
// those conditions directly from the literals in source, without
// running anything.
//
// Extraction is structural, resolved through the type checker's
// constant folding (so history.NameEnq and core.ConstraintQ1 work
// across packages):
//
//   - TaxiAssignments(n): per-rung, per-operation Initial/Final
//     thresholds, evaluated symbolically with n bound to the
//     configured site count (local helpers like maj := n/2 + 1 are
//     followed);
//   - TaxiUniverse(): the constraint universe, in declaration order;
//   - Q1(), Q2(), ...: each universe constraint's intersection
//     relation, from the Pair literals in its same-named function;
//   - TaxiLadder(n): the degradation ladder's rung order;
//   - TaxiClaims/TaxiRungLevels: the rung → constraint-set claim
//     tables (u.All(), u.Named(...), and 0 are recognized).
//
// Certification interprets a claim table the way the online checker
// does: T[r] is what a joint execution guarantees while its weakest
// client sits at rung r — so clients may be running any rung from the
// top down to r, and every constraint in T[r] must hold across every
// ordered pair of active rungs:
//
//	∀ c ∈ T[r], ∀ (inv, op) ∈ pairs(c), ∀ ra, rb ∈ ladder[0..r]:
//	    Initial[ra][inv] + Final[rb][op] > total
//
// A violated instance refutes the entry with a concrete witness (the
// two rungs, the operation pair, and the weights); an entry claiming ∅
// is trivially certified. The verdicts and witnesses are exposed as a
// proof artifact (SpecProofs) the CLI can emit, and refuted entries in
// matched packages are reported as speccheck findings. Modules with no
// quorum/claim literals (most fixture trees) are simply out of scope.

// SpecProof is the proof artifact: everything the certifier extracted
// and every verdict it reached, in deterministic order (ladder order
// for rungs, declaration order for constraints, sorted table names).
type SpecProof struct {
	Sites       int              `json:"sites"`
	Total       int              `json:"total_weight"`
	Ladder      []string         `json:"ladder"`
	Constraints []SpecConstraint `json:"constraints"`
	Assignments []SpecAssignment `json:"assignments"`
	Tables      []SpecTable      `json:"tables"`
}

// SpecConstraint is one universe constraint and its intersection
// relation.
type SpecConstraint struct {
	Name  string     `json:"name"`
	Pairs []SpecPair `json:"pairs"`
}

// SpecPair is one (invocation, operation) intersection requirement.
type SpecPair struct {
	Inv string `json:"inv"`
	Op  string `json:"op"`
}

// SpecAssignment is one rung's extracted thresholds plus the
// constraints that rung realizes on its own (the single-rung
// relation, cross-checked against Voting.Relation in tests).
type SpecAssignment struct {
	Rung     string          `json:"rung"`
	Ops      []SpecOpQuorums `json:"ops"`
	Realizes []string        `json:"realizes"`
}

// SpecOpQuorums is one operation's thresholds.
type SpecOpQuorums struct {
	Op      string `json:"op"`
	Initial int    `json:"initial"`
	Final   int    `json:"final"`
}

// SpecTable is one claim table's verdicts.
type SpecTable struct {
	Name    string        `json:"name"`
	Entries []SpecVerdict `json:"entries"`
}

// SpecVerdict is the certifier's verdict on one claim-table entry.
type SpecVerdict struct {
	Rung    string       `json:"rung"`
	Claims  []string     `json:"claims"`
	Verdict string       `json:"verdict"` // "certified", "refuted", or "trivial"
	Witness *SpecWitness `json:"witness,omitempty"`
	File    string       `json:"file"`
	Line    int          `json:"line"`
}

// SpecWitness pins a refutation: the constraint, the operation pair,
// and the two active rungs whose quorums need not intersect.
type SpecWitness struct {
	Constraint string `json:"constraint"`
	Inv        string `json:"inv"`
	InvRung    string `json:"inv_rung"`
	Initial    int    `json:"initial"`
	Op         string `json:"op"`
	OpRung     string `json:"op_rung"`
	Final      int    `json:"final"`
	Total      int    `json:"total_weight"`
}

// claimTableNames are the claim-table functions the certifier audits.
var claimTableNames = map[string]bool{
	"TaxiClaims":     true,
	"TaxiRungLevels": true,
}

// specSource is the raw extraction from one module.
type specSource struct {
	universe    []string
	pairs       map[string][]SpecPair
	ladder      []string
	assigns     map[string]*specAssign
	assignOrder []string
	tables      []*specTable
	problems    []specProblem
}

type specAssign struct {
	rung    string
	total   int
	ops     map[string]specOpQ
	opOrder []string
}

type specOpQ struct{ initial, final int }

type specTable struct {
	name    string
	pkg     *Package
	entries []specEntry
}

// claim kinds.
const (
	claimEmpty = iota
	claimAll
	claimNamed
)

type specEntry struct {
	rung  string
	pos   token.Pos
	kind  int
	names []string
}

type specProblem struct {
	pkg *Package
	pos token.Pos
	msg string
}

// checkSpecIntersections runs speccheck over the module: extraction,
// certification, and a finding for each refuted claim entry or
// extraction gap inside the matched packages.
func checkSpecIntersections(pkgs []*Package, inScope map[string]bool, cfg Config, report reportFunc) {
	src := extractSpec(pkgs, cfg.Sites)
	if src == nil {
		return
	}
	for _, pr := range src.problems {
		if inScope[pr.pkg.Path] {
			report(pr.pos, "speccheck", pr.msg)
		}
	}
	proof := certifySpec(src, cfg.Sites)
	for _, tbl := range proof.Tables {
		srcTbl := src.tableByName(tbl.Name)
		for ei, v := range tbl.Entries {
			if v.Verdict != "refuted" || srcTbl == nil || !inScope[srcTbl.pkg.Path] {
				continue
			}
			w := v.Witness
			report(srcTbl.entries[ei].pos, "speccheck", fmt.Sprintf(
				"%s[%q] claims {%s}, refuted at n=%d: a %s initial quorum at rung %q (weight %d) and a %s final quorum at rung %q (weight %d) need not intersect (%d+%d <= %d), forfeiting %s in mixed-rung executions",
				tbl.Name, v.Rung, strings.Join(v.Claims, ","), proof.Sites,
				w.Inv, w.InvRung, w.Initial, w.Op, w.OpRung, w.Final,
				w.Initial, w.Final, w.Total, w.Constraint))
		}
	}
}

// SpecProofs extracts and certifies the module's quorum and claim
// literals at the given site count. ok is false when the module
// contains none (no assignments or no claim tables).
func SpecProofs(pkgs []*Package, sites int) (*SpecProof, bool) {
	if sites <= 0 {
		sites = 5
	}
	src := extractSpec(pkgs, sites)
	if src == nil {
		return nil, false
	}
	return certifySpec(src, sites), true
}

func (s *specSource) tableByName(name string) *specTable {
	for _, t := range s.tables {
		if t.name == name {
			return t
		}
	}
	return nil
}

// extractSpec pulls the spec literals out of a module's source. It
// returns nil when the module has no quorum assignments or no claim
// tables (speccheck does not apply).
func extractSpec(pkgs []*Package, sites int) *specSource {
	src := &specSource{
		pairs:   map[string][]SpecPair{},
		assigns: map[string]*specAssign{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv != nil {
					continue
				}
				switch {
				case fd.Name.Name == "TaxiAssignments":
					src.extractAssignments(p, fd, sites)
				case fd.Name.Name == "TaxiUniverse":
					src.extractUniverse(p, fd)
				case fd.Name.Name == "TaxiLadder":
					src.extractLadder(p, fd)
				case claimTableNames[fd.Name.Name]:
					src.extractClaims(p, fd)
				}
			}
		}
	}
	if len(src.assigns) == 0 || len(src.tables) == 0 {
		return nil
	}
	// Constraint relations come from functions named after the universe
	// constraints (quorum.Q1, quorum.Q2, ...), found in a second sweep
	// now that the universe is known.
	want := map[string]bool{}
	for _, c := range src.universe {
		want[c] = true
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv != nil || !want[fd.Name.Name] {
					continue
				}
				src.extractPairs(p, fd)
			}
		}
	}
	sort.Slice(src.problems, func(i, j int) bool { return src.problems[i].pos < src.problems[j].pos })
	return src
}

// extractAssignments evaluates the TaxiAssignments map literal with n
// bound to sites.
func (src *specSource) extractAssignments(p *Package, fd *ast.FuncDecl, sites int) {
	env := intEnv{}
	if params := fd.Type.Params; params != nil && len(params.List) > 0 && len(params.List[0].Names) > 0 {
		env[params.List[0].Names[0].Name] = sites
	}
	for _, stmt := range fd.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(s.Rhs) {
					continue
				}
				if v, ok := env.eval(p, s.Rhs[i]); ok {
					env[id.Name] = v
				}
			}
		case *ast.ReturnStmt:
			if len(s.Results) != 1 {
				continue
			}
			lit, ok := s.Results[0].(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				rung, ok := constString(p, kv.Key)
				if !ok {
					src.problem(p, kv.Key.Pos(), "cannot resolve quorum-assignment rung name to a constant string")
					continue
				}
				a, err := extractVoting(p, env, kv.Value)
				if err != "" {
					src.problem(p, kv.Value.Pos(), fmt.Sprintf("cannot statically evaluate assignment for rung %q: %s", rung, err))
					continue
				}
				a.rung = rung
				src.assigns[rung] = a
				src.assignOrder = append(src.assignOrder, rung)
			}
		}
	}
}

// extractVoting evaluates one NewVoting(weights, ops) call.
func extractVoting(p *Package, env intEnv, e ast.Expr) (*specAssign, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok || calleeName(call) != "NewVoting" || len(call.Args) != 2 {
		return nil, "want a NewVoting(weights, ops) call"
	}
	total := 0
	switch w := call.Args[0].(type) {
	case *ast.CallExpr:
		// Unit-weight helper: ones(n) contributes n weight-1 votes.
		if len(w.Args) != 1 {
			return nil, "cannot evaluate the weight vector"
		}
		v, ok := env.eval(p, w.Args[0])
		if !ok {
			return nil, "cannot evaluate the weight vector"
		}
		total = v
	case *ast.CompositeLit:
		for _, elt := range w.Elts {
			v, ok := env.eval(p, elt)
			if !ok {
				return nil, "cannot evaluate the weight vector"
			}
			total += v
		}
	default:
		return nil, "cannot evaluate the weight vector"
	}
	opsLit, ok := call.Args[1].(*ast.CompositeLit)
	if !ok {
		return nil, "want a map literal of operation thresholds"
	}
	a := &specAssign{total: total, ops: map[string]specOpQ{}}
	for _, elt := range opsLit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return nil, "want keyed operation thresholds"
		}
		op, ok := constString(p, kv.Key)
		if !ok {
			return nil, "cannot resolve an operation name to a constant string"
		}
		q, err := extractOpQuorums(p, env, kv.Value)
		if err != "" {
			return nil, fmt.Sprintf("operation %q: %s", op, err)
		}
		a.ops[op] = q
		a.opOrder = append(a.opOrder, op)
	}
	return a, ""
}

// extractOpQuorums evaluates one {Initial: x, Final: y} literal (keyed
// or positional).
func extractOpQuorums(p *Package, env intEnv, e ast.Expr) (specOpQ, string) {
	lit, ok := e.(*ast.CompositeLit)
	if !ok || len(lit.Elts) != 2 {
		return specOpQ{}, "want an {Initial, Final} literal"
	}
	var q specOpQ
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				return specOpQ{}, "want Initial/Final keys"
			}
			v, okv := env.eval(p, kv.Value)
			if !okv {
				return specOpQ{}, fmt.Sprintf("cannot evaluate the %s threshold", key.Name)
			}
			switch key.Name {
			case "Initial":
				q.initial = v
			case "Final":
				q.final = v
			default:
				return specOpQ{}, fmt.Sprintf("unknown threshold field %s", key.Name)
			}
		} else {
			v, okv := env.eval(p, elt)
			if !okv {
				return specOpQ{}, "cannot evaluate a positional threshold"
			}
			if i == 0 {
				q.initial = v
			} else {
				q.final = v
			}
		}
	}
	return q, ""
}

// extractUniverse reads the constraint names out of the Constraint
// literals in TaxiUniverse, in declaration order.
func (src *specSource) extractUniverse(p *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || lit.Type == nil || litTypeName(p, lit) != "Constraint" {
			return true
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Name" {
				if name, ok := constString(p, kv.Value); ok {
					src.universe = append(src.universe, name)
				} else {
					src.problem(p, kv.Value.Pos(), "cannot resolve a constraint name to a constant string")
				}
			}
		}
		return true
	})
}

// extractPairs reads the Pair literals out of a constraint's relation
// function.
func (src *specSource) extractPairs(p *Package, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || lit.Type == nil || litTypeName(p, lit) != "Pair" {
			return true
		}
		var pair SpecPair
		good := true
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				good = false
				continue
			}
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				good = false
				continue
			}
			val, ok := constString(p, kv.Value)
			if !ok {
				good = false
				continue
			}
			switch id.Name {
			case "Inv":
				pair.Inv = val
			case "Op":
				pair.Op = val
			}
		}
		if good && pair.Inv != "" && pair.Op != "" {
			src.pairs[name] = append(src.pairs[name], pair)
		} else {
			src.problem(p, lit.Pos(), fmt.Sprintf("cannot statically evaluate a Pair literal of constraint %s", name))
		}
		return true
	})
}

// extractLadder reads the rung order out of TaxiLadder's []Level
// literal.
func (src *specSource) extractLadder(p *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || lit.Type == nil {
			return true
		}
		at, ok := lit.Type.(*ast.ArrayType)
		if !ok || typeNameOf(p, at.Elt) != "Level" {
			return true
		}
		for _, elt := range lit.Elts {
			inner, ok := elt.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, f := range inner.Elts {
				kv, ok := f.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Name" {
					if name, ok := constString(p, kv.Value); ok {
						src.ladder = append(src.ladder, name)
					} else {
						src.problem(p, kv.Value.Pos(), "cannot resolve a ladder rung name to a constant string")
					}
				}
			}
		}
		return false
	})
}

// extractClaims reads one claim table's rung → constraint-set map.
func (src *specSource) extractClaims(p *Package, fd *ast.FuncDecl) {
	tbl := &specTable{name: fd.Name.Name, pkg: p}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if _, isMap := lit.Type.(*ast.MapType); !isMap {
			return true
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			rung, ok := constString(p, kv.Key)
			if !ok {
				src.problem(p, kv.Key.Pos(), fmt.Sprintf("cannot resolve a %s rung name to a constant string", tbl.name))
				continue
			}
			entry := specEntry{rung: rung, pos: kv.Pos()}
			switch v := kv.Value.(type) {
			case *ast.CallExpr:
				switch calleeName(v) {
				case "All":
					entry.kind = claimAll
				case "Named":
					entry.kind = claimNamed
					for _, arg := range v.Args {
						if name, ok := constString(p, arg); ok {
							entry.names = append(entry.names, name)
						} else {
							src.problem(p, arg.Pos(), fmt.Sprintf("cannot resolve a %s constraint name to a constant string", tbl.name))
						}
					}
				default:
					src.problem(p, v.Pos(), fmt.Sprintf("cannot statically evaluate %s[%q]", tbl.name, rung))
					continue
				}
			default:
				if v, ok := constIntOf(p, kv.Value); ok && v == 0 {
					entry.kind = claimEmpty
				} else {
					src.problem(p, kv.Value.Pos(), fmt.Sprintf("cannot statically evaluate %s[%q]", tbl.name, rung))
					continue
				}
			}
			tbl.entries = append(tbl.entries, entry)
		}
		return false
	})
	src.tables = append(src.tables, tbl)
}

func (src *specSource) problem(p *Package, pos token.Pos, msg string) {
	src.problems = append(src.problems, specProblem{pkg: p, pos: pos, msg: msg})
}

// certifySpec evaluates the intersection side conditions over the
// extracted literals.
func certifySpec(src *specSource, sites int) *SpecProof {
	proof := &SpecProof{Sites: sites, Ladder: append([]string(nil), src.ladder...)}
	if len(src.assignOrder) > 0 {
		proof.Total = src.assigns[src.assignOrder[0]].total
	}
	for _, c := range src.universe {
		proof.Constraints = append(proof.Constraints, SpecConstraint{Name: c, Pairs: src.pairs[c]})
	}
	// Assignments: ladder rungs first (ladder order), then the rest in
	// declaration order.
	emitted := map[string]bool{}
	emit := func(rung string) {
		a := src.assigns[rung]
		if a == nil || emitted[rung] {
			return
		}
		emitted[rung] = true
		sa := SpecAssignment{Rung: rung, Realizes: []string{}}
		for _, op := range a.opOrder {
			sa.Ops = append(sa.Ops, SpecOpQuorums{Op: op, Initial: a.ops[op].initial, Final: a.ops[op].final})
		}
		for _, c := range src.universe {
			if singleRungRealizes(a, src.pairs[c]) {
				sa.Realizes = append(sa.Realizes, c)
			}
		}
		proof.Assignments = append(proof.Assignments, sa)
	}
	for _, rung := range src.ladder {
		emit(rung)
	}
	for _, rung := range src.assignOrder {
		emit(rung)
	}
	tables := append([]*specTable(nil), src.tables...)
	sort.Slice(tables, func(i, j int) bool { return tables[i].name < tables[j].name })
	src.tables = tables
	for _, tbl := range tables {
		st := SpecTable{Name: tbl.name}
		// Entries in ladder order, so verdict tables diff cleanly.
		sort.SliceStable(tbl.entries, func(i, j int) bool {
			return ladderIndex(src.ladder, tbl.entries[i].rung) < ladderIndex(src.ladder, tbl.entries[j].rung)
		})
		for _, e := range tbl.entries {
			pos := tbl.pkg.Fset.Position(e.pos)
			v := SpecVerdict{Rung: e.rung, Claims: e.claimNames(src.universe), File: pos.Filename, Line: pos.Line}
			switch {
			case len(v.Claims) == 0:
				v.Verdict = "trivial"
				v.Claims = []string{}
			default:
				v.Verdict = "certified"
				if w := refute(src, e.rung, v.Claims); w != nil {
					v.Verdict = "refuted"
					v.Witness = w
				}
			}
			st.Entries = append(st.Entries, v)
		}
		proof.Tables = append(proof.Tables, st)
	}
	return proof
}

// claimNames resolves a claim entry to constraint names in universe
// order.
func (e specEntry) claimNames(universe []string) []string {
	switch e.kind {
	case claimAll:
		return append([]string(nil), universe...)
	case claimNamed:
		var out []string
		named := map[string]bool{}
		for _, n := range e.names {
			named[n] = true
		}
		for _, c := range universe {
			if named[c] {
				out = append(out, c)
			}
		}
		return out
	}
	return nil
}

// refute searches for an intersection-condition violation of the
// claimed constraints at floor rung: active rungs are the ladder
// prefix down to rung, and every (inv-rung, op-rung) ordered pair must
// satisfy Initial + Final > total. The first violation in
// deterministic order (claims, then pairs, then rung pairs in ladder
// order) is the witness.
func refute(src *specSource, rung string, claims []string) *SpecWitness {
	idx := ladderIndex(src.ladder, rung)
	if idx == len(src.ladder) {
		return nil // rung not on the ladder; extraction already complained
	}
	active := src.ladder[:idx+1]
	for _, c := range claims {
		for _, pair := range src.pairs[c] {
			for _, ra := range active {
				aa := src.assigns[ra]
				if aa == nil {
					continue
				}
				qi, ok := aa.ops[pair.Inv]
				if !ok {
					continue
				}
				for _, rb := range active {
					ab := src.assigns[rb]
					if ab == nil {
						continue
					}
					qf, ok := ab.ops[pair.Op]
					if !ok {
						continue
					}
					if qi.initial+qf.final <= aa.total {
						return &SpecWitness{
							Constraint: c,
							Inv:        pair.Inv, InvRung: ra, Initial: qi.initial,
							Op: pair.Op, OpRung: rb, Final: qf.final,
							Total: aa.total,
						}
					}
				}
			}
		}
	}
	return nil
}

// singleRungRealizes reports whether one assignment alone satisfies a
// constraint's intersection relation.
func singleRungRealizes(a *specAssign, pairs []SpecPair) bool {
	if len(pairs) == 0 {
		return false
	}
	for _, pr := range pairs {
		qi, ok1 := a.ops[pr.Inv]
		qf, ok2 := a.ops[pr.Op]
		if !ok1 || !ok2 || qi.initial+qf.final <= a.total {
			return false
		}
	}
	return true
}

func ladderIndex(ladder []string, rung string) int {
	for i, r := range ladder {
		if r == rung {
			return i
		}
	}
	return len(ladder)
}

// intEnv evaluates integer expressions over a set of bound names:
// the type checker's constant folding first (covering literals, const
// idents across packages, and constant arithmetic), then structural
// evaluation for expressions over bound variables.
type intEnv map[string]int

func (env intEnv) eval(p *Package, e ast.Expr) (int, bool) {
	if v, ok := constIntOf(p, e); ok {
		return v, true
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := env[x.Name]
		return v, ok
	case *ast.ParenExpr:
		return env.eval(p, x.X)
	case *ast.BinaryExpr:
		a, ok1 := env.eval(p, x.X)
		b, ok2 := env.eval(p, x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}
	}
	return 0, false
}

// constString resolves an expression to a constant string through the
// type checker.
func constString(p *Package, e ast.Expr) (string, bool) {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// constIntOf resolves an expression to a constant int through the type
// checker.
func constIntOf(p *Package, e ast.Expr) (int, bool) {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			return int(v), true
		}
	}
	return 0, false
}

// calleeName returns the bare name of a call's function expression.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// litTypeName resolves a composite literal's type to its named-type
// name ("Constraint", "Pair").
func litTypeName(p *Package, lit *ast.CompositeLit) string {
	return typeNameOf(p, lit.Type)
}

// typeNameOf resolves a type expression to its named-type name.
func typeNameOf(p *Package, e ast.Expr) string {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
