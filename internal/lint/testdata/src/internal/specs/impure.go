// Package specs is a fixture exercising the spec-purity rule.
package specs

// hits counts Apply invocations — exactly the package-level state the
// purity rule forbids transition functions from touching.
var hits int

// registry mirrors the real spec catalog's registration map.
var registry = map[string]func(int) int{}

// Apply mutates package state twice: both writes are findings.
func Apply(s int) int {
	hits++
	registry["apply"] = nil
	return s + 1
}

// Pure is clean.
func Pure(s int) int {
	return s * 2
}

// Tracked documents why it writes package state: suppressed.
func Tracked(s int) int {
	//lint:ignore spec-purity fixture demonstrates suppression
	hits = s
	return s
}
