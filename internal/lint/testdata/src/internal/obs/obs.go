// Package obs is a model-layer fixture mirroring the real
// observability substrate: registries snapshot by sorting after map
// iteration (clean), and instrumented code takes logical time from an
// injected clock instead of the wall clock.
package obs

import "sort"

// Clock supplies injected logical time — the sanctioned alternative to
// time.Now in model-layer packages.
type Clock interface {
	Now() int64
}

// ClockFunc adapts a function to Clock.
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

// Registry is a miniature metrics registry.
type Registry struct {
	counters map[string]uint64
}

// Add bumps a counter (single-goroutine fixture; no locking).
func (r *Registry) Add(name string, n uint64) {
	if r.counters == nil {
		r.counters = map[string]uint64{}
	}
	r.counters[name] += n
}

// CounterValue is one snapshot entry.
type CounterValue struct {
	Name  string
	Value uint64
}

// Snapshot collects and sorts — the established idiom, clean.
func (r *Registry) Snapshot() []CounterValue {
	out := make([]CounterValue, 0, len(r.counters))
	for name, v := range r.counters {
		out = append(out, CounterValue{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RawSnapshot leaks map iteration order into the result: finding.
func (r *Registry) RawSnapshot() []CounterValue {
	var out []CounterValue
	for name, v := range r.counters {
		out = append(out, CounterValue{Name: name, Value: v})
	}
	return out
}
