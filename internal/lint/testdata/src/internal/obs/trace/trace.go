// Package trace is a model-layer fixture mirroring the real causal
// span tracer: span identity and timing must come from the injected
// logical clock, never the wall clock, and exported span streams must
// not leak map iteration order. The clean paths show the sanctioned
// idioms; the findings show the two ways a tracer drifts
// nondeterministic.
package trace

import (
	"sort"
	"time"
)

// Span is one recorded causal span on the logical clock.
type Span struct {
	ID    uint64
	Name  string
	Begin int64
	End   int64
}

// Tracer collects spans keyed by ID (single-goroutine fixture).
type Tracer struct {
	clock func() int64
	spans map[uint64]Span
}

// Record stores a finished span stamped by the injected clock: clean.
func (t *Tracer) Record(s Span) {
	if t.spans == nil {
		t.spans = map[uint64]Span{}
	}
	s.End = t.clock()
	t.spans[s.ID] = s
}

// WallBegin stamps a span from the wall clock: finding.
func (t *Tracer) WallBegin(name string) Span {
	return Span{Name: name, Begin: time.Now().UnixNano()}
}

// Export snapshots by sorting after map iteration: clean.
func (t *Tracer) Export() []Span {
	out := make([]Span, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RawExport leaks map iteration order into the stream: finding.
func (t *Tracer) RawExport() []Span {
	var out []Span
	for _, s := range t.spans {
		out = append(out, s)
	}
	return out
}
