// Package automaton is a model-layer fixture exercising the
// determinism rule family (det-time, det-rand, det-maporder).
package automaton

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock twice: both calls are findings.
func Stamp() (int64, time.Duration) {
	t := time.Now()
	return t.UnixNano(), time.Since(t)
}

// Pick draws from the global RNG: finding.
func Pick(n int) int {
	return rand.Intn(n)
}

// Seeded constructs an injected generator: rand.New and
// rand.NewSource are on the constructor allowlist, and method calls on
// the injected generator are always legal.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Keys leaks map iteration order into the returned slice: finding.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys sorts after collecting: clean.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// First returns whichever key iteration yields first: finding.
func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Has is an early-exit search returning a constant: clean.
func Has(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// Index rewrites values keyed by the iteration variable: clean.
func Index(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// Sum folds a map order-independently: clean.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SuppressedStamp demonstrates the suppression convention.
func SuppressedStamp() int64 {
	//lint:ignore det-time fixture demonstrates suppression
	return time.Now().UnixNano()
}
