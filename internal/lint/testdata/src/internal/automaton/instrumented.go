package automaton

import (
	"math/rand"
	"time"

	"fixture/internal/obs"
)

// Engine is instrumented the sanctioned way: it records against an
// injected logical clock and a registry of commutative counters.
type Engine struct {
	clock obs.Clock
	reg   *obs.Registry
}

// Expand records a depth expansion at injected logical time: clean.
func (e *Engine) Expand(classes int) int64 {
	e.reg.Add("engine.expand.depths", 1)
	e.reg.Add("engine.expand.classes", uint64(classes))
	return e.clock.Now()
}

// WallClockEngine captures time.Now as a function value — the wall
// clock smuggled past any call-site-only check: finding.
func WallClockEngine(reg *obs.Registry) *Engine {
	now := time.Now
	return &Engine{clock: obs.ClockFunc(func() int64 { return now().UnixNano() }), reg: reg}
}

// GlobalRandTiebreak captures rand.Int as a function value — the
// global RNG smuggled the same way: finding.
func GlobalRandTiebreak() func() int {
	return rand.Int
}
