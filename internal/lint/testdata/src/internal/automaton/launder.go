// launder.go exercises det-taint. Every nondeterministic value below
// arrives through helpers in the (legal) timeutil package, so no
// time.* or rand.* selector appears in this file and the syntactic
// det-time/det-rand passes provably miss all of it. The taint pass
// follows the values through returns, parameters, conversions, and
// struct fields.
package automaton

import "fixture/timeutil"

// Epoch is model state a laundered wall-clock read leaks into.
type Epoch struct {
	startNanos int64
}

// Mark stores a laundered wall-clock read in model state: det-taint
// reports both the call and the store.
func (e *Epoch) Mark() {
	e.startNanos = timeutil.Stamp()
}

// MarkVia launders through two helper levels: still caught.
func (e *Epoch) MarkVia() {
	v := timeutil.StampVia()
	e.startNanos = v
}

// Shuffle seeds model state from the global RNG via a helper and a
// conversion.
func (e *Epoch) Shuffle() {
	e.startNanos = int64(timeutil.Jitter(10))
}

// Scaled passes only constants through a parameter-forwarding helper:
// clean.
func (e *Epoch) Scaled() int64 {
	return timeutil.Scale(2, 3)
}

// SuppressedMark is the same laundered read with a justified
// suppression: silent, and the directive counts as used.
func (e *Epoch) SuppressedMark() {
	//lint:ignore det-taint fixture demonstrates suppression of a laundered read
	e.startNanos = timeutil.Stamp()
}
