// Package conc mirrors the repository's runtime concurrency layer
// (internal/conc): lock-free relaxed structures that are *clients* of
// the model layer, certified against it after the fact, rather than
// part of it. The determinism rule families (det-time, det-rand,
// det-taint, det-maporder) are scoped to Config.ModelPaths and
// deliberately exclude this path — a relaxed queue's schedule is
// inherently nondeterministic, its sampling state is seeded per shard
// only to make single-threaded witness schedules reproducible, and its
// actual guarantees are established by relaxcheck certifying recorded
// histories, not by pinning the runtime to a virtual clock. Every
// would-be determinism finding below must therefore stay silent.
//
// Lock discipline is not path-scoped: the leaking lock at the bottom
// must keep firing even here.
package conc

import (
	"math/rand"
	"sync"
	"time"
)

// Shard is one slice of a relaxed structure with private sampling
// state. The seeded constructor is the sanctioned pattern everywhere;
// storing a draw from the *global* RNG in a field (sampleSkew) is a
// det-taint finding in a model-layer package and legal here.
type Shard struct {
	rng        *rand.Rand
	sampleSkew int
	startNanos int64

	mu sync.Mutex
	n  int
}

// NewShard seeds the shard's sampling state from its index (for
// reproducible single-threaded schedules) and stamps wall-clock and
// global-RNG values into fields — both exempt outside ModelPaths.
func NewShard(index int64) *Shard {
	return &Shard{
		rng:        rand.New(rand.NewSource(index)),
		sampleSkew: rand.Intn(64),
		startNanos: time.Now().UnixNano(),
	}
}

// Sample draws from the shard-private generator: legal in every layer.
func (s *Shard) Sample(n int) int { return s.rng.Intn(n) }

// Age reads the wall clock: a det-time finding in a model-layer
// package, exempt here.
func (s *Shard) Age() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.startNanos)
}

// Leak holds the shard lock past return: lock-balance applies to the
// concurrency layer like everywhere else and must flag this.
func (s *Shard) Leak() int {
	s.mu.Lock()
	return s.n
}
