// Package timeutil is a fixture helper package OUTSIDE the model-layer
// list: its own wall-clock and RNG reads are perfectly legal here,
// which is exactly what makes it a laundering vector. The syntactic
// det-time/det-rand passes scan model packages only, so a
// nondeterministic value arriving through one of these helpers is
// invisible to them — TestTaintCatchesSyntacticMiss pins that miss.
// det-taint summarizes this package and follows the values across the
// package boundary.
package timeutil

import (
	"math/rand"
	"time"
)

// Stamp launders the wall clock through a return value.
func Stamp() int64 { return time.Now().UnixNano() }

// Passthrough is an identity wrapper: taint flows through parameters.
func Passthrough(v int64) int64 { return v }

// StampVia launders through two helper levels.
func StampVia() int64 { return Passthrough(Stamp()) }

// Jitter launders the global RNG.
func Jitter(n int) int { return rand.Intn(n) }

// Scale carries no source of its own: its result is tainted exactly
// when its arguments are.
func Scale(v, k int64) int64 { return v * k }
