// Package lockorder exercises the lock-order pass: acquisition cycles
// observed directly, through call summaries, and through "guarded by"
// annotations, plus a consistent ordering that stays silent.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.Mutex
)

// AThenB nests muB under muA.
func AThenB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

// BThenA nests in the opposite order: a cycle with AThenB.
func BThenA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	defer muA.Unlock()
}

// Ordered nests muB under muA again — consistent with AThenB, so it
// adds no cycle.
func Ordered() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

// Reentrant re-locks a mutex it already holds: sync.Mutex is not
// reentrant, so this cycle of length one is a self-deadlock.
func Reentrant() {
	muC.Lock()
	muC.Lock()
	muC.Unlock()
	muC.Unlock()
}

func lockD() {
	muD.Lock()
	defer muD.Unlock()
}

func lockE() {
	muE.Lock()
	defer muE.Unlock()
}

// DThenE holds muD while calling a helper that takes muE; EThenD does
// the reverse. The cycle is visible only through call summaries.
func DThenE() {
	muD.Lock()
	defer muD.Unlock()
	lockE()
}

func EThenD() {
	muE.Lock()
	defer muE.Unlock()
	lockD()
}

// Guarded has an annotated field; bump is a caller-holds helper, so
// the annotation tells the pass its callers hold Guarded.mu.
type Guarded struct {
	mu sync.Mutex
	n  int // guarded by mu
}

//lint:ignore lock-guard caller holds mu (fixture: annotation-implied lock-order edge)
func (g *Guarded) bump() { g.n++ }

// FThenGuard holds muF across a call that requires Guarded.mu;
// GuardThenF takes muF while holding Guarded.mu: a cycle closed by
// the annotation rather than an observed Lock.
func FThenGuard(g *Guarded) {
	muF.Lock()
	defer muF.Unlock()
	g.bump()
}

func (g *Guarded) GuardThenF() {
	g.mu.Lock()
	defer g.mu.Unlock()
	muF.Lock()
	muF.Unlock()
}
