// Package errs is a fixture exercising the error-discipline rule
// (err-drop) and the bad-ignore malformed-suppression diagnostic.
package errs

import (
	"errors"
	"strconv"
)

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Drop discards errors three ways: three findings.
func Drop() int {
	_ = fallible()
	n, _ := pair()
	m, _ := strconv.Atoi("7")
	return n + m
}

// Handled is clean.
func Handled() (int, error) {
	n, err := pair()
	if err != nil {
		return 0, err
	}
	return n, nil
}

// CommaOK discards a bool, not an error: clean.
func CommaOK(m map[string]int) int {
	v, _ := m["k"]
	return v
}

// Best is a deliberate best-effort call: suppressed.
func Best() {
	//lint:ignore err-drop fixture demonstrates suppression
	_ = fallible()
}

// Malformed has an ignore comment without a reason: the suppression is
// rejected (bad-ignore) and the err-drop finding still fires.
func Malformed() {
	//lint:ignore err-drop
	_ = fallible()
}

// Unknown names a pass that does not exist: the suppression is
// rejected (bad-ignore) and the err-drop finding still fires.
func Unknown() {
	//lint:ignore err-dropp typo'd pass name
	_ = fallible()
}

// Stale carries a well-formed suppression with nothing to suppress:
// unused-ignore.
func Stale() int {
	//lint:ignore err-drop the call this once justified is gone
	return 0
}

// Multi names two passes in one directive: err-drop suppresses the
// finding below and counts as used, spec-purity suppresses nothing in
// this package and is reported unused — usage is tracked per pass.
func Multi() {
	//lint:ignore err-drop,spec-purity fixture demonstrates per-pass usage tracking
	_ = fallible()
}
