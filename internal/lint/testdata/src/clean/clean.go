// Package clean has no findings: the negative half of the golden
// test.
package clean

import "sync"

// Box is a guarded container whose only method follows the
// lock-then-defer discipline.
type Box struct {
	mu sync.Mutex
	v  int // guarded by mu
}

// Get locks around the read.
func (b *Box) Get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}
