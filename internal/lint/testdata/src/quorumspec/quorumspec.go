// Package quorumspec mirrors the repository's quorum-assignment and
// claim-table literals in miniature, as the speccheck fixture: the
// certifier must extract the thresholds, the constraint universe, the
// intersection relations, the ladder, and both claim tables from this
// source alone, certify TaxiClaims, and refute TaxiRungLevels's "Q1"
// entry with a concrete mixed-rung witness.
package quorumspec

// Operation and constraint names, resolved through the type checker's
// constant folding like their cross-package counterparts in the real
// tree.
const (
	NameEnq = "Enq"
	NameDeq = "Deq"

	ConstraintQ1 = "Q1"
	ConstraintQ2 = "Q2"
)

// OpQuorums gives one operation's initial/final thresholds.
type OpQuorums struct{ Initial, Final int }

// Voting is a weighted-voting assignment (structure only; the fixture
// never runs it).
type Voting struct {
	total int
	ops   map[string]OpQuorums
}

// NewVoting builds an assignment.
func NewVoting(weights []int, ops map[string]OpQuorums) *Voting {
	total := 0
	for _, w := range weights {
		total += w
	}
	return &Voting{total: total, ops: ops}
}

func ones(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Set is a constraint bitmask.
type Set uint64

// Constraint is one universe element.
type Constraint struct{ Name, Desc string }

// Universe is an ordered constraint universe.
type Universe struct{ names []string }

// NewUniverse builds a universe.
func NewUniverse(cs ...Constraint) *Universe {
	u := &Universe{}
	for _, c := range cs {
		u.names = append(u.names, c.Name)
	}
	return u
}

// All returns the full constraint set.
func (u *Universe) All() Set { return Set(1)<<uint(len(u.names)) - 1 }

// Named returns the set holding the named constraints.
func (u *Universe) Named(names ...string) Set {
	var s Set
	for _, n := range names {
		for i, un := range u.names {
			if un == n {
				s |= 1 << uint(i)
			}
		}
	}
	return s
}

// Pair is one intersection requirement.
type Pair struct{ Inv, Op string }

// Relation is a set of pairs.
type Relation struct{ pairs []Pair }

// NewRelation builds a relation.
func NewRelation(ps ...Pair) Relation { return Relation{pairs: ps} }

// Q1: each initial Deq quorum intersects each final Enq quorum.
func Q1() Relation { return NewRelation(Pair{Inv: NameDeq, Op: NameEnq}) }

// Q2: each initial Deq quorum intersects each final Deq quorum.
func Q2() Relation { return NewRelation(Pair{Inv: NameDeq, Op: NameDeq}) }

// TaxiUniverse returns the {Q1, Q2} universe.
func TaxiUniverse() *Universe {
	return NewUniverse(
		Constraint{Name: ConstraintQ1, Desc: "initial Deq intersects final Enq"},
		Constraint{Name: ConstraintQ2, Desc: "initial Deq intersects final Deq"},
	)
}

// TaxiAssignments returns the per-rung assignments over n sites.
func TaxiAssignments(n int) map[string]*Voting {
	maj := n/2 + 1
	one := 1
	return map[string]*Voting{
		"Q1Q2": NewVoting(ones(n), map[string]OpQuorums{
			NameEnq: {Initial: one, Final: n - maj + 1},
			NameDeq: {Initial: maj, Final: maj},
		}),
		"Q1": NewVoting(ones(n), map[string]OpQuorums{
			NameEnq: {Initial: one, Final: n - n/2 + 1},
			NameDeq: {Initial: n / 2, Final: one},
		}),
		"none": NewVoting(ones(n), map[string]OpQuorums{
			NameEnq: {Initial: one, Final: one},
			NameDeq: {Initial: one, Final: one},
		}),
	}
}

// Level is one degradation-ladder rung.
type Level struct {
	Name    string
	Quorums *Voting
}

// TaxiLadder returns the rungs, strongest first.
func TaxiLadder(n int) []Level {
	a := TaxiAssignments(n)
	return []Level{
		{Name: "Q1Q2", Quorums: a["Q1Q2"]},
		{Name: "Q1", Quorums: a["Q1"]},
		{Name: "none", Quorums: a["none"]},
	}
}

// TaxiClaims claims only at the top rung: the certifier certifies it.
func TaxiClaims(u *Universe) map[string]Set {
	return map[string]Set{
		"Q1Q2": u.All(),
		"Q1":   0,
		"none": 0,
	}
}

// TaxiRungLevels claims Q1 at the Q1 rung, which mixed-rung quorums do
// not support: the certifier refutes it.
func TaxiRungLevels(u *Universe) map[string]Set {
	return map[string]Set{
		"Q1Q2": u.All(),
		"Q1":   u.Named(ConstraintQ1),
		"none": 0,
	}
}
