// branches.go exercises the lock-balance branch cases: conditional
// defers, early returns out of nested guard blocks, and read locks.
package locks

import "sync"

// Pool has a guarded free list.
type Pool struct {
	mu   sync.Mutex
	free []int // guarded by mu
}

// ConditionalDefer registers the deferred unlock on one branch and
// unlocks manually on the other: every path releases, so it is clean.
func (p *Pool) ConditionalDefer(b bool) int {
	p.mu.Lock()
	if b {
		defer p.mu.Unlock()
		return len(p.free)
	}
	p.mu.Unlock()
	return 0
}

// NestedGuard locks inside a branch and releases before the branch
// returns: clean.
func (p *Pool) NestedGuard(b bool) int {
	if b {
		p.mu.Lock()
		n := len(p.free)
		p.mu.Unlock()
		return n
	}
	return 0
}

// NestedLeak locks inside a branch whose inner early return skips the
// unlock: lock-balance finding.
func (p *Pool) NestedLeak(b, c bool) int {
	if b {
		p.mu.Lock()
		if c {
			return -1
		}
		p.mu.Unlock()
	}
	return 0
}

// Registry guards a map with a read-write lock.
type Registry struct {
	rw sync.RWMutex
	m  map[string]int // guarded by rw
}

// Read pairs RLock with an immediate deferred RUnlock: clean.
func (r *Registry) Read(k string) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.m[k]
}

// ReadLeak takes the read lock and never releases it: lock-balance
// finding.
func (r *Registry) ReadLeak(k string) int {
	r.rw.RLock()
	return r.m[k]
}
