// Package locks is a fixture exercising the lock-discipline rule
// family (lock-balance, lock-guard).
package locks

import "sync"

// Counter is a tiny guarded container.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Add locks with an immediate defer: clean.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// Peek reads n without acquiring mu: lock-guard finding.
func (c *Counter) Peek() int {
	return c.n
}

// Leak never unlocks: lock-balance finding.
func (c *Counter) Leak(d int) {
	c.mu.Lock()
	c.n += d
}

// EarlyReturn can return while holding mu: lock-balance finding.
func (c *Counter) EarlyReturn(d int) int {
	c.mu.Lock()
	if d < 0 {
		return 0
	}
	c.n += d
	c.mu.Unlock()
	return c.n
}

// Manual unlocks before its only return: clean.
func (c *Counter) Manual(d int) int {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
	return c.n
}

// unsafePeek is called with mu held: suppressed at the declaration,
// where the lock-guard finding is reported.
//
//lint:ignore lock-guard caller holds mu (fixture demonstrates suppression)
func (c *Counter) unsafePeek() int {
	return c.n
}
