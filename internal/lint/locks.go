package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// checkLocks applies the lock-balance and lock-guard rules to every
// package: the lock-based atomic-queue and transaction results are
// only as trustworthy as the locking discipline around them.
func checkLocks(p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBalance(p, fd.Body, report)
			// Closures have their own control flow and are checked as
			// independent functions.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockBalance(p, fl.Body, report)
				}
				return true
			})
		}
	}
	checkGuardedFields(p, report)
}

// lockCall describes one recognized mutex operation.
type lockCall struct {
	call *ast.CallExpr
	key  string // canonical receiver expression, e.g. "c.mu"
	read bool   // RLock/RUnlock
}

// asMutexOp recognizes <expr>.Lock/RLock/Unlock/RUnlock where <expr>
// has type sync.Mutex, sync.RWMutex (possibly behind a pointer), or
// sync.Locker.
func asMutexOp(p *Package, call *ast.CallExpr, names ...string) (lockCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return lockCall{}, false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncLockerType(tv.Type) {
		return lockCall{}, false
	}
	return lockCall{
		call: call,
		key:  types.ExprString(sel.X),
		read: sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock",
	}, true
}

// isSyncLockerType reports whether t is one of the sync locking types.
func isSyncLockerType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

// stmtLists collects every statement list in body without descending
// into function literals (which are separate functions).
func stmtLists(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, x.List)
		case *ast.CaseClause:
			lists = append(lists, x.Body)
		case *ast.CommClause:
			lists = append(lists, x.Body)
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return lists
}

// checkLockBalance flags Lock/RLock calls that are not immediately
// followed by the matching defer Unlock and for which the fallback
// path analysis finds either no later unlock at all or a return
// statement that can fire while the lock is still held. The analysis
// is source-order based: a deferred unlock protects exactly the
// returns after its registration point, which matches how the repo's
// code is written.
func checkLockBalance(p *Package, body *ast.BlockStmt, report reportFunc) {
	for _, list := range stmtLists(body) {
		for i, stmt := range list {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			lk, ok := asMutexOp(p, call, "Lock", "RLock")
			if !ok {
				continue
			}
			if i+1 < len(list) && isDeferUnlock(p, list[i+1], lk) {
				continue
			}
			unlockPos, hasUnlock := firstUnlockAfter(p, body, lk)
			if !hasUnlock {
				report(call.Pos(), "lock-balance", fmt.Sprintf(
					"%s locked but never released in this function; use defer %s.Unlock()", lk.key, lk.key))
				continue
			}
			if _, hasRet := firstReturnBetween(body, lk.call.End(), unlockPos); hasRet {
				report(call.Pos(), "lock-balance", fmt.Sprintf(
					"%s may still be held on an early return; use defer %s.Unlock()", lk.key, lk.key))
			}
		}
	}
}

// isDeferUnlock reports whether stmt is `defer <key>.Unlock()` (or
// RUnlock for read locks).
func isDeferUnlock(p *Package, stmt ast.Stmt, lk lockCall) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	want := "Unlock"
	if lk.read {
		want = "RUnlock"
	}
	ul, ok := asMutexOp(p, ds.Call, want)
	return ok && ul.key == lk.key
}

// firstUnlockAfter returns the position of the first matching unlock
// (direct or deferred) after the lock call, scanning the function in
// source order and skipping nested function literals.
func firstUnlockAfter(p *Package, body *ast.BlockStmt, lk lockCall) (token.Pos, bool) {
	want := "Unlock"
	if lk.read {
		want = "RUnlock"
	}
	best := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= lk.call.End() {
			return true
		}
		if ul, ok := asMutexOp(p, call, want); ok && ul.key == lk.key {
			if best == token.NoPos || call.Pos() < best {
				best = call.Pos()
			}
		}
		return true
	})
	return best, best != token.NoPos
}

// firstReturnBetween finds a return statement in (lo, hi), skipping
// nested function literals.
func firstReturnBetween(body *ast.BlockStmt, lo, hi token.Pos) (token.Pos, bool) {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			if ret.Pos() > lo && ret.Pos() < hi && (found == token.NoPos || ret.Pos() < found) {
				found = ret.Pos()
			}
		}
		return true
	})
	return found, found != token.NoPos
}

// guardedRe extracts the mutex name from a "guarded by <mu>" field
// comment.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardedField is one struct field annotated "// guarded by <mu>".
type guardedField struct {
	structName string
	fieldName  string
	mu         string
}

// checkGuardedFields enforces the lock-guard rule: a field annotated
// "guarded by <mu>" may only be read or written by methods of its
// struct that acquire <mu> (Lock or RLock) somewhere in their body.
// Helpers documented as "caller holds mu" should carry a
// //lint:ignore lock-guard annotation.
func checkGuardedFields(p *Package, report reportFunc) {
	var guarded []guardedField
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				m := guardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					guarded = append(guarded, guardedField{
						structName: ts.Name.Name,
						fieldName:  name.Name,
						mu:         m[1],
					})
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvField := fd.Recv.List[0]
			if len(recvField.Names) == 0 {
				continue
			}
			recvObj := p.Info.Defs[recvField.Names[0]]
			if recvObj == nil {
				continue
			}
			recvType := receiverTypeName(recvField.Type)
			// One finding per (method, mutex) so a single
			// "caller holds mu" suppression covers the whole helper.
			touched := map[string][]string{} // mu -> field names
			for _, g := range guarded {
				if g.structName != recvType {
					continue
				}
				if fieldAccess(p, fd.Body, recvObj, g.fieldName) == token.NoPos {
					continue
				}
				if acquiresMutex(p, fd.Body, recvObj, g.mu) {
					continue
				}
				touched[g.mu] = append(touched[g.mu], g.fieldName)
			}
			mus := make([]string, 0, len(touched))
			for mu := range touched {
				mus = append(mus, mu)
			}
			sort.Strings(mus)
			for _, mu := range mus {
				report(fd.Name.Pos(), "lock-guard", fmt.Sprintf(
					"method %s touches field(s) %s of %s guarded by %s without acquiring it",
					fd.Name.Name, strings.Join(touched[mu], ", "), recvType, mu))
			}
		}
	}
}

// receiverTypeName unwraps *T / T receiver syntax to the type name.
func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverTypeName(t.X)
	}
	return ""
}

// fieldAccess returns the position of the first <recv>.<field>
// selector in body, or NoPos.
func fieldAccess(p *Package, body *ast.BlockStmt, recvObj types.Object, field string) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != field {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == recvObj {
			found = sel.Pos()
			return false
		}
		return true
	})
	return found
}

// acquiresMutex reports whether body contains <recv>.<mu>.Lock() or
// <recv>.<mu>.RLock().
func acquiresMutex(p *Package, body *ast.BlockStmt, recvObj types.Object, mu string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != mu {
			return true
		}
		if id, ok := muSel.X.(*ast.Ident); ok && p.Info.Uses[id] == recvObj {
			found = true
			return false
		}
		return true
	})
	return found
}
