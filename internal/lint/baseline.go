package lint

import (
	"encoding/json"
	"fmt"
	"os"
)

// A baseline is a committed snapshot of accepted findings: CI runs
// relaxlint against it and fails only on findings that are not in the
// snapshot, so a pre-existing debt item does not block unrelated
// changes while every *new* finding still does. Findings are matched
// by (file, rule, message) with multiset semantics — line and column
// are deliberately excluded so unrelated edits that shift a finding a
// few lines do not defeat the baseline, while a second instance of the
// same finding in the same file is still new.

// baselineFile is the on-disk schema (documented in DESIGN.md §12).
type baselineFile struct {
	Version  int          `json:"version"`
	Findings []Diagnostic `json:"findings"`
}

// baselineVersion is the current schema version.
const baselineVersion = 1

// WriteBaseline writes the findings as a baseline snapshot.
func WriteBaseline(path string, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.MarshalIndent(baselineFile{Version: baselineVersion, Findings: diags}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline snapshot.
func LoadBaseline(path string) ([]Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if f.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want %d", path, f.Version, baselineVersion)
	}
	return f.Findings, nil
}

// FilterBaseline removes findings covered by the baseline, consuming
// one baseline entry per match.
func FilterBaseline(diags, baseline []Diagnostic) []Diagnostic {
	if len(baseline) == 0 {
		return diags
	}
	budget := map[[3]string]int{}
	for _, b := range baseline {
		budget[[3]string{b.File, b.Rule, b.Message}]++
	}
	var out []Diagnostic
	for _, d := range diags {
		key := [3]string{d.File, d.Rule, d.Message}
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		out = append(out, d)
	}
	return out
}
