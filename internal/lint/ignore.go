package lint

import (
	"strings"
)

// ignoreIndex maps file → line → rule names suppressed at that line.
type ignoreIndex map[string]map[int][]string

// collectIgnores scans a package's comments for the suppression
// convention
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// and returns an index of suppressed (file, line, rule) triples. The
// comment suppresses matching findings on its own line and on the
// line directly below it, so both trailing and preceding placement
// work. A comment without a reason is reported as bad-ignore — the
// reason is the audit trail that makes suppressions reviewable.
func collectIgnores(p *Package, report reportFunc) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), "bad-ignore",
						`malformed suppression: want "//lint:ignore <rule> <reason>"`)
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = map[int][]string{}
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line],
					strings.Split(fields[0], ",")...)
			}
		}
	}
	return idx
}

// filterIgnored drops diagnostics suppressed by an ignore comment on
// the same line or the line above.
func filterIgnored(diags []Diagnostic, idx ignoreIndex) []Diagnostic {
	if len(idx) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignoredAt(idx, d.File, d.Line, d.Rule) || ignoredAt(idx, d.File, d.Line-1, d.Rule) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// ignoredAt reports whether rule is suppressed at file:line.
func ignoredAt(idx ignoreIndex, file string, line int, rule string) bool {
	for _, r := range idx[file][line] {
		if r == rule || r == "*" {
			return true
		}
	}
	return false
}
