package lint

import (
	"fmt"
	"strings"
)

// ignoreDirective is one rule name of one //lint:ignore comment.
// Directives naming several rules ("a,b") expand to one directive per
// rule so usage is tracked per pass.
type ignoreDirective struct {
	file string
	line int
	col  int
	rule string
	used bool
}

// ignoreIndex indexes directives by file and line for filtering, and
// keeps the flat list for unused-ignore reporting.
type ignoreIndex struct {
	byLine map[string]map[int][]*ignoreDirective
	all    []*ignoreDirective
}

// collectIgnores scans the matched packages' comments for the
// suppression convention
//
//	//lint:ignore <pass>[,<pass>...] <reason>
//
// and returns an index of suppressed (file, line, pass) triples. The
// comment suppresses matching findings on its own line and on the
// line directly below it, so both trailing and preceding placement
// work. Two malformations are reported as bad-ignore — a missing
// reason (the reason is the audit trail that makes suppressions
// reviewable) and a pass name that is not a known rule (which would
// otherwise suppress nothing, silently). Wildcards are deliberately
// not supported: every suppression names the pass it silences.
func collectIgnores(pkgs []*Package, report reportFunc) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int][]*ignoreDirective{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						report(c.Pos(), "bad-ignore",
							`malformed suppression: want "//lint:ignore <pass> <reason>"`)
						continue
					}
					pos := p.Fset.Position(c.Pos())
					for _, rule := range strings.Split(fields[0], ",") {
						if !knownRules[rule] {
							report(c.Pos(), "bad-ignore", fmt.Sprintf(
								"unknown pass %q in suppression; known passes: %s",
								rule, strings.Join(KnownRules(), ", ")))
							continue
						}
						d := &ignoreDirective{file: pos.Filename, line: pos.Line, col: pos.Column, rule: rule}
						if idx.byLine[d.file] == nil {
							idx.byLine[d.file] = map[int][]*ignoreDirective{}
						}
						idx.byLine[d.file][d.line] = append(idx.byLine[d.file][d.line], d)
						idx.all = append(idx.all, d)
					}
				}
			}
		}
	}
	return idx
}

// filterIgnored drops diagnostics suppressed by an ignore comment on
// the same line or the line above, marking every matching directive
// used.
func filterIgnored(diags []Diagnostic, idx *ignoreIndex) []Diagnostic {
	if len(idx.all) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		same := markIgnored(idx, d.File, d.Line, d.Rule)
		above := markIgnored(idx, d.File, d.Line-1, d.Rule)
		if same || above {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// markIgnored reports whether rule is suppressed at file:line, marking
// each matching directive used.
func markIgnored(idx *ignoreIndex, file string, line int, rule string) bool {
	hit := false
	for _, d := range idx.byLine[file][line] {
		if d.rule == rule {
			d.used = true
			hit = true
		}
	}
	return hit
}

// unusedIgnores reports every directive that suppressed nothing: a
// stale suppression either outlived the finding it justified or names
// the wrong pass, and both deserve a loud failure rather than silent
// rot.
func unusedIgnores(idx *ignoreIndex) []Diagnostic {
	var out []Diagnostic
	for _, d := range idx.all {
		if d.used {
			continue
		}
		out = append(out, Diagnostic{
			File: d.file,
			Line: d.line,
			Col:  d.col,
			Rule: "unused-ignore",
			Message: fmt.Sprintf(
				"//lint:ignore %s suppresses no finding; delete the directive or fix the pass name", d.rule),
		})
	}
	return out
}
