package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/experiments"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
)

// proofFor extracts and certifies one tree at one site count.
func proofFor(t *testing.T, pkgs []*Package, sites int) *SpecProof {
	t.Helper()
	proof, ok := SpecProofs(pkgs, sites)
	if !ok {
		t.Fatal("SpecProofs found no quorum/claim literals")
	}
	return proof
}

func verdictOf(t *testing.T, proof *SpecProof, table, rung string) SpecVerdict {
	t.Helper()
	for _, tbl := range proof.Tables {
		if tbl.Name != table {
			continue
		}
		for _, v := range tbl.Entries {
			if v.Rung == rung {
				return v
			}
		}
	}
	t.Fatalf("no verdict for %s[%q]", table, rung)
	return SpecVerdict{}
}

// TestSpecProofFixture pins the certifier's behavior over the
// self-contained quorumspec fixture: TaxiClaims certifies, and
// TaxiRungLevels's "Q1" entry is refuted with the exact mixed-rung
// witness (a weight-2 Deq initial quorum at rung Q1 and a weight-3 Enq
// final quorum at rung Q1Q2 need not intersect over 5 sites).
func TestSpecProofFixture(t *testing.T) {
	proof := proofFor(t, fixturePackages(t), 5)
	if proof.Sites != 5 || proof.Total != 5 {
		t.Errorf("sites/total = %d/%d, want 5/5", proof.Sites, proof.Total)
	}
	wantLadder := []string{"Q1Q2", "Q1", "none"}
	if len(proof.Ladder) != 3 {
		t.Fatalf("ladder = %v, want %v", proof.Ladder, wantLadder)
	}
	for i, r := range wantLadder {
		if proof.Ladder[i] != r {
			t.Errorf("ladder[%d] = %q, want %q", i, proof.Ladder[i], r)
		}
	}
	for rung, want := range map[string]string{"Q1Q2": "certified", "Q1": "trivial", "none": "trivial"} {
		if v := verdictOf(t, proof, "TaxiClaims", rung); v.Verdict != want {
			t.Errorf("TaxiClaims[%q] = %s, want %s", rung, v.Verdict, want)
		}
	}
	if v := verdictOf(t, proof, "TaxiRungLevels", "Q1Q2"); v.Verdict != "certified" {
		t.Errorf("TaxiRungLevels[Q1Q2] = %s, want certified", v.Verdict)
	}
	refuted := verdictOf(t, proof, "TaxiRungLevels", "Q1")
	if refuted.Verdict != "refuted" || refuted.Witness == nil {
		t.Fatalf("TaxiRungLevels[Q1] = %s (witness %v), want refuted with witness", refuted.Verdict, refuted.Witness)
	}
	w := *refuted.Witness
	want := SpecWitness{Constraint: "Q1", Inv: "Deq", InvRung: "Q1", Initial: 2, Op: "Enq", OpRung: "Q1Q2", Final: 3, Total: 5}
	if w != want {
		t.Errorf("witness = %+v, want %+v", w, want)
	}
	if refuted.File != "quorumspec/quorumspec.go" {
		t.Errorf("refuted entry file = %q, want quorumspec/quorumspec.go", refuted.File)
	}
}

// TestSpecProofRepository certifies the repository's own literals: the
// soak harness's TaxiClaims table is proved sound, its TaxiRungLevels
// foil is statically refuted with the same witness PR 5's soak (X06)
// discovered at runtime on step 462 — derived here without running a
// single step — and each rung's extracted thresholds realize exactly
// the single-rung constraints quorum.TaxiAssignments realizes.
func TestSpecProofRepository(t *testing.T) {
	proof := proofFor(t, repoPackages(t), 5)
	for rung, want := range map[string]string{"Q1Q2": "certified", "Q1": "trivial", "none": "trivial"} {
		if v := verdictOf(t, proof, "TaxiClaims", rung); v.Verdict != want {
			t.Errorf("TaxiClaims[%q] = %s, want %s", rung, v.Verdict, want)
		}
	}
	refuted := verdictOf(t, proof, "TaxiRungLevels", "Q1")
	if refuted.Verdict != "refuted" || refuted.Witness == nil {
		t.Fatalf("TaxiRungLevels[Q1] = %s, want refuted with witness", refuted.Verdict)
	}
	w := *refuted.Witness
	want := SpecWitness{Constraint: "Q1", Inv: "Deq", InvRung: "Q1", Initial: 2, Op: "Enq", OpRung: "Q1Q2", Final: 3, Total: 5}
	if w != want {
		t.Errorf("witness = %+v, want %+v", w, want)
	}
	if refuted.File != "internal/relaxcheck/soak.go" {
		t.Errorf("refuted entry file = %q, want internal/relaxcheck/soak.go", refuted.File)
	}
	wantRealizes := map[string][]string{
		"Q1Q2": {"Q1", "Q2"},
		"Q1":   {"Q1"},
		"Q2":   {"Q2"},
		"none": {},
	}
	if len(proof.Assignments) != len(wantRealizes) {
		t.Errorf("extracted %d assignments, want %d", len(proof.Assignments), len(wantRealizes))
	}
	for _, a := range proof.Assignments {
		want, ok := wantRealizes[a.Rung]
		if !ok {
			t.Errorf("unexpected assignment rung %q", a.Rung)
			continue
		}
		if fmt.Sprint(a.Realizes) != fmt.Sprint(want) {
			t.Errorf("rung %q realizes %v, want %v", a.Rung, a.Realizes, want)
		}
	}
}

// TestSpecProofJSONDeterministic asserts the proof artifact marshals
// identically across runs, so CI can diff it.
func TestSpecProofJSONDeterministic(t *testing.T) {
	a, err := json.Marshal(proofFor(t, fixturePackages(t), 5))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, err := json.Marshal(proofFor(t, fixturePackages(t), 5))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two certifications of the same tree marshaled differently")
	}
}

// TestSpecExtractionMatchesQuorumPackage is the extraction leg of the
// differential test: the thresholds and total weight the certifier
// reads out of the source text must equal what quorum.TaxiAssignments
// actually constructs, and the per-rung "realizes" sets must equal
// Voting.Satisfies against the real Q1/Q2 relations — for every site
// count the experiments exercise.
func TestSpecExtractionMatchesQuorumPackage(t *testing.T) {
	sitesSet := map[int]bool{experiments.Default().Sites: true}
	for n := 3; n <= 7; n++ {
		sitesSet[n] = true
	}
	rels := map[string]quorum.Relation{"Q1": quorum.Q1(), "Q2": quorum.Q2()}
	for n := range sitesSet {
		proof := proofFor(t, repoPackages(t), n)
		real := quorum.TaxiAssignments(n)
		if len(proof.Assignments) != len(real) {
			t.Errorf("n=%d: extracted %d assignments, quorum package has %d", n, len(proof.Assignments), len(real))
		}
		for _, a := range proof.Assignments {
			v, ok := real[a.Rung]
			if !ok {
				t.Errorf("n=%d: extracted rung %q not in quorum.TaxiAssignments", n, a.Rung)
				continue
			}
			if proof.Total != v.TotalWeight() {
				t.Errorf("n=%d rung %q: extracted total %d, real %d", n, a.Rung, proof.Total, v.TotalWeight())
			}
			for _, op := range a.Ops {
				q, ok := v.Quorums(op.Op)
				if !ok {
					t.Errorf("n=%d rung %q: extracted op %q not in real assignment", n, a.Rung, op.Op)
					continue
				}
				if op.Initial != q.Initial || op.Final != q.Final {
					t.Errorf("n=%d rung %q op %q: extracted {%d,%d}, real {%d,%d}",
						n, a.Rung, op.Op, op.Initial, op.Final, q.Initial, q.Final)
				}
			}
			realizes := map[string]bool{}
			for _, c := range a.Realizes {
				realizes[c] = true
			}
			for name, rel := range rels {
				if got, want := realizes[name], v.Satisfies(rel); got != want {
					t.Errorf("n=%d rung %q: extracted realizes[%s]=%v, Voting.Satisfies=%v", n, a.Rung, name, got, want)
				}
			}
		}
	}
}

// TestSpecVerdictsMatchWeakestAccepting is the semantic leg of the
// differential test: the certifier's verdict table must agree with the
// relaxation lattice's own notion of degradation. For each claim-table
// entry, recompute the mixed-rung intersection condition from the real
// quorum.TaxiAssignments values (not the extracted literals) at every
// experiment site count; the recomputed verdict must match speccheck's.
// Then confirm the runtime meaning of the one refutation: a history
// that violates Q1 — exactly what non-intersecting Deq-initial and
// Enq-final quorums admit — lands strictly below {Q1} in
// core.TaxiSimpleLattice's WeakestAccepting, so the forfeited claim is
// observable, not a formality.
func TestSpecVerdictsMatchWeakestAccepting(t *testing.T) {
	sitesSet := map[int]bool{experiments.Default().Sites: true}
	for n := 3; n <= 7; n++ {
		sitesSet[n] = true
	}
	rels := map[string]quorum.Relation{"Q1": quorum.Q1(), "Q2": quorum.Q2()}
	for n := range sitesSet {
		proof := proofFor(t, repoPackages(t), n)
		real := quorum.TaxiAssignments(n)
		// Joint guarantee at floor rung r: every claimed constraint's
		// pairs intersect across every ordered pair of active rungs.
		holdsJointly := func(floor int, name string) bool {
			rel := rels[name]
			for _, pr := range rel.Pairs() {
				for ai := 0; ai <= floor; ai++ {
					va := real[proof.Ladder[ai]]
					qi, _ := va.Quorums(string(pr.Inv))
					for bi := 0; bi <= floor; bi++ {
						vb := real[proof.Ladder[bi]]
						qf, _ := vb.Quorums(string(pr.Op))
						if qi.Initial+qf.Final <= va.TotalWeight() {
							return false
						}
					}
				}
			}
			return true
		}
		for _, tbl := range proof.Tables {
			for _, v := range tbl.Entries {
				floor := ladderIndex(proof.Ladder, v.Rung)
				if floor == len(proof.Ladder) {
					t.Fatalf("n=%d: verdict rung %q not on ladder %v", n, v.Rung, proof.Ladder)
				}
				want := "trivial"
				if len(v.Claims) > 0 {
					want = "certified"
					for _, c := range v.Claims {
						if !holdsJointly(floor, c) {
							want = "refuted"
							break
						}
					}
				}
				if v.Verdict != want {
					t.Errorf("n=%d %s[%q]: speccheck says %s, recomputation from quorum package says %s",
						n, tbl.Name, v.Rung, v.Verdict, want)
				}
			}
		}
	}
	// Runtime confirmation via the lattice. A Q1 violation (request 1
	// dequeued while the earlier, better request 2 is unserved) is
	// accepted only below {Q1}; a Q2 violation (request 1 served twice)
	// only below {Q2}. These are the behaviors the refuted mixed-rung
	// quorums admit, so WeakestAccepting must place them outside the
	// claimed sets.
	lat := core.TaxiSimpleLattice()
	u := lat.Universe
	q1 := u.Named(core.ConstraintQ1)
	q2 := u.Named(core.ConstraintQ2)
	cases := []struct {
		name    string
		h       history.History
		losing  string
		exclude uint64
	}{
		{"Q1-violation", history.History{history.Enq(2), history.Enq(1), history.DeqOk(1)}, "Q1", uint64(q1)},
		{"Q2-violation", history.History{history.Enq(1), history.DeqOk(1), history.DeqOk(1)}, "Q2", uint64(q2)},
	}
	for _, c := range cases {
		weakest, ok := lat.WeakestAccepting(c.h)
		if !ok {
			t.Fatalf("%s: no lattice element accepts %v", c.name, c.h)
		}
		for _, s := range weakest {
			if uint64(s)&c.exclude != 0 {
				t.Errorf("%s: WeakestAccepting includes %s, but the history violates %s", c.name, u.Format(s), c.losing)
			}
		}
	}
	// And a legal priority-order history (best = largest, served
	// first) — what the certified top rung promises — stays at the top
	// of the lattice.
	legal := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(1)}
	weakest, ok := lat.WeakestAccepting(legal)
	if !ok || len(weakest) != 1 || weakest[0] != u.All() {
		t.Errorf("legal priority-order history: WeakestAccepting = %v (ok=%v), want exactly {Q1,Q2}", weakest, ok)
	}
}
