package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wallClockFuncs are the time-package functions that read the wall
// clock. Model-layer code must take time as an explicit input (the
// discrete-event simulator's virtual clock, a parameter, a field).
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randConstructors are the math/rand functions that build an injected
// generator rather than consult global state. Constructing a seeded
// *rand.Rand (as internal/sim/rng.go does) is the sanctioned pattern,
// and method calls on such a receiver are always legal — only
// package-level functions backed by the global source are flagged.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// checkDeterminism applies the det-time, det-rand, and det-maporder
// rules to model-layer packages. Reproducibility of the bounded model
// checking (Theorem 4) and of the paper artifacts depends on these
// packages computing the same answer on every run.
func checkDeterminism(p *Package, cfg Config, report reportFunc) {
	if !pathMatches(p.Path, cfg.ModelPaths) {
		return
	}
	for _, f := range p.Files {
		// A SelectorExpr in call position (time.Now()) and one captured
		// as a value (clock := time.Now) both smuggle nondeterminism into
		// the model layer; the value form additionally defeats any purely
		// call-based check, so both are covered here. The sanctioned
		// alternative for time is an injected obs.Clock (a Lamport tick,
		// a schedule index — see internal/obs/clock.go).
		callFuns := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callFuns[call.Fun] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true // type or var reference, not a function
			}
			called := callFuns[sel]
			switch pn.Imported().Path() {
			case "time":
				if !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				if called {
					report(sel.Pos(), "det-time", fmt.Sprintf(
						"time.%s reads the wall clock; model-layer code must take time as an input", sel.Sel.Name))
				} else {
					report(sel.Pos(), "det-time", fmt.Sprintf(
						"time.%s captured as a function value still reads the wall clock; inject an obs.Clock instead", sel.Sel.Name))
				}
			case "math/rand", "math/rand/v2":
				if randConstructors[sel.Sel.Name] {
					return true
				}
				if called {
					report(sel.Pos(), "det-rand", fmt.Sprintf(
						"%s.%s draws from the global RNG; model-layer code must use an injected generator", id.Name, sel.Sel.Name))
				} else {
					report(sel.Pos(), "det-rand", fmt.Sprintf(
						"%s.%s captured as a function value draws from the global RNG; inject a generator instead", id.Name, sel.Sel.Name))
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrder(p, fd.Body, report)
		}
	}
}

// checkMapOrder flags range statements over maps whose iteration order
// escapes (via append, a channel send, or a return inside the loop
// body) when no sort call follows in the same function. Sorting after
// collection is the established repo idiom (see automaton.SortedKeys
// and Voting.Relation).
func checkMapOrder(p *Package, body *ast.BlockStmt, report reportFunc) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[rs.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				ranges = append(ranges, rs)
			}
		}
		return true
	})
	for _, rs := range ranges {
		if !mapOrderEscapes(p, rs) {
			continue
		}
		if sortCallAfter(body, rs.End()) {
			continue
		}
		report(rs.Pos(), "det-maporder",
			"map iteration order escapes the loop (append/send/return) with no subsequent sort")
	}
}

// mapOrderEscapes reports whether the loop body lets the (randomized)
// iteration order become observable. Three constructs preserve
// encounter order: appending to a slice that outlives the iteration,
// sending on a channel, and returning a value derived from the
// iteration variables. Order-independent patterns stay legal: folds
// (sums, max), writes keyed by the iteration variable (out[k] = ...),
// per-iteration slices that are consumed before the next key, and
// early-exit searches that return constants (found / not found).
func mapOrderEscapes(p *Package, rs *ast.RangeStmt) bool {
	iterObjs := rangeVarObjects(p, rs)
	escapes := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if len(x.Lhs) == len(x.Rhs) && appendTargetEscapes(p, rs, x.Lhs[i]) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			escapes = true
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if mentionsObjects(p, res, iterObjs) {
					escapes = true
				}
			}
		}
		return !escapes
	})
	return escapes
}

// appendTargetEscapes reports whether appending to target leaks
// iteration order out of the loop: appends into map entries are
// order-independent, and appends to slices declared inside the loop
// body stay within one iteration. Everything else (outer slices,
// struct fields) is conservatively an escape.
func appendTargetEscapes(p *Package, rs *ast.RangeStmt, target ast.Expr) bool {
	switch t := target.(type) {
	case *ast.IndexExpr:
		if tv, ok := p.Info.Types[t.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return false
			}
		}
		return true
	case *ast.Ident:
		obj := p.Info.Uses[t]
		if obj == nil {
			obj = p.Info.Defs[t]
		}
		if obj != nil && obj.Pos() > rs.Body.Pos() && obj.Pos() < rs.Body.End() {
			return false // per-iteration slice
		}
		return true
	}
	return true
}

// rangeVarObjects resolves the key/value loop variables to their
// types.Objects (empty for `for range m`).
func rangeVarObjects(p *Package, rs *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, expr := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := expr.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := p.Info.Defs[id]; obj != nil {
			objs[obj] = true
		} else if obj := p.Info.Uses[id]; obj != nil {
			objs[obj] = true
		}
	}
	return objs
}

// mentionsObjects reports whether expr references any of the given
// objects.
func mentionsObjects(p *Package, expr ast.Expr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[p.Info.Uses[id]] {
			found = true
		}
		return true
	})
	return found
}

// sortCallAfter reports whether any sort-like call (the sort or slices
// packages, or any function whose name mentions sorting) occurs after
// pos within the function body.
func sortCallAfter(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		name := ""
		switch f := call.Fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			if id, ok := f.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				found = true
				return false
			}
			name = f.Sel.Name
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			found = true
			return false
		}
		return true
	})
	return found
}
