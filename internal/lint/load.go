package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. File positions are relative to the module root.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// RelDir is the directory relative to the module root, "/"-separated
	// ("." for the root package).
	RelDir string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// rawPkg is a parsed-but-unchecked package during loading.
type rawPkg struct {
	path    string
	relDir  string
	files   []*ast.File
	imports []string // intra-module imports only
}

// Load parses and type-checks every package of the module rooted at
// root using only the standard library: go/parser for syntax, go/types
// with the source importer for semantics. _test.go files, testdata
// trees, vendored code, and nested modules are skipped. Packages are
// returned in deterministic (import-path) order.
func Load(root string) ([]*Package, error) {
	modPath, err := readModulePath(root)
	if err != nil {
		return nil, err
	}
	raws, fset, err := parseModule(root, modPath)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(raws)
	if err != nil {
		return nil, err
	}

	// The source importer resolves standard-library imports by
	// type-checking GOROOT sources; intra-module imports are resolved
	// from the packages checked so far (topological order guarantees
	// dependencies come first).
	checked := make(map[string]*types.Package, len(order))
	imp := &moduleImporter{std: importer.ForCompiler(fset, "source", nil), mod: checked}
	var pkgs []*Package
	for _, path := range order {
		raw := raws[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, raw.files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", path, err)
		}
		checked[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:   path,
			RelDir: raw.relDir,
			Fset:   fset,
			Files:  raw.files,
			Types:  tpkg,
			Info:   info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// readModulePath extracts the module path from root/go.mod.
func readModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// parseModule walks the module tree and parses every non-test Go file,
// grouping them into packages by directory. Filenames recorded in the
// FileSet are relative to root so diagnostics are position-stable.
func parseModule(root, modPath string) (map[string]*rawPkg, *token.FileSet, error) {
	fset := token.NewFileSet()
	raws := map[string]*rawPkg{}
	walkErr := filepath.WalkDir(root, func(dir string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" {
				return fs.SkipDir
			}
			if _, statErr := os.Stat(filepath.Join(dir, "go.mod")); statErr == nil {
				return fs.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		var files []*ast.File
		var imports []string
		for _, e := range entries {
			fname := e.Name()
			if e.IsDir() || !strings.HasSuffix(fname, ".go") || strings.HasSuffix(fname, "_test.go") {
				continue
			}
			full := filepath.Join(dir, fname)
			src, err := os.ReadFile(full)
			if err != nil {
				return err
			}
			rel, err := filepath.Rel(root, full)
			if err != nil {
				return err
			}
			f, err := parser.ParseFile(fset, filepath.ToSlash(rel), src, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("parse: %w", err)
			}
			files = append(files, f)
			for _, spec := range f.Imports {
				ipath := strings.Trim(spec.Path.Value, `"`)
				if ipath == modPath || strings.HasPrefix(ipath, modPath+"/") {
					imports = append(imports, ipath)
				}
			}
		}
		if len(files) == 0 {
			return nil
		}
		relDir, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		relDir = filepath.ToSlash(relDir)
		pkgPath := modPath
		if relDir != "." {
			pkgPath = modPath + "/" + relDir
		}
		raws[pkgPath] = &rawPkg{path: pkgPath, relDir: relDir, files: files, imports: imports}
		return nil
	})
	if walkErr != nil {
		return nil, nil, fmt.Errorf("lint: walking %s: %w", root, walkErr)
	}
	return raws, fset, nil
}

// topoSort orders packages so every intra-module dependency precedes
// its dependents, failing on import cycles.
func topoSort(raws map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(raws))
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(raws))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		raw := raws[path]
		deps := append([]string(nil), raw.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := raws[dep]; !ok {
				continue // import of a skipped dir (e.g. testdata); importer will fail if real
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from already-checked
// packages and everything else via the source importer.
type moduleImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}
