package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements det-taint: the interprocedural closure of the
// syntactic determinism passes. det-time and det-rand flag the wall
// clock and the global RNG where the offending selector appears; they
// provably miss the laundered forms — a helper in another package
// returning time.Now().UnixNano(), a value passed through an identity
// wrapper, a nondeterministic value parked in a struct field and read
// back later (the fixture module pins one such miss). det-taint tracks
// *values derived from* those sources through assignments, call
// returns, and struct fields across the whole module, and reports when
// one reaches model-package state:
//
//   - a call in a model package to any function whose result carries
//     taint (laundering through helpers), and
//   - a write of a tainted value into a struct field or package-level
//     variable from model-package code (laundering through state).
//
// The analysis is a module-wide fixpoint over per-function summaries.
// Each summary records, per result, the source kinds it always
// carries and the parameters it forwards, so taint flows through
// helper chains of any depth. Within a function, taint propagates
// through assignment chains in source order (iterated to a local
// fixpoint, so loops converge); struct fields are tracked by field
// object, object-insensitively — writing a tainted value into field F
// anywhere taints reads of F everywhere, which is exactly the
// conservative direction for a determinism audit. Function literals,
// interface method calls, and unknown (extra-module, non-source)
// callees are treated as clean: sources can only enter through the
// recognized time/rand functions and map iteration.
type taintKind uint8

const (
	taintTime taintKind = 1 << iota
	taintRand
	taintMapOrder
)

// describe renders the source kinds of a mask for diagnostics.
func (k taintKind) describe() string {
	var parts []string
	if k&taintTime != 0 {
		parts = append(parts, "the wall clock")
	}
	if k&taintRand != 0 {
		parts = append(parts, "the global RNG")
	}
	if k&taintMapOrder != 0 {
		parts = append(parts, "map iteration order")
	}
	return strings.Join(parts, " and ")
}

// taintMask carries source kinds plus symbolic per-parameter bits so a
// single intra-function pass yields both the concrete taint and the
// parameter-forwarding half of a summary. Parameter i of the function
// under analysis occupies bit i of params (capped at 32 parameters —
// far beyond anything in this module).
type taintMask struct {
	kinds  taintKind
	params uint32
}

func (m taintMask) or(o taintMask) taintMask {
	return taintMask{kinds: m.kinds | o.kinds, params: m.params | o.params}
}

func (m taintMask) zero() bool { return m.kinds == 0 && m.params == 0 }

// funcSummary describes how taint moves through one function.
type funcSummary struct {
	// results[i] is the taint of result i: source kinds it introduces
	// and the parameter bits it forwards.
	results []taintMask
}

// taintWorld is the module-wide analysis state.
type taintWorld struct {
	pkgs      []*Package
	summaries map[*types.Func]*funcSummary
	// state taint of struct fields and package-level variables, by
	// their types.Object.
	stateTaint map[types.Object]taintKind
	// decls locates each function's declaration for summary runs.
	decls map[*types.Func]*funcDecl
	order []*types.Func // deterministic iteration order
}

type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// checkTaint runs the det-taint pass: summaries over every package of
// the module, findings only in matched model packages.
func checkTaint(pkgs []*Package, inScope map[string]bool, cfg Config, report reportFunc) {
	w := &taintWorld{
		pkgs:       pkgs,
		summaries:  map[*types.Func]*funcSummary{},
		stateTaint: map[types.Object]taintKind{},
		decls:      map[*types.Func]*funcDecl{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w.decls[obj] = &funcDecl{pkg: p, decl: fd}
				w.order = append(w.order, obj)
			}
		}
	}
	sort.Slice(w.order, func(i, j int) bool {
		return w.decls[w.order[i]].pkg.Fset.Position(w.decls[w.order[i]].decl.Pos()).String() <
			w.decls[w.order[j]].pkg.Fset.Position(w.decls[w.order[j]].decl.Pos()).String()
	})
	// Global fixpoint: summaries and state taint grow monotonically, so
	// iterating until nothing changes terminates.
	for changed := true; changed; {
		changed = false
		for _, fn := range w.order {
			if w.summarize(fn) {
				changed = true
			}
		}
	}
	// Report phase: model packages only.
	for _, p := range pkgs {
		if !inScope[p.Path] || !pathMatches(p.Path, cfg.ModelPaths) {
			continue
		}
		for _, fn := range w.order {
			if w.decls[fn].pkg == p {
				w.reportFunc(fn, report)
			}
		}
	}
}

// paramObjects returns the parameter (and receiver, first) objects of
// a function declaration, in signature order.
func paramObjects(p *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// summarize recomputes one function's summary against the current
// world state; it reports whether the summary or the global state
// taint grew.
func (w *taintWorld) summarize(fn *types.Func) bool {
	d := w.decls[fn]
	a := newTaintAnalysis(w, d)
	a.run()
	sum := w.summaries[fn]
	if sum == nil {
		sum = &funcSummary{results: make([]taintMask, a.numResults)}
		w.summaries[fn] = sum
		// A fresh summary counts as a change only if it is non-empty.
	}
	changed := false
	for i := range sum.results {
		merged := sum.results[i].or(a.results[i])
		if merged != sum.results[i] {
			sum.results[i] = merged
			changed = true
		}
	}
	if a.stateChanged {
		changed = true
	}
	return changed
}

// taintAnalysis is one intra-function pass.
type taintAnalysis struct {
	w            *taintWorld
	p            *Package
	fd           *ast.FuncDecl
	params       map[types.Object]int // param object -> bit index
	local        map[types.Object]taintMask
	results      []taintMask
	numResults   int
	stateChanged bool
	// quiet suppresses sink findings while still propagating taint —
	// used for map-order escapes, whose in-function reports are
	// det-maporder's territory; det-taint only follows the value across
	// function boundaries.
	quiet bool
	// findings collects (pos, mask, what) sinks for the report phase.
	findings []taintFinding
}

type taintFinding struct {
	pos  token.Pos
	mask taintKind
	msg  string
}

func newTaintAnalysis(w *taintWorld, d *funcDecl) *taintAnalysis {
	a := &taintAnalysis{
		w:      w,
		p:      d.pkg,
		fd:     d.decl,
		params: map[types.Object]int{},
		local:  map[types.Object]taintMask{},
	}
	for i, obj := range paramObjects(d.pkg, d.decl) {
		if i < 32 {
			a.params[obj] = i
		}
	}
	if res := d.decl.Type.Results; res != nil {
		for _, field := range res.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			a.numResults += n
		}
	}
	a.results = make([]taintMask, a.numResults)
	return a
}

// run iterates the statement walk to a local fixpoint so taint carried
// backward by loops converges.
func (a *taintAnalysis) run() {
	for round := 0; round < 4; round++ {
		before := len(a.local)
		var grew bool
		a.walk(a.fd.Body, &grew)
		if !grew && len(a.local) == before {
			return
		}
	}
}

// walk processes statements, updating local taint, results, global
// state taint, and sink findings.
func (a *taintAnalysis) walk(body *ast.BlockStmt, grew *bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate function; conservatively clean
		case *ast.AssignStmt:
			a.assign(x, grew)
		case *ast.RangeStmt:
			a.rangeStmt(x, grew)
		case *ast.ReturnStmt:
			a.returnStmt(x, grew)
		case *ast.CallExpr:
			a.sortClears(x)
		}
		return true
	})
	// Bare returns with named results: fold the named-result objects'
	// final taint into the summary.
	if res := a.fd.Type.Results; res != nil {
		i := 0
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := a.p.Info.Defs[name]; obj != nil {
					m := a.results[i].or(a.local[obj])
					if m != a.results[i] {
						a.results[i] = m
						*grew = true
					}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
}

// assign propagates taint through one assignment and records state
// sinks (field and package-variable writes of tainted values).
func (a *taintAnalysis) assign(as *ast.AssignStmt, grew *bool) {
	masks := make([]taintMask, len(as.Lhs))
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment from a single call: every lhs gets the
		// call's corresponding result mask.
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			rm := a.callResults(call, len(as.Lhs))
			copy(masks, rm)
		}
	} else {
		for i := range as.Lhs {
			if i < len(as.Rhs) {
				masks[i] = a.exprMask(as.Rhs[i])
			}
		}
	}
	for i, lhs := range as.Lhs {
		a.store(lhs, masks[i], grew)
	}
}

// store writes a mask into an assignment target, tracking locals,
// fields, and package variables.
func (a *taintAnalysis) store(target ast.Expr, m taintMask, grew *bool) {
	switch t := target.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		obj := a.p.Info.Defs[t]
		if obj == nil {
			obj = a.p.Info.Uses[t]
		}
		if obj == nil {
			return
		}
		if isPackageVar(obj) {
			a.taintState(obj, m, t.Pos(), fmt.Sprintf("package variable %s", obj.Name()), grew)
			return
		}
		merged := a.local[obj].or(m)
		if merged != a.local[obj] {
			a.local[obj] = merged
			*grew = true
		}
	case *ast.SelectorExpr:
		if fieldObj := a.fieldOf(t); fieldObj != nil {
			a.taintState(fieldObj, m, t.Pos(), fmt.Sprintf("field %s", fieldLabel(fieldObj)), grew)
			return
		}
		// Selector that is not a field (e.g. other-package var).
		if id, ok := t.X.(*ast.Ident); ok {
			if _, isPkg := a.p.Info.Uses[id].(*types.PkgName); isPkg {
				if obj := a.p.Info.Uses[t.Sel]; obj != nil && isPackageVar(obj) {
					a.taintState(obj, m, t.Pos(), fmt.Sprintf("package variable %s", obj.Name()), grew)
				}
			}
		}
	case *ast.IndexExpr:
		a.store(t.X, m, grew) // container absorbs element taint
	case *ast.StarExpr:
		a.store(t.X, m, grew)
	case *ast.ParenExpr:
		a.store(t.X, m, grew)
	}
}

// taintState merges a mask into a field or package variable and, when
// the write happens in a model package with concrete source kinds,
// records a sink finding.
func (a *taintAnalysis) taintState(obj types.Object, m taintMask, pos token.Pos, what string, grew *bool) {
	concrete := m.kinds
	prev := a.w.stateTaint[obj]
	if merged := prev | concrete; merged != prev {
		a.w.stateTaint[obj] = merged
		a.stateChanged = true
		*grew = true
	}
	if concrete != 0 && !a.quiet {
		a.findings = append(a.findings, taintFinding{pos: pos, mask: concrete,
			msg: fmt.Sprintf("value derived from %s stored in %s", concrete.describe(), what)})
	}
}

// rangeStmt handles map ranges: appends of iteration-derived values
// into slices that outlive the loop make the slice order-tainted.
func (a *taintAnalysis) rangeStmt(rs *ast.RangeStmt, grew *bool) {
	tv, ok := a.p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Sort-after-collect is the sanctioned idiom (same carve-out as
	// det-maporder): a subsequent sort launders the order legitimately.
	if sortCallAfter(a.fd.Body, rs.End()) {
		return
	}
	iterObjs := rangeVarObjects(a.p, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			appendsIter := false
			for _, arg := range call.Args[1:] {
				if mentionsObjects(a.p, arg, iterObjs) {
					appendsIter = true
				}
			}
			if appendsIter && i < len(as.Lhs) && appendTargetEscapes(a.p, rs, as.Lhs[i]) {
				a.quiet = true
				a.store(as.Lhs[i], taintMask{kinds: taintMapOrder}, grew)
				a.quiet = false
			}
		}
		return true
	})
}

// sortClears removes the map-order bit from a slice passed to a
// sort-like call: sorting after collection is the sanctioned idiom.
func (a *taintAnalysis) sortClears(call *ast.CallExpr) {
	name := ""
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
			name = "sort"
		} else {
			name = f.Sel.Name
		}
	}
	if !strings.Contains(strings.ToLower(name), "sort") {
		return
	}
	for _, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		obj := a.p.Info.Uses[id]
		if obj == nil {
			continue
		}
		if m, ok := a.local[obj]; ok && m.kinds&taintMapOrder != 0 {
			m.kinds &^= taintMapOrder
			a.local[obj] = m
		}
	}
}

// returnStmt folds result expressions into the summary.
func (a *taintAnalysis) returnStmt(ret *ast.ReturnStmt, grew *bool) {
	if len(ret.Results) == 0 {
		return // named results folded in walk
	}
	if len(ret.Results) == 1 && a.numResults > 1 {
		if call, ok := ret.Results[0].(*ast.CallExpr); ok {
			for i, m := range a.callResults(call, a.numResults) {
				merged := a.results[i].or(m)
				if merged != a.results[i] {
					a.results[i] = merged
					*grew = true
				}
			}
			return
		}
	}
	for i, res := range ret.Results {
		if i >= len(a.results) {
			break
		}
		m := a.exprMask(res)
		merged := a.results[i].or(m)
		if merged != a.results[i] {
			a.results[i] = merged
			*grew = true
		}
	}
}

// exprMask computes the taint mask of an expression.
func (a *taintAnalysis) exprMask(e ast.Expr) taintMask {
	switch x := e.(type) {
	case *ast.Ident:
		obj := a.p.Info.Uses[x]
		if obj == nil {
			obj = a.p.Info.Defs[x]
		}
		if obj == nil {
			return taintMask{}
		}
		if bit, ok := a.params[obj]; ok {
			return taintMask{params: 1 << uint(bit)}
		}
		m := a.local[obj]
		m.kinds |= a.w.stateTaint[obj]
		return m
	case *ast.SelectorExpr:
		m := taintMask{}
		if fieldObj := a.fieldOf(x); fieldObj != nil {
			m.kinds |= a.w.stateTaint[fieldObj]
		}
		if obj := a.p.Info.Uses[x.Sel]; obj != nil && isPackageVar(obj) {
			m.kinds |= a.w.stateTaint[obj]
		}
		if _, isPkg := a.p.Info.Uses[identOf(x.X)].(*types.PkgName); !isPkg {
			m = m.or(a.exprMask(x.X))
		}
		return m
	case *ast.CallExpr:
		res := a.callResults(x, 1)
		return res[0]
	case *ast.BinaryExpr:
		return a.exprMask(x.X).or(a.exprMask(x.Y))
	case *ast.UnaryExpr:
		return a.exprMask(x.X)
	case *ast.ParenExpr:
		return a.exprMask(x.X)
	case *ast.StarExpr:
		return a.exprMask(x.X)
	case *ast.IndexExpr:
		return a.exprMask(x.X).or(a.exprMask(x.Index))
	case *ast.SliceExpr:
		return a.exprMask(x.X)
	case *ast.TypeAssertExpr:
		return a.exprMask(x.X)
	case *ast.CompositeLit:
		m := taintMask{}
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				vm := a.exprMask(kv.Value)
				m = m.or(vm)
				// A tainted value placed in a struct literal field taints
				// that field globally, same as an explicit field write.
				if id, ok := kv.Key.(*ast.Ident); ok {
					if fobj, ok := a.p.Info.Uses[id].(*types.Var); ok && fobj.IsField() {
						prev := a.w.stateTaint[fobj]
						if merged := prev | vm.kinds; merged != prev {
							a.w.stateTaint[fobj] = merged
							a.stateChanged = true
						}
					}
				}
			} else {
				m = m.or(a.exprMask(elt))
			}
		}
		return m
	}
	return taintMask{}
}

// callResults computes the per-result taint of a call: recognized
// sources introduce their kind; module functions apply their summary
// (substituting argument taint for forwarded parameters); conversions
// and builtins forward their operands; everything else is clean.
func (a *taintAnalysis) callResults(call *ast.CallExpr, want int) []taintMask {
	out := make([]taintMask, want)
	if kind := sourceKindOfCall(a.p, call); kind != 0 {
		for i := range out {
			out[i] = taintMask{kinds: kind}
		}
		return out
	}
	// Type conversion: T(x) forwards x.
	if tv, ok := a.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		m := a.exprMask(call.Args[0])
		for i := range out {
			out[i] = m
		}
		return out
	}
	callee := calleeFunc(a.p, call)
	if callee == nil {
		// Builtins (append, copy, ...) and unknown callees: forward the
		// union of argument taint for builtins, clean otherwise.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := a.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				m := taintMask{}
				for _, arg := range call.Args {
					m = m.or(a.exprMask(arg))
				}
				for i := range out {
					out[i] = m
				}
			}
		}
		return out
	}
	// Argument masks in receiver-first order, mirroring paramObjects.
	var args []taintMask
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isPkg := a.p.Info.Uses[identOf(sel.X)].(*types.PkgName); !isPkg {
			args = append(args, a.exprMask(sel.X)) // method receiver
		}
	}
	for _, arg := range call.Args {
		args = append(args, a.exprMask(arg))
	}
	sum := a.w.summaries[callee]
	if sum == nil {
		// Extra-module callee (stdlib, mostly): no summary, so forward
		// the union of receiver and argument taint — time.Now().UnixNano()
		// must stay tainted through the method call, and time.Unix(s, ns)
		// through its arguments. Sources can't *originate* here (those
		// are recognized above), taint only passes through.
		m := taintMask{}
		for _, am := range args {
			m = m.or(am)
		}
		for i := range out {
			out[i] = m
		}
		return out
	}
	for i := 0; i < want && i < len(sum.results); i++ {
		m := taintMask{kinds: sum.results[i].kinds}
		for bit := 0; bit < len(args) && bit < 32; bit++ {
			if sum.results[i].params&(1<<uint(bit)) != 0 {
				m = m.or(args[bit])
			}
		}
		out[i] = m
	}
	return out
}

// reportFunc re-runs the (converged) analysis for one model-package
// function and emits its sink findings plus laundered-call findings:
// calls whose results carry taint without a source selector at the
// call site.
func (w *taintWorld) reportFunc(fn *types.Func, report reportFunc) {
	d := w.decls[fn]
	a := newTaintAnalysis(w, d)
	a.run()
	seen := map[token.Pos]bool{}
	for _, f := range a.findings {
		if seen[f.pos] {
			continue
		}
		seen[f.pos] = true
		report(f.pos, "det-taint", f.msg+"; model-layer state must be deterministic")
	}
	// Laundered calls: a call in model code to a function summarized as
	// tainted. Direct source calls (time.Now()) are det-time/det-rand's
	// territory and are skipped here.
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sourceKindOfCall(a.p, call) != 0 {
			return true
		}
		callee := calleeFunc(a.p, call)
		if callee == nil {
			return true
		}
		sum := w.summaries[callee]
		if sum == nil {
			return true
		}
		kinds := taintKind(0)
		for _, r := range sum.results {
			kinds |= r.kinds
		}
		if kinds == 0 {
			return true
		}
		report(call.Pos(), "det-taint", fmt.Sprintf(
			"call to %s returns a value derived from %s; model-layer code must take such inputs explicitly",
			callee.Name(), kinds.describe()))
		return true
	})
}

// sourceKindOfCall recognizes the determinism sources in call
// position: the wall-clock readers and the global-RNG package
// functions (same sets the syntactic det-time/det-rand passes use).
func sourceKindOfCall(p *Package, call *ast.CallExpr) taintKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return 0
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return 0
	}
	switch pn.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			return taintTime
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			return taintRand
		}
	}
	return 0
}

// calleeFunc resolves a call to a statically-known *types.Func (plain
// function or concrete method). Interface methods resolve to a
// *types.Func too, but have no body in w.decls and therefore no
// summary, which keeps them conservatively clean.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// fieldOf resolves a selector to the struct field object it denotes,
// or nil.
func (a *taintAnalysis) fieldOf(sel *ast.SelectorExpr) types.Object {
	if s, ok := a.p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// isPackageVar reports whether obj is a package-level variable.
func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if obj.Parent() == nil {
		return false
	}
	pkg := obj.Pkg()
	return pkg != nil && obj.Parent() == pkg.Scope()
}

// fieldLabel renders a field as Type.name when the owning struct is a
// named type.
func fieldLabel(obj types.Object) string {
	return obj.Name()
}

// identOf unwraps an expression to its base identifier, or nil.
func identOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
