package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkSpecPurity applies the spec-purity rule to the specification
// catalog: the transition functions behind every automaton returned by
// specs.All (and anything else in a spec package) must not write
// package-level state. A spec that mutates a global would make
// automaton.Language and the lattice comparisons depend on call
// history, silently invalidating the Theorem 4 check. Reads are fine;
// writes (assignment, indexed assignment through a global, ++/--) are
// findings.
func checkSpecPurity(p *Package, cfg Config, report reportFunc) {
	if !pathMatches(p.Path, cfg.SpecPaths) {
		return
	}
	pkgVars := map[types.Object]bool{}
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		if v, ok := scope.Lookup(name).(*types.Var); ok {
			pkgVars[v] = true
		}
	}
	if len(pkgVars) == 0 {
		return
	}
	flag := func(target ast.Expr) {
		id := rootIdent(target)
		if id == nil {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil || !pkgVars[obj] {
			return
		}
		report(target.Pos(), "spec-purity", fmt.Sprintf(
			"spec package function writes package-level variable %s; specs must be pure", id.Name))
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						flag(lhs)
					}
				case *ast.IncDecStmt:
					flag(x.X)
				}
				return true
			})
		}
	}
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier of an assignment target.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.ParenExpr:
			expr = x.X
		default:
			return nil
		}
	}
}
