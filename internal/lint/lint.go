// Package lint implements relaxlint, a stdlib-only static analyzer
// that enforces the repository's two load-bearing disciplines: the
// model layer (automata, lattices, specs, histories, quorum logic)
// must be deterministic and pure so that the bounded model checking of
// Theorem 4 and the paper artifacts is reproducible run-to-run, and
// the operational layer (transactions, cluster simulation, commit
// protocols) must follow a strict locking discipline so the
// concurrency results are trustworthy.
//
// Four rule families are implemented:
//
//   - determinism (det-time, det-rand, det-maporder): model-layer
//     packages must not read the wall clock, use the global RNG, or
//     let map iteration order escape into slices/returns unsorted.
//   - lock discipline (lock-balance, lock-guard): a mutex Lock must be
//     released on every path, and fields annotated "guarded by <mu>"
//     must only be touched by methods that acquire <mu>.
//   - error discipline (err-drop): error results must not be discarded
//     with a blank identifier outside _test.go files.
//   - spec purity (spec-purity): functions in the specification
//     catalog must not write package-level state.
//
// Any finding can be suppressed with a comment on the same line or
// the line above:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a missing reason is itself reported
// (bad-ignore). "*" suppresses every rule on the target line.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned relative to the module root.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the canonical file:line:col: [rule]
// message format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config selects which packages the path-scoped rule families apply
// to. Paths are import-path suffixes (matched on "/" boundaries), so
// the defaults apply equally to this module and to fixture modules
// that mirror its layout.
type Config struct {
	// ModelPaths are the packages held to the determinism rules.
	ModelPaths []string
	// SpecPaths are the packages held to the spec-purity rule.
	SpecPaths []string
}

// DefaultConfig returns the repository's rule scoping: the nine
// model-layer packages (including the observability substrate, whose
// logical-clock journal must itself stay wall-clock-free; the
// resilience layer, whose retry timing and jitter must come from the
// simulated clock and injected RNG alone; and the online relaxation
// checker, whose verdicts certify byte-identical soak replays) and the
// specification catalog.
func DefaultConfig() Config {
	return Config{
		ModelPaths: []string{
			"internal/automaton",
			"internal/lattice",
			"internal/specs",
			"internal/core",
			"internal/history",
			"internal/quorum",
			"internal/obs",
			"internal/resilience",
			"internal/relaxcheck",
		},
		SpecPaths: []string{"internal/specs"},
	}
}

// reportFunc receives raw findings from the rule implementations.
type reportFunc func(pos token.Pos, rule, msg string)

// Run loads every package of the module rooted at root, applies the
// rules to packages matched by patterns ("./..." style, relative to
// root), filters suppressed findings, and returns the remainder
// sorted by position.
func Run(root string, cfg Config, patterns []string) ([]Diagnostic, error) {
	pkgs, err := Load(root)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	matched := 0
	for _, p := range pkgs {
		if !matchPattern(p.RelDir, patterns) {
			continue
		}
		matched++
		report := func(pos token.Pos, rule, msg string) {
			position := p.Fset.Position(pos)
			diags = append(diags, Diagnostic{
				File:    position.Filename,
				Line:    position.Line,
				Col:     position.Column,
				Rule:    rule,
				Message: msg,
			})
		}
		ignores := collectIgnores(p, report)
		n := len(diags)
		checkDeterminism(p, cfg, report)
		checkLocks(p, report)
		checkErrDiscipline(p, report)
		checkSpecPurity(p, cfg, report)
		diags = append(diags[:n], filterIgnored(diags[n:], ignores)...)
	}
	// A pattern that selects nothing is almost always a typo; failing
	// loudly keeps a mistyped CI invocation from passing vacuously.
	if matched == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// matchPattern reports whether a package directory (relative to the
// module root, "." for the root package) is selected by any pattern.
// Supported forms: "./...", "dir/...", "dir", and "." — with or
// without a leading "./".
func matchPattern(rel string, patterns []string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == "":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case rel == pat:
			return true
		}
	}
	return false
}

// pathMatches reports whether an import path ends with one of the
// configured suffixes on a path-segment boundary.
func pathMatches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
