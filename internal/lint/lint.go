// Package lint implements relaxlint, a stdlib-only static analyzer
// that enforces the repository's two load-bearing disciplines: the
// model layer (automata, lattices, specs, histories, quorum logic)
// must be deterministic and pure so that the bounded model checking of
// Theorem 4 and the paper artifacts is reproducible run-to-run, and
// the operational layer (transactions, cluster simulation, commit
// protocols) must follow a strict locking discipline so the
// concurrency results are trustworthy.
//
// Seven rule families are implemented:
//
//   - determinism (det-time, det-rand, det-maporder): model-layer
//     packages must not read the wall clock, use the global RNG, or
//     let map iteration order escape into slices/returns unsorted.
//   - determinism taint (det-taint): the interprocedural closure of
//     the same discipline — values derived from the wall clock, the
//     global RNG, or map iteration order anywhere in the module are
//     tracked through assignments, returns, and struct fields, and
//     reported when they reach model-package state through helpers the
//     syntactic passes cannot see.
//   - lock discipline (lock-balance, lock-guard): a mutex Lock must be
//     released on every path, and fields annotated "guarded by <mu>"
//     must only be touched by methods that acquire <mu>.
//   - lock ordering (lock-order): the module-wide lock-acquisition
//     graph (built from guarded-by annotations plus observed
//     Lock/Unlock nesting, closed over direct calls) must be acyclic;
//     cycles are potential deadlocks.
//   - error discipline (err-drop): error results must not be discarded
//     with a blank identifier outside _test.go files.
//   - spec purity (spec-purity): functions in the specification
//     catalog must not write package-level state.
//   - quorum certification (speccheck): the quorum-assignment and
//     claim-table literals must satisfy the paper's quorum
//     intersection side conditions — see speccheck.go.
//
// Any finding can be suppressed with a comment on the same line or
// the line above:
//
//	//lint:ignore <pass>[,<pass>...] <reason>
//
// The pass name must be one of the rule names above and the reason is
// mandatory; a missing reason or an unknown pass name is itself
// reported (bad-ignore), and a directive that suppresses nothing is
// reported too (unused-ignore) so stale suppressions cannot linger.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned relative to the module root.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding in the canonical file:line:col: [rule]
// message format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// knownRules is the set of pass names a //lint:ignore directive may
// suppress. The meta diagnostics bad-ignore and unused-ignore are
// deliberately absent: suppression machinery cannot suppress itself.
var knownRules = map[string]bool{
	"det-time":     true,
	"det-rand":     true,
	"det-maporder": true,
	"det-taint":    true,
	"lock-balance": true,
	"lock-guard":   true,
	"lock-order":   true,
	"err-drop":     true,
	"spec-purity":  true,
	"speccheck":    true,
}

// KnownRules returns the suppressible pass names, sorted.
func KnownRules() []string {
	out := make([]string, 0, len(knownRules))
	for r := range knownRules {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Config selects which packages the path-scoped rule families apply
// to. Paths are import-path suffixes (matched on "/" boundaries), so
// the defaults apply equally to this module and to fixture modules
// that mirror its layout.
type Config struct {
	// ModelPaths are the packages held to the determinism rules
	// (det-time, det-rand, det-maporder, det-taint).
	ModelPaths []string
	// SpecPaths are the packages held to the spec-purity rule.
	SpecPaths []string
	// Sites is the replica count at which the speccheck pass evaluates
	// the quorum intersection side conditions. Non-positive takes 5,
	// the soak harness's cluster size.
	Sites int
}

// DefaultConfig returns the repository's rule scoping: the ten
// model-layer packages (including the observability substrate and its
// causal span tracer, whose logical-clock journal and span IDs must
// themselves stay wall-clock-free; the
// resilience layer, whose retry timing and jitter must come from the
// simulated clock and injected RNG alone; and the online relaxation
// checker, whose verdicts certify byte-identical soak replays) and the
// specification catalog.
//
// internal/conc is deliberately absent: it is the runtime concurrency
// layer — lock-free structures whose schedules are inherently
// nondeterministic and whose guarantees are certified after the fact
// by relaxcheck over recorded histories, not pinned by lint. Its
// per-shard sampling state is seeded only so single-threaded witness
// schedules replay; holding it to det-time/det-rand would outlaw the
// very nondeterminism the lattice exists to classify. The
// path-unscoped families (lock discipline, error discipline) still
// apply to it in full.
//
// internal/relaxd is absent for the same reason: it is the networked
// runtime — real sockets, real deadlines, real fsyncs — whose
// correctness is held to the deterministic cluster by differential
// tests and to the lattice by the online checker, not by determinism
// lint. Lock and error discipline apply to it in full.
func DefaultConfig() Config {
	return Config{
		ModelPaths: []string{
			"internal/automaton",
			"internal/lattice",
			"internal/specs",
			"internal/core",
			"internal/history",
			"internal/quorum",
			"internal/obs",
			"internal/obs/trace",
			"internal/resilience",
			"internal/relaxcheck",
		},
		SpecPaths: []string{"internal/specs"},
		Sites:     5,
	}
}

// reportFunc receives raw findings from the rule implementations.
type reportFunc func(pos token.Pos, rule, msg string)

// Run loads every package of the module rooted at root, applies the
// rules to packages matched by patterns ("./..." style, relative to
// root), filters suppressed findings, and returns the remainder
// sorted by position.
func Run(root string, cfg Config, patterns []string) ([]Diagnostic, error) {
	pkgs, err := Load(root)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, cfg, patterns)
}

// RunPackages applies the rules to already-loaded packages (see Load).
// Splitting loading from analysis lets callers that need several
// analyses over one module — the CLI emitting both findings and the
// speccheck proof artifact, or the test suite — typecheck it once.
func RunPackages(pkgs []*Package, cfg Config, patterns []string) ([]Diagnostic, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 5
	}
	var matched []*Package
	inScope := map[string]bool{}
	for _, p := range pkgs {
		if matchPattern(p.RelDir, patterns) {
			matched = append(matched, p)
			inScope[p.Path] = true
		}
	}
	// A pattern that selects nothing is almost always a typo; failing
	// loudly keeps a mistyped CI invocation from passing vacuously.
	if len(matched) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	fset := matched[0].Fset
	var diags []Diagnostic
	report := func(pos token.Pos, rule, msg string) {
		position := fset.Position(pos)
		diags = append(diags, Diagnostic{
			File:    position.Filename,
			Line:    position.Line,
			Col:     position.Column,
			Rule:    rule,
			Message: msg,
		})
	}
	// Per-package passes see one package at a time.
	for _, p := range matched {
		checkDeterminism(p, cfg, report)
		checkLocks(p, report)
		checkErrDiscipline(p, report)
		checkSpecPurity(p, cfg, report)
	}
	// Module-wide passes build summaries over every package of the
	// module (taint and lock acquisition flow through unmatched helper
	// packages too) but report findings only inside matched packages.
	checkTaint(pkgs, inScope, cfg, report)
	checkLockOrder(pkgs, inScope, report)
	checkSpecIntersections(pkgs, inScope, cfg, report)

	idx := collectIgnores(matched, report)
	diags = filterIgnored(diags, idx)
	diags = append(diags, unusedIgnores(idx)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// matchPattern reports whether a package directory (relative to the
// module root, "." for the root package) is selected by any pattern.
// Supported forms: "./...", "dir/...", "dir", and "." — with or
// without a leading "./".
func matchPattern(rel string, patterns []string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == "":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case rel == pat:
			return true
		}
	}
	return false
}

// pathMatches reports whether an import path ends with one of the
// configured suffixes on a path-segment boundary.
func pathMatches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
