package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements lock-order: deadlock-freedom by acquisition
// ordering. Two locks that are ever nested in opposite orders by two
// code paths can deadlock under the right interleaving, even when
// every individual function is perfectly lock-balanced. The pass
// builds the module-wide lock-acquisition graph and reports each
// strongly connected component as a potential deadlock.
//
// Nodes are lock identities — a mutex field ("cluster.Cluster.mu") or
// a package-level mutex variable ("obs.pool"). Locals are skipped:
// a function-scoped mutex has no cross-function identity to order.
//
// Edges come from two observations, closed over the static call graph:
//
//   - observed nesting: while lock A's held interval is open (from a
//     Lock/RLock to its source-order Unlock, or to the end of the
//     function for the defer idiom), a direct acquisition of B adds
//     A → B;
//   - call summaries: a call to f while holding A adds A → X for every
//     lock X that f may acquire (transitively through the functions it
//     calls). "guarded by <mu>" annotations extend the summaries: a
//     method that touches a guarded field without acquiring the guard
//     is a caller-holds helper, so its callers must hold <mu> — the
//     summary records <mu> as held-through-call, except that holding
//     exactly <mu> at the call site is the sanctioned pattern and adds
//     no self edge.
//
// A direct re-acquisition of a lock inside its own held interval is a
// self edge — sync.Mutex is not reentrant, so that cycle of length one
// is a guaranteed self-deadlock, not just a potential one.
//
// Like the other module-wide passes, summaries span every package of
// the module; findings are reported only in matched packages, once per
// cycle, at the earliest in-scope edge site.

// lockEdge is one observed A-before-B acquisition, keyed by the first
// site that exhibits it.
type lockEdge struct {
	pos     token.Pos
	inScope bool
}

// lockOrderWorld accumulates the module-wide graph.
type lockOrderWorld struct {
	// summaries maps each function to the set of lock names it may
	// acquire (or require held), transitively.
	summaries map[*types.Func]map[string]bool
	decls     map[*types.Func]*funcDecl
	order     []*types.Func
	edges     map[string]map[string]lockEdge
}

func checkLockOrder(pkgs []*Package, inScope map[string]bool, report reportFunc) {
	w := &lockOrderWorld{
		summaries: map[*types.Func]map[string]bool{},
		decls:     map[*types.Func]*funcDecl{},
		edges:     map[string]map[string]lockEdge{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w.decls[obj] = &funcDecl{pkg: p, decl: fd}
				w.order = append(w.order, obj)
			}
		}
	}
	sort.Slice(w.order, func(i, j int) bool {
		di, dj := w.decls[w.order[i]], w.decls[w.order[j]]
		return di.pkg.Fset.Position(di.decl.Pos()).String() < dj.pkg.Fset.Position(dj.decl.Pos()).String()
	})
	// Seed summaries: direct acquisitions plus annotation-implied
	// requirements.
	for _, fn := range w.order {
		d := w.decls[fn]
		acq := map[string]bool{}
		for _, name := range directAcquisitions(d.pkg, d.decl.Body) {
			acq[name] = true
		}
		for _, name := range impliedGuards(d.pkg, d.decl) {
			acq[name] = true
		}
		w.summaries[fn] = acq
	}
	// Close summaries over the call graph.
	for changed := true; changed; {
		changed = false
		for _, fn := range w.order {
			d := w.decls[fn]
			sum := w.summaries[fn]
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(d.pkg, call)
				if callee == nil {
					return true
				}
				for name := range w.summaries[callee] {
					if !sum[name] {
						sum[name] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	// Edge construction from held intervals.
	for _, fn := range w.order {
		w.addEdges(fn, inScope)
	}
	w.reportCycles(report)
}

// lockNameForExpr canonicalizes the receiver expression of a mutex
// operation into a cross-function lock identity, or reports that the
// lock has none (locals).
func lockNameForExpr(p *Package, e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return lockNameForExpr(p, x.X)
	case *ast.SelectorExpr:
		tv, ok := p.Info.Types[x.X]
		if !ok || tv.Type == nil {
			return "", false
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", false
		}
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name, true
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj == nil || !isPackageVar(obj) {
			return "", false
		}
		return p.Types.Name() + "." + x.Name, true
	}
	return "", false
}

// directAcquisitions lists the lock names a function body acquires
// with Lock/RLock, skipping function literals.
func directAcquisitions(p *Package, body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := asMutexOp(p, call, "Lock", "RLock"); !ok {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		if name, ok := lockNameForExpr(p, sel.X); ok {
			out = append(out, name)
		}
		return true
	})
	return out
}

// impliedGuards lists the guard names a method requires without
// acquiring them: it touches a "guarded by <mu>" field of its receiver
// but never locks <mu>, so by the lock-guard contract its caller holds
// the guard across the call.
func impliedGuards(p *Package, fd *ast.FuncDecl) []string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recvObj := p.Info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return nil
	}
	recvType := receiverTypeName(fd.Recv.List[0].Type)
	var out []string
	for _, g := range guardedFieldsOf(p) {
		if g.structName != recvType {
			continue
		}
		if fieldAccess(p, fd.Body, recvObj, g.fieldName) == token.NoPos {
			continue
		}
		if acquiresMutex(p, fd.Body, recvObj, g.mu) {
			continue
		}
		out = append(out, p.Types.Name()+"."+g.structName+"."+g.mu)
	}
	return out
}

// guardedFieldsOf collects the package's "guarded by" annotations.
func guardedFieldsOf(p *Package) []guardedField {
	var guarded []guardedField
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				m := guardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					guarded = append(guarded, guardedField{
						structName: ts.Name.Name,
						fieldName:  name.Name,
						mu:         m[1],
					})
				}
			}
			return true
		})
	}
	return guarded
}

// heldInterval is one source-order span during which a named lock is
// held.
type heldInterval struct {
	name   string
	lo, hi token.Pos
}

// heldIntervals computes the held spans of a function body: a Lock
// followed by a defer Unlock holds to the end of the body; otherwise
// to the first matching unlock in source order (end of body if none —
// lock-balance reports that separately).
func heldIntervals(p *Package, body *ast.BlockStmt) []heldInterval {
	var out []heldInterval
	for _, list := range stmtLists(body) {
		for i, stmt := range list {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			lk, ok := asMutexOp(p, call, "Lock", "RLock")
			if !ok {
				continue
			}
			name, ok := lockNameForExpr(p, call.Fun.(*ast.SelectorExpr).X)
			if !ok {
				continue
			}
			hi := body.End()
			if !(i+1 < len(list) && isDeferUnlock(p, list[i+1], lk)) {
				if pos, found := firstUnlockAfter(p, body, lk); found {
					hi = pos
				}
			}
			out = append(out, heldInterval{name: name, lo: call.End(), hi: hi})
		}
	}
	return out
}

// addEdges records the acquisition edges one function exhibits.
func (w *lockOrderWorld) addEdges(fn *types.Func, inScope map[string]bool) {
	d := w.decls[fn]
	intervals := heldIntervals(d.pkg, d.decl.Body)
	if len(intervals) == 0 {
		return
	}
	scoped := inScope[d.pkg.Path]
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := asMutexOp(d.pkg, call, "Lock", "RLock"); ok {
			name, ok := lockNameForExpr(d.pkg, call.Fun.(*ast.SelectorExpr).X)
			if !ok {
				return true
			}
			for _, iv := range intervals {
				if call.Pos() > iv.lo && call.Pos() < iv.hi {
					w.edge(iv.name, name, call.Pos(), scoped)
				}
			}
			return true
		}
		if _, isUnlock := asMutexOp(d.pkg, call, "Unlock", "RUnlock"); isUnlock {
			return true
		}
		callee := calleeFunc(d.pkg, call)
		if callee == nil {
			return true
		}
		sum := w.summaries[callee]
		if len(sum) == 0 {
			return true
		}
		for _, iv := range intervals {
			if call.Pos() <= iv.lo || call.Pos() >= iv.hi {
				continue
			}
			for name := range sum {
				// Holding exactly the lock a caller-holds helper requires
				// is the sanctioned pattern, not a self edge; only a
				// *direct* re-Lock (handled above) is a self-deadlock.
				if name != iv.name {
					w.edge(iv.name, name, call.Pos(), scoped)
				}
			}
		}
		return true
	})
}

// edge records A → B, keeping the earliest site (preferring in-scope
// sites so the report lands somewhere the caller selected).
func (w *lockOrderWorld) edge(a, b string, pos token.Pos, inScope bool) {
	m := w.edges[a]
	if m == nil {
		m = map[string]lockEdge{}
		w.edges[a] = m
	}
	prev, ok := m[b]
	if !ok || (inScope && !prev.inScope) || (inScope == prev.inScope && pos < prev.pos) {
		m[b] = lockEdge{pos: pos, inScope: inScope}
	}
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports each one once, deterministically.
func (w *lockOrderWorld) reportCycles(report reportFunc) {
	nodes := make([]string, 0, len(w.edges))
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for a, m := range w.edges {
		addNode(a)
		for b := range m {
			addNode(b)
		}
	}
	sort.Strings(nodes)
	adj := map[string][]string{}
	for a, m := range w.edges {
		for b := range m {
			adj[a] = append(adj[a], b)
		}
		sort.Strings(adj[a])
	}
	for _, scc := range stronglyConnected(nodes, adj) {
		isCycle := len(scc) > 1
		if len(scc) == 1 {
			if _, self := w.edges[scc[0]][scc[0]]; self {
				isCycle = true
			}
		}
		if !isCycle {
			continue
		}
		// Earliest in-scope edge inside the component anchors the report.
		best := token.NoPos
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		for _, a := range scc {
			for b, e := range w.edges[a] {
				if inSCC[b] && e.inScope && (best == token.NoPos || e.pos < best) {
					best = e.pos
				}
			}
		}
		if best == token.NoPos {
			continue // cycle entirely outside the matched packages
		}
		report(best, "lock-order", fmt.Sprintf(
			"lock acquisition cycle %s (potential deadlock); impose a single acquisition order",
			cyclePath(scc, adj)))
	}
}

// cyclePath renders a concrete cycle through the component, starting
// at its lexicographically smallest lock.
func cyclePath(scc []string, adj map[string][]string) string {
	sorted := append([]string(nil), scc...)
	sort.Strings(sorted)
	start := sorted[0]
	inSCC := map[string]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	// DFS from start back to start, visiting SCC nodes, neighbors in
	// sorted order: deterministic and guaranteed to close (every SCC
	// node lies on a cycle through the component).
	var path []string
	var dfs func(n string, visited map[string]bool) bool
	dfs = func(n string, visited map[string]bool) bool {
		path = append(path, n)
		for _, next := range adj[n] {
			if next == start && len(path) >= 1 {
				if len(path) > 1 || contains(adj[n], start) {
					return true
				}
			}
			if inSCC[next] && !visited[next] {
				visited[next] = true
				if dfs(next, visited) {
					return true
				}
				delete(visited, next)
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(start, map[string]bool{start: true}) {
		return strings.Join(append(path, start), " -> ")
	}
	// Fallback (should not happen for a genuine SCC): list the locks.
	return strings.Join(sorted, " -> ")
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// stronglyConnected is Tarjan's algorithm over a deterministic node
// order.
func stronglyConnected(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wn := range adj[v] {
			if _, seen := index[wn]; !seen {
				strong(wn)
				if low[wn] < low[v] {
					low[v] = low[wn]
				}
			} else if onStack[wn] && index[wn] < low[v] {
				low[v] = index[wn]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				n := len(stack) - 1
				wn := stack[n]
				stack = stack[:n]
				onStack[wn] = false
				scc = append(scc, wn)
				if wn == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}
