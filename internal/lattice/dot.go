package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the relaxation lattice's Hasse diagram in Graphviz DOT
// format: one node per constraint set in φ's domain (labeled with the
// set and its behavior), with an edge from each set to every maximal
// proper subset in the domain (covering relation), strongest at the
// top.
func (r *Relaxation) DOT() string {
	domain := r.Domain()
	inDomain := map[Set]bool{}
	for _, s := range domain {
		inDomain[s] = true
	}
	ids := map[Set]int{}
	for i, s := range domain {
		ids[s] = i
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", r.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, s := range domain {
		a, _ := r.Phi(s)
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\"];\n", ids[s], r.Universe.Format(s), a.Name())
	}
	for _, s := range domain {
		for _, t := range covers(s, domain) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ids[s], ids[t])
		}
	}
	// Rank sets of equal size together so the drawing is layered.
	bySize := map[int][]Set{}
	for _, s := range domain {
		bySize[s.Size()] = append(bySize[s.Size()], s)
	}
	var sizes []int
	for n := range bySize {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	for _, n := range sizes {
		var names []string
		for _, s := range bySize[n] {
			names = append(names, fmt.Sprintf("n%d", ids[s]))
		}
		fmt.Fprintf(&b, "  { rank=same; %s }\n", strings.Join(names, "; "))
	}
	b.WriteString("}\n")
	return b.String()
}

// covers returns the sets t ⊂ s in the domain with no u in the domain
// strictly between them — the Hasse covering relation.
func covers(s Set, domain []Set) []Set {
	var out []Set
	for _, t := range domain {
		if t == s || !t.SubsetOf(s) {
			continue
		}
		covered := true
		for _, u := range domain {
			if u != s && u != t && t.SubsetOf(u) && u.SubsetOf(s) {
				covered = false
				break
			}
		}
		if covered {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
