package lattice

import (
	"fmt"

	"relaxlattice/internal/automaton"
)

// Element statuses in a StepChecker snapshot.
const (
	// StatusAlive: the element's frontier still accepts the history;
	// States carries its state-set class.
	StatusAlive = "alive"
	// StatusDead: the element rejected some prefix (permanently —
	// languages are prefix-closed).
	StatusDead = "dead"
	// StatusAbandoned: the frontier cap dropped the element; its
	// verdict is unknown.
	StatusAbandoned = "abandoned"
)

// ElementSnapshot is the serialized audit state of one lattice
// element: its constraint set (as the universe bitmask), status, and —
// when alive — the canonical state Keys of its frontier.
type ElementSnapshot struct {
	Set    uint64   `json:"set"`
	Status string   `json:"status"`
	States []string `json:"states,omitempty"`
	Steps  int      `json:"steps"`
	Peak   int      `json:"peak"`
}

// Snapshot is a complete, restartable serialization of a StepChecker:
// restoring it and feeding the remaining operations yields exactly the
// verdicts (Current, Alive, Degraded) of an uninterrupted run, because
// each frontier's acceptance of every extension depends only on its
// state-set class (DESIGN.md §14).
type Snapshot struct {
	Length   int               `json:"length"`
	Peak     int               `json:"peak"`
	Elements []ElementSnapshot `json:"elements"`
}

// Snapshot serializes the checker's state. Elements appear in domain
// order (strongest first), so equal checker states produce identical
// snapshots.
func (c *StepChecker) Snapshot() Snapshot {
	snap := Snapshot{
		Length:   c.length,
		Peak:     c.peak,
		Elements: make([]ElementSnapshot, len(c.sets)),
	}
	for i, s := range c.sets {
		e := ElementSnapshot{Set: uint64(s)}
		switch {
		case c.abandoned[i]:
			e.Status = StatusAbandoned
		case c.fronts[i] == nil:
			e.Status = StatusDead
		default:
			e.Status = StatusAlive
			e.States = c.fronts[i].StateKeys()
			e.Steps = c.fronts[i].Steps()
			e.Peak = c.fronts[i].Peak()
		}
		snap.Elements[i] = e
	}
	return snap
}

// RestoreStepChecker reconstructs a checker from a snapshot taken
// against the same relaxation lattice. The snapshot's elements must
// match the lattice's domain exactly (same sets, same order) — a
// mismatch means the snapshot came from a different lattice and is
// rejected. memoCap re-enables transition memoization on restored live
// frontiers (the memo cache itself is not serialized; it is a pure
// performance artifact).
func RestoreStepChecker(lat *Relaxation, snap Snapshot, memoCap int) (*StepChecker, error) {
	domain := lat.Domain()
	if len(snap.Elements) != len(domain) {
		return nil, fmt.Errorf("lattice: snapshot has %d elements, lattice domain has %d",
			len(snap.Elements), len(domain))
	}
	c := &StepChecker{
		lat:       lat,
		sets:      domain,
		fronts:    make([]*automaton.Frontier, len(domain)),
		abandoned: make([]bool, len(domain)),
		length:    snap.Length,
		peak:      snap.Peak,
	}
	if c.peak < 1 {
		c.peak = 1
	}
	for i, e := range snap.Elements {
		if Set(e.Set) != domain[i] {
			return nil, fmt.Errorf("lattice: snapshot element %d has set %#x, domain has %#x",
				i, e.Set, uint64(domain[i]))
		}
		switch e.Status {
		case StatusDead:
			// fronts[i] stays nil.
		case StatusAbandoned:
			c.abandoned[i] = true
			c.nabandon++
		case StatusAlive:
			a, _ := lat.Phi(domain[i])
			f, err := automaton.RestoreFrontier(a, e.States, e.Steps, e.Peak)
			if err != nil {
				return nil, fmt.Errorf("lattice: element %s: %w",
					lat.Universe.Format(domain[i]), err)
			}
			if !f.Alive() {
				return nil, fmt.Errorf("lattice: element %s: alive status with no states",
					lat.Universe.Format(domain[i]))
			}
			if memoCap > 0 {
				f.EnableMemo(memoCap)
			}
			c.fronts[i] = f
			c.alive++
		default:
			return nil, fmt.Errorf("lattice: unknown element status %q", e.Status)
		}
	}
	return c, nil
}
