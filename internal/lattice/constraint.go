// Package lattice implements the relaxation lattice of Section 2.2: a
// set of constraints C inducing the powerset lattice 2^C, a lattice of
// simple object automata ordered by reverse language inclusion, and a
// lattice homomorphism φ: 2^C → A mapping each constraint set to the
// behavior an object exhibits while it satisfies exactly those
// constraints. The stronger the constraint set, the smaller (more
// preferred) the accepted language.
package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Constraint is one assertion in the constraint set C. Its meaning is
// domain-dependent (quorum intersection requirements in Section 3,
// bounds on concurrent dequeuers in Section 4); the lattice machinery
// treats constraints as opaque.
type Constraint struct {
	// Name is a short identifier, e.g. "Q1".
	Name string
	// Desc explains the assertion, e.g. "each initial Deq quorum
	// intersects each final Enq quorum".
	Desc string
}

// Set is a subset of a universe of up to 64 constraints, represented as
// a bitmask: bit i set means the i-th constraint of the universe holds.
type Set uint64

// Empty is the empty constraint set ∅ (the bottom of 2^C).
const Empty Set = 0

// SetOf builds a Set from constraint indexes.
func SetOf(indexes ...int) Set {
	var s Set
	for _, i := range indexes {
		s |= 1 << uint(i)
	}
	return s
}

// Has reports whether constraint index i is in the set.
func (s Set) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// With returns s ∪ {i}.
func (s Set) With(i int) Set { return s | 1<<uint(i) }

// Without returns s \ {i}.
func (s Set) Without(i int) Set { return s &^ (1 << uint(i)) }

// Union returns s ∪ t (the lattice join of 2^C).
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t (the lattice meet of 2^C).
func (s Set) Intersect(t Set) Set { return s & t }

// SubsetOf reports s ⊆ t: t is at least as strong a constraint set.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Size returns |s|.
func (s Set) Size() int {
	n := 0
	for x := s; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Indexes returns the constraint indexes in the set, ascending.
func (s Set) Indexes() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Universe is a fixed, ordered set of constraints C together with
// helpers over its powerset lattice 2^C.
type Universe struct {
	constraints []Constraint
	byName      map[string]int
}

// NewUniverse builds a constraint universe. It panics on more than 64
// constraints or duplicate names (programming errors).
func NewUniverse(constraints ...Constraint) *Universe {
	if len(constraints) > 64 {
		panic(fmt.Sprintf("lattice: %d constraints exceed the 64-constraint limit", len(constraints)))
	}
	byName := make(map[string]int, len(constraints))
	for i, c := range constraints {
		if c.Name == "" {
			panic("lattice: constraint with empty name")
		}
		if _, dup := byName[c.Name]; dup {
			panic(fmt.Sprintf("lattice: duplicate constraint name %q", c.Name))
		}
		byName[c.Name] = i
	}
	return &Universe{constraints: append([]Constraint(nil), constraints...), byName: byName}
}

// Len returns |C|.
func (u *Universe) Len() int { return len(u.constraints) }

// All returns the full constraint set C (the top of 2^C).
func (u *Universe) All() Set { return Set(1)<<uint(len(u.constraints)) - 1 }

// Constraint returns the i-th constraint.
func (u *Universe) Constraint(i int) Constraint { return u.constraints[i] }

// Index returns the index of the named constraint, or -1 if absent.
func (u *Universe) Index(name string) int {
	if i, ok := u.byName[name]; ok {
		return i
	}
	return -1
}

// Named builds a Set from constraint names; it panics on unknown names.
func (u *Universe) Named(names ...string) Set {
	var s Set
	for _, n := range names {
		i := u.Index(n)
		if i < 0 {
			panic(fmt.Sprintf("lattice: unknown constraint %q", n))
		}
		s = s.With(i)
	}
	return s
}

// Subsets enumerates all 2^|C| subsets, from ∅ to C, in ascending mask
// order (which refines ascending-size-within-level is not guaranteed;
// use SubsetsBySize for level order).
func (u *Universe) Subsets() []Set {
	n := uint(len(u.constraints))
	out := make([]Set, 0, 1<<n)
	for m := Set(0); m < 1<<n; m++ {
		out = append(out, m)
	}
	return out
}

// SubsetsBySize enumerates all subsets grouped by descending size
// (strongest first), deterministically.
func (u *Universe) SubsetsBySize() []Set {
	subs := u.Subsets()
	sort.SliceStable(subs, func(i, j int) bool {
		si, sj := subs[i].Size(), subs[j].Size()
		if si != sj {
			return si > sj
		}
		return subs[i] < subs[j]
	})
	return subs
}

// Format renders a set as "{Q1, Q2}" using the universe's names.
func (u *Universe) Format(s Set) string {
	if s == Empty {
		return "∅"
	}
	var names []string
	for _, i := range s.Indexes() {
		names = append(names, u.constraints[i].Name)
	}
	return "{" + strings.Join(names, ", ") + "}"
}
