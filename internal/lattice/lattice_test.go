package lattice

import (
	"strings"
	"testing"
	"testing/quick"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/specs"
)

func TestSetOperations(t *testing.T) {
	s := SetOf(0, 2)
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Errorf("membership wrong: %b", s)
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d", s.Size())
	}
	if got := s.With(1); got.Size() != 3 {
		t.Errorf("With = %b", got)
	}
	if got := s.Without(0); got != SetOf(2) {
		t.Errorf("Without = %b", got)
	}
	if got := s.Union(SetOf(1)); got != SetOf(0, 1, 2) {
		t.Errorf("Union = %b", got)
	}
	if got := s.Intersect(SetOf(2, 3)); got != SetOf(2) {
		t.Errorf("Intersect = %b", got)
	}
	idx := s.Indexes()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("Indexes = %v", idx)
	}
}

// Powerset lattice laws on Sets.
func TestSetLatticeLaws(t *testing.T) {
	f := func(a, b, c Set) bool {
		// Commutativity, associativity, absorption, idempotence.
		return a.Union(b) == b.Union(a) &&
			a.Intersect(b) == b.Intersect(a) &&
			a.Union(b.Union(c)) == a.Union(b).Union(c) &&
			a.Intersect(b.Intersect(c)) == a.Intersect(b).Intersect(c) &&
			a.Union(a.Intersect(b)) == a &&
			a.Intersect(a.Union(b)) == a &&
			a.Union(a) == a && a.Intersect(a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetOf(t *testing.T) {
	f := func(a, b Set) bool {
		want := a&b == a
		return a.SubsetOf(b) == want && a.Intersect(b).SubsetOf(a) && a.SubsetOf(a.Union(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testUniverse() *Universe {
	return NewUniverse(
		Constraint{Name: "Q1", Desc: "initial Deq quorums intersect final Enq quorums"},
		Constraint{Name: "Q2", Desc: "initial Deq quorums intersect final Deq quorums"},
	)
}

func TestUniverse(t *testing.T) {
	u := testUniverse()
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
	if u.All() != SetOf(0, 1) {
		t.Errorf("All = %b", u.All())
	}
	if u.Index("Q2") != 1 || u.Index("nope") != -1 {
		t.Errorf("Index wrong")
	}
	if u.Named("Q1", "Q2") != u.All() {
		t.Errorf("Named wrong")
	}
	if u.Constraint(0).Name != "Q1" {
		t.Errorf("Constraint(0) = %v", u.Constraint(0))
	}
	if got := u.Format(u.All()); got != "{Q1, Q2}" {
		t.Errorf("Format = %q", got)
	}
	if got := u.Format(Empty); got != "∅" {
		t.Errorf("Format(∅) = %q", got)
	}
	subs := u.Subsets()
	if len(subs) != 4 {
		t.Errorf("Subsets = %v", subs)
	}
	bySize := u.SubsetsBySize()
	if bySize[0] != u.All() || bySize[len(bySize)-1] != Empty {
		t.Errorf("SubsetsBySize order: %v", bySize)
	}
}

func TestUniversePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name": func() { NewUniverse(Constraint{}) },
		"dup name":   func() { NewUniverse(Constraint{Name: "A"}, Constraint{Name: "A"}) },
		"unknown":    func() { testUniverse().Named("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// A toy relaxation lattice over the SSqueue family: constraint J means
// "items are never returned twice" (j=1), constraint K means "items are
// never returned out of order" (k=1). Relaxing J bumps j to 2; relaxing
// K bumps k to 2.
func ssqLattice() *Relaxation {
	u := NewUniverse(
		Constraint{Name: "J", Desc: "no duplicate returns"},
		Constraint{Name: "K", Desc: "no out-of-order returns"},
	)
	return &Relaxation{
		Name:     "ssq-demo",
		Universe: u,
		Phi: func(s Set) (automaton.Automaton, bool) {
			j, k := 2, 2
			if s.Has(0) {
				j = 1
			}
			if s.Has(1) {
				k = 1
			}
			return specs.SSQueue(j, k), true
		},
	}
}

func TestRelaxationPreferredAndDomain(t *testing.T) {
	r := ssqLattice()
	if got := r.Preferred().Name(); got != "SSqueue_1_1" {
		t.Errorf("Preferred = %q", got)
	}
	domain := r.Domain()
	if len(domain) != 4 {
		t.Fatalf("Domain = %v", domain)
	}
	if domain[0] != r.Universe.All() || domain[len(domain)-1] != Empty {
		t.Errorf("Domain order: %v", domain)
	}
}

func TestRelaxationMonotone(t *testing.T) {
	r := ssqLattice()
	violations := r.VerifyMonotone(history.QueueAlphabet(2), 4)
	if len(violations) != 0 {
		t.Fatalf("violations: %v", violations[0].Error(r.Universe))
	}
}

func TestVerifyMonotoneDetectsViolation(t *testing.T) {
	// A deliberately broken lattice: relaxing accepts *fewer* histories.
	u := NewUniverse(Constraint{Name: "C", Desc: "x"})
	broken := &Relaxation{
		Name:     "broken",
		Universe: u,
		Phi: func(s Set) (automaton.Automaton, bool) {
			if s == Empty {
				return specs.FIFOQueue(), true // weaker set, smaller language
			}
			return specs.SSQueue(2, 2), true
		},
	}
	violations := broken.VerifyMonotone(history.QueueAlphabet(2), 4)
	if len(violations) == 0 {
		t.Fatalf("expected violations")
	}
	v := violations[0]
	if v.Weaker != Empty || v.Stronger != u.All() || v.Witness == nil {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(u), "rejects") {
		t.Errorf("Error() = %q", v.Error(u))
	}
}

func TestWeakestAccepting(t *testing.T) {
	r := ssqLattice()
	// FIFO history: accepted everywhere, so the top is the answer.
	fifo := history.History{history.Enq(1), history.Enq(2), history.DeqOk(1)}
	sets, ok := r.WeakestAccepting(fifo)
	if !ok || len(sets) != 1 || sets[0] != r.Universe.All() {
		t.Errorf("fifo: sets=%v ok=%v", sets, ok)
	}
	// Out-of-order but no duplicates: J holds, K violated.
	ooo := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2)}
	sets, ok = r.WeakestAccepting(ooo)
	if !ok || len(sets) != 1 || sets[0] != r.Universe.Named("J") {
		t.Errorf("ooo: sets=%v ok=%v", sets, ok)
	}
	// Duplicate return in order: K holds, J violated.
	dup := history.History{history.Enq(1), history.DeqOk(1), history.DeqOk(1)}
	sets, ok = r.WeakestAccepting(dup)
	if !ok || len(sets) != 1 || sets[0] != r.Universe.Named("K") {
		t.Errorf("dup: sets=%v ok=%v", sets, ok)
	}
	// Not even the bottom accepts: dequeuing a never-enqueued element.
	bad := history.History{history.DeqOk(9)}
	if _, ok := r.WeakestAccepting(bad); ok {
		t.Errorf("bad history should not be accepted anywhere")
	}
}

func TestLevelsAndHasse(t *testing.T) {
	r := ssqLattice()
	levels := r.Levels()
	if len(levels) != 4 {
		t.Fatalf("Levels = %v", levels)
	}
	if levels[0].Behavior != "SSqueue_1_1" {
		t.Errorf("first level = %v", levels[0])
	}
	text := r.Hasse()
	for _, want := range []string{"{J, K} → SSqueue_1_1", "∅ → SSqueue_2_2", "{J} → SSqueue_1_2"} {
		if !strings.Contains(text, want) {
			t.Errorf("Hasse missing %q in:\n%s", want, text)
		}
	}
}

func TestPartialPhiPanicsWithoutTop(t *testing.T) {
	u := NewUniverse(Constraint{Name: "C", Desc: "x"})
	r := &Relaxation{
		Name:     "no-top",
		Universe: u,
		Phi:      func(s Set) (automaton.Automaton, bool) { return nil, false },
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	r.Preferred()
}
