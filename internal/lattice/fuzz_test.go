package lattice_test

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
)

// decodeHistory maps fuzzer bytes onto a bounded queue history: each
// byte selects one operation of the alphabet.
func decodeHistory(data []byte) history.History {
	alphabet := history.QueueAlphabet(2)
	if len(data) > 8 {
		data = data[:8]
	}
	h := make(history.History, 0, len(data))
	for _, b := range data {
		h = append(h, alphabet[int(b)%len(alphabet)])
	}
	return h
}

// FuzzTaxiLatticeMonotonicity checks the order-theoretic heart of the
// relaxation lattice on fuzzer-chosen histories: acceptance is
// antitone in the constraint set (anything a stronger behavior accepts,
// every weaker behavior accepts too — relaxing constraints only grows
// the language), and WeakestAccepting returns exactly the maximal
// accepting sets.
func FuzzTaxiLatticeMonotonicity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 2, 2})
	f.Add([]byte{1, 3, 0, 2, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		lat := core.TaxiSimpleLattice()
		domain := lat.Domain()
		acc := map[lattice.Set]bool{}
		for _, s := range domain {
			a, ok := lat.Phi(s)
			if !ok {
				t.Fatalf("φ undefined on %s", lat.Universe.Format(s))
			}
			acc[s] = automaton.Accepts(a, h)
		}
		for _, s := range domain {
			for _, u := range domain {
				if s.SubsetOf(u) && acc[u] && !acc[s] {
					t.Fatalf("monotonicity broken on %v: accepted at %s but not at weaker %s",
						h, lat.Universe.Format(u), lat.Universe.Format(s))
				}
			}
		}
		weakest, ok := lat.WeakestAccepting(h)
		anyAccepting := false
		for _, s := range domain {
			anyAccepting = anyAccepting || acc[s]
		}
		if ok != anyAccepting {
			t.Fatalf("WeakestAccepting ok=%v but acceptance map says %v for %v", ok, anyAccepting, h)
		}
		for _, s := range weakest {
			if !acc[s] {
				t.Fatalf("WeakestAccepting returned non-accepting %s for %v", lat.Universe.Format(s), h)
			}
			for _, u := range domain {
				if u != s && s.SubsetOf(u) && acc[u] {
					t.Fatalf("WeakestAccepting returned non-maximal %s (accepted at %s) for %v",
						lat.Universe.Format(s), lat.Universe.Format(u), h)
				}
			}
		}
		// Completeness: every accepting set lies under some returned
		// maximal set.
		for _, s := range domain {
			if !acc[s] {
				continue
			}
			covered := false
			for _, m := range weakest {
				if s.SubsetOf(m) {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("accepting set %s not covered by WeakestAccepting %v for %v",
					lat.Universe.Format(s), weakest, h)
			}
		}
	})
}
