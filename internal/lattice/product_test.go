package lattice

import (
	"strings"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/specs"
)

// semiLat and stutLat are one-constraint lattices: the constraint held
// means k (resp. j) is 1, relaxed means 2.
func semiLat() *Relaxation {
	u := NewUniverse(Constraint{Name: "K1", Desc: "≤1 concurrent dequeuer (ordering)"})
	return &Relaxation{
		Name:     "semi",
		Universe: u,
		Phi: func(s Set) (automaton.Automaton, bool) {
			if s.Has(0) {
				return specs.Semiqueue(1), true
			}
			return specs.Semiqueue(2), true
		},
	}
}

func stutLat() *Relaxation {
	u := NewUniverse(Constraint{Name: "J1", Desc: "≤1 concurrent dequeuer (duplication)"})
	return &Relaxation{
		Name:     "stut",
		Universe: u,
		Phi: func(s Set) (automaton.Automaton, bool) {
			if s.Has(0) {
				return specs.StutteringQueue(1), true
			}
			return specs.StutteringQueue(2), true
		},
	}
}

func TestProductStructure(t *testing.T) {
	p := Product("spool-product", semiLat(), stutLat(), Intersection)
	if p.Universe.Len() != 2 {
		t.Fatalf("universe size = %d", p.Universe.Len())
	}
	if p.Universe.Index("semi.K1") != 0 || p.Universe.Index("stut.J1") != 1 {
		t.Errorf("constraint names: %v / %v", p.Universe.Constraint(0), p.Universe.Constraint(1))
	}
	top := p.Preferred()
	if !strings.Contains(top.Name(), "∩") {
		t.Errorf("top = %q", top.Name())
	}
	// Top = Semiqueue_1 ∩ Stuttering_1 = FIFO ∩ FIFO = FIFO.
	res := automaton.Compare(top, specs.FIFOQueue(), history.QueueAlphabet(2), 5)
	if !res.Equal {
		t.Errorf("top != FIFO: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
}

func TestProductMonotone(t *testing.T) {
	p := Product("spool-product", semiLat(), stutLat(), Intersection)
	if v := p.VerifyMonotone(history.QueueAlphabet(2), 4); len(v) != 0 {
		t.Fatalf("product not monotone: %v", v[0].Error(p.Universe))
	}
}

// The intersection combine is maximally conservative: a semiqueue
// forbids duplication and a stuttering queue forbids reordering, so
// their language intersection is FIFO at *every* lattice element — the
// product collapses. The paper's SSqueue combination is weaker than
// any language operation on the components: it needs a semantic
// combine, which Product also supports.
func TestProductVersusSSQueue(t *testing.T) {
	p := Product("spool-product", semiLat(), stutLat(), Intersection)
	bottom, ok := p.Phi(Empty)
	if !ok {
		t.Fatalf("no bottom")
	}
	res := automaton.Compare(specs.FIFOQueue(), bottom, history.QueueAlphabet(2), 5)
	if !res.SubsetAB() || res.SubsetBA() {
		t.Fatalf("expected FIFO ⊊ intersection bottom: subsetAB=%v subsetBA=%v (onlyA=%v onlyB=%v)",
			res.SubsetAB(), res.SubsetBA(), res.OnlyA, res.OnlyB)
	}
	// The only extra histories involve duplicate element values: the
	// semiqueue deletes a different instance of the value the
	// stuttering queue re-returns. With distinct elements the
	// intersection is FIFO: simple reorders and stutters are rejected.
	reorder := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2)}
	stutter := history.History{history.Enq(1), history.DeqOk(1), history.DeqOk(1)}
	if automaton.Accepts(bottom, reorder) {
		t.Errorf("intersection bottom accepted a reorder")
	}
	if automaton.Accepts(bottom, stutter) {
		t.Errorf("intersection bottom accepted a stutter")
	}

	// Semantic combine: read the indexes off the component behaviors
	// and build the genuinely weaker SSqueue_jk (Section 4.2.2).
	indexes := map[string]int{
		"Semiqueue_1": 1, "Semiqueue_2": 2,
		"Stuttering_1": 1, "Stuttering_2": 2,
	}
	ssCombine := func(a, b automaton.Automaton) (automaton.Automaton, bool) {
		k, okA := indexes[a.Name()]
		j, okB := indexes[b.Name()]
		if !okA || !okB {
			return nil, false
		}
		return specs.SSQueue(j, k), true
	}
	ss := Product("ss-product", semiLat(), stutLat(), ssCombine)
	ssBottom, ok := ss.Phi(Empty)
	if !ok {
		t.Fatalf("no ss bottom")
	}
	mixed := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(2), history.DeqOk(1)}
	if !automaton.Accepts(ssBottom, mixed) {
		t.Errorf("SSqueue product bottom should accept the mixed history")
	}
	if v := ss.VerifyMonotone(history.QueueAlphabet(2), 4); len(v) != 0 {
		t.Errorf("ss product not monotone: %v", v[0].Error(ss.Universe))
	}
	// The intersection product is strictly stronger than the SSqueue
	// product at the bottom.
	res = automaton.Compare(bottom, ssBottom, history.QueueAlphabet(2), 4)
	if !res.SubsetAB() || res.SubsetBA() {
		t.Errorf("expected intersection bottom ⊊ SSqueue_22: subsetAB=%v subsetBA=%v", res.SubsetAB(), res.SubsetBA())
	}
}

func TestProductPartialDomain(t *testing.T) {
	// A lattice undefined at ∅ makes the product undefined there too.
	u := NewUniverse(Constraint{Name: "C", Desc: "x"})
	partial := &Relaxation{
		Name:     "partial",
		Universe: u,
		Phi: func(s Set) (automaton.Automaton, bool) {
			if s == Empty {
				return nil, false
			}
			return specs.FIFOQueue(), true
		},
	}
	p := Product("prod", partial, semiLat(), Intersection)
	if len(p.Domain()) != 2 {
		t.Errorf("domain = %v", p.Domain())
	}
	if _, ok := p.Phi(Empty); ok {
		t.Errorf("product defined where operand is not")
	}
}

func TestPrefixName(t *testing.T) {
	if prefixName("", "C") != "C" {
		t.Errorf("empty lattice name should not prefix")
	}
	if prefixName("a", "C") != "a.C" {
		t.Errorf("prefix wrong")
	}
}
