package lattice_test

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/specs"
)

// Build the relaxation lattice of Section 4.2.1 and audit an observed
// execution for degradation.
func Example() {
	u := lattice.NewUniverse(
		lattice.Constraint{Name: "C1", Desc: "≤1 concurrent dequeuer"},
		lattice.Constraint{Name: "C2", Desc: "≤2 concurrent dequeuers"},
	)
	lat := &lattice.Relaxation{
		Name:     "spooler",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			switch {
			case s.Has(0):
				return specs.Semiqueue(1), true // FIFO
			case s.Has(1):
				return specs.Semiqueue(2), true
			default:
				return nil, false // sublattice: some constraint must hold
			}
		},
	}

	fmt.Println("preferred:", lat.Preferred().Name())

	// Two printers collided: file 2 printed before file 1.
	h := history.History{
		history.Enq(1), history.Enq(2),
		history.DeqOk(2), history.DeqOk(1),
	}
	sets, _ := lat.WeakestAccepting(h)
	for _, s := range sets {
		a, _ := lat.Phi(s)
		fmt.Printf("degraded to %s under %s\n", a.Name(), u.Format(s))
	}
	// Output:
	// preferred: Semiqueue_1
	// degraded to Semiqueue_2 under {C2}
}

// Verify that relaxing constraints only ever adds behaviors.
func ExampleRelaxation_VerifyMonotone() {
	u := lattice.NewUniverse(lattice.Constraint{Name: "K", Desc: "no reordering"})
	lat := &lattice.Relaxation{
		Name:     "demo",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			if s.Has(0) {
				return specs.FIFOQueue(), true
			}
			return specs.BagAutomaton(), true
		},
	}
	violations := lat.VerifyMonotone(history.QueueAlphabet(2), 4)
	fmt.Println("violations:", len(violations))
	// Output:
	// violations: 0
}
