package lattice

import (
	"strings"
	"testing"
)

func TestLatticeDOT(t *testing.T) {
	r := ssqLattice()
	dot := r.DOT()
	if !strings.HasPrefix(dot, "digraph \"ssq-demo\"") {
		t.Errorf("header: %q", dot[:40])
	}
	for _, want := range []string{"{J, K}", "SSqueue_1_1", "SSqueue_2_2", "rank=same"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing %q", want)
		}
	}
	// The diamond has 4 covering edges: top→{J}, top→{K}, {J}→∅, {K}→∅.
	if got := strings.Count(dot, "->"); got != 4 {
		t.Errorf("covering edges = %d, want 4\n%s", got, dot)
	}
	if r.DOT() != dot {
		t.Errorf("not deterministic")
	}
}

func TestCoversSkipsTransitive(t *testing.T) {
	domain := []Set{SetOf(0, 1, 2), SetOf(0, 1), SetOf(0), Empty}
	got := covers(SetOf(0, 1, 2), domain)
	if len(got) != 1 || got[0] != SetOf(0, 1) {
		t.Errorf("covers = %v", got)
	}
	got = covers(Empty, domain)
	if len(got) != 0 {
		t.Errorf("bottom covers = %v", got)
	}
}
