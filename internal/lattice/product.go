package lattice

import (
	"fmt"

	"relaxlattice/internal/automaton"
)

// Product combines two relaxation lattices over a shared object into
// one lattice whose constraint universe is the disjoint union of the
// operands' universes and whose behavior at (S₁ ⊎ S₂) is
// combine(φ₁(S₁), φ₂(S₂)). This generalizes the paper's observation
// (Section 4.2.2) that the semiqueue and stuttering-queue behaviors
// "can be combined within a single lattice" whose elements are the
// SSqueue_jk behaviors.
//
// combine must be monotone in both arguments (weaker operand behaviors
// yield a weaker combined behavior) for the product to remain a
// relaxation lattice; VerifyMonotone checks the result as usual. The
// product's φ is defined exactly where both operand φs are.
func Product(name string, a, b *Relaxation, combine func(automaton.Automaton, automaton.Automaton) (automaton.Automaton, bool)) *Relaxation {
	constraints := make([]Constraint, 0, a.Universe.Len()+b.Universe.Len())
	for i := 0; i < a.Universe.Len(); i++ {
		c := a.Universe.Constraint(i)
		constraints = append(constraints, Constraint{
			Name: prefixName(a.Name, c.Name),
			Desc: c.Desc,
		})
	}
	for i := 0; i < b.Universe.Len(); i++ {
		c := b.Universe.Constraint(i)
		constraints = append(constraints, Constraint{
			Name: prefixName(b.Name, c.Name),
			Desc: c.Desc,
		})
	}
	u := NewUniverse(constraints...)
	offset := a.Universe.Len()
	return &Relaxation{
		Name:     name,
		Universe: u,
		Phi: func(s Set) (automaton.Automaton, bool) {
			var sa, sb Set
			for _, i := range s.Indexes() {
				if i < offset {
					sa = sa.With(i)
				} else {
					sb = sb.With(i - offset)
				}
			}
			aa, ok := a.Phi(sa)
			if !ok {
				return nil, false
			}
			ab, ok := b.Phi(sb)
			if !ok {
				return nil, false
			}
			return combine(aa, ab)
		},
	}
}

// prefixName disambiguates constraint names across operands; when the
// operand lattices already use distinct names the prefix is dropped.
func prefixName(latticeName, constraintName string) string {
	if latticeName == "" {
		return constraintName
	}
	return fmt.Sprintf("%s.%s", latticeName, constraintName)
}

// Intersection is a combine function for Product over automata with
// identical operation alphabets: the combined behavior accepts exactly
// the histories both operands accept (the language intersection).
// It is always monotone, making Product(a, b, Intersection) a
// relaxation lattice whenever a and b are.
func Intersection(x, y automaton.Automaton) (automaton.Automaton, bool) {
	return automaton.Intersect(fmt.Sprintf("%s ∩ %s", x.Name(), y.Name()), x, y), true
}
