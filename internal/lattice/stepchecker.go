package lattice

import (
	"sort"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
)

// StepChecker tracks an execution's position in a relaxation lattice
// online, one operation at a time, by maintaining an automaton.Frontier
// per element of φ's domain. It computes exactly what
// Relaxation.WeakestAccepting computes on every prefix — the maximal
// constraint sets whose behavior accepts the history so far — but
// incrementally: each Step is amortized O(Σ frontier sizes) instead of
// replaying the full history through every automaton.
//
// StepChecker subsumes Monitor for production checking: it keeps the
// domain in a deterministic slice (no map iteration), exposes frontier
// statistics for observability, and can memoize recurring state-class
// transitions via the exploration engine's canonical set keys.
//
// A StepChecker is not safe for concurrent use; callers serialize
// Steps (internal/relaxcheck wraps one in a mutex for live audits).
type StepChecker struct {
	lat    *Relaxation
	sets   []Set                 // φ's domain, strongest first; parallel to fronts
	fronts []*automaton.Frontier // nil once the element is dead or abandoned
	alive  int
	length int
	peak   int // largest single-element frontier seen

	// Bounded-memory windowed checking (DESIGN.md §14): when cap > 0,
	// an element whose frontier outgrows cap states is *abandoned* —
	// dropped from tracking without being declared dead. Abandoned
	// elements are excluded from Current (their verdict is unknown),
	// and callers must not raise exhaustion or claim violations while
	// nabandoned > 0: an abandoned element could still accept.
	capN      int
	abandoned []bool
	nabandon  int
}

// NewStepChecker starts a checker at the empty history (every element
// of φ's domain viable). memoCap > 0 enables per-element transition
// memoization with that entry cap (see automaton.Frontier.EnableMemo);
// it pays off on lattices of finite-state automata with short state
// keys and should stay off for bag/sequence-valued specs.
func NewStepChecker(lat *Relaxation, memoCap int) *StepChecker {
	domain := lat.Domain()
	c := &StepChecker{
		lat:    lat,
		sets:   domain,
		fronts: make([]*automaton.Frontier, len(domain)),
		alive:  len(domain),
		peak:   1,
	}
	for i, s := range domain {
		a, _ := lat.Phi(s)
		c.fronts[i] = automaton.NewFrontier(a)
		if memoCap > 0 {
			c.fronts[i].EnableMemo(memoCap)
		}
	}
	c.abandoned = make([]bool, len(domain))
	return c
}

// SetFrontierCap bounds each element's frontier to cap states (≤ 0
// removes the bound). An element whose frontier exceeds the cap on a
// later Step is abandoned: no longer tracked, no longer in Current,
// and — because its verdict is unknown rather than negative — any
// exhaustion or claim violation raised while Abandoned() > 0 would be
// unsound. Set it before stepping; it does not retroactively abandon.
func (c *StepChecker) SetFrontierCap(cap int) { c.capN = cap }

// Step advances every viable lattice element by one operation
// execution. It returns true while at least one element still accepts
// the history; elements that reject are discarded permanently
// (prefix-closed languages never recover).
func (c *StepChecker) Step(op history.Op) bool {
	c.length++
	for i, f := range c.fronts {
		if f == nil {
			continue
		}
		if !f.Step(op) {
			c.fronts[i] = nil
			c.alive--
			continue
		}
		if f.Size() > c.peak {
			c.peak = f.Size()
		}
		if c.capN > 0 && f.Size() > c.capN {
			c.fronts[i] = nil
			c.abandoned[i] = true
			c.nabandon++
			c.alive--
		}
	}
	return c.alive > 0
}

// StepAll feeds a whole history, returning false at the first
// operation that kills every element (remaining operations are not
// consumed).
func (c *StepChecker) StepAll(h history.History) bool {
	for _, op := range h {
		if !c.Step(op) {
			return false
		}
	}
	return true
}

// Len returns the number of operations fed.
func (c *StepChecker) Len() int { return c.length }

// Alive returns how many lattice elements still accept the history.
func (c *StepChecker) Alive() int { return c.alive }

// Abandoned returns how many elements were dropped by the frontier cap
// (verdict unknown, not dead). While this is nonzero, exhaustion and
// claim violations must not be raised (see SetFrontierCap).
func (c *StepChecker) Abandoned() int { return c.nabandon }

// Viable reports whether element s still accepts the history.
func (c *StepChecker) Viable(s Set) bool {
	for i, t := range c.sets {
		if t == s {
			return c.fronts[i] != nil
		}
	}
	return false
}

// Current returns the maximal viable constraint sets — identical, on
// every prefix, to Relaxation.WeakestAccepting of that prefix (nil
// when nothing in the lattice accepts the history).
func (c *StepChecker) Current() []Set {
	var maximal []Set
	for i, s := range c.sets {
		if c.fronts[i] == nil {
			continue
		}
		dominated := false
		for j, t := range c.sets {
			if c.fronts[j] != nil && s != t && s.SubsetOf(t) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, s)
		}
	}
	sort.Slice(maximal, func(i, j int) bool { return maximal[i] < maximal[j] })
	return maximal
}

// Degraded reports whether the preferred behavior (the lattice top)
// has been lost.
func (c *StepChecker) Degraded() bool {
	return !c.Viable(c.lat.Universe.All())
}

// MaxFrontier returns the largest per-element frontier size seen so
// far — the constant in the checker's O(frontier) step cost.
func (c *StepChecker) MaxFrontier() int { return c.peak }

// Lattice returns the relaxation the checker runs against.
func (c *StepChecker) Lattice() *Relaxation { return c.lat }
