package lattice

import (
	"sort"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// Monitor tracks an execution's position in a relaxation lattice
// online: each operation advances every still-viable lattice element's
// automaton, and Current reports the strongest elements whose behavior
// accepts the history so far. Feeding operations is incremental —
// unlike Relaxation.WeakestAccepting it does not replay the history —
// so a Monitor can run alongside a live system as a degradation alarm.
type Monitor struct {
	lat    *Relaxation
	alive  map[Set][]value.Value
	length int
}

// NewMonitor starts a monitor at the empty history (every element of
// φ's domain is viable).
func NewMonitor(lat *Relaxation) *Monitor {
	m := &Monitor{lat: lat, alive: map[Set][]value.Value{}}
	for _, s := range lat.Domain() {
		a, _ := lat.Phi(s)
		m.alive[s] = []value.Value{a.Init()}
	}
	return m
}

// Feed advances the monitor by one operation execution. It returns
// true while at least one lattice element still accepts the history.
// Elements that reject the extended history are discarded permanently
// (languages are prefix-closed, so they can never recover).
func (m *Monitor) Feed(op history.Op) bool {
	m.length++
	for s, states := range m.alive {
		a, _ := m.lat.Phi(s)
		next := map[string]value.Value{}
		for _, st := range states {
			for _, st2 := range a.Step(st, op) {
				next[st2.Key()] = st2
			}
		}
		if len(next) == 0 {
			delete(m.alive, s)
			continue
		}
		keys := make([]string, 0, len(next))
		for k := range next {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		updated := make([]value.Value, len(keys))
		for i, k := range keys {
			updated[i] = next[k]
		}
		m.alive[s] = updated
	}
	return len(m.alive) > 0
}

// FeedAll feeds a whole history, returning false at the first operation
// that kills every element (remaining operations are not consumed).
func (m *Monitor) FeedAll(h history.History) bool {
	for _, op := range h {
		if !m.Feed(op) {
			return false
		}
	}
	return true
}

// Len returns the number of operations fed.
func (m *Monitor) Len() int { return m.length }

// Viable reports whether element s still accepts the history.
func (m *Monitor) Viable(s Set) bool {
	_, ok := m.alive[s]
	return ok
}

// Current returns the maximal viable constraint sets — the strongest
// behaviors consistent with everything observed so far. It returns nil
// when nothing in the lattice accepts the history.
func (m *Monitor) Current() []Set {
	var maximal []Set
	for s := range m.alive {
		dominated := false
		for t := range m.alive {
			if s != t && s.SubsetOf(t) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, s)
		}
	}
	sort.Slice(maximal, func(i, j int) bool { return maximal[i] < maximal[j] })
	return maximal
}

// Degraded reports whether the preferred behavior (the lattice top) has
// been lost.
func (m *Monitor) Degraded() bool {
	return !m.Viable(m.lat.Universe.All())
}

// Census tallies, over a corpus of observed histories, how many land on
// each lattice element as their strongest accepting constraint set —
// fleet-level degradation reporting. Histories outside the lattice are
// counted under the second return value. When a history has several
// incomparable maximal elements, each is counted (so totals can exceed
// the corpus size).
func Census(lat *Relaxation, corpus []history.History) (map[Set]int, int) {
	counts := map[Set]int{}
	rejected := 0
	for _, h := range corpus {
		sets, ok := lat.WeakestAccepting(h)
		if !ok {
			rejected++
			continue
		}
		for _, s := range sets {
			counts[s]++
		}
	}
	return counts, rejected
}
