package lattice

import (
	"testing"

	"relaxlattice/internal/history"
)

func TestMonitorTracksDegradation(t *testing.T) {
	lat := ssqLattice()
	m := NewMonitor(lat)
	if m.Degraded() {
		t.Fatalf("fresh monitor already degraded")
	}
	if cur := m.Current(); len(cur) != 1 || cur[0] != lat.Universe.All() {
		t.Fatalf("initial Current = %v", cur)
	}
	// FIFO operations keep the top viable.
	if !m.Feed(history.Enq(1)) || !m.Feed(history.Enq(2)) || !m.Feed(history.DeqOk(1)) {
		t.Fatalf("monitor died on FIFO ops")
	}
	if m.Degraded() {
		t.Errorf("degraded on FIFO history")
	}
	// A duplicate return kills J (and the top).
	if !m.Feed(history.DeqOk(1)) {
		t.Fatalf("monitor died entirely")
	}
	if !m.Degraded() {
		t.Errorf("duplicate not detected")
	}
	cur := m.Current()
	if len(cur) != 1 || cur[0] != lat.Universe.Named("K") {
		t.Errorf("Current = %v, want {K}", cur)
	}
	if m.Viable(lat.Universe.All()) || !m.Viable(lat.Universe.Named("K")) {
		t.Errorf("viability wrong")
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d", m.Len())
	}
}

// The monitor agrees with the offline audit at every prefix.
func TestMonitorMatchesWeakestAccepting(t *testing.T) {
	lat := ssqLattice()
	h := history.History{
		history.Enq(1), history.Enq(2), history.DeqOk(2), // reorder: drop O
		history.Enq(3), history.DeqOk(1), history.DeqOk(1), // duplicate: drop D too
	}
	m := NewMonitor(lat)
	for i, op := range h {
		if !m.Feed(op) {
			t.Fatalf("monitor died at %d", i)
		}
		prefix := h.Prefix(i + 1)
		want, ok := lat.WeakestAccepting(prefix)
		if !ok {
			t.Fatalf("offline audit rejected prefix %v", prefix)
		}
		got := m.Current()
		if len(got) != len(want) {
			t.Fatalf("step %d: monitor %v vs offline %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("step %d: monitor %v vs offline %v", i, got, want)
			}
		}
	}
}

func TestMonitorDeathAndFeedAll(t *testing.T) {
	lat := ssqLattice()
	m := NewMonitor(lat)
	// Dequeuing a never-enqueued element kills every element.
	if m.Feed(history.DeqOk(9)) {
		t.Fatalf("impossible op survived")
	}
	if cur := m.Current(); cur != nil {
		t.Errorf("Current after death = %v", cur)
	}
	// FeedAll stops at the killing op.
	m2 := NewMonitor(lat)
	ok := m2.FeedAll(history.History{history.Enq(1), history.DeqOk(9), history.Enq(2)})
	if ok {
		t.Fatalf("FeedAll should report death")
	}
	if m2.Len() != 2 {
		t.Errorf("FeedAll consumed %d ops", m2.Len())
	}
	// FeedAll success path.
	m3 := NewMonitor(lat)
	if !m3.FeedAll(history.History{history.Enq(1), history.DeqOk(1)}) {
		t.Errorf("FeedAll failed on legal history")
	}
}

func TestCensus(t *testing.T) {
	lat := ssqLattice()
	corpus := []history.History{
		{history.Enq(1), history.DeqOk(1)},                   // top
		{history.Enq(1), history.Enq(2), history.DeqOk(2)},   // {J}
		{history.Enq(1), history.DeqOk(1), history.DeqOk(1)}, // {K}
		{history.Enq(1), history.DeqOk(1), history.DeqOk(1)}, // {K}
		{history.DeqOk(9)}, // outside
	}
	counts, rejected := Census(lat, corpus)
	if rejected != 1 {
		t.Errorf("rejected = %d", rejected)
	}
	u := lat.Universe
	if counts[u.All()] != 1 || counts[u.Named("J")] != 1 || counts[u.Named("K")] != 2 {
		t.Errorf("counts = %v", counts)
	}
}
