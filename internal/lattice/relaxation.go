package lattice

import (
	"fmt"
	"sort"
	"strings"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
)

// Relaxation is a relaxation lattice (Section 2.2): a constraint
// universe C, a lattice of automata, and the homomorphism φ: 2^C → A.
// φ may be partial — defined over a sublattice of 2^C — as in the bank
// account (Section 3.4, A₂ may never be dropped) and the semiqueue
// (Section 4.2.1, only nonempty constraint sets).
type Relaxation struct {
	// Name identifies the lattice in output.
	Name string
	// Universe is the constraint set C.
	Universe *Universe
	// Phi maps a constraint set to the automaton whose language the
	// object exhibits while satisfying exactly that set. ok=false means
	// the set is outside φ's sublattice domain.
	Phi func(Set) (automaton.Automaton, bool)
}

// Preferred returns φ(C), the preferred behavior at the top of the
// lattice. It panics if the top is outside φ's domain (every relaxation
// lattice must have a preferred behavior).
func (r *Relaxation) Preferred() automaton.Automaton {
	a, ok := r.Phi(r.Universe.All())
	if !ok {
		panic(fmt.Sprintf("lattice: %s has no preferred behavior (φ undefined at ⊤)", r.Name))
	}
	return a
}

// Domain returns the constraint sets where φ is defined, strongest
// first.
func (r *Relaxation) Domain() []Set {
	var out []Set
	for _, s := range r.Universe.SubsetsBySize() {
		if _, ok := r.Phi(s); ok {
			out = append(out, s)
		}
	}
	return out
}

// Level groups φ's domain by behavior: each Level is one automaton and
// the constraint sets mapped to it.
type Level struct {
	// Behavior names the automaton.
	Behavior string
	// Sets are the constraint sets φ maps to this behavior, strongest
	// first.
	Sets []Set
}

// Levels returns the lattice's behaviors with their preimages, ordered
// with the preferred behavior first (by minimum preimage size,
// descending). This regenerates tables like Figure 4-2.
func (r *Relaxation) Levels() []Level {
	byBehavior := map[string][]Set{}
	var order []string
	for _, s := range r.Domain() {
		a, _ := r.Phi(s)
		if _, seen := byBehavior[a.Name()]; !seen {
			order = append(order, a.Name())
		}
		byBehavior[a.Name()] = append(byBehavior[a.Name()], s)
	}
	levels := make([]Level, 0, len(order))
	for _, name := range order {
		levels = append(levels, Level{Behavior: name, Sets: byBehavior[name]})
	}
	return levels
}

// MonotonicityViolation describes a failure of the homomorphism
// property: a weaker constraint set whose behavior rejects a history
// that a stronger set accepts.
type MonotonicityViolation struct {
	Weaker, Stronger Set
	Witness          history.History
}

// Error renders the violation.
func (v MonotonicityViolation) Error(u *Universe) string {
	return fmt.Sprintf("φ(%s) rejects %v accepted by φ(%s)",
		u.Format(v.Weaker), v.Witness, u.Format(v.Stronger))
}

// VerifyMonotone checks, by bounded language comparison, that φ is
// order-reversing on its domain: S ⊆ S' implies L(φ(S')) ⊆ L(φ(S)) —
// relaxing constraints only ever adds behaviors. It returns the
// violations found (none for a correct relaxation lattice).
func (r *Relaxation) VerifyMonotone(alphabet []history.Op, maxLen int) []MonotonicityViolation {
	domain := r.Domain()
	var violations []MonotonicityViolation
	for _, strong := range domain {
		for _, weak := range domain {
			if weak == strong || !weak.SubsetOf(strong) {
				continue
			}
			as, _ := r.Phi(strong)
			aw, _ := r.Phi(weak)
			res := automaton.Compare(as, aw, alphabet, maxLen)
			if !res.SubsetAB() {
				violations = append(violations, MonotonicityViolation{
					Weaker:   weak,
					Stronger: strong,
					Witness:  res.OnlyA,
				})
			}
		}
	}
	return violations
}

// WeakestAccepting returns the strongest constraint sets (highest
// lattice elements) whose behavior accepts h — the position in the
// lattice to which an observed execution has degraded. The second
// result is false when no behavior in the lattice accepts h.
func (r *Relaxation) WeakestAccepting(h history.History) ([]Set, bool) {
	accepting := map[Set]bool{}
	for _, s := range r.Domain() {
		a, _ := r.Phi(s)
		if automaton.Accepts(a, h) {
			accepting[s] = true
		}
	}
	if len(accepting) == 0 {
		return nil, false
	}
	// Keep the maximal accepting sets: not a subset of another
	// accepting set.
	var maximal []Set
	for s := range accepting {
		dominated := false
		for t := range accepting {
			if s != t && s.SubsetOf(t) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, s)
		}
	}
	sort.Slice(maximal, func(i, j int) bool { return maximal[i] < maximal[j] })
	return maximal, true
}

// Hasse renders the lattice as text, one rank per line from the top
// (strongest) down, with each constraint set and its behavior.
func (r *Relaxation) Hasse() string {
	var b strings.Builder
	fmt.Fprintf(&b, "relaxation lattice %s\n", r.Name)
	domain := r.Domain()
	bySize := map[int][]Set{}
	var sizes []int
	for _, s := range domain {
		n := s.Size()
		if _, seen := bySize[n]; !seen {
			sizes = append(sizes, n)
		}
		bySize[n] = append(bySize[n], s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	for _, n := range sizes {
		var cells []string
		for _, s := range bySize[n] {
			a, _ := r.Phi(s)
			cells = append(cells, fmt.Sprintf("%s → %s", r.Universe.Format(s), a.Name()))
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(cells, "    "))
	}
	return b.String()
}
