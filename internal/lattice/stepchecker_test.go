package lattice_test

import (
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/sim"
)

// sameSets compares two maximal-set slices (both sorted ascending).
func sameSets(a, b []lattice.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAllPrefixes feeds h one op at a time and asserts the checker's
// Current equals WeakestAccepting of every prefix.
func checkAllPrefixes(t *testing.T, lat *lattice.Relaxation, h history.History, memoCap int) {
	t.Helper()
	sc := lattice.NewStepChecker(lat, memoCap)
	if want, ok := lat.WeakestAccepting(nil); !ok || !sameSets(sc.Current(), want) {
		t.Fatalf("empty history: checker %v, offline %v (ok=%v)", sc.Current(), want, ok)
	}
	for i, op := range h {
		alive := sc.Step(op)
		prefix := h[:i+1]
		want, ok := lat.WeakestAccepting(prefix)
		if alive != ok {
			t.Fatalf("%s prefix %v: checker alive=%v, offline ok=%v", lat.Name, prefix, alive, ok)
		}
		if !sameSets(sc.Current(), want) {
			t.Fatalf("%s prefix %v: checker %v, offline %v", lat.Name, prefix, sc.Current(), want)
		}
		if sc.Len() != i+1 {
			t.Fatalf("Len = %d after %d ops", sc.Len(), i+1)
		}
		if !alive {
			return
		}
	}
}

func TestStepCheckerMatchesWeakestAcceptingTable(t *testing.T) {
	taxi := [][]history.Op{
		{},
		{history.Enq(3), history.Enq(1), history.DeqOk(1)},
		{history.Enq(3), history.Enq(1), history.DeqOk(3)},   // passes over priority 1
		{history.Enq(2), history.DeqOk(2), history.DeqOk(2)}, // duplicate delivery
		{history.DeqOk(7)}, // phantom
		{history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(2)}, // duplicate after reorder
	}
	for _, h := range taxi {
		checkAllPrefixes(t, core.TaxiSimpleLattice(), h, 0)
		checkAllPrefixes(t, core.TaxiSimpleLattice(), h, 128)
	}
	spool := [][]history.Op{
		{history.Enq(1), history.Enq(2), history.DeqOk(1), history.DeqOk(2)},
		{history.Enq(1), history.Enq(2), history.Enq(3), history.DeqOk(3)}, // 2-overtake
		{history.Enq(1), history.DeqOk(1), history.DeqOk(1)},
	}
	for _, h := range spool {
		checkAllPrefixes(t, core.SemiqueueLattice(3), h, 0)
		checkAllPrefixes(t, core.StutteringLattice(3), h, 0)
	}
}

func TestStepCheckerMatchesWeakestAcceptingRandom(t *testing.T) {
	lats := []func() *lattice.Relaxation{
		core.TaxiSimpleLattice,
		func() *lattice.Relaxation { return core.SemiqueueLattice(2) },
		func() *lattice.Relaxation { return core.StutteringLattice(2) },
	}
	rng := sim.NewRNG(42)
	alphabet := history.QueueAlphabet(3)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		h := make(history.History, 0, n)
		for i := 0; i < n; i++ {
			h = append(h, alphabet[rng.Intn(len(alphabet))])
		}
		for _, mk := range lats {
			checkAllPrefixes(t, mk(), h, 0)
		}
	}
}

func TestStepCheckerAgreesWithMonitor(t *testing.T) {
	h := history.History{history.Enq(3), history.Enq(1), history.DeqOk(3), history.DeqOk(3)}
	lat := core.TaxiSimpleLattice()
	m := lattice.NewMonitor(lat)
	sc := lattice.NewStepChecker(lat, 0)
	for _, op := range h {
		m.Feed(op)
		sc.Step(op)
	}
	if got, want := sc.Current(), m.Current(); !sameSets(got, want) {
		t.Fatalf("checker %v, monitor %v", got, want)
	}
	if sc.Degraded() != m.Degraded() {
		t.Fatalf("Degraded: checker %v, monitor %v", sc.Degraded(), m.Degraded())
	}
}

func TestStepCheckerViableAndAlive(t *testing.T) {
	lat := core.TaxiSimpleLattice()
	sc := lattice.NewStepChecker(lat, 0)
	u := lat.Universe
	if !sc.Viable(u.All()) || sc.Degraded() {
		t.Fatal("fresh checker already degraded")
	}
	// Duplicate delivery kills everything except sets without Q2.
	sc.StepAll(history.History{history.Enq(2), history.DeqOk(2), history.DeqOk(2)})
	if sc.Viable(u.All()) {
		t.Fatal("duplicate delivery left the top viable")
	}
	if !sc.Degraded() {
		t.Fatal("Degraded false after losing the top")
	}
	if sc.Alive() == 0 {
		t.Fatal("whole lattice dead on a DegenPQ-legal history")
	}
	if sc.MaxFrontier() < 1 {
		t.Fatalf("MaxFrontier = %d", sc.MaxFrontier())
	}
}

func TestStepCheckerStepAllStopsAtDeath(t *testing.T) {
	// A phantom dequeue from empty kills every taxi element at step 1.
	lat := core.TaxiSimpleLattice()
	sc := lattice.NewStepChecker(lat, 0)
	h := history.History{history.DeqOk(9), history.Enq(1)}
	if sc.StepAll(h) {
		t.Fatal("phantom dequeue accepted")
	}
	if sc.Len() != 1 {
		t.Fatalf("StepAll consumed %d ops past death", sc.Len())
	}
	if sc.Current() != nil {
		t.Fatalf("dead checker Current = %v", sc.Current())
	}
}
