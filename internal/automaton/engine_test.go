package automaton_test

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/value"
)

// The memoized powerset engine must be byte-for-byte indistinguishable
// from the per-history BFS it replaced: same counts, same verdicts, and
// the same first-found counterexamples and witnesses. These tests
// differential-test it against the retained Naive* oracles over every
// registered specification automaton.

// alphabetFor picks the operation alphabet matching a spec's interface.
func alphabetFor(a automaton.Automaton) []history.Op {
	if sp, ok := a.(*automaton.Spec); ok {
		for _, name := range sp.OpNames() {
			if name == history.NameCredit || name == history.NameDebit {
				return history.AccountAlphabet(2)
			}
		}
	}
	return history.QueueAlphabet(2)
}

// sortedSpecs returns the registered automata in name order.
func sortedSpecs() []automaton.Automaton {
	all := specs.All()
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]automaton.Automaton, len(names))
	for i, name := range names {
		out[i] = all[name]
	}
	return out
}

func TestEngineCountsMatchNaiveAllSpecs(t *testing.T) {
	for _, a := range sortedSpecs() {
		alphabet := alphabetFor(a)
		got := automaton.CountLanguage(a, alphabet, 5)
		want := automaton.NaiveCountLanguage(a, alphabet, 5)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: CountLanguage = %v, naive = %v", a.Name(), got, want)
		}
	}
}

func TestEngineDeterminismMatchesNaiveAllSpecs(t *testing.T) {
	for _, a := range sortedSpecs() {
		alphabet := alphabetFor(a)
		gotOK, gotWit := automaton.IsDeterministic(a, alphabet, 5)
		wantOK, wantWit := automaton.NaiveIsDeterministic(a, alphabet, 5)
		if gotOK != wantOK || gotWit.String() != wantWit.String() {
			t.Errorf("%s: IsDeterministic = (%v, %v), naive = (%v, %v)",
				a.Name(), gotOK, gotWit, wantOK, wantWit)
		}
	}
}

// compareResultsEqual checks every observable field of a CompareResult.
func compareResultsEqual(got, want automaton.CompareResult) string {
	switch {
	case fmt.Sprint(got.CountA) != fmt.Sprint(want.CountA):
		return fmt.Sprintf("CountA %v != %v", got.CountA, want.CountA)
	case fmt.Sprint(got.CountB) != fmt.Sprint(want.CountB):
		return fmt.Sprintf("CountB %v != %v", got.CountB, want.CountB)
	case got.Equal != want.Equal:
		return fmt.Sprintf("Equal %v != %v", got.Equal, want.Equal)
	case got.Explored != want.Explored:
		return fmt.Sprintf("Explored %d != %d", got.Explored, want.Explored)
	case got.OnlyA.String() != want.OnlyA.String():
		return fmt.Sprintf("OnlyA %v != %v", got.OnlyA, want.OnlyA)
	case got.OnlyB.String() != want.OnlyB.String():
		return fmt.Sprintf("OnlyB %v != %v", got.OnlyB, want.OnlyB)
	}
	return ""
}

// Every ordered pair of same-alphabet specs: the engine's comparison
// must reproduce the naive one exactly, counterexamples included.
func TestEngineCompareMatchesNaiveAllPairs(t *testing.T) {
	list := sortedSpecs()
	for _, a := range list {
		for _, b := range list {
			alphabet := alphabetFor(a)
			if fmt.Sprint(alphabet) != fmt.Sprint(alphabetFor(b)) {
				continue
			}
			got := automaton.Compare(a, b, alphabet, 4)
			want := automaton.NaiveCompare(a, b, alphabet, 4)
			if diff := compareResultsEqual(got, want); diff != "" {
				t.Errorf("Compare(%s, %s): %s", a.Name(), b.Name(), diff)
			}
		}
	}
}

// The engine must also agree on the paper's central comparisons, where
// one side is a compiled quorum consensus automaton.
func TestEngineCompareMatchesNaiveQCA(t *testing.T) {
	alphabet := history.QueueAlphabet(2)
	cases := []struct {
		name string
		rel  quorum.Relation
		rhs  automaton.Automaton
	}{
		{"Q1-vs-MPQ", quorum.Q1(), specs.MultiPriorityQueue()},
		{"Q2-vs-OPQ", quorum.Q2(), specs.OutOfOrderQueue()},
		{"empty-vs-Degen", quorum.NewRelation(), specs.DegeneratePriorityQueue()},
		{"Q1Q2-vs-PQ", quorum.Q1().Union(quorum.Q2()), specs.PriorityQueue()},
		{"Q1-vs-OPQ-counterexample", quorum.Q1(), specs.OutOfOrderQueue()},
	}
	for _, tc := range cases {
		qca := quorum.NewQCA("qca", specs.PriorityQueue(), tc.rel, quorum.PQFold()).Compiled()
		got := automaton.Compare(qca, tc.rhs, alphabet, 6)
		want := automaton.NaiveCompare(qca, tc.rhs, alphabet, 6)
		if diff := compareResultsEqual(got, want); diff != "" {
			t.Errorf("%s: %s", tc.name, diff)
		}
	}
}

// The engine's sharded expansion must produce byte-identical results at
// any worker count. The direct (uncompiled) QCA keys every history to
// its own class, so its frontier grows past the sharding threshold and
// the parallel path really runs.
func TestEngineParallelPathDeterministic(t *testing.T) {
	alphabet := history.QueueAlphabet(2)
	run := func() automaton.CompareResult {
		qca := quorum.NewQCA("qca", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold())
		return automaton.Compare(qca, specs.OutOfOrderQueue(), alphabet, 6)
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(4)
	parallel := run()
	runtime.GOMAXPROCS(prev)
	if diff := compareResultsEqual(parallel, serial); diff != "" {
		t.Errorf("parallel result differs from serial: %s", diff)
	}
	if serial.Equal {
		t.Error("expected a counterexample in this comparison")
	}
}

// Language (still naive, BFS order) must agree with the engine's counts
// length by length.
func TestLanguageHistogramMatchesEngineCounts(t *testing.T) {
	for _, a := range sortedSpecs() {
		alphabet := alphabetFor(a)
		counts := automaton.CountLanguage(a, alphabet, 4)
		histogram := make([]uint64, 5)
		for _, h := range automaton.Language(a, alphabet, 4) {
			histogram[len(h)]++
		}
		if fmt.Sprint(counts) != fmt.Sprint(histogram) {
			t.Errorf("%s: counts %v != Language histogram %v", a.Name(), counts, histogram)
		}
	}
}

// chaosAutomaton accepts every history over any alphabet from a single
// state, so |L| at length l is |alphabet|^l — the cheapest way to drive
// the engine's counters toward overflow.
type chaosAutomaton struct{}

func (chaosAutomaton) Name() string      { return "chaos" }
func (chaosAutomaton) Init() value.Value { return value.EmptyBag() }
func (chaosAutomaton) Step(s value.Value, op history.Op) []value.Value {
	return []value.Value{s}
}

func TestEngineCountOverflowPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected overflow panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "overflow") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	// 4^32 = 2^64 overflows uint64 at depth 32; the class frontier stays
	// a single node, so the run is instant.
	automaton.CountLanguage(chaosAutomaton{}, history.QueueAlphabet(2), 32)
}

func TestEngineCountNearOverflowExact(t *testing.T) {
	counts := automaton.CountLanguage(chaosAutomaton{}, history.QueueAlphabet(2), 31)
	want := uint64(1) << 62 // 4^31
	if counts[31] != want {
		t.Errorf("counts[31] = %d, want %d", counts[31], want)
	}
}
