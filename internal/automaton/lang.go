package automaton

import (
	"fmt"
	"strings"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// CompareResult reports a bounded comparison of two languages: for every
// history over the alphabet up to MaxLen, whether each automaton accepts
// it. Because the languages are prefix-closed, the exploration prunes
// histories rejected by both sides.
type CompareResult struct {
	// MaxLen is the history-length bound of the exploration.
	MaxLen int
	// CountA[l] and CountB[l] are the numbers of accepted histories of
	// length exactly l, for l in 0..MaxLen.
	CountA, CountB []int
	// Equal reports L(A) = L(B) restricted to histories ≤ MaxLen.
	Equal bool
	// OnlyA is the first history found in L(A) \ L(B), if any; OnlyB
	// likewise for L(B) \ L(A).
	OnlyA, OnlyB history.History
	// Explored is the total number of histories visited.
	Explored int
}

// SubsetAB reports L(A) ⊆ L(B) up to the bound.
func (r CompareResult) SubsetAB() bool { return r.OnlyA == nil }

// SubsetBA reports L(B) ⊆ L(A) up to the bound.
func (r CompareResult) SubsetBA() bool { return r.OnlyB == nil }

// String renders a per-length table of accepted-history counts.
func (r CompareResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "len  |L(A)|  |L(B)|\n")
	for l := 0; l <= r.MaxLen; l++ {
		fmt.Fprintf(&b, "%3d  %6d  %6d\n", l, r.CountA[l], r.CountB[l])
	}
	fmt.Fprintf(&b, "equal=%v explored=%d\n", r.Equal, r.Explored)
	return b.String()
}

type exploreNode struct {
	h       history.History
	statesA []value.Value // nil = h ∉ L(A)
	statesB []value.Value // nil = h ∉ L(B)
}

// Compare explores every history over alphabet of length ≤ maxLen
// accepted by at least one of a, b, and reports per-length counts,
// bounded language equality, and first counterexamples in each
// direction.
func Compare(a, b Automaton, alphabet []history.Op, maxLen int) CompareResult {
	res := CompareResult{
		MaxLen: maxLen,
		CountA: make([]int, maxLen+1),
		CountB: make([]int, maxLen+1),
		Equal:  true,
	}
	frontier := []exploreNode{{
		h:       history.Empty,
		statesA: []value.Value{a.Init()},
		statesB: []value.Value{b.Init()},
	}}
	res.CountA[0], res.CountB[0] = 1, 1
	res.Explored = 1
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []exploreNode
		for _, node := range frontier {
			for _, op := range alphabet {
				child := exploreNode{h: node.h.Append(op)}
				if node.statesA != nil {
					child.statesA = stepAll(a, node.statesA, op)
				}
				if node.statesB != nil {
					child.statesB = stepAll(b, node.statesB, op)
				}
				inA, inB := child.statesA != nil, child.statesB != nil
				if !inA && !inB {
					continue // dead for both; prefix closure prunes the subtree
				}
				res.Explored++
				if inA {
					res.CountA[depth]++
				}
				if inB {
					res.CountB[depth]++
				}
				if inA != inB {
					res.Equal = false
					if inA && res.OnlyA == nil {
						res.OnlyA = child.h
					}
					if inB && res.OnlyB == nil {
						res.OnlyB = child.h
					}
				}
				next = append(next, child)
			}
		}
		frontier = next
	}
	return res
}

// Language enumerates L(a) restricted to histories of length ≤ maxLen
// over the alphabet. The result preserves BFS order (shorter histories
// first). Intended for small bounds; the language grows exponentially.
func Language(a Automaton, alphabet []history.Op, maxLen int) []history.History {
	type node struct {
		h      history.History
		states []value.Value
	}
	out := []history.History{history.Empty}
	frontier := []node{{h: history.Empty, states: []value.Value{a.Init()}}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []node
		for _, n := range frontier {
			for _, op := range alphabet {
				states := stepAll(a, n.states, op)
				if states == nil {
					continue
				}
				child := node{h: n.h.Append(op), states: states}
				out = append(out, child.h)
				next = append(next, child)
			}
		}
		frontier = next
	}
	return out
}

// IsDeterministic reports, by bounded exploration, whether δ*(H) is a
// singleton for every accepted history H of length ≤ maxLen — the
// property the proof of Theorem 4 uses ("the postconditions ...
// completely determine the new value of the queue"). It returns a
// witness history with multiple reachable states when not.
func IsDeterministic(a Automaton, alphabet []history.Op, maxLen int) (bool, history.History) {
	type node struct {
		h      history.History
		states []value.Value
	}
	frontier := []node{{h: history.Empty, states: []value.Value{a.Init()}}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []node
		for _, n := range frontier {
			for _, op := range alphabet {
				states := stepAll(a, n.states, op)
				if states == nil {
					continue
				}
				child := node{h: n.h.Append(op), states: states}
				if len(states) > 1 {
					return false, child.h
				}
				next = append(next, child)
			}
		}
		frontier = next
	}
	return true, nil
}

// CountLanguage returns the number of accepted histories of each length
// 0..maxLen without materializing them.
func CountLanguage(a Automaton, alphabet []history.Op, maxLen int) []int {
	type node struct {
		states []value.Value
	}
	counts := make([]int, maxLen+1)
	counts[0] = 1
	frontier := []node{{states: []value.Value{a.Init()}}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []node
		for _, n := range frontier {
			for _, op := range alphabet {
				states := stepAll(a, n.states, op)
				if states == nil {
					continue
				}
				counts[depth]++
				next = append(next, node{states: states})
			}
		}
		frontier = next
	}
	return counts
}
