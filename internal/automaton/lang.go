package automaton

import (
	"fmt"
	"strings"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// CompareResult reports a bounded comparison of two languages: for every
// history over the alphabet up to MaxLen, whether each automaton accepts
// it. Because the languages are prefix-closed, the exploration prunes
// histories rejected by both sides.
type CompareResult struct {
	// MaxLen is the history-length bound of the exploration.
	MaxLen int
	// CountA[l] and CountB[l] are the numbers of accepted histories of
	// length exactly l, for l in 0..MaxLen. Counts are exact uint64
	// values; every accumulation is overflow-checked.
	CountA, CountB []uint64
	// Equal reports L(A) = L(B) restricted to histories ≤ MaxLen.
	Equal bool
	// OnlyA is the first history found in L(A) \ L(B), if any; OnlyB
	// likewise for L(B) \ L(A).
	OnlyA, OnlyB history.History
	// Explored is the total number of histories visited (accepted by at
	// least one side).
	Explored uint64
}

// SubsetAB reports L(A) ⊆ L(B) up to the bound.
func (r CompareResult) SubsetAB() bool { return r.OnlyA == nil }

// SubsetBA reports L(B) ⊆ L(A) up to the bound.
func (r CompareResult) SubsetBA() bool { return r.OnlyB == nil }

// String renders a per-length table of accepted-history counts.
func (r CompareResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "len  |L(A)|  |L(B)|\n")
	for l := 0; l <= r.MaxLen; l++ {
		fmt.Fprintf(&b, "%3d  %6d  %6d\n", l, r.CountA[l], r.CountB[l])
	}
	fmt.Fprintf(&b, "equal=%v explored=%d\n", r.Equal, r.Explored)
	return b.String()
}

type exploreNode struct {
	h       history.History
	statesA []value.Value // nil = h ∉ L(A)
	statesB []value.Value // nil = h ∉ L(B)
}

// NaiveCompare is the direct per-history BFS comparison: one frontier
// node per accepted history. It is kept as the differential-test oracle
// for the memoized powerset engine behind Compare (see engine.go) and
// is exponentially slower; production callers should use Compare.
func NaiveCompare(a, b Automaton, alphabet []history.Op, maxLen int) CompareResult {
	res := CompareResult{
		MaxLen: maxLen,
		CountA: make([]uint64, maxLen+1),
		CountB: make([]uint64, maxLen+1),
		Equal:  true,
	}
	frontier := []exploreNode{{
		h:       history.Empty,
		statesA: []value.Value{a.Init()},
		statesB: []value.Value{b.Init()},
	}}
	res.CountA[0], res.CountB[0] = 1, 1
	res.Explored = 1
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []exploreNode
		for _, node := range frontier {
			for _, op := range alphabet {
				child := exploreNode{h: node.h.Append(op)}
				if node.statesA != nil {
					child.statesA = stepAll(a, node.statesA, op)
				}
				if node.statesB != nil {
					child.statesB = stepAll(b, node.statesB, op)
				}
				inA, inB := child.statesA != nil, child.statesB != nil
				if !inA && !inB {
					continue // dead for both; prefix closure prunes the subtree
				}
				res.Explored++
				if inA {
					res.CountA[depth]++
				}
				if inB {
					res.CountB[depth]++
				}
				if inA != inB {
					res.Equal = false
					if inA && res.OnlyA == nil {
						res.OnlyA = child.h
					}
					if inB && res.OnlyB == nil {
						res.OnlyB = child.h
					}
				}
				next = append(next, child)
			}
		}
		frontier = next
	}
	return res
}

// Language enumerates L(a) restricted to histories of length ≤ maxLen
// over the alphabet. The result preserves BFS order (shorter histories
// first). Intended for small bounds; the language grows exponentially.
func Language(a Automaton, alphabet []history.Op, maxLen int) []history.History {
	type node struct {
		h      history.History
		states []value.Value
	}
	out := []history.History{history.Empty}
	frontier := []node{{h: history.Empty, states: []value.Value{a.Init()}}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []node
		for _, n := range frontier {
			for _, op := range alphabet {
				states := stepAll(a, n.states, op)
				if states == nil {
					continue
				}
				child := node{h: n.h.Append(op), states: states}
				out = append(out, child.h)
				next = append(next, child)
			}
		}
		frontier = next
	}
	return out
}

// NaiveIsDeterministic is the per-history BFS determinism check, kept
// as the differential-test oracle for IsDeterministic (engine.go).
func NaiveIsDeterministic(a Automaton, alphabet []history.Op, maxLen int) (bool, history.History) {
	type node struct {
		h      history.History
		states []value.Value
	}
	frontier := []node{{h: history.Empty, states: []value.Value{a.Init()}}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []node
		for _, n := range frontier {
			for _, op := range alphabet {
				states := stepAll(a, n.states, op)
				if states == nil {
					continue
				}
				child := node{h: n.h.Append(op), states: states}
				if len(states) > 1 {
					return false, child.h
				}
				next = append(next, child)
			}
		}
		frontier = next
	}
	return true, nil
}

// NaiveCountLanguage is the per-history BFS language counter, kept as
// the differential-test oracle for CountLanguage (engine.go).
func NaiveCountLanguage(a Automaton, alphabet []history.Op, maxLen int) []uint64 {
	type node struct {
		states []value.Value
	}
	counts := make([]uint64, maxLen+1)
	counts[0] = 1
	frontier := []node{{states: []value.Value{a.Init()}}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []node
		for _, n := range frontier {
			for _, op := range alphabet {
				states := stepAll(a, n.states, op)
				if states == nil {
					continue
				}
				counts[depth]++
				next = append(next, node{states: states})
			}
		}
		frontier = next
	}
	return counts
}
