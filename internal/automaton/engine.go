package automaton

import (
	"math"
	"runtime"
	"strings"
	"sync"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// This file implements the memoized powerset exploration engine behind
// Compare, CountLanguage, and IsDeterministic.
//
// For a simple object automaton, acceptance of every extension of a
// history h depends only on the reachable state set δ*(h) — not on h
// itself. Bounded language exploration therefore does not need one
// frontier node per accepted history (|alphabet|^maxLen of them); it can
// partition the histories of each length into equivalence classes by
// their canonical state-set key and carry one node per class with a
// multiplicity count. For the automata in this repository the number of
// distinct classes per depth is small and roughly constant, so the
// exponential frontier collapses to near-linear work in maxLen.
//
// Soundness rests on two facts: languages of simple object automata are
// prefix-closed, and δ* factors through state sets
// (δ*(h·p) = ⋃_{s∈δ*(h)} δ(s, p)), so every history in a class has
// exactly the same accepted extensions. Counts are exact because class
// multiplicities sum the histories merged into the class, with every
// addition overflow-checked.
//
// Counterexamples stay exact too: each class carries the
// lexicographically least history mapping to it (as alphabet indices).
// The frontier is kept in first-discovery order, which by induction is
// the lexicographic order of those representatives, so the first class
// whose membership differs between the two automata yields the same
// counterexample history the per-history BFS would have found.
//
// Parallelism is deterministic by construction: each depth's frontier is
// split into contiguous chunks, one per worker; workers emit child
// updates in (parent, op) order; and the merge concatenates the chunks
// in worker order, which reproduces the serial discovery order exactly.
// No map iteration order ever escapes (relaxlint det-maporder stays
// green), so any GOMAXPROCS yields byte-identical results.

// langClass is one equivalence class of same-length histories: all
// histories h with identical (δ*_A(h), δ*_B(h)) state-set pairs.
type langClass struct {
	statesA []value.Value // δ*_A of the class members; nil = rejected by A
	statesB []value.Value // δ*_B likewise (unused in single-automaton mode)
	mult    uint64        // number of histories in the class
	rep     []byte        // alphabet indices of the lexicographically least member
}

// deadKey marks a rejected side in class keys. State keys are printable,
// so the control bytes used here cannot collide with them.
const (
	deadKey     = "\x00"
	setKeySep   = '\x1e'
	sideKeySep  = "\x1f"
	maxAlphabet = 256
	minParFront = 64 // below this, sharding costs more than it saves
	overflowMsg = "automaton: bounded history count overflows uint64"
	alphabetMsg = "automaton: alphabet too large for the exploration engine"
)

// setKey canonically encodes a state set (already deduplicated and
// sorted by stepAll).
func setKey(states []value.Value) string {
	if states == nil {
		return deadKey
	}
	var b strings.Builder
	for i, s := range states {
		if i > 0 {
			b.WriteByte(setKeySep)
		}
		b.WriteString(s.Key())
	}
	return b.String()
}

// addMult is overflow-checked uint64 addition.
func addMult(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		panic(overflowMsg)
	}
	return a + b
}

// repHistory rebuilds a representative history from alphabet indices.
func repHistory(rep []byte, alphabet []history.Op) history.History {
	h := make(history.History, len(rep))
	for i, idx := range rep {
		h[i] = alphabet[idx]
	}
	return h
}

// childUpdate is one live child emitted during depth expansion, before
// merging into classes.
type childUpdate struct {
	key              string
	statesA, statesB []value.Value
	parent           int // frontier index of the parent class
	op               int // alphabet index of the appended operation
	mult             uint64
}

// expandRange expands frontier[lo:hi] by every alphabet operation,
// emitting live children in (parent, op) order. b may be nil
// (single-automaton mode).
func expandRange(a, b Automaton, frontier []langClass, alphabet []history.Op, lo, hi int) []childUpdate {
	out := make([]childUpdate, 0, (hi-lo)*len(alphabet))
	for i := lo; i < hi; i++ {
		c := frontier[i]
		for op := range alphabet {
			var sa, sb []value.Value
			if c.statesA != nil {
				sa = stepAll(a, c.statesA, alphabet[op])
			}
			if b != nil && c.statesB != nil {
				sb = stepAll(b, c.statesB, alphabet[op])
			}
			if sa == nil && sb == nil {
				continue // dead for both; prefix closure prunes the subtree
			}
			key := setKey(sa)
			if b != nil {
				key += sideKeySep + setKey(sb)
			}
			out = append(out, childUpdate{key: key, statesA: sa, statesB: sb, parent: i, op: op, mult: c.mult})
		}
	}
	return out
}

// expandChunks shards the frontier across a GOMAXPROCS worker pool and
// concatenates the per-worker results in worker order, which equals the
// serial emission order because the chunks are contiguous.
func expandChunks(a, b Automaton, frontier []langClass, alphabet []history.Op) []childUpdate {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(frontier) {
		workers = len(frontier)
	}
	if workers <= 1 || len(frontier) < minParFront {
		return expandRange(a, b, frontier, alphabet, 0, len(frontier))
	}
	parts := make([][]childUpdate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(frontier) / workers
		hi := (w + 1) * len(frontier) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = expandRange(a, b, frontier, alphabet, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	observeShards(parts)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]childUpdate, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// expandClasses computes the next depth's frontier: children are merged
// by class key in first-discovery order, accumulating multiplicities.
func expandClasses(a, b Automaton, frontier []langClass, alphabet []history.Op) []langClass {
	updates := expandChunks(a, b, frontier, alphabet)
	index := make(map[string]int, len(updates))
	next := make([]langClass, 0, len(updates))
	for _, u := range updates {
		if i, ok := index[u.key]; ok {
			next[i].mult = addMult(next[i].mult, u.mult)
			continue
		}
		parentRep := frontier[u.parent].rep
		rep := make([]byte, len(parentRep)+1)
		copy(rep, parentRep)
		rep[len(parentRep)] = byte(u.op)
		index[u.key] = len(next)
		next = append(next, langClass{statesA: u.statesA, statesB: u.statesB, mult: u.mult, rep: rep})
	}
	observeExpand(len(updates), len(next))
	return next
}

func checkAlphabet(alphabet []history.Op) {
	if len(alphabet) > maxAlphabet {
		panic(alphabetMsg)
	}
}

// Compare explores every history over alphabet of length ≤ maxLen
// accepted by at least one of a, b, and reports per-length counts,
// bounded language equality, and first counterexamples in each
// direction. It runs on the memoized powerset engine (see the package
// comment above) and produces exactly the counts, verdicts, and
// counterexamples of the per-history exploration NaiveCompare.
func Compare(a, b Automaton, alphabet []history.Op, maxLen int) CompareResult {
	checkAlphabet(alphabet)
	res := CompareResult{
		MaxLen: maxLen,
		CountA: make([]uint64, maxLen+1),
		CountB: make([]uint64, maxLen+1),
		Equal:  true,
	}
	frontier := []langClass{{
		statesA: []value.Value{a.Init()},
		statesB: []value.Value{b.Init()},
		mult:    1,
	}}
	res.CountA[0], res.CountB[0] = 1, 1
	res.Explored = 1
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		frontier = expandClasses(a, b, frontier, alphabet)
		for _, c := range frontier {
			res.Explored = addMult(res.Explored, c.mult)
			inA, inB := c.statesA != nil, c.statesB != nil
			if inA {
				res.CountA[depth] = addMult(res.CountA[depth], c.mult)
			}
			if inB {
				res.CountB[depth] = addMult(res.CountB[depth], c.mult)
			}
			if inA != inB {
				res.Equal = false
				if inA && res.OnlyA == nil {
					res.OnlyA = repHistory(c.rep, alphabet)
				}
				if inB && res.OnlyB == nil {
					res.OnlyB = repHistory(c.rep, alphabet)
				}
			}
		}
	}
	return res
}

// CountLanguage returns the number of accepted histories of each length
// 0..maxLen without materializing them, using the memoized powerset
// engine. Counts are exact and overflow-checked.
func CountLanguage(a Automaton, alphabet []history.Op, maxLen int) []uint64 {
	checkAlphabet(alphabet)
	counts := make([]uint64, maxLen+1)
	counts[0] = 1
	frontier := []langClass{{statesA: []value.Value{a.Init()}, mult: 1}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		frontier = expandClasses(a, nil, frontier, alphabet)
		for _, c := range frontier {
			counts[depth] = addMult(counts[depth], c.mult)
		}
	}
	return counts
}

// IsDeterministic reports, by bounded exploration on the powerset
// engine, whether δ*(H) is a singleton for every accepted history H of
// length ≤ maxLen — the property the proof of Theorem 4 uses ("the
// postconditions ... completely determine the new value of the queue").
// It returns a witness history with multiple reachable states when not;
// the witness is the first one the per-history BFS would have found.
func IsDeterministic(a Automaton, alphabet []history.Op, maxLen int) (bool, history.History) {
	checkAlphabet(alphabet)
	frontier := []langClass{{statesA: []value.Value{a.Init()}, mult: 1}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		frontier = expandClasses(a, nil, frontier, alphabet)
		for _, c := range frontier {
			if len(c.statesA) > 1 {
				return false, repHistory(c.rep, alphabet)
			}
		}
	}
	return true, nil
}
