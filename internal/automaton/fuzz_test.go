package automaton_test

import (
	"fmt"
	"testing"

	"relaxlattice/internal/automaton"
)

// FuzzEngineMatchesNaive differentially fuzzes the memoized powerset
// engine against the retained per-history Naive* oracles over every
// pair of registered specification automata: same counts, same
// verdicts, same first-found counterexamples and witnesses. The fuzzer
// picks the pair and the exploration depth; depth is clamped small
// because the naive side is exponential in it.
func FuzzEngineMatchesNaive(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(4))
	f.Add(uint8(3), uint8(3), uint8(5))
	f.Add(uint8(7), uint8(2), uint8(3))
	f.Add(uint8(255), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, ai, bi, depth uint8) {
		list := sortedSpecs()
		a := list[int(ai)%len(list)]
		b := list[int(bi)%len(list)]
		maxLen := int(depth) % 6
		alphabet := alphabetFor(a)
		if fmt.Sprint(alphabet) != fmt.Sprint(alphabetFor(b)) {
			return // incomparable interfaces
		}
		got := automaton.Compare(a, b, alphabet, maxLen)
		want := automaton.NaiveCompare(a, b, alphabet, maxLen)
		if diff := compareResultsEqual(got, want); diff != "" {
			t.Fatalf("Compare(%s, %s, len %d): %s", a.Name(), b.Name(), maxLen, diff)
		}
		gotN := automaton.CountLanguage(a, alphabet, maxLen)
		wantN := automaton.NaiveCountLanguage(a, alphabet, maxLen)
		if fmt.Sprint(gotN) != fmt.Sprint(wantN) {
			t.Fatalf("CountLanguage(%s, len %d) = %v, naive %v", a.Name(), maxLen, gotN, wantN)
		}
		gotOK, gotWit := automaton.IsDeterministic(a, alphabet, maxLen)
		wantOK, wantWit := automaton.NaiveIsDeterministic(a, alphabet, maxLen)
		if gotOK != wantOK || gotWit.String() != wantWit.String() {
			t.Fatalf("IsDeterministic(%s, len %d) = (%v, %v), naive (%v, %v)",
				a.Name(), maxLen, gotOK, gotWit, wantOK, wantWit)
		}
	})
}
