package automaton

import (
	"sync"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/value"
)

// PairState is the state of a product automaton: one state from each
// component.
type PairState struct {
	A, B value.Value
}

// Key returns the canonical encoding.
func (p PairState) Key() string { return "(" + p.A.Key() + "×" + p.B.Key() + ")" }

// String renders the pair.
func (p PairState) String() string { return "(" + p.A.String() + ", " + p.B.String() + ")" }

// stepCache is a successor transposition cache shared by the combined
// automata: combined states multiply component nondeterminism, so the
// same (state, op) successor computation recurs across exploration
// nodes. Step results are deterministic and immutable, so caching them
// behind a lock preserves determinism while staying safe for the
// engine's concurrent Step calls.
//
// Hit/miss counts go to the *runtime* registry only: two workers can
// both miss on the same key and compute it twice, so the split is
// scheduling-dependent even though the cached values never are.
type stepCache struct {
	mu sync.RWMutex
	// steps memoizes Step results by state key and operation;
	// guarded by mu.
	steps        map[string][]value.Value
	hits, misses *obs.Counter // runtime-only; nil when unobserved
}

func newStepCache() *stepCache {
	c := &stepCache{steps: make(map[string][]value.Value)}
	c.hits, c.misses = stepCacheCounters()
	return c
}

// lookup returns the cached successors for (s, op), if present.
func (c *stepCache) lookup(key string) ([]value.Value, bool) {
	c.mu.RLock()
	v, ok := c.steps[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// store records the successors for a cache key.
func (c *stepCache) store(key string, v []value.Value) {
	c.mu.Lock()
	c.steps[key] = v
	c.mu.Unlock()
}

// cacheKey combines a state's canonical key with an operation. State
// keys are printable, so the NUL separator cannot collide.
func cacheKey(s value.Value, op history.Op) string {
	return s.Key() + "\x00" + op.String()
}

type product struct {
	name  string
	a, b  Automaton
	cache *stepCache
}

var _ Automaton = (*product)(nil)

// Intersect returns the product automaton accepting L(a) ∩ L(b).
// Because acceptance of these automata is the existence of a run (every
// state is accepting), the pairwise product accepts a history exactly
// when both components do.
func Intersect(name string, a, b Automaton) Automaton {
	return &product{name: name, a: a, b: b, cache: newStepCache()}
}

func (p *product) Name() string { return p.name }

func (p *product) Init() value.Value {
	return PairState{A: p.a.Init(), B: p.b.Init()}
}

func (p *product) Step(s value.Value, op history.Op) []value.Value {
	ps, ok := s.(PairState)
	if !ok {
		return nil
	}
	key := cacheKey(s, op)
	if out, ok := p.cache.lookup(key); ok {
		return out
	}
	out := p.step(ps, op)
	p.cache.store(key, out)
	return out
}

func (p *product) step(ps PairState, op history.Op) []value.Value {
	nextA := p.a.Step(ps.A, op)
	if len(nextA) == 0 {
		return nil
	}
	nextB := p.b.Step(ps.B, op)
	if len(nextB) == 0 {
		return nil
	}
	out := make([]value.Value, 0, len(nextA)*len(nextB))
	for _, sa := range nextA {
		for _, sb := range nextB {
			out = append(out, PairState{A: sa, B: sb})
		}
	}
	return out
}

type union struct {
	name  string
	a, b  Automaton
	cache *stepCache
}

var _ Automaton = (*union)(nil)

// eitherState wraps a component state, remembering which components are
// still alive.
type eitherState struct {
	a, b value.Value // nil = that component has died
}

func (e eitherState) Key() string {
	ka, kb := "⊥", "⊥"
	if e.a != nil {
		ka = e.a.Key()
	}
	if e.b != nil {
		kb = e.b.Key()
	}
	return "(" + ka + "∪" + kb + ")"
}

func (e eitherState) String() string { return e.Key() }

// Union returns an automaton accepting L(a) ∪ L(b): it runs both
// components and accepts while at least one is alive.
func Union(name string, a, b Automaton) Automaton {
	return &union{name: name, a: a, b: b, cache: newStepCache()}
}

func (u *union) Name() string { return u.name }

func (u *union) Init() value.Value {
	return eitherState{a: u.a.Init(), b: u.b.Init()}
}

func (u *union) Step(s value.Value, op history.Op) []value.Value {
	es, ok := s.(eitherState)
	if !ok {
		return nil
	}
	key := cacheKey(s, op)
	if out, ok := u.cache.lookup(key); ok {
		return out
	}
	out := u.step(es, op)
	u.cache.store(key, out)
	return out
}

func (u *union) step(es eitherState, op history.Op) []value.Value {
	// Track each component's full state set inside a single union
	// state, so nondeterministic branching does not split liveness
	// between siblings. We fold the component state sets here.
	var nextA, nextB []value.Value
	if es.a != nil {
		nextA = u.a.Step(es.a, op)
	}
	if es.b != nil {
		nextB = u.b.Step(es.b, op)
	}
	if len(nextA) == 0 && len(nextB) == 0 {
		return nil
	}
	// Pair every surviving combination; dead components carry nil.
	var out []value.Value
	if len(nextA) == 0 {
		for _, sb := range nextB {
			out = append(out, eitherState{b: sb})
		}
		return out
	}
	if len(nextB) == 0 {
		for _, sa := range nextA {
			out = append(out, eitherState{a: sa})
		}
		return out
	}
	for _, sa := range nextA {
		for _, sb := range nextB {
			out = append(out, eitherState{a: sa, b: sb})
		}
	}
	return out
}

// RejectionPoint returns the length of the shortest rejected prefix of
// h (len(h)+1 meaning h is accepted), and that prefix. Because the
// languages are prefix-closed this pinpoints exactly where a history
// leaves L(a) — useful for explaining degradation.
func RejectionPoint(a Automaton, h history.History) (int, history.History) {
	states := []value.Value{a.Init()}
	for i, op := range h {
		states = stepAll(a, states, op)
		if len(states) == 0 {
			return i + 1, h.Prefix(i + 1)
		}
	}
	return len(h) + 1, nil
}
