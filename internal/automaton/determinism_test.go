package automaton

import (
	"testing"

	"relaxlattice/internal/history"
)

func TestIsDeterministic(t *testing.T) {
	alphabet := []history.Op{history.Enq(0), history.DeqOk(0)}
	// counter is deterministic.
	ok, witness := IsDeterministic(counter(), history.AccountAlphabet(2), 4)
	if !ok {
		t.Errorf("counter nondeterministic at %v", witness)
	}
	// chaos branches on Enq.
	ok, witness = IsDeterministic(chaos(), alphabet, 3)
	if ok {
		t.Fatalf("chaos reported deterministic")
	}
	if len(witness) != 1 || !witness[0].Equal(history.Enq(0)) {
		t.Errorf("witness = %v", witness)
	}
}
