package automaton

import (
	"fmt"
	"sort"
	"strings"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// DOT renders the automaton's reachable state graph (over the alphabet,
// up to maxDepth transitions from s₀) in Graphviz DOT format. States
// are labeled with their String form; edges with the operation
// executions. Intended for inspecting and documenting small
// specifications.
func DOT(a Automaton, alphabet []history.Op, maxDepth int) string {
	type edge struct {
		from, to, label string
	}
	var edges []edge
	labels := map[string]string{}
	init := a.Init()
	labels[init.Key()] = init.String()
	frontier := []value.Value{init}
	seen := map[string]bool{init.Key(): true}
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []value.Value
		for _, s := range frontier {
			for _, op := range alphabet {
				for _, s2 := range a.Step(s, op) {
					edges = append(edges, edge{from: s.Key(), to: s2.Key(), label: op.String()})
					if !seen[s2.Key()] {
						seen[s2.Key()] = true
						labels[s2.Key()] = s2.String()
						next = append(next, s2)
					}
				}
			}
		}
		frontier = next
	}

	ids := map[string]int{}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		ids[k] = i
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", a.Name())
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", ids[k], labels[k])
	}
	// Merge parallel edges between the same states into one label.
	merged := map[[2]int][]string{}
	for _, e := range edges {
		key := [2]int{ids[e.from], ids[e.to]}
		merged[key] = append(merged[key], e.label)
	}
	var pairs [][2]int
	for k := range merged {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, k := range pairs {
		labelSet := merged[k]
		sort.Strings(labelSet)
		labelSet = uniqueStrings(labelSet)
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", k[0], k[1], strings.Join(labelSet, "\\n"))
	}
	b.WriteString("}\n")
	return b.String()
}

func uniqueStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}
