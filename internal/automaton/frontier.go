package automaton

import (
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// Frontier maintains δ*(s₀, h) for an incrementally extended history:
// the exploration engine's state-set representation (deduplicated,
// sorted, canonically keyed — engine.go's setKey) applied one operation
// at a time. Where Accepts replays the whole history on every call —
// O(|h|) automaton steps per query, O(|h|²) for a growing history — a
// Frontier pays one stepAll per operation, amortized O(frontier size),
// which is what makes online relaxation checking tractable on 10k-op
// soak runs.
//
// Once a prefix is rejected the frontier is dead forever (languages of
// simple object automata are prefix-closed); further Steps only count
// operations.
//
// A Frontier is not safe for concurrent use; callers serialize Steps.
type Frontier struct {
	a      Automaton
	states []value.Value // nil = dead; otherwise deduplicated + sorted
	key    string        // canonical key of states; "" = not yet computed
	steps  int
	peak   int

	// memo caches state-set transitions keyed by (set key, op key), the
	// same state-class identification the exploration engine memoizes
	// on. It pays off on automata whose reachable state sets recur
	// (compiled quorum automata, small cyclic specs) and is bounded by
	// memoCap entries; 0 disables memoization.
	memo    map[string][]value.Value
	memoCap int
}

// NewFrontier starts a frontier at {s₀} (the empty history).
func NewFrontier(a Automaton) *Frontier {
	return &Frontier{a: a, states: []value.Value{a.Init()}, peak: 1}
}

// EnableMemo turns on transition memoization with the given entry cap
// (≤ 0 disables it). The cache keys transitions by canonical state-set
// key, so it is only worthwhile when state keys are short and state
// sets recur; a full cache stops admitting new entries rather than
// evicting.
func (f *Frontier) EnableMemo(cap int) {
	if cap <= 0 {
		f.memo = nil
		f.memoCap = 0
		return
	}
	f.memo = make(map[string][]value.Value)
	f.memoCap = cap
}

// Step advances the frontier by one operation execution and reports
// whether the extended history is still accepted.
func (f *Frontier) Step(op history.Op) bool {
	f.steps++
	if f.states == nil {
		return false
	}
	if f.memo == nil {
		f.states = stepAll(f.a, f.states, op)
		f.key = ""
	} else {
		k := f.Key() + string(setKeySep) + op.String()
		next, hit := f.memo[k]
		if !hit {
			next = stepAll(f.a, f.states, op)
			if len(f.memo) < f.memoCap {
				f.memo[k] = next
			}
		}
		f.states = next
		f.key = ""
	}
	if len(f.states) > f.peak {
		f.peak = len(f.states)
	}
	return f.states != nil
}

// Alive reports whether the history fed so far is accepted.
func (f *Frontier) Alive() bool { return f.states != nil }

// Size returns the number of states in the frontier (0 when dead).
func (f *Frontier) Size() int { return len(f.states) }

// Peak returns the largest frontier size seen so far.
func (f *Frontier) Peak() int { return f.peak }

// Steps returns the number of operations fed.
func (f *Frontier) Steps() int { return f.steps }

// States returns the frontier's state set in canonical order. The
// returned slice is shared; callers must not mutate it.
func (f *Frontier) States() []value.Value { return f.states }

// Key returns the canonical state-class key of the frontier — the same
// encoding the exploration engine uses to identify state sets
// (SetKey). Two frontiers of the same automaton with equal keys accept
// exactly the same extensions.
func (f *Frontier) Key() string {
	if f.key == "" {
		f.key = setKey(f.states)
	}
	return f.key
}

// SetKey canonically encodes a deduplicated, sorted state set; the
// empty (dead) set has a reserved key. This is the exploration
// engine's state-class representation, exported so online checkers can
// share it.
func SetKey(states []value.Value) string { return setKey(states) }
