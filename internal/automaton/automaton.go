// Package automaton implements the simple object automata of Section 2:
// an automaton ⟨STATE, s₀, OP, δ⟩ accepting histories of operation
// executions, with δ extended to histories (δ*), acceptance, and bounded
// language enumeration and comparison.
//
// Automata are built from Larch-style interfaces (Section 2.4): each
// operation has a precondition over the starting state and a successor
// enumerator realizing its postcondition relation, so that
// s' ∈ δ(s, p) iff p.pre(s) ∧ p.post(s, s').
package automaton

import (
	"sort"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// Automaton is a simple object automaton. Step returns the set of
// possible successor states of s on operation execution op; an empty
// result means op is not accepted from s. Implementations must be
// deterministic functions of (s, op), must not mutate s, and must be
// safe for concurrent Step calls: the exploration engine (engine.go)
// shards its frontier across a worker pool.
type Automaton interface {
	// Name identifies the automaton (used in lattice and experiment output).
	Name() string
	// Init returns the initial state s₀.
	Init() value.Value
	// Step is the transition function δ: STATE × OP → 2^STATE.
	Step(s value.Value, op history.Op) []value.Value
}

// StatesAfter computes δ*(s₀, h): the set of states reachable by h,
// deduplicated by canonical key and sorted for determinism. It returns
// nil when h is not accepted.
func StatesAfter(a Automaton, h history.History) []value.Value {
	states := []value.Value{a.Init()}
	for _, op := range h {
		states = stepAll(a, states, op)
		if len(states) == 0 {
			return nil
		}
	}
	return states
}

func stepAll(a Automaton, states []value.Value, op history.Op) []value.Value {
	// Fast path: a single state with at most one successor (the common
	// deterministic-automaton case) needs no map or sort.
	if len(states) == 1 {
		next := a.Step(states[0], op)
		if len(next) == 0 {
			return nil
		}
		if len(next) == 1 {
			return next
		}
	}
	next := make(map[string]value.Value)
	for _, s := range states {
		for _, s2 := range a.Step(s, op) {
			next[s2.Key()] = s2
		}
	}
	return sortValues(next)
}

func sortValues(m map[string]value.Value) []value.Value {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Value, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// Accepts reports whether h ∈ L(a), i.e. δ*(h) ≠ ∅. Languages of simple
// object automata are prefix-closed: if a prefix is rejected, every
// extension is rejected.
func Accepts(a Automaton, h history.History) bool {
	return StatesAfter(a, h) != nil
}
