package automaton

import (
	"testing"

	"relaxlattice/internal/history"
)

// feedBoth drives a frontier and the offline replay in lockstep,
// asserting after every operation that the frontier's state set equals
// StatesAfter of the prefix.
func feedBoth(t *testing.T, a Automaton, h history.History, memoCap int) {
	t.Helper()
	f := NewFrontier(a)
	if memoCap > 0 {
		f.EnableMemo(memoCap)
	}
	for i, op := range h {
		alive := f.Step(op)
		prefix := h[:i+1]
		want := StatesAfter(a, prefix)
		if alive != (len(want) > 0) {
			t.Fatalf("step %d (%v): frontier alive=%v, offline has %d states", i+1, op, alive, len(want))
		}
		if SetKey(f.States()) != SetKey(want) {
			t.Fatalf("step %d (%v): frontier states %v, offline %v", i+1, op, f.States(), want)
		}
		if f.Size() != len(want) {
			t.Fatalf("step %d: Size=%d, offline %d", i+1, f.Size(), len(want))
		}
		if !alive {
			return
		}
	}
}

func TestFrontierMatchesStatesAfter(t *testing.T) {
	histories := []history.History{
		{},
		{history.Credit(5), history.DebitOk(2)},
		{history.Credit(1), history.DebitOk(2)}, // rejected at step 2
		{history.DebitOk(1)},                    // rejected immediately
	}
	for _, h := range histories {
		feedBoth(t, counter(), h, 0)
		feedBoth(t, counter(), h, 64)
	}
}

func TestFrontierNondeterministicGrowth(t *testing.T) {
	// chaos forks into two states per Enq; the frontier must carry the
	// whole powerset element, not a single path.
	h := history.History{history.Enq(1), history.Enq(1), history.Enq(1)}
	feedBoth(t, chaos(), h, 0)
	f := NewFrontier(chaos())
	for _, op := range h {
		if !f.Step(op) {
			t.Fatalf("chaos died on %v", op)
		}
	}
	if f.Size() < 2 {
		t.Fatalf("expected a forked frontier, got size %d", f.Size())
	}
	if f.Peak() < f.Size() {
		t.Fatalf("Peak %d below current size %d", f.Peak(), f.Size())
	}
	if f.Steps() != len(h) {
		t.Fatalf("Steps = %d, want %d", f.Steps(), len(h))
	}
}

func TestFrontierDeadIsPermanent(t *testing.T) {
	f := NewFrontier(counter())
	if f.Step(history.DebitOk(1)) {
		t.Fatal("overdraft accepted")
	}
	if f.Alive() {
		t.Fatal("dead frontier reports alive")
	}
	// Prefix-closed: no later operation revives it.
	if f.Step(history.Credit(10)) {
		t.Fatal("dead frontier revived")
	}
	if f.Size() != 0 {
		t.Fatalf("dead frontier size = %d", f.Size())
	}
}

func TestFrontierMemoMatchesUnmemoized(t *testing.T) {
	// A cyclic workload revisits state classes, so the memo actually
	// hits; both checkers must agree on every prefix.
	var h history.History
	for i := 0; i < 12; i++ {
		h = append(h, history.Credit(1), history.DebitOk(1))
	}
	plain := NewFrontier(counter())
	memo := NewFrontier(counter())
	memo.EnableMemo(8)
	for i, op := range h {
		pa, ma := plain.Step(op), memo.Step(op)
		if pa != ma {
			t.Fatalf("step %d: plain alive=%v, memoized alive=%v", i+1, pa, ma)
		}
		if plain.Key() != memo.Key() {
			t.Fatalf("step %d: plain key %q, memoized key %q", i+1, plain.Key(), memo.Key())
		}
	}
}

func TestFrontierKeyStable(t *testing.T) {
	f := NewFrontier(chaos())
	f.Step(history.Enq(1))
	k1 := f.Key()
	k2 := f.Key() // cached
	if k1 != k2 {
		t.Fatalf("Key not stable: %q vs %q", k1, k2)
	}
	g := NewFrontier(chaos())
	g.Step(history.Enq(1))
	if g.Key() != k1 {
		t.Fatalf("equal frontiers, different keys: %q vs %q", g.Key(), k1)
	}
}
