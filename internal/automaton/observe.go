package automaton

import (
	"sync/atomic"

	"relaxlattice/internal/obs"
)

// The exploration engine reports into two package-level registries with
// deliberately different determinism guarantees:
//
//   - ObserveEngine installs the *deterministic* registry. Everything
//     recorded there is computed at the per-depth merge point of
//     expandClasses, which is identical for every GOMAXPROCS (the
//     engine's sharded expansion reproduces the serial discovery order
//     exactly), so the final snapshot is byte-stable across worker
//     counts. These metrics go into `relaxctl run -metrics`.
//   - ObserveEngineRuntime installs the *runtime* registry for
//     scheduling-dependent quantities: step-cache hits and misses (two
//     workers can race to compute the same key, so the split varies
//     run to run) and shard sizes/imbalance (they depend on the worker
//     count by construction). These are published via expvar under
//     -pprof and must never be written to the deterministic snapshot.
//
// Both registries are held in atomic pointers so installation needs no
// lock and uninstalled observation costs one atomic load per depth.
// The obs instruments are nil-safe, so no call site branches.

var (
	engineObs atomic.Pointer[obs.Registry]
	engineRT  atomic.Pointer[obs.Registry]
)

// frontierBounds buckets per-depth class counts; the last bucket is
// open (overflow).
var frontierBounds = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384}

// ObserveEngine installs (or, with nil, uninstalls) the deterministic
// metrics registry for the exploration engine. Recorded there:
//
//	engine.expand.updates       counter: live children emitted across all depths
//	engine.expand.dedup_hits    counter: children merged into an existing class
//	engine.expand.depths        counter: depth expansions performed
//	engine.frontier.peak_classes gauge (max): largest frontier seen
//	engine.frontier.classes     histogram: per-depth frontier class counts
func ObserveEngine(r *obs.Registry) {
	engineObs.Store(r)
}

// ObserveEngineRuntime installs (or uninstalls) the runtime registry
// for scheduling-dependent engine metrics:
//
//	engine.stepcache.hits     counter: memoized-transition cache hits
//	engine.stepcache.misses   counter: memoized-transition cache misses
//	engine.shard.expands      counter: sharded depth expansions
//	engine.shard.workers      gauge (max): widest worker fan-out used
//	engine.shard.imbalance    histogram: per-expansion max−min chunk output sizes
func ObserveEngineRuntime(r *obs.Registry) {
	engineRT.Store(r)
}

// observeExpand records the deterministic per-depth merge outcome.
func observeExpand(updates, classes int) {
	r := engineObs.Load()
	if r == nil {
		return
	}
	r.Counter("engine.expand.updates").Add(uint64(updates))
	r.Counter("engine.expand.dedup_hits").Add(uint64(updates - classes))
	r.Counter("engine.expand.depths").Add(1)
	r.Gauge("engine.frontier.peak_classes").Max(int64(classes))
	r.Histogram("engine.frontier.classes", frontierBounds).Observe(int64(classes))
}

// observeShards records the runtime-only shard shape of one parallel
// expansion: chunk output sizes depend on how the frontier divided, so
// this never feeds the deterministic snapshot.
func observeShards(parts [][]childUpdate) {
	r := engineRT.Load()
	if r == nil {
		return
	}
	minSz, maxSz := len(parts[0]), len(parts[0])
	for _, p := range parts[1:] {
		if len(p) < minSz {
			minSz = len(p)
		}
		if len(p) > maxSz {
			maxSz = len(p)
		}
	}
	r.Counter("engine.shard.expands").Add(1)
	r.Gauge("engine.shard.workers").Max(int64(len(parts)))
	r.Histogram("engine.shard.imbalance", frontierBounds).Observe(int64(maxSz - minSz))
}

// stepCacheCounters resolves the runtime step-cache counters against
// the registry installed at construction time (nil registry → nil
// counters → no-op adds on the hot path).
func stepCacheCounters() (hits, misses *obs.Counter) {
	r := engineRT.Load()
	return r.Counter("engine.stepcache.hits"), r.Counter("engine.stepcache.misses")
}
