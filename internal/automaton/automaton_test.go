package automaton

import (
	"strings"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// counter is a test automaton over Account values: Credit(n) adds n,
// Debit(n) subtracts but requires balance ≥ n.
func counter() *Spec {
	return NewSpec("counter", value.NewAccount(0),
		OpSpec{
			Name: history.NameCredit,
			Succ: func(s value.Value, op history.Op) []value.Value {
				return []value.Value{value.NewAccount(s.(value.Account).Balance + op.Args[0])}
			},
		},
		OpSpec{
			Name: history.NameDebit,
			Pre: func(s value.Value, op history.Op) bool {
				return s.(value.Account).Balance >= op.Args[0]
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				if op.Term != history.Ok {
					return nil
				}
				return []value.Value{value.NewAccount(s.(value.Account).Balance - op.Args[0])}
			},
		},
	)
}

// chaos is nondeterministic: Enq(e) moves to one of two states.
func chaos() *Spec {
	return NewSpec("chaos", value.NewAccount(0),
		OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				b := s.(value.Account).Balance
				return []value.Value{value.NewAccount(b + 1), value.NewAccount(b + 2)}
			},
		},
		OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				// Only acceptable from an even state.
				return s.(value.Account).Balance%2 == 0
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				return []value.Value{s}
			},
		},
	)
}

func TestStatesAfterDeterministic(t *testing.T) {
	a := counter()
	h := history.History{history.Credit(5), history.DebitOk(2)}
	states := StatesAfter(a, h)
	if len(states) != 1 {
		t.Fatalf("states = %v", states)
	}
	if states[0].(value.Account).Balance != 3 {
		t.Errorf("balance = %v", states[0])
	}
}

func TestStatesAfterRejects(t *testing.T) {
	a := counter()
	// Debit exceeding balance violates the precondition.
	if Accepts(a, history.History{history.DebitOk(1)}) {
		t.Errorf("accepted overdraft")
	}
	// Unknown operation rejects.
	if Accepts(a, history.History{history.Enq(1)}) {
		t.Errorf("accepted unknown op")
	}
	// Prefix closure: a rejected prefix dooms every extension.
	h := history.History{history.DebitOk(1), history.Credit(5)}
	if Accepts(a, h) {
		t.Errorf("accepted history with rejected prefix")
	}
	// Empty history is always accepted.
	if !Accepts(a, history.Empty) {
		t.Errorf("rejected empty history")
	}
}

func TestNondeterministicSubsetTracking(t *testing.T) {
	a := chaos()
	// After one Enq the automaton is in {1, 2}; Deq is possible from 2.
	if !Accepts(a, history.History{history.Enq(0), history.DeqOk(0)}) {
		t.Errorf("nondeterminism not tracked: Deq should be reachable")
	}
	states := StatesAfter(a, history.History{history.Enq(0)})
	if len(states) != 2 {
		t.Fatalf("states = %v", states)
	}
	// After Deq, only the even branch survives.
	states = StatesAfter(a, history.History{history.Enq(0), history.DeqOk(0)})
	if len(states) != 1 || states[0].(value.Account).Balance != 2 {
		t.Errorf("surviving states = %v", states)
	}
}

func TestStatesAfterDeduplicates(t *testing.T) {
	// Two Enqs: {2,3,4} (1+1, 1+2=2+1, 2+2) — dedup by key.
	states := StatesAfter(chaos(), history.History{history.Enq(0), history.Enq(0)})
	if len(states) != 3 {
		t.Errorf("expected 3 deduplicated states, got %v", states)
	}
}

func TestPreAndPostHolds(t *testing.T) {
	a := counter()
	s0 := value.NewAccount(0)
	s5 := value.NewAccount(5)
	if !a.PreHolds(s5, history.DebitOk(3)) {
		t.Errorf("pre should hold")
	}
	if a.PreHolds(s0, history.DebitOk(3)) {
		t.Errorf("pre should fail on overdraft")
	}
	if a.PreHolds(s0, history.Enq(1)) {
		t.Errorf("pre of unknown op should be false")
	}
	if !a.PostHolds(s5, history.DebitOk(3), value.NewAccount(2)) {
		t.Errorf("post should hold")
	}
	if a.PostHolds(s5, history.DebitOk(3), value.NewAccount(1)) {
		t.Errorf("post should fail for wrong successor")
	}
	if a.PostHolds(s5, history.Enq(1), s5) {
		t.Errorf("post of unknown op should be false")
	}
}

func TestSpecPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate op", func() {
		NewSpec("dup", value.EmptyBag(),
			OpSpec{Name: "X", Succ: func(value.Value, history.Op) []value.Value { return nil }},
			OpSpec{Name: "X", Succ: func(value.Value, history.Op) []value.Value { return nil }},
		)
	})
	mustPanic("nil succ", func() {
		NewSpec("nosucc", value.EmptyBag(), OpSpec{Name: "X"})
	})
}

func TestSpecAccessors(t *testing.T) {
	a := counter()
	if a.Name() != "counter" {
		t.Errorf("Name = %q", a.Name())
	}
	names := a.OpNames()
	if len(names) != 2 || names[0] != "Credit" || names[1] != "Debit" {
		t.Errorf("OpNames = %v", names)
	}
	r := a.Rename("other")
	if r.Name() != "other" || !Accepts(r, history.History{history.Credit(1)}) {
		t.Errorf("Rename broken")
	}
}

func TestCompareEqualLanguages(t *testing.T) {
	alphabet := history.AccountAlphabet(2)
	res := Compare(counter(), counter().Rename("copy"), alphabet, 4)
	if !res.Equal || !res.SubsetAB() || !res.SubsetBA() {
		t.Fatalf("identical automata compared unequal: %+v", res)
	}
	if res.CountA[0] != 1 || res.CountB[0] != 1 {
		t.Errorf("empty history counts: %v %v", res.CountA, res.CountB)
	}
	for l := range res.CountA {
		if res.CountA[l] != res.CountB[l] {
			t.Errorf("count mismatch at %d", l)
		}
	}
}

func TestCompareFindsCounterexample(t *testing.T) {
	// counter vs a version that forbids Credit(2).
	restricted := NewSpec("restricted", value.NewAccount(0),
		OpSpec{
			Name: history.NameCredit,
			Pre: func(s value.Value, op history.Op) bool {
				return op.Args[0] != 2
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				return []value.Value{value.NewAccount(s.(value.Account).Balance + op.Args[0])}
			},
		},
	)
	alphabet := []history.Op{history.Credit(1), history.Credit(2)}
	res := Compare(counter(), restricted, alphabet, 3)
	if res.Equal {
		t.Fatalf("expected inequality")
	}
	if res.OnlyA == nil {
		t.Fatalf("missing counterexample in L(A)\\L(B)")
	}
	if res.OnlyA.Key() != (history.History{history.Credit(2)}).Key() {
		t.Errorf("OnlyA = %v", res.OnlyA)
	}
	if !res.SubsetBA() {
		t.Errorf("restricted ⊆ counter should hold; OnlyB = %v", res.OnlyB)
	}
	if res.SubsetAB() {
		t.Errorf("counter ⊄ restricted")
	}
	if !strings.Contains(res.String(), "equal=false") {
		t.Errorf("String() = %q", res.String())
	}
}

func TestLanguageAndCounts(t *testing.T) {
	alphabet := []history.Op{history.Credit(1), history.DebitOk(1)}
	lang := Language(counter(), alphabet, 2)
	// Length 0: Λ. Length 1: Credit. Length 2: Credit·Credit, Credit·Debit.
	if len(lang) != 4 {
		t.Fatalf("language = %v", lang)
	}
	counts := CountLanguage(counter(), alphabet, 2)
	want := []uint64{1, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
		}
	}
	// Language output must agree with Accepts.
	for _, h := range lang {
		if !Accepts(counter(), h) {
			t.Errorf("Language emitted unaccepted history %v", h)
		}
	}
}

func TestCompareCountsMatchCountLanguage(t *testing.T) {
	alphabet := history.AccountAlphabet(2)
	a, b := counter(), chaos()
	res := Compare(a, b, alphabet, 3)
	ca := CountLanguage(a, alphabet, 3)
	for i := range ca {
		if res.CountA[i] != ca[i] {
			t.Errorf("CountA[%d] = %d, CountLanguage = %d", i, res.CountA[i], ca[i])
		}
	}
}
