package automaton

import (
	"fmt"
	"sort"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// OpSpec is the Larch interface (Section 2.4) for one operation: a
// requires clause over the starting state and an ensures clause realized
// as a successor enumerator. Succ must return exactly the states s' for
// which the postcondition p.post(s, s') holds for the *full* operation
// execution op (invocation and response); returning no states for a
// response that the postcondition cannot justify is how the automaton
// rejects ill-responded executions.
type OpSpec struct {
	// Name is the operation name this spec applies to.
	Name string
	// Pre is the requires clause; a nil Pre means requires true.
	Pre func(s value.Value, op history.Op) bool
	// Succ enumerates the postcondition's successor states.
	Succ func(s value.Value, op history.Op) []value.Value
}

// Spec is a simple object automaton assembled from Larch interfaces.
// It implements Automaton.
type Spec struct {
	name string
	init value.Value
	ops  map[string]OpSpec
}

var _ Automaton = (*Spec)(nil)

// NewSpec builds an automaton named name with initial state init and
// the given operation interfaces. It panics on duplicate operation
// names (a programming error in spec construction).
func NewSpec(name string, init value.Value, ops ...OpSpec) *Spec {
	m := make(map[string]OpSpec, len(ops))
	for _, op := range ops {
		if _, dup := m[op.Name]; dup {
			panic(fmt.Sprintf("automaton: duplicate operation %q in spec %q", op.Name, name))
		}
		if op.Succ == nil {
			panic(fmt.Sprintf("automaton: operation %q in spec %q has no ensures clause", op.Name, name))
		}
		m[op.Name] = op
	}
	return &Spec{name: name, init: init, ops: m}
}

// Name returns the spec's name.
func (sp *Spec) Name() string { return sp.name }

// Init returns the initial state.
func (sp *Spec) Init() value.Value { return sp.init }

// Step implements δ: if op's precondition holds in s, it returns the
// postcondition's successors, else nothing.
func (sp *Spec) Step(s value.Value, op history.Op) []value.Value {
	o, ok := sp.ops[op.Name]
	if !ok {
		return nil
	}
	if o.Pre != nil && !o.Pre(s, op) {
		return nil
	}
	return o.Succ(s, op)
}

// PreHolds reports whether op's requires clause holds in state s.
// Unknown operations have no transitions, so their precondition is
// reported false.
func (sp *Spec) PreHolds(s value.Value, op history.Op) bool {
	o, ok := sp.ops[op.Name]
	if !ok {
		return false
	}
	return o.Pre == nil || o.Pre(s, op)
}

// PostHolds reports whether the postcondition relates s to s' under op,
// i.e. whether s' is among op's successors from s (preconditions are not
// consulted, matching the pre/post factoring of Section 2.4).
func (sp *Spec) PostHolds(s value.Value, op history.Op, next value.Value) bool {
	o, ok := sp.ops[op.Name]
	if !ok {
		return false
	}
	want := next.Key()
	for _, s2 := range o.Succ(s, op) {
		if s2.Key() == want {
			return true
		}
	}
	return false
}

// OpNames returns the operation names of the spec, sorted.
func (sp *Spec) OpNames() []string {
	names := make([]string, 0, len(sp.ops))
	for n := range sp.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rename returns a copy of the spec under a new name; the operation
// interfaces are shared (they are immutable).
func (sp *Spec) Rename(name string) *Spec {
	return &Spec{name: name, init: sp.init, ops: sp.ops}
}
