package automaton

import (
	"fmt"

	"relaxlattice/internal/value"
)

// This file is the frontier half of the audit-sidecar checkpoint
// format (DESIGN.md §14): a frontier's entire checking state is its
// state-set class, which serializes as the canonical value Keys of its
// live states and restores through value.ParseKey. Steps and peak ride
// along so a resumed frontier reports the same statistics as one that
// was never interrupted.

// StateKeys returns the canonical Keys of the frontier's live states
// in canonical order, or nil when the frontier is dead. Together with
// Steps and Peak this is a complete serialization of the frontier: two
// frontiers of the same automaton with equal state keys accept exactly
// the same extensions (acceptance factors through state sets).
func (f *Frontier) StateKeys() []string {
	if f.states == nil {
		return nil
	}
	keys := make([]string, len(f.states))
	for i, s := range f.states {
		keys[i] = s.Key()
	}
	return keys
}

// RestoreFrontier reconstructs a frontier from serialized state keys.
// keys == nil restores a dead frontier; otherwise each key is parsed
// with value.ParseKey and the state set re-canonicalized (deduplicated
// and sorted), so a frontier restored from StateKeys is
// indistinguishable — same Key, same acceptance of every extension —
// from the frontier that produced them.
func RestoreFrontier(a Automaton, keys []string, steps, peak int) (*Frontier, error) {
	f := &Frontier{a: a, steps: steps, peak: peak}
	if keys == nil {
		return f, nil
	}
	states := make(map[string]value.Value, len(keys))
	for _, k := range keys {
		v, err := value.ParseKey(k)
		if err != nil {
			return nil, fmt.Errorf("automaton: restore frontier: %w", err)
		}
		states[v.Key()] = v
	}
	f.states = sortValues(states)
	if f.states == nil {
		return nil, fmt.Errorf("automaton: restore frontier: empty live state set")
	}
	if len(f.states) > f.peak {
		f.peak = len(f.states)
	}
	return f, nil
}
