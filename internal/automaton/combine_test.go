package automaton

import (
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// evens accepts histories whose Credit amounts are all even; positives
// accepts histories whose Credit amounts are all ≥ limit.
func amountFilter(name string, keep func(int) bool) *Spec {
	return NewSpec(name, value.NewAccount(0),
		OpSpec{
			Name: history.NameCredit,
			Pre: func(s value.Value, op history.Op) bool {
				return keep(op.Args[0])
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				return []value.Value{s}
			},
		},
	)
}

func TestIntersectLanguages(t *testing.T) {
	evens := amountFilter("evens", func(n int) bool { return n%2 == 0 })
	small := amountFilter("small", func(n int) bool { return n <= 2 })
	both := Intersect("both", evens, small)
	alphabet := []history.Op{history.Credit(1), history.Credit(2), history.Credit(3), history.Credit(4)}
	res := Compare(both, evens, alphabet, 3)
	if res.Equal {
		t.Errorf("intersection should be strictly smaller than evens")
	}
	// Accepts only Credit(2) repeated.
	if !Accepts(both, history.History{history.Credit(2), history.Credit(2)}) {
		t.Errorf("rejects common history")
	}
	for _, bad := range []history.Op{history.Credit(1), history.Credit(4)} {
		if Accepts(both, history.History{bad}) {
			t.Errorf("accepted %v", bad)
		}
	}
	if both.Name() != "both" {
		t.Errorf("Name = %q", both.Name())
	}
	// Foreign state rejected gracefully.
	if both.Step(value.EmptyBag(), history.Credit(2)) != nil {
		t.Errorf("foreign state accepted")
	}
}

// The product tracks nondeterminism in both components: intersect the
// priority queue's language with itself via distinct state spaces.
func TestIntersectWithNondeterminism(t *testing.T) {
	// chaotic accepts Enq always (two successor states), Deq only from
	// even state (see automaton_test.go's chaos).
	a := chaos()
	b := chaos().Rename("chaos2")
	both := Intersect("c∩c", a, b)
	alphabet := []history.Op{history.Enq(0), history.DeqOk(0)}
	res := Compare(both, a, alphabet, 5)
	if !res.Equal {
		t.Errorf("L(a ∩ a) != L(a): onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
}

func TestUnionLanguages(t *testing.T) {
	evens := amountFilter("evens", func(n int) bool { return n%2 == 0 })
	small := amountFilter("small", func(n int) bool { return n <= 2 })
	either := Union("either", evens, small)
	// Credit(1) (small only), Credit(4) (even only), Credit(2) (both).
	for _, good := range []history.History{
		{history.Credit(1)},
		{history.Credit(4)},
		{history.Credit(2), history.Credit(1)},
		{history.Credit(4), history.Credit(2)},
	} {
		if !Accepts(either, good) {
			t.Errorf("union rejected %v", good)
		}
	}
	// Credit(3) is in neither.
	if Accepts(either, history.History{history.Credit(3)}) {
		t.Errorf("union accepted Credit(3)")
	}
	// Mixing the branches must fail: 1 (small-only) then 4 (even-only)
	// is in neither language.
	if Accepts(either, history.History{history.Credit(1), history.Credit(4)}) {
		t.Errorf("union accepted cross-branch history")
	}
	if either.Name() != "either" {
		t.Errorf("Name = %q", either.Name())
	}
	if either.Step(value.EmptyBag(), history.Credit(2)) != nil {
		t.Errorf("foreign state accepted")
	}
}

// Union against a sub-language: L(a) ∪ L(a∩b) = L(a).
func TestUnionAbsorption(t *testing.T) {
	evens := amountFilter("evens", func(n int) bool { return n%2 == 0 })
	small := amountFilter("small", func(n int) bool { return n <= 2 })
	both := Intersect("both", evens, small)
	either := Union("abs", evens, both)
	alphabet := []history.Op{history.Credit(1), history.Credit(2), history.Credit(4)}
	res := Compare(either, evens, alphabet, 4)
	if !res.Equal {
		t.Errorf("absorption failed: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
}

func TestRejectionPoint(t *testing.T) {
	evens := amountFilter("evens", func(n int) bool { return n%2 == 0 })
	h := history.History{history.Credit(2), history.Credit(4), history.Credit(3), history.Credit(2)}
	at, prefix := RejectionPoint(evens, h)
	if at != 3 {
		t.Fatalf("rejection at %d, want 3", at)
	}
	if !prefix.Equal(h.Prefix(3)) {
		t.Errorf("prefix = %v", prefix)
	}
	// Accepted history: rejection point past the end.
	ok := history.History{history.Credit(2), history.Credit(2)}
	at, prefix = RejectionPoint(evens, ok)
	if at != 3 || prefix != nil {
		t.Errorf("accepted history: at=%d prefix=%v", at, prefix)
	}
}

func TestPairStateKeys(t *testing.T) {
	p := PairState{A: value.NewAccount(1), B: value.NewAccount(2)}
	q := PairState{A: value.NewAccount(2), B: value.NewAccount(1)}
	if p.Key() == q.Key() {
		t.Errorf("pair key collision")
	}
	if p.String() == "" {
		t.Errorf("empty String")
	}
	e := eitherState{a: value.NewAccount(1)}
	f := eitherState{b: value.NewAccount(1)}
	if e.Key() == f.Key() {
		t.Errorf("either key collision")
	}
}
