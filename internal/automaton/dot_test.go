package automaton

import (
	"strings"
	"testing"

	"relaxlattice/internal/history"
)

func TestDOTRendersStatesAndEdges(t *testing.T) {
	a := counter()
	alphabet := []history.Op{history.Credit(1), history.DebitOk(1)}
	dot := DOT(a, alphabet, 2)
	if !strings.HasPrefix(dot, "digraph \"counter\"") {
		t.Errorf("header: %q", dot[:40])
	}
	// Reachable states to depth 2: balances 0, 1, 2.
	for _, want := range []string{"[balance: 0]", "[balance: 1]", "[balance: 2]"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing state %q in:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, "[balance: 3]") {
		t.Errorf("depth bound exceeded")
	}
	if !strings.Contains(dot, "Credit(1)/Ok()") {
		t.Errorf("missing edge label")
	}
	// Parallel edges merge: a self-returning pair Credit;Debit goes
	// through distinct states here, so just check edge syntax.
	if !strings.Contains(dot, "->") {
		t.Errorf("no edges")
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("unterminated graph")
	}
}

func TestDOTDeterministic(t *testing.T) {
	a := chaos()
	alphabet := []history.Op{history.Enq(0), history.DeqOk(0)}
	if DOT(a, alphabet, 3) != DOT(a, alphabet, 3) {
		t.Errorf("DOT output not deterministic")
	}
}
