package core

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/specs"
)

// Account constraint names.
const (
	ConstraintA1 = "A1"
	ConstraintA2 = "A2"
)

// AccountUniverse returns the constraint universe {A₁, A₂} of
// Section 3.4.
func AccountUniverse() *lattice.Universe {
	return lattice.NewUniverse(
		lattice.Constraint{Name: ConstraintA1, Desc: "every initial Debit quorum intersects every final Credit quorum"},
		lattice.Constraint{Name: ConstraintA2, Desc: "every initial Debit quorum intersects every final Debit quorum"},
	)
}

// AccountLattice returns the bank's relaxation lattice of Section 3.4,
// defined over the sublattice of 2^{A₁,A₂} that always contains A₂:
// the bank may relax A₁ (tolerating spurious bounces from premature
// debits) but never A₂ (which would permit overdrafts).
func AccountLattice() *lattice.Relaxation {
	u := AccountUniverse()
	return &lattice.Relaxation{
		Name:     "replicated-bank-account",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			if !s.Has(u.Index(ConstraintA2)) {
				return nil, false // outside the sublattice
			}
			if s.Has(u.Index(ConstraintA1)) {
				return specs.BankAccount(), true
			}
			return specs.SpuriousAccount(), true
		},
	}
}

// AccountLatticeUnrestricted extends the account lattice over the full
// powerset, assigning the overdraft-permitting behavior to sets missing
// A₂ — the behavior the bank's sublattice restriction exists to forbid.
func AccountLatticeUnrestricted() *lattice.Relaxation {
	u := AccountUniverse()
	return &lattice.Relaxation{
		Name:     "replicated-bank-account-unrestricted",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			a1 := s.Has(u.Index(ConstraintA1))
			a2 := s.Has(u.Index(ConstraintA2))
			switch {
			case a1 && a2:
				return specs.BankAccount(), true
			case a2:
				return specs.SpuriousAccount(), true
			default:
				return specs.OverdraftAccount(), true
			}
		},
	}
}
