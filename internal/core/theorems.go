package core

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// Bound configures bounded model checking: all histories over the
// element domain {1..MaxElem} of length ≤ MaxLen are enumerated.
type Bound struct {
	MaxElem int
	MaxLen  int
}

// DefaultBound is large enough to exercise every interaction the
// paper's proofs induct over while keeping checks fast.
var DefaultBound = Bound{MaxElem: 2, MaxLen: 6}

func (b Bound) alphabet() []history.Op { return history.QueueAlphabet(b.MaxElem) }

// ClaimResult is the outcome of checking one language-equivalence
// claim.
type ClaimResult struct {
	// Name identifies the claim, e.g. "Theorem 4".
	Name string
	// LHS and RHS name the compared automata.
	LHS, RHS string
	// Compare holds the per-length counts and counterexamples.
	Compare automaton.CompareResult
}

// Holds reports whether the claim held up to the bound.
func (r ClaimResult) Holds() bool { return r.Compare.Equal }

// CheckTheorem4 verifies Theorem 4 up to the bound:
// L(QCA(PQ, Q₁, η)) = L(MPQ).
func CheckTheorem4(b Bound) ClaimResult {
	qca := quorum.NewQCA("QCA(PQ,{Q1},η)", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold())
	mpq := specs.MultiPriorityQueue()
	return ClaimResult{
		Name:    "Theorem 4",
		LHS:     qca.Name(),
		RHS:     mpq.Name(),
		Compare: automaton.Compare(qca.Compiled(), mpq, b.alphabet(), b.MaxLen),
	}
}

// CheckOutOfOrderClaim verifies the companion claim of Section 3.3:
// L(QCA(PQ, Q₂, η)) = L(OPQ).
func CheckOutOfOrderClaim(b Bound) ClaimResult {
	qca := quorum.NewQCA("QCA(PQ,{Q2},η)", specs.PriorityQueue(), quorum.Q2(), quorum.PQFold())
	opq := specs.OutOfOrderQueue()
	return ClaimResult{
		Name:    "Out-of-order claim",
		LHS:     qca.Name(),
		RHS:     opq.Name(),
		Compare: automaton.Compare(qca.Compiled(), opq, b.alphabet(), b.MaxLen),
	}
}

// CheckDegenerateClaim verifies the final claim of Section 3.3:
// L(QCA(PQ, ∅, η)) = L(DegenPQ).
func CheckDegenerateClaim(b Bound) ClaimResult {
	qca := quorum.NewQCA("QCA(PQ,∅,η)", specs.PriorityQueue(), quorum.NewRelation(), quorum.PQFold())
	degen := specs.DegeneratePriorityQueue()
	return ClaimResult{
		Name:    "Degenerate claim",
		LHS:     qca.Name(),
		RHS:     degen.Name(),
		Compare: automaton.Compare(qca.Compiled(), degen, b.alphabet(), b.MaxLen),
	}
}

// CheckOneCopySerializability verifies the top of the lattice:
// L(QCA(PQ, {Q₁,Q₂}, η)) = L(PQ), i.e. quorum consensus with the full
// constraint set is one-copy serializable (Section 3.2).
func CheckOneCopySerializability(b Bound) ClaimResult {
	qca := quorum.NewQCA("QCA(PQ,{Q1,Q2},η)", specs.PriorityQueue(), quorum.Q1().Union(quorum.Q2()), quorum.PQFold())
	pq := specs.PriorityQueue()
	return ClaimResult{
		Name:    "One-copy serializability",
		LHS:     qca.Name(),
		RHS:     pq.Name(),
		Compare: automaton.Compare(qca.Compiled(), pq, b.alphabet(), b.MaxLen),
	}
}

// CheckAccountClaims verifies the account analogues (our formalization
// of Section 3.4): QCA(Account, {A₁,A₂}, η) = Account and
// QCA(Account, {A₂}, η) = SpuriousAccount, over the amount domain
// {1..MaxElem}.
func CheckAccountClaims(b Bound) []ClaimResult {
	alphabet := history.AccountAlphabet(b.MaxElem)
	full := quorum.NewQCA("QCA(Acct,{A1,A2},η)", specs.BankAccount(), quorum.A1().Union(quorum.A2()), quorum.AccountFold())
	relaxed := quorum.NewQCA("QCA(Acct,{A2},η)", specs.BankAccount(), quorum.A2(), quorum.AccountFold())
	return []ClaimResult{
		{
			Name:    "Account one-copy serializability",
			LHS:     full.Name(),
			RHS:     "Account",
			Compare: automaton.Compare(full.Compiled(), specs.BankAccount(), alphabet, b.MaxLen),
		},
		{
			Name:    "Premature-debit degradation",
			LHS:     relaxed.Name(),
			RHS:     "SpuriousAccount",
			Compare: automaton.Compare(relaxed.Compiled(), specs.SpuriousAccount(), alphabet, b.MaxLen),
		},
	}
}

// CheckAllTaxiEquivalences runs the four lattice-element equivalences
// of Section 3.3 (one per subset of {Q₁, Q₂}).
func CheckAllTaxiEquivalences(b Bound) []ClaimResult {
	return []ClaimResult{
		CheckOneCopySerializability(b),
		CheckTheorem4(b),
		CheckOutOfOrderClaim(b),
		CheckDegenerateClaim(b),
	}
}
