// Package core assembles the paper's machinery into its three worked
// relaxation lattices — the replicated real-time priority queue
// (Section 3.3), the replicated bank account (Section 3.4), and the
// transactional spool queue (Section 4.2) — and provides the bounded
// model-checking entry points that verify Theorem 4 and the paper's
// companion claims.
package core

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// Taxi constraint names.
const (
	ConstraintQ1 = "Q1"
	ConstraintQ2 = "Q2"
)

// TaxiUniverse returns the constraint universe {Q₁, Q₂} of Section 3.3.
func TaxiUniverse() *lattice.Universe {
	return lattice.NewUniverse(
		lattice.Constraint{Name: ConstraintQ1, Desc: "each initial Deq quorum intersects each final Enq quorum"},
		lattice.Constraint{Name: ConstraintQ2, Desc: "each initial Deq quorum intersects each final Deq quorum"},
	)
}

// taxiRelation converts a constraint set to the quorum intersection
// relation it asserts.
func taxiRelation(u *lattice.Universe, s lattice.Set) quorum.Relation {
	rel := quorum.NewRelation()
	if s.Has(u.Index(ConstraintQ1)) {
		rel = rel.Union(quorum.Q1())
	}
	if s.Has(u.Index(ConstraintQ2)) {
		rel = rel.Union(quorum.Q2())
	}
	return rel
}

// TaxiLattice returns the relaxation lattice of Section 3.3:
// {QCA(PQ, Q, η) | Q ⊆ {Q₁, Q₂}} with η the "dequeue the best
// apparently-unserved request" evaluation function.
func TaxiLattice() *lattice.Relaxation {
	u := TaxiUniverse()
	return &lattice.Relaxation{
		Name:     "replicated-priority-queue",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			name := "QCA(PQ," + u.Format(s) + ",η)"
			return quorum.NewQCA(name, specs.PriorityQueue(), taxiRelation(u, s), quorum.PQFold()).Compiled(), true
		},
	}
}

// TaxiLatticePrime returns the ablation lattice using the alternative
// evaluation function η′ (end of Section 3.3), which deletes skipped-
// over requests: it never services out of order but may ignore
// requests.
func TaxiLatticePrime() *lattice.Relaxation {
	u := TaxiUniverse()
	return &lattice.Relaxation{
		Name:     "replicated-priority-queue-eta-prime",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			name := "QCA(PQ," + u.Format(s) + ",η′)"
			return quorum.NewQCA(name, specs.PriorityQueue(), taxiRelation(u, s), quorum.PQPrimeFold()).Compiled(), true
		},
	}
}

// TaxiSimpleLattice returns the lattice with each QCA replaced by the
// equivalent simple object automaton the paper identifies: {Q₁,Q₂}→PQ,
// {Q₁}→MPQ (Theorem 4), {Q₂}→OPQ, ∅→DegenPQ. Bounded equivalence of
// TaxiLattice and TaxiSimpleLattice element-by-element is the paper's
// central result, checked by CheckTaxiEquivalences.
func TaxiSimpleLattice() *lattice.Relaxation {
	u := TaxiUniverse()
	return &lattice.Relaxation{
		Name:     "replicated-priority-queue-simple",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			return TaxiEquivalent(u, s), true
		},
	}
}

// TaxiEquivalent returns the simple object automaton the paper assigns
// to a taxi-lattice constraint set.
func TaxiEquivalent(u *lattice.Universe, s lattice.Set) automaton.Automaton {
	q1 := s.Has(u.Index(ConstraintQ1))
	q2 := s.Has(u.Index(ConstraintQ2))
	switch {
	case q1 && q2:
		return specs.PriorityQueue()
	case q1:
		return specs.MultiPriorityQueue()
	case q2:
		return specs.OutOfOrderQueue()
	default:
		return specs.DegeneratePriorityQueue()
	}
}
