package core

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// The FIFO family: the paper's Section 3.1 motivating example (a
// replicated FIFO queue managed by quorum consensus) carried through
// the full Section 3.3 program. The same constraints Q₁ (Deq quorums
// meet Enq quorums) and Q₂ (Deq quorums meet Deq quorums) apply, with
// the evaluation function η_fifo ("dequeue the oldest apparently
// unserved request"), and each relaxation is equivalent to a simple
// object automaton:
//
//	{Q₁,Q₂} → FifoQueue   (one-copy serializable)
//	{Q₁}    → MFQueue     (duplicates, never out of arrival order)
//	{Q₂}    → OPQueue     (out of order, never duplicated — a bag)
//	∅       → DegenPQueue (both)
//
// The {Q₁} equivalence is the FIFO analog of Theorem 4, checked by
// CheckFIFOTheorem.

// FIFOLattice returns the replicated FIFO queue's relaxation lattice
// {QCA(FifoQueue, Q, η_fifo) | Q ⊆ {Q₁, Q₂}}.
func FIFOLattice() *lattice.Relaxation {
	u := TaxiUniverse()
	return &lattice.Relaxation{
		Name:     "replicated-fifo-queue",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			name := "QCA(FIFO," + u.Format(s) + ",η)"
			return quorum.NewQCA(name, specs.FIFOQueue(), taxiRelation(u, s), quorum.FIFOFold()).Compiled(), true
		},
	}
}

// FIFOEquivalent returns the simple object automaton equivalent to each
// FIFO-lattice element.
func FIFOEquivalent(u *lattice.Universe, s lattice.Set) automaton.Automaton {
	q1 := s.Has(u.Index(ConstraintQ1))
	q2 := s.Has(u.Index(ConstraintQ2))
	switch {
	case q1 && q2:
		return specs.FIFOQueue()
	case q1:
		return specs.MultiFIFOQueue()
	case q2:
		return specs.OutOfOrderQueue()
	default:
		return specs.DegeneratePriorityQueue()
	}
}

// CheckFIFOTheorem verifies the FIFO analog of Theorem 4 up to the
// bound: L(QCA(FifoQueue, Q₁, η_fifo)) = L(MFQueue).
func CheckFIFOTheorem(b Bound) ClaimResult {
	qca := quorum.NewQCA("QCA(FIFO,{Q1},η)", specs.FIFOQueue(), quorum.Q1(), quorum.FIFOFold())
	mfq := specs.MultiFIFOQueue()
	return ClaimResult{
		Name:    "FIFO Theorem-4 analog",
		LHS:     qca.Name(),
		RHS:     mfq.Name(),
		Compare: automaton.Compare(qca.Compiled(), mfq, b.alphabet(), b.MaxLen),
	}
}

// CheckFIFOFamily verifies all four FIFO-lattice equivalences.
func CheckFIFOFamily(b Bound) []ClaimResult {
	u := TaxiUniverse()
	lat := FIFOLattice()
	var out []ClaimResult
	for _, s := range u.SubsetsBySize() {
		qca, _ := lat.Phi(s)
		simple := FIFOEquivalent(u, s)
		out = append(out, ClaimResult{
			Name:    "FIFO family at " + u.Format(s),
			LHS:     qca.Name(),
			RHS:     simple.Name(),
			Compare: automaton.Compare(qca, simple, b.alphabet(), b.MaxLen),
		})
	}
	return out
}
