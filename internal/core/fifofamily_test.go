package core

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

func TestFIFOTheorem(t *testing.T) {
	r := CheckFIFOTheorem(Bound{MaxElem: 2, MaxLen: 6})
	if !r.Holds() {
		t.Fatalf("FIFO Theorem-4 analog failed:\nonly QCA: %v\nonly MFQ: %v",
			r.Compare.OnlyA, r.Compare.OnlyB)
	}
	if r.Compare.CountA[4] < 30 {
		t.Errorf("suspiciously small language at length 4: %d", r.Compare.CountA[4])
	}
}

func TestFIFOFamily(t *testing.T) {
	for _, r := range CheckFIFOFamily(Bound{MaxElem: 2, MaxLen: 5}) {
		if !r.Holds() {
			t.Errorf("%s: %s != %s (onlyLHS=%v onlyRHS=%v)",
				r.Name, r.LHS, r.RHS, r.Compare.OnlyA, r.Compare.OnlyB)
		}
	}
}

func TestMultiFIFOAcceptance(t *testing.T) {
	mfq := specs.MultiFIFOQueue()
	cases := map[string]bool{
		// Plain FIFO histories.
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(2)": true,
		// Re-serving the oldest request.
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)": true,
		// Never out of arrival order.
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)": false,
		// A served request may be re-served while older than all
		// pending ones...
		"Enq(1)/Ok() Deq()/Ok(1) Enq(2)/Ok() Deq()/Ok(1)": true,
		// ...including after later items are served.
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(2) Deq()/Ok(1)": true,
		// But not ahead of an older pending request... (2 newer than 1)
		"Enq(1)/Ok() Deq()/Ok(1) Enq(2)/Ok() Deq()/Ok(2) Deq()/Ok(2)": true, // 2 is youngest served, nothing pending
		"Deq()/Ok(1)": false,
	}
	for s, want := range cases {
		h, err := history.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := automaton.Accepts(mfq, h); got != want {
			t.Errorf("MFQ accepts(%s) = %v, want %v", s, got, want)
		}
	}
}

// A re-serve is forbidden when a strictly older request is pending.
func TestMultiFIFOOrderingSubtlety(t *testing.T) {
	mfq := specs.MultiFIFOQueue()
	// Enq 1, Enq 2, serve 1, serve 2, Enq 3: pending = {3}; both 1 and 2
	// are older than 3, so both may be re-served; after re-serving,
	// serving 3 proceeds.
	ok := history.History{
		history.Enq(1), history.Enq(2), history.DeqOk(1), history.DeqOk(2),
		history.Enq(3), history.DeqOk(2), history.DeqOk(1), history.DeqOk(3),
	}
	if !automaton.Accepts(mfq, ok) {
		t.Errorf("older re-serves should be allowed: %v", ok)
	}
	// Serving 2 while 1 is still pending is out of order even though 2
	// was "present" in some replica's view.
	bad := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(1)}
	if automaton.Accepts(mfq, bad) {
		t.Errorf("out-of-arrival-order service accepted: %v", bad)
	}
}

// η_fifo agrees with FIFO's δ* on legal FIFO histories.
func TestFIFOEvalAgreesWithDeltaStar(t *testing.T) {
	fifo := specs.FIFOQueue()
	for _, h := range automaton.Language(fifo, history.QueueAlphabet(3), 5) {
		states := automaton.StatesAfter(fifo, h)
		if len(states) != 1 {
			t.Fatalf("FIFO not deterministic on %v", h)
		}
		eta := quorum.FIFOEval(h)
		if len(eta) != 1 || eta[0].Key() != states[0].Key() {
			t.Errorf("η_fifo(%v) = %v, δ* = %v", h, eta, states)
		}
	}
	if quorum.FIFOEval(history.History{history.Credit(1)}) != nil {
		t.Errorf("η_fifo should reject foreign ops")
	}
}

// Q₁ is a serial dependency relation for MFQueue — the lemma mirroring
// the proof of Theorem 4.
func TestQ1SerialDependencyForMFQ(t *testing.T) {
	ok, v := quorum.IsSerialDependency(specs.MultiFIFOQueue(), quorum.Q1(), history.QueueAlphabet(2), 4)
	if !ok {
		t.Fatalf("Q1 should be a serial dependency relation for MFQ: %v", v)
	}
}

func TestFIFOLatticeMonotone(t *testing.T) {
	lat := FIFOLattice()
	if v := lat.VerifyMonotone(history.QueueAlphabet(2), 4); len(v) != 0 {
		t.Fatalf("FIFO lattice not monotone: %v", v[0].Error(lat.Universe))
	}
}
