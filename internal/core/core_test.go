package core

import (
	"strings"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/specs"
)

var testBound = Bound{MaxElem: 2, MaxLen: 5}

func TestTheorem4(t *testing.T) {
	r := CheckTheorem4(testBound)
	if !r.Holds() {
		t.Fatalf("Theorem 4 failed:\nonly QCA: %v\nonly MPQ: %v", r.Compare.OnlyA, r.Compare.OnlyB)
	}
	// The languages must be non-trivial (more than pure-Enq histories).
	if r.Compare.CountA[3] <= 8 {
		t.Errorf("suspiciously small language at length 3: %d", r.Compare.CountA[3])
	}
}

func TestCompanionClaims(t *testing.T) {
	for _, r := range []ClaimResult{
		CheckOutOfOrderClaim(testBound),
		CheckDegenerateClaim(testBound),
		CheckOneCopySerializability(testBound),
	} {
		if !r.Holds() {
			t.Errorf("%s failed: onlyLHS=%v onlyRHS=%v", r.Name, r.Compare.OnlyA, r.Compare.OnlyB)
		}
	}
}

func TestAccountClaims(t *testing.T) {
	for _, r := range CheckAccountClaims(Bound{MaxElem: 2, MaxLen: 5}) {
		if !r.Holds() {
			t.Errorf("%s failed: onlyLHS=%v onlyRHS=%v", r.Name, r.Compare.OnlyA, r.Compare.OnlyB)
		}
	}
}

func TestCheckAllTaxiEquivalences(t *testing.T) {
	results := CheckAllTaxiEquivalences(Bound{MaxElem: 2, MaxLen: 4})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.Holds() {
			t.Errorf("%s failed", r.Name)
		}
	}
}

func TestTaxiLatticeStructure(t *testing.T) {
	lat := TaxiLattice()
	if len(lat.Domain()) != 4 {
		t.Fatalf("domain = %v", lat.Domain())
	}
	if got := lat.Preferred().Name(); !strings.Contains(got, "Q1, Q2") {
		t.Errorf("preferred = %q", got)
	}
	violations := lat.VerifyMonotone(history.QueueAlphabet(2), 4)
	if len(violations) != 0 {
		t.Errorf("monotonicity violations: %v", violations[0].Error(lat.Universe))
	}
}

func TestTaxiSimpleLatticeMatchesQCALattice(t *testing.T) {
	qcaLat := TaxiLattice()
	simple := TaxiSimpleLattice()
	alphabet := history.QueueAlphabet(2)
	for _, s := range qcaLat.Universe.SubsetsBySize() {
		a, _ := qcaLat.Phi(s)
		b, _ := simple.Phi(s)
		res := automaton.Compare(a, b, alphabet, 4)
		if !res.Equal {
			t.Errorf("element %s: %s != %s (onlyA=%v onlyB=%v)",
				qcaLat.Universe.Format(s), a.Name(), b.Name(), res.OnlyA, res.OnlyB)
		}
	}
}

func TestTaxiEquivalentMapping(t *testing.T) {
	u := TaxiUniverse()
	cases := map[lattice.Set]string{
		u.All():       "PQueue",
		u.Named("Q1"): "MPQueue",
		u.Named("Q2"): "OPQueue",
		lattice.Empty: "DegenPQueue",
	}
	for s, want := range cases {
		if got := TaxiEquivalent(u, s).Name(); got != want {
			t.Errorf("TaxiEquivalent(%s) = %q, want %q", u.Format(s), got, want)
		}
	}
}

// The η′ ablation: at {Q₂} the η′ lattice never services out of order,
// unlike the η lattice — but it may ignore requests.
func TestEtaPrimeAblation(t *testing.T) {
	u := TaxiUniverse()
	etaLat, primeLat := TaxiLattice(), TaxiLatticePrime()
	aEta, _ := etaLat.Phi(u.Named("Q2"))
	aPrime, _ := primeLat.Phi(u.Named("Q2"))
	outOfOrder := history.History{history.Enq(1), history.Enq(2), history.DeqOk(1), history.DeqOk(2)}
	if !automaton.Accepts(aEta, outOfOrder) {
		t.Errorf("η lattice should accept out-of-order service")
	}
	if automaton.Accepts(aPrime, outOfOrder) {
		t.Errorf("η′ lattice must not service the skipped request 2")
	}
	ignored := history.History{history.Enq(1), history.Enq(2), history.DeqOk(1)}
	if !automaton.Accepts(aPrime, ignored) {
		t.Errorf("η′ lattice should allow ignoring request 2")
	}
	// At the top of the lattice both coincide with PQ.
	top, _ := primeLat.Phi(u.All())
	res := automaton.Compare(top, specs.PriorityQueue(), history.QueueAlphabet(2), 4)
	if !res.Equal {
		t.Errorf("η′ at top differs from PQ: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
	// Both lattices are monotone.
	if v := primeLat.VerifyMonotone(history.QueueAlphabet(2), 4); len(v) != 0 {
		t.Errorf("η′ lattice not monotone: %v", v[0].Error(u))
	}
}

func TestAccountLatticeSublattice(t *testing.T) {
	lat := AccountLattice()
	// φ is defined only on sets containing A₂.
	domain := lat.Domain()
	if len(domain) != 2 {
		t.Fatalf("domain = %v", domain)
	}
	for _, s := range domain {
		if !s.Has(lat.Universe.Index(ConstraintA2)) {
			t.Errorf("domain element %s lacks A2", lat.Universe.Format(s))
		}
	}
	if lat.Preferred().Name() != "Account" {
		t.Errorf("preferred = %q", lat.Preferred().Name())
	}
	relaxed, ok := lat.Phi(lat.Universe.Named(ConstraintA2))
	if !ok || relaxed.Name() != "SpuriousAccount" {
		t.Errorf("relaxed = %v %v", relaxed, ok)
	}
	if v := lat.VerifyMonotone(history.AccountAlphabet(2), 4); len(v) != 0 {
		t.Errorf("not monotone: %v", v[0].Error(lat.Universe))
	}
}

func TestAccountLatticeUnrestricted(t *testing.T) {
	lat := AccountLatticeUnrestricted()
	if len(lat.Domain()) != 4 {
		t.Fatalf("domain = %v", lat.Domain())
	}
	bottom, _ := lat.Phi(lattice.Empty)
	if bottom.Name() != "OverdraftAccount" {
		t.Errorf("bottom = %q", bottom.Name())
	}
	if v := lat.VerifyMonotone(history.AccountAlphabet(2), 4); len(v) != 0 {
		t.Errorf("not monotone: %v", v[0].Error(lat.Universe))
	}
}

// Figure 4-2: the relaxation lattice for a three-item semiqueue.
func TestSemiqueueLatticeFigure42(t *testing.T) {
	lat := SemiqueueLattice(3)
	levels := lat.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	wantSets := map[string]int{
		"Semiqueue_1": 4, // {C1}, {C1,C2}, {C1,C3}, {C1,C2,C3}
		"Semiqueue_2": 2, // {C2}, {C2,C3}
		"Semiqueue_3": 1, // {C3}
	}
	for _, lv := range levels {
		if want, ok := wantSets[lv.Behavior]; !ok || len(lv.Sets) != want {
			t.Errorf("level %s has %d sets, want %d", lv.Behavior, len(lv.Sets), wantSets[lv.Behavior])
		}
	}
	// The figure's paper version lists {C1},{C1,C2},{C1,C2,C3} on the
	// first row (a chain); the full powerset adds {C1,C3}. Check the
	// chain elements are present.
	u := lat.Universe
	first := levels[0]
	found := map[string]bool{}
	for _, s := range first.Sets {
		found[u.Format(s)] = true
	}
	for _, want := range []string{"{C1}", "{C1, C2}", "{C1, C2, C3}"} {
		if !found[want] {
			t.Errorf("Figure 4-2 row 1 missing %s; got %v", want, first.Sets)
		}
	}
	// φ is a homomorphism, not an isomorphism (noted in Section 4.2.1).
	if v := lat.VerifyMonotone(history.QueueAlphabet(2), 4); len(v) != 0 {
		t.Errorf("not monotone: %v", v[0].Error(u))
	}
}

func TestStutteringAndCombinedLattices(t *testing.T) {
	stut := StutteringLattice(3)
	if top := stut.Preferred().Name(); top != "Stuttering_1" {
		t.Errorf("stuttering top = %q", top)
	}
	comb := CombinedSpoolLattice(3)
	if top := comb.Preferred().Name(); top != "SSqueue_1_1" {
		t.Errorf("combined top = %q", top)
	}
	if v := stut.VerifyMonotone(history.QueueAlphabet(2), 4); len(v) != 0 {
		t.Errorf("stuttering lattice not monotone")
	}
	if v := comb.VerifyMonotone(history.QueueAlphabet(2), 4); len(v) != 0 {
		t.Errorf("combined lattice not monotone")
	}
	// Bottom of the stuttering lattice accepts a triple service.
	bottom, _ := stut.Phi(stut.Universe.Named(ConstraintCk(3)))
	h := history.History{history.Enq(1), history.DeqOk(1), history.DeqOk(1), history.DeqOk(1)}
	if !automaton.Accepts(bottom, h) {
		t.Errorf("Stuttering_3 should accept triple service")
	}
}

func TestSpoolUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	SpoolUniverse(0)
}
