package core

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/specs"
)

// ConstraintCk returns the name of constraint C_k of Section 4.2: "no
// more than k active transactions have executed Deq operations".
func ConstraintCk(k int) string { return fmt.Sprintf("C%d", k) }

// SpoolUniverse returns the constraint universe {C₁..C_n}.
func SpoolUniverse(n int) *lattice.Universe {
	if n < 1 {
		panic(fmt.Sprintf("core: spool universe size %d", n))
	}
	cs := make([]lattice.Constraint, n)
	for i := range cs {
		cs[i] = lattice.Constraint{
			Name: ConstraintCk(i + 1),
			Desc: fmt.Sprintf("no more than %d active transactions have executed Deq operations", i+1),
		}
	}
	return lattice.NewUniverse(cs...)
}

// lowestIndex returns the 1-based index of the lowest constraint in the
// set (the k of the strongest C_k present), per the lattice
// homomorphism of Section 4.2.1: φ(B) = Semiqueue_k where C_k is the
// element of B with the lowest index.
func lowestIndex(s lattice.Set) (int, bool) {
	idx := s.Indexes()
	if len(idx) == 0 {
		return 0, false
	}
	return idx[0] + 1, true
}

// SemiqueueLattice returns the optimistic spooler's relaxation lattice
// of Section 4.2.1 over n constraints: φ is defined over the sublattice
// of nonempty constraint sets, mapping B to Semiqueue_k for the lowest
// index k in B. Figure 4-2 is SemiqueueLattice(3).Levels().
func SemiqueueLattice(n int) *lattice.Relaxation {
	return &lattice.Relaxation{
		Name:     "semiqueue-spooler",
		Universe: SpoolUniverse(n),
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			k, ok := lowestIndex(s)
			if !ok {
				return nil, false
			}
			return specs.Semiqueue(k), true
		},
	}
}

// StutteringLattice returns the pessimistic spooler's relaxation
// lattice of Section 4.2.2: φ(B) = Stuttering_j Queue for the lowest
// index j in B.
func StutteringLattice(n int) *lattice.Relaxation {
	return &lattice.Relaxation{
		Name:     "stuttering-spooler",
		Universe: SpoolUniverse(n),
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			j, ok := lowestIndex(s)
			if !ok {
				return nil, false
			}
			return specs.StutteringQueue(j), true
		},
	}
}

// CombinedSpoolLattice returns the single lattice combining both
// behaviors (Section 4.2.2): φ(B) = SSqueue_kk for the lowest index k —
// under at most k concurrent dequeuers of mixed strategy, any of the
// first k items may be returned as many as k times. SSqueue₁₁ at the
// top is the FIFO queue.
func CombinedSpoolLattice(n int) *lattice.Relaxation {
	return &lattice.Relaxation{
		Name:     "combined-spooler",
		Universe: SpoolUniverse(n),
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			k, ok := lowestIndex(s)
			if !ok {
				return nil, false
			}
			return specs.SSQueue(k, k), true
		},
	}
}
