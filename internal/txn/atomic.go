package txn

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
)

// maxPermutationTxns bounds the factorial search in Serializable.
const maxPermutationTxns = 8

// SerializableInOrder reports whether concatenating the per-transaction
// projections in the given order yields a history of a (Definition 5
// with the order fixed).
func SerializableInOrder(s Schedule, a automaton.Automaton, order []ID) bool {
	var h history.History
	for _, t := range order {
		h = append(h, s.Proj(t)...)
	}
	return automaton.Accepts(a, h)
}

// Serializable reports Definition 5: some total order on the
// transactions of s serializes it against a. It panics beyond
// maxPermutationTxns transactions (the factorial search is meant for
// bounded checking).
func Serializable(s Schedule, a automaton.Automaton) bool {
	txns := s.Txns()
	if len(txns) > maxPermutationTxns {
		panic(fmt.Sprintf("txn: Serializable over %d transactions (max %d)", len(txns), maxPermutationTxns))
	}
	found := false
	permute(txns, func(order []ID) bool {
		if SerializableInOrder(s, a, order) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Atomic reports Definition 6: perm(s) is serializable.
func Atomic(s Schedule, a automaton.Automaton) bool {
	return Serializable(s.Perm(), a)
}

// OnlineAtomic reports Definition 7: appending commits for any subset
// of active transactions leaves the schedule atomic. (Commit order
// within the appended subset does not matter for Definition 6, which
// existentially quantifies the serialization order.)
func OnlineAtomic(s Schedule, a automaton.Automaton) bool {
	if !s.WellFormed() {
		return false
	}
	active := s.Active()
	if len(active) > 16 {
		panic(fmt.Sprintf("txn: OnlineAtomic over %d active transactions", len(active)))
	}
	for mask := 0; mask < 1<<uint(len(active)); mask++ {
		ext := s
		for i, t := range active {
			if mask&(1<<uint(i)) != 0 {
				ext = ext.Append(Commit(t))
			}
		}
		if !Atomic(ext, a) {
			return false
		}
	}
	return true
}

// HybridAtomic reports the hybrid-atomicity property of Section 4.1:
// committed transactions serialize in the order they committed. It is
// the guarantee of strict two-phase locking, and the property our queue
// runtimes are verified against.
func HybridAtomic(s Schedule, a automaton.Automaton) bool {
	return SerializableInOrder(s.Perm(), a, s.Committed())
}

// OnlineHybridAtomic checks hybrid atomicity for every possible future:
// every permutation of every subset of active transactions, appended as
// commits, leaves the schedule hybrid atomic.
func OnlineHybridAtomic(s Schedule, a automaton.Automaton) bool {
	if !s.WellFormed() {
		return false
	}
	active := s.Active()
	if len(active) > maxPermutationTxns {
		panic(fmt.Sprintf("txn: OnlineHybridAtomic over %d active transactions", len(active)))
	}
	ok := true
	subsets(active, func(subset []ID) bool {
		permute(subset, func(order []ID) bool {
			ext := s
			for _, t := range order {
				ext = ext.Append(Commit(t))
			}
			if !HybridAtomic(ext, a) {
				ok = false
				return false
			}
			return true
		})
		return ok
	})
	return ok
}

// permute calls visit with each permutation of ids; visit returning
// false stops the enumeration.
func permute(ids []ID, visit func([]ID) bool) {
	buf := append([]ID(nil), ids...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(buf) {
			return visit(buf)
		}
		for i := k; i < len(buf); i++ {
			buf[k], buf[i] = buf[i], buf[k]
			if !rec(k + 1) {
				return false
			}
			buf[k], buf[i] = buf[i], buf[k]
		}
		return true
	}
	rec(0)
}

// subsets calls visit with each subset of ids; visit returning false
// stops the enumeration.
func subsets(ids []ID, visit func([]ID) bool) {
	for mask := 0; mask < 1<<uint(len(ids)); mask++ {
		var sub []ID
		for i, t := range ids {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, t)
			}
		}
		if !visit(sub) {
			return
		}
	}
}
