package txn

import (
	"errors"
	"fmt"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/value"
)

// Strategy selects how a dequeuer reacts when the item at the head of
// the queue has been tentatively dequeued by a concurrent transaction
// (Section 4.2).
type Strategy int

const (
	// Blocking delays the dequeuer until the conflicting transaction
	// commits or aborts — the strict FIFO discipline.
	Blocking Strategy = iota + 1
	// Optimistic assumes the earlier dequeuer will commit: skip the item
	// and return the next undequeued one. Under at most k concurrent
	// dequeuers the queue behaves as Atomic(Semiqueue_k): items may be
	// printed out of order, but each file is printed only once.
	Optimistic
	// Pessimistic assumes the earlier dequeuer will abort: return the
	// same item again. The queue behaves as Atomic(Stuttering_j): files
	// may be printed multiple times, but always in order.
	Pessimistic
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Blocking:
		return "blocking"
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Runtime errors.
var (
	// ErrBlocked is returned by Deq under the Blocking strategy when a
	// concurrent transaction holds the head of the queue.
	ErrBlocked = errors.New("txn: blocked on concurrent dequeuer")
	// ErrEmpty is returned when no committed item is visible to the
	// caller.
	ErrEmpty = errors.New("txn: queue empty")
	// ErrFinished is returned for operations by committed or aborted
	// transactions.
	ErrFinished = errors.New("txn: transaction already finished")
	// ErrOneDeq is returned when a transaction attempts a second Deq
	// under the Optimistic or Pessimistic strategy. The paper's lattice
	// position (Semiqueue_k / Stuttering_j with k the number of
	// concurrent dequeuers) relies on the print-spooler discipline of
	// Section 4.2 — each dequeuing transaction holds at most one item —
	// and the relaxed strategies are not serializable without it.
	ErrOneDeq = errors.New("txn: relaxed strategies dequeue at most once per transaction")
)

type entry struct {
	elem     value.Elem
	deqBy    []ID // active transactions that tentatively dequeued this entry
	consumed bool // a dequeuer committed; entry is logically gone
}

func (e *entry) tentativelyDequeued() bool { return len(e.deqBy) > 0 }

func (e *entry) dequeuedBy(t ID) bool {
	for _, d := range e.deqBy {
		if d == t {
			return true
		}
	}
	return false
}

// Queue is a shared transactional queue executing the concurrent
// print-spooler scenario of Section 4.2: client transactions enqueue,
// printer transactions dequeue and commit, and the configured Strategy
// decides what happens when dequeuers collide. The runtime records the
// schedule it executes so that it can be verified against
// Atomic(Semiqueue_k) / Atomic(Stuttering_j).
//
// Two visibility rules keep every schedule hybrid atomic (serializable
// in commit order):
//   - an enqueued item becomes visible — even to its own transaction —
//     only when the enqueuer commits, and
//   - committed items are ordered by their enqueuers' commit times (a
//     transaction's own enqueues keep their internal order).
//
// Queue is a deterministic logical runtime: operations never block,
// they return ErrBlocked and the caller decides how to wait.
// ConcurrentQueue wraps it for goroutine use.
type Queue struct {
	strategy  Strategy
	committed []*entry        // commit-ordered
	pending   map[ID][]*entry // tentative enqueues per active transaction
	status    map[ID]Status
	schedule  Schedule
	nextID    ID
	// concurrentDeqHigh tracks the high-water mark of simultaneously
	// active dequeuing transactions — the C_k position in the lattice of
	// constraints (Section 4.2). deqActive is the incremental form of
	// "active transactions with at least one Deq executed": membership
	// changes only at a transaction's first Deq and at its commit/abort,
	// so the high-water mark costs O(1) per operation instead of a full
	// schedule scan.
	concurrentDeqHigh int
	deqActive         map[ID]bool
	reg               *obs.Registry // optional; nil-safe (see Observe)
	rec               *obs.Recorder // optional; nil-safe
	// spans, when set, receives one causal span per transaction
	// (Begin → Commit/Abort) with an instant child per operation; see
	// TraceSpans. txnSpans holds the open root span of each active
	// transaction.
	spans    *trace.Tracer
	txnSpans map[ID]*trace.SpanRef
	// audit, when set, receives the committed serialized history (the
	// order HybridAtomic serializes in): at each commit, the committing
	// transaction's operations in execution order.
	audit Audit
	// txnOps buffers each active transaction's operations for the
	// audit; maintained only while audit != nil.
	txnOps map[ID]history.History
}

// Audit observes the queue's committed serialized history: at each
// Commit(t), t's operations in execution order — exactly the extension
// of the history that HybridAtomic checks against the spool lattice
// (committed transactions serialize in commit order). An online
// relaxation checker implements this to certify, live, that the queue
// stays at its claimed Semiqueue_k / Stuttering_j level.
//
// ObserveOp is called synchronously from Commit at deterministic
// points of the logical runtime; implementations must not call back
// into the Queue.
type Audit interface {
	ObserveOp(op history.Op)
}

// AttachAudit attaches an online audit to the committed serialized
// history. It must be called before any transaction begins (the audit
// would otherwise miss buffered operations); attaching nil detaches.
func (q *Queue) AttachAudit(a Audit) {
	q.audit = a
	if a != nil && q.txnOps == nil {
		q.txnOps = map[ID]history.History{}
	}
}

// NewQueue builds an empty queue with the given strategy.
func NewQueue(strategy Strategy) *Queue {
	switch strategy {
	case Blocking, Optimistic, Pessimistic:
	default:
		panic(fmt.Sprintf("txn: unknown strategy %d", int(strategy)))
	}
	return &Queue{
		strategy:  strategy,
		pending:   map[ID][]*entry{},
		status:    map[ID]Status{},
		deqActive: map[ID]bool{},
	}
}

// Strategy returns the configured strategy.
func (q *Queue) Strategy() Strategy { return q.strategy }

// Begin starts a transaction.
func (q *Queue) Begin() ID {
	q.nextID++
	q.status[q.nextID] = StatusActive
	if q.spans != nil {
		q.txnSpans[q.nextID] = q.spans.Begin("txn", txnAttr(q.nextID),
			obs.KV{K: "strategy", V: q.strategy.String()})
	}
	return q.nextID
}

func (q *Queue) checkActive(t ID) error {
	if q.status[t] != StatusActive {
		return fmt.Errorf("%w: T%d", ErrFinished, int(t))
	}
	return nil
}

// Enq appends an item on behalf of t. The item becomes visible when t
// commits, positioned after every item committed earlier.
func (q *Queue) Enq(t ID, e value.Elem) error {
	if err := q.checkActive(t); err != nil {
		return err
	}
	q.pending[t] = append(q.pending[t], &entry{elem: e})
	op := history.Enq(int(e))
	q.schedule = append(q.schedule, Step(t, op))
	q.opSpan(t, "txn.enq", obs.KV{K: "item", V: fmt.Sprint(e)})
	q.buffer(t, op)
	q.bumpConcurrency()
	q.count("txn.enq")
	return nil
}

// Deq dequeues on behalf of t per the strategy. It returns the element,
// or ErrEmpty / ErrBlocked / ErrOneDeq.
func (q *Queue) Deq(t ID) (value.Elem, error) {
	if err := q.checkActive(t); err != nil {
		return 0, err
	}
	if q.strategy != Blocking && q.holdsItem(t) {
		return 0, fmt.Errorf("%w: T%d", ErrOneDeq, int(t))
	}
	for _, en := range q.committed {
		if en.consumed {
			continue
		}
		if en.dequeuedBy(t) {
			continue // t already holds this item; move on
		}
		if en.tentativelyDequeued() {
			switch q.strategy {
			case Blocking:
				q.count("txn.deq.blocked")
				q.event("txn.deq.blocked", txnAttr(t),
					obs.KV{K: "item", V: fmt.Sprint(en.elem)},
					obs.KV{K: "holder", V: "T" + fmt.Sprint(int(en.deqBy[0]))})
				return 0, fmt.Errorf("%w: item %v held by T%v", ErrBlocked, en.elem, en.deqBy[0])
			case Optimistic:
				q.count("txn.deq.skipped")
				continue // assume the holder commits; skip
			case Pessimistic:
				// Assume the holder aborts; return the same item.
				q.count("txn.deq.stutter")
			}
		}
		en.deqBy = append(en.deqBy, t)
		op := history.DeqOk(int(en.elem))
		q.schedule = append(q.schedule, Step(t, op))
		q.opSpan(t, "txn.deq", obs.KV{K: "item", V: fmt.Sprint(en.elem)})
		q.buffer(t, op)
		q.deqActive[t] = true
		q.bumpConcurrency()
		q.count("txn.deq")
		return en.elem, nil
	}
	q.count("txn.deq.empty")
	return 0, ErrEmpty
}

// Commit makes t's effects permanent: its enqueues join the committed
// queue (in commit order) and the items it dequeued are consumed.
func (q *Queue) Commit(t ID) error {
	if err := q.checkActive(t); err != nil {
		return err
	}
	for _, en := range q.committed {
		if en.dequeuedBy(t) {
			en.consumed = true
			en.deqBy = removeID(en.deqBy, t)
		}
	}
	q.committed = append(q.committed, q.pending[t]...)
	delete(q.pending, t)
	q.compact()
	q.status[t] = StatusCommitted
	delete(q.deqActive, t)
	q.schedule = append(q.schedule, Commit(t))
	q.endTxnSpan(t, "commit")
	q.count("txn.commit")
	q.event("txn.commit", txnAttr(t))
	if q.audit != nil {
		// Commit order is serialization order (hybrid atomicity), so
		// the committed serialized history extends by exactly t's ops.
		for _, op := range q.txnOps[t] {
			q.audit.ObserveOp(op)
		}
		delete(q.txnOps, t)
	}
	return nil
}

// AbortTxn discards t's effects: its enqueues vanish and its tentative
// dequeues are released.
func (q *Queue) AbortTxn(t ID) error {
	if err := q.checkActive(t); err != nil {
		return err
	}
	delete(q.pending, t)
	for _, en := range q.committed {
		en.deqBy = removeID(en.deqBy, t)
	}
	q.status[t] = StatusAborted
	delete(q.deqActive, t)
	delete(q.txnOps, t)
	q.schedule = append(q.schedule, Abort(t))
	q.endTxnSpan(t, "abort")
	q.count("txn.abort")
	q.event("txn.abort", txnAttr(t))
	return nil
}

// holdsItem reports whether t has a tentative dequeue outstanding.
func (q *Queue) holdsItem(t ID) bool {
	for _, en := range q.committed {
		if en.dequeuedBy(t) {
			return true
		}
	}
	return false
}

func removeID(ids []ID, t ID) []ID {
	var out []ID
	for _, x := range ids {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}

// compact drops consumed entries no longer referenced by any active
// dequeuer.
func (q *Queue) compact() {
	var kept []*entry
	for _, en := range q.committed {
		if en.consumed && len(en.deqBy) == 0 {
			continue
		}
		kept = append(kept, en)
	}
	q.committed = kept
}

func (q *Queue) bumpConcurrency() {
	if n := len(q.deqActive); n > q.concurrentDeqHigh {
		q.concurrentDeqHigh = n
	}
	q.reg.Gauge("txn.concurrent_dequeuers.max").Max(int64(q.concurrentDeqHigh))
}

// buffer records one of t's operations for the audit.
func (q *Queue) buffer(t ID, op history.Op) {
	if q.audit != nil {
		q.txnOps[t] = append(q.txnOps[t], op)
	}
}

// MaxConcurrentDequeuers returns the high-water mark of simultaneously
// active dequeuing transactions — the index k of the weakest constraint
// C_k that held throughout the execution (Section 4.2: "no more than k
// active transactions have executed Deq operations").
func (q *Queue) MaxConcurrentDequeuers() int { return q.concurrentDeqHigh }

// ScheduleLen returns the number of scheduled steps so far — the
// logical time axis of this layer's journal and span events.
func (q *Queue) ScheduleLen() int { return len(q.schedule) }

// Schedule returns the schedule executed so far. The copy keeps
// q.schedule unaliased, which is what lets the runtime extend it in
// place (appending a copy per step would cost O(n²) over a run).
func (q *Queue) Schedule() Schedule { return q.schedule.Append() }

// Items returns the committed, unconsumed elements in queue order.
func (q *Queue) Items() []value.Elem {
	var out []value.Elem
	for _, en := range q.committed {
		if !en.consumed {
			out = append(out, en.elem)
		}
	}
	return out
}
