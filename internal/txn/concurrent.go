package txn

import (
	"errors"
	"sync"

	"relaxlattice/internal/value"
)

// ConcurrentQueue wraps Queue for use from multiple goroutines: Deq
// under the Blocking strategy waits (on a condition variable) until the
// conflicting transaction finishes, which is how the strict FIFO
// spooler serializes concurrent printer controllers — and exactly the
// concurrency cost the relaxed strategies avoid (Section 4.2).
type ConcurrentQueue struct {
	mu   sync.Mutex
	cond *sync.Cond // immutable after NewConcurrentQueue; waits on mu
	q    *Queue     // guarded by mu
}

// NewConcurrentQueue builds a goroutine-safe transactional queue.
func NewConcurrentQueue(strategy Strategy) *ConcurrentQueue {
	cq := &ConcurrentQueue{q: NewQueue(strategy)}
	cq.cond = sync.NewCond(&cq.mu)
	return cq
}

// Begin starts a transaction.
func (cq *ConcurrentQueue) Begin() ID {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return cq.q.Begin()
}

// Enq appends an item on behalf of t.
func (cq *ConcurrentQueue) Enq(t ID, e value.Elem) error {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return cq.q.Enq(t, e)
}

// Deq dequeues on behalf of t. Under the Blocking strategy it waits for
// conflicting transactions instead of returning ErrBlocked.
func (cq *ConcurrentQueue) Deq(t ID) (value.Elem, error) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	for {
		e, err := cq.q.Deq(t)
		if errors.Is(err, ErrBlocked) {
			cq.cond.Wait()
			continue
		}
		return e, err
	}
}

// Commit commits t and wakes blocked dequeuers.
func (cq *ConcurrentQueue) Commit(t ID) error {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	err := cq.q.Commit(t)
	cq.cond.Broadcast()
	return err
}

// AbortTxn aborts t and wakes blocked dequeuers.
func (cq *ConcurrentQueue) AbortTxn(t ID) error {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	err := cq.q.AbortTxn(t)
	cq.cond.Broadcast()
	return err
}

// Snapshot returns the schedule executed so far and the concurrency
// high-water mark.
func (cq *ConcurrentQueue) Snapshot() (Schedule, int) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return cq.q.Schedule(), cq.q.MaxConcurrentDequeuers()
}
