package txn

import (
	"errors"
	"sync"
	"testing"

	"relaxlattice/internal/specs"
	"relaxlattice/internal/value"
)

// seed enqueues items 1..n, each in its own committed transaction.
func seed(t *testing.T, q *Queue, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		tx := q.Begin()
		if err := q.Enq(tx, value.Elem(i)); err != nil {
			t.Fatalf("Enq: %v", err)
		}
		if err := q.Commit(tx); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
}

func TestQueueSerialIsFIFO(t *testing.T) {
	for _, strategy := range []Strategy{Blocking, Optimistic, Pessimistic} {
		q := NewQueue(strategy)
		seed(t, q, 3)
		var got []value.Elem
		for i := 0; i < 3; i++ {
			tx := q.Begin()
			e, err := q.Deq(tx)
			if err != nil {
				t.Fatalf("%v Deq: %v", strategy, err)
			}
			got = append(got, e)
			if err := q.Commit(tx); err != nil {
				t.Fatalf("Commit: %v", err)
			}
		}
		for i, e := range got {
			if int(e) != i+1 {
				t.Errorf("%v: serial dequeue order %v", strategy, got)
			}
		}
		// Serial execution stays at the top of the lattice: the schedule
		// is hybrid atomic for the FIFO queue.
		if !HybridAtomic(q.Schedule(), specs.FIFOQueue()) {
			t.Errorf("%v: serial schedule not FIFO-atomic", strategy)
		}
		if q.MaxConcurrentDequeuers() != 1 {
			t.Errorf("%v: max concurrent dequeuers = %d", strategy, q.MaxConcurrentDequeuers())
		}
	}
}

func TestBlockingStrategyBlocks(t *testing.T) {
	q := NewQueue(Blocking)
	seed(t, q, 2)
	t1, t2 := q.Begin(), q.Begin()
	if _, err := q.Deq(t1); err != nil {
		t.Fatalf("Deq: %v", err)
	}
	_, err := q.Deq(t2)
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("expected ErrBlocked, got %v", err)
	}
	// After t1 commits, t2 proceeds to item 2.
	if err := q.Commit(t1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	e, err := q.Deq(t2)
	if err != nil || e != 2 {
		t.Fatalf("Deq after unblock = %v, %v", e, err)
	}
}

func TestOptimisticSkipsHeldItems(t *testing.T) {
	q := NewQueue(Optimistic)
	seed(t, q, 3)
	t1, t2 := q.Begin(), q.Begin()
	e1, err := q.Deq(t1)
	if err != nil || e1 != 1 {
		t.Fatalf("t1 Deq = %v, %v", e1, err)
	}
	e2, err := q.Deq(t2)
	if err != nil || e2 != 2 {
		t.Fatalf("t2 Deq = %v, %v (should skip held 1)", e2, err)
	}
	if err := q.Commit(t2); err != nil { // out-of-order commit
		t.Fatalf("Commit: %v", err)
	}
	if err := q.Commit(t1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Each item printed once, out of order: Semiqueue_2 atomic in
	// commit order, not FIFO.
	s := q.Schedule()
	if !HybridAtomic(s, specs.Semiqueue(2)) {
		t.Errorf("optimistic schedule not Semiqueue_2 hybrid atomic: %v", s)
	}
	if HybridAtomic(s, specs.FIFOQueue()) {
		t.Errorf("optimistic collision should not be FIFO: %v", s)
	}
	if q.MaxConcurrentDequeuers() != 2 {
		t.Errorf("max concurrent dequeuers = %d", q.MaxConcurrentDequeuers())
	}
}

func TestOptimisticAbortRestoresItem(t *testing.T) {
	q := NewQueue(Optimistic)
	seed(t, q, 2)
	t1 := q.Begin()
	if e, _ := q.Deq(t1); e != 1 {
		t.Fatalf("t1 took %v", e)
	}
	if err := q.AbortTxn(t1); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	// Item 1 is available again.
	t2 := q.Begin()
	e, err := q.Deq(t2)
	if err != nil || e != 1 {
		t.Fatalf("after abort Deq = %v, %v", e, err)
	}
	if err := q.Commit(t2); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !HybridAtomic(q.Schedule(), specs.FIFOQueue()) {
		t.Errorf("abort-then-redeq should be FIFO: %v", q.Schedule())
	}
}

func TestPessimisticStutters(t *testing.T) {
	q := NewQueue(Pessimistic)
	seed(t, q, 2)
	t1, t2 := q.Begin(), q.Begin()
	e1, _ := q.Deq(t1)
	e2, _ := q.Deq(t2)
	if e1 != 1 || e2 != 1 {
		t.Fatalf("both should take item 1: %v %v", e1, e2)
	}
	if err := q.Commit(t1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := q.Commit(t2); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	s := q.Schedule()
	// Item printed twice, in order: Stuttering_2 atomic, not FIFO.
	if !HybridAtomic(s, specs.StutteringQueue(2)) {
		t.Errorf("pessimistic schedule not Stuttering_2 hybrid atomic: %v", s)
	}
	if HybridAtomic(s, specs.FIFOQueue()) {
		t.Errorf("stutter should not be FIFO: %v", s)
	}
}

func TestPessimisticAbortJustifiesOptimism(t *testing.T) {
	q := NewQueue(Pessimistic)
	seed(t, q, 2)
	t1, t2 := q.Begin(), q.Begin()
	_, _ = q.Deq(t1)
	_, _ = q.Deq(t2)
	// t1 aborts: t2's "pessimistic" assumption was right; no stutter in
	// the committed behavior.
	if err := q.AbortTxn(t1); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if err := q.Commit(t2); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !HybridAtomic(q.Schedule(), specs.FIFOQueue()) {
		t.Errorf("with t1 aborted the schedule is FIFO: %v", q.Schedule())
	}
}

func TestTentativeEnqueueVisibility(t *testing.T) {
	q := NewQueue(Optimistic)
	t1 := q.Begin()
	if err := q.Enq(t1, 5); err != nil {
		t.Fatalf("Enq: %v", err)
	}
	// No transaction — not even the enqueuer — sees a tentative
	// enqueue: an item joins the queue (in commit order) only when its
	// enqueuer commits. Dequeuing one's own uncommitted item is
	// unserializable against concurrent enqueuers.
	t2 := q.Begin()
	if _, err := q.Deq(t2); !errors.Is(err, ErrEmpty) {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
	if _, err := q.Deq(t1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("own tentative item visible: %v", err)
	}
	if err := q.Commit(t1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Now a fresh transaction consumes it.
	t3 := q.Begin()
	e, err := q.Deq(t3)
	if err != nil || e != 5 {
		t.Fatalf("post-commit Deq = %v, %v", e, err)
	}
	if err := q.Commit(t3); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !HybridAtomic(q.Schedule(), specs.FIFOQueue()) {
		t.Errorf("enq-commit-deq should be FIFO")
	}
	// Items visible after commit when unconsumed.
	q2 := NewQueue(Optimistic)
	seed(t, q2, 2)
	items := q2.Items()
	if len(items) != 2 || items[0] != 1 {
		t.Errorf("Items = %v", items)
	}
}

// Committed items are ordered by enqueuer commit time, not enqueue
// time — the rule that keeps schedules hybrid atomic.
func TestCommitOrderDeterminesQueueOrder(t *testing.T) {
	q := NewQueue(Blocking)
	t1, t2 := q.Begin(), q.Begin()
	if err := q.Enq(t1, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Enq(t2, 2); err != nil {
		t.Fatal(err)
	}
	// T2 commits first: its item is first in the queue.
	if err := q.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if err := q.Commit(t1); err != nil {
		t.Fatal(err)
	}
	items := q.Items()
	if len(items) != 2 || items[0] != 2 || items[1] != 1 {
		t.Fatalf("Items = %v, want [2 1]", items)
	}
	t3 := q.Begin()
	e, err := q.Deq(t3)
	if err != nil || e != 2 {
		t.Fatalf("Deq = %v, %v", e, err)
	}
	_ = q.Commit(t3)
	if !HybridAtomic(q.Schedule(), specs.FIFOQueue()) {
		t.Errorf("commit-ordered schedule should be FIFO-hybrid-atomic")
	}
}

// The relaxed strategies enforce the single-Deq print-spooler
// discipline.
func TestRelaxedStrategiesSingleDeq(t *testing.T) {
	for _, strategy := range []Strategy{Optimistic, Pessimistic} {
		q := NewQueue(strategy)
		seed(t, q, 3)
		tx := q.Begin()
		if _, err := q.Deq(tx); err != nil {
			t.Fatalf("%v first Deq: %v", strategy, err)
		}
		if _, err := q.Deq(tx); !errors.Is(err, ErrOneDeq) {
			t.Errorf("%v second Deq: %v, want ErrOneDeq", strategy, err)
		}
		// After commit, a new transaction dequeues the next item.
		_ = q.Commit(tx)
		tx2 := q.Begin()
		if e, err := q.Deq(tx2); err != nil || e != 2 {
			t.Errorf("%v next txn Deq = %v, %v", strategy, e, err)
		}
	}
	// Blocking transactions may dequeue repeatedly (they serialize).
	q := NewQueue(Blocking)
	seed(t, q, 2)
	tx := q.Begin()
	if _, err := q.Deq(tx); err != nil {
		t.Fatal(err)
	}
	if e, err := q.Deq(tx); err != nil || e != 2 {
		t.Errorf("blocking second Deq = %v, %v", e, err)
	}
}

func TestAbortDiscardsEnqueues(t *testing.T) {
	q := NewQueue(Blocking)
	t1 := q.Begin()
	_ = q.Enq(t1, 9)
	_ = q.AbortTxn(t1)
	t2 := q.Begin()
	if _, err := q.Deq(t2); !errors.Is(err, ErrEmpty) {
		t.Errorf("aborted enqueue visible: %v", err)
	}
}

func TestFinishedTransactionsRejected(t *testing.T) {
	q := NewQueue(Blocking)
	t1 := q.Begin()
	_ = q.Commit(t1)
	if err := q.Enq(t1, 1); !errors.Is(err, ErrFinished) {
		t.Errorf("Enq after commit: %v", err)
	}
	if _, err := q.Deq(t1); !errors.Is(err, ErrFinished) {
		t.Errorf("Deq after commit: %v", err)
	}
	if err := q.Commit(t1); !errors.Is(err, ErrFinished) {
		t.Errorf("double Commit: %v", err)
	}
	if err := q.AbortTxn(t1); !errors.Is(err, ErrFinished) {
		t.Errorf("Abort after commit: %v", err)
	}
}

func TestStrategyStringAndPanic(t *testing.T) {
	if Blocking.String() != "blocking" || Optimistic.String() != "optimistic" || Pessimistic.String() != "pessimistic" {
		t.Errorf("strategy names wrong")
	}
	if Strategy(99).String() == "" {
		t.Errorf("unknown strategy String empty")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewQueue(Strategy(0))
}

// The paper's headline claim for Section 4.2, verified mechanically:
// under at most k concurrent dequeuers the optimistic queue is
// Atomic(Semiqueue_k) and the pessimistic queue Atomic(Stuttering_j) —
// and in both cases the schedule stays online hybrid atomic at every
// prefix, for the k the runtime itself reports.
func TestStrategiesMatchLatticePrediction(t *testing.T) {
	run := func(strategy Strategy, dequeuers int) (*Queue, Schedule) {
		q := NewQueue(strategy)
		seed(t, q, dequeuers+1)
		txs := make([]ID, dequeuers)
		for i := range txs {
			txs[i] = q.Begin()
			if _, err := q.Deq(txs[i]); err != nil {
				t.Fatalf("%v Deq: %v", strategy, err)
			}
		}
		// Commit in reverse dequeue order so the hybrid (commit-order)
		// serialization exposes the full collision window: the last
		// dequeuer's item commits first.
		for i := len(txs) - 1; i >= 0; i-- {
			if err := q.Commit(txs[i]); err != nil {
				t.Fatalf("Commit: %v", err)
			}
		}
		return q, q.Schedule()
	}
	for k := 1; k <= 3; k++ {
		q, s := run(Optimistic, k)
		if got := q.MaxConcurrentDequeuers(); got != k {
			t.Fatalf("optimistic k = %d, want %d", got, k)
		}
		if !HybridAtomic(s, specs.Semiqueue(k)) {
			t.Errorf("optimistic k=%d not Atomic(Semiqueue_%d): %v", k, k, s)
		}
		if k > 1 && HybridAtomic(s, specs.Semiqueue(k-1)) {
			// The collision uses the full window, so k is tight here.
			t.Errorf("optimistic k=%d unexpectedly Semiqueue_%d", k, k-1)
		}
		q, s = run(Pessimistic, k)
		if got := q.MaxConcurrentDequeuers(); got != k {
			t.Fatalf("pessimistic k = %d, want %d", got, k)
		}
		if !HybridAtomic(s, specs.StutteringQueue(k)) {
			t.Errorf("pessimistic j=%d not Atomic(Stuttering_%d): %v", k, k, s)
		}
		if k > 1 && HybridAtomic(s, specs.StutteringQueue(k-1)) {
			t.Errorf("pessimistic j=%d unexpectedly Stuttering_%d", k, k-1)
		}
	}
}

func TestConcurrentQueueBlockingFIFO(t *testing.T) {
	cq := NewConcurrentQueue(Blocking)
	// Seed serially.
	for i := 1; i <= 8; i++ {
		tx := cq.Begin()
		if err := cq.Enq(tx, value.Elem(i)); err != nil {
			t.Fatalf("Enq: %v", err)
		}
		if err := cq.Commit(tx); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				tx := cq.Begin()
				if _, err := cq.Deq(tx); err != nil {
					t.Errorf("Deq: %v", err)
					return
				}
				if err := cq.Commit(tx); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s, _ := cq.Snapshot()
	if !HybridAtomic(s, specs.FIFOQueue()) {
		t.Errorf("blocking concurrent schedule not FIFO: %v", s)
	}
}

func TestConcurrentQueueOptimistic(t *testing.T) {
	cq := NewConcurrentQueue(Optimistic)
	for i := 1; i <= 8; i++ {
		tx := cq.Begin()
		_ = cq.Enq(tx, value.Elem(i))
		_ = cq.Commit(tx)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				tx := cq.Begin()
				if _, err := cq.Deq(tx); err != nil {
					t.Errorf("Deq: %v", err)
					return
				}
				if err := cq.Commit(tx); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s, k := cq.Snapshot()
	if k < 1 || k > 4 {
		t.Fatalf("k = %d", k)
	}
	if !HybridAtomic(s, specs.Semiqueue(k)) {
		t.Errorf("optimistic concurrent schedule not Semiqueue_%d: %v", k, s)
	}
}
