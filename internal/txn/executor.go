package txn

import (
	"errors"
	"fmt"
	"sync"
)

// ErrRetriesExhausted is returned by Executor.Run when a transaction
// body keeps deadlocking past the retry budget.
var ErrRetriesExhausted = errors.New("txn: deadlock retries exhausted")

// ConcurrentStore wraps Store for goroutine use: lock conflicts wait on
// a condition variable instead of returning ErrWouldBlock, and
// deadlocks surface as ErrDeadlock for the executor to retry.
type ConcurrentStore struct {
	mu   sync.Mutex
	cond *sync.Cond // immutable after NewConcurrentStore; waits on mu
	s    *Store     // guarded by mu
}

// NewConcurrentStore builds a goroutine-safe transactional store.
func NewConcurrentStore() *ConcurrentStore {
	cs := &ConcurrentStore{s: NewStore()}
	cs.cond = sync.NewCond(&cs.mu)
	return cs
}

// Begin starts a transaction.
func (cs *ConcurrentStore) Begin() ID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.s.Begin()
}

// withWait retries fn while it reports ErrWouldBlock, waiting for lock
// releases; ErrDeadlock is returned to the caller (who must abort).
func (cs *ConcurrentStore) withWait(fn func() error) error {
	for {
		err := fn()
		if !errors.Is(err, ErrWouldBlock) {
			return err
		}
		cs.cond.Wait()
	}
}

// Credit adds n to the account on behalf of t, waiting for locks.
func (cs *ConcurrentStore) Credit(t ID, account string, n int) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.withWait(func() error { return cs.s.Credit(t, account, n) })
}

// Debit subtracts n, waiting for locks; it returns the termination
// condition as Store.Debit does.
func (cs *ConcurrentStore) Debit(t ID, account string, n int) (term string, err error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var result string
	err = cs.withWait(func() error {
		tm, err := cs.s.Debit(t, account, n)
		result = string(tm)
		return err
	})
	return result, err
}

// Balance reads the balance t observes, waiting for locks.
func (cs *ConcurrentStore) Balance(t ID, account string) (int, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var bal int
	err := cs.withWait(func() error {
		b, err := cs.s.Balance(t, account)
		bal = b
		return err
	})
	return bal, err
}

// Commit commits t and wakes waiters.
func (cs *ConcurrentStore) Commit(t ID) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	err := cs.s.Commit(t)
	cs.cond.Broadcast()
	return err
}

// Abort aborts t and wakes waiters.
func (cs *ConcurrentStore) Abort(t ID) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	err := cs.s.Abort(t)
	cs.cond.Broadcast()
	return err
}

// Snapshot returns committed balances and per-account schedules.
func (cs *ConcurrentStore) Snapshot() (balances map[string]int, schedules map[string]Schedule) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	balances = map[string]int{}
	schedules = map[string]Schedule{}
	for _, a := range cs.s.Accounts() {
		balances[a] = cs.s.CommittedBalance(a)
		schedules[a] = cs.s.ScheduleFor(a)
	}
	return balances, schedules
}

// Tx is the handle a transaction body uses inside Executor.Run.
type Tx struct {
	cs *ConcurrentStore
	id ID
}

// ID returns the transaction identifier.
func (tx *Tx) ID() ID { return tx.id }

// Credit adds n to the account.
func (tx *Tx) Credit(account string, n int) error { return tx.cs.Credit(tx.id, account, n) }

// Debit subtracts n; Over terminations are reported via the returned
// string, not an error.
func (tx *Tx) Debit(account string, n int) (string, error) { return tx.cs.Debit(tx.id, account, n) }

// Balance reads the account balance.
func (tx *Tx) Balance(account string) (int, error) { return tx.cs.Balance(tx.id, account) }

// Executor runs transaction bodies against a ConcurrentStore with
// automatic abort-and-retry on deadlock — the standard strict-2PL
// execution discipline.
type Executor struct {
	Store *ConcurrentStore
	// MaxRetries bounds deadlock retries per body (default 10).
	MaxRetries int
}

// NewExecutor builds an executor over a fresh store.
func NewExecutor() *Executor {
	return &Executor{Store: NewConcurrentStore(), MaxRetries: 10}
}

// Run executes body in a transaction: commit on nil, abort on error.
// Deadlocks abort and retry the whole body. A body returning an error
// aborts and passes the error through.
func (e *Executor) Run(body func(tx *Tx) error) error {
	retries := e.MaxRetries
	if retries <= 0 {
		retries = 10
	}
	for attempt := 0; attempt <= retries; attempt++ {
		t := e.Store.Begin()
		err := body(&Tx{cs: e.Store, id: t})
		switch {
		case err == nil:
			return e.Store.Commit(t)
		case errors.Is(err, ErrDeadlock):
			if abortErr := e.Store.Abort(t); abortErr != nil {
				return abortErr
			}
			continue
		default:
			if abortErr := e.Store.Abort(t); abortErr != nil {
				return fmt.Errorf("%v (abort: %w)", err, abortErr)
			}
			return err
		}
	}
	return ErrRetriesExhausted
}
