package txn

import (
	"errors"
	"testing"

	"relaxlattice/internal/specs"
)

func TestLockBasics(t *testing.T) {
	lm := NewLockManager()
	if err := lm.TryAcquire(1, "q", Exclusive); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if !lm.Holds(1, "q", Exclusive) {
		t.Errorf("Holds wrong")
	}
	// Re-acquire is idempotent.
	if err := lm.TryAcquire(1, "q", Exclusive); err != nil {
		t.Errorf("re-acquire: %v", err)
	}
	// Conflict.
	if err := lm.TryAcquire(2, "q", Shared); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("expected ErrWouldBlock, got %v", err)
	}
	// Release frees it.
	lm.ReleaseAll(1)
	if err := lm.TryAcquire(2, "q", Shared); err != nil {
		t.Errorf("after release: %v", err)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	lm := NewLockManager()
	if err := lm.TryAcquire(1, "q", Shared); err != nil {
		t.Fatalf("%v", err)
	}
	if err := lm.TryAcquire(2, "q", Shared); err != nil {
		t.Fatalf("shared locks should coexist: %v", err)
	}
	// Exclusive conflicts with both.
	if err := lm.TryAcquire(3, "q", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("expected ErrWouldBlock, got %v", err)
	}
	held := lm.HeldBy("q")
	if len(held) != 2 || held[0] != 1 || held[1] != 2 {
		t.Errorf("HeldBy = %v", held)
	}
}

func TestLockUpgrade(t *testing.T) {
	lm := NewLockManager()
	_ = lm.TryAcquire(1, "q", Shared)
	// Sole shared holder upgrades.
	if err := lm.TryAcquire(1, "q", Exclusive); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	if !lm.Holds(1, "q", Exclusive) {
		t.Errorf("upgrade not recorded")
	}
	// Upgrade blocked by another shared holder.
	lm2 := NewLockManager()
	_ = lm2.TryAcquire(1, "q", Shared)
	_ = lm2.TryAcquire(2, "q", Shared)
	if err := lm2.TryAcquire(1, "q", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("upgrade should block: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	lm := NewLockManager()
	_ = lm.TryAcquire(1, "a", Exclusive)
	_ = lm.TryAcquire(2, "b", Exclusive)
	// T1 waits for b (held by T2).
	if err := lm.TryAcquire(1, "b", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("expected block: %v", err)
	}
	// T2 waiting for a would close the cycle.
	if err := lm.TryAcquire(2, "a", Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	// After T1 releases, T2 can proceed.
	lm.ReleaseAll(1)
	if err := lm.TryAcquire(2, "a", Exclusive); err != nil {
		t.Errorf("after release: %v", err)
	}
}

func TestHoldsModeSemantics(t *testing.T) {
	lm := NewLockManager()
	_ = lm.TryAcquire(1, "q", Shared)
	if !lm.Holds(1, "q", Shared) {
		t.Errorf("shared not held")
	}
	if lm.Holds(1, "q", Exclusive) {
		t.Errorf("shared should not satisfy exclusive")
	}
	if lm.Holds(2, "q", Shared) {
		t.Errorf("non-holder holds")
	}
}

// Strict 2PL via the lock manager yields hybrid atomic schedules: a
// transcript where each Deq takes the queue's exclusive lock first.
func TestStrict2PLYieldsHybridAtomicity(t *testing.T) {
	lm := NewLockManager()
	q := NewQueue(Blocking)
	seed(t, q, 2)
	t1 := q.Begin()
	if err := lm.TryAcquire(t1, "queue", Exclusive); err != nil {
		t.Fatalf("lock: %v", err)
	}
	if _, err := q.Deq(t1); err != nil {
		t.Fatalf("Deq: %v", err)
	}
	// A second dequeuer cannot take the lock while T1 holds it.
	t2 := q.Begin()
	if err := lm.TryAcquire(t2, "queue", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("2PL should block T2: %v", err)
	}
	_ = q.Commit(t1)
	lm.ReleaseAll(t1)
	if err := lm.TryAcquire(t2, "queue", Exclusive); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
	if _, err := q.Deq(t2); err != nil {
		t.Fatalf("Deq: %v", err)
	}
	_ = q.Commit(t2)
	lm.ReleaseAll(t2)
	if !HybridAtomic(q.Schedule(), specs.FIFOQueue()) {
		t.Errorf("2PL schedule not hybrid atomic: %v", q.Schedule())
	}
}
