package txn

import (
	"errors"
	"sync"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/specs"
)

func TestStoreSerialTransactions(t *testing.T) {
	s := NewStore()
	t1 := s.Begin()
	if err := s.Credit(t1, "alice", 10); err != nil {
		t.Fatalf("Credit: %v", err)
	}
	if term, err := s.Debit(t1, "alice", 4); err != nil || term != history.Ok {
		t.Fatalf("Debit: %v %v", term, err)
	}
	if bal, err := s.Balance(t1, "alice"); err != nil || bal != 6 {
		t.Fatalf("Balance: %d %v", bal, err)
	}
	if err := s.Commit(t1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if s.CommittedBalance("alice") != 6 {
		t.Errorf("committed = %d", s.CommittedBalance("alice"))
	}
	// Overdraft bounces without changing the balance.
	t2 := s.Begin()
	if term, err := s.Debit(t2, "alice", 100); err != nil || term != history.Over {
		t.Fatalf("over-debit: %v %v", term, err)
	}
	if err := s.Commit(t2); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if s.CommittedBalance("alice") != 6 {
		t.Errorf("bounce changed balance: %d", s.CommittedBalance("alice"))
	}
	// The per-account schedule is hybrid atomic against BankAccount.
	sched := s.ScheduleFor("alice")
	if !HybridAtomic(sched, specs.BankAccount()) {
		t.Errorf("schedule not hybrid atomic: %v", sched)
	}
}

func TestStoreAbortDiscards(t *testing.T) {
	s := NewStore()
	t1 := s.Begin()
	_ = s.Credit(t1, "a", 5)
	if err := s.Abort(t1); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if s.CommittedBalance("a") != 0 {
		t.Errorf("aborted credit applied")
	}
	// Aborted ops vanish from perm: schedule still atomic.
	if !HybridAtomic(s.ScheduleFor("a"), specs.BankAccount()) {
		t.Errorf("schedule with abort not atomic")
	}
	// Finished transactions are rejected.
	if err := s.Credit(t1, "a", 1); !errors.Is(err, ErrFinished) {
		t.Errorf("credit after abort: %v", err)
	}
	if _, err := s.Debit(t1, "a", 1); !errors.Is(err, ErrFinished) {
		t.Errorf("debit after abort: %v", err)
	}
	if _, err := s.Balance(t1, "a"); !errors.Is(err, ErrFinished) {
		t.Errorf("balance after abort: %v", err)
	}
	if err := s.Commit(t1); !errors.Is(err, ErrFinished) {
		t.Errorf("commit after abort: %v", err)
	}
}

func TestStoreLockConflicts(t *testing.T) {
	s := NewStore()
	t1, t2 := s.Begin(), s.Begin()
	if err := s.Credit(t1, "a", 5); err != nil {
		t.Fatalf("Credit: %v", err)
	}
	// t2 conflicts on the same account.
	if err := s.Credit(t2, "a", 3); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("expected ErrWouldBlock, got %v", err)
	}
	// Strictness: the lock is held until commit, not op end.
	if _, err := s.Balance(t2, "a"); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("lock released early: %v", err)
	}
	_ = s.Commit(t1)
	if err := s.Credit(t2, "a", 3); err != nil {
		t.Fatalf("after release: %v", err)
	}
	_ = s.Commit(t2)
	if s.CommittedBalance("a") != 8 {
		t.Errorf("balance = %d", s.CommittedBalance("a"))
	}
}

func TestStoreDeadlock(t *testing.T) {
	s := NewStore()
	t1, t2 := s.Begin(), s.Begin()
	_ = s.Credit(t1, "a", 1)
	_ = s.Credit(t2, "b", 1)
	if err := s.Credit(t1, "b", 1); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("t1 on b: %v", err)
	}
	if err := s.Credit(t2, "a", 1); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestStoreRejectsNegativeAmounts(t *testing.T) {
	s := NewStore()
	t1 := s.Begin()
	if err := s.Credit(t1, "a", -1); err == nil {
		t.Errorf("negative credit accepted")
	}
	if _, err := s.Debit(t1, "a", -1); err == nil {
		t.Errorf("negative debit accepted")
	}
}

func TestStoreAccounts(t *testing.T) {
	s := NewStore()
	t1 := s.Begin()
	_ = s.Credit(t1, "zeta", 1)
	_ = s.Credit(t1, "alpha", 1)
	_ = s.Commit(t1)
	got := s.Accounts()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Accounts = %v", got)
	}
}

// Concurrent transfers under the executor: money is conserved, no
// account goes negative, and every per-account schedule is hybrid
// atomic for the BankAccount automaton.
func TestExecutorConcurrentTransfers(t *testing.T) {
	e := NewExecutor()
	accounts := []string{"a", "b", "c"}
	// Fund each account with 100.
	for _, acct := range accounts {
		acct := acct
		if err := e.Run(func(tx *Tx) error { return tx.Credit(acct, 100) }); err != nil {
			t.Fatalf("fund %s: %v", acct, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				from := accounts[(w+i)%3]
				to := accounts[(w+i+1)%3]
				err := e.Run(func(tx *Tx) error {
					// Lock order varies per goroutine: deadlocks happen
					// and must be retried.
					term, err := tx.Debit(from, 5)
					if err != nil {
						return err
					}
					if term == string(history.Over) {
						return nil // insufficient funds; fine
					}
					return tx.Credit(to, 5)
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("transfer: %v", err)
	}
	balances, schedules := e.Store.Snapshot()
	total := 0
	for _, acct := range accounts {
		bal := balances[acct]
		if bal < 0 {
			t.Errorf("account %s overdrawn: %d", acct, bal)
		}
		total += bal
		if !HybridAtomic(schedules[acct], specs.BankAccount()) {
			t.Errorf("account %s schedule not hybrid atomic:\n%v", acct, schedules[acct])
		}
	}
	if total != 300 {
		t.Errorf("money not conserved: %d", total)
	}
}

func TestExecutorBodyErrorAborts(t *testing.T) {
	e := NewExecutor()
	boom := errors.New("boom")
	err := e.Run(func(tx *Tx) error {
		if err := tx.Credit("x", 5); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	balances, _ := e.Store.Snapshot()
	if balances["x"] != 0 {
		t.Errorf("aborted body applied: %d", balances["x"])
	}
}

func TestExecutorBalanceRead(t *testing.T) {
	e := NewExecutor()
	if err := e.Run(func(tx *Tx) error { return tx.Credit("x", 7) }); err != nil {
		t.Fatal(err)
	}
	var saw int
	err := e.Run(func(tx *Tx) error {
		b, err := tx.Balance("x")
		saw = b
		return err
	})
	if err != nil || saw != 7 {
		t.Errorf("balance read = %d, %v", saw, err)
	}
	err = e.Run(func(tx *Tx) error {
		if tx.ID() == 0 {
			t.Errorf("zero txn id")
		}
		return nil
	})
	if err != nil {
		t.Errorf("empty body: %v", err)
	}
}
