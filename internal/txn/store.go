package txn

import (
	"fmt"

	"relaxlattice/internal/history"
)

// Store is a transactional multi-account bank implementing atomicity
// with strict two-phase locking — the mechanism Section 4.1 cites as
// guaranteeing hybrid atomicity. Each account is a named resource
// protected by the lock table; transactions acquire exclusive locks on
// the accounts they touch and hold them until commit or abort, so the
// per-account schedules serialize in commit order against the
// BankAccount automaton of Section 3.4.
//
// Store is a logical, non-blocking runtime like Queue: lock conflicts
// surface as ErrWouldBlock/ErrDeadlock and the caller decides whether
// to wait (see ConcurrentStore) or abort.
type Store struct {
	lm        *LockManager
	balances  map[string]int
	txns      map[ID]*storeTxn
	status    map[ID]Status
	schedules map[string]Schedule
	nextID    ID
}

type storeTxn struct {
	deltas  map[string]int          // uncommitted balance changes
	ops     map[string][]history.Op // executed ops per account
	touched []string                // account order of first touch
}

// NewStore builds an empty store; accounts spring into existence with a
// zero balance on first touch.
func NewStore() *Store {
	return &Store{
		lm:        NewLockManager(),
		balances:  map[string]int{},
		txns:      map[ID]*storeTxn{},
		status:    map[ID]Status{},
		schedules: map[string]Schedule{},
	}
}

// Begin starts a transaction.
func (s *Store) Begin() ID {
	s.nextID++
	s.status[s.nextID] = StatusActive
	s.txns[s.nextID] = &storeTxn{deltas: map[string]int{}, ops: map[string][]history.Op{}}
	return s.nextID
}

func (s *Store) active(t ID) (*storeTxn, error) {
	if s.status[t] != StatusActive {
		return nil, fmt.Errorf("%w: T%d", ErrFinished, int(t))
	}
	return s.txns[t], nil
}

// lock takes the account's exclusive lock, surfacing ErrWouldBlock or
// ErrDeadlock from the lock table.
func (s *Store) lock(t ID, account string) error {
	return s.lm.TryAcquire(t, account, Exclusive)
}

func (s *Store) record(tx *storeTxn, t ID, account string, op history.Op) {
	if _, seen := tx.ops[account]; !seen {
		tx.touched = append(tx.touched, account)
	}
	tx.ops[account] = append(tx.ops[account], op)
	s.schedules[account] = s.schedules[account].Append(Step(t, op))
}

// view returns the balance transaction t observes: committed balance
// plus its own uncommitted deltas (it holds the lock, so no other
// deltas exist).
func (s *Store) view(tx *storeTxn, account string) int {
	return s.balances[account] + tx.deltas[account]
}

// Credit adds n to the account on behalf of t.
func (s *Store) Credit(t ID, account string, n int) error {
	tx, err := s.active(t)
	if err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("txn: negative credit %d", n)
	}
	if err := s.lock(t, account); err != nil {
		return err
	}
	tx.deltas[account] += n
	s.record(tx, t, account, history.Credit(n))
	return nil
}

// Debit subtracts n from the account on behalf of t, returning the
// termination condition: Ok on success, Over (with no balance change)
// when the visible balance cannot cover n.
func (s *Store) Debit(t ID, account string, n int) (history.Term, error) {
	tx, err := s.active(t)
	if err != nil {
		return "", err
	}
	if n < 0 {
		return "", fmt.Errorf("txn: negative debit %d", n)
	}
	if err := s.lock(t, account); err != nil {
		return "", err
	}
	if n > s.view(tx, account) {
		s.record(tx, t, account, history.DebitOver(n))
		return history.Over, nil
	}
	tx.deltas[account] -= n
	s.record(tx, t, account, history.DebitOk(n))
	return history.Ok, nil
}

// Balance returns the balance t observes (taking the lock, so the
// read is repeatable and serializable).
func (s *Store) Balance(t ID, account string) (int, error) {
	tx, err := s.active(t)
	if err != nil {
		return 0, err
	}
	if err := s.lock(t, account); err != nil {
		return 0, err
	}
	return s.view(tx, account), nil
}

// Commit applies t's deltas and releases its locks (strictness: locks
// drop only now).
func (s *Store) Commit(t ID) error {
	tx, err := s.active(t)
	if err != nil {
		return err
	}
	for account, delta := range tx.deltas {
		s.balances[account] += delta
	}
	for _, account := range tx.touched {
		s.schedules[account] = s.schedules[account].Append(Commit(t))
	}
	s.finish(t)
	s.status[t] = StatusCommitted
	return nil
}

// Abort discards t's deltas and releases its locks.
func (s *Store) Abort(t ID) error {
	tx, err := s.active(t)
	if err != nil {
		return err
	}
	for _, account := range tx.touched {
		s.schedules[account] = s.schedules[account].Append(Abort(t))
	}
	s.finish(t)
	s.status[t] = StatusAborted
	return nil
}

func (s *Store) finish(t ID) {
	s.lm.ReleaseAll(t)
	delete(s.txns, t)
}

// CommittedBalance returns the committed balance of an account.
func (s *Store) CommittedBalance(account string) int { return s.balances[account] }

// Accounts returns the accounts with recorded history, sorted.
func (s *Store) Accounts() []string {
	out := make([]string, 0, len(s.schedules))
	for a := range s.schedules {
		out = append(out, a)
	}
	sortStrings(out)
	return out
}

// ScheduleFor returns the per-account schedule — each account is an
// atomic object whose schedule must lie in L(Atomic(BankAccount)).
func (s *Store) ScheduleFor(account string) Schedule {
	return s.schedules[account].Append()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
