package txn

import (
	"strings"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/specs"
)

func TestScheduleBasics(t *testing.T) {
	s := Schedule{
		Step(1, history.Enq(1)),
		Step(2, history.Enq(2)),
		Commit(1),
		Step(2, history.DeqOk(1)),
		Abort(2),
	}
	txns := s.Txns()
	if len(txns) != 2 || txns[0] != 1 || txns[1] != 2 {
		t.Errorf("Txns = %v", txns)
	}
	status := s.StatusOf()
	if status[1] != StatusCommitted || status[2] != StatusAborted {
		t.Errorf("status = %v", status)
	}
	if len(s.Active()) != 0 {
		t.Errorf("Active = %v", s.Active())
	}
	committed := s.Committed()
	if len(committed) != 1 || committed[0] != 1 {
		t.Errorf("Committed = %v", committed)
	}
	proj := s.Proj(2)
	if !proj.Equal(history.History{history.Enq(2), history.DeqOk(1)}) {
		t.Errorf("Proj = %v", proj)
	}
	perm := s.Perm()
	if len(perm) != 2 { // T1's Enq and commit
		t.Errorf("Perm = %v", perm)
	}
	if !strings.Contains(s.String(), "⟨Enq(1)/Ok(), T1⟩") {
		t.Errorf("String = %q", s.String())
	}
	if (Schedule{}).String() != "Λ" {
		t.Errorf("empty schedule String")
	}
}

func TestWellFormed(t *testing.T) {
	good := Schedule{Step(1, history.Enq(1)), Commit(1), Step(2, history.Enq(2)), Abort(2)}
	if !good.WellFormed() {
		t.Errorf("good schedule rejected")
	}
	afterCommit := Schedule{Commit(1), Step(1, history.Enq(1))}
	if afterCommit.WellFormed() {
		t.Errorf("op after commit accepted")
	}
	commitAbort := Schedule{Commit(1), Abort(1)}
	if commitAbort.WellFormed() {
		t.Errorf("commit then abort accepted")
	}
	doubleCommit := Schedule{Commit(1), Commit(1)}
	if doubleCommit.WellFormed() {
		t.Errorf("double commit accepted")
	}
}

func TestSOpHelpers(t *testing.T) {
	if !Commit(1).IsCommit() || Commit(1).IsAbort() {
		t.Errorf("Commit classification")
	}
	if !Abort(1).IsAbort() || Abort(1).IsCommit() {
		t.Errorf("Abort classification")
	}
	st := Step(3, history.DeqOk(7))
	if st.IsCommit() || st.IsAbort() {
		t.Errorf("Step classification")
	}
	if st.String() != "⟨Deq()/Ok(7), T3⟩" {
		t.Errorf("String = %q", st.String())
	}
}

func TestSerializable(t *testing.T) {
	fifo := specs.FIFOQueue()
	// T1 enqueues 1, T2 enqueues 2, T1 dequeues 1: serializable as
	// T1 then T2 (or interleaved orders that put Enq(1) before Deq).
	s := Schedule{
		Step(1, history.Enq(1)),
		Step(2, history.Enq(2)),
		Step(1, history.DeqOk(1)),
		Commit(1), Commit(2),
	}
	if !Serializable(s, fifo) {
		t.Errorf("should serialize")
	}
	if !Atomic(s, fifo) {
		t.Errorf("should be atomic")
	}
	// Each transaction dequeues the other's enqueue: in order (T1, T2)
	// the Deq(2) precedes Enq(2); in order (T2, T1) the Deq(1) precedes
	// Enq(1). No serialization exists.
	bad := Schedule{
		Step(1, history.Enq(1)),
		Step(2, history.Enq(2)),
		Step(1, history.DeqOk(2)),
		Step(2, history.DeqOk(1)),
		Commit(1), Commit(2),
	}
	if Serializable(bad, fifo) {
		t.Errorf("should not serialize")
	}
}

func TestSerializableInOrder(t *testing.T) {
	fifo := specs.FIFOQueue()
	s := Schedule{
		Step(1, history.Enq(1)),
		Step(2, history.DeqOk(1)),
		Commit(2), Commit(1), // commit order: T2 then T1
	}
	// In commit order (T2, T1) the Deq precedes the Enq: illegal.
	if SerializableInOrder(s.Perm(), fifo, s.Committed()) {
		t.Errorf("commit order should fail")
	}
	if HybridAtomic(s, fifo) {
		t.Errorf("not hybrid atomic")
	}
	// But the schedule is serializable in the order (T1, T2).
	if !Serializable(s.Perm(), fifo) {
		t.Errorf("should serialize in some order")
	}
	if !Atomic(s, fifo) {
		t.Errorf("should be atomic")
	}
}

func TestAbortedTransactionsVanish(t *testing.T) {
	fifo := specs.FIFOQueue()
	// T2's dequeue aborts, so perm(H) contains only T1's enqueue.
	s := Schedule{
		Step(1, history.Enq(1)),
		Step(2, history.DeqOk(1)),
		Abort(2),
		Commit(1),
	}
	if !Atomic(s, fifo) {
		t.Errorf("aborted op should not count")
	}
}

func TestOnlineAtomic(t *testing.T) {
	fifo := specs.FIFOQueue()
	// T1 committed its enqueue; T2 and T3 have both dequeued item 1
	// tentatively (a pessimistic runtime could produce this); if both
	// commit, the duplicate dequeue is not FIFO-serializable.
	s := Schedule{
		Step(1, history.Enq(1)), Commit(1),
		Step(2, history.DeqOk(1)),
		Step(3, history.DeqOk(1)),
	}
	if OnlineAtomic(s, fifo) {
		t.Errorf("double tentative dequeue cannot be online atomic for FIFO")
	}
	// Against Stuttering_2, the same schedule is fine.
	if !OnlineAtomic(s, specs.StutteringQueue(2)) {
		t.Errorf("should be online atomic for Stuttering_2")
	}
	// A non-well-formed schedule is never online atomic.
	if OnlineAtomic(Schedule{Commit(1), Commit(1)}, fifo) {
		t.Errorf("ill-formed schedule accepted")
	}
}

func TestOnlineHybridAtomic(t *testing.T) {
	semi2 := specs.Semiqueue(2)
	fifo := specs.FIFOQueue()
	// Optimistic collision: T2 dequeues 1, T3 skips to 2. Whatever
	// commit order follows, semiqueue_2 accepts; FIFO does not (commit
	// order T3 before T2 dequeues out of order).
	s := Schedule{
		Step(1, history.Enq(1)),
		Step(1, history.Enq(2)),
		Commit(1),
		Step(2, history.DeqOk(1)),
		Step(3, history.DeqOk(2)),
	}
	if !OnlineHybridAtomic(s, semi2) {
		t.Errorf("optimistic collision should be online hybrid atomic for Semiqueue_2")
	}
	if OnlineHybridAtomic(s, fifo) {
		t.Errorf("optimistic collision is not FIFO under commit order T3<T2")
	}
	if OnlineHybridAtomic(Schedule{Commit(1), Commit(1)}, fifo) {
		t.Errorf("ill-formed schedule accepted")
	}
}

func TestPermuteSubsetsHelpers(t *testing.T) {
	var perms [][]ID
	permute([]ID{1, 2, 3}, func(p []ID) bool {
		perms = append(perms, append([]ID(nil), p...))
		return true
	})
	if len(perms) != 6 {
		t.Errorf("permutations = %d", len(perms))
	}
	count := 0
	subsets([]ID{1, 2}, func(s []ID) bool { count++; return true })
	if count != 4 {
		t.Errorf("subsets = %d", count)
	}
	// Early stop.
	count = 0
	subsets([]ID{1, 2, 3}, func(s []ID) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop failed: %d", count)
	}
}

func TestSerializablePanicsOnTooMany(t *testing.T) {
	var s Schedule
	for i := 1; i <= maxPermutationTxns+1; i++ {
		s = s.Append(Step(ID(i), history.Enq(i)))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	Serializable(s, specs.FIFOQueue())
}
