// Package txn implements the atomic-object machinery of Section 4:
// transactional schedules, well-formedness, serializability
// (Definition 5), atomicity (Definition 6), on-line atomicity
// (Definition 7), hybrid atomicity, a strict two-phase-locking manager,
// and the three print-spooler queue runtimes of Section 4.2 — blocking
// FIFO, optimistic (semiqueue), and pessimistic (stuttering queue).
package txn

import (
	"fmt"
	"strings"

	"relaxlattice/internal/history"
)

// ID identifies a transaction.
type ID int

// SOp is one step of a schedule: an operation execution ⟨p, P⟩ where p
// is an operation of the underlying automaton, a Commit, or an Abort,
// executed by transaction P.
type SOp struct {
	Txn ID
	Op  history.Op
}

// Commit returns ⟨commit, t⟩.
func Commit(t ID) SOp { return SOp{Txn: t, Op: history.Op{Name: history.NameCommit, Term: history.Ok}} }

// Abort returns ⟨abort, t⟩.
func Abort(t ID) SOp { return SOp{Txn: t, Op: history.Op{Name: history.NameAbort, Term: history.Ok}} }

// Step returns ⟨op, t⟩ for an ordinary operation.
func Step(t ID, op history.Op) SOp { return SOp{Txn: t, Op: op} }

// IsCommit reports whether the step is a commit.
func (s SOp) IsCommit() bool { return s.Op.Name == history.NameCommit }

// IsAbort reports whether the step is an abort.
func (s SOp) IsAbort() bool { return s.Op.Name == history.NameAbort }

// String renders the step as "⟨Enq(1)/Ok(), T2⟩".
func (s SOp) String() string { return fmt.Sprintf("⟨%s, T%d⟩", s.Op, int(s.Txn)) }

// Schedule is a history of transactional steps.
type Schedule []SOp

// Append returns the schedule extended with steps (copying, like
// history.History).
func (s Schedule) Append(steps ...SOp) Schedule {
	out := make(Schedule, 0, len(s)+len(steps))
	out = append(out, s...)
	out = append(out, steps...)
	return out
}

// String renders the schedule.
func (s Schedule) String() string {
	if len(s) == 0 {
		return "Λ"
	}
	parts := make([]string, len(s))
	for i, st := range s {
		parts[i] = st.String()
	}
	return strings.Join(parts, " · ")
}

// Txns returns the transaction identifiers in order of first
// appearance.
func (s Schedule) Txns() []ID {
	seen := map[ID]bool{}
	var out []ID
	for _, st := range s {
		if !seen[st.Txn] {
			seen[st.Txn] = true
			out = append(out, st.Txn)
		}
	}
	return out
}

// Status classifies transactions.
type Status int

// Transaction statuses.
const (
	StatusActive Status = iota + 1
	StatusCommitted
	StatusAborted
)

// StatusOf returns each transaction's status.
func (s Schedule) StatusOf() map[ID]Status {
	out := map[ID]Status{}
	for _, st := range s {
		switch {
		case st.IsCommit():
			out[st.Txn] = StatusCommitted
		case st.IsAbort():
			out[st.Txn] = StatusAborted
		default:
			if _, known := out[st.Txn]; !known {
				out[st.Txn] = StatusActive
			}
		}
	}
	return out
}

// Active returns the active transactions in first-appearance order.
func (s Schedule) Active() []ID {
	status := s.StatusOf()
	var out []ID
	for _, t := range s.Txns() {
		if status[t] == StatusActive {
			out = append(out, t)
		}
	}
	return out
}

// Committed returns the committed transactions in commit order.
func (s Schedule) Committed() []ID {
	var out []ID
	for _, st := range s {
		if st.IsCommit() {
			out = append(out, st.Txn)
		}
	}
	return out
}

// WellFormed reports the two conditions of Section 4.1: no transaction
// both commits and aborts (or commits/aborts twice), and no transaction
// executes anything after its commit or abort.
func (s Schedule) WellFormed() bool {
	finished := map[ID]bool{}
	for _, st := range s {
		if finished[st.Txn] {
			return false
		}
		if st.IsCommit() || st.IsAbort() {
			finished[st.Txn] = true
		}
	}
	return true
}

// Proj returns H|P: the history of operations of the base automaton
// executed by transaction p (commit/abort excluded).
func (s Schedule) Proj(p ID) history.History {
	var out history.History
	for _, st := range s {
		if st.Txn == p && !st.IsCommit() && !st.IsAbort() {
			out = append(out, st.Op)
		}
	}
	return out
}

// Perm returns perm(H): the subschedule of operations of committed
// transactions.
func (s Schedule) Perm() Schedule {
	status := s.StatusOf()
	var out Schedule
	for _, st := range s {
		if status[st.Txn] == StatusCommitted {
			out = append(out, st)
		}
	}
	return out
}
