package txn_test

import (
	"fmt"

	"relaxlattice/internal/specs"
	"relaxlattice/internal/txn"
	"relaxlattice/internal/value"
)

func valueElem(n int) value.Elem { return value.Elem(n) }

// Two printer controllers collide on the spool queue; the optimistic
// strategy lets the second skip ahead, and the resulting schedule is
// atomic for Semiqueue_2 — one lattice step below FIFO.
func ExampleQueue() {
	q := txn.NewQueue(txn.Optimistic)
	for _, f := range []int{1, 2} {
		t := q.Begin()
		_ = q.Enq(t, valueElem(f))
		_ = q.Commit(t)
	}
	printerA, printerB := q.Begin(), q.Begin()
	a, _ := q.Deq(printerA)
	b, _ := q.Deq(printerB) // skips the file printerA holds
	fmt.Printf("printer A got %d, printer B got %d\n", a, b)
	_ = q.Commit(printerB) // B finishes first
	_ = q.Commit(printerA)
	s := q.Schedule()
	fmt.Println("FIFO atomic:       ", txn.HybridAtomic(s, specs.FIFOQueue()))
	fmt.Println("Semiqueue_2 atomic:", txn.HybridAtomic(s, specs.Semiqueue(2)))
	// Output:
	// printer A got 1, printer B got 2
	// FIFO atomic:        false
	// Semiqueue_2 atomic: true
}

// Transfers between accounts run under strict two-phase locking with
// automatic deadlock retry; money is conserved and no account is ever
// overdrawn.
func ExampleExecutor() {
	e := txn.NewExecutor()
	_ = e.Run(func(tx *txn.Tx) error { return tx.Credit("alice", 10) })
	err := e.Run(func(tx *txn.Tx) error {
		if _, err := tx.Debit("alice", 4); err != nil {
			return err
		}
		return tx.Credit("bob", 4)
	})
	balances, _ := e.Store.Snapshot()
	fmt.Println("err:", err)
	fmt.Println("alice:", balances["alice"], "bob:", balances["bob"])
	// Output:
	// err: <nil>
	// alice: 6 bob: 4
}
