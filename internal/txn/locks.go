package txn

import (
	"errors"
	"fmt"
	"sort"

	"relaxlattice/internal/obs"
)

// Lock modes.
type LockMode int

// Shared permits concurrent readers; Exclusive permits one owner.
const (
	Shared LockMode = iota + 1
	Exclusive
)

// ErrDeadlock is returned when granting a lock would create a cycle in
// the wait-for graph.
var ErrDeadlock = errors.New("txn: deadlock")

// ErrWouldBlock is returned by TryAcquire when the lock is unavailable.
var ErrWouldBlock = errors.New("txn: lock unavailable")

// LockManager is a strict two-phase-locking table over named resources:
// locks are held until ReleaseAll at commit or abort, which is the
// discipline that yields hybrid atomic schedules (Section 4.1). It is a
// logical lock table for deterministic simulations — acquisition either
// succeeds, reports it would block (with deadlock detection), or
// reports deadlock; actual waiting is the caller's concern.
type LockManager struct {
	holders map[string]map[ID]LockMode // resource → holder → mode
	waits   map[ID]map[ID]bool         // wait-for graph: waiter → holders
	reg     *obs.Registry              // optional; nil-safe (see Observe)
}

// NewLockManager returns an empty lock table.
func NewLockManager() *LockManager {
	return &LockManager{
		holders: map[string]map[ID]LockMode{},
		waits:   map[ID]map[ID]bool{},
	}
}

// compatible reports whether a transaction may take mode on a resource
// given the current holders.
func (lm *LockManager) conflicts(res string, t ID, mode LockMode) []ID {
	var out []ID
	for holder, held := range lm.holders[res] {
		if holder == t {
			continue
		}
		if mode == Exclusive || held == Exclusive {
			out = append(out, holder)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TryAcquire attempts to take a lock without waiting. On conflict it
// records the wait-for edges and returns ErrWouldBlock, or ErrDeadlock
// if waiting would close a cycle. Re-acquiring a held lock upgrades it
// when possible.
func (lm *LockManager) TryAcquire(t ID, res string, mode LockMode) error {
	if held, ok := lm.holders[res][t]; ok && (held == Exclusive || held == mode) {
		return nil // already held at sufficient strength
	}
	conflicts := lm.conflicts(res, t, mode)
	if len(conflicts) == 0 {
		if lm.holders[res] == nil {
			lm.holders[res] = map[ID]LockMode{}
		}
		lm.holders[res][t] = maxMode(lm.holders[res][t], mode)
		delete(lm.waits, t)
		lm.reg.Counter("txn.lock.acquire").Add(1)
		return nil
	}
	// Record the wait and check for a cycle.
	if lm.waits[t] == nil {
		lm.waits[t] = map[ID]bool{}
	}
	for _, h := range conflicts {
		lm.waits[t][h] = true
	}
	if lm.cycleFrom(t) {
		delete(lm.waits, t)
		lm.reg.Counter("txn.lock.deadlock").Add(1)
		return fmt.Errorf("%w: T%d on %q", ErrDeadlock, int(t), res)
	}
	lm.reg.Counter("txn.lock.wait").Add(1)
	return fmt.Errorf("%w: T%d on %q held by %v", ErrWouldBlock, int(t), res, conflicts)
}

func maxMode(a, b LockMode) LockMode {
	if a == Exclusive || b == Exclusive {
		return Exclusive
	}
	return Shared
}

// cycleFrom reports whether the wait-for graph has a cycle reachable
// from t.
func (lm *LockManager) cycleFrom(t ID) bool {
	seen := map[ID]bool{}
	var dfs func(x ID) bool
	dfs = func(x ID) bool {
		if x == t && len(seen) > 0 {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for next := range lm.waits[x] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for next := range lm.waits[t] {
		if dfs(next) {
			return true
		}
	}
	return false
}

// Holds reports whether t holds res at least at the given mode.
func (lm *LockManager) Holds(t ID, res string, mode LockMode) bool {
	held, ok := lm.holders[res][t]
	return ok && (held == Exclusive || held == mode)
}

// ReleaseAll releases every lock held by t (strictness: only at commit
// or abort) and clears its waits.
func (lm *LockManager) ReleaseAll(t ID) {
	for res, holders := range lm.holders {
		delete(holders, t)
		if len(holders) == 0 {
			delete(lm.holders, res)
		}
	}
	delete(lm.waits, t)
	for _, waiters := range lm.waits {
		delete(waiters, t)
	}
	lm.reg.Counter("txn.lock.release").Add(1)
}

// HeldBy returns the transactions holding res, sorted.
func (lm *LockManager) HeldBy(res string) []ID {
	var out []ID
	for t := range lm.holders[res] {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
