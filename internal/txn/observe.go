package txn

import (
	"strconv"

	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
)

// Observability for the transactional runtime. Logical time for every
// journal event is the schedule index — the serialization-relevant
// clock of this layer: event T = n means "after the n-th scheduled
// step". The Queue is a deterministic logical runtime (callers decide
// scheduling), so a fixed call sequence yields a byte-stable journal;
// ConcurrentQueue records under its own mutex, so its journal order is
// the actual serialization order the lock admitted.

// Observe attaches a metrics registry and event journal to the queue.
// Either may be nil (that side is simply off). Counters:
//
//	txn.enq, txn.deq            successful operations
//	txn.deq.blocked             Blocking-strategy head conflicts
//	txn.deq.skipped             Optimistic skips past held items
//	txn.deq.stutter             Pessimistic re-returns of held items
//	txn.deq.empty               dequeues finding nothing visible
//	txn.commit, txn.abort       transaction outcomes
//
// plus the gauge txn.concurrent_dequeuers.max (high-water C_k index).
// Journal events txn.commit / txn.abort / txn.deq.blocked carry the
// transaction and the schedule index at which serialization happened.
func (q *Queue) Observe(reg *obs.Registry, rec *obs.Recorder) {
	q.reg = reg
	q.rec = rec
}

// TraceSpans attaches a causal-span tracer: one root span per
// transaction, opened at Begin and closed at Commit/Abort with an
// "outcome" attribute, with one instant child per operation. Give the
// tracer a clock over the schedule index (obs.ClockFunc reading
// len(Schedule)) to put transaction spans on the serialization-
// relevant time axis of this layer. Attach before any transaction
// begins; nil detaches (open transactions keep their spans).
func (q *Queue) TraceSpans(tr *trace.Tracer) {
	q.spans = tr
	if tr != nil && q.txnSpans == nil {
		q.txnSpans = map[ID]*trace.SpanRef{}
	}
}

// opSpan records one instant operation span under t's transaction
// span (no-op when spans are off or t began before attachment).
func (q *Queue) opSpan(t ID, name string, attrs ...obs.KV) {
	if q.spans == nil {
		return
	}
	c := q.txnSpans[t].Child(name, attrs...)
	c.End()
}

// endTxnSpan closes t's transaction span with the given outcome.
func (q *Queue) endTxnSpan(t ID, outcome string) {
	if q.spans == nil {
		return
	}
	if sp := q.txnSpans[t]; sp != nil {
		sp.End(obs.KV{K: "outcome", V: outcome})
		delete(q.txnSpans, t)
	}
}

// count bumps a queue counter (no-op when unobserved).
func (q *Queue) count(name string) {
	q.reg.Counter(name).Add(1)
}

// event records a journal event at the current schedule index.
func (q *Queue) event(name string, attrs ...obs.KV) {
	if q.rec == nil {
		return
	}
	q.rec.Record(int64(len(q.schedule)), name, attrs...)
}

func txnAttr(t ID) obs.KV {
	return obs.KV{K: "txn", V: "T" + strconv.Itoa(int(t))}
}

// Observe attaches observation to the wrapped queue.
func (cq *ConcurrentQueue) Observe(reg *obs.Registry, rec *obs.Recorder) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.q.Observe(reg, rec)
}

// Observe attaches a metrics registry to the lock table. Counters:
//
//	txn.lock.acquire     new or upgraded grants
//	txn.lock.wait        conflicts that would block
//	txn.lock.deadlock    grants refused to break a wait-for cycle
//	txn.lock.release     ReleaseAll calls (strict 2PL release points)
func (lm *LockManager) Observe(reg *obs.Registry) {
	lm.reg = reg
}
