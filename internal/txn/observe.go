package txn

import (
	"strconv"

	"relaxlattice/internal/obs"
)

// Observability for the transactional runtime. Logical time for every
// journal event is the schedule index — the serialization-relevant
// clock of this layer: event T = n means "after the n-th scheduled
// step". The Queue is a deterministic logical runtime (callers decide
// scheduling), so a fixed call sequence yields a byte-stable journal;
// ConcurrentQueue records under its own mutex, so its journal order is
// the actual serialization order the lock admitted.

// Observe attaches a metrics registry and event journal to the queue.
// Either may be nil (that side is simply off). Counters:
//
//	txn.enq, txn.deq            successful operations
//	txn.deq.blocked             Blocking-strategy head conflicts
//	txn.deq.skipped             Optimistic skips past held items
//	txn.deq.stutter             Pessimistic re-returns of held items
//	txn.deq.empty               dequeues finding nothing visible
//	txn.commit, txn.abort       transaction outcomes
//
// plus the gauge txn.concurrent_dequeuers.max (high-water C_k index).
// Journal events txn.commit / txn.abort / txn.deq.blocked carry the
// transaction and the schedule index at which serialization happened.
func (q *Queue) Observe(reg *obs.Registry, rec *obs.Recorder) {
	q.reg = reg
	q.rec = rec
}

// count bumps a queue counter (no-op when unobserved).
func (q *Queue) count(name string) {
	q.reg.Counter(name).Add(1)
}

// event records a journal event at the current schedule index.
func (q *Queue) event(name string, attrs ...obs.KV) {
	if q.rec == nil {
		return
	}
	q.rec.Record(int64(len(q.schedule)), name, attrs...)
}

func txnAttr(t ID) obs.KV {
	return obs.KV{K: "txn", V: "T" + strconv.Itoa(int(t))}
}

// Observe attaches observation to the wrapped queue.
func (cq *ConcurrentQueue) Observe(reg *obs.Registry, rec *obs.Recorder) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.q.Observe(reg, rec)
}

// Observe attaches a metrics registry to the lock table. Counters:
//
//	txn.lock.acquire     new or upgraded grants
//	txn.lock.wait        conflicts that would block
//	txn.lock.deadlock    grants refused to break a wait-for cycle
//	txn.lock.release     ReleaseAll calls (strict 2PL release points)
func (lm *LockManager) Observe(reg *obs.Registry) {
	lm.reg = reg
}
