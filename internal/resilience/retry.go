package resilience

import (
	"math"

	"relaxlattice/internal/sim"
)

// Reasons a retried operation stopped without succeeding.
const (
	// ReasonNonRetryable: the last error was rejected by the caller's
	// retryable predicate (e.g. a semantic failure like ErrNoResponse,
	// which no amount of waiting fixes).
	ReasonNonRetryable = "non-retryable"
	// ReasonAttempts: the attempt cap was exhausted.
	ReasonAttempts = "attempts-exhausted"
	// ReasonBudget: the next backoff would overrun the deadline budget.
	ReasonBudget = "budget-exhausted"
)

// Outcome reports how a retried operation ended.
type Outcome struct {
	// Err is nil on success, otherwise the last attempt's error.
	Err error
	// Attempts is the number of attempts actually made (≥ 1).
	Attempts int
	// Elapsed is the simulation time from the first attempt to
	// completion — the operation's latency including every backoff.
	Elapsed float64
	// Reason is "" on success, or one of the Reason* constants.
	Reason string
}

// Do runs attempt under policy p on the discrete-event engine: the
// first attempt runs synchronously now, and each retry is scheduled
// after the policy's backoff — simulation time passes between
// attempts, so crashed sites may recover and partitions may heal
// mid-operation. done is called exactly once, possibly from a later
// engine event; a nil done and a nil retryable (retry everything) are
// allowed. attempt receives the 1-based attempt number.
//
// Do never retries past the attempt cap, past the deadline budget, or
// past an error the retryable predicate rejects.
func Do(engine *sim.Engine, rng *sim.RNG, p Policy, retryable func(error) bool, attempt func(n int) error, done func(Outcome)) {
	if done == nil {
		done = func(Outcome) {}
	}
	if retryable == nil {
		retryable = func(error) bool { return true }
	}
	start := engine.Now()
	deadline := math.Inf(1)
	if p.Budget > 0 {
		deadline = start + p.Budget
	}
	var run func(n int)
	run = func(n int) {
		err := attempt(n)
		now := engine.Now()
		out := Outcome{Err: err, Attempts: n, Elapsed: now - start}
		switch {
		case err == nil:
			// success: Reason stays "".
		case !retryable(err):
			out.Reason = ReasonNonRetryable
		case n >= p.Attempts():
			out.Reason = ReasonAttempts
		default:
			delay := p.Backoff(n, rng)
			if now+delay > deadline {
				out.Reason = ReasonBudget
			} else {
				engine.After(delay, func() { run(n + 1) })
				return
			}
		}
		done(out)
	}
	run(1)
}
