// Package resilience is the client-side robustness layer over the
// relaxation-lattice machinery: a deterministic retry/timeout/backoff
// policy (deadline budgets in simulation time, capped exponential
// backoff with injected-RNG jitter) and an adaptive degradation
// controller that chooses *where on the relaxation lattice* a client
// operates — stepping down after repeated availability failures and
// probing its way back up after sustained successes, as relaxed
// structures are deployed in practice.
//
// Everything here is deterministic by construction: delays are
// simulation-time floats scheduled on a sim.Engine, jitter draws come
// from an injected sim.RNG, and the controller is a pure state machine
// driven by the caller. The wall clock never appears (relaxlint holds
// this package to the model-layer determinism rules), so a seeded run
// replays bit-for-bit — the same contract the cluster substrate and
// the experiment harness pin in CI.
package resilience

import "relaxlattice/internal/sim"

// Policy is a deterministic retry/timeout/backoff policy. All times are
// in the simulation-time units of the driving sim.Engine. The zero
// value means "one attempt, no budget"; DefaultPolicy returns the
// tuning the experiments use.
type Policy struct {
	// MaxAttempts caps the attempts per operation, including the
	// first. Values below 1 mean a single attempt (no retries).
	MaxAttempts int
	// Budget is the per-operation deadline budget: once the next
	// backoff would land past start+Budget, the retrier gives up with
	// ReasonBudget. Zero or negative means no deadline.
	Budget float64
	// BaseBackoff is the delay before the first retry. Zero or
	// negative defaults to 1.
	BaseBackoff float64
	// MaxBackoff caps every individual delay. Zero or negative means
	// uncapped.
	MaxBackoff float64
	// Multiplier is the exponential growth factor between consecutive
	// delays. Zero or negative defaults to 2; 1 gives constant delays.
	Multiplier float64
	// Jitter spreads each delay by a uniform factor in [1-J, 1+J],
	// drawn from the injected RNG. Values above 1 are clamped to 1;
	// zero or negative disables jitter.
	Jitter float64
}

// DefaultPolicy returns the retry tuning used by the experiments:
// up to six attempts within a budget of 40 time units, backing off
// 0.5 → 1 → 2 → 4 → 8 (capped) with ±20% jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 6, Budget: 40, BaseBackoff: 0.5, MaxBackoff: 8, Multiplier: 2, Jitter: 0.2}
}

// Attempts returns the effective attempt cap (always at least one).
func (p Policy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay before the next attempt after `failed`
// consecutive failed attempts (failed ≥ 1): capped exponential growth
// from BaseBackoff, jittered through rng. A nil rng disables jitter;
// the draw order is fixed (exactly one Float64 per jittered call), so
// a seeded RNG makes every delay sequence reproducible.
func (p Policy) Backoff(failed int, rng *sim.RNG) float64 {
	base := p.BaseBackoff
	if base <= 0 {
		base = 1
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := base
	for i := 1; i < failed; i++ {
		d *= mult
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if rng != nil && p.Jitter > 0 {
		d = rng.Jitter(d, p.Jitter)
	}
	return d
}

// Options bundles the retry policy with the controller tuning — the
// single knob the experiment harness and command-line front ends
// thread through to adaptive cluster clients.
type Options struct {
	Policy     Policy
	Controller ControllerConfig
}

// DefaultOptions returns the tuning used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Policy: DefaultPolicy(), Controller: DefaultControllerConfig()}
}
