package resilience

import (
	"testing"

	"relaxlattice/internal/sim"
)

func TestBackoffExponentialCapped(t *testing.T) {
	p := Policy{BaseBackoff: 0.5, MaxBackoff: 8, Multiplier: 2}
	want := []float64{0.5, 1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := p.Backoff(i+1, nil); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var p Policy
	if got := p.Backoff(1, nil); got != 1 {
		t.Errorf("zero-policy Backoff(1) = %v, want 1", got)
	}
	if got := p.Backoff(3, nil); got != 4 {
		t.Errorf("zero-policy Backoff(3) = %v, want 4 (multiplier defaults to 2)", got)
	}
	if p.Attempts() != 1 {
		t.Errorf("zero-policy Attempts = %d, want 1", p.Attempts())
	}
	if DefaultPolicy().Attempts() != 6 {
		t.Errorf("DefaultPolicy attempts = %d", DefaultPolicy().Attempts())
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	p := Policy{BaseBackoff: 2, Multiplier: 1, Jitter: 0.25}
	a, b := sim.NewRNG(11), sim.NewRNG(11)
	for i := 0; i < 100; i++ {
		da := p.Backoff(1, a)
		db := p.Backoff(1, b)
		if da != db {
			t.Fatalf("same-seed jitter diverged at draw %d: %v vs %v", i, da, db)
		}
		if da < 1.5 || da > 2.5 {
			t.Fatalf("jittered delay %v outside [1.5, 2.5]", da)
		}
	}
	// Jitter above 1 clamps rather than going negative.
	p.Jitter = 5
	for i := 0; i < 100; i++ {
		if d := p.Backoff(1, a); d < 0 || d > 4 {
			t.Fatalf("clamped jitter produced %v", d)
		}
	}
}

func TestDefaultOptionsFilled(t *testing.T) {
	o := DefaultOptions()
	if o.Policy.MaxAttempts < 2 || o.Controller.DescendAfter < 1 || o.Controller.AscendAfter < 1 {
		t.Errorf("DefaultOptions incomplete: %+v", o)
	}
}
