package resilience

import "fmt"

// ControllerConfig tunes the adaptive degradation controller. Levels
// is required; every other field has a sensible default.
type ControllerConfig struct {
	// Levels is the number of rungs on the degradation ladder the
	// controller walks — a chain through the relaxation lattice,
	// strongest (preferred) behavior at level 0.
	Levels int
	// DescendAfter is the number of consecutive availability failures
	// before the controller steps one level down. Values below 1
	// default to 2.
	DescendAfter int
	// AscendAfter is the number of consecutive successes at a degraded
	// level before the controller asks for an upward probe. Values
	// below 1 default to 6.
	AscendAfter int
	// Hedge is how many levels above the current one a single probe
	// round examines, strongest first — hedging the recovery so a
	// client can leapfrog intermediate rungs when the preferred
	// quorums are back. Values below 1 default to 1.
	Hedge int
	// ProbeEvery, when positive, asks adapters (cluster.Adaptive) to
	// also schedule timed probe events on the simulation engine every
	// ProbeEvery time units (jittered by the policy's Jitter), so an
	// idle degraded client still climbs back once faults heal.
	ProbeEvery float64
	// Watcher, when set, observes every ladder transition at the moment
	// it is recorded — the hook adapters use to cross-check the claimed
	// degradation floor against an online relaxation checker on each
	// descent and ascent. It is called synchronously from
	// OnFailure/Probe and must not call back into the controller.
	Watcher func(Transition)
}

// DefaultControllerConfig returns the controller tuning used for
// EXPERIMENTS.md: descend after 2 straight failures, probe up after 6
// straight successes or every 10 time units, hedging 2 levels.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{DescendAfter: 2, AscendAfter: 6, Hedge: 2, ProbeEvery: 10}
}

// Transition is one controller-driven move on the degradation ladder.
type Transition struct {
	// From and To are ladder levels (0 is the preferred behavior).
	From, To int
	// Reason is "descend" (failure streak) or "ascend" (probe hit).
	Reason string
}

// Controller is the adaptive degradation state machine: it consumes
// per-operation availability signals (OnSuccess/OnFailure) and decides
// which level of a relaxation-lattice chain the client should operate
// at. After DescendAfter consecutive availability failures it steps
// down one level; after AscendAfter consecutive successes at a
// degraded level (or on a timed probe) it examines up to Hedge levels
// above and climbs to the strongest one whose quorums answer.
//
// The controller is a pure, deterministic state machine: no clocks, no
// randomness, no locks. It is driven from discrete-event callbacks
// (single-threaded by construction) and is not safe for concurrent
// use.
type Controller struct {
	cfg         ControllerConfig
	level       int
	floor       int
	failStreak  int
	okStreak    int
	transitions []Transition
}

// NewController builds a controller at level 0 (the preferred
// behavior). It panics when cfg.Levels < 1 (a programming error) and
// fills every other field's default.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Levels < 1 {
		panic(fmt.Sprintf("resilience: controller over %d levels", cfg.Levels))
	}
	if cfg.DescendAfter < 1 {
		cfg.DescendAfter = 2
	}
	if cfg.AscendAfter < 1 {
		cfg.AscendAfter = 6
	}
	if cfg.Hedge < 1 {
		cfg.Hedge = 1
	}
	return &Controller{cfg: cfg}
}

// Config returns the effective (default-filled) configuration.
func (c *Controller) Config() ControllerConfig { return c.cfg }

// Level returns the current ladder level (0 = preferred behavior).
func (c *Controller) Level() int { return c.level }

// Floor returns the weakest (highest-numbered) level the controller
// has ever occupied — the degradation the client *claimed* over the
// whole run, which the lattice audit checks the observed history
// against.
func (c *Controller) Floor() int { return c.floor }

// Degraded reports whether the controller is below the preferred
// level.
func (c *Controller) Degraded() bool { return c.level > 0 }

// Transitions returns a copy of every ladder move so far, in order.
func (c *Controller) Transitions() []Transition {
	return append([]Transition(nil), c.transitions...)
}

// Descents returns the number of downward transitions.
func (c *Controller) Descents() int { return c.count("descend") }

// Ascents returns the number of upward transitions.
func (c *Controller) Ascents() int { return c.count("ascend") }

func (c *Controller) count(reason string) int {
	n := 0
	for _, t := range c.transitions {
		if t.Reason == reason {
			n++
		}
	}
	return n
}

// OnSuccess records one successful operation at the current level. It
// returns true when the success streak has reached AscendAfter at a
// degraded level — the signal that the client should Probe upward.
func (c *Controller) OnSuccess() bool {
	c.failStreak = 0
	c.okStreak++
	return c.level > 0 && c.okStreak >= c.cfg.AscendAfter
}

// OnFailure records one availability failure at the current level.
// When the failure streak reaches DescendAfter and a weaker level
// exists, the controller steps down and reports (newLevel, true);
// otherwise it reports (currentLevel, false).
func (c *Controller) OnFailure() (int, bool) {
	c.okStreak = 0
	c.failStreak++
	if c.failStreak < c.cfg.DescendAfter || c.level >= c.cfg.Levels-1 {
		return c.level, false
	}
	from := c.level
	c.level++
	c.failStreak = 0
	if c.level > c.floor {
		c.floor = c.level
	}
	c.record(Transition{From: from, To: c.level, Reason: "descend"})
	return c.level, true
}

// record appends one transition and notifies the watcher.
func (c *Controller) record(t Transition) {
	c.transitions = append(c.transitions, t)
	if c.cfg.Watcher != nil {
		c.cfg.Watcher(t)
	}
}

// Probe attempts to ascend: available must report whether the client
// can currently assemble the quorums of the given (stronger) level.
// The controller examines up to Hedge levels above the current one,
// strongest first, and climbs to the first available — possibly
// leapfrogging intermediate rungs. It returns (newLevel, true) on an
// ascent and (currentLevel, false) otherwise. The success streak is
// consumed either way, so a failed probe waits for another full
// AscendAfter streak (or the next timed probe).
func (c *Controller) Probe(available func(level int) bool) (int, bool) {
	c.okStreak = 0
	if c.level == 0 {
		return c.level, false
	}
	lo := c.level - c.cfg.Hedge
	if lo < 0 {
		lo = 0
	}
	for lvl := lo; lvl < c.level; lvl++ {
		if available(lvl) {
			from := c.level
			c.level = lvl
			c.failStreak = 0
			c.record(Transition{From: from, To: lvl, Reason: "ascend"})
			return lvl, true
		}
	}
	return c.level, false
}
