package resilience

import "testing"

func TestControllerDescendsOnFailureStreak(t *testing.T) {
	c := NewController(ControllerConfig{Levels: 3, DescendAfter: 2, AscendAfter: 3})
	if c.Level() != 0 || c.Degraded() {
		t.Fatalf("fresh controller at level %d", c.Level())
	}
	if _, down := c.OnFailure(); down {
		t.Fatal("descended after one failure with DescendAfter=2")
	}
	lvl, down := c.OnFailure()
	if !down || lvl != 1 || !c.Degraded() {
		t.Fatalf("second failure: level %d, down=%v", lvl, down)
	}
	// The streak resets after a descent.
	if _, down := c.OnFailure(); down {
		t.Fatal("descended after a single post-descent failure")
	}
	if lvl, down := c.OnFailure(); !down || lvl != 2 {
		t.Fatalf("fourth failure: level %d, down=%v", lvl, down)
	}
	// The bottom is sticky.
	for i := 0; i < 5; i++ {
		if _, down := c.OnFailure(); down {
			t.Fatal("descended below the bottom")
		}
	}
	if c.Floor() != 2 || c.Descents() != 2 || c.Ascents() != 0 {
		t.Errorf("floor %d, descents %d, ascents %d", c.Floor(), c.Descents(), c.Ascents())
	}
}

func TestControllerSuccessInterruptsFailureStreak(t *testing.T) {
	c := NewController(ControllerConfig{Levels: 2, DescendAfter: 2})
	c.OnFailure()
	c.OnSuccess()
	if _, down := c.OnFailure(); down {
		t.Fatal("success did not reset the failure streak")
	}
}

func TestControllerProbesUpAfterSuccessStreak(t *testing.T) {
	c := NewController(ControllerConfig{Levels: 3, DescendAfter: 1, AscendAfter: 2, Hedge: 1})
	c.OnFailure() // → 1
	c.OnFailure() // → 2
	if c.Level() != 2 {
		t.Fatalf("level %d after two descents", c.Level())
	}
	if c.OnSuccess() {
		t.Fatal("probe requested after a single success with AscendAfter=2")
	}
	if !c.OnSuccess() {
		t.Fatal("no probe requested after the streak")
	}
	// Probe with the level above unavailable: stay put, streak consumed.
	if lvl, up := c.Probe(func(int) bool { return false }); up || lvl != 2 {
		t.Fatalf("failed probe moved to %d (up=%v)", lvl, up)
	}
	if c.OnSuccess() {
		t.Fatal("streak not consumed by the failed probe")
	}
	c.OnSuccess()
	// Now the level above answers: ascend one rung (Hedge=1).
	if lvl, up := c.Probe(func(l int) bool { return l == 1 }); !up || lvl != 1 {
		t.Fatalf("probe landed at %d (up=%v)", lvl, up)
	}
	if c.Floor() != 2 {
		t.Errorf("floor %d after re-ascent, want 2 (floor is sticky)", c.Floor())
	}
}

func TestControllerHedgedProbeLeapfrogs(t *testing.T) {
	c := NewController(ControllerConfig{Levels: 4, DescendAfter: 1, Hedge: 3})
	c.OnFailure()
	c.OnFailure()
	c.OnFailure() // level 3
	var probed []int
	lvl, up := c.Probe(func(l int) bool {
		probed = append(probed, l)
		return l == 0 // the preferred quorums are back
	})
	if !up || lvl != 0 {
		t.Fatalf("hedged probe landed at %d (up=%v)", lvl, up)
	}
	if len(probed) != 1 || probed[0] != 0 {
		t.Fatalf("probe order %v, want strongest first", probed)
	}
	if c.Ascents() != 1 || len(c.Transitions()) != 4 {
		t.Errorf("ascents %d, transitions %v", c.Ascents(), c.Transitions())
	}
	// At the top, probing is a no-op.
	if _, up := c.Probe(func(int) bool { return true }); up {
		t.Error("probed above the top")
	}
}

func TestControllerTransitionLog(t *testing.T) {
	c := NewController(ControllerConfig{Levels: 2, DescendAfter: 1})
	c.OnFailure()
	c.Probe(func(int) bool { return true })
	want := []Transition{{From: 0, To: 1, Reason: "descend"}, {From: 1, To: 0, Reason: "ascend"}}
	got := c.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// The Watcher hook fires synchronously on every recorded transition —
// and only on transitions, so an observer (like the soak harness's
// claim cross-check) sees exactly the ladder moves, at the moment the
// controller's own state already reflects them.
func TestControllerWatcherSeesEveryTransition(t *testing.T) {
	var seen []Transition
	var levelAtCall []int
	var c *Controller
	c = NewController(ControllerConfig{
		Levels:       3,
		DescendAfter: 2,
		AscendAfter:  2,
		Watcher: func(tr Transition) {
			seen = append(seen, tr)
			levelAtCall = append(levelAtCall, c.Level())
		},
	})
	// One failure short of a streak: no call.
	c.OnFailure()
	if len(seen) != 0 {
		t.Fatalf("watcher fired without a transition: %v", seen)
	}
	c.OnFailure() // descend 0→1
	c.OnFailure()
	c.OnFailure() // descend 1→2
	c.OnSuccess()
	if !c.OnSuccess() {
		t.Fatal("no probe signal after success streak")
	}
	c.Probe(func(int) bool { return true }) // ascend 2→0 (hedge default 1 → to 1)
	want := []Transition{
		{From: 0, To: 1, Reason: "descend"},
		{From: 1, To: 2, Reason: "descend"},
		{From: 2, To: 1, Reason: "ascend"},
	}
	if len(seen) != len(want) {
		t.Fatalf("watcher saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("watcher call %d = %v, want %v", i, seen[i], want[i])
		}
		// Synchronous and post-state: the controller already sits at To.
		if levelAtCall[i] != want[i].To {
			t.Errorf("call %d saw level %d, want %d", i, levelAtCall[i], want[i].To)
		}
	}
	// The watcher stream and the transition log agree.
	got := c.Transitions()
	for i := range got {
		if got[i] != seen[i] {
			t.Errorf("log %d = %v, watcher saw %v", i, got[i], seen[i])
		}
	}
	// A failed probe records (and reports) nothing.
	before := len(seen)
	c.OnSuccess()
	c.OnSuccess()
	c.Probe(func(int) bool { return false })
	if len(seen) != before {
		t.Fatalf("watcher fired on a failed probe: %v", seen[before:])
	}
}

func TestControllerConfigDefaultsAndPanics(t *testing.T) {
	c := NewController(ControllerConfig{Levels: 1})
	cfg := c.Config()
	if cfg.DescendAfter != 2 || cfg.AscendAfter != 6 || cfg.Hedge != 1 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	// A single-level ladder never moves.
	for i := 0; i < 10; i++ {
		if _, down := c.OnFailure(); down {
			t.Fatal("single-level controller descended")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Levels=0 did not panic")
		}
	}()
	NewController(ControllerConfig{})
}
