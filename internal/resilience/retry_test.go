package resilience

import (
	"errors"
	"testing"

	"relaxlattice/internal/sim"
)

var errFlaky = errors.New("flaky")

func TestDoSucceedsAfterRetries(t *testing.T) {
	var engine sim.Engine
	p := Policy{MaxAttempts: 5, BaseBackoff: 1, Multiplier: 2}
	calls := 0
	var got Outcome
	Do(&engine, nil, p, nil, func(n int) error {
		calls++
		if n != calls {
			t.Errorf("attempt number %d on call %d", n, calls)
		}
		if n < 3 {
			return errFlaky
		}
		return nil
	}, func(out Outcome) { got = out })
	engine.Run(100)
	if calls != 3 || got.Attempts != 3 || got.Err != nil || got.Reason != "" {
		t.Fatalf("outcome %+v after %d calls", got, calls)
	}
	// Delays 1 + 2 elapsed between the three attempts.
	if got.Elapsed != 3 {
		t.Errorf("Elapsed = %v, want 3", got.Elapsed)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var engine sim.Engine
	p := Policy{MaxAttempts: 4, BaseBackoff: 0.5}
	var got Outcome
	Do(&engine, nil, p, nil, func(int) error { return errFlaky }, func(out Outcome) { got = out })
	engine.Run(100)
	if got.Attempts != 4 || !errors.Is(got.Err, errFlaky) || got.Reason != ReasonAttempts {
		t.Fatalf("outcome %+v", got)
	}
}

func TestDoRespectsBudget(t *testing.T) {
	var engine sim.Engine
	// Backoffs 4, 8, 16, ...: the second retry (at t=12) overruns the
	// budget of 10, so exactly two attempts run.
	p := Policy{MaxAttempts: 10, Budget: 10, BaseBackoff: 4, Multiplier: 2}
	var got Outcome
	Do(&engine, nil, p, nil, func(int) error { return errFlaky }, func(out Outcome) { got = out })
	engine.Run(1000)
	if got.Attempts != 2 || got.Reason != ReasonBudget {
		t.Fatalf("outcome %+v", got)
	}
	if got.Elapsed != 4 {
		t.Errorf("Elapsed = %v, want 4", got.Elapsed)
	}
}

func TestDoNonRetryable(t *testing.T) {
	var engine sim.Engine
	fatal := errors.New("fatal")
	p := Policy{MaxAttempts: 5, BaseBackoff: 1}
	calls := 0
	var got Outcome
	Do(&engine, nil, p, func(err error) bool { return !errors.Is(err, fatal) },
		func(int) error { calls++; return fatal },
		func(out Outcome) { got = out })
	engine.Run(100)
	if calls != 1 || got.Reason != ReasonNonRetryable || !errors.Is(got.Err, fatal) {
		t.Fatalf("outcome %+v after %d calls", got, calls)
	}
}

func TestDoNilDone(t *testing.T) {
	var engine sim.Engine
	Do(&engine, nil, Policy{}, nil, func(int) error { return nil }, nil)
	engine.Run(1)
}

// Simulation time advances between attempts, so state that heals with
// time (a restored site, a healed partition) is visible to retries —
// the property the adaptive cluster clients rely on.
func TestDoSeesTimePassing(t *testing.T) {
	var engine sim.Engine
	healedAt := 5.0
	engine.At(healedAt, func() {}) // marker; healing is just time passing
	p := Policy{MaxAttempts: 10, BaseBackoff: 2, Multiplier: 1}
	var got Outcome
	Do(&engine, nil, p, nil, func(int) error {
		if engine.Now() >= healedAt {
			return nil
		}
		return errFlaky
	}, func(out Outcome) { got = out })
	engine.Run(100)
	if got.Err != nil || got.Attempts != 4 {
		t.Fatalf("outcome %+v (attempts at t=0,2,4,6; healed at t=5)", got)
	}
}
