package conc

import "sync"

// RunWorkload drives q with `workers` goroutines, each alternating
// enqueues and dequeues for opsPerWorker operations. Enqueued elements
// are globally unique (worker g enqueues g·opsPerWorker + i), which
// keeps certification frontiers small: every Deq matches exactly one
// journal position. Dequeues that observe nothing ready return without
// recording, so the journal holds only specification operations.
//
// A HandledQueue is driven through per-worker handles — the fast path
// the structure is built around, and the one certification should
// exercise; other structures go through the plain methods. The
// function returns after all workers quiesce — the point at which the
// journal's History is complete (elements still sitting in dequeuer
// buffers were never served, so they are correctly absent from it).
func RunWorkload(q RelaxedQueue, workers, opsPerWorker int) {
	hq, handled := q.(HandledQueue)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		var enq Enqueuer = q
		var deq Dequeuer = plainDequeuer{q}
		if handled {
			enq = hq.NewEnqueuer()
			deq = hq.NewDequeuer()
		}
		go func(g int, enq Enqueuer, deq Dequeuer) {
			defer wg.Done()
			base := g * opsPerWorker
			for i := 0; i < opsPerWorker; i++ {
				if i%2 == 0 {
					enq.Enq(base + i)
				} else {
					deq.Deq()
				}
			}
		}(g, enq, deq)
	}
	wg.Wait()
}

// plainDequeuer adapts a RelaxedQueue's Deq to the Dequeuer shape.
type plainDequeuer struct{ q RelaxedQueue }

func (p plainDequeuer) Deq() (int, bool) { return p.q.Deq() }
