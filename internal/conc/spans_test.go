package conc

import (
	"bytes"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs/trace"
)

func TestEmitSpansLinksDeqToEnq(t *testing.T) {
	h := history.History{
		history.Enq(1),
		history.Enq(2),
		history.DeqOk(2), // out of order: semiqueue-style
		history.DeqOk(1),
	}
	tr := trace.NewTracer("conc", nil)
	EmitSpans(tr, h)
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("emitted %d spans, want 4", len(spans))
	}
	byTicket := map[int64]trace.Span{}
	for _, sp := range spans {
		byTicket[sp.Start] = sp
		if sp.End != sp.Start+1 {
			t.Fatalf("span %v does not occupy its ticket interval", sp)
		}
	}
	if got := byTicket[2].Links; len(got) != 1 || got[0] != byTicket[1].ID {
		t.Fatalf("Deq(2) links = %v, want [%v]", got, byTicket[1].ID)
	}
	if got := byTicket[3].Links; len(got) != 1 || got[0] != byTicket[0].ID {
		t.Fatalf("Deq(1) links = %v, want [%v]", got, byTicket[0].ID)
	}

	// Deterministic across re-emission.
	tr2 := trace.NewTracer("conc", nil)
	EmitSpans(tr2, h)
	var b1, b2 bytes.Buffer
	if err := tr.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("re-emission differs")
	}
}
