package conc

import (
	"sync"

	"relaxlattice/internal/history"
)

// StrictPQ is the mutex-guarded strict priority queue: the baseline
// the sharded PQ is benchmarked against. One lock, one heap, tickets
// taken under the lock — it claims the top of the Section 3.3 lattice
// exactly.
type StrictPQ struct {
	mu sync.Mutex
	// heap is a binary max-heap; guarded by mu.
	heap []int
	j    *Journal
}

// NewStrictPQ returns an empty strict priority queue recording into j
// (nil for unrecorded runs).
func NewStrictPQ(j *Journal) *StrictPQ {
	return &StrictPQ{heap: make([]int, 0, 1024), j: j}
}

// Name implements RelaxedQueue.
func (q *StrictPQ) Name() string { return "strictpq" }

// Claim implements RelaxedQueue: the {Q₁,Q₂} rung — the priority queue.
func (q *StrictPQ) Claim() Claim {
	return Claim{
		Lattice: PQLattice,
		Levels:  PQLevels,
		Level:   LevelPQ,
	}
}

// Enq implements RelaxedQueue.
func (q *StrictPQ) Enq(e int) {
	q.mu.Lock()
	q.heap = heapPush(q.heap, e)
	if q.j != nil {
		q.j.Record(q.j.Tick(), history.Enq(e))
	}
	q.mu.Unlock()
}

// Deq implements RelaxedQueue: removes the best element.
func (q *StrictPQ) Deq() (int, bool) {
	q.mu.Lock()
	v, ok := popMax(&q.heap)
	if ok && q.j != nil {
		q.j.Record(q.j.Tick(), history.DeqOk(v))
	}
	q.mu.Unlock()
	return v, ok
}
