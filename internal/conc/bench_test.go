package conc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// benchCases are the structures the throughput sweep compares: each
// relaxed structure next to the mutex-guarded strict baseline it is
// claimed against. Journals are nil — the sweep measures the
// structures, and certification runs measure the recorder separately
// (BenchmarkConcRecorded). Lane-structured queues get w+1 lanes so
// every worker owns a fast-path lane.
func benchCases() []struct {
	name string
	mk   func(w int) RelaxedQueue
} {
	return []struct {
		name string
		mk   func(w int) RelaxedQueue
	}{
		{"strict", func(w int) RelaxedQueue { return NewStrict(nil) }},
		{"seg-k16", func(w int) RelaxedQueue { return NewSegQueue(16, w+1, nil) }},
		{"seg-k64", func(w int) RelaxedQueue { return NewSegQueue(64, w+1, nil) }},
		{"dup", func(w int) RelaxedQueue { return NewDupQueue(nil) }},
		{"strictpq", func(w int) RelaxedQueue { return NewStrictPQ(nil) }},
		{"shardpq-s8-d2", func(w int) RelaxedQueue { return NewShardPQ(8, 2, 1, nil) }},
		{"lanepq-b8", func(w int) RelaxedQueue { return NewLanePQ(w+1, 8, nil) }},
	}
}

// benchWorkers is the goroutine sweep: the scalability curve's x axis.
var benchWorkers = []int{1, 2, 4, 8}

// benchBurst is each worker's opening enqueue run: it builds a small
// standing backlog so dequeue batching operates at its design point
// rather than chasing an always-near-empty structure. It stays below
// the smallest lane capacity so a lone producer never waits.
const benchBurst = 64

// runThroughput drives w goroutines through b.N operations — an
// opening enqueue burst, then alternating Enq/Deq pairs — and reports
// aggregate ops/sec. HandledQueues run through per-worker handles (the
// fast path the structures are built around); the strict baselines go
// through their plain methods. GOMAXPROCS is raised to w for the
// duration so the contention being measured is real parallel
// contention, not an artifact of a single-P run queue.
func runThroughput(b *testing.B, q RelaxedQueue, w int) {
	prev := runtime.GOMAXPROCS(w)
	defer runtime.GOMAXPROCS(prev)
	hq, handled := q.(HandledQueue)
	per := b.N/w + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		var enq Enqueuer = q
		var deq Dequeuer = plainDequeuer{q}
		if handled {
			enq = hq.NewEnqueuer()
			deq = hq.NewDequeuer()
		}
		go func(g int, enq Enqueuer, deq Dequeuer) {
			defer wg.Done()
			base := g * per
			for i := 0; i < per; i++ {
				if i < benchBurst || i&1 == 0 {
					enq.Enq(base + i)
				} else {
					deq.Deq()
				}
			}
		}(g, enq, deq)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(per*w)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkConc is the scalability sweep benchjson turns into curves:
// names are BenchmarkConc/q=<structure>/w=<goroutines>, and the
// ops/sec metric is the aggregate throughput across all w goroutines.
func BenchmarkConc(b *testing.B) {
	for _, w := range benchWorkers {
		for _, c := range benchCases() {
			b.Run(fmt.Sprintf("q=%s/w=%d", c.name, w), func(b *testing.B) {
				runThroughput(b, c.mk(w), w)
			})
		}
	}
}

// pqDeepPrefill is the standing backlog of the deep-regime priority
// benchmark: the overload condition the paper's degradation story
// targets, where a strict heap's per-operation sift depth (and cache
// footprint) grows with the backlog while the lane PQ's claim cost
// does not.
const pqDeepPrefill = 1 << 18

// BenchmarkConcPQDeep compares the priority structures under a deep
// standing backlog. The lane PQ is prefilled through dedicated
// handles (its producer lanes are single-writer), so it gets w extra
// lanes to hold the backlog.
func BenchmarkConcPQDeep(b *testing.B) {
	w := benchWorkers[len(benchWorkers)-1]
	cases := []struct {
		name string
		mk   func() RelaxedQueue
	}{
		{"strictpq", func() RelaxedQueue {
			q := NewStrictPQ(nil)
			for i := 0; i < pqDeepPrefill; i++ {
				q.Enq(int(splitmix64(uint64(i))) & 1023)
			}
			return q
		}},
		{"shardpq-s8-d2", func() RelaxedQueue {
			q := NewShardPQ(8, 2, 1, nil)
			for i := 0; i < pqDeepPrefill; i++ {
				q.Enq(int(splitmix64(uint64(i))) & 1023)
			}
			return q
		}},
		{"lanepq-b8", func() RelaxedQueue {
			q := NewLanePQ(2*w+1, 8, nil)
			for g := 0; g < w; g++ {
				e := q.NewEnqueuer()
				for i := 0; i < pqDeepPrefill/w; i++ {
					e.Enq(int(splitmix64(uint64(g*pqDeepPrefill+i))) & 1023)
				}
			}
			return q
		}},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("q=%s/w=%d", c.name, w), func(b *testing.B) {
			runThroughput(b, c.mk(), w)
		})
	}
}

// BenchmarkConcRecorded measures the recorder tax: the k=64 segment
// queue with every operation journaled, against its unrecorded numbers
// in BenchmarkConc. The journal is sized to the run so nothing drops.
func BenchmarkConcRecorded(b *testing.B) {
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("q=seg-k64/w=%d", w), func(b *testing.B) {
			j := NewJournal(b.N + benchWorkers[len(benchWorkers)-1] + 1)
			runThroughput(b, NewSegQueue(64, w+1, j), w)
		})
	}
}

// BenchmarkConcCertify measures the certification side: feeding a
// recorded history through the online checker at the honest rung.
func BenchmarkConcCertify(b *testing.B) {
	const ops = 2000
	j := NewJournal(ops)
	q := NewSegQueue(64, 5, j)
	RunWorkload(q, 4, ops/4)
	h := j.History()
	claim := q.Claim()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck := Certify(claim, h, 4)
		if v := ck.Violation(); v != nil {
			b.Fatalf("violation during bench: %v", v)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(h)*b.N)/b.Elapsed().Seconds(), "ops/sec")
}
