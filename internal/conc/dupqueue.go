package conc

import (
	"sync/atomic"

	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
)

// dupSegSize is the slot count of a DupQueue segment.
const dupSegSize = 64

type dupSeg struct {
	idx   uint64
	slots [dupSegSize]dupSlot
	next  atomic.Pointer[dupSeg]
}

type dupSlot struct {
	ready atomic.Uint32
	val   int
}

// DupQueue is the lock-free semiqueue of the "duplicated, never lost"
// kind: dequeues read the front element and then advance the front
// with a single CAS, returning the element whether or not the CAS won.
// A lost race hands the same element to two callers — a stutter — but
// the front index only ever advances past an element that was
// returned, so nothing is lost. It keeps constraint R (only the
// current front is ever read) and trades X, landing on the stuttering
// rung of Section 4.2.2.
//
// Each dequeuing goroutine returns a given element at most once: its
// CAS either advances the front past the element or fails because
// another dequeuer already advanced it, so the goroutine's next read
// sees a later front. With w dequeuers that bounds the held-element
// window at 1+w, which is exactly the MultiSemiqueue(1+w) claim —
// serve within the window, or re-serve something already served.
type DupQueue struct {
	enq  atomic.Uint64
	deq  atomic.Uint64
	head atomic.Pointer[dupSeg]
	tail atomic.Pointer[dupSeg]
	j    *Journal
}

// NewDupQueue returns an empty duplicating queue recording into j (nil
// for unrecorded runs).
func NewDupQueue(j *Journal) *DupQueue {
	s := &dupSeg{}
	q := &DupQueue{j: j}
	q.head.Store(s)
	q.tail.Store(s)
	return q
}

// Name implements RelaxedQueue.
func (q *DupQueue) Name() string { return "dup" }

// Claim implements RelaxedQueue: the {R} rung — MultiSemiqueue(1+w).
func (q *DupQueue) Claim() Claim {
	return Claim{
		Lattice: func(w int) *lattice.Relaxation { return QueueLattice(1, w) },
		Levels:  QueueLevels,
		Level:   LevelOrdered,
	}
}

// findSeg mirrors SegQueue.findSeg for the fixed-size segments.
func (q *DupQueue) findSeg(idx uint64) *dupSeg {
	s := q.tail.Load()
	if s.idx > idx {
		s = q.head.Load()
	}
	for s.idx < idx {
		next := s.next.Load()
		if next == nil {
			n := &dupSeg{idx: s.idx + 1}
			if s.next.CompareAndSwap(nil, n) {
				next = n
			} else {
				next = s.next.Load()
			}
		}
		s = next
	}
	if t := q.tail.Load(); t.idx < s.idx {
		q.tail.CompareAndSwap(t, s)
	}
	return s
}

// Enq implements RelaxedQueue.
func (q *DupQueue) Enq(e int) {
	i := q.enq.Add(1) - 1
	s := q.findSeg(i / dupSegSize)
	sl := &s.slots[i%dupSegSize]
	sl.val = e
	if q.j != nil {
		t := q.j.Tick()
		sl.ready.Store(1)
		q.j.Record(t, history.Enq(e))
		return
	}
	sl.ready.Store(1)
}

// Deq implements RelaxedQueue: read the front, then race to advance
// it. The element is returned regardless of the race's outcome.
func (q *DupQueue) Deq() (int, bool) {
	hs := q.head.Load()
	h := q.deq.Load()
	if h >= q.enq.Load() {
		return 0, false
	}
	// The head segment's index never exceeds the front's segment (head
	// is only ever swung to a segment the front had reached), so the
	// walk is forward; a nil hop means the front's enqueue is still
	// creating its segment.
	s := hs
	for s.idx < h/dupSegSize {
		next := s.next.Load()
		if next == nil {
			return 0, false
		}
		s = next
	}
	if s != hs {
		// Swing head to the front's segment: later dequeues start
		// their walk here and the crossed segments become collectable.
		// deq only grows, so s still trails the front.
		q.head.CompareAndSwap(hs, s)
	}
	sl := &s.slots[h%dupSegSize]
	if sl.ready.Load() == 0 {
		return 0, false
	}
	v := sl.val
	if q.j != nil {
		q.j.Record(q.j.Tick(), history.DeqOk(v))
	}
	q.deq.CompareAndSwap(h, h+1)
	return v, true
}
