package conc

import (
	"strconv"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
)

// EmitSpans converts a linearized history — a Journal's published
// prefix — into a causal span stream on tr: one root span per
// operation occupying its ticket interval [i, i+1) on the ticket time
// axis, with a happens-before link from each successful dequeue to the
// enqueue of the element it returned (ticket order guarantees the
// enqueue ticked first, so the link always resolves backward). The
// conversion is pure and deterministic: the same history yields the
// same stream bytes on any tracer with the same track.
func EmitSpans(tr *trace.Tracer, h history.History) {
	if tr == nil {
		return
	}
	// Pending enqueue spans per element, consumed FIFO: relaxed queues
	// may admit duplicate elements in flight, and matching the oldest
	// unconsumed enqueue mirrors the certifier's replay order.
	pending := map[int][]trace.SpanID{}
	for i, op := range h {
		start := int64(i)
		attrs := []obs.KV{{K: "ticket", V: strconv.Itoa(i)}}
		var links []trace.SpanID
		var elem int
		haveElem := false
		switch {
		case op.Name == history.NameEnq && len(op.Args) > 0:
			elem, haveElem = op.Args[0], true
		case op.Name == history.NameDeq && len(op.Res) > 0:
			elem = op.Res[0]
			if q := pending[elem]; len(q) > 0 {
				links = []trace.SpanID{q[0]}
				pending[elem] = q[1:]
			}
			haveElem = true
		}
		if haveElem {
			attrs = append(attrs, obs.KV{K: "item", V: strconv.Itoa(elem)})
		}
		id := tr.Emit("conc."+op.Name, start, start+1, links, attrs...)
		if op.Name == history.NameEnq && haveElem {
			pending[elem] = append(pending[elem], id)
		}
	}
}
