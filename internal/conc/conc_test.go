package conc

import (
	"sort"
	"testing"

	"relaxlattice/internal/history"
)

// structures under test, with a fresh journal each.
func testStructures(j func() *Journal) []RelaxedQueue {
	return []RelaxedQueue{
		NewStrict(j()),
		NewSegQueue(4, 5, j()),
		NewSegQueue(64, 5, j()),
		NewDupQueue(j()),
		NewShardPQ(8, 2, 1, j()),
		NewLanePQ(5, 8, j()),
		NewStrictPQ(j()),
	}
}

// Single-threaded, every structure is a sane queue: everything
// enqueued comes back exactly once (no concurrency, so even the
// duplicating queue cannot stutter).
func TestSingleThreadedDrain(t *testing.T) {
	for _, q := range testStructures(func() *Journal { return NewJournal(4096) }) {
		const n = 100
		for i := 1; i <= n; i++ {
			q.Enq(i)
		}
		var got []int
		for {
			v, ok := q.Deq()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != n {
			t.Fatalf("%s: drained %d elements, want %d", q.Name(), len(got), n)
		}
		sort.Ints(got)
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("%s: drained set has %d at position %d, want %d", q.Name(), v, i, i+1)
			}
		}
		if v, ok := q.Deq(); ok {
			t.Fatalf("%s: Deq on empty returned %d", q.Name(), v)
		}
	}
}

// Strict structures preserve exact order single-threaded.
func TestStrictOrders(t *testing.T) {
	q := NewStrict(nil)
	for i := 1; i <= 10; i++ {
		q.Enq(i)
	}
	for i := 1; i <= 10; i++ {
		if v, _ := q.Deq(); v != i {
			t.Fatalf("strict: Deq = %d, want %d", v, i)
		}
	}
	pq := NewStrictPQ(nil)
	for _, e := range []int{3, 1, 4, 1, 5, 9, 2, 6} {
		pq.Enq(e)
	}
	want := []int{9, 6, 5, 4, 3, 2, 1, 1}
	for _, w := range want {
		if v, _ := pq.Deq(); v != w {
			t.Fatalf("strictpq: Deq = %d, want %d", v, w)
		}
	}
}

// The strict ring survives growth with wrapped contents.
func TestStrictGrow(t *testing.T) {
	q := NewStrict(nil)
	// Wrap the head, then force growth past the initial capacity.
	for i := 0; i < 600; i++ {
		q.Enq(i)
		q.Deq()
	}
	const n = 3000
	for i := 0; i < n; i++ {
		q.Enq(i)
	}
	for i := 0; i < n; i++ {
		if v, ok := q.Deq(); !ok || v != i {
			t.Fatalf("after grow: Deq #%d = %d,%v, want %d,true", i, v, ok, i)
		}
	}
}

// segWitnessSchedule drives the deterministic two-lane schedule whose
// recorded history refutes strict FIFO: element 1 arrives first on the
// plain lane, element 2 on a handle lane, and a dequeuer whose cursor
// starts on the handle lane serves 2 before 1. Dequeuer cursors start
// on lane (creation index mod lanes), so the second dequeuer handle is
// the one pinned to lane 1.
func segWitnessSchedule(q *SegQueue) (first, second int) {
	e := q.NewEnqueuer() // lane 1
	q.Enq(1)             // lane 0, arrival order first
	e.Enq(2)             // lane 1, arrival order second
	q.NewDequeuer()      // cursor 0, unused
	d := q.NewDequeuer() // cursor 1
	a, _ := d.Deq()
	b, _ := d.Deq()
	return a, b
}

// The k-segment queue genuinely reorders: a dequeuer whose rotation
// reaches another producer's lane first serves that lane's younger
// element ahead of an older one. This is the concrete witness behind
// the pinned FIFO refutation in certify_test.go.
func TestSegQueueReorderWitness(t *testing.T) {
	q := NewSegQueue(2, 2, nil)
	if first, second := segWitnessSchedule(q); first != 2 || second != 1 {
		t.Fatalf("witness schedule served %d then %d, want the out-of-order 2 then 1", first, second)
	}
}

// Handle enqueuers beyond the lane count and any number of dequeuers
// still behave like a queue: nothing is lost or duplicated.
func TestSegQueueHandleOverflow(t *testing.T) {
	q := NewSegQueue(4, 2, nil)
	var hs []Enqueuer
	for i := 0; i < 4; i++ {
		hs = append(hs, q.NewEnqueuer()) // two real lanes, two plain-path fallbacks
	}
	for i, h := range hs {
		for n := 0; n < 30; n++ {
			h.Enq(i*100 + n)
		}
	}
	d := q.NewDequeuer()
	seen := map[int]bool{}
	for {
		v, ok := d.Deq()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("element %d served twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 120 {
		t.Fatalf("drained %d elements, want 120", len(seen))
	}
}

// The lane PQ's plain path is a sane priority queue single-threaded on
// one shard, and its handles drain everything exactly once.
func TestLanePQServesBestOfBuffer(t *testing.T) {
	q := NewLanePQ(1, 8, nil)
	for _, e := range []int{3, 1, 4, 1, 5, 9, 2, 6} {
		q.Enq(e)
	}
	// One shard and a batch bound ≥ the backlog: the buffer holds
	// everything, so serves are exactly best-first.
	want := []int{9, 6, 5, 4, 3, 2, 1, 1}
	for _, w := range want {
		if v, ok := q.Deq(); !ok || v != w {
			t.Fatalf("lanepq: Deq = %d,%v, want %d,true", v, ok, w)
		}
	}
	if _, ok := q.Deq(); ok {
		t.Fatal("lanepq: Deq on empty reported ok")
	}
}

// The journal records ticket order and drops past capacity.
func TestJournalWindowAndDrop(t *testing.T) {
	j := NewJournal(3)
	for i := 1; i <= 5; i++ {
		j.Record(j.Tick(), history.Enq(i))
	}
	h := j.History()
	if len(h) != 3 {
		t.Fatalf("History len = %d, want the 3-op window", len(h))
	}
	for i, op := range h {
		if want := history.Enq(i + 1); !op.Equal(want) {
			t.Fatalf("History[%d] = %v, want %v", i, op, want)
		}
	}
	if d := j.Dropped(); d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}
}

// History truncates at an unpublished ticket instead of skipping it.
func TestJournalTruncatesAtGap(t *testing.T) {
	j := NewJournal(8)
	t0 := j.Tick()
	t1 := j.Tick()
	j.Record(t1, history.Enq(2)) // t0 still unpublished
	if h := j.History(); len(h) != 0 {
		t.Fatalf("History with unpublished first ticket = %v, want empty", h)
	}
	j.Record(t0, history.Enq(1))
	if h := j.History(); len(h) != 2 {
		t.Fatalf("History after publishing = %d ops, want 2", len(h))
	}
}

// The queue lattice is monotone: dropping a constraint only enlarges
// the language. Checked by bounded language comparison at the worst
// parameters the certification tests use.
func TestQueueLatticeMonotone(t *testing.T) {
	alphabet := []history.Op{
		history.Enq(1), history.Enq(2),
		history.DeqOk(1), history.DeqOk(2),
	}
	for _, kw := range [][2]int{{1, 1}, {2, 2}, {4, 2}} {
		lat := QueueLattice(kw[0], kw[1])
		if vs := lat.VerifyMonotone(alphabet, 5); len(vs) != 0 {
			t.Fatalf("QueueLattice(%d,%d) not monotone: %v", kw[0], kw[1], vs)
		}
	}
}
