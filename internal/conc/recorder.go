package conc

import (
	"sync/atomic"

	"relaxlattice/internal/history"
)

// Journal is the linearization-point recorder: a bounded, write-once
// journal that turns a concurrent run into a totally ordered
// history.Op stream. A structure takes a ticket (Tick) at its
// operation's linearization point and publishes the operation under
// that ticket (Record); tickets index slots directly, so publication
// is a single release store with no possibility of two writers
// touching one slot. The journal keeps the first-capacity window of an
// execution; operations ticketed past the capacity are counted in
// Dropped rather than wrapping, because overwriting would leave a
// suffix that no automaton can replay from its initial state.
//
// Soundness of the recorded order: every ticket is taken strictly
// inside its operation's execution interval, so ticket order is a
// legitimate linearization of the run — each operation appears at a
// single point between its invocation and response. The structures
// maintain the one ordering fact certification relies on,
// ticket(Enq(e)) < ticket(Deq(e)): an enqueue ticks before it
// publishes its element and a dequeue ticks only after observing a
// published element. What ticket order does not preserve is each
// structure's internal slot order — a dequeuer that has read its
// element but not yet ticked lets later dequeues tick first. Each
// in-flight dequeuer contributes at most one such held element, so a
// structure whose in-structure reordering window is k lands within a
// k+W window in ticket order for W concurrent dequeuers. The claimed
// lattice elements absorb exactly that bound (see lattice.go); the
// truncated first-capacity window is ticket-prefix-closed (a dequeue's
// ticket always exceeds its enqueue's), so certifying it certifies a
// genuine prefix of the linearized run.
type Journal struct {
	ticket  atomic.Uint64
	dropped atomic.Uint64
	slots   []journalSlot
}

type journalSlot struct {
	// seq is 0 while unpublished and t+1 once op holds ticket t's
	// operation; the store orders after the op write (release).
	seq atomic.Uint64
	op  history.Op
}

// NewJournal returns a recorder keeping the first `capacity` ticketed
// operations.
func NewJournal(capacity int) *Journal {
	return &Journal{slots: make([]journalSlot, capacity)}
}

// Tick claims the next linearization ticket. Call it at the operation's
// linearization point; publish with Record.
func (j *Journal) Tick() uint64 { return j.ticket.Add(1) - 1 }

// Record publishes op as ticket t's operation. Tickets at or past the
// journal's capacity are dropped (and counted); each in-window ticket
// must be recorded exactly once.
func (j *Journal) Record(t uint64, op history.Op) {
	if t >= uint64(len(j.slots)) {
		j.dropped.Add(1)
		return
	}
	s := &j.slots[t]
	s.op = op
	s.seq.Store(t + 1)
}

// History returns the longest contiguous published prefix in ticket
// order. Call it after the run quiesces (all operations returned); an
// in-flight writer truncates the prefix at its unpublished slot rather
// than leaving a gap that would silently reorder the stream.
func (j *Journal) History() history.History {
	n := j.ticket.Load()
	if c := uint64(len(j.slots)); n > c {
		n = c
	}
	h := make(history.History, 0, n)
	for t := uint64(0); t < n; t++ {
		s := &j.slots[t]
		if s.seq.Load() != t+1 {
			break
		}
		h = append(h, s.op)
	}
	return h
}

// Dropped reports how many operations were ticketed past the journal's
// capacity and therefore not recorded.
func (j *Journal) Dropped() uint64 { return j.dropped.Load() }
