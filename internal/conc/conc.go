// Package conc implements raw-speed concurrent relaxed queues whose
// observed histories land on the paper's relaxation lattices. Each
// structure trades a constraint of the strict specification for
// scalability — exactly the degraded behaviors of Section 4 (semiqueue,
// stuttering queue, out-of-order priority queue), built on purpose as
// the scalability literature does — and declares the lattice element it
// claims. The linearization-point recorder (recorder.go) turns a
// concurrent run into a history.Op stream that relaxcheck certifies
// against the claim, so the lattice doubles as a conformance suite for
// fast concurrent objects.
package conc

import (
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/relaxcheck"
)

// RelaxedQueue is the common face of the concurrent structures: a
// queue-like object with totally ordered int elements. Deq reports
// ok=false when the structure observes nothing ready to dequeue; such
// misses are not operations of the specification and are never
// recorded. All methods are safe for concurrent use.
type RelaxedQueue interface {
	// Name identifies the structure in benchmarks and reports.
	Name() string
	// Enq inserts an element.
	Enq(e int)
	// Deq removes an element per the structure's relaxation.
	Deq() (int, bool)
	// Claim declares the lattice element the structure's recorded
	// histories are certified against.
	Claim() Claim
}

// Enqueuer is a producer handle: a single-goroutine fast path into a
// lane-structured queue. Handles are not safe for concurrent use with
// themselves; distinct handles are safe with each other and with the
// plain RelaxedQueue methods.
type Enqueuer interface {
	Enq(e int)
}

// Dequeuer is a consumer handle: a single-goroutine cursor with a
// private serve buffer. Elements claimed into a buffer but not yet
// served are invisible to other dequeuers; they are served by the
// handle's later Deq calls.
type Dequeuer interface {
	Deq() (int, bool)
}

// HandledQueue is implemented by structures whose fast path runs
// through per-goroutine handles. RunWorkload and the benchmarks drive
// these through handles; the plain RelaxedQueue methods remain the
// serialized slow path for handle-free callers.
type HandledQueue interface {
	RelaxedQueue
	NewEnqueuer() Enqueuer
	NewDequeuer() Dequeuer
}

// Claim locates a structure on a relaxation lattice. The lattice is
// parameterized by the number of dequeuing goroutines because the
// recorder's ticket order admits one in-flight inversion per dequeuer
// (see the soundness discussion on Journal); the claimed automaton
// absorbs that bounded skew.
type Claim struct {
	// Lattice builds the relaxation lattice for executions observed by
	// at most `dequeuers` concurrent dequeuing goroutines.
	Lattice func(dequeuers int) *lattice.Relaxation
	// Levels maps rung names to the constraint sets they claim — the
	// relaxcheck.Options.Claims table for this lattice.
	Levels func(lat *lattice.Relaxation) map[string]lattice.Set
	// Level is the rung the structure claims for its own histories.
	Level string
}

// Certify replays a recorded history against a claim: it builds the
// claim's lattice for the given dequeuer count, registers the claimed
// rung, and feeds the history to a fresh online checker. The returned
// checker's Violation() is nil iff every prefix of the history is
// accepted at the claimed lattice element.
func Certify(c Claim, h history.History, dequeuers int) *relaxcheck.Checker {
	lat := c.Lattice(dequeuers)
	ck := relaxcheck.New(lat, relaxcheck.Options{Claims: c.Levels(lat)})
	ck.ObserveClaim(0, c.Level)
	for _, op := range h {
		ck.ObserveOp(op)
	}
	return ck
}

// splitmix64 is the SplitMix64 mixer: a cheap stateless hash used to
// seed per-handle sampling state from creation indexes, so concurrent
// dequeuers spread over shards without sharing RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
