package conc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"relaxlattice/internal/history"
)

// maxChoices bounds the d-choice sample size (keeps the candidate
// buffer on the stack).
const maxChoices = 16

type pqShard struct {
	mu sync.Mutex
	// heap is a binary max-heap; guarded by mu.
	heap []int
	// rng draws the d-choice shard sample; seeded per shard at
	// construction so single-threaded runs are deterministic.
	// Guarded by mu.
	rng *rand.Rand
}

// ShardPQ is the d-choice sharded relaxed priority queue: elements
// spread round-robin over per-shard max-heaps, and Deq pops the best
// of d sampled shards — the MultiQueue design the scalability
// literature uses to relax strict priority order. Each element is
// removed exactly once under its shard's lock (tickets are taken
// inside the lock), so the structure keeps constraint Q₂ of the
// paper's Section 3.3 universe and trades Q₁: it lands exactly on the
// OPQueue rung, with no observation-skew slack at any dequeuer count.
//
// Shard locks are never nested: the home shard is unlocked before
// candidates are peeked, and each peek and the final pop take one lock
// at a time, so the lock-acquisition graph stays acyclic.
type ShardPQ struct {
	shards []pqShard
	d      int
	rr     atomic.Uint64
	j      *Journal
}

// NewShardPQ returns an empty sharded priority queue with the given
// shard count and sample size d, recording into j (nil for unrecorded
// runs). Per-shard RNGs are seeded from seed. It panics on a shard
// count < 1 or d outside [1, maxChoices].
func NewShardPQ(shards, d int, seed int64, j *Journal) *ShardPQ {
	if shards < 1 || d < 1 || d > maxChoices {
		panic(fmt.Sprintf("conc: NewShardPQ(shards=%d, d=%d), need shards ≥ 1, 1 ≤ d ≤ %d", shards, d, maxChoices))
	}
	q := &ShardPQ{shards: make([]pqShard, shards), d: d, j: j}
	for i := range q.shards {
		q.shards[i].rng = rand.New(rand.NewSource(seed + int64(i)))
		q.shards[i].heap = make([]int, 0, 64)
	}
	return q
}

// Name implements RelaxedQueue.
func (q *ShardPQ) Name() string { return fmt.Sprintf("shardpq-s%d-d%d", len(q.shards), q.d) }

// Claim implements RelaxedQueue: the {Q₂} rung — OPQueue.
func (q *ShardPQ) Claim() Claim {
	return Claim{
		Lattice: PQLattice,
		Levels:  PQLevels,
		Level:   LevelAnyOrder,
	}
}

// Enq implements RelaxedQueue: round-robin shard placement.
func (q *ShardPQ) Enq(e int) {
	s := &q.shards[q.rr.Add(1)%uint64(len(q.shards))]
	s.mu.Lock()
	s.heap = heapPush(s.heap, e)
	if q.j != nil {
		q.j.Record(q.j.Tick(), history.Enq(e))
	}
	s.mu.Unlock()
}

// Deq implements RelaxedQueue: peek the home shard and d−1 sampled
// candidates, pop the best seen; sweep every shard once before
// reporting empty.
func (q *ShardPQ) Deq() (int, bool) {
	n := len(q.shards)
	home := int(q.rr.Add(1) % uint64(n))
	var cbuf [maxChoices]int
	cand := cbuf[:0]
	hs := &q.shards[home]
	hs.mu.Lock()
	best, bestOK := peekMax(hs.heap)
	bestShard := home
	for i := 1; i < q.d && i < n; i++ {
		cand = append(cand, hs.rng.Intn(n))
	}
	hs.mu.Unlock()
	for _, c := range cand {
		if c == home {
			continue
		}
		cs := &q.shards[c]
		cs.mu.Lock()
		v, ok := peekMax(cs.heap)
		cs.mu.Unlock()
		if ok && (!bestOK || v > best) {
			best, bestOK, bestShard = v, true, c
		}
	}
	if bestOK {
		if v, ok := q.popShard(bestShard); ok {
			return v, true
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := q.popShard((home + i) % n); ok {
			return v, true
		}
	}
	return 0, false
}

// popShard removes one shard's best element; the ticket is taken under
// the shard lock, after the removal, so Enq(e) always ticks before the
// Deq returning e (they serialize on the same lock).
func (q *ShardPQ) popShard(i int) (int, bool) {
	s := &q.shards[i]
	s.mu.Lock()
	v, ok := popMax(&s.heap)
	if ok && q.j != nil {
		q.j.Record(q.j.Tick(), history.DeqOk(v))
	}
	s.mu.Unlock()
	return v, ok
}

// heapPush inserts e into the max-heap.
func heapPush(h []int, e int) []int {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// peekMax reads the max-heap's root.
func peekMax(h []int) (int, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0], true
}

// popMax removes the max-heap's root.
func popMax(h *[]int) (int, bool) {
	s := *h
	if len(s) == 0 {
		return 0, false
	}
	v := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(s) && s[l] > s[m] {
			m = l
		}
		if r < len(s) && s[r] > s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return v, true
}
