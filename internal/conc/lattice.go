package conc

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/core"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/specs"
)

// Lattice-design note: every rung below is deterministic on histories
// of distinct elements (frontier of one automaton state per prefix).
// The online checker steps every viable rung on every operation, so a
// rung whose Deq branches keep-vs-remove (SSqueue, DegenPQueue) makes
// the frontier grow combinatorially on long near-empty runs — such
// specs stay available offline but are deliberately kept out of these
// certification lattices.

// Constraint names of the concurrent-queue relaxation lattice. Each
// names a property a structure's implementation either keeps or trades
// for scalability, mirroring how Section 4's degraded behaviors drop
// one axiom of the FIFO queue at a time.
const (
	// ConstraintX: dequeue claims are exclusive — no element is
	// returned twice. Kept by slot-CAS structures, dropped by the
	// duplicating queue.
	ConstraintX = "X"
	// ConstraintR: dequeues drain in arrival order (no reordering
	// window). Kept by front-only structures, dropped by the k-segment
	// queue.
	ConstraintR = "R"
)

// Rungs of the concurrent-queue lattice (Claims table names).
const (
	LevelFIFO      = "fifo"      // {X,R}: the strict FIFO queue
	LevelExclusive = "exclusive" // {X}: exclusive but k-reordered (semiqueue)
	LevelOrdered   = "ordered"   // {R}: front-ordered but duplicating (stuttering)
	LevelFree      = "free"      // ∅: both relaxations at once
)

// QueueUniverse returns the constraint universe {X, R} of the
// concurrent-queue lattice.
func QueueUniverse() *lattice.Universe {
	return lattice.NewUniverse(
		lattice.Constraint{Name: ConstraintX, Desc: "dequeue claims are exclusive: no element is returned twice"},
		lattice.Constraint{Name: ConstraintR, Desc: "dequeues drain in arrival order: no reordering window"},
	)
}

// QueueLattice returns the relaxation lattice the concurrent queues
// claim into, for a structure with in-structure reordering window k
// observed by at most w concurrent dequeuing goroutines:
//
//	φ({X,R}) = FIFOQueue              (strict: tickets taken under the lock)
//	φ({X})   = Semiqueue(k+w)         (exclusive, reordered within k, plus
//	                                   one held element per in-flight dequeuer)
//	φ({R})   = MultiSemiqueue(1+w)    (front-window service, racing dequeuers
//	                                   may re-serve an already-served element)
//	φ(∅)     = MultiSemiqueue(k+w)
//
// The +w slack in each index is the recorder's in-flight skew bound
// (see Journal): it is a property of observation, not of the
// structures, and vanishes at w = 1. The duplicating rungs use
// MultiSemiqueue rather than SSqueue: they admit the same duplication
// (serve within the window, or re-serve anything served before) but
// stay deterministic on distinct elements, so the online frontier does
// not explode (see the package note above). Monotonicity (dropping a
// constraint only enlarges the language) holds for every k ≥ 1, w ≥ 1
// and is pinned by TestQueueLatticeMonotone.
func QueueLattice(k, w int) *lattice.Relaxation {
	if k < 1 || w < 1 {
		panic(fmt.Sprintf("conc: QueueLattice(k=%d, w=%d), need k ≥ 1, w ≥ 1", k, w))
	}
	u := QueueUniverse()
	return &lattice.Relaxation{
		Name:     fmt.Sprintf("conc-queue-k%d-w%d", k, w),
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			x := s.Has(u.Index(ConstraintX))
			r := s.Has(u.Index(ConstraintR))
			switch {
			case x && r:
				return specs.FIFOQueue(), true
			case x:
				return specs.Semiqueue(k + w), true
			case r:
				return specs.MultiSemiqueue(1 + w), true
			default:
				return specs.MultiSemiqueue(k + w), true
			}
		},
	}
}

// QueueLevels returns the rung→constraint-set table for a
// concurrent-queue lattice (the relaxcheck Claims map).
func QueueLevels(lat *lattice.Relaxation) map[string]lattice.Set {
	u := lat.Universe
	return map[string]lattice.Set{
		LevelFIFO:      u.Named(ConstraintX, ConstraintR),
		LevelExclusive: u.Named(ConstraintX),
		LevelOrdered:   u.Named(ConstraintR),
		LevelFree:      0,
	}
}

// Rungs of the priority-queue lattice, over the paper's Section 3.3
// universe {Q₁, Q₂}.
const (
	LevelPQ         = "pq"          // {Q₁,Q₂}: strict priority queue
	LevelRepeatBest = "repeat-best" // {Q₁}: best served, maybe repeatedly (MPQueue)
	LevelAnyOrder   = "any-order"   // {Q₂}: each served once, any order (OPQueue)
)

// PQLattice returns the priority-queue relaxation lattice the sharded
// PQ claims into: the nonempty sublattice of the paper's Section 3.3
// lattice in its simple-automaton form — φ({Q₁,Q₂}) = PQ, φ({Q₁}) =
// MPQ, φ({Q₂}) = OPQ, with φ undefined on ∅. Restricting φ to a
// sublattice is the paper's own move for the semiqueue (Section 4.2.1,
// nonempty constraint sets only); here it drops the DegenPQueue rung,
// whose nondeterministic remove-or-keep Deq makes online frontiers
// explode (see the package note above) and which no structure in this
// package claims. The sharded PQ removes each element exactly once
// under a shard lock (its tickets are taken inside the lock), so its
// claim — {Q₂}, out-of-order but exactly-once — needs no dequeuer-skew
// slack and the lattice ignores the dequeuer count w.
func PQLattice(w int) *lattice.Relaxation {
	_ = w // the OPQueue rung is order-free; observation skew is absorbed for every w
	u := core.TaxiUniverse()
	return &lattice.Relaxation{
		Name:     "conc-priority-queue",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			q1 := s.Has(u.Index(core.ConstraintQ1))
			q2 := s.Has(u.Index(core.ConstraintQ2))
			switch {
			case q1 && q2:
				return specs.PriorityQueue(), true
			case q1:
				return specs.MultiPriorityQueue(), true
			case q2:
				return specs.OutOfOrderQueue(), true
			default:
				return nil, false
			}
		},
	}
}

// PQLevels returns the rung→constraint-set table for the priority-queue
// lattice.
func PQLevels(lat *lattice.Relaxation) map[string]lattice.Set {
	u := lat.Universe
	return map[string]lattice.Set{
		LevelPQ:         u.Named(core.ConstraintQ1, core.ConstraintQ2),
		LevelRepeatBest: u.Named(core.ConstraintQ1),
		LevelAnyOrder:   u.Named(core.ConstraintQ2),
	}
}
