package conc

import (
	"sync"

	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
)

// Strict is the mutex-guarded strict FIFO queue: the baseline every
// relaxed structure is benchmarked against. Its linearization tickets
// are taken while the lock is held, so the recorded order is exactly
// the structure order — it claims the top of the lattice with no skew
// slack.
type Strict struct {
	mu sync.Mutex
	// ring is a power-of-two circular buffer; guarded by mu.
	ring []int
	head int // guarded by mu
	n    int // guarded by mu
	j    *Journal
}

// NewStrict returns an empty strict queue recording into j (nil for
// unrecorded runs).
func NewStrict(j *Journal) *Strict {
	return &Strict{ring: make([]int, 1024), j: j}
}

// Name implements RelaxedQueue.
func (q *Strict) Name() string { return "strict" }

// Claim implements RelaxedQueue: the {X,R} rung — the FIFO queue.
func (q *Strict) Claim() Claim {
	return Claim{
		Lattice: func(w int) *lattice.Relaxation { return QueueLattice(1, w) },
		Levels:  QueueLevels,
		Level:   LevelFIFO,
	}
}

// Enq implements RelaxedQueue.
func (q *Strict) Enq(e int) {
	q.mu.Lock()
	if q.n == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = e
	q.n++
	if q.j != nil {
		q.j.Record(q.j.Tick(), history.Enq(e))
	}
	q.mu.Unlock()
}

// Deq implements RelaxedQueue: strict FIFO removal.
func (q *Strict) Deq() (int, bool) {
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	v := q.ring[q.head]
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.n--
	if q.j != nil {
		q.j.Record(q.j.Tick(), history.DeqOk(v))
	}
	q.mu.Unlock()
	return v, true
}

// grow doubles the ring.
//
//lint:ignore lock-guard grow is only called from Enq with mu already held
func (q *Strict) grow() {
	grown := make([]int, 2*len(q.ring))
	for i := 0; i < q.n; i++ {
		grown[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
	}
	q.ring, q.head = grown, 0
}
