package conc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"relaxlattice/internal/history"
)

// pqLaneCap is the initial lane ring capacity of the lane PQ: the
// standing backlog a producer may build before its ring grows. It is
// deliberately deep — the degraded regimes the paper targets are
// exactly the ones where requests pool up — so deep-backlog runs never
// pay growth copies.
const pqLaneCap = 1 << 16

// LanePQ is a lock-free relaxed priority queue in the k-LSM style:
// producers publish to single-writer lanes (shards) exactly as the
// k-segment queue does, and each dequeuer claims a run of up to b
// elements from the better-backlogged of two sampled shards, then
// serves its private buffer best-first by linear scan. There is no
// heap and no lock anywhere: priority order is maintained only within
// a dequeuer's private buffer, never globally, which is what removes
// the per-operation sift work that dominates a strict heap.
//
// The relaxation is therefore total order-wise: an element can wait in
// an unsampled shard while arbitrarily many worse elements are served.
// What survives exactly is exclusivity — claims are CAS tickets, so
// each element is served exactly once. That is constraint Q₂ of the
// paper's Section 3.3 universe with Q₁ traded: the OPQueue rung, with
// no dequeuer-skew slack needed at any w (order-free rungs absorb any
// serve order).
type LanePQ struct {
	b     int
	lanes []*lane
	j     *Journal

	enqMu    sync.Mutex
	plainN   uint64
	nextLane atomic.Uint32

	deqMu    sync.Mutex
	plainDeq *LanePQDequeuer
	nextCur  atomic.Uint32
}

// NewLanePQ returns an empty lane PQ with the given shard count and
// per-claim run bound b, recording into j (nil for unrecorded runs).
// Lane 0 backs the plain Enq path; create one Enqueuer per producing
// goroutine (up to shards−1 of them) for the single-writer fast path.
// It panics if shards < 1 or b < 1.
func NewLanePQ(shards, b int, j *Journal) *LanePQ {
	if shards < 1 || b < 1 {
		panic(fmt.Sprintf("conc: NewLanePQ(shards=%d, b=%d), need shards ≥ 1, b ≥ 1", shards, b))
	}
	q := &LanePQ{b: b, j: j, lanes: make([]*lane, shards)}
	for i := range q.lanes {
		q.lanes[i] = newLane(pqLaneCap)
	}
	q.plainDeq = &LanePQDequeuer{q: q}
	return q
}

// Name implements RelaxedQueue.
func (q *LanePQ) Name() string { return fmt.Sprintf("lanepq-s%d-b%d", len(q.lanes), q.b) }

// Claim implements RelaxedQueue: the {Q₂} rung — OPQueue.
func (q *LanePQ) Claim() Claim {
	return Claim{
		Lattice: PQLattice,
		Levels:  PQLevels,
		Level:   LevelAnyOrder,
	}
}

// NewEnqueuer implements HandledQueue; see SegQueue.NewEnqueuer.
func (q *LanePQ) NewEnqueuer() Enqueuer {
	i := int(q.nextLane.Add(1))
	if i >= len(q.lanes) {
		return plainPQEnqueuer{q}
	}
	return &LanePQEnqueuer{q: q, l: q.lanes[i]}
}

// NewDequeuer implements HandledQueue: single-goroutine handles with a
// private serve buffer; any number may be created. The sampling state
// is seeded from the creation index, so single-threaded schedules are
// deterministic.
func (q *LanePQ) NewDequeuer() Dequeuer {
	idx := uint64(q.nextCur.Add(1) - 1)
	return &LanePQDequeuer{q: q, rng: splitmix64(idx) | 1}
}

// LanePQEnqueuer is the single-writer fast path for one shard.
type LanePQEnqueuer struct {
	q *LanePQ
	l *lane
	n uint64
}

// Enq appends to the handle's shard; ticket discipline as in
// SegEnqueuer.
func (h *LanePQEnqueuer) Enq(e int) {
	j := h.q.j
	if j == nil {
		h.n = h.l.push(e, h.n)
		return
	}
	h.l.store(e, h.n)
	t := j.Tick()
	h.l.publish(h.n + 1)
	h.n++
	j.Record(t, history.Enq(e))
}

// LanePQDequeuer serves its claimed buffer best-first.
type LanePQDequeuer struct {
	q   *LanePQ
	rng uint64
	buf []int
}

// refill claims a run from the better-backlogged of two sampled
// shards, falling back to a full rotation when the sample comes up
// empty. As in SegDequeuer.Deq, a contended shard forces another
// rotation so a miss is never mistaken for emptiness.
func (d *LanePQDequeuer) refill() {
	n := uint64(len(d.q.lanes))
	d.rng = d.rng*6364136223846793005 + 1442695040888963407
	r := d.rng >> 33
	a := d.q.lanes[r%n]
	b := d.q.lanes[(r/n)%n]
	l := a
	if b.backlog() > a.backlog() {
		l = b
	}
	if d.buf, _ = l.claimRun(d.buf, uint64(d.q.b)); len(d.buf) > 0 {
		return
	}
	for retry := true; retry; {
		retry = false
		for i := uint64(0); i < n; i++ {
			var contended bool
			if d.buf, contended = d.q.lanes[i].claimRun(d.buf, uint64(d.q.b)); len(d.buf) > 0 {
				return
			}
			retry = retry || contended
		}
	}
}

// Deq serves the best element of the private buffer by linear scan —
// the buffer is at most b elements, so the scan beats any heap's sift
// at the sizes in play. An empty buffer refills first; ok=false means
// every shard came up empty.
func (d *LanePQDequeuer) Deq() (int, bool) {
	if len(d.buf) == 0 {
		d.refill()
		if len(d.buf) == 0 {
			return 0, false
		}
	}
	bi := 0
	for i := 1; i < len(d.buf); i++ {
		if d.buf[i] > d.buf[bi] {
			bi = i
		}
	}
	v := d.buf[bi]
	last := len(d.buf) - 1
	d.buf[bi] = d.buf[last]
	d.buf = d.buf[:last]
	if j := d.q.j; j != nil {
		j.Record(j.Tick(), history.DeqOk(v))
	}
	return v, true
}

// plainPQEnqueuer routes overflow handles to the serialized plain
// path.
type plainPQEnqueuer struct{ q *LanePQ }

func (p plainPQEnqueuer) Enq(e int) { p.q.Enq(e) }

// Enq implements RelaxedQueue: the serialized slow path on lane 0.
func (q *LanePQ) Enq(e int) {
	q.enqMu.Lock()
	if j := q.j; j != nil {
		l := q.lanes[0]
		l.store(e, q.plainN)
		t := j.Tick()
		l.publish(q.plainN + 1)
		q.plainN++
		j.Record(t, history.Enq(e))
	} else {
		q.plainN = q.lanes[0].push(e, q.plainN)
	}
	q.enqMu.Unlock()
}

// Deq implements RelaxedQueue: the serialized slow path through one
// shared dequeuer.
func (q *LanePQ) Deq() (int, bool) {
	q.deqMu.Lock()
	v, ok := q.plainDeq.Deq()
	q.deqMu.Unlock()
	return v, ok
}
