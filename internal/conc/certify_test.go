package conc

import (
	"fmt"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/relaxcheck"
)

// certRun drives a structure concurrently and certifies the recorded
// history at its claimed rung. This is the conformance suite the
// lattice turns into: the claim is about *observed* histories, and
// every recorded run must land at (or above) the claimed element.
func certRun(t *testing.T, name string, mk func(j *Journal) RelaxedQueue, workers, opsPerWorker int) {
	t.Helper()
	t.Run(fmt.Sprintf("%s/w=%d", name, workers), func(t *testing.T) {
		j := NewJournal(workers * opsPerWorker)
		q := mk(j)
		RunWorkload(q, workers, opsPerWorker)
		if d := j.Dropped(); d != 0 {
			t.Fatalf("journal dropped %d ops; size the journal to the run", d)
		}
		h := j.History()
		if len(h) == 0 {
			t.Fatal("empty recorded history")
		}
		ck := Certify(q.Claim(), h, workers)
		if v := ck.Violation(); v != nil {
			t.Fatalf("%s history of %d ops rejected at claimed rung %q: %v",
				q.Name(), len(h), q.Claim().Level, v)
		}
		if ck.Steps() != len(h) {
			t.Fatalf("checker observed %d steps, want %d", ck.Steps(), len(h))
		}
	})
}

// Every structure's recorded histories are accepted at its claimed
// lattice element, single-threaded and concurrent.
func TestCertifyClaims(t *testing.T) {
	cases := []struct {
		name string
		mk   func(j *Journal) RelaxedQueue
	}{
		{"strict", func(j *Journal) RelaxedQueue { return NewStrict(j) }},
		{"seg-k4", func(j *Journal) RelaxedQueue { return NewSegQueue(4, 5, j) }},
		{"seg-k64", func(j *Journal) RelaxedQueue { return NewSegQueue(64, 5, j) }},
		{"dup", func(j *Journal) RelaxedQueue { return NewDupQueue(j) }},
		{"shardpq", func(j *Journal) RelaxedQueue { return NewShardPQ(8, 2, 1, j) }},
		{"lanepq", func(j *Journal) RelaxedQueue { return NewLanePQ(5, 8, j) }},
		{"strictpq", func(j *Journal) RelaxedQueue { return NewStrictPQ(j) }},
	}
	for _, c := range cases {
		certRun(t, c.name, c.mk, 1, 4000)
		certRun(t, c.name, c.mk, 4, 2500)
	}
}

// The deliberately over-strong claim: the k-segment queue claimed at
// strict FIFO. The lane cursors make the refuting schedule
// deterministic — Enq(1)·Enq(2)·Deq()/Ok(2)·Deq()/Ok(1) — and
// relaxcheck pins the violation at step 3 with the concrete witness
// operation. The same history is accepted at the structure's honest
// rung, so the refutation is exactly the FIFO constraint failing, not
// a broken queue.
func TestCertifyRefutesOverstrongFIFOClaim(t *testing.T) {
	j := NewJournal(16)
	q := NewSegQueue(2, 2, j)
	if first, second := segWitnessSchedule(q); first != 2 || second != 1 {
		t.Fatalf("witness schedule broke: served %d then %d, want 2 then 1", first, second)
	}
	h := j.History()
	wantH := history.History{
		history.Enq(1), history.Enq(2),
		history.DeqOk(2), history.DeqOk(1),
	}
	if len(h) != len(wantH) {
		t.Fatalf("recorded %d ops, want %d", len(h), len(wantH))
	}
	for i := range h {
		if !h[i].Equal(wantH[i]) {
			t.Fatalf("recorded[%d] = %v, want %v", i, h[i], wantH[i])
		}
	}

	// Honest claim: accepted.
	if v := Certify(q.Claim(), h, 1).Violation(); v != nil {
		t.Fatalf("honest claim %q rejected the witness history: %v", q.Claim().Level, v)
	}

	// Over-strong claim: refuted with the pinned witness.
	over := q.Claim()
	over.Level = LevelFIFO
	v := Certify(over, h, 1).Violation()
	if v == nil {
		t.Fatal("strict-FIFO claim for the k-segment queue was not refuted")
	}
	if v.Kind != relaxcheck.KindClaim {
		t.Fatalf("violation kind = %q, want %q", v.Kind, relaxcheck.KindClaim)
	}
	if v.Step != 3 {
		t.Fatalf("violation step = %d, want 3", v.Step)
	}
	if !v.Op.Equal(history.DeqOk(2)) {
		t.Fatalf("violation op = %v, want %v", v.Op, history.DeqOk(2))
	}
	if want := "fifo={X, R}"; v.Claim != want {
		t.Fatalf("violation claim = %q, want %q", v.Claim, want)
	}
}

// The duplicating queue's honest claim would also refute a strict
// claim the moment a stutter lands — pin that with a hand-built
// history rather than waiting on a racy schedule.
func TestCertifyRefutesExclusiveClaimForDup(t *testing.T) {
	q := NewDupQueue(nil)
	c := q.Claim()
	h := history.History{
		history.Enq(1), history.Enq(2),
		history.DeqOk(1), history.DeqOk(1), // a stutter: two racers returned the front
		history.DeqOk(2),
	}
	// Accepted at the honest {R} rung for w ≥ 2 (stutter bound w).
	if v := Certify(c, h, 2).Violation(); v != nil {
		t.Fatalf("stutter history rejected at honest rung: %v", v)
	}
	// Refuted at the exclusive rung: elements must not repeat.
	over := c
	over.Level = LevelExclusive
	v := Certify(over, h, 2).Violation()
	if v == nil {
		t.Fatal("exclusive claim survived a duplicated dequeue")
	}
	if v.Step != 4 || !v.Op.Equal(history.DeqOk(1)) {
		t.Fatalf("violation at step %d op %v, want step 4 op %v", v.Step, v.Op, history.DeqOk(1))
	}
}

// The sharded PQ's honest claim is refutable too: serving a
// lower-priority element while a better one is pending violates the
// strict-PQ rung but sits inside OPQueue.
func TestCertifyRefutesStrictClaimForShardPQ(t *testing.T) {
	q := NewShardPQ(2, 1, 1, nil)
	c := q.Claim()
	h := history.History{
		history.Enq(5), history.Enq(9),
		history.DeqOk(5), // not the best: 9 is pending
		history.DeqOk(9),
	}
	if v := Certify(c, h, 1).Violation(); v != nil {
		t.Fatalf("out-of-order service rejected at honest rung: %v", v)
	}
	over := c
	over.Level = LevelPQ
	v := Certify(over, h, 1).Violation()
	if v == nil {
		t.Fatal("strict-PQ claim survived out-of-priority service")
	}
	if v.Step != 3 || !v.Op.Equal(history.DeqOk(5)) {
		t.Fatalf("violation at step %d op %v, want step 3 op %v", v.Step, v.Op, history.DeqOk(5))
	}
}

// The lane PQ refutes a strict claim by construction too: a dequeuer
// whose sample lands on the plain shard serves its element while a
// better one waits in an unsampled shard. Driven through the real
// structure — one shard, batch 1, so the first claim takes the worse,
// older element.
func TestCertifyRefutesStrictClaimForLanePQ(t *testing.T) {
	j := NewJournal(16)
	q := NewLanePQ(1, 1, j)
	q.Enq(5)
	q.Enq(9)
	if v, ok := q.Deq(); !ok || v != 5 {
		t.Fatalf("witness schedule broke: Deq = %d,%v, want 5,true", v, ok)
	}
	if v, ok := q.Deq(); !ok || v != 9 {
		t.Fatalf("witness schedule broke: second Deq = %d,%v, want 9,true", v, ok)
	}
	h := j.History()
	if len(h) != 4 {
		t.Fatalf("recorded %d ops, want 4", len(h))
	}
	c := q.Claim()
	if v := Certify(c, h, 1).Violation(); v != nil {
		t.Fatalf("witness history rejected at honest rung %q: %v", c.Level, v)
	}
	over := c
	over.Level = LevelPQ
	v := Certify(over, h, 1).Violation()
	if v == nil {
		t.Fatal("strict-PQ claim survived the lane PQ's out-of-priority service")
	}
	if v.Step != 3 || !v.Op.Equal(history.DeqOk(5)) {
		t.Fatalf("violation at step %d op %v, want step 3 op %v", v.Step, v.Op, history.DeqOk(5))
	}
}
