package conc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
)

// laneMinCap is the smallest lane ring capacity. Rings grow (double)
// when a producer outruns its consumers, so this is a starting size,
// not a limit: big enough that steady balanced workloads never grow,
// small enough that idle lanes cost nothing.
const laneMinCap = 256

// ring is one capacity generation of a lane's slot array. A ring's
// slots are written only while it is the lane's current ring; after a
// growth swaps in a successor, the old ring is immutable, so claimers
// holding a stale pointer still read correct values.
type ring struct {
	slots []atomic.Uint64
	mask  uint64
}

// lane is a growable single-writer ring shared by the lane-structured
// queues: the owning producer publishes elements with plain stores and
// one release store of pub — no read-modify-write on the enqueue path,
// which is what lets a producer run at cache speed — and consumers
// claim runs of elements with a single CAS on claim. A full ring is
// doubled rather than waited on: a producer never blocks on consumer
// progress, which rules out the end-game deadlock where the last live
// goroutine waits on a dequeuer that can no longer run.
//
// Slot-reuse discipline: a producer only rewrites a slot whose previous
// occupant's index is below claim, and claimRun copies values out
// *before* its CAS — so a successful claim proves claim sat at c for
// the whole copy, during which no slot in [c, c+cap) can be rewritten.
// Slots hold element+1 so a zero read means "not yet published"; pub
// is only advanced after the slot store, so any index below pub reads
// non-zero.
type lane struct {
	r     atomic.Pointer[ring]
	pub   atomic.Uint64
	_     [4]uint64 // keep the hot counters off one line
	claim atomic.Uint64
	_     [7]uint64
}

func newLane(capacity int) *lane {
	c := uint64(laneMinCap)
	for int(c) < capacity {
		c <<= 1
	}
	l := &lane{}
	l.r.Store(&ring{slots: make([]atomic.Uint64, c), mask: c - 1})
	return l
}

// cap returns the current ring capacity. It only ever grows, so the
// value observed after a run bounds the lane's backlog at every point
// during it.
func (l *lane) cap() int { return len(l.r.Load().slots) }

// backlog returns the published-but-unclaimed element count.
func (l *lane) backlog() uint64 { return l.pub.Load() - l.claim.Load() }

// store writes element n's slot without publishing it, growing the
// ring when full. Only the lane's owner may call it.
func (l *lane) store(e int, n uint64) {
	r := l.r.Load()
	if n-l.claim.Load() >= uint64(len(r.slots)) {
		r = l.grow(r, n)
	}
	r.slots[n&r.mask].Store(uint64(e) + 1)
}

// publish releases every stored element below n to claimers.
func (l *lane) publish(n uint64) { l.pub.Store(n) }

// push appends e: store then publish. Returns the next index.
func (l *lane) push(e int, n uint64) uint64 {
	l.store(e, n)
	l.publish(n + 1)
	return n + 1
}

// grow doubles the ring, copying the live window [claim, n) into the
// successor before swapping it in. The copy may include entries a
// concurrent claimer is simultaneously taking from the old ring —
// harmless, both rings hold identical values for them. The pointer
// store precedes the next publish, so a claimer that observes a
// published index always observes a ring containing it.
func (l *lane) grow(old *ring, n uint64) *ring {
	c := uint64(2 * len(old.slots))
	next := &ring{slots: make([]atomic.Uint64, c), mask: c - 1}
	for i := l.claim.Load(); i < n; i++ {
		next.slots[i&next.mask].Store(old.slots[i&old.mask].Load())
	}
	l.r.Store(next)
	return next
}

// claimRun CAS-claims up to max published elements and appends them to
// buf. Values are copied out before the CAS: a successful CAS proves
// claim held at c throughout the copy, so no copied slot can have been
// rewritten (see lane); a failed CAS discards the copy. It retries a
// lost race twice before giving up; contended reports whether it
// walked away from a lane that had elements (the race's winner made
// progress). Callers must distinguish that from a truly empty lane:
// treating a contended miss as emptiness lets a producer/consumer pair
// drift enqueue-heavy and miscount the structure as drained.
func (l *lane) claimRun(buf []int, max uint64) ([]int, bool) {
	for try := 0; try < 2; try++ {
		c := l.claim.Load()
		p := l.pub.Load()
		if c >= p {
			return buf, false
		}
		r := l.r.Load() // after pub: the ring holds every index below p
		want := c + max
		if want > p {
			want = p
		}
		base := len(buf)
		for i := c; i < want; i++ {
			buf = append(buf, int(r.slots[i&r.mask].Load()-1))
		}
		if l.claim.CompareAndSwap(c, want) {
			return buf, false
		}
		buf = buf[:base]
	}
	return buf, true
}

// SegQueue is the k-segment out-of-order FIFO queue, lane-structured
// for raw speed: each producer owns a lane (a bounded ring of two
// k-slot segments, at least laneMinCap slots), so the enqueue path is
// two plain stores and one release store — no shared read-modify-write
// at all, which on one core is the entire game (a fetch-add costs more
// than the rest of the operation combined). Dequeuers rotate over the
// lanes and CAS-claim runs of up to k elements at a time, amortizing
// the one unavoidable read-modify-write over the run; claimed runs are
// served in lane order from a private buffer.
//
// The relaxation: lane order is arrival order, but cross-lane
// interleaving is whatever the claim schedule makes of it, and a
// claimed run is served while younger claims proceed. Every source of
// reordering is bounded — a lane's backlog never exceeds its ring
// capacity (rings grow before overflowing, and capacity only grows,
// so the final capacity bounds the whole run), a dequeuer's buffer at
// most k — so a dequeue always serves within the first
// Σ lane-caps + w·k + w pending elements (w in-flight recorder
// skew; see Journal). That is the Semiqueue window the structure
// claims: constraint X holds exactly (claims are exclusive CAS
// tickets; nothing is served twice), constraint R is traded.
type SegQueue struct {
	k     int
	lanes []*lane
	j     *Journal

	// Plain-path Enq serializes on lane 0; handle enqueuers own lanes
	// 1..len(lanes)-1 and overflow back to the plain path.
	enqMu    sync.Mutex
	plainN   uint64
	nextLane atomic.Uint32

	// Plain-path Deq serializes on one shared dequeuer.
	deqMu    sync.Mutex
	plainDeq *SegDequeuer
	nextCur  atomic.Uint32
}

// NewSegQueue returns an empty k-segment queue with the given lane
// count, recording into j (nil for unrecorded runs). Lane 0 backs the
// plain Enq path; create one Enqueuer per producing goroutine (up to
// lanes−1 of them) for the fast single-writer path. It panics if
// k < 1 or lanes < 1.
func NewSegQueue(k, lanes int, j *Journal) *SegQueue {
	if k < 1 || lanes < 1 {
		panic(fmt.Sprintf("conc: NewSegQueue(k=%d, lanes=%d), need k ≥ 1, lanes ≥ 1", k, lanes))
	}
	q := &SegQueue{k: k, j: j, lanes: make([]*lane, lanes)}
	for i := range q.lanes {
		q.lanes[i] = newLane(2 * k)
	}
	q.plainDeq = &SegDequeuer{q: q}
	return q
}

// Name implements RelaxedQueue.
func (q *SegQueue) Name() string { return fmt.Sprintf("seg-k%d", q.k) }

// K returns the per-claim run bound.
func (q *SegQueue) K() int { return q.k }

// window is the reordering bound for w concurrent dequeuers: every
// element older than a served one is either unclaimed in some lane
// (≤ that lane's capacity, which only grows — so the value read here,
// after a run, bounds every point of it), or claimed into some
// dequeuer's buffer (≤ k per dequeuer).
func (q *SegQueue) window(w int) int {
	total := 0
	for _, l := range q.lanes {
		total += l.cap()
	}
	return total + w*q.k
}

// Claim implements RelaxedQueue: the {X} rung — Semiqueue(window+w).
func (q *SegQueue) Claim() Claim {
	return Claim{
		Lattice: func(w int) *lattice.Relaxation { return QueueLattice(q.window(w), w) },
		Levels:  QueueLevels,
		Level:   LevelExclusive,
	}
}

// NewEnqueuer implements HandledQueue: the returned handle owns one
// lane and must be used from one goroutine at a time. Once every lane
// is owned, further handles fall back to the serialized plain path.
func (q *SegQueue) NewEnqueuer() Enqueuer {
	i := int(q.nextLane.Add(1)) // lane 0 is the plain path's
	if i >= len(q.lanes) {
		return plainSegEnqueuer{q}
	}
	return &SegEnqueuer{q: q, l: q.lanes[i]}
}

// NewDequeuer implements HandledQueue: dequeuer handles are
// single-goroutine cursors with a private serve buffer; any number may
// be created. Cursors start on distinct lanes so single-threaded
// schedules are a deterministic function of creation order.
func (q *SegQueue) NewDequeuer() Dequeuer {
	return &SegDequeuer{q: q, cur: int(q.nextCur.Add(1)-1) % len(q.lanes)}
}

// SegEnqueuer is the single-writer fast path for one lane.
type SegEnqueuer struct {
	q *SegQueue
	l *lane
	n uint64
}

// Enq appends to the handle's lane. When recording, the ticket is
// taken between the slot store and the pub store, so a dequeue of this
// element (which observes pub) always ticks later.
func (h *SegEnqueuer) Enq(e int) {
	j := h.q.j
	if j == nil {
		h.n = h.l.push(e, h.n)
		return
	}
	h.l.store(e, h.n)
	t := j.Tick()
	h.l.publish(h.n + 1)
	h.n++
	j.Record(t, history.Enq(e))
}

// SegDequeuer serves claimed runs in lane order from a private buffer.
type SegDequeuer struct {
	q   *SegQueue
	cur int
	buf []int
	pos int
}

// Deq serves the buffered run, refilling by rotating over the lanes
// and claiming up to k elements from the first with a published
// backlog. It reports ok=false only after a rotation that saw every
// lane empty and uncontended — a contended lane means another claimer
// is mid-progress, so the rotation retries rather than miscounting
// the structure as drained (lock-free: retries only happen when some
// other claimer succeeded).
func (d *SegDequeuer) Deq() (int, bool) {
	if d.pos >= len(d.buf) {
		d.buf, d.pos = d.buf[:0], 0
		n := len(d.q.lanes)
		for retry := true; retry && len(d.buf) == 0; {
			retry = false
			for i := 0; i < n; i++ {
				l := d.q.lanes[d.cur]
				d.cur++
				if d.cur == n {
					d.cur = 0
				}
				var contended bool
				if d.buf, contended = l.claimRun(d.buf, uint64(d.q.k)); len(d.buf) > 0 {
					break
				}
				retry = retry || contended
			}
		}
		if len(d.buf) == 0 {
			return 0, false
		}
	}
	v := d.buf[d.pos]
	d.pos++
	if j := d.q.j; j != nil {
		j.Record(j.Tick(), history.DeqOk(v))
	}
	return v, true
}

// plainSegEnqueuer routes overflow handles to the serialized plain
// path.
type plainSegEnqueuer struct{ q *SegQueue }

func (p plainSegEnqueuer) Enq(e int) { p.q.Enq(e) }

// Enq implements RelaxedQueue: the serialized slow path on lane 0.
// Handle enqueuers are the fast path.
func (q *SegQueue) Enq(e int) {
	q.enqMu.Lock()
	if j := q.j; j != nil {
		l := q.lanes[0]
		l.store(e, q.plainN)
		t := j.Tick()
		l.publish(q.plainN + 1)
		q.plainN++
		j.Record(t, history.Enq(e))
	} else {
		q.plainN = q.lanes[0].push(e, q.plainN)
	}
	q.enqMu.Unlock()
}

// Deq implements RelaxedQueue: the serialized slow path through one
// shared dequeuer. Handle dequeuers are the fast path.
func (q *SegQueue) Deq() (int, bool) {
	q.deqMu.Lock()
	v, ok := q.plainDeq.Deq()
	q.deqMu.Unlock()
	return v, ok
}
