package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "X04",
		Title: "Extension — latency is the cost of quorum size: k-th order statistics of site round trips",
		Paper: "Section 3.4 (the account's cost is latency: 'the larger an operation's quorums, the longer it takes to execute')",
		Run:   runLatency,
	})
}

// runLatency quantifies the paper's latency claim: an operation that
// must assemble a quorum of k out of n sites waits for the k-th
// fastest response. With i.i.d. exponential site round trips (mean 1),
// the expected wait is the k-th order statistic
// E[T_(k)] = Σ_{i=0}^{k-1} 1/(n-i); growing an operation's quorums
// (to strengthen intersection constraints) directly grows its latency.
func runLatency(w io.Writer, cfg Config) error {
	const n = 5
	g := sim.NewRNG(cfg.Seed)
	trials := cfg.Trials / 10
	if trials < 2000 {
		trials = 2000
	}
	t := sim.NewTable("quorum size k (of 5)", "analytic mean wait", "measured mean", "measured p95", "constraint bought")
	bought := map[int]string{
		1: "none (fully relaxed ops)",
		2: "Q1 with Enq-final=4 (Deq may miss other Deqs)",
		3: "Q1 ∧ Q2 (one-copy serializability)",
		4: "larger final quorums (faster propagation)",
		5: "read-anything/write-everything",
	}
	for k := 1; k <= n; k++ {
		analytic := 0.0
		for i := 0; i < k; i++ {
			analytic += 1.0 / float64(n-i)
		}
		var h sim.Histogram
		rtts := make([]float64, n)
		for trial := 0; trial < trials; trial++ {
			for s := range rtts {
				rtts[s] = g.Exp(1.0)
			}
			h.Observe(kthSmallest(rtts, k))
		}
		diff := h.Mean() - analytic
		if diff < 0 {
			diff = -diff
		}
		t.AddRow(k, analytic, h.Mean(), h.Quantile(0.95), bought[k])
		if diff > 0.05 {
			t.Render(w)
			return fmt.Errorf("measured mean %.3f deviates from analytic %.3f at k=%d", h.Mean(), analytic, k)
		}
	}
	t.Render(w)
	fmt.Fprintln(w, "order-statistic means match analytic values: HOLDS")
	fmt.Fprintln(w, "moving up the lattice (stronger constraints → larger quorums) pays in")
	fmt.Fprintln(w, "exactly these waits; the ATM's trick (announce after the first update,")
	fmt.Fprintln(w, "grow final quorums in the background) moves the k-1 remaining waits off")
	fmt.Fprintln(w, "the customer's critical path at the price of premature-debit bounces (E10).")
	return nil
}

// kthSmallest returns the k-th smallest (1-based) of xs without
// mutating it.
func kthSmallest(xs []float64, k int) float64 {
	buf := append([]float64(nil), xs...)
	// Selection by partial sort; n is tiny.
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(buf); j++ {
			if buf[j] < buf[min] {
				min = j
			}
		}
		buf[i], buf[min] = buf[min], buf[i]
	}
	return buf[k-1]
}
