package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "X03",
		Title: "Extension — quorum structures: majorities vs grids for the same intersection constraints",
		Paper: "Section 3.1 (quorum assignments determine availability)",
		Run:   runStructures,
	})
}

// runStructures compares two quorum structures that realize the same
// intersection constraints (every initial quorum of every operation
// meets every final quorum): flat majorities over n sites versus
// √n-sized grid quorums. Both support the preferred behavior; they
// price availability and latency (quorum size) differently — the
// paper's point that the constraints, not the mechanism, determine the
// lattice, while the mechanism prices the constraints.
func runStructures(w io.Writer, cfg Config) error {
	const rows, cols = 3, 3
	n := rows * cols
	maj := quorum.Majority(n, history.NameEnq, history.NameDeq)
	grid := quorum.Grid(rows, cols, history.NameEnq, history.NameDeq)

	// Both realize the full intersection relation for {Enq, Deq}.
	full := quorum.NewRelation(
		quorum.Pair{Inv: history.NameDeq, Op: history.NameEnq},
		quorum.Pair{Inv: history.NameDeq, Op: history.NameDeq},
	)
	fmt.Fprintf(w, "majority over %d sites satisfies {Q1,Q2}: %s\n", n, verdict(maj.Satisfies(full)))
	fmt.Fprintf(w, "%dx%d grid satisfies {Q1,Q2}:        %s\n\n", rows, cols, verdict(full.IsSubrelationOf(grid.Relation())))

	mq, _ := maj.Quorums(history.NameDeq)
	fmt.Fprintf(w, "quorum sizes (latency proxy): majority %d of %d; grid %d (row) / %d (column)\n\n",
		mq.Initial, n, cols, rows)

	t := sim.NewTable("site-up probability", "majority availability", "grid availability")
	for _, pUp := range []float64{0.99, 0.95, 0.9, 0.8, 0.7, 0.5} {
		t.AddRow(pUp,
			maj.Availability(history.NameDeq, pUp),
			grid.Availability(history.NameDeq, pUp))
	}
	t.Render(w)
	fmt.Fprintln(w, "\nthe grid pays smaller quorums (lower latency) with lower availability at")
	fmt.Fprintln(w, "high failure rates; the lattice element — and hence the behavior — is the")
	fmt.Fprintln(w, "same for both, because φ depends only on the intersection constraints.")

	// Monte-Carlo spot check of the analytic numbers.
	g := sim.NewRNG(cfg.Seed)
	trials := cfg.Trials / 10
	if trials < 1000 {
		trials = 1000
	}
	var mr, gr sim.Ratio
	for i := 0; i < trials; i++ {
		alive := make([]bool, n)
		for s := range alive {
			alive[s] = g.Bool(0.9)
		}
		mr.Observe(maj.HasQuorum(history.NameDeq, alive))
		gr.Observe(grid.HasQuorum(history.NameDeq, alive))
	}
	okM := abs(mr.Value()-maj.Availability(history.NameDeq, 0.9)) < 0.01
	okG := abs(gr.Value()-grid.Availability(history.NameDeq, 0.9)) < 0.01
	fmt.Fprintf(w, "Monte-Carlo agreement at pUp=0.9: majority %s, grid %s\n", verdict(okM), verdict(okG))
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
