package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

func init() {
	register(Experiment{
		ID:    "E04",
		Title: "Theorem 4: L(QCA(PQ,Q1,η)) = L(MPQ)",
		Paper: "Section 3.3, Theorem 4, Figure 3-3",
		Run: func(w io.Writer, cfg Config) error {
			return claimTable(w, core.CheckTheorem4(cfg.Bound))
		},
	})
	register(Experiment{
		ID:    "E05",
		Title: "Out-of-order claim: L(QCA(PQ,Q2,η)) = L(OPQ)",
		Paper: "Section 3.3, Figure 3-4",
		Run: func(w io.Writer, cfg Config) error {
			return claimTable(w, core.CheckOutOfOrderClaim(cfg.Bound))
		},
	})
	register(Experiment{
		ID:    "E06",
		Title: "Degenerate claim: L(QCA(PQ,∅,η)) = L(DegenPQ)",
		Paper: "Section 3.3, Figure 3-5",
		Run: func(w io.Writer, cfg Config) error {
			return claimTable(w, core.CheckDegenerateClaim(cfg.Bound))
		},
	})
	register(Experiment{
		ID:    "E07",
		Title: "One-copy serializability at the top: L(QCA(PQ,{Q1,Q2},η)) = L(PQ), with {Q1,Q2} a minimal serial dependency relation",
		Paper: "Sections 3.2-3.3, Definition 3",
		Run:   runSerialDependency,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Evaluation-function ablation: η vs η′",
		Paper: "Section 3.3 (end)",
		Run:   runEtaAblation,
	})
}

// claimTable renders one bounded language-equivalence claim.
func claimTable(w io.Writer, r core.ClaimResult) error {
	fmt.Fprintf(w, "%s: %s vs %s\n", r.Name, r.LHS, r.RHS)
	t := sim.NewTable("len", "|L(lhs)|", "|L(rhs)|", "equal")
	for l := 0; l <= r.Compare.MaxLen; l++ {
		t.AddRow(l, r.Compare.CountA[l], r.Compare.CountB[l], r.Compare.CountA[l] == r.Compare.CountB[l])
	}
	t.Render(w)
	fmt.Fprintf(w, "bounded equivalence: %s (explored %d histories)\n", verdict(r.Holds()), r.Compare.Explored)
	if !r.Holds() {
		fmt.Fprintf(w, "counterexamples: onlyLHS=%v onlyRHS=%v\n", r.Compare.OnlyA, r.Compare.OnlyB)
	}
	return nil
}

func runSerialDependency(w io.Writer, cfg Config) error {
	if err := claimTable(w, core.CheckOneCopySerializability(cfg.Bound)); err != nil {
		return err
	}
	alphabet := history.QueueAlphabet(cfg.Bound.MaxElem)
	depLen := cfg.Bound.MaxLen - 2
	if depLen < 3 {
		depLen = 3
	}
	full := quorum.Q1().Union(quorum.Q2())
	ok, _ := quorum.IsSerialDependency(specs.PriorityQueue(), full, alphabet, depLen)
	fmt.Fprintf(w, "{Q1,Q2} is a serial dependency relation for PQ: %s\n", verdict(ok))
	t := sim.NewTable("dropped pair", "still serial dependency?")
	minimal := true
	for _, v := range quorum.MinimalityWitness(specs.PriorityQueue(), full, alphabet, depLen) {
		t.AddRow(fmt.Sprintf("inv(%s)→%s", v.Dropped.Inv, v.Dropped.Op), v.StillSerial)
		if v.StillSerial {
			minimal = false
		}
	}
	t.Render(w)
	fmt.Fprintf(w, "minimality (both rows false): %s\n", verdict(minimal))
	// Q1 is a serial dependency relation for MPQ — the lemma in the
	// proof of Theorem 4.
	okMPQ, _ := quorum.IsSerialDependency(specs.MultiPriorityQueue(), quorum.Q1(), alphabet, depLen)
	fmt.Fprintf(w, "Q1 is a serial dependency relation for MPQ (Theorem 4 lemma): %s\n", verdict(okMPQ))
	return nil
}

func runEtaAblation(w io.Writer, cfg Config) error {
	u := core.TaxiUniverse()
	eta, _ := core.TaxiLattice().Phi(u.Named(core.ConstraintQ2))
	prime, _ := core.TaxiLatticePrime().Phi(u.Named(core.ConstraintQ2))
	examples := []struct {
		desc string
		h    history.History
	}{
		{"out-of-order service", history.History{history.Enq(1), history.Enq(2), history.DeqOk(1), history.DeqOk(2)}},
		{"skipped request ignored", history.History{history.Enq(1), history.Enq(2), history.DeqOk(1)}},
		{"in-order service", history.History{history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(1)}},
		{"duplicate service", history.History{history.Enq(2), history.DeqOk(2), history.DeqOk(2)}},
	}
	t := sim.NewTable("history", "QCA(PQ,{Q2},η)", "QCA(PQ,{Q2},η′)")
	for _, ex := range examples {
		t.AddRow(ex.h.String(), automaton.Accepts(eta, ex.h), automaton.Accepts(prime, ex.h))
	}
	t.Render(w)
	fmt.Fprintln(w, "η tolerates out-of-order service; η′ never services out of order but may ignore requests.")
	// Both lattices coincide with PQ at the top.
	top, _ := core.TaxiLatticePrime().Phi(u.All())
	res := automaton.Compare(top, specs.PriorityQueue(), history.QueueAlphabet(cfg.Bound.MaxElem), cfg.Bound.MaxLen-1)
	fmt.Fprintf(w, "η′ lattice at {Q1,Q2} equals PQ: %s\n", verdict(res.Equal))
	return nil
}
