package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "X06",
		Title: "Extension — online relaxation checking: soak sweep certifying live verdicts against offline replay",
		Paper: "Section 3.3 (the post-hoc lattice audit of X05, made incremental and checked while the run executes)",
		Run:   runSoakCheck,
	})
}

// runSoakCheck sweeps the relaxcheck soak harness across every workload
// generator and both runtimes, with the online incremental checker
// attached to the observation path. For each run it cross-checks the
// checker's sampled verdicts — and its final one — against the offline
// WeakestAccepting replay of the same prefix, so the table certifies
// that stepping automaton frontiers one operation at a time lands on
// exactly the φ(C) a full post-hoc audit would report. A final negative
// control re-runs one mixed-rung soak under the naive per-rung claim
// table and demands the checker refute it at a specific operation: with
// clients straddling ladder rungs, cross-rung quorums stop
// intersecting, so the merged history escapes even φ({Q1}) — a
// violation X05's end-of-run audit cannot localize and small runs never
// hit.
func runSoakCheck(w io.Writer, cfg Config) error {
	ops, clients := cfg.SoakOps, cfg.SoakClients
	if ops <= 0 {
		ops = 800
	}
	if clients <= 0 {
		clients = 40
	}
	sampleEvery := ops / 4
	faults := cluster.FaultConfig{MTTF: 60, MTTR: 8, MTBP: 150, PartitionDwell: 12}
	taxi := core.TaxiSimpleLattice()
	semi := core.SemiqueueLattice(3)

	fmt.Fprintf(w, "workloads: %d clients × %d ops per run; online verdict sampled every %d ops and compared to the offline replay\n\n",
		clients, ops, sampleEvery)

	t := sim.NewTable("harness", "workload", "completed", "failed", "steps", "level", "floor",
		"frontier", "samples", "online=offline")

	// agrees counts how many sampled verdicts (plus the final one) the
	// offline replay confirms.
	agrees := func(lat *lattice.Relaxation, r *relaxcheck.SoakReport) (int, int) {
		ok, total := 0, 0
		check := func(step int, sets []lattice.Set) {
			total++
			want, _ := lat.WeakestAccepting(r.Observed[:step])
			if len(want) == len(sets) {
				same := true
				for i := range want {
					if want[i] != sets[i] {
						same = false
					}
				}
				if same {
					ok++
				}
			}
		}
		for _, s := range r.Samples {
			check(s.Step, s.Sets)
		}
		check(len(r.Observed), r.Sets)
		return ok, total
	}

	allAgree, clean := true, true
	for _, kind := range relaxcheck.Kinds() {
		scfg := relaxcheck.ClusterSoakConfig{
			Workload:    relaxcheck.Workload{Kind: kind, Clients: clients, Ops: ops},
			Seed:        cfg.Seed,
			Sites:       cfg.Sites,
			SampleEvery: sampleEvery,
			Metrics:     cfg.Metrics,
			Trace:       cfg.Trace,
		}
		if kind != relaxcheck.FaultCorrelated {
			scfg.Faults = faults
		}
		r, err := relaxcheck.RunClusterSoak(scfg)
		if err != nil {
			return fmt.Errorf("cluster soak %s: %w", kind, err)
		}
		ok, total := agrees(taxi, r)
		allAgree = allAgree && ok == total
		clean = clean && r.Violation == nil
		t.AddRow("cluster", kind.String(), r.Completed, r.Failed, r.Steps, r.Level, r.FloorClaim,
			r.MaxFrontier, total, fmt.Sprintf("%d/%d", ok, total))
	}
	for _, kind := range relaxcheck.Kinds() {
		r, err := relaxcheck.RunTxnSoak(relaxcheck.TxnSoakConfig{
			Workload:    relaxcheck.Workload{Kind: kind, Clients: clients, Ops: ops},
			Seed:        cfg.Seed,
			SampleEvery: sampleEvery,
			Metrics:     cfg.Metrics,
			Trace:       cfg.Trace,
		})
		if err != nil {
			return fmt.Errorf("txn soak %s: %w", kind, err)
		}
		ok, total := agrees(semi, r)
		allAgree = allAgree && ok == total
		clean = clean && r.Violation == nil
		t.AddRow("txn", kind.String(), r.Completed, r.Failed, r.Steps, r.Level, r.FloorClaim,
			r.MaxFrontier, total, fmt.Sprintf("%d/%d", ok, total))
	}
	t.Render(w)

	// Negative control: the nominal per-rung claim table must be refuted
	// the moment mixed-rung quorums stop intersecting. The run is pinned
	// (workload, seed, sites) to a known counterexample — a specific
	// execution where a rung-Q1 dequeue misses a rung-Q1Q2 enqueue — so
	// the demonstration does not depend on the sweep's flags.
	refuted := "not refuted"
	naive, naiveErr := relaxcheck.RunClusterSoak(relaxcheck.ClusterSoakConfig{
		Workload: relaxcheck.Workload{Kind: relaxcheck.Bursty, Clients: 40, Ops: 1500},
		Seed:     7,
		Sites:    5,
		Faults:   faults,
		Claims:   relaxcheck.TaxiRungLevels(taxi.Universe),
	})
	refutedOK := naiveErr != nil && naive.Violation != nil && naive.Violation.Kind == relaxcheck.KindClaim
	if refutedOK {
		refuted = fmt.Sprintf("claim violation at step %d (%v)", naive.Violation.Step, naive.Violation.Op)
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "every sampled online verdict equals the offline WeakestAccepting replay: %s\n", verdict(allAgree))
	fmt.Fprintf(w, "zero violations under the joint-guarantee claim table: %s\n", verdict(clean))
	fmt.Fprintf(w, "online checker refutes the naive per-rung claim table mid-run: %s — %s\n", verdict(refutedOK), refuted)
	if !allAgree || !refutedOK {
		return fmt.Errorf("online/offline certification failed (agree=%v refuted=%v)", allAgree, refutedOK)
	}
	return nil
}
