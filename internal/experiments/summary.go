package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Summary chart",
		Paper: "Figure 5-1",
		Run:   runSummaryChart,
	})
	register(Experiment{
		ID:    "E16",
		Title: "Lattice laws: φ is a monotone homomorphism on every built lattice",
		Paper: "Sections 2.2-2.3",
		Run:   runLatticeLaws,
	})
}

// runSummaryChart regenerates Figure 5-1 from the three registered
// domain instantiations.
func runSummaryChart(w io.Writer, cfg Config) error {
	t := sim.NewTable("Correctness condition", "Preferred Behavior", "Constraints", "Cost", "Events")
	t.AddRow("One-copy serializability", "Priority Queue", "Quorum intersection", "Availability", "Failures, crashes")
	t.AddRow("One-copy serializability", "Account", "Quorum intersection", "Latency", "Premature Debits")
	t.AddRow("Atomicity", "FIFO Queue", "Concurrent Deq's", "Concurrency", "Deq, commit, abort")
	t.Render(w)
	// Cross-check each row against the built lattices.
	checks := []struct {
		row  string
		ok   bool
		note string
	}{
		{"Priority Queue", core.TaxiLattice().Preferred().Name() == "QCA(PQ,{Q1, Q2},η)", "taxi lattice top"},
		{"Account", core.AccountLattice().Preferred().Name() == "Account", "account lattice top"},
		{"FIFO Queue", core.SemiqueueLattice(3).Preferred().Name() == "Semiqueue_1", "spool lattice top (Semiqueue_1 = FIFO)"},
	}
	for _, c := range checks {
		fmt.Fprintf(w, "%s row matches built lattice (%s): %s\n", c.row, c.note, verdict(c.ok))
	}
	return nil
}

// runLatticeLaws verifies the structural laws on every lattice this
// library builds: relaxing constraints only ever adds behaviors
// (φ order-reversing on languages).
func runLatticeLaws(w io.Writer, cfg Config) error {
	depth := cfg.Bound.MaxLen - 2
	if depth < 3 {
		depth = 3
	}
	queueAlpha := history.QueueAlphabet(cfg.Bound.MaxElem)
	acctAlpha := history.AccountAlphabet(cfg.Bound.MaxElem)
	t := sim.NewTable("lattice", "elements", "monotone")
	type check struct {
		name     string
		elements int
		ok       bool
	}
	var checks []check
	taxi := core.TaxiLattice()
	checks = append(checks, check{taxi.Name, len(taxi.Domain()), len(taxi.VerifyMonotone(queueAlpha, depth)) == 0})
	prime := core.TaxiLatticePrime()
	checks = append(checks, check{prime.Name, len(prime.Domain()), len(prime.VerifyMonotone(queueAlpha, depth)) == 0})
	acct := core.AccountLattice()
	checks = append(checks, check{acct.Name, len(acct.Domain()), len(acct.VerifyMonotone(acctAlpha, depth)) == 0})
	acctU := core.AccountLatticeUnrestricted()
	checks = append(checks, check{acctU.Name, len(acctU.Domain()), len(acctU.VerifyMonotone(acctAlpha, depth)) == 0})
	semi := core.SemiqueueLattice(3)
	checks = append(checks, check{semi.Name, len(semi.Domain()), len(semi.VerifyMonotone(queueAlpha, depth)) == 0})
	stut := core.StutteringLattice(3)
	checks = append(checks, check{stut.Name, len(stut.Domain()), len(stut.VerifyMonotone(queueAlpha, depth)) == 0})
	comb := core.CombinedSpoolLattice(3)
	checks = append(checks, check{comb.Name, len(comb.Domain()), len(comb.VerifyMonotone(queueAlpha, depth)) == 0})
	allOK := true
	for _, c := range checks {
		t.AddRow(c.name, c.elements, verdict(c.ok))
		allOK = allOK && c.ok
	}
	t.Render(w)
	fmt.Fprintf(w, "all lattices monotone: %s\n", verdict(allOK))
	return nil
}
