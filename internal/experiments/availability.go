package experiments

import (
	"fmt"
	"io"
	"math"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E09",
		Title: "Availability vs constraint relaxation under site failures",
		Paper: "Sections 3.1, 3.3 (the availability/consistency trade-off)",
		Run:   runAvailability,
	})
}

// runAvailability quantifies the paper's motivating trade-off: the
// weaker the quorum intersection constraints an assignment must
// satisfy, the smaller its quorums and the higher the probability an
// operation finds a quorum among the surviving sites. Analytic
// (weighted-voting DP) and Monte-Carlo availabilities are reported per
// lattice element for the Deq operation.
func runAvailability(w io.Writer, cfg Config) error {
	assigns := quorum.TaxiAssignments(cfg.Sites)
	order := []string{"Q1Q2", "Q1", "Q2", "none"}
	labels := map[string]string{
		"Q1Q2": "{Q1,Q2} → PQueue",
		"Q1":   "{Q1}    → MPQueue",
		"Q2":   "{Q2}    → OPQueue",
		"none": "∅       → DegenPQueue",
	}
	g := sim.NewRNG(cfg.Seed)
	trials := cfg.Trials / 10
	if trials < 1000 {
		trials = 1000
	}
	// Relaxation chains of the lattice: availability must not decrease
	// when moving down any chain.
	chains := [][2]string{{"Q1Q2", "Q1"}, {"Q1Q2", "Q2"}, {"Q1", "none"}, {"Q2", "none"}}
	for _, pUp := range []float64{0.5, 0.7, 0.9} {
		fmt.Fprintf(w, "site-up probability %.1f over %d sites:\n", pUp, cfg.Sites)
		t := sim.NewTable("lattice element", "Deq analytic", "Deq monte-carlo", "abs error", "Enq analytic", "Deq quorum (latency proxy)")
		deqAvail := map[string]float64{}
		for _, name := range order {
			v := assigns[name]
			analytic := v.Availability(history.NameDeq, pUp)
			deqAvail[name] = analytic
			var r sim.Ratio
			for i := 0; i < trials; i++ {
				alive := make([]bool, cfg.Sites)
				for s := range alive {
					alive[s] = g.Bool(pUp)
				}
				r.Observe(v.HasQuorum(history.NameDeq, alive))
			}
			dq, _ := v.Quorums(history.NameDeq)
			need := dq.Initial
			if dq.Final > need {
				need = dq.Final
			}
			t.AddRow(labels[name], analytic, r.Value(), math.Abs(analytic-r.Value()),
				v.Availability(history.NameEnq, pUp), fmt.Sprintf("%d of %d", need, cfg.Sites))
		}
		t.Render(w)
		monotone := true
		for _, ch := range chains {
			if deqAvail[ch[1]] < deqAvail[ch[0]]-1e-9 {
				monotone = false
			}
		}
		strict := deqAvail["none"] > deqAvail["Q1Q2"]+1e-9
		fmt.Fprintf(w, "Deq availability never falls along a relaxation chain: %s (∅ strictly beats {Q1,Q2}: %s)\n\n",
			verdict(monotone), verdict(strict))
	}
	// Enq availability trade-off under Q1 (Section 3.3: shrinking one
	// operation's quorums grows the other's).
	fmt.Fprintln(w, "Q1 trade-off at pUp=0.7: shrinking Deq initial quorums forces larger Enq final quorums")
	t := sim.NewTable("Enq final / Deq initial", "Enq availability", "Deq availability")
	maj := cfg.Sites/2 + 1
	for enqFinal := 1; enqFinal <= cfg.Sites; enqFinal++ {
		deqInitial := cfg.Sites - enqFinal + 1 // minimal for Q1 intersection
		if deqInitial < 1 {
			deqInitial = 1
		}
		v := quorum.NewVoting(onesWeights(cfg.Sites), map[string]quorum.OpQuorums{
			history.NameEnq: {Initial: 1, Final: enqFinal},
			history.NameDeq: {Initial: deqInitial, Final: maj},
		})
		t.AddRow(
			fmt.Sprintf("%d / %d", enqFinal, deqInitial),
			v.Availability(history.NameEnq, 0.7),
			v.Availability(history.NameDeq, 0.7),
		)
	}
	t.Render(w)
	return nil
}

func onesWeights(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = 1
	}
	return ws
}
