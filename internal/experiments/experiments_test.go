package experiments

import (
	"bytes"
	"strings"
	"testing"

	"relaxlattice/internal/core"
)

// fastConfig keeps experiment tests quick; the full configuration runs
// from cmd/relaxctl and the benchmarks.
func fastConfig() Config {
	return Config{
		Seed:   1987,
		Bound:  core.Bound{MaxElem: 2, MaxLen: 5},
		Trials: 20000,
		Sites:  5,
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
		"E09", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "X01", "X02", "X03", "X04"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Paper == "" || all[i].Run == nil {
			t.Errorf("%s incomplete", id)
		}
	}
	if _, ok := Find("E04"); !ok {
		t.Errorf("Find(E04) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Errorf("Find(nope) succeeded")
	}
}

// Each experiment runs without error and declares every checked claim
// to hold.
func TestAllExperimentsHold(t *testing.T) {
	cfg := fastConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if strings.Contains(out, "FAILS") {
				t.Errorf("%s reported a failing claim:\n%s", e.ID, out)
			}
			if len(out) < 40 {
				t.Errorf("%s output suspiciously short: %q", e.ID, out)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	cfg := fastConfig()
	// Trim the heavyweight settings further for the full sweep.
	cfg.Trials = 5000
	cfg.Bound.MaxLen = 4
	var buf bytes.Buffer
	if err := RunAll(&buf, cfg); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := buf.String()
	for _, id := range []string{"E01", "E08", "E16"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("missing header for %s", id)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default()
	if cfg.Trials < 10000 || cfg.Sites < 3 || cfg.Bound.MaxLen < 5 {
		t.Errorf("default config too small: %+v", cfg)
	}
}

// Determinism: identical configs produce byte-identical output for the
// randomized experiments.
func TestExperimentsDeterministic(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 5000
	for _, id := range []string{"E08", "E09", "E10"} {
		e, _ := Find(id)
		var a, b bytes.Buffer
		if err := e.Run(&a, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := e.Run(&b, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.String() != b.String() {
			t.Errorf("%s output differs across runs with same seed", id)
		}
	}
}

func TestVerdict(t *testing.T) {
	if verdict(true) != "HOLDS" || verdict(false) != "FAILS" {
		t.Errorf("verdict strings wrong")
	}
}
