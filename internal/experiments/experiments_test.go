package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/obs"
)

// fastConfig keeps experiment tests quick; the full configuration runs
// from cmd/relaxctl and the benchmarks.
func fastConfig() Config {
	return Config{
		Seed:   1987,
		Bound:  core.Bound{MaxElem: 2, MaxLen: 5},
		Trials: 20000,
		Sites:  5,
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
		"E09", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "X01", "X02", "X03", "X04", "X05", "X06", "X07"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Paper == "" || all[i].Run == nil {
			t.Errorf("%s incomplete", id)
		}
	}
	if _, ok := Find("E04"); !ok {
		t.Errorf("Find(E04) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Errorf("Find(nope) succeeded")
	}
}

// Each experiment runs without error and declares every checked claim
// to hold.
func TestAllExperimentsHold(t *testing.T) {
	cfg := fastConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, cfg); err != nil {
				t.Fatalf("%s: %v\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if strings.Contains(out, "FAILS") {
				t.Errorf("%s reported a failing claim:\n%s", e.ID, out)
			}
			if len(out) < 40 {
				t.Errorf("%s output suspiciously short: %q", e.ID, out)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	cfg := fastConfig()
	// Trim the heavyweight settings further for the full sweep.
	cfg.Trials = 5000
	cfg.Bound.MaxLen = 4
	var buf bytes.Buffer
	if err := RunAll(&buf, cfg); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := buf.String()
	for _, id := range []string{"E01", "E08", "E16"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("missing header for %s", id)
		}
	}
}

// The parallel runner must be byte-identical to the serial one, and
// stable across repeated parallel runs.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 5000
	cfg.Bound.MaxLen = 4
	var serial bytes.Buffer
	if err := RunAll(&serial, cfg); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for run := 0; run < 2; run++ {
		var par bytes.Buffer
		if err := RunAllParallel(&par, cfg, 4); err != nil {
			t.Fatalf("RunAllParallel (run %d): %v", run, err)
		}
		if par.String() != serial.String() {
			t.Fatalf("parallel output differs from serial (run %d)", run)
		}
	}
}

// The observability sinks must obey the same contract as the output
// stream: the metrics snapshot and the event journal are byte-identical
// between serial and parallel runs at any worker count, because scratch
// sinks are absorbed strictly in ID order.
func TestObservabilityDeterministicAcrossWorkers(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 5000
	cfg.Bound.MaxLen = 4

	render := func(workers int) (string, string) {
		t.Helper()
		c := cfg
		c.Metrics = obs.NewRegistry()
		c.Trace = obs.NewRecorder()
		var out bytes.Buffer
		var err error
		if workers <= 1 {
			err = RunAll(&out, c)
		} else {
			err = RunAllParallel(&out, c, workers)
		}
		if err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		var m, j bytes.Buffer
		if err := c.Metrics.Snapshot().WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := c.Trace.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		return m.String(), j.String()
	}

	serialM, serialJ := render(1)
	if serialM == "" || serialJ == "" {
		t.Fatal("serial run produced empty observability output")
	}
	if !strings.Contains(serialJ, `"name":"experiment","id":"E01"`) {
		t.Errorf("journal missing experiment markers:\n%.200s", serialJ)
	}
	for _, workers := range []int{2, 8} {
		m, j := render(workers)
		if m != serialM {
			t.Errorf("metrics snapshot differs at workers=%d", workers)
		}
		if j != serialJ {
			t.Errorf("event journal differs at workers=%d", workers)
		}
	}
}

// A failing experiment must surface its ID, its partial output, and
// nothing from later experiments — identically in serial and parallel
// mode.
func TestRunListErrorPath(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "T01", Title: "fine", Paper: "none", Run: func(w io.Writer, cfg Config) error {
			fmt.Fprintln(w, "first output")
			return nil
		}},
		{ID: "T02", Title: "broken", Paper: "none", Run: func(w io.Writer, cfg Config) error {
			fmt.Fprintln(w, "partial output")
			return boom
		}},
		{ID: "T03", Title: "unreached", Paper: "none", Run: func(w io.Writer, cfg Config) error {
			fmt.Fprintln(w, "hidden output")
			return nil
		}},
	}
	var serial bytes.Buffer
	errSerial := runList(&serial, Config{}, exps, 1)
	var par bytes.Buffer
	errPar := runList(&par, Config{}, exps, 4)
	for name, err := range map[string]error{"serial": errSerial, "parallel": errPar} {
		if err == nil {
			t.Fatalf("%s: expected error", name)
		}
		if !errors.Is(err, boom) {
			t.Errorf("%s: error %v does not wrap the cause", name, err)
		}
		if !strings.Contains(err.Error(), "T02") {
			t.Errorf("%s: error %v does not name the failing experiment", name, err)
		}
	}
	if par.String() != serial.String() {
		t.Errorf("error output differs:\nserial: %q\nparallel: %q", serial.String(), par.String())
	}
	out := serial.String()
	if !strings.Contains(out, "partial output") {
		t.Errorf("failing experiment's partial output missing:\n%s", out)
	}
	if strings.Contains(out, "hidden output") {
		t.Errorf("output from after the failure leaked:\n%s", out)
	}
	if !strings.HasSuffix(out, "partial output\n") {
		t.Errorf("output should end at the failure point, got:\n%q", out)
	}
}

// A panicking experiment becomes an error naming the experiment, not a
// crashed run.
func TestRunListPanicBecomesError(t *testing.T) {
	exps := []Experiment{
		{ID: "T10", Title: "panics", Paper: "none", Run: func(w io.Writer, cfg Config) error {
			panic("kaboom")
		}},
	}
	for _, workers := range []int{1, 4} {
		err := runList(io.Discard, Config{}, exps, workers)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !strings.Contains(err.Error(), "T10") || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("workers=%d: error %v missing ID or panic value", workers, err)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default()
	if cfg.Trials < 10000 || cfg.Sites < 3 || cfg.Bound.MaxLen < 5 {
		t.Errorf("default config too small: %+v", cfg)
	}
}

// Determinism: identical configs produce byte-identical output for the
// randomized experiments.
func TestExperimentsDeterministic(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 5000
	for _, id := range []string{"E08", "E09", "E10"} {
		e, _ := Find(id)
		var a, b bytes.Buffer
		if err := e.Run(&a, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := e.Run(&b, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.String() != b.String() {
			t.Errorf("%s output differs across runs with same seed", id)
		}
	}
}

func TestVerdict(t *testing.T) {
	if verdict(true) != "HOLDS" || verdict(false) != "FAILS" {
		t.Errorf("verdict strings wrong")
	}
}
