package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/resilience"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

func init() {
	register(Experiment{
		ID:    "X05",
		Title: "Extension — adaptive degradation: retry/backoff clients tracking fault regimes through the lattice",
		Paper: "Section 3.3 (graceful degradation as movement in the relaxation lattice, made adaptive and audited post hoc)",
		Run:   runResilience,
	})
}

// faultRegime is one MTTF/MTBP operating point of the sweep.
type faultRegime struct {
	name   string
	faults cluster.FaultConfig
}

// runResilience sweeps adaptive clients across fault regimes. Each
// regime runs the same seeded workload on a taxi cluster whose clients
// carry a retry/backoff policy and a degradation controller over the
// ladder Q1Q2 → Q1 → none: repeated unavailability walks a client down
// the ladder, a periodic probe walks it back up once quorums answer
// again. Faults stop mid-run, so every regime also measures recovery:
// by the horizon all clients must be back at the top rung. The
// availability/latency trade-off appears as completion rate versus
// attempts and time spent per submission; the degradation claim (each
// client's ladder floor) is audited post hoc with WeakestAccepting
// over the observed history.
func runResilience(w io.Writer, cfg Config) error {
	opts := cfg.Resilience
	if opts.Policy.MaxAttempts == 0 {
		opts = resilience.DefaultOptions()
	}
	const (
		clients     = 3
		perClient   = 60
		arrivalMean = 0.6
		faultsEnd   = 150.0
		horizon     = 400.0
	)
	regimes := []faultRegime{
		{"calm", cluster.FaultConfig{}},
		{"moderate", cluster.FaultConfig{MTTF: 60, MTTR: 8, MTBP: 150, PartitionDwell: 12}},
		{"harsh", cluster.FaultConfig{MTTF: 15, MTTR: 10, MTBP: 40, PartitionDwell: 15}},
	}
	lat := core.TaxiSimpleLattice()
	u := lat.Universe
	claims := map[string]lattice.Set{
		"Q1Q2": u.All(),
		"Q1":   u.Named(core.ConstraintQ1),
		"none": 0,
	}

	fmt.Fprintf(w, "policy: attempts≤%d budget=%g backoff=%g..%g ×%g jitter=%g; controller: descend@%d ascend@%d probe=%g hedge=%d\n",
		opts.Policy.Attempts(), opts.Policy.Budget, opts.Policy.BaseBackoff, opts.Policy.MaxBackoff,
		opts.Policy.Multiplier, opts.Policy.Jitter,
		opts.Controller.DescendAfter, opts.Controller.AscendAfter,
		opts.Controller.ProbeEvery, opts.Controller.Hedge)
	fmt.Fprintf(w, "workload: %d clients × %d ops, Poisson arrivals (mean %.1f); faults stop at t=%.0f, horizon t=%.0f\n\n",
		clients, perClient, arrivalMean, faultsEnd, horizon)

	t := sim.NewTable("regime", "completed", "failed", "completion", "retries", "mean attempts",
		"mean latency", "p95 latency", "descents", "ascents", "floor")
	type audit struct {
		regime    string
		floor     string
		recovered bool
		weakest   []lattice.Set
		sound     bool
	}
	audits := make([]audit, 0, len(regimes))

	for _, reg := range regimes {
		g := sim.NewRNG(cfg.Seed + int64(len(reg.name))) // distinct, seed-derived stream per regime
		c := cluster.New(cluster.Config{
			Sites:   cfg.Sites,
			Quorums: quorum.TaxiAssignments(cfg.Sites)["Q1Q2"],
			Base:    specs.PriorityQueue(),
			Eval:    quorum.PQEval,
			Respond: cluster.PQResponder,
			Metrics: cfg.Metrics,
			Trace:   cfg.Trace,
		})
		var engine sim.Engine
		ladder := cluster.TaxiLadder(cfg.Sites)
		adaptives := make([]*cluster.AdaptiveClient, clients)
		for i := range adaptives {
			adaptives[i] = c.Adaptive(i%cfg.Sites, ladder, opts, &engine, g.Split())
		}
		faults := cluster.NewFaultProcess(c, &engine, g.Split(), reg.faults)
		faults.Start()
		engine.At(faultsEnd, faults.Stop)

		completed, failed, retries := 0, 0, 0
		var latency, attempts sim.Histogram
		at := 0.0
		for i := 0; i < clients*perClient; i++ {
			at += g.Exp(arrivalMean)
			a := adaptives[i%clients]
			enq := i%3 != 2 // 2:1 enqueue:dequeue keeps the queue non-empty
			val := 1 + g.Intn(9)
			engine.At(at, func() {
				inv := history.DeqInv()
				if enq {
					inv = history.EnqInv(val)
				}
				a.Submit(inv, func(_ history.Op, out resilience.Outcome) {
					if out.Err == nil {
						completed++
					} else {
						failed++
					}
					retries += out.Attempts - 1
					attempts.Observe(float64(out.Attempts))
					latency.Observe(out.Elapsed)
				})
			})
		}
		engine.Run(horizon)

		descents, ascents := 0, 0
		floorIdx := 0
		recovered := true
		for _, a := range adaptives {
			descents += a.Controller().Descents()
			ascents += a.Controller().Ascents()
			if a.Controller().Floor() > floorIdx {
				floorIdx = a.Controller().Floor()
			}
			if a.Current().Name != ladder[0].Name {
				recovered = false
			}
		}
		floor := ladder[floorIdx].Name
		total := completed + failed
		t.AddRow(reg.name, completed, failed,
			fmt.Sprintf("%.3f", float64(completed)/float64(total)),
			retries, fmt.Sprintf("%.2f", attempts.Mean()),
			fmt.Sprintf("%.2f", latency.Mean()), fmt.Sprintf("%.2f", latency.Quantile(0.95)),
			descents, ascents, floor)

		weakest, ok := lat.WeakestAccepting(c.Observed())
		if !ok {
			return fmt.Errorf("regime %s: observed history rejected by the whole lattice", reg.name)
		}
		claimed := claims[floor]
		sound := false
		for _, s := range weakest {
			if claimed.SubsetOf(s) {
				sound = true
			}
		}
		audits = append(audits, audit{reg.name, floor, recovered, weakest, sound})
	}
	t.Render(w)

	fmt.Fprintln(w)
	allRecovered, allSound := true, true
	for _, a := range audits {
		names := make([]string, len(a.weakest))
		for i, s := range a.weakest {
			names[i] = u.Format(s)
		}
		fmt.Fprintf(w, "%-8s floor=%-4s audit: WeakestAccepting=%v claim-sound=%s recovered-to-top=%s\n",
			a.regime, a.floor, names, verdict(a.sound), verdict(a.recovered))
		allRecovered = allRecovered && a.recovered
		allSound = allSound && a.sound
	}
	calm := audits[0]
	fmt.Fprintf(w, "\ncalm regime never leaves the top (floor=%s): %s\n", calm.floor, verdict(calm.floor == "Q1Q2"))
	fmt.Fprintf(w, "every claimed floor accepts its observed history: %s\n", verdict(allSound))
	fmt.Fprintf(w, "all clients back at the top rung after faults heal: %s\n", verdict(allRecovered))
	if !allSound || !allRecovered || calm.floor != "Q1Q2" {
		return fmt.Errorf("adaptive degradation claims failed (sound=%v recovered=%v calm=%s)", allSound, allRecovered, calm.floor)
	}
	return nil
}
