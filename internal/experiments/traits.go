package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/value"
)

func init() {
	register(Experiment{
		ID:    "E01",
		Title: "Bag trait and interfaces",
		Paper: "Figures 2-1, 2-2",
		Run:   runBagTrait,
	})
	register(Experiment{
		ID:    "E02",
		Title: "FIFO queue trait and interfaces",
		Paper: "Figures 2-3, 2-4",
		Run:   runFifoTrait,
	})
	register(Experiment{
		ID:    "E03",
		Title: "Priority queue trait and interfaces",
		Paper: "Figures 3-1, 3-2",
		Run:   runPQTrait,
	})
}

// axiomTable checks each named randomized axiom over trials drawn from
// the seeded generator and renders the results.
func axiomTable(w io.Writer, cfg Config, axioms []struct {
	Name  string
	Check func(g *sim.RNG) bool
}) error {
	trials := cfg.Trials / 100
	if trials < 1000 {
		trials = 1000
	}
	t := sim.NewTable("axiom", "trials", "result")
	for _, ax := range axioms {
		g := sim.NewRNG(cfg.Seed)
		ok := true
		for i := 0; i < trials && ok; i++ {
			ok = ax.Check(g)
		}
		t.AddRow(ax.Name, trials, verdict(ok))
	}
	t.Render(w)
	return nil
}

func randBag(g *sim.RNG) value.Bag {
	b := value.EmptyBag()
	for i, n := 0, g.Intn(8); i < n; i++ {
		b = b.Ins(value.Elem(g.Intn(6)))
	}
	return b
}

func randSeq(g *sim.RNG) value.Seq {
	q := value.EmptySeq()
	for i, n := 0, g.Intn(8); i < n; i++ {
		q = q.Ins(value.Elem(g.Intn(6)))
	}
	return q
}

func runBagTrait(w io.Writer, cfg Config) error {
	err := axiomTable(w, cfg, []struct {
		Name  string
		Check func(g *sim.RNG) bool
	}{
		{"del(emp,e) = emp", func(g *sim.RNG) bool {
			return value.EmptyBag().Del(value.Elem(g.Intn(6))).IsEmp()
		}},
		{"del(ins(b,e),e1) case split", func(g *sim.RNG) bool {
			b, e, e1 := randBag(g), value.Elem(g.Intn(6)), value.Elem(g.Intn(6))
			lhs := b.Ins(e).Del(e1)
			if e == e1 {
				return lhs.Equal(b)
			}
			return lhs.Equal(b.Del(e1).Ins(e))
		}},
		{"isEmp(emp) ∧ ¬isEmp(ins(b,e))", func(g *sim.RNG) bool {
			return value.EmptyBag().IsEmp() && !randBag(g).Ins(0).IsEmp()
		}},
		{"isIn(ins(b,e),e1) = (e=e1) ∨ isIn(b,e1)", func(g *sim.RNG) bool {
			b, e, e1 := randBag(g), value.Elem(g.Intn(6)), value.Elem(g.Intn(6))
			return b.Ins(e).IsIn(e1) == ((e == e1) || b.IsIn(e1))
		}},
	})
	if err != nil {
		return err
	}
	// The interface automaton on the worked equation of Section 2.4.
	worked := value.EmptyBag().Ins(3).Ins(3).Del(3).Equal(value.EmptyBag().Ins(3))
	fmt.Fprintf(w, "del(ins(ins(emp,3),3),3) = ins(emp,3): %s\n", verdict(worked))
	return acceptanceExamples(w, specs.BagAutomaton(), []string{
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)",
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)",
	})
}

func runFifoTrait(w io.Writer, cfg Config) error {
	err := axiomTable(w, cfg, []struct {
		Name  string
		Check func(g *sim.RNG) bool
	}{
		{"first(ins(q,e)) = if isEmp(q) then e else first(q)", func(g *sim.RNG) bool {
			q, e := randSeq(g), value.Elem(g.Intn(6))
			got, ok := q.Ins(e).First()
			if !ok {
				return false
			}
			if q.IsEmp() {
				return got == e
			}
			want, _ := q.First()
			return got == want
		}},
		{"rest(ins(q,e)) = if isEmp(q) then emp else ins(rest(q),e)", func(g *sim.RNG) bool {
			q, e := randSeq(g), value.Elem(g.Intn(6))
			lhs := q.Ins(e).Rest()
			if q.IsEmp() {
				return lhs.IsEmp()
			}
			return lhs.Equal(q.Rest().Ins(e))
		}},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "first(ins(ins(emp,3),3)) = 3: %s\n", verdict(func() bool {
		e, ok := value.EmptySeq().Ins(3).Ins(3).First()
		return ok && e == 3
	}()))
	return acceptanceExamples(w, specs.FIFOQueue(), []string{
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1)",
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)",
	})
}

func runPQTrait(w io.Writer, cfg Config) error {
	err := axiomTable(w, cfg, []struct {
		Name  string
		Check func(g *sim.RNG) bool
	}{
		{"best(ins(q,e)) case split", func(g *sim.RNG) bool {
			q, e := randBag(g), value.Elem(g.Intn(6))
			got, ok := q.Ins(e).Best()
			if !ok {
				return false
			}
			if q.IsEmp() {
				return got == e
			}
			prev, _ := q.Best()
			if e > prev {
				return got == e
			}
			return got == prev
		}},
	})
	if err != nil {
		return err
	}
	return acceptanceExamples(w, specs.PriorityQueue(), []string{
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(3)",
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(1)",
	})
}

// acceptanceExamples renders an acceptance table for illustrative
// histories.
func acceptanceExamples(w io.Writer, a automaton.Automaton, examples []string) error {
	t := sim.NewTable("history", "accepted by "+a.Name())
	for _, s := range examples {
		h, err := history.Parse(s)
		if err != nil {
			return err
		}
		t.AddRow(h.String(), automaton.Accepts(a, h))
	}
	t.Render(w)
	return nil
}
