package experiments

import (
	"errors"
	"fmt"
	"io"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/txn"
	"relaxlattice/internal/value"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Semiqueue relaxation lattice (Figure 4-2) and the optimistic spooler",
		Paper: "Section 4.2.1, Figures 4-1, 4-2",
		Run:   runSemiqueue,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Stuttering queue, the pessimistic spooler, and the combined SSqueue lattice",
		Paper: "Section 4.2.2, Figure 4-3",
		Run:   runStuttering,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Concurrency bought by relaxation: spooler throughput by strategy",
		Paper: "Section 4.2 (motivation)",
		Run:   runThroughput,
	})
}

func runSemiqueue(w io.Writer, cfg Config) error {
	lat := core.SemiqueueLattice(3)
	fmt.Fprintln(w, "Figure 4-2 — relaxation lattice for a three-item semiqueue:")
	t := sim.NewTable("constraints", "behavior")
	for _, lv := range lat.Levels() {
		var cells string
		for i, s := range lv.Sets {
			if i > 0 {
				cells += ", "
			}
			cells += lat.Universe.Format(s)
		}
		t.AddRow(cells, lv.Behavior)
	}
	t.Render(w)

	// The optimistic runtime lands exactly on Atomic(Semiqueue_k) for
	// the k it observed.
	fmt.Fprintln(w, "\noptimistic spooler runs vs Atomic(Semiqueue_k):")
	rt := sim.NewTable("concurrent dequeuers k", "schedule ∈ L(Atomic(Semiqueue_k))", "∈ L(Atomic(Semiqueue_k-1))")
	for k := 1; k <= 4; k++ {
		s, observed := spoolCollision(cfg, txn.Optimistic, k)
		if observed != k {
			return fmt.Errorf("expected %d concurrent dequeuers, observed %d", k, observed)
		}
		inK := txn.HybridAtomic(s, specs.Semiqueue(k))
		inPrev := "n/a"
		if k > 1 {
			inPrev = fmt.Sprintf("%v", txn.HybridAtomic(s, specs.Semiqueue(k-1)))
		}
		rt.AddRow(k, inK, inPrev)
	}
	rt.Render(w)
	fmt.Fprintln(w, "k=1 is FIFO; each extra concurrent dequeuer steps one level down the lattice.")
	return nil
}

// spoolCollision produces a maximal collision: k dequeuers take k
// distinct items concurrently, then commit in reverse order. The fixed
// call sequence makes both the metrics and the journal deterministic.
func spoolCollision(cfg Config, strategy txn.Strategy, k int) (txn.Schedule, int) {
	q := txn.NewQueue(strategy)
	q.Observe(cfg.Metrics, cfg.Trace)
	for i := 1; i <= k+1; i++ {
		t := q.Begin()
		mustOK(q.Enq(t, value.Elem(i)))
		mustOK(q.Commit(t))
	}
	txs := make([]txn.ID, k)
	for i := range txs {
		txs[i] = q.Begin()
		if _, err := q.Deq(txs[i]); err != nil {
			panic(err)
		}
	}
	for i := len(txs) - 1; i >= 0; i-- {
		mustOK(q.Commit(txs[i]))
	}
	return q.Schedule(), q.MaxConcurrentDequeuers()
}

func runStuttering(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "pessimistic spooler runs vs Atomic(Stuttering_j):")
	t := sim.NewTable("concurrent dequeuers j", "schedule ∈ L(Atomic(Stuttering_j))", "∈ L(Atomic(Stuttering_j-1))")
	for j := 1; j <= 4; j++ {
		s, observed := spoolCollision(cfg, txn.Pessimistic, j)
		if observed != j {
			return fmt.Errorf("expected %d concurrent dequeuers, observed %d", j, observed)
		}
		inJ := txn.HybridAtomic(s, specs.StutteringQueue(j))
		inPrev := "n/a"
		if j > 1 {
			inPrev = fmt.Sprintf("%v", txn.HybridAtomic(s, specs.StutteringQueue(j-1)))
		}
		t.AddRow(j, inJ, inPrev)
	}
	t.Render(w)

	// A mixed population lands in the combined SSqueue lattice.
	fmt.Fprintln(w, "\nmixed strategies land in the combined SSqueue_jk lattice (Section 4.2.2):")
	s := mixedCollision()
	mt := sim.NewTable("behavior", "schedule accepted")
	mt.AddRow("Atomic(FIFO)", txn.HybridAtomic(s, specs.FIFOQueue()))
	mt.AddRow("Atomic(Semiqueue_2)", txn.HybridAtomic(s, specs.Semiqueue(2)))
	mt.AddRow("Atomic(Stuttering_2)", txn.HybridAtomic(s, specs.StutteringQueue(2)))
	mt.AddRow("Atomic(SSqueue_22)", txn.HybridAtomic(s, specs.SSQueue(2, 2)))
	mt.Render(w)
	fmt.Fprintln(w, "SSqueue_11 = FIFO at the top of the combined lattice.")
	return nil
}

// mixedCollision interleaves an optimistic-style skip with a
// pessimistic-style stutter in one schedule: the result needs both
// relaxations at once.
func mixedCollision() txn.Schedule {
	// Build by hand: items 1,2 committed; T2 deqs 1, T3 deqs 1 again
	// (stutter) and T4 deqs 2 (skip); commit order T4, T2, T3.
	var s txn.Schedule
	s = s.Append(
		txn.Step(1, history.Enq(1)), txn.Step(1, history.Enq(2)), txn.Commit(1),
		txn.Step(2, history.DeqOk(1)),
		txn.Step(3, history.DeqOk(1)),
		txn.Step(4, history.DeqOk(2)),
		txn.Commit(4), txn.Commit(2), txn.Commit(3),
	)
	return s
}

func runThroughput(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "deterministic round-based simulation: k printer controllers repeatedly")
	fmt.Fprintln(w, "dequeue-print-commit; a blocked controller loses its round (FIFO serializes;")
	fmt.Fprintln(w, "relaxation buys concurrency):")
	t := sim.NewTable("dequeuers", "blocking ops/round", "optimistic ops/round", "pessimistic ops/round")
	for _, k := range []int{1, 2, 4, 8} {
		row := []interface{}{k}
		for _, strategy := range []txn.Strategy{txn.Blocking, txn.Optimistic, txn.Pessimistic} {
			row = append(row, spoolThroughput(cfg, strategy, k, 50))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	fmt.Fprintln(w, "blocking stays near 1 op/round regardless of k; relaxed strategies scale with k.")
	return nil
}

// spoolThroughput runs rounds of k concurrent dequeuing transactions;
// each transaction holds its item for the whole round (printing) and
// commits at the round's end. Returns completed dequeues per round.
// Metrics only — journaling thousands of rounds would drown the trace.
func spoolThroughput(cfg Config, strategy txn.Strategy, k, rounds int) float64 {
	q := txn.NewQueue(strategy)
	q.Observe(cfg.Metrics, nil)
	feeder := q.Begin()
	next := 1
	refill := func(n int) {
		for i := 0; i < n; i++ {
			mustOK(q.Enq(feeder, value.Elem(next)))
			next++
		}
	}
	refill(k * rounds)
	mustOK(q.Commit(feeder))
	completed := 0
	for r := 0; r < rounds; r++ {
		var holders []txn.ID
		for c := 0; c < k; c++ {
			tx := q.Begin()
			if _, err := q.Deq(tx); err != nil {
				if errors.Is(err, txn.ErrBlocked) || errors.Is(err, txn.ErrEmpty) {
					mustOK(q.AbortTxn(tx)) // lost the round
					continue
				}
				panic(err)
			}
			holders = append(holders, tx)
		}
		for _, tx := range holders {
			mustOK(q.Commit(tx))
			completed++
		}
	}
	return float64(completed) / float64(rounds)
}
