package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

func init() {
	register(Experiment{
		ID:    "X01",
		Title: "Extension — the FIFO family: Section 3.1's replicated queue through the Section 3.3 program",
		Paper: "Section 3.1 (motivating example), by analogy with Theorem 4",
		Run:   runFIFOFamily,
	})
}

// runFIFOFamily carries the paper's motivating replicated FIFO queue
// through the full relaxation-lattice treatment the paper gives the
// priority queue, including the Theorem 4 analog
// L(QCA(FifoQueue, Q₁, η_fifo)) = L(MFQueue).
func runFIFOFamily(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "lattice element equivalences (bounded model checking):")
	for _, r := range core.CheckFIFOFamily(cfg.Bound) {
		fmt.Fprintf(w, "  %-28s L(%s) = L(%s): %s\n", r.Name+":", r.LHS, r.RHS, verdict(r.Holds()))
		if !r.Holds() {
			fmt.Fprintf(w, "    counterexamples: onlyLHS=%v onlyRHS=%v\n", r.Compare.OnlyA, r.Compare.OnlyB)
		}
	}
	if err := claimTable(w, core.CheckFIFOTheorem(cfg.Bound)); err != nil {
		return err
	}
	depLen := cfg.Bound.MaxLen - 2
	if depLen < 3 {
		depLen = 3
	}
	alphabet := history.QueueAlphabet(cfg.Bound.MaxElem)
	okQ, _ := quorum.IsSerialDependency(specs.FIFOQueue(), quorum.Q1().Union(quorum.Q2()), alphabet, depLen)
	fmt.Fprintf(w, "{Q1,Q2} is a serial dependency relation for FifoQueue: %s\n", verdict(okQ))
	okM, _ := quorum.IsSerialDependency(specs.MultiFIFOQueue(), quorum.Q1(), alphabet, depLen)
	fmt.Fprintf(w, "Q1 is a serial dependency relation for MFQueue (lemma): %s\n", verdict(okM))
	return nil
}
