package experiments

import (
	"fmt"
	"io"
	"math"

	"relaxlattice/internal/core"
	"relaxlattice/internal/env"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "X02",
		Title: "Extension — probabilistic lattice occupancy: the Section 2.3 interface between functional and probabilistic models",
		Paper: "Section 2.3 (last paragraph), Section 3.3 (probabilistic example)",
		Run:   runOccupancy,
	})
}

// runOccupancy samples, per operation, which constraints the
// environment satisfies (Q₁ w.p. 0.9, Q₂ w.p. 0.8, independent) and
// tallies how often each lattice element — hence each behavior — is
// selected. The measured occupancy must match the analytic product
// probabilities, demonstrating the paper's claim that the functional
// lattice composes cleanly with an independent probabilistic model.
func runOccupancy(w io.Writer, cfg Config) error {
	u := core.TaxiUniverse()
	lat := core.TaxiSimpleLattice()
	p := env.NewProb(u, map[string]float64{
		core.ConstraintQ1: 0.9,
		core.ConstraintQ2: 0.8,
	}, cfg.Seed)
	trials := cfg.Trials
	if trials < 1000 {
		trials = 1000
	}
	counts := map[lattice.Set]int{}
	for i := 0; i < trials; i++ {
		counts[p.Sample()]++
	}
	t := sim.NewTable("constraints sampled", "behavior selected", "analytic", "measured", "abs error")
	maxErr := 0.0
	for _, s := range u.SubsetsBySize() {
		a, _ := lat.Phi(s)
		analytic := p.PSet(s)
		measured := float64(counts[s]) / float64(trials)
		e := math.Abs(analytic - measured)
		if e > maxErr {
			maxErr = e
		}
		t.AddRow(u.Format(s), a.Name(), analytic, measured, e)
	}
	t.Render(w)
	fmt.Fprintf(w, "trials=%d max abs error=%.5f: %s\n", trials, maxErr, verdict(maxErr < 0.01))
	fmt.Fprintf(w, "P(preferred behavior per op) = P(Q1)·P(Q2) = %.2f; availability of the\n", p.PAtLeast(u.All()))
	fmt.Fprintln(w, "preferred behavior is a pure product — the functional lattice never needs")
	fmt.Fprintln(w, "to know the distribution, and the distribution never needs the automata.")
	return nil
}
