package experiments

import (
	"fmt"
	"io"
	"math"

	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E08",
		Title: "Probabilistic model: P(Deq misses the top-n priority) = 0.1^n",
		Paper: "Section 3.3 (end): Q1 holds w.p. 0.9, Q2 certain",
		Run:   runMissTopN,
	})
}

// runMissTopN reproduces the paper's worked probabilistic example: with
// each queue operation satisfying Q₁ with independent probability 0.9
// (and Deq certain to satisfy Q₂), the likelihood a Deq fails to return
// an item within the top n priorities is 0.1ⁿ. Operationally: each
// pending request's enqueue is visible to the dequeuer's view with
// probability 0.9; the dequeuer returns the best visible request; it
// "misses the top n" exactly when all n best requests are invisible.
func runMissTopN(w io.Writer, cfg Config) error {
	const pHold = 0.9
	const pending = 12 // pending requests, distinct priorities
	g := sim.NewRNG(cfg.Seed)
	trials := cfg.Trials
	if trials < 1000 {
		trials = 1000
	}
	// missAtLeast[n] counts trials whose returned rank is worse than n
	// (rank 1 = best).
	missAtLeast := make([]int, 5)
	served := 0
	for i := 0; i < trials; i++ {
		// Visibility of each request, best-first.
		rank := 0 // 0 = nothing visible
		for r := 1; r <= pending; r++ {
			if g.Bool(pHold) {
				rank = r
				break
			}
		}
		if rank != 0 {
			served++
		}
		for n := 1; n <= 4; n++ {
			// Missing the top n means none of the n best was visible:
			// the view returned a worse request or nothing at all.
			if rank == 0 || rank > n {
				missAtLeast[n]++
			}
		}
	}
	t := sim.NewTable("n", "analytic 0.1^n", "measured", "abs error")
	maxErr := 0.0
	for n := 1; n <= 4; n++ {
		analytic := math.Pow(0.1, float64(n))
		measured := float64(missAtLeast[n]) / float64(trials)
		e := math.Abs(analytic - measured)
		if e > maxErr {
			maxErr = e
		}
		t.AddRow(n, analytic, measured, e)
	}
	t.Render(w)
	fmt.Fprintf(w, "trials=%d served=%d max abs error=%.5f: %s\n",
		trials, served, maxErr, verdict(maxErr < 0.01))
	return nil
}
