package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Seed-pinned acceptance check for the adaptive-degradation sweep: at
// the default seed the harsh regime demonstrably degrades to the
// lattice bottom, every regime recovers to the top rung after faults
// stop, and the post-hoc WeakestAccepting audit agrees with every
// claimed floor. Any behavioral drift in the controller, retrier,
// fault process, or cluster protocol shows up here.
func TestResilienceSweepSeedPinned(t *testing.T) {
	e, ok := Find("X05")
	if !ok {
		t.Fatal("X05 not registered")
	}
	var buf bytes.Buffer
	cfg := Default()
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatalf("X05: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, s := range []string{
		"calm regime never leaves the top (floor=Q1Q2): HOLDS",
		"every claimed floor accepts its observed history: HOLDS",
		"all clients back at the top rung after faults heal: HOLDS",
		"harsh    floor=none",
		"recovered-to-top=HOLDS",
	} {
		if !strings.Contains(out, s) {
			t.Errorf("output missing %q:\n%s", s, out)
		}
	}
	// Same seed, same bytes: the sweep is deterministic.
	var again bytes.Buffer
	if err := e.Run(&again, cfg); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("X05 output differs between identical runs")
	}
}
