package experiments

import (
	"bytes"
	"fmt"
	"io"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "X07",
		Title: "Extension — per-rung critical-path attribution of the traced quorum protocol",
		Paper: "Section 3.4 (the latency cost of constraints, here measured on the protocol's own critical path instead of a closed-form order statistic)",
		Run:   runTracePath,
	})
}

// runTracePath sweeps the cluster soak across every workload generator
// with the causal span tracer attached, rebuilds each run's
// happens-before DAG, and attributes the logical-time critical path to
// degradation rungs. X04 prices a quorum wait analytically; this
// experiment prices it empirically, from the spans the protocol itself
// emits: each root operation carries the ladder rung it executed
// under, so the per-rung rows say how much of the run's critical path
// each rung's operations accounted for. Because span IDs and
// timestamps are logical, the traced stream — and hence the whole
// attribution — is a pure function of the seed; the final check
// replays one workload and demands a byte-identical stream.
func runTracePath(w io.Writer, cfg Config) error {
	ops, clients := cfg.SoakOps, cfg.SoakClients
	if ops <= 0 {
		ops = 800
	}
	if clients <= 0 {
		clients = 40
	}
	faults := cluster.FaultConfig{MTTF: 60, MTTR: 8, MTBP: 150, PartitionDwell: 12}

	fmt.Fprintf(w, "workloads: %d clients × %d ops per run; spans on the logical clock, critical path per degradation rung\n\n",
		clients, ops)

	t := sim.NewTable("workload", "rung", "spans", "total", "critical", "share")

	traced := func(kind relaxcheck.Kind) ([]byte, trace.Analysis, error) {
		tr := trace.NewTracer("x07/"+kind.String(), nil)
		scfg := relaxcheck.ClusterSoakConfig{
			Workload: relaxcheck.Workload{Kind: kind, Clients: clients, Ops: ops},
			Seed:     cfg.Seed,
			Sites:    cfg.Sites,
			Metrics:  cfg.Metrics,
			Trace:    cfg.Trace,
			Spans:    tr,
		}
		if kind != relaxcheck.FaultCorrelated {
			scfg.Faults = faults
		}
		if _, err := relaxcheck.RunClusterSoak(scfg); err != nil {
			return nil, trace.Analysis{}, fmt.Errorf("cluster soak %s: %w", kind, err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			return nil, trace.Analysis{}, err
		}
		spans, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, trace.Analysis{}, err
		}
		return buf.Bytes(), trace.Analyze(spans), nil
	}

	sumsMatch, attributed := true, true
	var firstStream []byte
	for _, kind := range relaxcheck.Kinds() {
		stream, an, err := traced(kind)
		if err != nil {
			return err
		}
		if kind == relaxcheck.Uniform {
			firstStream = stream
		}
		var sum int64
		for _, r := range an.ByRung {
			sum += r.Critical
			if r.Rung == "-" && r.Critical > 0 {
				attributed = false
			}
			share := "0%"
			if an.Critical > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(r.Critical)/float64(an.Critical))
			}
			t.AddRow(kind.String(), r.Rung, r.Count, r.Total, r.Critical, share)
		}
		sumsMatch = sumsMatch && sum == an.Critical && an.Orphans == 0
	}
	t.Render(w)

	// Determinism: the traced stream is a pure function of the seed.
	replay, _, err := traced(relaxcheck.Uniform)
	if err != nil {
		return err
	}
	identical := bytes.Equal(firstStream, replay)

	fmt.Fprintln(w)
	fmt.Fprintf(w, "per-rung attribution sums exactly to each workload's critical path (no orphans): %s\n", verdict(sumsMatch))
	fmt.Fprintf(w, "all critical-path time carries a rung label: %s\n", verdict(attributed))
	fmt.Fprintf(w, "replaying the uniform workload reproduces the span stream byte-for-byte: %s\n", verdict(identical))
	if !sumsMatch || !identical {
		return fmt.Errorf("critical-path attribution failed (sums=%v identical=%v)", sumsMatch, identical)
	}
	return nil
}
