// Package experiments regenerates every figure and formal claim of the
// paper as a runnable experiment: the trait/interface figures as
// executable checks, Theorem 4 and its companions as bounded language-
// equivalence tables, the probabilistic example as a Monte-Carlo run,
// the availability and latency trade-offs as simulations over the
// cluster substrate, and Figures 4-2 and 5-1 as regenerated tables.
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-vs-measured output.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"

	"relaxlattice/internal/core"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/resilience"
)

// Config parameterizes experiment runs. The zero value is not useful;
// start from Default.
type Config struct {
	// Seed drives all randomness; same seed, same output.
	Seed int64
	// Bound is the history bound for language comparisons.
	Bound core.Bound
	// Trials is the Monte-Carlo sample count.
	Trials int
	// Sites is the replica count for cluster simulations.
	Sites int
	// Metrics, when set, collects the observability counters of every
	// substrate an experiment touches (cluster, txn runtime). The runner
	// hands each experiment a scratch registry and absorbs them in ID
	// order, so the final snapshot is identical for serial and parallel
	// runs at any worker count.
	Metrics *obs.Registry
	// Trace, when set, receives each experiment's event journal,
	// appended strictly in ID order behind an "experiment" marker event.
	Trace *obs.Recorder
	// Resilience configures the retry/backoff policy and adaptive
	// degradation controller of the X05 sweep (relaxctl's -retries,
	// -budget, -backoff, -descend-after, -ascend-after, -probe-every,
	// and -hedge flags feed this). A zero Policy falls back to
	// resilience.DefaultOptions.
	Resilience resilience.Options
	// SoakOps and SoakClients size the X06 online-checking soak sweep
	// (relaxctl's -soak-ops and -soak-clients flags). Non-positive
	// values take the X06 defaults.
	SoakOps, SoakClients int
}

// Default returns the configuration used for EXPERIMENTS.md. The
// history bound of 8 is affordable because language comparisons run on
// the memoized powerset engine (automaton/engine.go), whose work grows
// with the number of state-set classes per depth rather than the number
// of histories.
func Default() Config {
	return Config{
		Seed:        1987, // the paper's year; any seed works
		Bound:       core.Bound{MaxElem: 2, MaxLen: 8},
		Trials:      200000,
		Sites:       5,
		Resilience:  resilience.DefaultOptions(),
		SoakOps:     800,
		SoakClients: 40,
	}
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E04".
	ID string
	// Title summarizes the artifact.
	Title string
	// Paper cites the figure/section reproduced.
	Paper string
	// Run writes the regenerated table(s) to w.
	Run func(w io.Writer, cfg Config) error
}

var registry = map[string]Experiment{}

// mustOK panics on errors from workload-construction calls whose
// failure would mean the harness itself is broken (enqueues into fresh
// queues, commits of live transactions, and the like).
func mustOK(err error) {
	if err != nil {
		panic(err)
	}
}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll runs every experiment serially in ID order, writing a header
// per experiment and stopping at the first failure.
func RunAll(w io.Writer, cfg Config) error {
	return runList(w, cfg, All(), 1)
}

// RunAllParallel runs every experiment concurrently on up to workers
// goroutines (GOMAXPROCS when workers <= 0), with output byte-identical
// to RunAll: each experiment writes into its own buffer, and buffers are
// emitted strictly in ID order. On failure it emits the failing
// experiment's partial output, reports its ID in the error, and
// discards the output of everything after it — exactly what the serial
// run would have shown.
func RunAllParallel(w io.Writer, cfg Config, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return runList(w, cfg, All(), workers)
}

// expResult is one experiment's buffered output. done is closed when
// buf and err are final.
type expResult struct {
	buf     bytes.Buffer
	err     error
	scratch Config // per-experiment observation sinks
	done    chan struct{}
}

// scratchConfig gives one experiment its own observation sinks (when
// the parent has any), so concurrent experiments never interleave
// journals. The scratch sinks are merged back by absorbScratch.
func scratchConfig(cfg Config) Config {
	scratch := cfg
	if cfg.Metrics != nil {
		scratch.Metrics = obs.NewRegistry()
	}
	if cfg.Trace != nil {
		scratch.Trace = obs.NewRecorder()
	}
	return scratch
}

// absorbScratch merges one experiment's scratch sinks into the parent
// config. Called strictly in ID order (serial and parallel alike), so
// metric totals and journal bytes are identical at any worker count.
func absorbScratch(cfg, scratch Config, idx int, e Experiment) {
	if cfg.Metrics != nil {
		cfg.Metrics.Absorb(scratch.Metrics)
	}
	if cfg.Trace != nil {
		cfg.Trace.Record(int64(idx), "experiment", obs.KV{K: "id", V: e.ID})
		cfg.Trace.Append(scratch.Trace)
	}
}

func runList(w io.Writer, cfg Config, exps []Experiment, workers int) error {
	if workers <= 1 {
		for i, e := range exps {
			fmt.Fprintf(w, "== %s: %s (%s) ==\n", e.ID, e.Title, e.Paper)
			scratch := scratchConfig(cfg)
			err := runExperiment(w, scratch, e)
			absorbScratch(cfg, scratch, i, e)
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", e.ID, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	results := make([]*expResult, len(exps))
	for i := range results {
		results[i] = &expResult{done: make(chan struct{})}
	}
	sem := make(chan struct{}, workers)
	for i, e := range exps {
		results[i].scratch = scratchConfig(cfg)
		go func(r *expResult, e Experiment) {
			sem <- struct{}{}
			defer func() { <-sem }()
			defer close(r.done)
			fmt.Fprintf(&r.buf, "== %s: %s (%s) ==\n", e.ID, e.Title, e.Paper)
			r.err = runExperiment(&r.buf, r.scratch, e)
			if r.err == nil {
				fmt.Fprintln(&r.buf)
			}
		}(results[i], e)
	}
	for i, e := range exps {
		r := results[i]
		<-r.done
		if _, err := w.Write(r.buf.Bytes()); err != nil {
			return err
		}
		// Merge before the error check: the failing experiment's metrics
		// are part of its partial output, exactly as in a serial run.
		absorbScratch(cfg, r.scratch, i, e)
		if r.err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, r.err)
		}
	}
	return nil
}

// runExperiment runs one experiment, converting panics into errors so a
// failing experiment reports its ID instead of taking down the whole
// run.
func runExperiment(w io.Writer, cfg Config, e Experiment) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return e.Run(w, cfg)
}

// verdict renders a pass/fail marker.
func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "FAILS"
}
