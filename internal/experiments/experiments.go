// Package experiments regenerates every figure and formal claim of the
// paper as a runnable experiment: the trait/interface figures as
// executable checks, Theorem 4 and its companions as bounded language-
// equivalence tables, the probabilistic example as a Monte-Carlo run,
// the availability and latency trade-offs as simulations over the
// cluster substrate, and Figures 4-2 and 5-1 as regenerated tables.
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-vs-measured output.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"relaxlattice/internal/core"
)

// Config parameterizes experiment runs. The zero value is not useful;
// start from Default.
type Config struct {
	// Seed drives all randomness; same seed, same output.
	Seed int64
	// Bound is the history bound for language comparisons.
	Bound core.Bound
	// Trials is the Monte-Carlo sample count.
	Trials int
	// Sites is the replica count for cluster simulations.
	Sites int
}

// Default returns the configuration used for EXPERIMENTS.md.
func Default() Config {
	return Config{
		Seed:   1987, // the paper's year; any seed works
		Bound:  core.Bound{MaxElem: 2, MaxLen: 6},
		Trials: 200000,
		Sites:  5,
	}
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E04".
	ID string
	// Title summarizes the artifact.
	Title string
	// Paper cites the figure/section reproduced.
	Paper string
	// Run writes the regenerated table(s) to w.
	Run func(w io.Writer, cfg Config) error
}

var registry = map[string]Experiment{}

// mustOK panics on errors from workload-construction calls whose
// failure would mean the harness itself is broken (enqueues into fresh
// queues, commits of live transactions, and the like).
func mustOK(err error) {
	if err != nil {
		panic(err)
	}
}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll runs every experiment, writing a header per experiment.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All() {
		fmt.Fprintf(w, "== %s: %s (%s) ==\n", e.ID, e.Title, e.Paper)
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// verdict renders a pass/fail marker.
func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "FAILS"
}
