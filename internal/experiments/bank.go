package experiments

import (
	"fmt"
	"io"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Replicated bank account: premature debits fade with propagation; A2 keeps the balance non-negative",
		Paper: "Section 3.4",
		Run:   runBank,
	})
}

// bankCluster builds the ATM cluster of Section 3.4: credits complete
// at a single site (their final quorum grows asynchronously); debits
// need initial and final quorums of debitQuorum sites. Quorum and
// fault counters always land in cfg.Metrics (commutative, so the
// Monte-Carlo sweeps stay deterministic); episode journaling is opt-in
// per call site because the sweeps would flood it.
func bankCluster(cfg Config, debitQuorum int, trace *obs.Recorder) *cluster.Cluster {
	votes := quorum.NewVoting(onesWeights(cfg.Sites), map[string]quorum.OpQuorums{
		history.NameCredit: {Initial: 1, Final: 1},
		history.NameDebit:  {Initial: debitQuorum, Final: debitQuorum},
	})
	return cluster.New(cluster.Config{
		Sites:   cfg.Sites,
		Quorums: votes,
		Base:    specs.BankAccount(),
		Fold:    quorum.AccountFold(),
		Respond: cluster.AccountResponder,
		Metrics: cfg.Metrics,
		Trace:   trace,
	})
}

// quorumScope partitions the network so the client at home reaches
// exactly the given site group — modeling an operation that consults
// precisely its quorum.
func quorumScope(c *cluster.Cluster, group []int) {
	c.Partition(group)
}

// randomMajority returns a random site group of the given size
// containing home.
func randomMajority(g *sim.RNG, home, sites, size int) []int {
	group := []int{home}
	perm := g.Perm(sites)
	for _, s := range perm {
		if len(group) == size {
			break
		}
		if s != home {
			group = append(group, s)
		}
	}
	return group
}

// bankRun simulates the ATM workload and returns the spurious-bounce
// rate among debits and the minimum true balance observed. With keepA2,
// debits consult a random majority (any two intersect); with A2
// relaxed, each debit consults only its home site. The true balance is
// tracked incrementally from the completed operations.
func bankRun(cfg Config, seed int64, meanDelay float64, keepA2 bool) (spuriousRate float64, minBalance int) {
	debitQuorum := cfg.Sites/2 + 1
	if !keepA2 {
		debitQuorum = 1
	}
	c := bankCluster(cfg, debitQuorum, nil)
	g := sim.NewRNG(seed)
	var engine sim.Engine
	var spurious, debits, balance int

	// Credit inflow and debit outflow are balanced so the true balance
	// hovers near zero and most debits genuinely depend on recent
	// credits — the regime where propagation delay matters.
	ops := cfg.Trials / 100
	if ops < 400 {
		ops = 400
	}
	at := 0.0
	for i := 0; i < ops; i++ {
		at += g.Exp(1.0) // Poisson arrivals
		site := g.Intn(cfg.Sites)
		// Credits dominate; each debit also propagates every credit its
		// majority view saw, so debits are kept rare to leave credits
		// at risk for a while.
		if g.Bool(0.7) {
			amount := 1 + g.Intn(3)
			engine.At(at, func() {
				// The ATM announces success as soon as one update
				// completes: the credit lands at the home site only.
				quorumScope(c, []int{site})
				cl := c.Client(site)
				cl.Degrade = true
				if _, err := cl.Execute(history.Invocation{Name: history.NameCredit, Args: []int{amount}}); err != nil {
					return
				}
				balance += amount
				// Background propagation after the configured delay.
				engine.After(g.Exp(meanDelay), func() {
					c.Heal()
					c.PropagateFrom(site)
				})
			})
		} else {
			amount := 3 + g.Intn(4)
			engine.At(at, func() {
				group := randomMajority(g, site, cfg.Sites, debitQuorum)
				quorumScope(c, group)
				cl := c.Client(site)
				op, err := cl.Execute(history.Invocation{Name: history.NameDebit, Args: []int{amount}})
				if err != nil {
					return
				}
				debits++
				if op.Term == history.Over {
					if amount <= balance {
						spurious++ // the true balance could have covered it
					}
				} else {
					balance -= amount
					if balance < minBalance {
						minBalance = balance
					}
				}
			})
		}
	}
	engine.Run(at + 100*meanDelay)
	if debits == 0 {
		return 0, minBalance
	}
	return float64(spurious) / float64(debits), minBalance
}

// bankSweep averages bankRun over several seeds.
func bankSweep(cfg Config, meanDelay float64, keepA2 bool, seeds int) (avgRate float64, minBalance int) {
	total := 0.0
	for s := 0; s < seeds; s++ {
		rate, minBal := bankRun(cfg, cfg.Seed+int64(s), meanDelay, keepA2)
		total += rate
		if minBal < minBalance {
			minBalance = minBal
		}
	}
	return total / float64(seeds), minBalance
}

func runBank(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "A2 kept (debit quorums are majorities): spurious bounces fade as propagation accelerates")
	t := sim.NewTable("mean propagation delay", "spurious bounce rate", "min true balance")
	var rates []float64
	for _, delay := range []float64{32, 8, 2, 0.5} {
		rate, minBal := bankSweep(cfg, delay, true, 5)
		rates = append(rates, rate)
		t.AddRow(delay, rate, minBal)
		if minBal < 0 {
			t.Render(w)
			return fmt.Errorf("invariant violated: balance went negative with A2 held")
		}
	}
	t.Render(w)
	falling := rates[0] > rates[len(rates)-1]
	fmt.Fprintf(w, "spurious bounce rate falls with faster propagation: %s\n", verdict(falling))
	fmt.Fprintf(w, "balance never negative while A2 holds: %s\n\n", verdict(true))

	fmt.Fprintln(w, "ablation — A2 relaxed (debits consult a single site): overdrafts appear")
	overdraft := false
	for _, seed := range []int64{cfg.Seed, cfg.Seed + 1, cfg.Seed + 2} {
		if _, minBal := bankRun(cfg, seed, 4, false); minBal < 0 {
			overdraft = true
			break
		}
	}
	fmt.Fprintf(w, "overdraft observed with A2 relaxed: %s (why the bank's lattice is a sublattice)\n", verdict(overdraft))
	fmt.Fprintf(w, "degraded histories stay inside SpuriousAccount while A2 holds: %s\n", verdict(bankHistoriesInSpurious(cfg, cfg.Seed+7)))
	return nil
}

// bankHistoriesInSpurious replays a small A2-kept workload and checks
// the observed history against the lattice's degraded behavior
// automaton.
func bankHistoriesInSpurious(cfg Config, seed int64) bool {
	c := bankCluster(cfg, cfg.Sites/2+1, cfg.Trace)
	g := sim.NewRNG(seed)
	for i := 0; i < 40; i++ {
		site := g.Intn(cfg.Sites)
		if g.Bool(0.5) {
			quorumScope(c, []int{site})
			cl := c.Client(site)
			cl.Degrade = true
			//lint:ignore err-drop degraded executions may legitimately fail; the audit consumes only the observed history
			_, _ = cl.Execute(history.Invocation{Name: history.NameCredit, Args: []int{1 + g.Intn(4)}})
			if g.Bool(0.4) {
				c.Heal()
				c.PropagateFrom(site)
			}
		} else {
			quorumScope(c, randomMajority(g, site, cfg.Sites, cfg.Sites/2+1))
			cl := c.Client(site)
			//lint:ignore err-drop a bounced or unavailable debit is part of the workload being audited
			_, _ = cl.Execute(history.Invocation{Name: history.NameDebit, Args: []int{1 + g.Intn(3)}})
		}
	}
	return automaton.Accepts(specs.SpuriousAccount(), c.Observed())
}
