// Package env implements the environment model of Section 2.3: the
// environment automaton ⟨2^C, c₀, EVENT, δ_E⟩ whose state is the set of
// constraints currently satisfied, the combined automaton that
// interleaves environment events with object operations, and the
// probabilistic environment models the paper interfaces to (Section 2.3
// last paragraph, and the worked example at the end of Section 3.3).
package env

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/value"
)

// Event is an environment event: a site crash, a communication failure,
// a recovery, a premature debit, a transaction commit — anything that
// changes which constraints hold. Events may coincide with object
// operations (Sections 3.4, 4.2); Matches reports whether an operation
// execution is also this event.
type Event struct {
	// Name identifies the event, e.g. "crash(S1)".
	Name string
	// Matches reports whether op is an occurrence of this event. A nil
	// Matches means the event is disjoint from the object's operations
	// (as in the replicated priority queue of Section 3.3).
	Matches func(op history.Op) bool
}

// Environment is the environment automaton: a deterministic transition
// system over constraint sets.
type Environment struct {
	// Universe is the constraint universe C shared with the relaxation
	// lattice.
	Universe *lattice.Universe
	// Init is c₀, the initial constraint state.
	Init lattice.Set
	// Events is the input alphabet EVENT.
	Events []Event
	// Delta is δ_E: 2^C × EVENT → 2^C. Unlike object automata it maps to
	// a single state.
	Delta func(c lattice.Set, e Event) lattice.Set
}

// Apply runs one event through δ_E.
func (env *Environment) Apply(c lattice.Set, e Event) lattice.Set {
	return env.Delta(c, e)
}

// Run folds a sequence of events from the initial state.
func (env *Environment) Run(events ...Event) lattice.Set {
	c := env.Init
	for _, e := range events {
		c = env.Delta(c, e)
	}
	return c
}

// CombinedState is the state of the combined automaton of Section 2.3:
// the environment's constraint set paired with the object state.
type CombinedState struct {
	C lattice.Set
	S value.Value
}

// Key returns the canonical encoding.
func (cs CombinedState) Key() string {
	return fmt.Sprintf("env{%b}+%s", uint64(cs.C), cs.S.Key())
}

// String renders the pair.
func (cs CombinedState) String() string {
	return fmt.Sprintf("(c=%b, s=%s)", uint64(cs.C), cs.S)
}

// Input is one input to the combined automaton: an environment event,
// an object operation, or (when the alphabets overlap) both at once.
type Input struct {
	// Event is the environment event, if any.
	Event *Event
	// Op is the object operation execution, if any.
	Op *history.Op
}

// EventInput wraps a pure environment event.
func EventInput(e Event) Input { return Input{Event: &e} }

// OpInput wraps a pure object operation, consulting the environment's
// event list for an overlapping event (δ₁ of Section 2.3: if the input
// is both an event and an operation, the environment changes before the
// transition function is selected).
func (env *Environment) OpInput(op history.Op) Input {
	in := Input{Op: &op}
	for i := range env.Events {
		e := env.Events[i]
		if e.Matches != nil && e.Matches(op) {
			in.Event = &e
			break
		}
	}
	return in
}

// Combined is the single automaton of Section 2.3 accepting interleaved
// events and operations: ⟨2^C × STATE, (c₀, s₀), EVENT ∪ OP, δ⟩ with
// δ₁ updating the constraint state and δ₂ stepping the object under the
// automaton φ selects for the *new* constraint state.
type Combined struct {
	Env *Environment
	Lat *lattice.Relaxation
}

// Init returns (c₀, s₀). The object's initial state comes from the
// preferred behavior; every automaton in a lattice shares STATE and s₀
// (Section 2.2).
func (cm *Combined) Init() CombinedState {
	return CombinedState{C: cm.Env.Init, S: cm.Lat.Preferred().Init()}
}

// Step applies one input. It returns the possible successor states, or
// nil when the input is an operation rejected by the selected behavior
// (or when φ is undefined at the new constraint state).
func (cm *Combined) Step(cs CombinedState, in Input) []CombinedState {
	c := cs.C
	if in.Event != nil {
		c = cm.Env.Delta(c, *in.Event) // δ₁: environment moves first
	}
	if in.Op == nil {
		return []CombinedState{{C: c, S: cs.S}}
	}
	a, ok := cm.Lat.Phi(c)
	if !ok {
		return nil
	}
	next := a.Step(cs.S, *in.Op) // δ₂ under the selected behavior
	out := make([]CombinedState, 0, len(next))
	for _, s := range next {
		out = append(out, CombinedState{C: c, S: s})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Accepts runs a sequence of inputs from the initial state, tracking
// the nondeterministic state set, and reports whether every operation
// was accepted. It also returns the final constraint state.
func (cm *Combined) Accepts(inputs []Input) (bool, lattice.Set) {
	states := []CombinedState{cm.Init()}
	c := cm.Env.Init
	for _, in := range inputs {
		seen := map[string]CombinedState{}
		for _, cs := range states {
			for _, next := range cm.Step(cs, in) {
				seen[next.Key()] = next
			}
		}
		if len(seen) == 0 {
			return false, c
		}
		states = states[:0]
		for _, cs := range seen {
			states = append(states, cs)
		}
		c = states[0].C // δ₁ is deterministic: all successors share C
	}
	return true, c
}

// StaticEnvironment returns an environment frozen at constraint set c:
// no events, δ_E the identity. Useful for exploring a single lattice
// element with automaton tooling.
func StaticEnvironment(u *lattice.Universe, c lattice.Set) *Environment {
	return &Environment{
		Universe: u,
		Init:     c,
		Delta:    func(s lattice.Set, _ Event) lattice.Set { return s },
	}
}

// Freeze returns the object automaton the lattice exhibits at a fixed
// constraint state, or false if φ is undefined there.
func Freeze(lat *lattice.Relaxation, c lattice.Set) (automaton.Automaton, bool) {
	return lat.Phi(c)
}
