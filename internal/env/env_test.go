package env

import (
	"math"
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/specs"
)

// crashEnv models two constraints that break on "crash" events and heal
// on "repair" events: crash drops J, partition drops K.
func crashEnv(u *lattice.Universe) (*Environment, Event, Event, Event) {
	crash := Event{Name: "crash"}
	partition := Event{Name: "partition"}
	repair := Event{Name: "repair"}
	e := &Environment{
		Universe: u,
		Init:     u.All(),
		Events:   []Event{crash, partition, repair},
		Delta: func(c lattice.Set, ev Event) lattice.Set {
			switch ev.Name {
			case "crash":
				return c.Without(u.Index("J"))
			case "partition":
				return c.Without(u.Index("K"))
			case "repair":
				return u.All()
			default:
				return c
			}
		},
	}
	return e, crash, partition, repair
}

func ssqUniverse() *lattice.Universe {
	return lattice.NewUniverse(
		lattice.Constraint{Name: "J", Desc: "no duplicate returns"},
		lattice.Constraint{Name: "K", Desc: "no out-of-order returns"},
	)
}

func ssqLattice(u *lattice.Universe) *lattice.Relaxation {
	return &lattice.Relaxation{
		Name:     "ssq",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			j, k := 2, 2
			if s.Has(u.Index("J")) {
				j = 1
			}
			if s.Has(u.Index("K")) {
				k = 1
			}
			return specs.SSQueue(j, k), true
		},
	}
}

func TestEnvironmentRun(t *testing.T) {
	u := ssqUniverse()
	e, crash, partition, repair := crashEnv(u)
	if got := e.Run(); got != u.All() {
		t.Errorf("initial = %v", got)
	}
	if got := e.Run(crash); got != u.Named("K") {
		t.Errorf("after crash = %v", u.Format(got))
	}
	if got := e.Run(crash, partition); got != lattice.Empty {
		t.Errorf("after crash+partition = %v", u.Format(got))
	}
	if got := e.Run(crash, partition, repair); got != u.All() {
		t.Errorf("after repair = %v", u.Format(got))
	}
	if got := e.Apply(u.All(), partition); got != u.Named("J") {
		t.Errorf("Apply = %v", u.Format(got))
	}
}

func TestCombinedAutomaton(t *testing.T) {
	u := ssqUniverse()
	e, crash, _, repair := crashEnv(u)
	cm := &Combined{Env: e, Lat: ssqLattice(u)}

	enq := func(x int) Input { h := history.Enq(x); return Input{Op: &h} }
	deq := func(x int) Input { h := history.DeqOk(x); return Input{Op: &h} }

	// Under the full constraint set the object is FIFO: a duplicate
	// dequeue must be rejected.
	ok, _ := cm.Accepts([]Input{enq(1), deq(1), deq(1)})
	if ok {
		t.Errorf("duplicate dequeue accepted at top of lattice")
	}
	// After a crash the J constraint is lost: the behavior degrades to
	// SSqueue_21 and the stutter is tolerated.
	ok, c := cm.Accepts([]Input{enq(1), EventInput(crash), deq(1), deq(1)})
	if !ok {
		t.Errorf("stutter rejected after crash")
	}
	if c != u.Named("K") {
		t.Errorf("constraint state = %v", u.Format(c))
	}
	// Repair restores the preferred behavior for subsequent operations.
	ok, c = cm.Accepts([]Input{enq(1), EventInput(crash), deq(1), deq(1), EventInput(repair), enq(2), deq(2)})
	if !ok || c != u.All() {
		t.Errorf("after repair: ok=%v c=%v", ok, u.Format(c))
	}
}

func TestCombinedInitAndStep(t *testing.T) {
	u := ssqUniverse()
	e, crash, _, _ := crashEnv(u)
	cm := &Combined{Env: e, Lat: ssqLattice(u)}
	cs := cm.Init()
	if cs.C != u.All() {
		t.Errorf("Init C = %v", u.Format(cs.C))
	}
	// A pure event changes only the constraint component.
	next := cm.Step(cs, EventInput(crash))
	if len(next) != 1 || next[0].C != u.Named("K") || next[0].S.Key() != cs.S.Key() {
		t.Errorf("Step(event) = %v", next)
	}
	// Keys distinguish constraint states.
	if cs.Key() == next[0].Key() {
		t.Errorf("key collision across constraint states")
	}
	if cs.String() == "" || next[0].String() == "" {
		t.Errorf("empty String")
	}
}

// Overlapping alphabets (Section 3.4 style): the operation itself is an
// event. A "premature debit" drops constraint J just as it executes —
// the environment moves before the transition function is selected.
func TestOverlappingEventAndOperation(t *testing.T) {
	u := ssqUniverse()
	premature := Event{
		Name:    "dup-deq",
		Matches: func(op history.Op) bool { return op.Name == history.NameDeq },
	}
	e := &Environment{
		Universe: u,
		Init:     u.All(),
		Events:   []Event{premature},
		Delta: func(c lattice.Set, ev Event) lattice.Set {
			if ev.Name == "dup-deq" {
				return c.Without(u.Index("J"))
			}
			return c
		},
	}
	cm := &Combined{Env: e, Lat: ssqLattice(u)}
	in := func(op history.Op) Input { return e.OpInput(op) }

	// The very first Deq already executes under the degraded behavior
	// (δ₁ fires before δ₂ selects the automaton), so the stutter on the
	// second Deq is accepted.
	ok, c := cm.Accepts([]Input{in(history.Enq(1)), in(history.DeqOk(1)), in(history.DeqOk(1))})
	if !ok {
		t.Errorf("overlapping event did not relax behavior")
	}
	if c != u.Named("K") {
		t.Errorf("constraint state = %v", u.Format(c))
	}
	// Enq does not match the event, so it leaves constraints alone.
	if got := e.OpInput(history.Enq(1)); got.Event != nil {
		t.Errorf("Enq wrongly matched event")
	}
}

func TestStaticEnvironmentAndFreeze(t *testing.T) {
	u := ssqUniverse()
	lat := ssqLattice(u)
	se := StaticEnvironment(u, u.Named("J"))
	if se.Run(Event{Name: "anything"}) != u.Named("J") {
		t.Errorf("static environment moved")
	}
	a, ok := Freeze(lat, u.Named("J"))
	if !ok || a.Name() != "SSqueue_1_2" {
		t.Errorf("Freeze = %v, %v", a, ok)
	}
}

func TestProbSampleAndAnalytic(t *testing.T) {
	u := ssqUniverse()
	p := NewProb(u, map[string]float64{"J": 0.9}, 42)
	// K defaults to certain.
	const trials = 20000
	heldJ := 0
	for i := 0; i < trials; i++ {
		s := p.Sample()
		if !s.Has(u.Index("K")) {
			t.Fatalf("K must always hold")
		}
		if s.Has(u.Index("J")) {
			heldJ++
		}
	}
	got := float64(heldJ) / trials
	if math.Abs(got-0.9) > 0.02 {
		t.Errorf("J held with frequency %v, want ≈0.9", got)
	}
	if got := p.PAtLeast(u.Named("J", "K")); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("PAtLeast = %v", got)
	}
	if got := p.PSet(u.Named("K")); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("PSet({K}) = %v", got)
	}
	if got := p.PSet(u.Named("J", "K")); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("PSet({J,K}) = %v", got)
	}
}

func TestProbPanics(t *testing.T) {
	u := ssqUniverse()
	for name, fn := range map[string]func(){
		"unknown": func() { NewProb(u, map[string]float64{"nope": 0.5}, 1) },
		"range":   func() { NewProb(u, map[string]float64{"J": 1.5}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Determinism: same seed, same sample stream.
func TestProbDeterministic(t *testing.T) {
	u := ssqUniverse()
	a := NewProb(u, map[string]float64{"J": 0.5, "K": 0.5}, 7)
	b := NewProb(u, map[string]float64{"J": 0.5, "K": 0.5}, 7)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}
