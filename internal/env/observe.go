package env

import (
	"strconv"

	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
)

// RecordEpisodes journals the degradation episodes of a trace: one
// "env.episode" event per maximal run of steps sharing a constraint
// state, stamped with the episode's starting step index as logical
// time. Each event carries the constraint set (rendered through the
// universe), the behavior selected for it by the relaxation, and the
// episode's step span — the journal form of the story FormatTrace
// tells visually. A nil recorder no-ops.
func RecordEpisodes(rec *obs.Recorder, u *lattice.Universe, r *lattice.Relaxation, trace []TraceStep) {
	if rec == nil {
		return
	}
	for _, ep := range Episodes(trace) {
		behavior := "(none)"
		if b, ok := r.Phi(ep.C); ok {
			behavior = b.Name()
		}
		rec.Record(int64(ep.From), "env.episode",
			obs.KV{K: "constraints", V: u.Format(ep.C)},
			obs.KV{K: "behavior", V: behavior},
			obs.KV{K: "from", V: strconv.Itoa(ep.From)},
			obs.KV{K: "to", V: strconv.Itoa(ep.To)},
		)
	}
}
