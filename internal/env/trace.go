package env

import (
	"fmt"
	"strings"

	"relaxlattice/internal/lattice"
)

// TraceStep records one input to the combined automaton: the constraint
// state after δ₁ applied, and whether the operation component (if any)
// was accepted by the behavior φ selected.
type TraceStep struct {
	Input    Input
	C        lattice.Set
	Accepted bool
}

// describe renders the input compactly.
func (ts TraceStep) describe() string {
	switch {
	case ts.Input.Event != nil && ts.Input.Op != nil:
		return fmt.Sprintf("%s/%s", ts.Input.Event.Name, ts.Input.Op)
	case ts.Input.Event != nil:
		return ts.Input.Event.Name
	case ts.Input.Op != nil:
		return ts.Input.Op.String()
	default:
		return "ε"
	}
}

// Trace runs the inputs through the combined automaton, recording the
// constraint state and acceptance at each step. Unlike Accepts it does
// not stop at the first rejection: rejected operations leave the object
// state unchanged (the environment still moves), so the trace shows the
// whole degradation episode.
func (cm *Combined) Trace(inputs []Input) []TraceStep {
	states := []CombinedState{cm.Init()}
	c := cm.Env.Init
	out := make([]TraceStep, 0, len(inputs))
	for _, in := range inputs {
		seen := map[string]CombinedState{}
		for _, cs := range states {
			for _, next := range cm.Step(cs, in) {
				seen[next.Key()] = next
			}
		}
		accepted := len(seen) > 0
		if accepted {
			states = states[:0]
			for _, cs := range seen {
				states = append(states, cs)
			}
			c = states[0].C
		} else {
			// The environment component of the input still applies.
			if in.Event != nil {
				c = cm.Env.Delta(c, *in.Event)
				for i := range states {
					states[i].C = c
				}
			}
		}
		out = append(out, TraceStep{Input: in, C: c, Accepted: accepted})
	}
	return out
}

// Episode is a maximal run of consecutive steps sharing one constraint
// state — the granularity at which an execution moves through the
// relaxation lattice.
type Episode struct {
	C        lattice.Set
	From, To int // step indexes, inclusive
}

// Episodes summarizes a trace into its constraint-state episodes.
func Episodes(trace []TraceStep) []Episode {
	var out []Episode
	for i, st := range trace {
		if i == 0 || st.C != out[len(out)-1].C {
			out = append(out, Episode{C: st.C, From: i, To: i})
			continue
		}
		out[len(out)-1].To = i
	}
	return out
}

// FormatTrace renders a trace with the universe's constraint names, one
// step per line.
func FormatTrace(u *lattice.Universe, trace []TraceStep) string {
	var b strings.Builder
	for i, st := range trace {
		mark := "✓"
		if !st.Accepted {
			mark = "✗"
		}
		fmt.Fprintf(&b, "%3d %s %-30s %s\n", i, mark, st.describe(), u.Format(st.C))
	}
	return b.String()
}
