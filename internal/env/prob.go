package env

import (
	"fmt"
	"math/rand"

	"relaxlattice/internal/lattice"
)

// Prob is the probabilistic environment model the paper's functional
// specifications interface to (Section 2.3): an independent per-
// constraint probability that the constraint is satisfied when an
// operation executes. The worked example at the end of Section 3.3
// ("each queue operation satisfies Q₁ with independent probability 0.9,
// and Deq operations are certain to satisfy Q₂") is expressed by
// PHold = {Q1: 0.9, Q2: 1.0}.
type Prob struct {
	universe *lattice.Universe
	pHold    []float64
	rng      *rand.Rand
}

// NewProb builds a probabilistic environment. pHold maps constraint
// names to satisfaction probabilities; missing constraints default to
// 1 (always satisfied). It panics on unknown names or probabilities
// outside [0, 1].
func NewProb(u *lattice.Universe, pHold map[string]float64, seed int64) *Prob {
	ps := make([]float64, u.Len())
	for i := range ps {
		ps[i] = 1
	}
	for name, p := range pHold {
		i := u.Index(name)
		if i < 0 {
			panic(fmt.Sprintf("env: unknown constraint %q", name))
		}
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("env: probability %v for %q outside [0,1]", p, name))
		}
		ps[i] = p
	}
	return &Prob{universe: u, pHold: ps, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws the constraint set satisfied by one operation execution:
// each constraint holds independently with its configured probability.
func (p *Prob) Sample() lattice.Set {
	var s lattice.Set
	for i, ph := range p.pHold {
		if ph >= 1 || p.rng.Float64() < ph {
			s = s.With(i)
		}
	}
	return s
}

// PSet returns the analytic probability that Sample returns exactly the
// set s (constraints are independent).
func (p *Prob) PSet(s lattice.Set) float64 {
	prob := 1.0
	for i, ph := range p.pHold {
		if s.Has(i) {
			prob *= ph
		} else {
			prob *= 1 - ph
		}
	}
	return prob
}

// PAtLeast returns the analytic probability that Sample returns a
// superset of s (all constraints of s hold).
func (p *Prob) PAtLeast(s lattice.Set) float64 {
	prob := 1.0
	for _, i := range s.Indexes() {
		prob *= p.pHold[i]
	}
	return prob
}
