package env

import (
	"bytes"
	"strings"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
)

func TestTraceRecordsDegradationEpisode(t *testing.T) {
	u := ssqUniverse()
	e, crash, _, repair := crashEnv(u)
	cm := &Combined{Env: e, Lat: ssqLattice(u)}

	enq := func(x int) Input { h := history.Enq(x); return Input{Op: &h} }
	deq := func(x int) Input { h := history.DeqOk(x); return Input{Op: &h} }
	inputs := []Input{
		enq(1),         // preferred behavior
		deq(1), deq(1), // second Deq rejected at the top
		EventInput(crash), // J lost
		enq(2),            // accepted under SSqueue_21
		deq(2), deq(2),    // stutter now tolerated
		EventInput(repair), // back to the top
		deq(2),             // rejected again: 2 was consumed
	}
	trace := cm.Trace(inputs)
	if len(trace) != len(inputs) {
		t.Fatalf("trace length %d", len(trace))
	}
	wantAccepted := []bool{true, true, false, true, true, true, true, true, false}
	for i, want := range wantAccepted {
		if trace[i].Accepted != want {
			t.Errorf("step %d accepted = %v, want %v", i, trace[i].Accepted, want)
		}
	}
	// Constraint states: full until the crash, {K} until repair, full
	// after.
	if trace[2].C != u.All() {
		t.Errorf("step 2 C = %v", u.Format(trace[2].C))
	}
	if trace[4].C != u.Named("K") {
		t.Errorf("step 4 C = %v", u.Format(trace[4].C))
	}
	if trace[8].C != u.All() {
		t.Errorf("step 8 C = %v", u.Format(trace[8].C))
	}

	episodes := Episodes(trace)
	if len(episodes) != 3 {
		t.Fatalf("episodes = %v", episodes)
	}
	if episodes[0].C != u.All() || episodes[1].C != u.Named("K") || episodes[2].C != u.All() {
		t.Errorf("episode constraint states wrong: %v", episodes)
	}
	if episodes[1].From != 3 || episodes[1].To != 6 {
		t.Errorf("degraded episode span = %d..%d", episodes[1].From, episodes[1].To)
	}

	text := FormatTrace(u, trace)
	if !strings.Contains(text, "✗") || !strings.Contains(text, "{K}") || !strings.Contains(text, "crash") {
		t.Errorf("FormatTrace output:\n%s", text)
	}
}

// A rejected operation that carries an event still moves the
// environment.
func TestTraceRejectedOpStillMovesEnvironment(t *testing.T) {
	u := ssqUniverse()
	drop := Event{
		Name:    "drop",
		Matches: func(op history.Op) bool { return op.Name == history.NameDeq },
	}
	e := &Environment{
		Universe: u,
		Init:     u.All(),
		Events:   []Event{drop},
		Delta: func(c lattice.Set, ev Event) lattice.Set {
			return c.Without(u.Index("J"))
		},
	}
	cm := &Combined{Env: e, Lat: ssqLattice(u)}
	// Deq on an empty queue is rejected, but its event drops J anyway.
	bad := e.OpInput(history.DeqOk(9))
	trace := cm.Trace([]Input{bad})
	if trace[0].Accepted {
		t.Fatalf("impossible Deq accepted")
	}
	if trace[0].C != u.Named("K") {
		t.Errorf("environment did not move: %v", u.Format(trace[0].C))
	}
}

func TestEpisodesEmpty(t *testing.T) {
	if got := Episodes(nil); got != nil {
		t.Errorf("Episodes(nil) = %v", got)
	}
}

// TestRecordEpisodes pins the journal form of a degradation story: one
// env.episode event per constraint run, stamped with the starting step
// index, carrying φ(C)'s behavior name — and pins the exact JSONL
// bytes, which must not drift (CI diffs them across runs).
func TestRecordEpisodes(t *testing.T) {
	u := ssqUniverse()
	e, crash, _, repair := crashEnv(u)
	lat := ssqLattice(u)
	cm := &Combined{Env: e, Lat: lat}
	enq := func(x int) Input { h := history.Enq(x); return Input{Op: &h} }
	deq := func(x int) Input { h := history.DeqOk(x); return Input{Op: &h} }
	trace := cm.Trace([]Input{
		enq(1), deq(1),
		EventInput(crash),
		enq(2), deq(2), deq(2),
		EventInput(repair),
		enq(3),
	})

	rec := obs.NewRecorder()
	RecordEpisodes(rec, u, lat, trace)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":0,"name":"env.episode","constraints":"{J, K}","behavior":"SSqueue_1_1","from":"0","to":"1"}
{"t":2,"name":"env.episode","constraints":"{K}","behavior":"SSqueue_2_1","from":"2","to":"5"}
{"t":6,"name":"env.episode","constraints":"{J, K}","behavior":"SSqueue_1_1","from":"6","to":"7"}
`
	if buf.String() != want {
		t.Errorf("episode journal:\n%swant:\n%s", buf.String(), want)
	}

	// A nil recorder is a no-op, not a panic.
	RecordEpisodes(nil, u, lat, trace)
}

func TestTraceStepDescribe(t *testing.T) {
	h := history.Enq(1)
	ev := Event{Name: "crash"}
	cases := []struct {
		in   Input
		want string
	}{
		{Input{}, "ε"},
		{Input{Op: &h}, "Enq(1)/Ok()"},
		{Input{Event: &ev}, "crash"},
		{Input{Event: &ev, Op: &h}, "crash/Enq(1)/Ok()"},
	}
	for _, c := range cases {
		if got := (TraceStep{Input: c.in}).describe(); got != c.want {
			t.Errorf("describe = %q, want %q", got, c.want)
		}
	}
}
