package obs

import "sync/atomic"

// Clock supplies logical time to instrumented components. Model
// packages never read wall clocks (relaxlint det-time); they receive a
// Clock — backed by a Lamport counter, a schedule index, a simulation
// engine, or (only in cmd/ binaries) real time — and stamp events with
// whatever it returns.
type Clock interface {
	Now() int64
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

// Logical is an atomic monotonically increasing logical clock. Its
// zero value is ready to use; Now reads without advancing, Tick
// advances and returns the new time. Safe for concurrent use, but note
// that concurrent Ticks are ordered by the scheduler — deterministic
// journals should tick under the owning component's lock.
type Logical struct {
	t atomic.Int64
}

// Now returns the current time without advancing it.
func (l *Logical) Now() int64 { return l.t.Load() }

// Tick advances the clock by one and returns the new time.
func (l *Logical) Tick() int64 { return l.t.Add(1) }

// Witness raises the clock to at least t (Lamport receive rule).
func (l *Logical) Witness(t int64) {
	for {
		cur := l.t.Load()
		if t <= cur || l.t.CompareAndSwap(cur, t) {
			return
		}
	}
}
