// Package obs is the deterministic observability substrate: a metrics
// registry (counters, gauges, fixed-bucket histograms with atomic
// updates and a stable, sorted-key JSON snapshot) and a logical-clock
// event journal (Recorder). It exists so the engine, the quorum
// cluster, and the transactional runtime can report *where in the
// relaxation lattice they are operating* — which constraint set C
// currently holds and which behavior φ(C) the system degraded to —
// without ad-hoc printf and without sacrificing reproducibility.
//
// The determinism contract, which the acceptance tests pin byte-for-
// byte, has two halves:
//
//   - Metric updates are commutative (counter adds, gauge maxima,
//     histogram bucket increments), so a final Snapshot is identical
//     for every interleaving of concurrent writers — any GOMAXPROCS,
//     any schedule. Scheduling-dependent quantities (cache hit rates
//     under racy lookups, shard sizes that depend on worker count)
//     must go to a separate "runtime" registry that is published via
//     expvar/pprof but never written to the deterministic snapshot.
//   - Journal events are ordered, so they are recorded only at
//     deterministic points under a component's own lock, with logical
//     time injected by the component (a Lamport tick, a schedule
//     index, a depth). Wall clocks never appear here; relaxlint's
//     det-time rule holds this package (and its model-layer callers)
//     to that.
//
// Every type is nil-receiver-safe: a nil *Registry hands out nil
// instruments whose update methods no-op, so instrumented code pays a
// nil check — no branches, no allocation — when observation is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter; it no-ops on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 metric. For snapshots that must be deterministic
// under concurrent writers, use only Add and Max (commutative); Set is
// last-writer-wins and belongs in single-writer or runtime-only
// registries.
type Gauge struct {
	v atomic.Int64
}

// Set stores v; it no-ops on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d; it no-ops on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Max raises the gauge to v if v exceeds the current value — the
// high-water-mark update. It no-ops on a nil receiver.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket int64 histogram: observation v lands in
// the first bucket whose bound is ≥ v, or in the overflow bucket.
// Bounds are fixed at construction; updates are atomic and commutative.
type Histogram struct {
	bounds []int64 // immutable after construction, ascending
	counts []atomic.Uint64
	sum    atomic.Int64
	n      atomic.Uint64
}

// Observe records one observation; it no-ops on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Registry is a concurrency-safe, name-keyed collection of instruments.
// The zero value is not useful; a nil *Registry is: every accessor
// returns a nil instrument whose updates no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. On a
// nil registry it returns nil (whose Add no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use (later calls reuse the existing
// instrument and ignore bounds). It panics on unsorted bounds — a
// programming error — and returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
			}
		}
		h = &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Absorb merges src into r: counters add, gauges take the maximum
// (the high-water interpretation every deterministic gauge here uses),
// and histograms add bucket-wise. Histograms with mismatched bounds
// panic (a programming error: the same name must mean the same
// instrument). Absorbing nil, or absorbing into nil, no-ops.
func (r *Registry) Absorb(src *Registry) {
	if r == nil || src == nil {
		return
	}
	for _, cs := range src.Snapshot().Counters {
		r.Counter(cs.Name).Add(cs.Value)
	}
	for _, gs := range src.Snapshot().Gauges {
		r.Gauge(gs.Name).Max(gs.Value)
	}
	for _, hs := range src.Snapshot().Histograms {
		dst := r.Histogram(hs.Name, hs.Bounds)
		if len(dst.bounds) != len(hs.Bounds) {
			panic(fmt.Sprintf("obs: absorbing histogram %q with %d bounds into %d", hs.Name, len(hs.Bounds), len(dst.bounds)))
		}
		for i, b := range dst.bounds {
			if b != hs.Bounds[i] {
				panic(fmt.Sprintf("obs: absorbing histogram %q with mismatched bounds", hs.Name))
			}
		}
		for i, c := range hs.Counts {
			dst.counts[i].Add(c)
		}
		dst.sum.Add(hs.Sum)
		dst.n.Add(hs.Count)
	}
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Counts has one entry
// per bound plus the overflow bucket.
type HistogramValue struct {
	Name   string   `json:"name"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    int64    `json:"sum"`
	Count  uint64   `json:"count"`
}

// Snapshot is a point-in-time, name-sorted view of a registry. Its
// JSON encoding is stable: fixed field order, sorted instruments, no
// maps — the same metric values always serialize to the same bytes.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures every instrument, sorted by name. A nil registry
// yields an empty (but fully initialized) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Counters: []CounterValue{}, Gauges: []GaugeValue{}, Histograms: []HistogramValue{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	for name, h := range r.hists {
		counts := make([]uint64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, HistogramValue{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: counts,
			Sum:    h.sum.Load(),
			Count:  h.n.Load(),
		})
	}
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// Counter returns the value of the named counter in the snapshot.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the value of the named gauge in the snapshot.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteJSON writes the snapshot as indented JSON with a trailing
// newline — the byte-stable format `relaxctl run -metrics` emits.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
