package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Counter("c").Add(2)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g")
	g.Max(7)
	g.Max(4) // lower: must not regress
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge Max = %d, want 7", got)
	}
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge Add = %d, want 5", got)
	}

	h := r.Histogram("h", []int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	// Buckets: ≤1, ≤4, ≤16, overflow.
	want := []uint64{2, 2, 1, 1}
	for i, c := range hv.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], hv.Counts)
		}
	}
	if hv.Sum != 112 || hv.Count != 6 {
		t.Fatalf("sum/count = %d/%d, want 112/6", hv.Sum, hv.Count)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted bounds")
		}
	}()
	NewRegistry().Histogram("bad", []int64{4, 1})
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Max(9)
	r.Gauge("g").Set(3)
	r.Histogram("h", []int64{1}).Observe(2)
	r.Absorb(NewRegistry())
	NewRegistry().Absorb(r)
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"counters": []`) {
		t.Fatalf("empty snapshot should serialize empty arrays, got %s", buf.String())
	}
}

func TestAbsorbMerges(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(2)
	b.Counter("c").Add(3)
	b.Counter("only-b").Add(1)
	a.Gauge("peak").Max(5)
	b.Gauge("peak").Max(9)
	a.Histogram("h", []int64{1, 2}).Observe(1)
	b.Histogram("h", []int64{1, 2}).Observe(2)
	b.Histogram("h", []int64{1, 2}).Observe(50)

	a.Absorb(b)
	snap := a.Snapshot()
	if v, _ := snap.Counter("c"); v != 5 {
		t.Fatalf("absorbed counter = %d, want 5", v)
	}
	if v, _ := snap.Counter("only-b"); v != 1 {
		t.Fatalf("new counter = %d, want 1", v)
	}
	if v, _ := snap.Gauge("peak"); v != 9 {
		t.Fatalf("absorbed gauge = %d, want max 9", v)
	}
	hv := snap.Histograms[0]
	if hv.Count != 3 || hv.Sum != 53 {
		t.Fatalf("absorbed histogram count/sum = %d/%d, want 3/53", hv.Count, hv.Sum)
	}
	if hv.Counts[0] != 1 || hv.Counts[1] != 1 || hv.Counts[2] != 1 {
		t.Fatalf("absorbed buckets = %v", hv.Counts)
	}
}

func TestAbsorbMismatchedBoundsPanics(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h", []int64{1, 2}).Observe(1)
	b.Histogram("h", []int64{1, 3}).Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched bounds")
		}
	}()
	a.Absorb(b)
}

// TestSnapshotDeterministicUnderConcurrency is the contract the -metrics
// acceptance check relies on: commutative updates from racing goroutines
// always produce the same snapshot bytes.
func TestSnapshotDeterministicUnderConcurrency(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					r.Counter("ops").Add(1)
					r.Gauge("hw").Max(int64(w*1000 + i))
					r.Histogram("sizes", []int64{10, 100, 1000}).Observe(int64(i))
				}
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("snapshot bytes differ across runs:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Add(1)
		r.Gauge(name).Max(1)
		r.Histogram(name, []int64{1}).Observe(1)
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatalf("counters not sorted: %+v", snap.Counters)
		}
	}
	for i := 1; i < len(snap.Gauges); i++ {
		if snap.Gauges[i-1].Name >= snap.Gauges[i].Name {
			t.Fatalf("gauges not sorted: %+v", snap.Gauges)
		}
	}
	for i := 1; i < len(snap.Histograms); i++ {
		if snap.Histograms[i-1].Name >= snap.Histograms[i].Name {
			t.Fatalf("histograms not sorted: %+v", snap.Histograms)
		}
	}
}
