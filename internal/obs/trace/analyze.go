package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"relaxlattice/internal/obs"
)

// Analysis is the critical-path attribution of one span stream: where
// logical time went, per span name (protocol step) and per degradation
// rung. Built by Analyze, rendered by cmd/relaxtrace, embedded (in
// summary form) in benchjson snapshots.
//
// The critical path of a root operation is computed by the classic
// backward sweep: starting from the root's end, repeatedly step to the
// child span that finished last before the current frontier; gaps no
// child covers are the parent's own (self) time. Summing each span's
// contribution by name yields the per-step attribution; summing by the
// nearest enclosing "rung" attribute yields the per-rung attribution
// the CALM cost sweep needs.
type Analysis struct {
	Spans    int // total spans in the stream
	Roots    int // spans with parent 0
	Links    int // happens-before edges beyond parent/child
	Orphans  int // spans whose parent is absent from the stream
	Wall     int64
	Critical int64
	ByName   []NameStat
	ByRung   []RungStat
}

// NameStat aggregates spans sharing a name (a protocol step).
type NameStat struct {
	Name     string
	Count    int
	Total    int64 // sum of durations
	Self     int64 // duration not covered by child spans
	Critical int64 // contribution to root critical paths
}

// RungStat aggregates critical-path time by degradation rung (the
// nearest enclosing span's "rung" attribute; "-" when none).
type RungStat struct {
	Rung     string
	Count    int // spans attributed to the rung
	Total    int64
	Critical int64
}

type node struct {
	span     Span
	children []*node // in stream order
}

// Analyze rebuilds the happens-before DAG from a span stream and
// attributes logical time. The input order is the deterministic stream
// order; the output is deterministic for a deterministic input.
func Analyze(spans []Span) Analysis {
	an := Analysis{Spans: len(spans)}
	nodes := make(map[SpanID]*node, len(spans))
	var order []*node
	for _, sp := range spans {
		n := &node{span: sp}
		nodes[sp.ID] = n
		order = append(order, n)
		an.Links += len(sp.Links)
	}
	var roots []*node
	for _, n := range order {
		if n.span.Parent == 0 {
			an.Roots++
			roots = append(roots, n)
			continue
		}
		p, ok := nodes[n.span.Parent]
		if !ok {
			an.Orphans++
			roots = append(roots, n) // analyze the orphan subtree anyway
			continue
		}
		p.children = append(p.children, n)
	}

	names := map[string]*NameStat{}
	rungs := map[string]*RungStat{}
	stat := func(name string) *NameStat {
		s := names[name]
		if s == nil {
			s = &NameStat{Name: name}
			names[name] = s
		}
		return s
	}
	rung := func(name string) *RungStat {
		s := rungs[name]
		if s == nil {
			s = &RungStat{Rung: name}
			rungs[name] = s
		}
		return s
	}

	// Total, self, and per-rung totals: a straight walk.
	var walk func(n *node, inheritedRung string)
	walk = func(n *node, inheritedRung string) {
		r := inheritedRung
		if v, ok := n.span.Attr("rung"); ok {
			r = v
		}
		s := stat(n.span.Name)
		s.Count++
		s.Total += n.span.Dur()
		s.Self += selfTime(n)
		rs := rung(r)
		rs.Count++
		rs.Total += n.span.Dur()
		for _, c := range n.children {
			walk(c, r)
		}
	}
	for _, n := range roots {
		walk(n, "-")
		an.Wall += n.span.Dur()
	}

	// Critical path: backward sweep per root. limit clips a span's
	// effective end when only its prefix is on the parent's path.
	var sweep func(n *node, inheritedRung string, limit int64) int64
	sweep = func(n *node, inheritedRung string, limit int64) int64 {
		r := inheritedRung
		if v, ok := n.span.Attr("rung"); ok {
			r = v
		}
		cur := n.span.End
		if cur > limit {
			cur = limit
		}
		if cur <= n.span.Start {
			return 0
		}
		kids := append([]*node(nil), n.children...)
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].span.End > kids[j].span.End })
		var self int64
		var total int64
		for _, c := range kids {
			end := c.span.End
			if end > cur {
				end = cur // overlapping child: only the part before the frontier counts
			}
			if end <= c.span.Start || c.span.Start < n.span.Start {
				continue // fully past the frontier, or not inside the parent
			}
			self += cur - end
			total += (cur - end) + sweep(c, r, end)
			cur = c.span.Start
			if cur <= n.span.Start {
				cur = n.span.Start
				break
			}
		}
		self += cur - n.span.Start
		total += cur - n.span.Start
		stat(n.span.Name).Critical += self
		rung(r).Critical += self
		return total
	}
	for _, n := range roots {
		an.Critical += sweep(n, "-", n.span.End)
	}

	for _, s := range names {
		an.ByName = append(an.ByName, *s)
	}
	sort.Slice(an.ByName, func(i, j int) bool { return an.ByName[i].Name < an.ByName[j].Name })
	for _, s := range rungs {
		an.ByRung = append(an.ByRung, *s)
	}
	sort.Slice(an.ByRung, func(i, j int) bool { return an.ByRung[i].Rung < an.ByRung[j].Rung })
	return an
}

// selfTime is the span's duration minus the union of its children's
// intervals clipped to the span.
func selfTime(n *node) int64 {
	if len(n.children) == 0 {
		return n.span.Dur()
	}
	type iv struct{ s, e int64 }
	ivs := make([]iv, 0, len(n.children))
	for _, c := range n.children {
		s, e := c.span.Start, c.span.End
		if s < n.span.Start {
			s = n.span.Start
		}
		if e > n.span.End {
			e = n.span.End
		}
		if e > s {
			ivs = append(ivs, iv{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var covered int64
	var curS, curE int64
	first := true
	for _, v := range ivs {
		if first {
			curS, curE, first = v.s, v.e, false
			continue
		}
		if v.s <= curE {
			if v.e > curE {
				curE = v.e
			}
			continue
		}
		covered += curE - curS
		curS, curE = v.s, v.e
	}
	if !first {
		covered += curE - curS
	}
	return n.span.Dur() - covered
}

// AppendJSON appends the analysis as one deterministic JSON object
// (fixed field order, stats in sorted order).
func (a Analysis) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"spans":`...)
	dst = strconv.AppendInt(dst, int64(a.Spans), 10)
	dst = append(dst, `,"roots":`...)
	dst = strconv.AppendInt(dst, int64(a.Roots), 10)
	dst = append(dst, `,"links":`...)
	dst = strconv.AppendInt(dst, int64(a.Links), 10)
	dst = append(dst, `,"orphans":`...)
	dst = strconv.AppendInt(dst, int64(a.Orphans), 10)
	dst = append(dst, `,"wall":`...)
	dst = strconv.AppendInt(dst, a.Wall, 10)
	dst = append(dst, `,"critical":`...)
	dst = strconv.AppendInt(dst, a.Critical, 10)
	dst = append(dst, `,"by_name":[`...)
	for i, s := range a.ByName {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"name":`...)
		dst = appendQuoted(dst, s.Name)
		dst = append(dst, `,"count":`...)
		dst = strconv.AppendInt(dst, int64(s.Count), 10)
		dst = append(dst, `,"total":`...)
		dst = strconv.AppendInt(dst, s.Total, 10)
		dst = append(dst, `,"self":`...)
		dst = strconv.AppendInt(dst, s.Self, 10)
		dst = append(dst, `,"critical":`...)
		dst = strconv.AppendInt(dst, s.Critical, 10)
		dst = append(dst, '}')
	}
	dst = append(dst, `],"by_rung":[`...)
	for i, s := range a.ByRung {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"rung":`...)
		dst = appendQuoted(dst, s.Rung)
		dst = append(dst, `,"count":`...)
		dst = strconv.AppendInt(dst, int64(s.Count), 10)
		dst = append(dst, `,"total":`...)
		dst = strconv.AppendInt(dst, s.Total, 10)
		dst = append(dst, `,"critical":`...)
		dst = strconv.AppendInt(dst, s.Critical, 10)
		dst = append(dst, '}')
	}
	return append(dst, ']', '}')
}

func appendQuoted(dst []byte, s string) []byte {
	return obs.AppendJSONString(dst, s)
}

// WriteChromeTrace writes the span stream as Chrome trace-event JSON
// (the chrome://tracing and Perfetto "complete event" format): a
// top-level object with a traceEvents array of "ph":"X" events, one
// per span, timestamps in the stream's logical units. Each root tree
// gets its own tid so nested spans stack; happens-before links and
// attributes ride in args. Output is deterministic for a deterministic
// stream.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	tids := map[SpanID]int{} // root ID -> tid, in first-seen order
	parentOf := make(map[SpanID]SpanID, len(spans))
	for _, sp := range spans {
		parentOf[sp.ID] = sp.Parent
	}
	rootOf := func(id SpanID) SpanID {
		for {
			p, ok := parentOf[id]
			if !ok || p == 0 {
				return id
			}
			id = p
		}
	}
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	var buf []byte
	for i, sp := range spans {
		root := rootOf(sp.ID)
		tid, ok := tids[root]
		if !ok {
			tid = len(tids) + 1
			tids[root] = tid
		}
		buf = buf[:0]
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, "\n"...)
		buf = append(buf, `{"name":`...)
		buf = appendQuoted(buf, sp.Name)
		buf = append(buf, `,"cat":"span","ph":"X","ts":`...)
		buf = strconv.AppendInt(buf, sp.Start, 10)
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendInt(buf, sp.Dur(), 10)
		buf = append(buf, `,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid), 10)
		buf = append(buf, `,"args":{"id":"`...)
		buf = append(buf, sp.ID.String()...)
		buf = append(buf, '"')
		if sp.Parent != 0 {
			buf = append(buf, `,"parent":"`...)
			buf = append(buf, sp.Parent.String()...)
			buf = append(buf, '"')
		}
		if len(sp.Links) > 0 {
			buf = append(buf, `,"links":"`...)
			for j, l := range sp.Links {
				if j > 0 {
					buf = append(buf, ' ')
				}
				buf = append(buf, l.String()...)
			}
			buf = append(buf, '"')
		}
		for _, kv := range sp.Attrs {
			buf = append(buf, ',')
			buf = appendQuoted(buf, kv.K)
			buf = append(buf, ':')
			buf = appendQuoted(buf, kv.V)
		}
		buf = append(buf, `}}`...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// WriteTable renders the analysis as the fixed-width text report
// cmd/relaxtrace prints.
func (a Analysis) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "spans=%d roots=%d links=%d orphans=%d wall=%d critical=%d\n",
		a.Spans, a.Roots, a.Links, a.Orphans, a.Wall, a.Critical); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\n%-28s %8s %10s %10s %10s\n", "step", "count", "total", "self", "critical"); err != nil {
		return err
	}
	for _, s := range a.ByName {
		if _, err := fmt.Fprintf(w, "%-28s %8d %10d %10d %10d\n", s.Name, s.Count, s.Total, s.Self, s.Critical); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n%-28s %8s %10s %10s\n", "rung", "count", "total", "critical"); err != nil {
		return err
	}
	for _, s := range a.ByRung {
		if _, err := fmt.Fprintf(w, "%-28s %8d %10d %10d\n", s.Rung, s.Count, s.Total, s.Critical); err != nil {
			return err
		}
	}
	return nil
}
