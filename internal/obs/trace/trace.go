// Package trace is the causal-span substrate of the observability
// layer: deterministic spans — intervals of logical time with
// parent/child nesting and explicit happens-before links — recorded by
// the cluster's three-step quorum protocol, the adaptive degradation
// ladder, the transactional runtime, and internal/conc's
// linearization-point journal.
//
// Everything is deterministic by construction, like the rest of
// internal/obs: span timestamps come from injected logical clocks
// (never the wall clock), and span identifiers are derived by hashing
// down the causal tree — a root span's ID is a hash of its track name
// and root index, a child's ID a hash of its parent's ID and child
// index — so the same execution produces the same span stream
// byte-for-byte at any GOMAXPROCS, and per-unit scratch tracers merged
// in a fixed order reproduce the serial stream exactly.
//
// The JSONL stream a Tracer writes is the input to cmd/relaxtrace,
// which rebuilds the happens-before DAG, attributes latency per
// protocol step and per degradation rung along the critical path, and
// exports Chrome trace-event JSON for visual inspection (see
// analyze.go).
package trace

import (
	"io"
	"strconv"
	"sync"

	"relaxlattice/internal/obs"
)

// SpanID identifies a span. IDs are FNV-1a hash chains seeded at the
// tracer's track name: deterministic, merge-stable, and unique with
// overwhelming probability within a stream. The zero ID means "no
// span" (a root has parent 0).
type SpanID uint64

// String renders the ID as fixed-width hex (the JSONL encoding).
func (id SpanID) String() string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseSpanID parses the fixed-width hex encoding.
func ParseSpanID(s string) (SpanID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return SpanID(v), err
}

// fnv1a is the 64-bit FNV-1a hash, the ID-derivation primitive.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// deriveID computes the hash-chained span ID: parent ID (or the track
// hash for roots) mixed with the child (or root) index.
func deriveID(parent uint64, index uint64) SpanID {
	id := SpanID(fnvUint(fnvUint(fnvOffset, parent), index))
	if id == 0 {
		id = 1 // reserve 0 for "no span"
	}
	return id
}

// Span is one completed causal span: a named interval of logical time
// with a parent (0 for roots), ordered attributes, and optional
// happens-before links to spans outside its tree (e.g. "my step-1 view
// read a site log last written under that span").
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  int64
	End    int64
	Links  []SpanID
	Attrs  []obs.KV
}

// Dur returns the span's logical duration.
func (s Span) Dur() int64 { return s.End - s.Start }

// Attr returns the value of the named attribute and whether it is
// present.
func (s Span) Attr(key string) (string, bool) {
	for _, kv := range s.Attrs {
		if kv.K == key {
			return kv.V, true
		}
	}
	return "", false
}

// Mirror observes completed spans as they are recorded — the hook the
// degradation flight recorder uses to keep a bounded window of recent
// spans without retaining the whole stream.
type Mirror interface {
	ObserveSpan(Span)
}

// Tracer records completed spans. It is safe for concurrent use, but —
// exactly like obs.Recorder — deterministic streams come from
// recording at deterministic points (under a component's own mutex or
// from a single goroutine) and from merging per-unit tracers in a
// fixed order. A nil *Tracer no-ops everywhere, so callers instrument
// unconditionally.
type Tracer struct {
	mu     sync.Mutex
	clock  obs.Clock // set at construction or via SetClock before the first span
	track  uint64    // immutable after construction; root-ID seed
	spans  []Span    // guarded by mu; completed spans in End order
	nroots uint64    // guarded by mu
	mirror Mirror    // guarded by mu
	ltime  obs.Logical
}

// NewTracer builds a tracer for one track (a deterministic stream
// name: "soak/cluster/bursty", "txn", ...). clock supplies span
// timestamps; nil defaults to a tracer-owned logical counter that
// ticks on every read, so every span has nonzero duration.
func NewTracer(track string, clock obs.Clock) *Tracer {
	return &Tracer{clock: clock, track: fnvString(fnvOffset, track)}
}

// SetClock replaces the tracer's clock — for harnesses that construct
// the tracer before the clock's time source exists (e.g. a simulation
// engine). Call it before any span is recorded; no-op on nil.
func (t *Tracer) SetClock(c obs.Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = c
}

// SetMirror installs a span observer (the flight recorder); nil
// detaches. No-op on a nil tracer.
func (t *Tracer) SetMirror(m Mirror) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mirror = m
}

// now reads the tracer's clock. The fallback logical clock ticks on
// every read so consecutive boundaries are strictly ordered.
func (t *Tracer) now() int64 {
	if t.clock != nil {
		return t.clock.Now()
	}
	return t.ltime.Tick()
}

// SpanRef is an open span. Refs are handed out by Begin/Child and
// closed by End; a nil *SpanRef no-ops everywhere (the instrument-
// unconditionally idiom), so tracing can be wired through code paths
// that only sometimes run under a tracer.
//
// A SpanRef is not safe for concurrent use: it belongs to the single
// logical thread of control whose work it measures.
type SpanRef struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  int64
	nchild uint64
	links  []SpanID
	attrs  []obs.KV
}

// Begin opens a root span. Returns nil (harmlessly) on a nil tracer.
func (t *Tracer) Begin(name string, attrs ...obs.KV) *SpanRef {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	idx := t.nroots
	t.nroots++
	t.mu.Unlock()
	return &SpanRef{
		t:     t,
		id:    deriveID(t.track, idx),
		name:  name,
		start: t.now(),
		attrs: append([]obs.KV(nil), attrs...),
	}
}

// ID returns the span's identifier (0 on nil).
func (s *SpanRef) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a nested span. On a nil ref it returns nil.
func (s *SpanRef) Child(name string, attrs ...obs.KV) *SpanRef {
	if s == nil {
		return nil
	}
	idx := s.nchild
	s.nchild++
	return &SpanRef{
		t:      s.t,
		id:     deriveID(uint64(s.id), idx),
		parent: s.id,
		name:   name,
		start:  s.t.now(),
		attrs:  append([]obs.KV(nil), attrs...),
	}
}

// Link records a happens-before edge from the linked span to this one
// (the linked work completed before this span could proceed). Zero and
// duplicate IDs are dropped.
func (s *SpanRef) Link(id SpanID) {
	if s == nil || id == 0 {
		return
	}
	for _, l := range s.links {
		if l == id {
			return
		}
	}
	s.links = append(s.links, id)
}

// Annotate appends attributes to the open span.
func (s *SpanRef) Annotate(attrs ...obs.KV) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Start returns the span's start time (0 on nil).
func (s *SpanRef) Start() int64 {
	if s == nil {
		return 0
	}
	return s.start
}

// EmitChild records a completed child span with explicit boundaries —
// for intervals whose extent is only known in hindsight, like the
// backoff gap between two retry attempts. The ID is derived exactly
// like Child's; the returned ID is 0 on a nil ref.
func (s *SpanRef) EmitChild(name string, start, end int64, attrs ...obs.KV) SpanID {
	if s == nil {
		return 0
	}
	idx := s.nchild
	s.nchild++
	id := deriveID(uint64(s.id), idx)
	s.t.record(Span{
		ID:     id,
		Parent: s.id,
		Name:   name,
		Start:  start,
		End:    end,
		Attrs:  append([]obs.KV(nil), attrs...),
	})
	return id
}

// End closes the span at the tracer clock's current time, records it,
// and returns the end timestamp (0 on nil). Extra attributes are
// appended after those given at Begin. Callers close each span exactly
// once.
func (s *SpanRef) End(attrs ...obs.KV) int64 {
	if s == nil {
		return 0
	}
	s.attrs = append(s.attrs, attrs...)
	end := s.t.now()
	s.t.record(Span{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    end,
		Links:  s.links,
		Attrs:  s.attrs,
	})
	return end
}

// Emit records a completed root span with explicit boundaries — for
// converters that rebuild spans from an existing journal, like
// internal/conc's linearization-point Journal where each operation
// occupies its ticket index. The ID is derived exactly like Begin's;
// the returned ID is 0 on a nil tracer.
func (t *Tracer) Emit(name string, start, end int64, links []SpanID, attrs ...obs.KV) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	idx := t.nroots
	t.nroots++
	t.mu.Unlock()
	id := deriveID(t.track, idx)
	t.record(Span{
		ID:    id,
		Name:  name,
		Start: start,
		End:   end,
		Links: links,
		Attrs: append([]obs.KV(nil), attrs...),
	})
	return id
}

// record appends a completed span and notifies the mirror (outside the
// lock, like obs.Recorder's observer).
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	m := t.mirror
	t.mu.Unlock()
	if m != nil {
		m.ObserveSpan(sp)
	}
}

// Len returns the number of completed spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the completed spans in recorded order (nil
// on a nil tracer).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Append moves every completed span of src onto t in src's recorded
// order — the deterministic merge primitive, mirroring
// obs.Recorder.Append. Appending nil, or onto nil, no-ops; src is
// drained only when t is non-nil.
func (t *Tracer) Append(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	src.mu.Lock()
	moved := src.spans
	src.spans = nil
	src.mu.Unlock()
	if len(moved) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, moved...)
}

// WriteJSONL writes the completed spans as JSON Lines in recorded
// order — the byte-stable stream cmd/relaxtrace consumes. A nil
// tracer writes nothing and returns nil.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var buf []byte
	for _, sp := range t.spans {
		buf = appendSpanJSON(buf[:0], sp)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// SimClock is a Lamport clock with a physical witness: every read
// raises the clock to at least the injected source's current value and
// then ticks, so consecutive reads are strictly increasing even while
// the source stands still. Wired to a discrete-event engine's
// simulated time (scaled to integer microseconds), it gives spans real
// sim-time extents — backoff waits show up as large jumps — while
// zero-duration protocol steps still get distinct, ordered boundaries.
type SimClock struct {
	mu   sync.Mutex
	phys func() int64 // immutable after construction
	last int64        // guarded by mu
}

// NewSimClock builds a SimClock over a physical source (nil source
// makes a pure ticking counter).
func NewSimClock(phys func() int64) *SimClock {
	return &SimClock{phys: phys}
}

// Now implements obs.Clock: max(source, last+1).
func (c *SimClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.last + 1
	if c.phys != nil {
		if p := c.phys(); p > t {
			t = p
		}
	}
	c.last = t
	return t
}
