package trace

import (
	"io"
	"strconv"
	"sync"

	"relaxlattice/internal/obs"
)

// FlightRecorder is the degradation flight recorder: a bounded ring of
// the most recent spans and journal events, kept so that when the
// online relaxation checker reports a Violation, the refutation ships
// with its causal story — the protocol steps, ladder moves, and
// episodes that led up to the offending operation — without retaining
// the unbounded stream an indefinite-horizon run would otherwise
// accumulate.
//
// Attach it to a Tracer with SetMirror and to an obs.Recorder with
// SetObserver(fr.ObserveEvent). It is safe for concurrent use; in the
// deterministic soak harness every observation happens at a
// deterministic point, so dumps are byte-stable.
type FlightRecorder struct {
	mu      sync.Mutex
	spans   []Span      // guarded by mu; ring, capacity len(spans) once full
	events  []obs.Event // guarded by mu
	spanCap int         // immutable after construction
	evCap   int         // immutable after construction
	nspans  uint64      // guarded by mu; total spans observed
	nevents uint64      // guarded by mu; total events observed
}

// NewFlightRecorder builds a recorder keeping the most recent spanCap
// spans and eventCap events (each at least 1).
func NewFlightRecorder(spanCap, eventCap int) *FlightRecorder {
	if spanCap < 1 {
		spanCap = 1
	}
	if eventCap < 1 {
		eventCap = 1
	}
	return &FlightRecorder{spanCap: spanCap, evCap: eventCap}
}

// ObserveSpan implements Mirror: keep the span, evicting the oldest
// once the ring is full.
func (f *FlightRecorder) ObserveSpan(sp Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.spans) < f.spanCap {
		f.spans = append(f.spans, sp)
	} else {
		f.spans[f.nspans%uint64(f.spanCap)] = sp
	}
	f.nspans++
}

// ObserveEvent mirrors one journal event into the ring (the
// obs.Recorder.SetObserver hook).
func (f *FlightRecorder) ObserveEvent(e obs.Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.events) < f.evCap {
		f.events = append(f.events, e)
	} else {
		f.events[f.nevents%uint64(f.evCap)] = e
	}
	f.nevents++
}

// Spans returns the retained spans, oldest first.
func (f *FlightRecorder) Spans() []Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.orderedSpans()
}

// orderedSpans unrolls the ring. Caller holds mu.
//
//lint:ignore lock-guard caller holds mu (every call site is under Lock)
func (f *FlightRecorder) orderedSpans() []Span {
	if f.nspans <= uint64(len(f.spans)) {
		return append([]Span(nil), f.spans...)
	}
	head := int(f.nspans % uint64(f.spanCap))
	out := make([]Span, 0, len(f.spans))
	out = append(out, f.spans[head:]...)
	return append(out, f.spans[:head]...)
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []obs.Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.orderedEvents()
}

// orderedEvents unrolls the ring. Caller holds mu.
//
//lint:ignore lock-guard caller holds mu (every call site is under Lock)
func (f *FlightRecorder) orderedEvents() []obs.Event {
	if f.nevents <= uint64(len(f.events)) {
		return append([]obs.Event(nil), f.events...)
	}
	head := int(f.nevents % uint64(f.evCap))
	out := make([]obs.Event, 0, len(f.events))
	out = append(out, f.events[head:]...)
	return append(out, f.events[:head]...)
}

// Seen returns the total numbers of spans and events ever observed
// (retained or evicted).
func (f *FlightRecorder) Seen() (spans, events uint64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nspans, f.nevents
}

// WriteDump writes the flight-recorder contents as JSONL: one header
// object carrying the given attributes (the violation's kind, step,
// and operation) plus retained/seen counts, then every retained event
// ({"flight":"event",...}) and span ({"flight":"span",...}), each
// oldest first. The dump is the pinned artifact a refuted soak run
// ships alongside its nonzero exit. A nil recorder writes nothing.
func (f *FlightRecorder) WriteDump(w io.Writer, header ...obs.KV) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	spans := f.orderedSpans()
	events := f.orderedEvents()
	nspans, nevents := f.nspans, f.nevents
	f.mu.Unlock()

	buf := []byte(`{"flight":"header"`)
	for _, kv := range header {
		buf = append(buf, ',')
		buf = obs.AppendJSONString(buf, kv.K)
		buf = append(buf, ':')
		buf = obs.AppendJSONString(buf, kv.V)
	}
	buf = append(buf, `,"spans_kept":`...)
	buf = strconv.AppendInt(buf, int64(len(spans)), 10)
	buf = append(buf, `,"spans_seen":`...)
	buf = strconv.AppendUint(buf, nspans, 10)
	buf = append(buf, `,"events_kept":`...)
	buf = strconv.AppendInt(buf, int64(len(events)), 10)
	buf = append(buf, `,"events_seen":`...)
	buf = strconv.AppendUint(buf, nevents, 10)
	buf = append(buf, '}', '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, e := range events {
		buf = append([]byte(`{"flight":"event","body":`), e.AppendJSON(nil)...)
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for _, sp := range spans {
		buf = append([]byte(`{"flight":"span","body":`), appendSpanJSON(nil, sp)...)
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
