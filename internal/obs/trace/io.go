package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"relaxlattice/internal/obs"
)

// The JSONL span schema. Field order is fixed so streams are
// byte-stable:
//
//	{"id":H,"parent":H,"name":S,"start":N,"end":N,"links":[H,...],"k1":"v1",...}
//
// parent is omitted for roots and links when empty. Every remaining
// field is an ordered string attribute. The reserved keys cannot be
// used as attribute names.
var reservedKeys = map[string]bool{
	"id": true, "parent": true, "name": true,
	"start": true, "end": true, "links": true,
}

// appendSpanJSON appends one span as a JSON object with fixed field
// order. Attribute keys are emitted in recorded order.
func appendSpanJSON(dst []byte, sp Span) []byte {
	dst = append(dst, `{"id":"`...)
	dst = append(dst, sp.ID.String()...)
	if sp.Parent != 0 {
		dst = append(dst, `","parent":"`...)
		dst = append(dst, sp.Parent.String()...)
	}
	dst = append(dst, `","name":`...)
	dst = obs.AppendJSONString(dst, sp.Name)
	dst = append(dst, `,"start":`...)
	dst = strconv.AppendInt(dst, sp.Start, 10)
	dst = append(dst, `,"end":`...)
	dst = strconv.AppendInt(dst, sp.End, 10)
	if len(sp.Links) > 0 {
		dst = append(dst, `,"links":[`...)
		for i, l := range sp.Links {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, '"')
			dst = append(dst, l.String()...)
			dst = append(dst, '"')
		}
		dst = append(dst, ']')
	}
	for _, kv := range sp.Attrs {
		dst = append(dst, ',')
		dst = obs.AppendJSONString(dst, kv.K)
		dst = append(dst, ':')
		dst = obs.AppendJSONString(dst, kv.V)
	}
	return append(dst, '}')
}

// AppendJSON exposes the span encoding for flight-recorder dumps.
func AppendJSON(dst []byte, sp Span) []byte { return appendSpanJSON(dst, sp) }

// ParseSpan decodes one JSONL span line, preserving attribute order
// (encoding/json's map decoding would lose it, so the object is walked
// token by token).
func ParseSpan(line []byte) (Span, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	var sp Span
	tok, err := dec.Token()
	if err != nil {
		return sp, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return sp, fmt.Errorf("trace: span line is not a JSON object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return sp, err
		}
		key, ok := keyTok.(string)
		if !ok {
			return sp, fmt.Errorf("trace: non-string key in span object")
		}
		switch key {
		case "id", "parent":
			var s string
			if err := dec.Decode(&s); err != nil {
				return sp, fmt.Errorf("trace: field %s: %w", key, err)
			}
			id, err := ParseSpanID(s)
			if err != nil {
				return sp, fmt.Errorf("trace: field %s: %w", key, err)
			}
			if key == "id" {
				sp.ID = id
			} else {
				sp.Parent = id
			}
		case "name":
			if err := dec.Decode(&sp.Name); err != nil {
				return sp, fmt.Errorf("trace: field name: %w", err)
			}
		case "start", "end":
			var n int64
			if err := dec.Decode(&n); err != nil {
				return sp, fmt.Errorf("trace: field %s: %w", key, err)
			}
			if key == "start" {
				sp.Start = n
			} else {
				sp.End = n
			}
		case "links":
			var raw []string
			if err := dec.Decode(&raw); err != nil {
				return sp, fmt.Errorf("trace: field links: %w", err)
			}
			sp.Links = make([]SpanID, len(raw))
			for i, s := range raw {
				id, err := ParseSpanID(s)
				if err != nil {
					return sp, fmt.Errorf("trace: link %d: %w", i, err)
				}
				sp.Links[i] = id
			}
		default:
			var v string
			if err := dec.Decode(&v); err != nil {
				return sp, fmt.Errorf("trace: attribute %s: %w", key, err)
			}
			sp.Attrs = append(sp.Attrs, obs.KV{K: key, V: v})
		}
	}
	if sp.ID == 0 {
		return sp, fmt.Errorf("trace: span line has no id")
	}
	return sp, nil
}

// ReadJSONL reads a whole span stream (one JSON object per line; blank
// lines are skipped).
func ReadJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		sp, err := ParseSpan(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
