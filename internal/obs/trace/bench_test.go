package trace

import (
	"bytes"
	"testing"

	"relaxlattice/internal/obs"
)

// benchStream builds a fixed span stream shaped like a traced soak:
// nRoots root operations, each with three protocol-step children and
// one happens-before link.
func benchStream(b *testing.B, nRoots int) []Span {
	b.Helper()
	tr := NewTracer("bench", nil)
	for i := 0; i < nRoots; i++ {
		root := tr.Begin("op", obs.KV{K: "rung", V: "Q1Q2"})
		s1 := root.Child("prepare")
		s1.End()
		s2 := root.Child("vote")
		s2.Link(s1.ID())
		s2.End()
		root.Child("commit").End()
		root.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		b.Fatal(err)
	}
	spans, err := ReadJSONL(&buf)
	if err != nil {
		b.Fatal(err)
	}
	return spans
}

// BenchmarkSpanEmit measures the tracer's per-operation cost: one root
// with three child steps — the shape of one traced quorum op. The
// tracer is recycled periodically so retained-span memory stays
// bounded across large b.N.
func BenchmarkSpanEmit(b *testing.B) {
	tr := NewTracer("bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			tr = NewTracer("bench", nil)
		}
		root := tr.Begin("op", obs.KV{K: "rung", V: "Q1Q2"})
		root.Child("prepare").End()
		root.Child("vote").End()
		root.Child("commit").End()
		root.End()
	}
}

// BenchmarkAnalyze measures the critical-path sweep over a 4096-span
// stream (1024 roots × 4 spans).
func BenchmarkAnalyze(b *testing.B) {
	spans := benchStream(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := Analyze(spans)
		if an.Roots != 1024 {
			b.Fatalf("roots = %d", an.Roots)
		}
	}
}
