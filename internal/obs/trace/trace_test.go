package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"relaxlattice/internal/obs"
)

// buildStream emits a deterministic little span forest on t: n root
// operations, each with two protocol-step children and a link from the
// second child to the first. prev seeds the cross-operation link chain
// and the final link is returned, so split builds reproduce a serial
// one.
func buildStream(t *Tracer, n int, prev SpanID) SpanID {
	for i := 0; i < n; i++ {
		op := t.Begin("op", obs.KV{K: "rung", V: "Q1Q2"})
		s1 := op.Child("step1.view")
		s1.End()
		s2 := op.Child("step2.quorum")
		s2.Link(s1.ID())
		s2.Link(prev)
		s2.End()
		prev = s2.ID()
		op.End()
	}
	return prev
}

func TestSpanIDDeterminism(t *testing.T) {
	a, b := NewTracer("trk", nil), NewTracer("trk", nil)
	buildStream(a, 3, 0)
	buildStream(b, 3, 0)
	sa, sb := a.Spans(), b.Spans()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("same construction produced different spans:\n%v\n%v", sa, sb)
	}
	other := NewTracer("other", nil)
	buildStream(other, 1, 0)
	if other.Spans()[0].ID == sa[0].ID {
		t.Fatalf("different tracks produced the same root ID")
	}
}

func TestTracerAppendMergeStable(t *testing.T) {
	// Serial: one tracer runs both units in order.
	serial := NewTracer("merge", nil)
	buildStream(serial, 2, 0)

	// Parallel-shaped: per-unit scratch tracers merged in unit order.
	// Root indices are per-tracer, so scratch tracks must be distinct
	// per unit — the same discipline the soak harness uses.
	main := NewTracer("merge", nil)
	u0 := NewTracer("merge", nil)
	prev := buildStream(u0, 1, 0)
	u1 := NewTracer("merge", nil)
	// Advance u1's root index so its roots continue the serial numbering.
	u1.nroots = 1
	u1.ltime.Witness(u0.ltime.Now())
	buildStream(u1, 1, prev)
	main.Append(u0)
	main.Append(u1)

	var bs, bm bytes.Buffer
	if err := serial.WriteJSONL(&bs); err != nil {
		t.Fatal(err)
	}
	if err := main.WriteJSONL(&bm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bm.Bytes()) {
		t.Fatalf("merged stream differs from serial stream:\n%s\n---\n%s", bs.Bytes(), bm.Bytes())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer("rt", nil)
	buildStream(tr, 3, 0)
	want := tr.Spans()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %v\ngot  %v", want, got)
	}
}

func TestSimClockStrictlyIncreasing(t *testing.T) {
	phys := int64(0)
	c := NewSimClock(func() int64 { return phys })
	prev := c.Now()
	for i := 0; i < 10; i++ {
		if v := c.Now(); v <= prev {
			t.Fatalf("clock not strictly increasing: %d after %d", v, prev)
		} else {
			prev = v
		}
	}
	phys = 1000
	if v := c.Now(); v != 1000 {
		t.Fatalf("clock did not jump to physical witness: %d", v)
	}
	phys = 1000
	if v := c.Now(); v != 1001 {
		t.Fatalf("clock not strictly increasing past witness: %d", v)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(4, 3)
	tr := NewTracer("fr", nil)
	tr.SetMirror(fr)
	rec := obs.NewRecorder()
	rec.SetObserver(fr.ObserveEvent)

	for i := 0; i < 10; i++ {
		s := tr.Begin("op")
		s.End()
		rec.Record(int64(i), "ev")
	}
	spans, events := fr.Seen()
	if spans != 10 || events != 10 {
		t.Fatalf("seen = (%d,%d), want (10,10)", spans, events)
	}
	got := fr.Spans()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	all := tr.Spans()
	for i, sp := range got {
		if sp.ID != all[6+i].ID {
			t.Fatalf("span ring not oldest-first after wrap: slot %d = %v, want %v", i, sp.ID, all[6+i].ID)
		}
	}
	evs := fr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.T != int64(7+i) {
			t.Fatalf("event ring not oldest-first after wrap: slot %d T=%d, want %d", i, e.T, 7+i)
		}
	}

	var dump bytes.Buffer
	if err := fr.WriteDump(&dump, obs.KV{K: "kind", V: "claim"}); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(dump.Bytes()), []byte("\n"))
	if len(lines) != 1+3+4 {
		t.Fatalf("dump has %d lines, want 8:\n%s", len(lines), dump.Bytes())
	}
	var hdr map[string]any
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatalf("header not JSON: %v", err)
	}
	if hdr["kind"] != "claim" || hdr["spans_seen"] != float64(10) || hdr["spans_kept"] != float64(4) {
		t.Fatalf("bad header: %v", hdr)
	}
	for _, line := range lines[1:] {
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("dump line not JSON: %v\n%s", err, line)
		}
	}
}

func TestFlightRecorderUnderfilled(t *testing.T) {
	fr := NewFlightRecorder(8, 8)
	tr := NewTracer("uf", nil)
	tr.SetMirror(fr)
	for i := 0; i < 3; i++ {
		tr.Begin("op").End()
	}
	if got := fr.Spans(); len(got) != 3 {
		t.Fatalf("retained %d spans, want 3", len(got))
	}
}

func TestAnalyzeCriticalPath(t *testing.T) {
	// op [0,100] with rung Q1; children step1 [10,30], step2 [40,90].
	// Critical path: op self = (100-90)+(40-30)+(10-0) = 30,
	// step2 = 50, step1 = 20.
	spans := []Span{
		{ID: 2, Parent: 1, Name: "step1", Start: 10, End: 30},
		{ID: 3, Parent: 1, Name: "step2", Start: 40, End: 90},
		{ID: 1, Name: "op", Start: 0, End: 100, Attrs: []obs.KV{{K: "rung", V: "Q1"}}},
	}
	an := Analyze(spans)
	if an.Spans != 3 || an.Roots != 1 || an.Orphans != 0 {
		t.Fatalf("bad shape: %+v", an)
	}
	if an.Wall != 100 || an.Critical != 100 {
		t.Fatalf("wall=%d critical=%d, want 100/100", an.Wall, an.Critical)
	}
	byName := map[string]NameStat{}
	for _, s := range an.ByName {
		byName[s.Name] = s
	}
	if s := byName["op"]; s.Self != 30 || s.Critical != 30 || s.Total != 100 {
		t.Fatalf("op stat: %+v", s)
	}
	if s := byName["step1"]; s.Self != 20 || s.Critical != 20 {
		t.Fatalf("step1 stat: %+v", s)
	}
	if s := byName["step2"]; s.Self != 50 || s.Critical != 50 {
		t.Fatalf("step2 stat: %+v", s)
	}
	if len(an.ByRung) != 1 || an.ByRung[0].Rung != "Q1" || an.ByRung[0].Critical != 100 {
		t.Fatalf("rung attribution: %+v", an.ByRung)
	}
	// JSON is deterministic.
	j1 := an.AppendJSON(nil)
	j2 := Analyze(spans).AppendJSON(nil)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("analysis JSON not deterministic")
	}
	var obj map[string]any
	if err := json.Unmarshal(j1, &obj); err != nil {
		t.Fatalf("analysis JSON invalid: %v\n%s", err, j1)
	}
}

func TestAnalyzeOverlapAndOrphan(t *testing.T) {
	spans := []Span{
		{ID: 5, Parent: 99, Name: "lost", Start: 0, End: 10},
		{ID: 1, Name: "op", Start: 0, End: 50},
		{ID: 2, Parent: 1, Name: "a", Start: 0, End: 30},
		{ID: 3, Parent: 1, Name: "b", Start: 20, End: 50},
	}
	an := Analyze(spans)
	if an.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", an.Orphans)
	}
	// op covered entirely by children union [0,50]: self 0.
	byName := map[string]NameStat{}
	for _, s := range an.ByName {
		byName[s.Name] = s
	}
	if s := byName["op"]; s.Self != 0 {
		t.Fatalf("op self = %d, want 0", s.Self)
	}
	// Critical sweep: b covers [20,50], then a's part before 20 → [0,20].
	if s := byName["b"]; s.Critical != 30 {
		t.Fatalf("b critical = %d, want 30", s.Critical)
	}
	if s := byName["a"]; s.Critical != 20 {
		t.Fatalf("a critical = %d, want 20", s.Critical)
	}
	if an.Critical != 50+10 { // op tree + orphan tree
		t.Fatalf("critical = %d, want 60", an.Critical)
	}
}

func TestChromeExportSchema(t *testing.T) {
	tr := NewTracer("chrome", nil)
	buildStream(tr, 2, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != tr.Len() {
		t.Fatalf("exported %d events, want %d", len(doc.TraceEvents), tr.Len())
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("event %d ph=%v, want X", i, ev["ph"])
		}
		args, ok := ev["args"].(map[string]any)
		if !ok || args["id"] == "" {
			t.Fatalf("event %d args missing id: %v", i, ev)
		}
	}
	// Determinism.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("chrome export not deterministic")
	}
}

func TestRecorderCompactBefore(t *testing.T) {
	r := obs.NewRecorder()
	for i := 0; i < 10; i++ {
		r.Record(int64(i), "ev")
	}
	if n := r.CompactBefore(7); n != 7 {
		t.Fatalf("dropped %d, want 7", n)
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].T != 7 {
		t.Fatalf("compaction kept %v", evs)
	}
}
