package obs

import (
	"bytes"
	"testing"
)

func TestRecorderJSONL(t *testing.T) {
	r := NewRecorder()
	r.Record(1, "start", KV{K: "who", V: "T1"})
	r.Record(2, "stop")
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1,"name":"start","who":"T1"}
{"t":2,"name":"stop"}
`
	if buf.String() != want {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONStringEscaping(t *testing.T) {
	cases := map[string]string{
		`plain`:          `"plain"`,
		"quote\"back":    `"quote\"back"`,
		`back\slash`:     `"back\\slash"`,
		"nl\ntab\t":      `"nl\ntab\t"`,
		"cr\r":           `"cr\r"`,
		"ctl\x01":        `"ctl\u0001"`,
		"unicode ∅ φ(C)": `"unicode ∅ φ(C)"`,
	}
	for in, want := range cases {
		if got := string(appendJSONString(nil, in)); got != want {
			t.Errorf("appendJSONString(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestRecorderAppendOrder(t *testing.T) {
	a, b, sink := NewRecorder(), NewRecorder(), NewRecorder()
	a.Record(5, "a1")
	a.Record(6, "a2")
	b.Record(1, "b1")
	sink.Append(a)
	sink.Append(b)
	evs := sink.Events()
	if len(evs) != 3 || evs[0].Name != "a1" || evs[1].Name != "a2" || evs[2].Name != "b1" {
		t.Fatalf("append order wrong: %v", evs)
	}
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatalf("sources not drained: %d, %d", a.Len(), b.Len())
	}
}

func TestRecorderSortStable(t *testing.T) {
	r := NewRecorder()
	r.Record(2, "late")
	r.Record(1, "early-a")
	r.Record(1, "early-b")
	r.SortStable()
	evs := r.Events()
	if evs[0].Name != "early-a" || evs[1].Name != "early-b" || evs[2].Name != "late" {
		t.Fatalf("sort order wrong: %v", evs)
	}
}

func TestRecorderSpan(t *testing.T) {
	r := NewRecorder()
	r.Span(1, 9, "phase", KV{K: "id", V: "E01"})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Name != "phase.begin" || evs[0].T != 1 ||
		evs[1].Name != "phase.end" || evs[1].T != 9 {
		t.Fatalf("span events wrong: %v", evs)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, "x")
	r.Span(1, 2, "y")
	r.Append(NewRecorder())
	NewRecorder().Append(r)
	r.SortStable()
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder WriteJSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 3, Name: "cluster.episode", Attrs: []KV{{K: "behavior", V: "reject"}}}
	if got := e.String(); got != "[3] cluster.episode behavior=reject" {
		t.Fatalf("String() = %q", got)
	}
}

func TestLogicalClock(t *testing.T) {
	var l Logical
	if l.Now() != 0 {
		t.Fatal("zero value should read 0")
	}
	if l.Tick() != 1 || l.Tick() != 2 {
		t.Fatal("Tick should advance by one")
	}
	l.Witness(10)
	if l.Now() != 10 {
		t.Fatalf("Witness should raise to 10, got %d", l.Now())
	}
	l.Witness(5) // lower: no-op
	if l.Now() != 10 {
		t.Fatalf("Witness must not lower the clock, got %d", l.Now())
	}
}
