package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// KV is one event attribute. Values are strings; callers format numbers
// themselves (strconv), keeping the journal schema trivially stable.
type KV struct {
	K, V string
}

// Event is one entry in a Recorder's journal: a named occurrence at a
// logical time with ordered attributes. T is whatever logical clock the
// emitting component injects — a Lamport tick, a schedule index, an
// exploration depth — never wall time.
type Event struct {
	T     int64
	Name  string
	Attrs []KV
}

// Attr returns the value of the named attribute and whether it is
// present. Linear scan: events carry a handful of attributes.
func (e Event) Attr(key string) (string, bool) {
	for _, kv := range e.Attrs {
		if kv.K == key {
			return kv.V, true
		}
	}
	return "", false
}

// AppendJSONString appends s as a JSON string literal — the shared
// no-error-path encoder of the journal and span streams (see
// appendJSONString for why it is hand-rolled).
func AppendJSONString(dst []byte, s string) []byte {
	return appendJSONString(dst, s)
}

// appendJSONString appends s as a JSON string literal. Hand-rolled so
// the journal encoder has no error path (encoding/json cannot fail on
// strings, but its API still returns an error relaxlint would make us
// handle at every call site).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch r {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			if r < 0x20 {
				dst = append(dst, fmt.Sprintf("\\u%04x", r)...)
			} else {
				dst = utf8AppendRune(dst, r)
			}
		}
	}
	return append(dst, '"')
}

// utf8AppendRune appends the UTF-8 encoding of r.
func utf8AppendRune(dst []byte, r rune) []byte {
	return append(dst, string(r)...)
}

// AppendJSON exposes the event encoding for flight-recorder dumps.
func (e Event) AppendJSON(dst []byte) []byte { return e.appendJSON(dst) }

// appendJSON appends the event as one JSON object with fixed field
// order: {"t":…,"name":…,"k1":"v1",…}. Attribute keys are emitted in
// the order recorded; components keep that order fixed per event name.
func (e Event) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, e.T, 10)
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, e.Name)
	for _, kv := range e.Attrs {
		dst = append(dst, ',')
		dst = appendJSONString(dst, kv.K)
		dst = append(dst, ':')
		dst = appendJSONString(dst, kv.V)
	}
	return append(dst, '}')
}

// String renders the event for logs and tests.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d] %s", e.T, e.Name)
	for _, kv := range e.Attrs {
		fmt.Fprintf(&b, " %s=%s", kv.K, kv.V)
	}
	return b.String()
}

// Recorder is an append-only journal of logical-clock events. It is
// safe for concurrent use, but ordering across goroutines is whatever
// the lock admits — deterministic journals come from recording at
// deterministic points (under a component's own mutex, or from a
// single goroutine) and from merging per-worker recorders in a fixed
// order (see Append). A nil *Recorder no-ops everywhere, so callers
// instrument unconditionally.
type Recorder struct {
	mu       sync.Mutex
	events   []Event     // guarded by mu
	observer func(Event) // guarded by mu
}

// NewRecorder returns an empty journal.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Record appends one event; it no-ops on a nil receiver. Attrs are
// copied, so callers may reuse their slice.
func (r *Recorder) Record(t int64, name string, attrs ...KV) {
	if r == nil {
		return
	}
	e := Event{T: t, Name: name, Attrs: append([]KV(nil), attrs...)}
	r.mu.Lock()
	r.events = append(r.events, e)
	obsv := r.observer
	r.mu.Unlock()
	if obsv != nil {
		obsv(e)
	}
}

// SetObserver installs a callback invoked (outside the journal lock)
// for every subsequently recorded event — the hook the degradation
// flight recorder uses to mirror recent events into its bounded ring.
// nil detaches. Appended batches (Append) are not observed: they were
// already observed at their original Record site, if one was attached.
func (r *Recorder) SetObserver(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = fn
}

// CompactBefore drops every event with T < t — the checkpoint-keyed
// journal compaction of the audit sidecar: once a checker checkpoint
// at logical time t is durable, the events before it are evidence the
// checkpoint has absorbed, and a bounded-memory sidecar may forget
// them (what is lost is forensic attribution for that prefix, never a
// future verdict — see DESIGN.md §14). It returns the number of events
// dropped; no-op on nil.
func (r *Recorder) CompactBefore(t int64) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.events[:0]
	for _, e := range r.events {
		if e.T >= t {
			kept = append(kept, e)
		}
	}
	dropped := len(r.events) - len(kept)
	r.events = kept
	return dropped
}

// Span records a begin/end pair as two events sharing the attrs —
// "<name>.begin" at t0 and "<name>.end" at t1. It no-ops on nil.
func (r *Recorder) Span(t0, t1 int64, name string, attrs ...KV) {
	if r == nil {
		return
	}
	r.Record(t0, name+".begin", attrs...)
	r.Record(t1, name+".end", attrs...)
}

// Append moves every event of src onto r in src's recorded order —
// the deterministic merge primitive: create one scratch Recorder per
// unit of work, then Append them in unit order. Appending nil, or onto
// nil, no-ops; src is drained either way only when r is non-nil.
func (r *Recorder) Append(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	moved := src.events
	src.events = nil
	src.mu.Unlock()
	if len(moved) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, moved...)
}

// Len returns the number of recorded events (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the journal (nil on a nil receiver).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// SortStable stably sorts the journal by logical time, preserving
// recorded order among equal times. Useful when a caller interleaves
// recorders whose clocks share a domain. No-op on nil.
func (r *Recorder) SortStable() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.SliceStable(r.events, func(i, j int) bool { return r.events[i].T < r.events[j].T })
}

// WriteJSONL writes the journal as JSON Lines, one event per line —
// the byte-stable format `relaxctl run -trace` emits. A nil receiver
// writes nothing and returns nil.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var buf []byte
	for _, e := range r.events {
		buf = e.appendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
