// Package sim provides the simulation substrate shared by the cluster
// and transaction runtimes: a seeded deterministic random source, a
// discrete-event engine for crash/repair/propagation processes,
// workload generators, and small metrics/table helpers used by the
// experiment harness. All randomness in the library flows through RNG,
// so every experiment is reproducible bit-for-bit from its seed.
package sim

import "math/rand"

// RNG is a seeded pseudo-random source. It is not safe for concurrent
// use; give each concurrent client its own Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent generator deterministically, so
// concurrent components draw reproducible streams regardless of
// interleaving.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean
// (inter-arrival times of Poisson processes).
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac] —
// the spread retry/backoff policies apply to scheduled delays so
// synchronized clients desynchronize. frac is clamped to [0, 1]; a
// non-positive frac returns d unchanged without consuming randomness.
func (g *RNG) Jitter(d, frac float64) float64 {
	if frac <= 0 {
		return d
	}
	if frac > 1 {
		frac = 1
	}
	return d * (1 + frac*(2*g.Float64()-1))
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Pick returns a uniformly chosen index weighted by weights (all
// non-negative, not all zero; it panics otherwise — a workload
// configuration error).
func (g *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("sim: weights sum to zero")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
