package sim

import (
	"math"
	"strings"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	if NewRNG(1).Intn(10) != NewRNG(1).Intn(10) {
		t.Errorf("Intn not deterministic")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	s1 := g.Split()
	s2 := g.Split()
	// The two splits must themselves be deterministic given the parent
	// seed, and distinct from one another.
	same := true
	for i := 0; i < 20; i++ {
		if s1.Float64() != s2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Errorf("splits produced identical streams")
	}
}

func TestRNGBool(t *testing.T) {
	g := NewRNG(3)
	if !g.Bool(1.0) {
		t.Errorf("Bool(1) must be true")
	}
	n := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if g.Bool(0.25) {
			n++
		}
	}
	if f := float64(n) / trials; math.Abs(f-0.25) > 0.02 {
		t.Errorf("Bool(0.25) frequency = %v", f)
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(5)
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += g.Exp(4.0)
	}
	if mean := sum / trials; math.Abs(mean-4.0) > 0.2 {
		t.Errorf("Exp mean = %v, want ≈4", mean)
	}
}

func TestRNGPick(t *testing.T) {
	g := NewRNG(11)
	counts := [3]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[g.Pick([]float64{1, 2, 1})]++
	}
	if f := float64(counts[1]) / trials; math.Abs(f-0.5) > 0.02 {
		t.Errorf("Pick weighted frequency = %v", f)
	}
	for name, fn := range map[string]func(){
		"negative": func() { g.Pick([]float64{-1, 1}) },
		"zero":     func() { g.Pick([]float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEngineOrdersEvents(t *testing.T) {
	var e Engine
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	n := e.Run(10)
	if n != 3 {
		t.Fatalf("executed %d", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run(2)
	for i, got := range order {
		if got != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestEngineHorizonAndCascade(t *testing.T) {
	var e Engine
	fired := 0
	// Events schedule follow-ups; only those within the horizon run.
	var tick func()
	tick = func() {
		fired++
		e.After(1, tick)
	}
	e.After(0, tick)
	e.Run(5)
	if fired != 6 { // t=0..5
		t.Errorf("fired = %d", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Past-time scheduling clamps to now.
	ran := false
	e.At(0, func() { ran = true })
	e.Run(5)
	if !ran {
		t.Errorf("past event never ran")
	}
}

func TestCounterAndRatio(t *testing.T) {
	c := NewCounter()
	c.Add("x", 2)
	c.Add("x", 1)
	c.Add("y", 5)
	if c.Get("x") != 3 || c.Get("y") != 5 || c.Get("z") != 0 {
		t.Errorf("counter wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
	var r Ratio
	if r.Value() != 0 {
		t.Errorf("empty ratio = %v", r.Value())
	}
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	if r.Value() != 2.0/3.0 {
		t.Errorf("ratio = %v", r.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "p", "count")
	tb.AddRow("alpha", 0.25, 10)
	tb.AddRow("b", 0.5, 2)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "count") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "0.25") {
		t.Errorf("row = %q", lines[2])
	}
	// Floats render without trailing zeros.
	if strings.Contains(s, "0.250000") {
		t.Errorf("unclean float: %q", s)
	}
}
