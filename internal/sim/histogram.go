package sim

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates float64 samples and reports summary statistics
// and quantiles. It stores samples exactly (intended for simulation
// scales, not unbounded streams).
type Histogram struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.samples = append(h.samples, x)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range h.samples {
		total += x
	}
	return total / float64(len(h.samples))
}

// Quantile returns the q-quantile for q in [0, 1] (nearest-rank; 0 when
// empty). It panics on q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("sim: quantile %v outside [0,1]", q))
	}
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Summary renders count, mean, and the 50th/95th/99th percentiles.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f",
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
}
