package sim

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram wrong")
	}
	for _, x := range []float64{3, 1, 2, 5, 4} {
		h.Observe(x)
	}
	if h.N() != 5 || h.Mean() != 3 {
		t.Errorf("n=%d mean=%v", h.N(), h.Mean())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(1.0); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Quantile(0.0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if !strings.Contains(h.Summary(), "n=5") {
		t.Errorf("Summary = %q", h.Summary())
	}
	// Observing after a quantile query re-sorts lazily.
	h.Observe(0)
	if got := h.Quantile(0.0); got != 0 {
		t.Errorf("p0 after observe = %v", got)
	}
}

func TestHistogramQuantileOfExponential(t *testing.T) {
	g := NewRNG(9)
	var h Histogram
	for i := 0; i < 50000; i++ {
		h.Observe(g.Exp(2.0))
	}
	// Median of Exp(mean 2) is 2·ln 2 ≈ 1.386.
	if got := h.Quantile(0.5); math.Abs(got-2*math.Ln2) > 0.05 {
		t.Errorf("median = %v, want ≈%v", got, 2*math.Ln2)
	}
}

func TestHistogramQuantilePanics(t *testing.T) {
	var h Histogram
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	h.Quantile(1.5)
}
