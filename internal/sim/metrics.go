package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counter counts named occurrences.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: map[string]int{}} }

// Add increments a named count.
func (c *Counter) Add(name string, delta int) { c.counts[name] += delta }

// Get returns a named count.
func (c *Counter) Get(name string) int { return c.counts[name] }

// Names returns the recorded names, sorted.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ratio is a success/total frequency estimator.
type Ratio struct {
	Hits, Total int
}

// Observe records one trial.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns the observed frequency (0 when empty).
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Table accumulates rows and renders them with aligned columns — the
// experiment harness uses it to print the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, width int) string {
	n := width - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}
