package sim

import "container/heap"

// Engine is a discrete-event simulation engine: events are scheduled at
// logical times and executed in time order (FIFO among equal times).
// The zero value is ready to use.
type Engine struct {
	now   float64
	queue eventQueue
	seq   int
}

type event struct {
	at  float64
	seq int
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (clamped to the present if t is in
// the past).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn after a delay.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// Every schedules fn repeatedly: first after delay(), then again after
// each subsequent delay(), for as long as fn returns true. delay is
// re-evaluated per round, so callers can jitter the period. Recurring
// processes built this way (probe loops, fault injectors) keep the
// queue non-empty; Run's horizon bounds execution regardless.
func (e *Engine) Every(delay func() float64, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			e.After(delay(), tick)
		}
	}
	e.After(delay(), tick)
}

// Run executes events until the queue is empty or the horizon is
// passed, returning the number of events executed. Events scheduled
// beyond the horizon remain queued.
func (e *Engine) Run(horizon float64) int {
	executed := 0
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		executed++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return executed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
