// Package commit implements the two-phase commitment protocol the
// paper cites (Section 2, citing Gray's notes and Eswaran et al.) as
// one of the standard techniques for making operations atomic: an
// operation either takes place completely or not at all. The
// implementation is a deterministic protocol simulation with fault
// injection — coordinator and participant crashes at every interesting
// point — plus the cooperative termination protocol that lets surviving
// participants finish when the coordinator is down, and the recovery
// path that resolves blocked participants when it returns.
package commit

import (
	"errors"
	"fmt"
)

// Vote is a participant's answer to the prepare request.
type Vote int

// Participant votes.
const (
	VoteYes Vote = iota + 1
	VoteNo
)

// Decision is a transaction outcome at one node.
type Decision int

// Decisions. Pending means the node has not learned an outcome (a
// prepared participant stays pending — blocked — until it learns).
const (
	DecisionPending Decision = iota
	DecisionCommit
	DecisionAbort
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case DecisionCommit:
		return "commit"
	case DecisionAbort:
		return "abort"
	default:
		return "pending"
	}
}

// Faults configures crash injection for one protocol run.
type Faults struct {
	// CrashBeforeVote crashes these participants before they receive
	// the prepare request (they never vote).
	CrashBeforeVote map[int]bool
	// CrashAfterVote crashes these participants right after voting
	// (they are prepared but unreachable during decision broadcast).
	CrashAfterVote map[int]bool
	// CoordCrashAfterPrepare crashes the coordinator after collecting
	// votes but before logging a decision — the classic blocking
	// window.
	CoordCrashAfterPrepare bool
	// CoordCrashAfterLog crashes the coordinator after logging the
	// decision but before telling anyone.
	CoordCrashAfterLog bool
	// CoordCrashMidBroadcast crashes the coordinator after informing
	// only the first still-up participant.
	CoordCrashMidBroadcast bool
}

// participant is one resource manager.
type participant struct {
	vote     Vote
	voted    bool
	prepared bool // voted yes and is bound by the protocol
	decision Decision
	crashed  bool
}

// TwoPC is one transaction's protocol instance.
type TwoPC struct {
	parts []*participant
	// coordLog is the coordinator's durable decision record (survives
	// coordinator crashes).
	coordLog Decision
	// coordUp reports whether the coordinator process is running.
	coordUp bool
}

// New creates a protocol instance with n participants.
func New(n int) *TwoPC {
	if n < 1 {
		panic(fmt.Sprintf("commit: %d participants", n))
	}
	t := &TwoPC{parts: make([]*participant, n), coordUp: true}
	for i := range t.parts {
		t.parts[i] = &participant{}
	}
	return t
}

// Outcome summarizes a protocol run.
type Outcome struct {
	// Coordinator is the coordinator's logged decision (Pending if it
	// crashed before logging).
	Coordinator Decision
	// Participants is each participant's decision; crashed or blocked
	// participants may be Pending.
	Participants []Decision
	// Blocked lists prepared participants stuck at Pending — they hold
	// locks and can neither commit nor abort until recovery.
	Blocked []int
}

// Run executes the protocol with the given votes and faults. It never
// returns an inconsistent state; progress is what faults permit.
func (t *TwoPC) Run(votes []Vote, faults Faults) Outcome {
	if len(votes) != len(t.parts) {
		panic(fmt.Sprintf("commit: %d votes for %d participants", len(votes), len(t.parts)))
	}
	// Phase 1: prepare. The coordinator asks everyone to vote.
	allYes := true
	for i, p := range t.parts {
		if faults.CrashBeforeVote[i] {
			p.crashed = true
			allYes = false // a silent participant counts as a No
			continue
		}
		p.vote = votes[i]
		p.voted = true
		if votes[i] == VoteYes {
			p.prepared = true
		} else {
			allYes = false
			// A No voter may unilaterally abort.
			p.decision = DecisionAbort
		}
		if faults.CrashAfterVote[i] {
			p.crashed = true
		}
	}

	if faults.CoordCrashAfterPrepare {
		t.coordUp = false
		return t.terminate()
	}

	// Phase 2: the coordinator logs the decision durably...
	if allYes {
		t.coordLog = DecisionCommit
	} else {
		t.coordLog = DecisionAbort
	}
	if faults.CoordCrashAfterLog {
		t.coordUp = false
		return t.terminate()
	}

	// ...and broadcasts it.
	informed := 0
	for _, p := range t.parts {
		if p.crashed {
			continue
		}
		p.decision = t.coordLog
		informed++
		if faults.CoordCrashMidBroadcast && informed == 1 {
			t.coordUp = false
			break
		}
	}
	return t.terminate()
}

// terminate runs the cooperative termination protocol: undecided
// participants ask the coordinator (if up) or their peers. A prepared
// participant that reaches neither a decision-holder nor a No voter
// stays blocked.
func (t *TwoPC) terminate() Outcome {
	// One pass suffices: decisions only propagate, never change.
	known := DecisionPending
	if t.coordUp {
		known = t.coordLog
	}
	if known == DecisionPending {
		for _, p := range t.parts {
			if !p.crashed && p.decision != DecisionPending {
				known = p.decision
				break
			}
		}
	}
	// If some reachable participant never prepared, everyone may abort:
	// the coordinator cannot have logged a commit... unless it did and
	// told no one — but commit requires all-yes, so an unprepared
	// participant proves the decision was abort (or never made).
	if known == DecisionPending {
		for _, p := range t.parts {
			if !p.crashed && (!p.voted || p.vote == VoteNo) {
				known = DecisionAbort
				break
			}
		}
	}
	if known != DecisionPending {
		for _, p := range t.parts {
			if !p.crashed && (p.prepared || p.decision == DecisionPending) && p.decision == DecisionPending {
				p.decision = known
			}
		}
	}
	return t.outcome()
}

// RecoverCoordinator restarts the coordinator, which completes the
// protocol from its durable log: an un-logged decision aborts (standard
// presumed-abort recovery), a logged decision is re-broadcast.
func (t *TwoPC) RecoverCoordinator() Outcome {
	t.coordUp = true
	if t.coordLog == DecisionPending {
		t.coordLog = DecisionAbort
	}
	for _, p := range t.parts {
		if !p.crashed && p.decision == DecisionPending {
			p.decision = t.coordLog
		}
	}
	return t.outcome()
}

// RecoverParticipant restarts a crashed participant, which learns the
// outcome from the coordinator or peers if any decision is reachable.
func (t *TwoPC) RecoverParticipant(i int) Outcome {
	t.parts[i].crashed = false
	return t.terminate()
}

func (t *TwoPC) outcome() Outcome {
	out := Outcome{Coordinator: t.coordLog, Participants: make([]Decision, len(t.parts))}
	for i, p := range t.parts {
		out.Participants[i] = p.decision
		if !p.crashed && p.prepared && p.decision == DecisionPending {
			out.Blocked = append(out.Blocked, i)
		}
	}
	return out
}

// ErrInconsistent is returned by CheckAtomicity when decisions diverge.
var ErrInconsistent = errors.New("commit: participants decided differently")

// CheckAtomicity validates the atomic-commitment safety properties of
// an outcome: (AC1) no two participants decide differently, (AC2)
// commit only if every participant voted yes, (AC3) the coordinator's
// logged decision agrees with every participant decision.
func CheckAtomicity(votes []Vote, out Outcome) error {
	decided := DecisionPending
	for i, d := range out.Participants {
		if d == DecisionPending {
			continue
		}
		if decided == DecisionPending {
			decided = d
		} else if d != decided {
			return fmt.Errorf("%w: participant %d", ErrInconsistent, i)
		}
	}
	if decided == DecisionCommit {
		for i, v := range votes {
			if v != VoteYes {
				return fmt.Errorf("commit: committed despite participant %d voting no", i)
			}
		}
	}
	if out.Coordinator != DecisionPending && decided != DecisionPending && out.Coordinator != decided {
		return fmt.Errorf("%w: coordinator %v vs participants %v", ErrInconsistent, out.Coordinator, decided)
	}
	return nil
}
