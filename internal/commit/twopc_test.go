package commit

import (
	"testing"
	"testing/quick"
)

func yes(n int) []Vote {
	v := make([]Vote, n)
	for i := range v {
		v[i] = VoteYes
	}
	return v
}

func TestAllYesCommits(t *testing.T) {
	p := New(3)
	out := p.Run(yes(3), Faults{})
	if out.Coordinator != DecisionCommit {
		t.Fatalf("coordinator = %v", out.Coordinator)
	}
	for i, d := range out.Participants {
		if d != DecisionCommit {
			t.Errorf("participant %d = %v", i, d)
		}
	}
	if len(out.Blocked) != 0 {
		t.Errorf("blocked = %v", out.Blocked)
	}
	if err := CheckAtomicity(yes(3), out); err != nil {
		t.Errorf("atomicity: %v", err)
	}
}

func TestOneNoAborts(t *testing.T) {
	votes := []Vote{VoteYes, VoteNo, VoteYes}
	p := New(3)
	out := p.Run(votes, Faults{})
	if out.Coordinator != DecisionAbort {
		t.Fatalf("coordinator = %v", out.Coordinator)
	}
	for i, d := range out.Participants {
		if d != DecisionAbort {
			t.Errorf("participant %d = %v", i, d)
		}
	}
	if err := CheckAtomicity(votes, out); err != nil {
		t.Errorf("atomicity: %v", err)
	}
}

func TestSilentParticipantAborts(t *testing.T) {
	p := New(3)
	out := p.Run(yes(3), Faults{CrashBeforeVote: map[int]bool{1: true}})
	if out.Coordinator != DecisionAbort {
		t.Fatalf("a silent participant must abort the transaction: %v", out.Coordinator)
	}
	if out.Participants[0] != DecisionAbort || out.Participants[2] != DecisionAbort {
		t.Errorf("survivors = %v", out.Participants)
	}
	// The crashed participant learns on recovery.
	out = p.RecoverParticipant(1)
	if out.Participants[1] != DecisionAbort {
		t.Errorf("recovered participant = %v", out.Participants[1])
	}
}

// The classic blocking window: coordinator crashes after everyone
// prepared, before logging. Prepared participants are stuck.
func TestCoordinatorCrashBlocks(t *testing.T) {
	p := New(3)
	out := p.Run(yes(3), Faults{CoordCrashAfterPrepare: true})
	if out.Coordinator != DecisionPending {
		t.Fatalf("coordinator logged %v", out.Coordinator)
	}
	if len(out.Blocked) != 3 {
		t.Fatalf("blocked = %v, want all three", out.Blocked)
	}
	if err := CheckAtomicity(yes(3), out); err != nil {
		t.Errorf("atomicity: %v", err)
	}
	// Recovery resolves by presumed abort.
	out = p.RecoverCoordinator()
	if out.Coordinator != DecisionAbort {
		t.Fatalf("recovered coordinator = %v", out.Coordinator)
	}
	for i, d := range out.Participants {
		if d != DecisionAbort {
			t.Errorf("participant %d = %v after recovery", i, d)
		}
	}
	if len(out.Blocked) != 0 {
		t.Errorf("still blocked after recovery: %v", out.Blocked)
	}
}

// Coordinator crashes after logging commit but before telling anyone:
// participants block, and recovery re-broadcasts the logged commit.
func TestCoordinatorCrashAfterLog(t *testing.T) {
	p := New(3)
	out := p.Run(yes(3), Faults{CoordCrashAfterLog: true})
	if out.Coordinator != DecisionCommit {
		t.Fatalf("coordinator log = %v", out.Coordinator)
	}
	if len(out.Blocked) != 3 {
		t.Fatalf("blocked = %v", out.Blocked)
	}
	out = p.RecoverCoordinator()
	for i, d := range out.Participants {
		if d != DecisionCommit {
			t.Errorf("participant %d = %v", i, d)
		}
	}
}

// Coordinator crashes after informing one participant: cooperative
// termination lets the rest learn from the informed peer.
func TestCooperativeTermination(t *testing.T) {
	p := New(3)
	out := p.Run(yes(3), Faults{CoordCrashMidBroadcast: true})
	for i, d := range out.Participants {
		if d != DecisionCommit {
			t.Errorf("participant %d = %v (should learn from peer)", i, d)
		}
	}
	if len(out.Blocked) != 0 {
		t.Errorf("blocked despite informed peer: %v", out.Blocked)
	}
	if err := CheckAtomicity(yes(3), out); err != nil {
		t.Errorf("atomicity: %v", err)
	}
}

// A participant that crashes after voting misses the broadcast but
// learns the outcome on recovery.
func TestParticipantCrashAfterVote(t *testing.T) {
	p := New(3)
	out := p.Run(yes(3), Faults{CrashAfterVote: map[int]bool{2: true}})
	if out.Coordinator != DecisionCommit {
		t.Fatalf("coordinator = %v", out.Coordinator)
	}
	if out.Participants[2] != DecisionPending {
		t.Fatalf("crashed participant decided: %v", out.Participants[2])
	}
	out = p.RecoverParticipant(2)
	if out.Participants[2] != DecisionCommit {
		t.Errorf("recovered participant = %v", out.Participants[2])
	}
}

// Property: under arbitrary votes and fault patterns, followed by full
// recovery, the safety properties hold and everyone eventually decides
// the same thing.
func TestAtomicityUnderRandomFaultsQuick(t *testing.T) {
	f := func(voteBits, crashBefore, crashAfter uint8, coordFault uint8) bool {
		const n = 4
		votes := make([]Vote, n)
		for i := range votes {
			votes[i] = VoteYes
			if voteBits&(1<<uint(i)) != 0 {
				votes[i] = VoteNo
			}
		}
		faults := Faults{
			CrashBeforeVote: map[int]bool{},
			CrashAfterVote:  map[int]bool{},
		}
		for i := 0; i < n; i++ {
			if crashBefore&(1<<uint(i)) != 0 {
				faults.CrashBeforeVote[i] = true
			} else if crashAfter&(1<<uint(i)) != 0 {
				faults.CrashAfterVote[i] = true
			}
		}
		switch coordFault % 4 {
		case 1:
			faults.CoordCrashAfterPrepare = true
		case 2:
			faults.CoordCrashAfterLog = true
		case 3:
			faults.CoordCrashMidBroadcast = true
		}
		p := New(n)
		out := p.Run(votes, faults)
		if err := CheckAtomicity(votes, out); err != nil {
			return false
		}
		// Full recovery: coordinator first, then participants.
		out = p.RecoverCoordinator()
		for i := 0; i < n; i++ {
			out = p.RecoverParticipant(i)
		}
		if err := CheckAtomicity(votes, out); err != nil {
			return false
		}
		// After full recovery nobody is pending or blocked.
		if len(out.Blocked) != 0 {
			return false
		}
		for _, d := range out.Participants {
			if d == DecisionPending {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCheckAtomicityDetectsViolations(t *testing.T) {
	// Divergent participants.
	out := Outcome{Participants: []Decision{DecisionCommit, DecisionAbort}}
	if err := CheckAtomicity(yes(2), out); err == nil {
		t.Errorf("divergence not detected")
	}
	// Commit despite a No vote.
	out = Outcome{Coordinator: DecisionCommit, Participants: []Decision{DecisionCommit, DecisionCommit}}
	if err := CheckAtomicity([]Vote{VoteYes, VoteNo}, out); err == nil {
		t.Errorf("invalid commit not detected")
	}
	// Coordinator/participant disagreement.
	out = Outcome{Coordinator: DecisionAbort, Participants: []Decision{DecisionCommit}}
	if err := CheckAtomicity(yes(1), out); err == nil {
		t.Errorf("coordinator disagreement not detected")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero":  func() { New(0) },
		"votes": func() { New(2).Run(yes(3), Faults{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDecisionString(t *testing.T) {
	if DecisionCommit.String() != "commit" || DecisionAbort.String() != "abort" || DecisionPending.String() != "pending" {
		t.Errorf("Decision strings wrong")
	}
}
