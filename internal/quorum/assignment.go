package quorum

// Assignment abstracts a quorum assignment: something that can say
// whether a set of alive sites contains the quorums an operation needs,
// and which quorum intersection relation it realizes. Voting (Gifford
// weighted voting) and ExplicitAssignment (arbitrary quorum structures,
// e.g. grids) both implement it; the cluster substrate accepts any
// Assignment.
type Assignment interface {
	// Sites returns the number of replica sites the assignment covers.
	Sites() int
	// HasQuorum reports whether the alive sites contain both an initial
	// and a final quorum for op.
	HasQuorum(op string, alive []bool) bool
	// Ops returns the operation names the assignment covers, sorted.
	// The observability layer renders "the current constraint set" of a
	// degradation episode by evaluating HasQuorum over exactly these.
	Ops() []string
	// Relation derives the quorum intersection relation realized: for
	// every pair whose quorums are forced to intersect, inv(p) Q q.
	Relation() Relation
}

var (
	_ Assignment = (*Voting)(nil)
	_ Assignment = (*ExplicitAssignment)(nil)
)
