package quorum

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// Eval is an evaluation function η: STATE × OP* → 2^STATE (Section 3.2),
// here curried at the initial state as in the paper's shorthand
// η(H) = η(s₀, H). An evaluation function must agree with δ* on
// histories in L(A) but may assign application-specific meaning to
// histories outside L(A), which is what lets a relaxed quorum automaton
// interpret the "weakly consistent" views it constructs.
type Eval func(h history.History) []value.Value

// DeltaEval returns δ* itself as the evaluation function: QCA(A, Q)
// of Section 3.2 is QCA(A, Q, DeltaEval(A)).
func DeltaEval(a automaton.Automaton) Eval {
	return func(h history.History) []value.Value {
		return automaton.StatesAfter(a, h)
	}
}

// PQEval is the evaluation function η of Section 3.3 for the replicated
// priority queue, defined for arbitrary sequences of Enq and Deq
// operations:
//
//	η(Λ) = emp
//	η(H · Enq(e)/Ok()) = ins(η(H), e)
//	η(H · Deq()/Ok(e)) = del(η(H), e)
//
// Each driver dequeues the highest-priority request that appears not to
// have been served.
func PQEval(h history.History) []value.Value {
	q := value.EmptyBag()
	for _, op := range h {
		switch op.Name {
		case history.NameEnq:
			if len(op.Args) != 1 || op.Term != history.Ok {
				return nil
			}
			q = q.Ins(value.Elem(op.Args[0]))
		case history.NameDeq:
			if len(op.Res) != 1 || op.Term != history.Ok {
				return nil
			}
			q = q.Del(value.Elem(op.Res[0]))
		default:
			return nil
		}
	}
	return []value.Value{q}
}

// PQEvalPrime is the alternative evaluation function η′ sketched at the
// end of Section 3.3: it deletes higher-priority requests that were
// skipped over in favor of lower-priority requests, so the resulting
// lattice never services requests out of order but may ignore certain
// requests. Deq()/Ok(e) removes e and every request with priority
// greater than e.
func PQEvalPrime(h history.History) []value.Value {
	q := value.EmptyBag()
	for _, op := range h {
		switch op.Name {
		case history.NameEnq:
			if len(op.Args) != 1 || op.Term != history.Ok {
				return nil
			}
			q = q.Ins(value.Elem(op.Args[0]))
		case history.NameDeq:
			if len(op.Res) != 1 || op.Term != history.Ok {
				return nil
			}
			e := value.Elem(op.Res[0])
			q = q.Del(e)
			// Drop everything that was skipped over.
			for _, x := range q.Elems() {
				if x > e {
					q = q.Del(x)
				}
			}
		default:
			return nil
		}
	}
	return []value.Value{q}
}

// FIFOEval is the evaluation function η_fifo for a replicated FIFO
// queue (the Section 3.1 motivating example), defined over arbitrary
// Enq/Deq sequences: Enq appends, and Deq()/Ok(e) removes the oldest
// occurrence of e (leaving the queue unchanged when e is absent). It
// agrees with the FIFO queue's δ* on legal FIFO histories.
func FIFOEval(h history.History) []value.Value {
	q := value.EmptySeq()
	for _, op := range h {
		switch op.Name {
		case history.NameEnq:
			if len(op.Args) != 1 || op.Term != history.Ok {
				return nil
			}
			q = q.Ins(value.Elem(op.Args[0]))
		case history.NameDeq:
			if len(op.Res) != 1 || op.Term != history.Ok {
				return nil
			}
			e := value.Elem(op.Res[0])
			for i := 0; i < q.Size(); i++ {
				if q.Get(i) == e {
					q = q.DelAt(i)
					break
				}
			}
		default:
			return nil
		}
	}
	return []value.Value{q}
}

// AccountEval is the evaluation function for the replicated bank
// account of Section 3.4, defined over arbitrary Credit/Debit
// sequences: credits add, successful debits subtract, and bounced
// debits leave the balance unchanged.
func AccountEval(h history.History) []value.Value {
	bal := 0
	for _, op := range h {
		switch {
		case op.Name == history.NameCredit && op.Term == history.Ok && len(op.Args) == 1:
			bal += op.Args[0]
		case op.Name == history.NameDebit && op.Term == history.Ok && len(op.Args) == 1:
			bal -= op.Args[0]
		case op.Name == history.NameDebit && op.Term == history.Over && len(op.Args) == 1:
			// no effect
		default:
			return nil
		}
	}
	return []value.Value{value.NewAccount(bal)}
}
