package quorum

import (
	"sort"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// Eval is an evaluation function η: STATE × OP* → 2^STATE (Section 3.2),
// here curried at the initial state as in the paper's shorthand
// η(H) = η(s₀, H). An evaluation function must agree with δ* on
// histories in L(A) but may assign application-specific meaning to
// histories outside L(A), which is what lets a relaxed quorum automaton
// interpret the "weakly consistent" views it constructs.
type Eval func(h history.History) []value.Value

// FoldEval is an evaluation function in incremental (fold) form: init
// is η(Λ) and step maps one state of η(G) to its successors under an
// operation, so that η(G·op) = ⋃_{s ∈ η(G)} step(s, op). Every
// evaluation function in the paper is such a fold — it replays a
// history operation by operation — and the fold form is what lets the
// compiled view automaton (viewauto.go) extend view evaluations
// incrementally instead of re-replaying each view from scratch.
//
// The compiled automaton additionally requires the fold to be
// state-local: a pair (s ∈ η(G), s' ∈ η(G·op)) satisfying an
// operation's pre/postconditions must be realizable with
// s' ∈ step(s, op). Singleton folds (one state per history, like every
// η in this file) and δ*-folds satisfy this trivially.
type FoldEval struct {
	init []value.Value
	step func(s value.Value, op history.Op) []value.Value
}

// NewFoldEval builds a fold-form evaluation function.
func NewFoldEval(init []value.Value, step func(s value.Value, op history.Op) []value.Value) *FoldEval {
	return &FoldEval{init: init, step: step}
}

// Init returns a copy of η(Λ).
func (f *FoldEval) Init() []value.Value {
	return append([]value.Value(nil), f.init...)
}

// Step returns one state's successors under op.
func (f *FoldEval) Step(s value.Value, op history.Op) []value.Value {
	return f.step(s, op)
}

// Apply maps a whole state set one operation forward, deduplicated by
// canonical key and sorted for determinism. It returns nil when the
// evaluation dies (η undefined on the extended sequence).
func (f *FoldEval) Apply(states []value.Value, op history.Op) []value.Value {
	if len(states) == 1 {
		next := f.step(states[0], op)
		if len(next) == 0 {
			return nil
		}
		if len(next) == 1 {
			return next
		}
	}
	merged := make(map[string]value.Value)
	for _, s := range states {
		for _, s2 := range f.step(s, op) {
			merged[s2.Key()] = s2
		}
	}
	return sortStates(merged)
}

// Eval replays h through the fold: the replay form η(H) derived from
// init and step.
func (f *FoldEval) Eval(h history.History) []value.Value {
	states := f.Init()
	for _, op := range h {
		states = f.Apply(states, op)
		if len(states) == 0 {
			return nil
		}
	}
	return states
}

// EvalLog replays a log through the fold in timestamp order without
// materializing the log's history; it is equivalent to
// f.Eval(l.History()) minus the allocation.
func (f *FoldEval) EvalLog(l Log) []value.Value {
	states := f.Init()
	for i := range l.entries {
		states = f.Apply(states, l.entries[i].Op)
		if len(states) == 0 {
			return nil
		}
	}
	return states
}

// sortStates flattens a key-indexed state set into canonical order.
func sortStates(m map[string]value.Value) []value.Value {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Value, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// DeltaEval returns δ* itself as the evaluation function: QCA(A, Q)
// of Section 3.2 is QCA(A, Q, DeltaEval(A)).
func DeltaEval(a automaton.Automaton) Eval {
	return func(h history.History) []value.Value {
		return automaton.StatesAfter(a, h)
	}
}

// DeltaFold is δ* of a in fold form (its step is a's own transition
// function).
func DeltaFold(a automaton.Automaton) *FoldEval {
	return NewFoldEval([]value.Value{a.Init()}, a.Step)
}

// pqStep is one step of η for the replicated priority queue.
func pqStep(s value.Value, op history.Op) []value.Value {
	q, ok := s.(value.Bag)
	if !ok {
		return nil
	}
	switch op.Name {
	case history.NameEnq:
		if len(op.Args) != 1 || op.Term != history.Ok {
			return nil
		}
		return []value.Value{q.Ins(value.Elem(op.Args[0]))}
	case history.NameDeq:
		if len(op.Res) != 1 || op.Term != history.Ok {
			return nil
		}
		return []value.Value{q.Del(value.Elem(op.Res[0]))}
	default:
		return nil
	}
}

var pqFold = NewFoldEval([]value.Value{value.EmptyBag()}, pqStep)

// PQFold is PQEval in fold form.
func PQFold() *FoldEval { return pqFold }

// PQEval is the evaluation function η of Section 3.3 for the replicated
// priority queue, defined for arbitrary sequences of Enq and Deq
// operations:
//
//	η(Λ) = emp
//	η(H · Enq(e)/Ok()) = ins(η(H), e)
//	η(H · Deq()/Ok(e)) = del(η(H), e)
//
// Each driver dequeues the highest-priority request that appears not to
// have been served.
func PQEval(h history.History) []value.Value { return pqFold.Eval(h) }

// pqPrimeStep is one step of the alternative evaluation function η′.
func pqPrimeStep(s value.Value, op history.Op) []value.Value {
	q, ok := s.(value.Bag)
	if !ok {
		return nil
	}
	switch op.Name {
	case history.NameEnq:
		if len(op.Args) != 1 || op.Term != history.Ok {
			return nil
		}
		return []value.Value{q.Ins(value.Elem(op.Args[0]))}
	case history.NameDeq:
		if len(op.Res) != 1 || op.Term != history.Ok {
			return nil
		}
		e := value.Elem(op.Res[0])
		q = q.Del(e)
		// Drop everything that was skipped over.
		for _, x := range q.Elems() {
			if x > e {
				q = q.Del(x)
			}
		}
		return []value.Value{q}
	default:
		return nil
	}
}

var pqPrimeFold = NewFoldEval([]value.Value{value.EmptyBag()}, pqPrimeStep)

// PQPrimeFold is PQEvalPrime in fold form.
func PQPrimeFold() *FoldEval { return pqPrimeFold }

// PQEvalPrime is the alternative evaluation function η′ sketched at the
// end of Section 3.3: it deletes higher-priority requests that were
// skipped over in favor of lower-priority requests, so the resulting
// lattice never services requests out of order but may ignore certain
// requests. Deq()/Ok(e) removes e and every request with priority
// greater than e.
func PQEvalPrime(h history.History) []value.Value { return pqPrimeFold.Eval(h) }

// fifoStep is one step of η_fifo for the replicated FIFO queue.
func fifoStep(s value.Value, op history.Op) []value.Value {
	q, ok := s.(value.Seq)
	if !ok {
		return nil
	}
	switch op.Name {
	case history.NameEnq:
		if len(op.Args) != 1 || op.Term != history.Ok {
			return nil
		}
		return []value.Value{q.Ins(value.Elem(op.Args[0]))}
	case history.NameDeq:
		if len(op.Res) != 1 || op.Term != history.Ok {
			return nil
		}
		e := value.Elem(op.Res[0])
		for i := 0; i < q.Size(); i++ {
			if q.Get(i) == e {
				q = q.DelAt(i)
				break
			}
		}
		return []value.Value{q}
	default:
		return nil
	}
}

var fifoFold = NewFoldEval([]value.Value{value.EmptySeq()}, fifoStep)

// FIFOFold is FIFOEval in fold form.
func FIFOFold() *FoldEval { return fifoFold }

// FIFOEval is the evaluation function η_fifo for a replicated FIFO
// queue (the Section 3.1 motivating example), defined over arbitrary
// Enq/Deq sequences: Enq appends, and Deq()/Ok(e) removes the oldest
// occurrence of e (leaving the queue unchanged when e is absent). It
// agrees with the FIFO queue's δ* on legal FIFO histories.
func FIFOEval(h history.History) []value.Value { return fifoFold.Eval(h) }

// accountStep is one step of the bank-account evaluation function.
func accountStep(s value.Value, op history.Op) []value.Value {
	acct, ok := s.(value.Account)
	if !ok {
		return nil
	}
	switch {
	case op.Name == history.NameCredit && op.Term == history.Ok && len(op.Args) == 1:
		return []value.Value{value.NewAccount(acct.Balance + op.Args[0])}
	case op.Name == history.NameDebit && op.Term == history.Ok && len(op.Args) == 1:
		return []value.Value{value.NewAccount(acct.Balance - op.Args[0])}
	case op.Name == history.NameDebit && op.Term == history.Over && len(op.Args) == 1:
		return []value.Value{acct} // bounced debits leave the balance unchanged
	default:
		return nil
	}
}

var accountFold = NewFoldEval([]value.Value{value.NewAccount(0)}, accountStep)

// AccountFold is AccountEval in fold form.
func AccountFold() *FoldEval { return accountFold }

// AccountEval is the evaluation function for the replicated bank
// account of Section 3.4, defined over arbitrary Credit/Debit
// sequences: credits add, successful debits subtract, and bounced
// debits leave the balance unchanged.
func AccountEval(h history.History) []value.Value { return accountFold.Eval(h) }

// EvalLogFrom resumes a log replay: given states = η of the first
// `from` entries of l, it folds the remaining entries and returns η of
// the whole log (nil when the evaluation dies). EvalLogFrom(Init(), l, 0)
// is EvalLog(l); the incremental form is what lets the cluster
// re-evaluate a view that grew by one entry in O(1) fold steps.
func (f *FoldEval) EvalLogFrom(states []value.Value, l Log, from int) []value.Value {
	for i := from; i < len(l.entries); i++ {
		states = f.Apply(states, l.entries[i].Op)
		if len(states) == 0 {
			return nil
		}
	}
	return states
}
