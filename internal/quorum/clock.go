// Package quorum implements the quorum-consensus replication machinery
// of Section 3: timestamped logs ordered by logical clocks, views merged
// from initial quorums, quorum intersection relations between
// invocations and operations, the quorum consensus automaton QCA(A,Q,η)
// of Section 3.2, serial dependency relations (Definition 3), and
// Gifford-style weighted-voting quorum assignments.
package quorum

import "fmt"

// Timestamp is a logical-clock timestamp (Lamport 1978): a (time, site)
// pair totally ordered lexicographically, so entries generated anywhere
// in the system are globally ordered.
type Timestamp struct {
	Time int
	Site int
}

// Less reports the total order on timestamps.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Time != u.Time {
		return t.Time < u.Time
	}
	return t.Site < u.Site
}

// String renders the timestamp as "time:site" (the paper writes log
// entries as "1:01 Enq(x)/Ok()").
func (t Timestamp) String() string { return fmt.Sprintf("%d:%02d", t.Time, t.Site) }

// Clock is a Lamport logical clock owned by one site or client.
// The zero value is ready to use after setting Site.
type Clock struct {
	Site int
	time int
}

// NewClock returns a clock for the given site identifier.
func NewClock(site int) *Clock { return &Clock{Site: site} }

// Tick advances the clock and returns a fresh timestamp greater than
// every timestamp it has produced or witnessed.
func (c *Clock) Tick() Timestamp {
	c.time++
	return Timestamp{Time: c.time, Site: c.Site}
}

// Witness incorporates a timestamp received from elsewhere, ensuring
// subsequent Ticks dominate it.
func (c *Clock) Witness(t Timestamp) {
	if t.Time > c.time {
		c.time = t.Time
	}
}

// Now returns the current logical time without advancing it.
func (c *Clock) Now() int { return c.time }
