package quorum_test

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// QCA(PQ, Q₁, η) tolerates duplicate service but never reorders —
// Theorem 4 in miniature.
func ExampleQCA() {
	qca := quorum.NewQCA("QCA(PQ,Q1,η)", specs.PriorityQueue(), quorum.Q1(), quorum.PQFold())
	dup := history.History{history.Enq(3), history.DeqOk(3), history.DeqOk(3)}
	ooo := history.History{history.Enq(1), history.Enq(3), history.DeqOk(1)}
	fmt.Println("duplicate service: ", automaton.Accepts(qca, dup))
	fmt.Println("out-of-order service:", automaton.Accepts(qca, ooo))
	// Output:
	// duplicate service:  true
	// out-of-order service: false
}

// Weighted voting decides which quorum intersection constraints hold
// and what availability each operation gets.
func ExampleVoting() {
	v := quorum.TaxiAssignments(5)["Q1Q2"]
	fmt.Println("Q1 (Deq sees Enq):", v.Intersects(history.NameDeq, history.NameEnq))
	fmt.Println("Q2 (Deq sees Deq):", v.Intersects(history.NameDeq, history.NameDeq))
	fmt.Printf("Deq availability at 90%% site-up: %.4f\n", v.Availability(history.NameDeq, 0.9))
	// Output:
	// Q1 (Deq sees Enq): true
	// Q2 (Deq sees Deq): true
	// Deq availability at 90% site-up: 0.9914
}

// The serial dependency check (Definition 3) explains why relaxing Q₂
// is what permits duplicate service.
func ExampleIsSerialDependency() {
	full := quorum.Q1().Union(quorum.Q2())
	ok, _ := quorum.IsSerialDependency(specs.PriorityQueue(), full, history.QueueAlphabet(2), 4)
	fmt.Println("{Q1,Q2} serial dependency for PQ:", ok)
	ok, violation := quorum.IsSerialDependency(specs.PriorityQueue(), quorum.Q1(), history.QueueAlphabet(2), 4)
	fmt.Println("{Q1} serial dependency for PQ:  ", ok)
	fmt.Println("counterexample:", violation)
	// Output:
	// {Q1,Q2} serial dependency for PQ: true
	// {Q1} serial dependency for PQ:   false
	// counterexample: H=Enq(1)/Ok() · Deq()/Ok(1), Q-view G=Enq(1)/Ok(), p=Deq()/Ok(1): G·p ∈ L(A) but H·p ∉ L(A)
}
