package quorum

import (
	"sort"
	"strings"
	"sync"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/value"
)

// This file compiles a quorum consensus automaton into an equivalent
// automaton with bounded state, so the memoized powerset engine
// (automaton/engine.go) can collapse its language exploration.
//
// A QCA's own state is the whole accepted history, which defeats
// memoization: no two histories share a state. But whether an operation
// execution p is justified from H depends only on which η-values the
// Q-views of H for inv(p) can produce — not on H itself. The compiled
// automaton therefore tracks, for every subset S of the relation's
// "left" names (invocation names with outgoing Q-pairs), the view set
//
//	W(H, S) = ⋃ { η(G) : G Q-closed subhistory of H containing every
//	              op of H required by some name in S }.
//
// A Q-view of H for invocation p (Definitions 1 and 2) is exactly a
// member of the S = mask(inv(p)) family, so p is justified iff some
// s ∈ W(H, mask(inv(p))) satisfies p's precondition with a successor
// s' ∈ η-step(s, p) satisfying its postcondition. (This per-state
// justification check matches QCA.Justified for state-local folds; see
// FoldEval.)
//
// The families obey an exact one-step recurrence. A qualifying
// subhistory of H·r either omits r — legal only when no name in S
// requires r, and then it qualifies for (H, S) unchanged — or is G·r
// with G a subhistory of H that is Q-closed, contains r's own required
// ops (Q-closure at r), and contains S's required ops; i.e.
// G qualifies for (H, S ∪ mask(inv(r))). Hence
//
//	W(H·r, S) = [r not required by S] · W(H, S)
//	          ∪ ⋃ { η-step(s, r) : s ∈ W(H, S ∪ mask(inv(r))) }.
//
// The empty subhistory always qualifies for S = ∅, so W(H, ∅) always
// contains η(Λ) and the state never degenerates. The state space is the
// set of family vectors — bounded by the η-value domain, independent of
// history length — and the compiled automaton is deterministic (one
// successor per accepted operation), which is what lets the engine's
// class count stay flat while the QCA's history count grows
// exponentially.

// maxLeftNames bounds the relation's left names: the compiled state
// carries 2^left families.
const maxLeftNames = 16

// famMember is one family member with its canonical key precomputed, so
// carrying a member across steps and rendering family keys never
// re-renders the value.
type famMember struct {
	key string
	st  value.Value
}

// viewState is the compiled automaton's state: fams[S] = W(H, S),
// indexed by bitmask over the sorted left names, each family
// deduplicated and sorted by canonical key.
type viewState struct {
	fams [][]famMember
	key  string
}

// Key returns the canonical encoding (precomputed at construction).
func (v viewState) Key() string { return v.key }

// String renders the full-history family, the one most users care
// about.
func (v viewState) String() string {
	if len(v.fams) == 0 {
		return "views{}"
	}
	full := v.fams[len(v.fams)-1]
	parts := make([]string, len(full))
	for i, m := range full {
		parts[i] = m.st.String()
	}
	return "views{" + strings.Join(parts, ", ") + "}"
}

// famsKey canonically encodes a family vector. Value keys are
// printable, so the control-byte separators cannot collide.
func famsKey(fams [][]famMember) string {
	var b strings.Builder
	b.WriteString("V:")
	for i, fam := range fams {
		if i > 0 {
			b.WriteByte('\x1d')
		}
		for j, m := range fam {
			if j > 0 {
				b.WriteByte('\x1e')
			}
			b.WriteString(m.key)
		}
	}
	return b.String()
}

// sortFamily flattens a key-indexed state set into a canonically
// ordered family.
func sortFamily(m map[string]value.Value) []famMember {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]famMember, len(keys))
	for i, k := range keys {
		out[i] = famMember{key: k, st: m[k]}
	}
	return out
}

// viewAutomaton is the compiled form of a QCA. The configuration is
// immutable after construction; the transposition cache is guarded, so
// concurrent Step calls from the exploration engine are safe.
type viewAutomaton struct {
	q    *QCA
	left []string // sorted distinct invocation names with outgoing Q-pairs

	hits, misses *obs.Counter // runtime-only cache stats; nil when unobserved

	mu   sync.Mutex
	succ map[string][]value.Value // guarded by mu; (state key, op) → successor
}

var _ automaton.Automaton = (*viewAutomaton)(nil)

// Compiled returns an automaton accepting exactly L(QCA) whose state is
// the view-family vector described in the file comment, suitable for
// the memoized exploration engine. It shares the QCA's name so compiled
// and direct runs render identically in lattice and experiment output.
func (q *QCA) Compiled() automaton.Automaton {
	var left []string
	for _, p := range q.rel.Pairs() { // sorted by Inv, then Op
		if len(left) == 0 || left[len(left)-1] != p.Inv {
			left = append(left, p.Inv)
		}
	}
	if len(left) > maxLeftNames {
		panic("quorum: relation has too many left names to compile")
	}
	va := &viewAutomaton{q: q, left: left, succ: make(map[string][]value.Value)}
	va.hits, va.misses = viewCacheCounters()
	return va
}

// Name returns the underlying QCA's name.
func (va *viewAutomaton) Name() string { return va.q.name }

// Init returns the empty-history state: every family is η(Λ).
func (va *viewAutomaton) Init() value.Value {
	merged := make(map[string]value.Value)
	for _, s := range va.q.fold.Init() {
		merged[s.Key()] = s
	}
	base := sortFamily(merged)
	fams := make([][]famMember, 1<<len(va.left))
	for i := range fams {
		fams[i] = base
	}
	return viewState{fams: fams, key: famsKey(fams)}
}

// invMask returns the left-name bitmask of an invocation name (0 when
// the name has no outgoing Q-pairs).
func (va *viewAutomaton) invMask(name string) int {
	for i, l := range va.left {
		if l == name {
			return 1 << i
		}
	}
	return 0
}

// requiredBy returns the bitmask of left names whose invocations
// require op to appear in their views: bit i is set iff inv(left[i]) Q op.
func (va *viewAutomaton) requiredBy(op history.Op) int {
	mask := 0
	for i, l := range va.left {
		if va.q.rel.Holds(history.Invocation{Name: l}, op) {
			mask |= 1 << i
		}
	}
	return mask
}

// justified reports whether some state in the invocation's view family
// satisfies op's pre- and postconditions under the fold step.
func (va *viewAutomaton) justified(fam []famMember, op history.Op) bool {
	for _, m := range fam {
		if !va.q.base.PreHolds(m.st, op) {
			continue
		}
		for _, s2 := range va.q.fold.Step(m.st, op) {
			if va.q.base.PostHolds(m.st, op, s2) {
				return true
			}
		}
	}
	return false
}

// Step accepts op exactly when some Q-view justifies it, advancing
// every family by the recurrence in the file comment. Transitions are
// memoized: during exploration the same compiled state recurs across
// many engine classes (paired with different right-hand state sets), so
// each (state, op) recurrence and its key rendering run once.
func (va *viewAutomaton) Step(s value.Value, op history.Op) []value.Value {
	vs, ok := s.(viewState)
	if !ok {
		return nil
	}
	ck := vs.key + "\x00" + op.String()
	va.mu.Lock()
	succ, hit := va.succ[ck]
	va.mu.Unlock()
	if hit {
		va.hits.Add(1)
		return succ
	}
	va.misses.Add(1)
	succ = va.step(vs, op)
	va.mu.Lock()
	va.succ[ck] = succ
	va.mu.Unlock()
	return succ
}

// step computes one uncached transition.
func (va *viewAutomaton) step(vs viewState, op history.Op) []value.Value {
	pmask := va.invMask(op.Name)
	if !va.justified(vs.fams[pmask], op) {
		return nil
	}
	rmask := va.requiredBy(op)
	next := make([][]famMember, len(vs.fams))
	for S := range vs.fams {
		merged := make(map[string]value.Value)
		if S&rmask == 0 {
			for _, m := range vs.fams[S] {
				merged[m.key] = m.st // carried member: key already known
			}
		}
		for _, m := range vs.fams[S|pmask] {
			for _, s2 := range va.q.fold.Step(m.st, op) {
				merged[s2.Key()] = s2
			}
		}
		next[S] = sortFamily(merged)
	}
	return []value.Value{viewState{fams: next, key: famsKey(next)}}
}
