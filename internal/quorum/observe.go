package quorum

import (
	"sync/atomic"

	"relaxlattice/internal/obs"
)

// viewRT is the runtime-only registry for the compiled automaton's
// transposition cache. Hit/miss splits are scheduling-dependent (two
// exploration workers can race to compute the same transition), so —
// like the engine's step cache — they are published via expvar under
// -pprof and never written to the deterministic snapshot.
var viewRT atomic.Pointer[obs.Registry]

// ObserveRuntime installs (or, with nil, uninstalls) the runtime
// registry for quorum-layer caches:
//
//	quorum.viewcache.hits    counter: compiled-automaton transition cache hits
//	quorum.viewcache.misses  counter: compiled-automaton transition cache misses
func ObserveRuntime(r *obs.Registry) {
	viewRT.Store(r)
}

// viewCacheCounters resolves the compiled-automaton cache counters
// (nil registry → nil counters → no-op adds).
func viewCacheCounters() (hits, misses *obs.Counter) {
	r := viewRT.Load()
	return r.Counter("quorum.viewcache.hits"), r.Counter("quorum.viewcache.misses")
}
