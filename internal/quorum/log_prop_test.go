package quorum

import (
	"testing"
	"testing/quick"

	"relaxlattice/internal/history"
)

// logFrom decodes a byte string into a log with pseudo-random
// timestamps (collisions intended).
func logFrom(xs []uint8) Log {
	var entries []Entry
	for i, x := range xs {
		entries = append(entries, Entry{
			TS: Timestamp{Time: int(x % 16), Site: int(x % 3)},
			Op: history.Enq(i),
		})
	}
	return LogOf(entries...)
}

// Merge is commutative, associative, and idempotent on entry sets
// (duplicate timestamps collapse), and the empty log is its identity —
// the algebraic properties that make quorum-consensus log propagation
// order-insensitive.
func TestMergeLaws(t *testing.T) {
	sameTimestamps := func(a, b Log) bool {
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if a.Entry(i).TS != b.Entry(i).TS {
				return false
			}
		}
		return true
	}
	f := func(xs, ys, zs []uint8) bool {
		a, b, c := logFrom(xs), logFrom(ys), logFrom(zs)
		if !sameTimestamps(Merge(a, b), Merge(b, a)) {
			return false
		}
		if !sameTimestamps(Merge(Merge(a, b), c), Merge(a, Merge(b, c))) {
			return false
		}
		if !Merge(a, a).Equal(a) {
			return false
		}
		return Merge(a, Log{}).Equal(a) && Merge(Log{}, a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Merged logs stay sorted and duplicate-free.
func TestMergeInvariant(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		m := Merge(logFrom(xs), logFrom(ys))
		for i := 1; i < m.Len(); i++ {
			if !m.Entry(i - 1).TS.Less(m.Entry(i).TS) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Append is equivalent to a merge with a singleton log.
func TestAppendEquivalentToMerge(t *testing.T) {
	f := func(xs []uint8, tsTime, tsSite uint8) bool {
		l := logFrom(xs)
		e := Entry{TS: Timestamp{Time: int(tsTime % 16), Site: int(tsSite % 3)}, Op: history.Enq(99)}
		return l.Append(e).Equal(Merge(l, LogOf(e)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Merge of any sublogs of L is a sublog of L, and merging all site
// logs reconstructs every entry — the view-construction soundness the
// replication protocol relies on.
func TestMergeSubsetProperty(t *testing.T) {
	f := func(xs []uint8, maskA, maskB uint8) bool {
		full := logFrom(xs)
		var subA, subB []Entry
		for i := 0; i < full.Len(); i++ {
			if maskA&(1<<(i%8)) != 0 {
				subA = append(subA, full.Entry(i))
			}
			if maskB&(1<<(i%8)) != 0 {
				subB = append(subB, full.Entry(i))
			}
		}
		merged := Merge(LogOf(subA...), LogOf(subB...))
		for i := 0; i < merged.Len(); i++ {
			if !full.Contains(merged.Entry(i).TS) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
