package quorum

// AvailableOps returns the operation names of a whose initial and
// final quorums the alive site set can assemble, in Ops() order
// (sorted). This is the constraint set C the observability layer
// renders for degradation episodes, and the probe target adaptive
// clients evaluate before ascending a degradation ladder: no logs are
// read and no view is built, so probing is free of protocol side
// effects.
func AvailableOps(a Assignment, alive []bool) []string {
	ops := a.Ops()
	avail := make([]string, 0, len(ops))
	for _, op := range ops {
		if a.HasQuorum(op, alive) {
			avail = append(avail, op)
		}
	}
	return avail
}

// FullyAvailable reports whether every operation of a has both quorums
// within the alive site set — the availability predicate for one rung
// of a degradation ladder.
func FullyAvailable(a Assignment, alive []bool) bool {
	for _, op := range a.Ops() {
		if !a.HasQuorum(op, alive) {
			return false
		}
	}
	return true
}
