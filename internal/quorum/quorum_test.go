package quorum

import (
	"strings"
	"testing"

	"relaxlattice/internal/history"
)

func TestTimestampOrder(t *testing.T) {
	a := Timestamp{Time: 1, Site: 1}
	b := Timestamp{Time: 1, Site: 3}
	c := Timestamp{Time: 2, Site: 2}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Errorf("order wrong")
	}
	if b.Less(a) || a.Less(a) {
		t.Errorf("strictness wrong")
	}
	if a.String() != "1:01" {
		t.Errorf("String = %q", a.String())
	}
}

func TestClock(t *testing.T) {
	c := NewClock(2)
	t1 := c.Tick()
	t2 := c.Tick()
	if !t1.Less(t2) || t1.Site != 2 {
		t.Errorf("ticks: %v %v", t1, t2)
	}
	// Witnessing a larger time pushes the clock forward.
	c.Witness(Timestamp{Time: 10, Site: 1})
	t3 := c.Tick()
	if t3.Time != 11 {
		t.Errorf("after witness: %v", t3)
	}
	// Witnessing an older timestamp must not move the clock backward.
	c.Witness(Timestamp{Time: 3, Site: 1})
	if c.Now() != 11 {
		t.Errorf("clock moved backward: %d", c.Now())
	}
}

// The paper's replicated-queue example (Section 3.1): three sites, each
// with a partial log; merging in timestamp order, discarding
// duplicates, reconstructs ins(ins(ins(emp,x),y),z). With x=1 y=2 z=3:
func TestMergePaperExample(t *testing.T) {
	e1 := Entry{TS: Timestamp{Time: 1, Site: 1}, Op: history.Enq(1)} // 1:01 Enq(x)
	e2 := Entry{TS: Timestamp{Time: 1, Site: 3}, Op: history.Enq(2)} // 1:03 Enq(y)
	e3 := Entry{TS: Timestamp{Time: 2, Site: 2}, Op: history.Enq(3)} // 2:02 Enq(z)
	s1 := LogOf(e1, e3)
	s2 := LogOf(e1, e2)
	s3 := LogOf(e2, e3)
	merged := Merge(s1, s2, s3)
	if merged.Len() != 3 {
		t.Fatalf("merged = %v", merged)
	}
	want := history.History{history.Enq(1), history.Enq(2), history.Enq(3)}
	if !merged.History().Equal(want) {
		t.Errorf("History = %v, want %v", merged.History(), want)
	}
	// Any quorum of two sites reconstructs the full queue value's
	// entries it holds; merging all pairs that form Enq quorums:
	if got := Merge(s1, s2); got.Len() != 3 {
		t.Errorf("merge(s1,s2) = %d entries", got.Len())
	}
}

func TestLogAppendAndDuplicates(t *testing.T) {
	ts := Timestamp{Time: 1, Site: 1}
	l := Log{}.Append(Entry{TS: ts, Op: history.Enq(1)})
	if l.Len() != 1 || !l.Contains(ts) {
		t.Fatalf("append failed: %v", l)
	}
	// Duplicate timestamps are discarded on merge.
	dup := l.Append(Entry{TS: ts, Op: history.Enq(1)})
	if dup.Len() != 1 {
		t.Errorf("duplicate not discarded: %v", dup)
	}
	if l.Contains(Timestamp{Time: 9, Site: 9}) {
		t.Errorf("Contains false positive")
	}
	maxTS, ok := l.MaxTS()
	if !ok || maxTS != ts {
		t.Errorf("MaxTS = %v %v", maxTS, ok)
	}
	if _, ok := (Log{}).MaxTS(); ok {
		t.Errorf("MaxTS of empty log")
	}
	if !l.Equal(dup) || l.Equal(Log{}) {
		t.Errorf("Equal wrong")
	}
	if !strings.Contains(l.String(), "1:01 Enq(1)/Ok()") {
		t.Errorf("String = %q", l.String())
	}
	if e := l.Entry(0); !e.Op.Equal(history.Enq(1)) {
		t.Errorf("Entry = %v", e)
	}
	if es := l.Entries(); len(es) != 1 {
		t.Errorf("Entries = %v", es)
	}
}

func TestRelationBasics(t *testing.T) {
	q1, q2 := Q1(), Q2()
	if !q1.Holds(history.DeqInv(), history.Enq(1)) {
		t.Errorf("Q1 should relate inv(Deq) to Enq")
	}
	if q1.Holds(history.DeqInv(), history.DeqOk(1)) {
		t.Errorf("Q1 should not relate inv(Deq) to Deq")
	}
	u := q1.Union(q2)
	if !u.Holds(history.DeqInv(), history.DeqOk(1)) || !u.Holds(history.DeqInv(), history.Enq(1)) {
		t.Errorf("union wrong")
	}
	if !q1.IsSubrelationOf(u) || u.IsSubrelationOf(q1) {
		t.Errorf("subrelation wrong")
	}
	if got := u.String(); got != "{inv(Deq)→Deq, inv(Deq)→Enq}" {
		t.Errorf("String = %q", got)
	}
	if NewRelation().String() != "∅" {
		t.Errorf("empty relation String")
	}
	if len(u.Pairs()) != 2 {
		t.Errorf("Pairs = %v", u.Pairs())
	}
	if !A1().Holds(history.Op{Name: history.NameDebit}.Inv(), history.Credit(1)) {
		t.Errorf("A1 wrong")
	}
	if !A2().Holds(history.Op{Name: history.NameDebit}.Inv(), history.DebitOk(1)) {
		t.Errorf("A2 wrong")
	}
}

func collectViews(rel Relation, h history.History, inv history.Invocation) []history.History {
	var out []history.History
	rel.Views(h, inv, func(g history.History) bool {
		out = append(out, g)
		return true
	})
	return out
}

func TestViewsUnderQ1(t *testing.T) {
	// H = Enq(1) Enq(2) Deq(2): under Q1, a Deq view must contain both
	// Enqs; the Deq is optional. Two views.
	h := history.History{history.Enq(1), history.Enq(2), history.DeqOk(2)}
	views := collectViews(Q1(), h, history.DeqInv())
	if len(views) != 2 {
		t.Fatalf("views = %v", views)
	}
	// Largest-first: the full history comes first.
	if !views[0].Equal(h) {
		t.Errorf("first view = %v", views[0])
	}
	if !views[1].Equal(history.History{history.Enq(1), history.Enq(2)}) {
		t.Errorf("second view = %v", views[1])
	}
}

func TestViewsUnderQ2ClosureForcesDeqPrefixes(t *testing.T) {
	// Under Q2 a Deq view must contain all Deqs of H... and is Q-closed
	// automatically. For an Enq invocation nothing is required, but
	// closure still applies to included Deqs: the included Deqs must be
	// downward-closed among Deqs.
	h := history.History{history.DeqOk(1), history.DeqOk(2), history.Enq(3)}
	views := collectViews(Q2(), h, history.EnqInv(9))
	// Optional: all three ops, but {Deq2} without Deq1 is not Q-closed.
	// Subsets of {Deq1, Deq2} allowed: {}, {Deq1}, {Deq1,Deq2} times
	// {Enq3 in/out} = 6 views.
	if len(views) != 6 {
		t.Fatalf("got %d views: %v", len(views), views)
	}
	for _, g := range views {
		sawSecond := false
		for _, op := range g {
			if op.Equal(history.DeqOk(2)) {
				sawSecond = true
			}
		}
		if sawSecond {
			hasFirst := false
			for _, op := range g {
				if op.Equal(history.DeqOk(1)) {
					hasFirst = true
				}
			}
			if !hasFirst {
				t.Errorf("view %v not Q-closed", g)
			}
		}
	}
}

func TestViewsEmptyRelation(t *testing.T) {
	h := history.History{history.Enq(1), history.DeqOk(1)}
	views := collectViews(NewRelation(), h, history.DeqInv())
	// Every subset qualifies: 4 views.
	if len(views) != 4 {
		t.Errorf("views = %v", views)
	}
}

func TestViewsEarlyStop(t *testing.T) {
	h := history.History{history.Enq(1), history.Enq(2)}
	n := 0
	NewRelation().Views(h, history.DeqInv(), func(history.History) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("visit called %d times after stop", n)
	}
}

func TestMergeArities(t *testing.T) {
	if Merge().Len() != 0 {
		t.Errorf("Merge() not empty")
	}
	l := LogOf(Entry{TS: Timestamp{Time: 1, Site: 1}, Op: history.Enq(1)})
	single := Merge(l)
	if !single.Equal(l) {
		t.Errorf("Merge(l) != l")
	}
	// The single-log merge copies: appending to the copy must not
	// disturb the original.
	_ = single.Append(Entry{TS: Timestamp{Time: 2, Site: 1}, Op: history.Enq(2)})
	if l.Len() != 1 {
		t.Errorf("original mutated")
	}
}

func TestViewsOptionalLimitPanics(t *testing.T) {
	var h history.History
	for i := 0; i < 31; i++ {
		h = h.Append(history.Enq(i))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on >30 optional operations")
		}
	}()
	NewRelation().Views(h, history.DeqInv(), func(history.History) bool { return true })
}
