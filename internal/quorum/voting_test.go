package quorum

import (
	"math"
	"strings"
	"testing"

	"relaxlattice/internal/history"
)

func TestVotingIntersections(t *testing.T) {
	for _, n := range []int{3, 4, 5, 7} {
		assigns := TaxiAssignments(n)
		checks := map[string]struct{ q1, q2 bool }{
			"Q1Q2": {true, true},
			"Q1":   {true, false},
			"Q2":   {false, true},
			"none": {false, false},
		}
		for name, want := range checks {
			v := assigns[name]
			gotQ1 := v.Intersects(history.NameDeq, history.NameEnq)
			gotQ2 := v.Intersects(history.NameDeq, history.NameDeq)
			if gotQ1 != want.q1 || gotQ2 != want.q2 {
				t.Errorf("n=%d %s: Q1=%v Q2=%v, want %+v (%s)", n, name, gotQ1, gotQ2, want, v)
			}
			wantRel := NewRelation()
			if want.q1 {
				wantRel = wantRel.Union(Q1())
			}
			if want.q2 {
				wantRel = wantRel.Union(Q2())
			}
			if !v.Satisfies(wantRel) {
				t.Errorf("n=%d %s does not satisfy %v", n, name, wantRel)
			}
		}
	}
}

func TestVotingRelationDerivation(t *testing.T) {
	v := TaxiAssignments(5)["Q1Q2"]
	rel := v.Relation()
	if !Q1().Union(Q2()).IsSubrelationOf(rel) {
		t.Errorf("derived relation %v misses Q1∪Q2", rel)
	}
	// The derived relation must not claim Enq needs to see anything.
	if rel.Holds(history.EnqInv(1), history.DeqOk(1)) {
		t.Errorf("spurious inv(Enq)→Deq")
	}
}

func TestMajority(t *testing.T) {
	v := Majority(5, history.NameEnq, history.NameDeq)
	if v.Sites() != 5 || v.TotalWeight() != 5 {
		t.Errorf("sites/weight: %v", v)
	}
	q, ok := v.Quorums(history.NameEnq)
	if !ok || q.Initial != 3 || q.Final != 3 {
		t.Errorf("quorums = %+v", q)
	}
	if _, ok := v.Quorums("nope"); ok {
		t.Errorf("unknown op had quorums")
	}
	// Majorities always intersect.
	if !v.Intersects(history.NameDeq, history.NameEnq) || !v.Intersects(history.NameEnq, history.NameDeq) {
		t.Errorf("majorities must intersect")
	}
}

func TestHasQuorum(t *testing.T) {
	v := Majority(5, history.NameDeq)
	alive := []bool{true, true, true, false, false}
	if !v.HasQuorum(history.NameDeq, alive) {
		t.Errorf("3 of 5 should form a majority quorum")
	}
	alive = []bool{true, true, false, false, false}
	if v.HasQuorum(history.NameDeq, alive) {
		t.Errorf("2 of 5 should not")
	}
	if v.HasQuorum("nope", alive) {
		t.Errorf("unknown op has quorum")
	}
}

// Availability via DP matches brute-force enumeration over up/down
// patterns.
func TestAvailabilityMatchesBruteForce(t *testing.T) {
	v := NewVoting([]int{1, 2, 1, 1}, map[string]OpQuorums{
		"Op": {Initial: 3, Final: 2},
	})
	pUp := 0.8
	got := v.Availability("Op", pUp)
	want := 0.0
	n := 4
	weights := []int{1, 2, 1, 1}
	for mask := 0; mask < 1<<n; mask++ {
		w, p := 0, 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += weights[i]
				p *= pUp
			} else {
				p *= 1 - pUp
			}
		}
		if w >= 3 { // need max(initial, final)
			want += p
		}
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Availability = %v, want %v", got, want)
	}
	if v.Availability("nope", pUp) != 0 {
		t.Errorf("unknown op available")
	}
}

// Relaxing constraints raises availability: the paper's motivating
// trade-off. At pUp = 0.9 over 5 sites, availability(none) ≥
// availability(Q1) ≥ availability(Q1Q2) for Deq.
func TestAvailabilityMonotoneInRelaxation(t *testing.T) {
	assigns := TaxiAssignments(5)
	pUp := 0.9
	deq := history.NameDeq
	aFull := assigns["Q1Q2"].Availability(deq, pUp)
	aQ1 := assigns["Q1"].Availability(deq, pUp)
	aNone := assigns["none"].Availability(deq, pUp)
	if !(aNone >= aQ1 && aQ1 >= aFull) {
		t.Errorf("availability not monotone: none=%v Q1=%v full=%v", aNone, aQ1, aFull)
	}
	if aNone <= aFull {
		t.Errorf("relaxation should strictly help: none=%v full=%v", aNone, aFull)
	}
	// The fully relaxed Deq needs only one site.
	want := 1 - math.Pow(0.1, 5)
	if math.Abs(aNone-want) > 1e-9 {
		t.Errorf("none availability = %v, want %v", aNone, want)
	}
}

func TestVotingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"weight":    func() { NewVoting([]int{0}, nil) },
		"threshold": func() { NewVoting([]int{1}, map[string]OpQuorums{"X": {Initial: 2, Final: 1}}) },
		"zero":      func() { NewVoting([]int{1}, map[string]OpQuorums{"X": {Initial: 0, Final: 1}}) },
		"taxi":      func() { TaxiAssignments(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVotingString(t *testing.T) {
	v := Majority(3, history.NameDeq)
	s := v.String()
	if !strings.Contains(s, "Deq=2/2") || !strings.Contains(s, "total=3") {
		t.Errorf("String = %q", s)
	}
}
